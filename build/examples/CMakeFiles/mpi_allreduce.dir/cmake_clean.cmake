file(REMOVE_RECURSE
  "CMakeFiles/mpi_allreduce.dir/mpi_allreduce.cpp.o"
  "CMakeFiles/mpi_allreduce.dir/mpi_allreduce.cpp.o.d"
  "mpi_allreduce"
  "mpi_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
