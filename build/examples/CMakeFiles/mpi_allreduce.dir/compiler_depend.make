# Empty compiler generated dependencies file for mpi_allreduce.
# This may be replaced when dependencies are built.
