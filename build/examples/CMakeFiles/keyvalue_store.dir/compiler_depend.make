# Empty compiler generated dependencies file for keyvalue_store.
# This may be replaced when dependencies are built.
