file(REMOVE_RECURSE
  "CMakeFiles/keyvalue_store.dir/keyvalue_store.cpp.o"
  "CMakeFiles/keyvalue_store.dir/keyvalue_store.cpp.o.d"
  "keyvalue_store"
  "keyvalue_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyvalue_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
