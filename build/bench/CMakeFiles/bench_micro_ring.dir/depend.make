# Empty dependencies file for bench_micro_ring.
# This may be replaced when dependencies are built.
