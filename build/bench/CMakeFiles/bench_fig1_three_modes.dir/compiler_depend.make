# Empty compiler generated dependencies file for bench_fig1_three_modes.
# This may be replaced when dependencies are built.
