# Empty compiler generated dependencies file for bench_inter_host.
# This may be replaced when dependencies are built.
