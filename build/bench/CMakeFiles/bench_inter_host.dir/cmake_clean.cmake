file(REMOVE_RECURSE
  "CMakeFiles/bench_inter_host.dir/bench_inter_host.cc.o"
  "CMakeFiles/bench_inter_host.dir/bench_inter_host.cc.o.d"
  "bench_inter_host"
  "bench_inter_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inter_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
