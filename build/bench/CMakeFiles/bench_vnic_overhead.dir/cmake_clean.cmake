file(REMOVE_RECURSE
  "CMakeFiles/bench_vnic_overhead.dir/bench_vnic_overhead.cc.o"
  "CMakeFiles/bench_vnic_overhead.dir/bench_vnic_overhead.cc.o.d"
  "bench_vnic_overhead"
  "bench_vnic_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vnic_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
