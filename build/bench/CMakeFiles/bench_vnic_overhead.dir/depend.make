# Empty dependencies file for bench_vnic_overhead.
# This may be replaced when dependencies are built.
