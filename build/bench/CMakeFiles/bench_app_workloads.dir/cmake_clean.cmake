file(REMOVE_RECURSE
  "CMakeFiles/bench_app_workloads.dir/bench_app_workloads.cc.o"
  "CMakeFiles/bench_app_workloads.dir/bench_app_workloads.cc.o.d"
  "bench_app_workloads"
  "bench_app_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
