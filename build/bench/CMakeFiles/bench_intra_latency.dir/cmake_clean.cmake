file(REMOVE_RECURSE
  "CMakeFiles/bench_intra_latency.dir/bench_intra_latency.cc.o"
  "CMakeFiles/bench_intra_latency.dir/bench_intra_latency.cc.o.d"
  "bench_intra_latency"
  "bench_intra_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intra_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
