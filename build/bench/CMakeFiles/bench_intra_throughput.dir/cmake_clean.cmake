file(REMOVE_RECURSE
  "CMakeFiles/bench_intra_throughput.dir/bench_intra_throughput.cc.o"
  "CMakeFiles/bench_intra_throughput.dir/bench_intra_throughput.cc.o.d"
  "bench_intra_throughput"
  "bench_intra_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intra_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
