file(REMOVE_RECURSE
  "CMakeFiles/bench_intra_cpu.dir/bench_intra_cpu.cc.o"
  "CMakeFiles/bench_intra_cpu.dir/bench_intra_cpu.cc.o.d"
  "bench_intra_cpu"
  "bench_intra_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intra_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
