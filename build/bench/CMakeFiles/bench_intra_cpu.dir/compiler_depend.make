# Empty compiler generated dependencies file for bench_intra_cpu.
# This may be replaced when dependencies are built.
