# Empty compiler generated dependencies file for bench_decision_matrix.
# This may be replaced when dependencies are built.
