file(REMOVE_RECURSE
  "CMakeFiles/bench_decision_matrix.dir/bench_decision_matrix.cc.o"
  "CMakeFiles/bench_decision_matrix.dir/bench_decision_matrix.cc.o.d"
  "bench_decision_matrix"
  "bench_decision_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decision_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
