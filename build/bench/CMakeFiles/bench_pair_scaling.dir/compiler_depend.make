# Empty compiler generated dependencies file for bench_pair_scaling.
# This may be replaced when dependencies are built.
