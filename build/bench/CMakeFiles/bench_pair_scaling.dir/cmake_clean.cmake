file(REMOVE_RECURSE
  "CMakeFiles/bench_pair_scaling.dir/bench_pair_scaling.cc.o"
  "CMakeFiles/bench_pair_scaling.dir/bench_pair_scaling.cc.o.d"
  "bench_pair_scaling"
  "bench_pair_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pair_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
