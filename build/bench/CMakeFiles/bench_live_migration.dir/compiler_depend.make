# Empty compiler generated dependencies file for bench_live_migration.
# This may be replaced when dependencies are built.
