file(REMOVE_RECURSE
  "CMakeFiles/bench_live_migration.dir/bench_live_migration.cc.o"
  "CMakeFiles/bench_live_migration.dir/bench_live_migration.cc.o.d"
  "bench_live_migration"
  "bench_live_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
