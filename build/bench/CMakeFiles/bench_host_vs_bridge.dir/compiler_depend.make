# Empty compiler generated dependencies file for bench_host_vs_bridge.
# This may be replaced when dependencies are built.
