file(REMOVE_RECURSE
  "CMakeFiles/bench_host_vs_bridge.dir/bench_host_vs_bridge.cc.o"
  "CMakeFiles/bench_host_vs_bridge.dir/bench_host_vs_bridge.cc.o.d"
  "bench_host_vs_bridge"
  "bench_host_vs_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_vs_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
