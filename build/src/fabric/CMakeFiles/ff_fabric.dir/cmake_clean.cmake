file(REMOVE_RECURSE
  "CMakeFiles/ff_fabric.dir/cluster.cc.o"
  "CMakeFiles/ff_fabric.dir/cluster.cc.o.d"
  "CMakeFiles/ff_fabric.dir/control.cc.o"
  "CMakeFiles/ff_fabric.dir/control.cc.o.d"
  "CMakeFiles/ff_fabric.dir/host.cc.o"
  "CMakeFiles/ff_fabric.dir/host.cc.o.d"
  "CMakeFiles/ff_fabric.dir/nic.cc.o"
  "CMakeFiles/ff_fabric.dir/nic.cc.o.d"
  "CMakeFiles/ff_fabric.dir/switch.cc.o"
  "CMakeFiles/ff_fabric.dir/switch.cc.o.d"
  "libff_fabric.a"
  "libff_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
