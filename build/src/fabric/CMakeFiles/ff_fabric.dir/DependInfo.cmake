
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/cluster.cc" "src/fabric/CMakeFiles/ff_fabric.dir/cluster.cc.o" "gcc" "src/fabric/CMakeFiles/ff_fabric.dir/cluster.cc.o.d"
  "/root/repo/src/fabric/control.cc" "src/fabric/CMakeFiles/ff_fabric.dir/control.cc.o" "gcc" "src/fabric/CMakeFiles/ff_fabric.dir/control.cc.o.d"
  "/root/repo/src/fabric/host.cc" "src/fabric/CMakeFiles/ff_fabric.dir/host.cc.o" "gcc" "src/fabric/CMakeFiles/ff_fabric.dir/host.cc.o.d"
  "/root/repo/src/fabric/nic.cc" "src/fabric/CMakeFiles/ff_fabric.dir/nic.cc.o" "gcc" "src/fabric/CMakeFiles/ff_fabric.dir/nic.cc.o.d"
  "/root/repo/src/fabric/switch.cc" "src/fabric/CMakeFiles/ff_fabric.dir/switch.cc.o" "gcc" "src/fabric/CMakeFiles/ff_fabric.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
