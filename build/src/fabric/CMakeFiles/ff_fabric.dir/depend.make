# Empty dependencies file for ff_fabric.
# This may be replaced when dependencies are built.
