file(REMOVE_RECURSE
  "libff_fabric.a"
)
