file(REMOVE_RECURSE
  "libff_rdma.a"
)
