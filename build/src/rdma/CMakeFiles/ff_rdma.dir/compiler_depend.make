# Empty compiler generated dependencies file for ff_rdma.
# This may be replaced when dependencies are built.
