file(REMOVE_RECURSE
  "CMakeFiles/ff_rdma.dir/cm.cc.o"
  "CMakeFiles/ff_rdma.dir/cm.cc.o.d"
  "CMakeFiles/ff_rdma.dir/device.cc.o"
  "CMakeFiles/ff_rdma.dir/device.cc.o.d"
  "CMakeFiles/ff_rdma.dir/queue_pair.cc.o"
  "CMakeFiles/ff_rdma.dir/queue_pair.cc.o.d"
  "CMakeFiles/ff_rdma.dir/verbs.cc.o"
  "CMakeFiles/ff_rdma.dir/verbs.cc.o.d"
  "libff_rdma.a"
  "libff_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
