
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/cm.cc" "src/rdma/CMakeFiles/ff_rdma.dir/cm.cc.o" "gcc" "src/rdma/CMakeFiles/ff_rdma.dir/cm.cc.o.d"
  "/root/repo/src/rdma/device.cc" "src/rdma/CMakeFiles/ff_rdma.dir/device.cc.o" "gcc" "src/rdma/CMakeFiles/ff_rdma.dir/device.cc.o.d"
  "/root/repo/src/rdma/queue_pair.cc" "src/rdma/CMakeFiles/ff_rdma.dir/queue_pair.cc.o" "gcc" "src/rdma/CMakeFiles/ff_rdma.dir/queue_pair.cc.o.d"
  "/root/repo/src/rdma/verbs.cc" "src/rdma/CMakeFiles/ff_rdma.dir/verbs.cc.o" "gcc" "src/rdma/CMakeFiles/ff_rdma.dir/verbs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/ff_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/ff_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
