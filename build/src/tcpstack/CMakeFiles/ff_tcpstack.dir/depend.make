# Empty dependencies file for ff_tcpstack.
# This may be replaced when dependencies are built.
