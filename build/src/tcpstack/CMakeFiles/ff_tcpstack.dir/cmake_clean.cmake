file(REMOVE_RECURSE
  "CMakeFiles/ff_tcpstack.dir/connection.cc.o"
  "CMakeFiles/ff_tcpstack.dir/connection.cc.o.d"
  "CMakeFiles/ff_tcpstack.dir/ip.cc.o"
  "CMakeFiles/ff_tcpstack.dir/ip.cc.o.d"
  "CMakeFiles/ff_tcpstack.dir/modes.cc.o"
  "CMakeFiles/ff_tcpstack.dir/modes.cc.o.d"
  "CMakeFiles/ff_tcpstack.dir/network.cc.o"
  "CMakeFiles/ff_tcpstack.dir/network.cc.o.d"
  "CMakeFiles/ff_tcpstack.dir/path.cc.o"
  "CMakeFiles/ff_tcpstack.dir/path.cc.o.d"
  "CMakeFiles/ff_tcpstack.dir/routing.cc.o"
  "CMakeFiles/ff_tcpstack.dir/routing.cc.o.d"
  "libff_tcpstack.a"
  "libff_tcpstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_tcpstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
