file(REMOVE_RECURSE
  "libff_tcpstack.a"
)
