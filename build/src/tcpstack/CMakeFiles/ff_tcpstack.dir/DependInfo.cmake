
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcpstack/connection.cc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/connection.cc.o" "gcc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/connection.cc.o.d"
  "/root/repo/src/tcpstack/ip.cc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/ip.cc.o" "gcc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/ip.cc.o.d"
  "/root/repo/src/tcpstack/modes.cc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/modes.cc.o" "gcc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/modes.cc.o.d"
  "/root/repo/src/tcpstack/network.cc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/network.cc.o" "gcc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/network.cc.o.d"
  "/root/repo/src/tcpstack/path.cc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/path.cc.o" "gcc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/path.cc.o.d"
  "/root/repo/src/tcpstack/routing.cc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/routing.cc.o" "gcc" "src/tcpstack/CMakeFiles/ff_tcpstack.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/ff_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/ff_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
