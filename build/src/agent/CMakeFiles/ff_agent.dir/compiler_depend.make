# Empty compiler generated dependencies file for ff_agent.
# This may be replaced when dependencies are built.
