file(REMOVE_RECURSE
  "libff_agent.a"
)
