file(REMOVE_RECURSE
  "CMakeFiles/ff_agent.dir/agent.cc.o"
  "CMakeFiles/ff_agent.dir/agent.cc.o.d"
  "CMakeFiles/ff_agent.dir/channel.cc.o"
  "CMakeFiles/ff_agent.dir/channel.cc.o.d"
  "CMakeFiles/ff_agent.dir/relay.cc.o"
  "CMakeFiles/ff_agent.dir/relay.cc.o.d"
  "CMakeFiles/ff_agent.dir/trunk.cc.o"
  "CMakeFiles/ff_agent.dir/trunk.cc.o.d"
  "libff_agent.a"
  "libff_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
