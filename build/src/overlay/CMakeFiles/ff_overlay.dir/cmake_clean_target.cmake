file(REMOVE_RECURSE
  "libff_overlay.a"
)
