file(REMOVE_RECURSE
  "CMakeFiles/ff_overlay.dir/ipam.cc.o"
  "CMakeFiles/ff_overlay.dir/ipam.cc.o.d"
  "CMakeFiles/ff_overlay.dir/overlay.cc.o"
  "CMakeFiles/ff_overlay.dir/overlay.cc.o.d"
  "CMakeFiles/ff_overlay.dir/router.cc.o"
  "CMakeFiles/ff_overlay.dir/router.cc.o.d"
  "libff_overlay.a"
  "libff_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
