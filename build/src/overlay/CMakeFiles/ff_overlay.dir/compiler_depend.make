# Empty compiler generated dependencies file for ff_overlay.
# This may be replaced when dependencies are built.
