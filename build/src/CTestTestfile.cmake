# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("fabric")
subdirs("shm")
subdirs("tcpstack")
subdirs("overlay")
subdirs("rdma")
subdirs("dpdk")
subdirs("orchestrator")
subdirs("agent")
subdirs("core")
subdirs("workloads")
