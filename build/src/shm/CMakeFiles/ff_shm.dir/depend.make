# Empty dependencies file for ff_shm.
# This may be replaced when dependencies are built.
