file(REMOVE_RECURSE
  "libff_shm.a"
)
