file(REMOVE_RECURSE
  "CMakeFiles/ff_shm.dir/channel.cc.o"
  "CMakeFiles/ff_shm.dir/channel.cc.o.d"
  "CMakeFiles/ff_shm.dir/region.cc.o"
  "CMakeFiles/ff_shm.dir/region.cc.o.d"
  "CMakeFiles/ff_shm.dir/spsc_ring.cc.o"
  "CMakeFiles/ff_shm.dir/spsc_ring.cc.o.d"
  "libff_shm.a"
  "libff_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
