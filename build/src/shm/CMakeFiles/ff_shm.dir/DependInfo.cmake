
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shm/channel.cc" "src/shm/CMakeFiles/ff_shm.dir/channel.cc.o" "gcc" "src/shm/CMakeFiles/ff_shm.dir/channel.cc.o.d"
  "/root/repo/src/shm/region.cc" "src/shm/CMakeFiles/ff_shm.dir/region.cc.o" "gcc" "src/shm/CMakeFiles/ff_shm.dir/region.cc.o.d"
  "/root/repo/src/shm/spsc_ring.cc" "src/shm/CMakeFiles/ff_shm.dir/spsc_ring.cc.o" "gcc" "src/shm/CMakeFiles/ff_shm.dir/spsc_ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/ff_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
