file(REMOVE_RECURSE
  "CMakeFiles/ff_core.dir/conduit.cc.o"
  "CMakeFiles/ff_core.dir/conduit.cc.o.d"
  "CMakeFiles/ff_core.dir/container_net.cc.o"
  "CMakeFiles/ff_core.dir/container_net.cc.o.d"
  "CMakeFiles/ff_core.dir/freeflow.cc.o"
  "CMakeFiles/ff_core.dir/freeflow.cc.o.d"
  "CMakeFiles/ff_core.dir/mpi.cc.o"
  "CMakeFiles/ff_core.dir/mpi.cc.o.d"
  "CMakeFiles/ff_core.dir/selector.cc.o"
  "CMakeFiles/ff_core.dir/selector.cc.o.d"
  "CMakeFiles/ff_core.dir/socket.cc.o"
  "CMakeFiles/ff_core.dir/socket.cc.o.d"
  "CMakeFiles/ff_core.dir/vqp.cc.o"
  "CMakeFiles/ff_core.dir/vqp.cc.o.d"
  "CMakeFiles/ff_core.dir/wire.cc.o"
  "CMakeFiles/ff_core.dir/wire.cc.o.d"
  "libff_core.a"
  "libff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
