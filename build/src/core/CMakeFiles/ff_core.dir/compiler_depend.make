# Empty compiler generated dependencies file for ff_core.
# This may be replaced when dependencies are built.
