file(REMOVE_RECURSE
  "libff_core.a"
)
