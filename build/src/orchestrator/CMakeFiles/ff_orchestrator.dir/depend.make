# Empty dependencies file for ff_orchestrator.
# This may be replaced when dependencies are built.
