file(REMOVE_RECURSE
  "libff_orchestrator.a"
)
