file(REMOVE_RECURSE
  "CMakeFiles/ff_orchestrator.dir/cluster_orchestrator.cc.o"
  "CMakeFiles/ff_orchestrator.dir/cluster_orchestrator.cc.o.d"
  "CMakeFiles/ff_orchestrator.dir/container.cc.o"
  "CMakeFiles/ff_orchestrator.dir/container.cc.o.d"
  "CMakeFiles/ff_orchestrator.dir/network_orchestrator.cc.o"
  "CMakeFiles/ff_orchestrator.dir/network_orchestrator.cc.o.d"
  "libff_orchestrator.a"
  "libff_orchestrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_orchestrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
