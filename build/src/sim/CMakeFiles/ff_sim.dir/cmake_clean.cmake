file(REMOVE_RECURSE
  "CMakeFiles/ff_sim.dir/event_loop.cc.o"
  "CMakeFiles/ff_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/ff_sim.dir/resource.cc.o"
  "CMakeFiles/ff_sim.dir/resource.cc.o.d"
  "libff_sim.a"
  "libff_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
