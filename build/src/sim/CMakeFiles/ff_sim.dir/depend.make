# Empty dependencies file for ff_sim.
# This may be replaced when dependencies are built.
