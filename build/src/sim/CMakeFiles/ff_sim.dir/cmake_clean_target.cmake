file(REMOVE_RECURSE
  "libff_sim.a"
)
