file(REMOVE_RECURSE
  "libff_dpdk.a"
)
