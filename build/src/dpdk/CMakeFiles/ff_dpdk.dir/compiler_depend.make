# Empty compiler generated dependencies file for ff_dpdk.
# This may be replaced when dependencies are built.
