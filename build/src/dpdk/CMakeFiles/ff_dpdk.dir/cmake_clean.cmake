file(REMOVE_RECURSE
  "CMakeFiles/ff_dpdk.dir/pmd.cc.o"
  "CMakeFiles/ff_dpdk.dir/pmd.cc.o.d"
  "libff_dpdk.a"
  "libff_dpdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_dpdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
