file(REMOVE_RECURSE
  "CMakeFiles/ff_workloads.dir/drivers.cc.o"
  "CMakeFiles/ff_workloads.dir/drivers.cc.o.d"
  "CMakeFiles/ff_workloads.dir/kv_store.cc.o"
  "CMakeFiles/ff_workloads.dir/kv_store.cc.o.d"
  "CMakeFiles/ff_workloads.dir/param_server.cc.o"
  "CMakeFiles/ff_workloads.dir/param_server.cc.o.d"
  "CMakeFiles/ff_workloads.dir/shuffle.cc.o"
  "CMakeFiles/ff_workloads.dir/shuffle.cc.o.d"
  "CMakeFiles/ff_workloads.dir/stream_adapter.cc.o"
  "CMakeFiles/ff_workloads.dir/stream_adapter.cc.o.d"
  "libff_workloads.a"
  "libff_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
