file(REMOVE_RECURSE
  "libff_workloads.a"
)
