# Empty compiler generated dependencies file for ff_workloads.
# This may be replaced when dependencies are built.
