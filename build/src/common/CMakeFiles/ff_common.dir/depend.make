# Empty dependencies file for ff_common.
# This may be replaced when dependencies are built.
