file(REMOVE_RECURSE
  "CMakeFiles/ff_common.dir/bytes.cc.o"
  "CMakeFiles/ff_common.dir/bytes.cc.o.d"
  "CMakeFiles/ff_common.dir/histogram.cc.o"
  "CMakeFiles/ff_common.dir/histogram.cc.o.d"
  "CMakeFiles/ff_common.dir/logging.cc.o"
  "CMakeFiles/ff_common.dir/logging.cc.o.d"
  "CMakeFiles/ff_common.dir/status.cc.o"
  "CMakeFiles/ff_common.dir/status.cc.o.d"
  "libff_common.a"
  "libff_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ff_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
