file(REMOVE_RECURSE
  "libff_common.a"
)
