# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_shm[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_rdma[1]_include.cmake")
include("/root/repo/build/tests/test_dpdk[1]_include.cmake")
include("/root/repo/build/tests/test_orchestrator[1]_include.cmake")
include("/root/repo/build/tests/test_agent[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
