
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_shm.cc" "tests/CMakeFiles/test_shm.dir/test_shm.cc.o" "gcc" "tests/CMakeFiles/test_shm.dir/test_shm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ff_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/ff_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/ff_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/dpdk/CMakeFiles/ff_dpdk.dir/DependInfo.cmake"
  "/root/repo/build/src/orchestrator/CMakeFiles/ff_orchestrator.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/ff_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpstack/CMakeFiles/ff_tcpstack.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/ff_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/ff_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
