#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim_env.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace freeflow::telemetry {
namespace {

using freeflow::testing::Env;

/// Structural JSON check good enough for exporter output: every brace,
/// bracket and quote balances, with string contents (and escapes) skipped.
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

// ----------------------------------------------------------- MetricRegistry

TEST(MetricRegistry, LookupOrCreateReturnsStablePointers) {
  MetricRegistry reg;
  Counter& a = reg.counter("conduit/1/sent");
  Gauge& g = reg.gauge("conduit/1/retained");
  a.inc(3);
  g.set(7);
  // Growing the registry must not move existing metrics (deque storage):
  // instrumented objects cache these pointers for the simulation's lifetime.
  for (int i = 0; i < 1000; ++i) reg.counter("filler/" + std::to_string(i));
  EXPECT_EQ(&reg.counter("conduit/1/sent"), &a);
  EXPECT_EQ(&reg.gauge("conduit/1/retained"), &g);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(reg.size(), 1002u);
}

TEST(MetricRegistry, CounterIsMonotonic) {
  MetricRegistry reg;
  Counter& c = reg.counter("events");
  std::uint64_t last = c.value();
  for (int i = 0; i < 100; ++i) {
    c.inc(static_cast<std::uint64_t>(i % 3));
    EXPECT_GE(c.value(), last);
    last = c.value();
  }
  EXPECT_EQ(c.value(), 99u);  // 33 * (0+1+2)
  EXPECT_EQ(reg.counter_value("events"), 99u);
}

TEST(MetricRegistry, FindNeverCreates) {
  MetricRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("yes").inc();
  EXPECT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value(), 1u);
}

TEST(MetricRegistry, DiscardSinksAreSharedAndInert) {
  Counter* c = Counter::discard();
  EXPECT_EQ(c, Counter::discard());
  c->inc(5);  // lands nowhere observable, no crash
  EXPECT_EQ(Gauge::discard(), Gauge::discard());
  EXPECT_EQ(discard_histogram(), discard_histogram());
}

TEST(MetricRegistry, SnapshotIsSortedDeterministicAndWellFormed) {
  // Two registries fed the same data in opposite insertion orders must
  // export byte-identical JSON (names are map-sorted, not insertion-sorted).
  MetricRegistry a, b;
  const std::vector<std::string> names = {"z/last", "a/first", "m/mid"};
  for (const auto& n : names) a.counter(n).inc(2);
  for (auto it = names.rbegin(); it != names.rend(); ++it) b.counter(*it).inc(2);
  a.gauge("depth").set(-4);
  b.gauge("depth").set(-4);
  a.histogram("lat").record(1000);
  b.histogram("lat").record(1000);
  const std::string ja = a.snapshot_json();
  EXPECT_EQ(ja, b.snapshot_json());
  EXPECT_TRUE(json_balanced(ja)) << ja;
  EXPECT_NE(ja.find("\"counters\""), std::string::npos);
  EXPECT_NE(ja.find("\"a/first\":2"), std::string::npos);
  EXPECT_NE(ja.find("\"depth\":-4"), std::string::npos);
  EXPECT_NE(ja.find("\"lat\""), std::string::npos);
  EXPECT_NE(ja.find("\"count\":1"), std::string::npos);
  EXPECT_LT(ja.find("\"a/first\""), ja.find("\"m/mid\""));
  EXPECT_LT(ja.find("\"m/mid\""), ja.find("\"z/last\""));
}

TEST(MetricRegistry, ProbesSampleAtSnapshotTime) {
  MetricRegistry reg;
  double level = 0.25;
  reg.register_probe("nic/0/tx_utilization", [&level]() { return level; });
  EXPECT_NE(reg.snapshot_json().find("\"nic/0/tx_utilization\":0.25"),
            std::string::npos);
  level = 0.5;  // no re-registration: the probe reads the live value
  EXPECT_NE(reg.snapshot_json().find("\"nic/0/tx_utilization\":0.5"),
            std::string::npos);
  reg.unregister_probe("nic/0/tx_utilization");
  EXPECT_EQ(reg.snapshot_json().find("tx_utilization"), std::string::npos);
  EXPECT_EQ(reg.size(), 0u);
}

// ------------------------------------------------------------------ Tracer

TEST(Tracer, RecordsOnVirtualClock) {
  sim::EventLoop loop;
  Tracer tracer(&loop);
  loop.schedule(1500, [&]() { tracer.begin("conduit", "transfer", 1, 42); });
  loop.schedule(3500, [&]() { tracer.end("conduit", "transfer", 1, 42); });
  loop.schedule(2000, [&]() { tracer.instant("fault", "rdma_down", 0, 7); });
  loop.run();
  ASSERT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.events()[0].ph, 'B');
  EXPECT_EQ(tracer.events()[0].ts_ns, 1500);
  EXPECT_EQ(tracer.events()[1].ph, 'i');
  EXPECT_EQ(tracer.events()[1].ts_ns, 2000);
  EXPECT_EQ(tracer.events()[2].ph, 'E');
  EXPECT_EQ(tracer.events()[2].ts_ns, 3500);
  EXPECT_EQ(tracer.events()[0].tid, 42u);
}

TEST(Tracer, ExportJsonWellFormed) {
  sim::EventLoop loop;
  Tracer tracer(&loop);
  tracer.name_process(1, "host 1");
  tracer.name_thread(1, 42, "conduit \"weird\\name\"");
  tracer.begin("conduit", "failover", 1, 42);
  tracer.instant("conduit", "rebind", 1, 42, Tracer::arg("to", "tcp_host"));
  tracer.end("conduit", "failover", 1, 42);
  const std::string json = tracer.export_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // Instants carry scope "t"; args objects ride through verbatim.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"to\":\"tcp_host\"}"), std::string::npos);
  // Metadata escapes hostile names instead of corrupting the document.
  EXPECT_NE(json.find("conduit \\\"weird\\\\name\\\""), std::string::npos);
}

TEST(Tracer, DisabledTracerDropsEvents) {
  sim::EventLoop loop;
  Tracer tracer(&loop);
  tracer.set_enabled(false);
  tracer.begin("c", "x", 0, 0);
  tracer.instant("c", "y", 0, 0);
  EXPECT_EQ(tracer.size(), 0u);
  tracer.set_enabled(true);
  tracer.instant("c", "y", 0, 0);
  EXPECT_EQ(tracer.size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

// ------------------------------------------------------------- integration

/// Drives a real transfer and cross-checks the registry against the
/// conduit's own introspection; then repeats the identical run and demands
/// a byte-identical snapshot (determinism is what makes telemetry diffable
/// across seeds and commits).
TEST(TelemetryIntegration, CountersMatchConduitsAndSnapshotsAreDeterministic) {
  auto drive = []() {
    Env env(2);
    auto a = env.deploy("a", 1, 0);
    auto b = env.deploy("b", 1, 1);
    auto na = *env.freeflow().attach(a->id());
    auto nb = *env.freeflow().attach(b->id());
    core::FlowSocketPtr client, server;
    EXPECT_TRUE(nb->sock_listen(80, [&](core::FlowSocketPtr s) { server = s; }).is_ok());
    na->sock_connect(b->ip(), 80, [&](Result<core::FlowSocketPtr> s) {
      ASSERT_TRUE(s.is_ok()) << s.status();
      client = *s;
    });
    EXPECT_TRUE(env.wait([&]() { return client != nullptr && server != nullptr; }));
    std::size_t got = 0;
    server->set_on_data([&](Buffer&& buf) { got += buf.size(); });
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(client->send(Buffer(1024)).is_ok());
    }
    EXPECT_TRUE(env.wait([&]() { return got == 40u * 1024u; }));

    auto& metrics = env.cluster.telemetry().metrics();
    for (const auto& info : na->connections()) {
      const std::string base = "conduit/" + std::to_string(info.token) + "/c" +
                               std::to_string(a->id()) + "/";
      EXPECT_EQ(metrics.counter_value(base + "sent"), info.messages_sent);
      EXPECT_EQ(metrics.counter_value(base + "retransmits"), info.retransmits);
    }
    // Data flowed inter-host, so the NIC counters saw it too.
    EXPECT_GT(metrics.counter_value("nic/0/tx_bytes/rdma_chunk") +
                  metrics.counter_value("nic/0/tx_bytes/tcp_frame") +
                  metrics.counter_value("nic/0/tx_bytes/dpdk_frame"),
              40u * 1024u);
    EXPECT_GT(metrics.counter_value("orchestrator/decisions"), 0u);
    return metrics.snapshot_json();
  };
  const std::string s1 = drive();
  const std::string s2 = drive();
  EXPECT_TRUE(json_balanced(s1));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1.find("\"conduit/"), std::string::npos);
  EXPECT_NE(s1.find("\"nic/0/tx_utilization\""), std::string::npos);
}

}  // namespace
}  // namespace freeflow::telemetry
