#include <gtest/gtest.h>

#include "agent/agent.h"
#include "agent/relay.h"
#include "sim_env.h"

namespace freeflow::agent {
namespace {

using freeflow::testing::Env;

TEST(Relay, HeaderRoundTrip) {
  RelayHeader h;
  h.src_container = 3;
  h.dst_container = 9;
  h.channel = 0xABCDEF12345ULL;
  h.msg_seq = 77;
  h.total_len = 1000;
  h.frag_offset = 256;
  std::byte buf[RelayHeader::k_size];
  h.encode(buf);
  const RelayHeader d = RelayHeader::decode(buf);
  EXPECT_EQ(d.src_container, 3u);
  EXPECT_EQ(d.dst_container, 9u);
  EXPECT_EQ(d.channel, 0xABCDEF12345ULL);
  EXPECT_EQ(d.msg_seq, 77u);
  EXPECT_EQ(d.total_len, 1000u);
  EXPECT_EQ(d.frag_offset, 256u);
  EXPECT_FALSE(d.last_fragment(100));
  EXPECT_TRUE(d.last_fragment(744));
}

TEST(Relay, RecordRoundTrip) {
  RelayHeader h;
  h.total_len = 5;
  Buffer payload = Buffer::from_string("hello");
  Buffer record = make_record(h, payload.view());
  auto parsed = parse_record(record.view());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->header.total_len, 5u);
  EXPECT_EQ(Buffer(parsed->fragment.data(), parsed->fragment.size()).to_string(), "hello");
}

TEST(Relay, ParseRejectsGarbage) {
  Buffer tiny(4);
  EXPECT_FALSE(parse_record(tiny.view()).is_ok());
  RelayHeader h;
  h.total_len = 1;  // fragment longer than message
  Buffer bad = make_record(h, Buffer(10).view());
  EXPECT_FALSE(parse_record(bad.view()).is_ok());
}

// ----------------------------------------------------- channel integration

struct AgentFixture : ::testing::Test {
  /// Opens a duplex channel between two deployed containers and returns
  /// both endpoints.
  static std::pair<ChannelPtr, ChannelPtr> open_channel(
      Env& env, AgentFabric& agents, orch::ContainerPtr a, orch::ContainerPtr b,
      orch::Transport transport) {
    ChannelPtr ep_a, ep_b;
    agents.agent_on(b->host()).register_container(
        b->id(), [&](orch::ContainerId, ChannelPtr ch) { ep_b = std::move(ch); });
    agents.agent_on(a->host()).register_container(a->id(),
                                                  [](orch::ContainerId, ChannelPtr) {});
    agents.agent_on(a->host()).establish(a->id(), b->id(), transport,
                                         [&](Result<ChannelPtr> ch) {
      ASSERT_TRUE(ch.is_ok()) << ch.status();
      ep_a = std::move(ch.value());
    });
    EXPECT_TRUE(env.wait([&]() { return ep_a != nullptr && ep_b != nullptr; }));
    return {ep_a, ep_b};
  }
};

TEST_F(AgentFixture, ShmChannelDelivers) {
  Env env(1);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto [ep_a, ep_b] = open_channel(env, agents, a, b, orch::Transport::shm);
  ASSERT_NE(ep_a, nullptr);

  Buffer got;
  ep_b->set_on_message([&](Buffer&& m) { got = std::move(m); });
  Buffer msg(4096);
  fill_pattern(msg.mutable_view(), 17);
  ASSERT_TRUE(ep_a->send(std::move(msg)).is_ok());
  EXPECT_TRUE(env.wait([&]() { return got.size() == 4096; }));
  EXPECT_TRUE(check_pattern(got.view(), 17));
  EXPECT_EQ(ep_a->transport(), orch::Transport::shm);
}

TEST_F(AgentFixture, ShmChannelIsDuplex) {
  Env env(1);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto [ep_a, ep_b] = open_channel(env, agents, a, b, orch::Transport::shm);
  Buffer at_a, at_b;
  ep_a->set_on_message([&](Buffer&& m) { at_a = std::move(m); });
  ep_b->set_on_message([&](Buffer&& m) { at_b = std::move(m); });
  ASSERT_TRUE(ep_a->send(Buffer::from_string("ping")).is_ok());
  ASSERT_TRUE(ep_b->send(Buffer::from_string("pong")).is_ok());
  EXPECT_TRUE(env.wait([&]() { return !at_a.empty() && !at_b.empty(); }));
  EXPECT_EQ(at_b.to_string(), "ping");
  EXPECT_EQ(at_a.to_string(), "pong");
}

TEST_F(AgentFixture, TrustEnforcedAtAgent) {
  Env env(1);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 2, 0);  // different tenant, no trust
  agents.agent_on(0).register_container(a->id(), [](orch::ContainerId, ChannelPtr) {});
  agents.agent_on(0).register_container(b->id(), [](orch::ContainerId, ChannelPtr) {});
  Status result;
  bool done = false;
  agents.agent_on(0).establish(a->id(), b->id(), orch::Transport::shm,
                               [&](Result<ChannelPtr> ch) {
    result = ch.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::permission_denied);
}

TEST_F(AgentFixture, ShmRequiresColocation) {
  Env env(2);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  agents.agent_on(0).register_container(a->id(), [](orch::ContainerId, ChannelPtr) {});
  agents.agent_on(1).register_container(b->id(), [](orch::ContainerId, ChannelPtr) {});
  Status result;
  bool done = false;
  agents.agent_on(0).establish(a->id(), b->id(), orch::Transport::shm,
                               [&](Result<ChannelPtr> ch) {
    result = ch.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::failed_precondition);
}

class TrunkTransportTest : public AgentFixture,
                           public ::testing::WithParamInterface<orch::Transport> {};

TEST_P(TrunkTransportTest, RemoteChannelDeliversWithIntegrity) {
  Env env(2);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  auto [ep_a, ep_b] = open_channel(env, agents, a, b, GetParam());
  ASSERT_NE(ep_a, nullptr);
  EXPECT_EQ(ep_a->transport(), GetParam());

  // Multiple messages, one larger than the fragment size, both directions.
  std::vector<Buffer> at_b;
  Buffer at_a;
  ep_b->set_on_message([&](Buffer&& m) { at_b.push_back(std::move(m)); });
  ep_a->set_on_message([&](Buffer&& m) { at_a = std::move(m); });

  Buffer small(1000), big(1500 * 1000);
  fill_pattern(small.mutable_view(), 1);
  fill_pattern(big.mutable_view(), 2);
  ASSERT_TRUE(ep_a->send(std::move(small)).is_ok());
  ASSERT_TRUE(ep_a->send(std::move(big)).is_ok());
  Buffer reply(5000);
  fill_pattern(reply.mutable_view(), 3);
  ASSERT_TRUE(ep_b->send(std::move(reply)).is_ok());

  EXPECT_TRUE(env.wait([&]() { return at_b.size() == 2 && at_a.size() == 5000; },
                       30 * k_second));
  ASSERT_EQ(at_b.size(), 2u);
  EXPECT_EQ(at_b[0].size(), 1000u);
  EXPECT_TRUE(check_pattern(at_b[0].view(), 1));
  EXPECT_EQ(at_b[1].size(), 1500u * 1000);
  EXPECT_TRUE(check_pattern(at_b[1].view(), 2));
  EXPECT_TRUE(check_pattern(at_a.view(), 3));
}

INSTANTIATE_TEST_SUITE_P(AllTrunks, TrunkTransportTest,
                         ::testing::Values(orch::Transport::rdma,
                                           orch::Transport::dpdk,
                                           orch::Transport::tcp_host),
                         [](const ::testing::TestParamInfo<orch::Transport>& pinfo) {
                           return std::string(orch::transport_name(pinfo.param)) == "tcp-host"
                                      ? "tcp_host"
                                      : std::string(orch::transport_name(pinfo.param));
                         });

TEST_F(AgentFixture, RdmaTrunkRefusedWithoutCapableNic) {
  fabric::NicCapabilities caps;
  caps.rdma = false;
  Env env(2, sim::CostModel{}, caps);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  agents.agent_on(0).register_container(a->id(), [](orch::ContainerId, ChannelPtr) {});
  agents.agent_on(1).register_container(b->id(), [](orch::ContainerId, ChannelPtr) {});
  Status result;
  bool done = false;
  agents.agent_on(0).establish(a->id(), b->id(), orch::Transport::rdma,
                               [&](Result<ChannelPtr> ch) {
    result = ch.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::failed_precondition);
}

TEST_F(AgentFixture, ManyChannelsShareOneTrunk) {
  Env env(2);
  AgentFabric agents(*env.net_orch);
  auto a1 = env.deploy("a1", 1, 0);
  auto a2 = env.deploy("a2", 1, 0);
  auto b1 = env.deploy("b1", 1, 1);
  auto b2 = env.deploy("b2", 1, 1);

  auto [c1a, c1b] = open_channel(env, agents, a1, b1, orch::Transport::rdma);
  auto [c2a, c2b] = open_channel(env, agents, a2, b2, orch::Transport::rdma);
  ASSERT_NE(c1a, nullptr);
  ASSERT_NE(c2a, nullptr);

  Buffer got1, got2;
  c1b->set_on_message([&](Buffer&& m) { got1 = std::move(m); });
  c2b->set_on_message([&](Buffer&& m) { got2 = std::move(m); });
  Buffer m1(2222), m2(3333);
  fill_pattern(m1.mutable_view(), 5);
  fill_pattern(m2.mutable_view(), 6);
  ASSERT_TRUE(c1a->send(std::move(m1)).is_ok());
  ASSERT_TRUE(c2a->send(std::move(m2)).is_ok());
  EXPECT_TRUE(env.wait([&]() { return got1.size() == 2222 && got2.size() == 3333; }));
  EXPECT_TRUE(check_pattern(got1.view(), 5));
  EXPECT_TRUE(check_pattern(got2.view(), 6));
  EXPECT_GE(agents.agent_on(0).records_relayed(), 2u);
}

class FragmentBoundary : public AgentFixture,
                         public ::testing::WithParamInterface<std::size_t> {};

TEST_P(FragmentBoundary, MessageSizesAroundFragmentEdgeSurvive) {
  // Exactly at, one below and one above the relay fragment size, plus
  // multi-fragment sizes — all must reassemble byte-exact.
  Env env(2);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  auto [ep_a, ep_b] = open_channel(env, agents, a, b, orch::Transport::rdma);
  ASSERT_NE(ep_a, nullptr);

  const std::size_t size = GetParam();
  Buffer got;
  ep_b->set_on_message([&](Buffer&& m) { got = std::move(m); });
  Buffer msg(size);
  fill_pattern(msg.mutable_view(), size);
  ASSERT_TRUE(ep_a->send(std::move(msg)).is_ok());
  EXPECT_TRUE(env.wait([&]() { return got.size() == size; }, 30 * k_second));
  EXPECT_TRUE(check_pattern(got.view(), size));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentBoundary,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{256} * 1024 - 1,
                                           std::size_t{256} * 1024,
                                           std::size_t{256} * 1024 + 1,
                                           std::size_t{3} * 256 * 1024 + 7));

class TrunkCongestion : public AgentFixture,
                        public ::testing::WithParamInterface<orch::Transport> {};

TEST_P(TrunkCongestion, CongestionGatesWritableThenRecovers) {
  Env env(2);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  auto [ep_a, ep_b] = open_channel(env, agents, a, b, GetParam());
  ASSERT_NE(ep_a, nullptr);
  ep_b->set_on_message([](Buffer&&) {});

  EXPECT_TRUE(ep_a->writable());
  // Flood without letting the loop run: the trunk queue must eventually
  // report congestion through writable().
  int sent = 0;
  while (ep_a->writable() && sent < 8192) {
    ASSERT_TRUE(ep_a->send(Buffer(256 * 1024)).is_ok());
    ++sent;
  }
  EXPECT_LT(sent, 8192) << "writable() never went false under flood";

  // Draining restores writability (the on_drained notification path).
  EXPECT_TRUE(env.wait([&]() { return ep_a->writable(); }, 120 * k_second));
}

INSTANTIATE_TEST_SUITE_P(AllTrunkKinds, TrunkCongestion,
                         ::testing::Values(orch::Transport::rdma,
                                           orch::Transport::dpdk,
                                           orch::Transport::tcp_host),
                         [](const ::testing::TestParamInfo<orch::Transport>& pinfo) {
                           return std::string(orch::transport_name(pinfo.param)) ==
                                          "tcp-host"
                                      ? "tcp_host"
                                      : std::string(orch::transport_name(pinfo.param));
                         });

TEST_F(AgentFixture, ConcurrentBidirectionalChannelsBetweenSameHosts) {
  // a->b and b->a channels opened from both sides share one trunk pair.
  Env env(2);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  auto [ab_a, ab_b] = open_channel(env, agents, a, b, orch::Transport::rdma);

  ChannelPtr ba_b, ba_a;
  agents.agent_on(0).register_container(
      a->id(), [&](orch::ContainerId, ChannelPtr ch) { ba_a = std::move(ch); });
  agents.agent_on(1).establish(b->id(), a->id(), orch::Transport::rdma,
                               [&](Result<ChannelPtr> ch) {
    ASSERT_TRUE(ch.is_ok()) << ch.status();
    ba_b = std::move(ch.value());
  });
  EXPECT_TRUE(env.wait([&]() { return ba_b != nullptr && ba_a != nullptr; }));

  Buffer at_b, at_a;
  ab_b->set_on_message([&](Buffer&& m) { at_b = std::move(m); });
  ba_a->set_on_message([&](Buffer&& m) { at_a = std::move(m); });
  ASSERT_TRUE(ab_a->send(Buffer::from_string("forward")).is_ok());
  ASSERT_TRUE(ba_b->send(Buffer::from_string("backward")).is_ok());
  EXPECT_TRUE(env.wait([&]() { return !at_b.empty() && !at_a.empty(); }));
  EXPECT_EQ(at_b.to_string(), "forward");
  EXPECT_EQ(at_a.to_string(), "backward");
}

TEST_F(AgentFixture, EstablishToUnregisteredContainerFails) {
  Env env(1);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  agents.agent_on(0).register_container(a->id(), [](orch::ContainerId, ChannelPtr) {});
  // b never registered with the agent.
  Status result;
  bool done = false;
  agents.agent_on(0).establish(a->id(), b->id(), orch::Transport::shm,
                               [&](Result<ChannelPtr> ch) {
    result = ch.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::unavailable);
}

TEST_F(AgentFixture, UnknownContainerRejected) {
  Env env(1);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  Status result;
  bool done = false;
  agents.agent_on(0).establish(a->id(), 9999, orch::Transport::shm,
                               [&](Result<ChannelPtr> ch) {
    result = ch.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::not_found);
}

TEST_F(AgentFixture, ClosedEndpointDropsTraffic) {
  Env env(1);
  AgentFabric agents(*env.net_orch);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto [ep_a, ep_b] = open_channel(env, agents, a, b, orch::Transport::shm);
  int delivered = 0;
  ep_b->set_on_message([&](Buffer&&) { ++delivered; });
  ep_b->close();
  ASSERT_TRUE(ep_a->send(Buffer(100)).is_ok());
  env.loop().run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ep_a->send(Buffer(1)).is_ok(), true);  // sender side still open
  ep_a->close();
  EXPECT_EQ(ep_a->send(Buffer(1)).code(), Errc::failed_precondition);
}

}  // namespace
}  // namespace freeflow::agent
