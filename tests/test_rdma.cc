#include <gtest/gtest.h>

#include "fabric/cluster.h"
#include "rdma/cm.h"
#include "rdma/device.h"
#include "rdma/queue_pair.h"

namespace freeflow::rdma {
namespace {

struct RdmaFixture : ::testing::Test {
  RdmaFixture() {
    cluster.add_hosts(2);
    dev_a = std::make_unique<RdmaDevice>(cluster.host(0));
    dev_b = std::make_unique<RdmaDevice>(cluster.host(1));
  }

  /// Creates a connected QP pair between the two devices.
  std::pair<std::shared_ptr<QueuePair>, std::shared_ptr<QueuePair>> qp_pair(
      RdmaDevice& da, RdmaDevice& db) {
    auto qa = da.create_qp(da.create_cq(), da.create_cq());
    auto qb = db.create_qp(db.create_cq(), db.create_cq());
    EXPECT_TRUE(connect_pair(*qa, *qb).is_ok());
    return {qa, qb};
  }

  bool run_until(const std::function<bool()>& pred, SimDuration budget = k_second) {
    const SimTime deadline = cluster.loop().now() + budget;
    for (;;) {
      if (pred()) return true;
      if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
    }
  }

  static std::size_t drain(CompletionQueue& cq, std::vector<WorkCompletion>& out) {
    WorkCompletion wc;
    std::size_t n = 0;
    while (cq.poll({&wc, 1}) == 1) {
      out.push_back(wc);
      ++n;
    }
    return n;
  }

  fabric::Cluster cluster;
  std::unique_ptr<RdmaDevice> dev_a;
  std::unique_ptr<RdmaDevice> dev_b;
};

TEST_F(RdmaFixture, MrRegistrationAndBounds) {
  auto mr = dev_a->reg_mr(4096);
  EXPECT_EQ(mr->length(), 4096u);
  EXPECT_NE(mr->lkey(), mr->rkey());
  EXPECT_TRUE(mr->slice(0, 4096).is_ok());
  EXPECT_FALSE(mr->slice(1, 4096).is_ok());
  EXPECT_EQ(dev_a->mr_by_rkey(mr->rkey()), mr);
  EXPECT_EQ(dev_a->mr_by_rkey(0xDEAD), nullptr);
}

TEST_F(RdmaFixture, PostRequiresConnectedQp) {
  auto qp = dev_a->create_qp(dev_a->create_cq(), dev_a->create_cq());
  auto mr = dev_a->reg_mr(128);
  SendWr wr;
  wr.local = {mr, 0, 128};
  EXPECT_EQ(qp->post_send(wr).code(), Errc::failed_precondition);
}

TEST_F(RdmaFixture, PostValidatesMrBounds) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto mr = dev_a->reg_mr(128);
  SendWr wr;
  wr.local = {mr, 64, 128};  // overruns
  EXPECT_EQ(qa->post_send(wr).code(), Errc::invalid_argument);
  RecvWr rwr;
  rwr.local = {mr, 100, 100};
  EXPECT_EQ(qa->post_recv(rwr).code(), Errc::invalid_argument);
}

TEST_F(RdmaFixture, SendRecvDeliversDataAndCompletions) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(64 * 1024);
  auto dst = dev_b->reg_mr(64 * 1024);
  fill_pattern(src->data().mutable_view(), 21);

  RecvWr rwr;
  rwr.wr_id = 7;
  rwr.local = {dst, 0, dst->length()};
  ASSERT_TRUE(qb->post_recv(rwr).is_ok());

  SendWr swr;
  swr.wr_id = 9;
  swr.opcode = Opcode::send;
  swr.local = {src, 0, src->length()};
  ASSERT_TRUE(qa->post_send(swr).is_ok());

  std::vector<WorkCompletion> send_wcs, recv_wcs;
  EXPECT_TRUE(run_until([&]() {
    drain(*qa->send_cq(), send_wcs);
    drain(*qb->recv_cq(), recv_wcs);
    return !send_wcs.empty() && !recv_wcs.empty();
  }));
  EXPECT_EQ(send_wcs[0].wr_id, 9u);
  EXPECT_EQ(send_wcs[0].status, WcStatus::success);
  EXPECT_EQ(recv_wcs[0].wr_id, 7u);
  EXPECT_EQ(recv_wcs[0].byte_len, 64u * 1024);
  EXPECT_TRUE(check_pattern(dst->data().view(), 21));
}

TEST_F(RdmaFixture, SendBeforeRecvWaitsRnr) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(4096);
  auto dst = dev_b->reg_mr(4096);
  fill_pattern(src->data().mutable_view(), 3);

  SendWr swr;
  swr.local = {src, 0, 4096};
  ASSERT_TRUE(qa->post_send(swr).is_ok());
  cluster.loop().run();  // chunk arrives, no recv posted yet

  std::vector<WorkCompletion> recv_wcs;
  drain(*qb->recv_cq(), recv_wcs);
  EXPECT_TRUE(recv_wcs.empty());

  RecvWr rwr;
  rwr.local = {dst, 0, 4096};
  ASSERT_TRUE(qb->post_recv(rwr).is_ok());
  EXPECT_TRUE(run_until([&]() { return drain(*qb->recv_cq(), recv_wcs) > 0; }));
  EXPECT_TRUE(check_pattern(dst->data().view(), 3));
}

TEST_F(RdmaFixture, RecvTooSmallYieldsLengthError) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(8192);
  auto dst = dev_b->reg_mr(1024);
  RecvWr rwr;
  rwr.local = {dst, 0, 1024};
  ASSERT_TRUE(qb->post_recv(rwr).is_ok());
  SendWr swr;
  swr.local = {src, 0, 8192};
  ASSERT_TRUE(qa->post_send(swr).is_ok());

  std::vector<WorkCompletion> recv_wcs, send_wcs;
  EXPECT_TRUE(run_until([&]() {
    drain(*qb->recv_cq(), recv_wcs);
    drain(*qa->send_cq(), send_wcs);
    return !recv_wcs.empty() && !send_wcs.empty();
  }));
  EXPECT_EQ(recv_wcs[0].status, WcStatus::local_length_error);
  EXPECT_EQ(send_wcs[0].status, WcStatus::local_length_error);  // NAKed back
}

TEST_F(RdmaFixture, WritePlacesDataRemotelyWithoutRecv) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(128 * 1024);
  auto dst = dev_b->reg_mr(256 * 1024);
  fill_pattern(src->data().mutable_view(), 33);

  SendWr wr;
  wr.wr_id = 1;
  wr.opcode = Opcode::write;
  wr.local = {src, 0, src->length()};
  wr.remote = {dst->rkey(), 4096};
  ASSERT_TRUE(qa->post_send(wr).is_ok());

  std::vector<WorkCompletion> wcs;
  EXPECT_TRUE(run_until([&]() { return drain(*qa->send_cq(), wcs) > 0; }));
  EXPECT_EQ(wcs[0].status, WcStatus::success);
  EXPECT_TRUE(check_pattern(ByteSpan{dst->data().data() + 4096, 128 * 1024}, 33));
  // One-sided: no completion on the passive side.
  std::vector<WorkCompletion> passive;
  EXPECT_EQ(drain(*qb->recv_cq(), passive), 0u);
}

TEST_F(RdmaFixture, WriteBadRkeyFailsWithRemoteAccessError) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(4096);
  SendWr wr;
  wr.opcode = Opcode::write;
  wr.local = {src, 0, 4096};
  wr.remote = {0xBEEF, 0};
  ASSERT_TRUE(qa->post_send(wr).is_ok());
  std::vector<WorkCompletion> wcs;
  EXPECT_TRUE(run_until([&]() { return drain(*qa->send_cq(), wcs) > 0; }));
  EXPECT_EQ(wcs[0].status, WcStatus::remote_access_error);
  EXPECT_EQ(qa->state(), QpState::error);
}

TEST_F(RdmaFixture, ReadFetchesRemoteData) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto local = dev_a->reg_mr(64 * 1024);
  auto remote = dev_b->reg_mr(64 * 1024);
  fill_pattern(remote->data().mutable_view(), 55);

  SendWr wr;
  wr.wr_id = 2;
  wr.opcode = Opcode::read;
  wr.local = {local, 0, local->length()};
  wr.remote = {remote->rkey(), 0};
  ASSERT_TRUE(qa->post_send(wr).is_ok());

  std::vector<WorkCompletion> wcs;
  EXPECT_TRUE(run_until([&]() { return drain(*qa->send_cq(), wcs) > 0; }));
  EXPECT_EQ(wcs[0].opcode, Opcode::read);
  EXPECT_EQ(wcs[0].status, WcStatus::success);
  EXPECT_TRUE(check_pattern(local->data().view(), 55));
}

TEST_F(RdmaFixture, ReadDoesNotBurnRemoteHostCpu) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto local = dev_a->reg_mr(1 << 20);
  auto remote = dev_b->reg_mr(1 << 20);
  const double remote_cpu_before = cluster.host(1).cpu().busy_ns_total();

  SendWr wr;
  wr.opcode = Opcode::read;
  wr.local = {local, 0, local->length()};
  wr.remote = {remote->rkey(), 0};
  ASSERT_TRUE(qa->post_send(wr).is_ok());
  std::vector<WorkCompletion> wcs;
  EXPECT_TRUE(run_until([&]() { return drain(*qa->send_cq(), wcs) > 0; }));
  // The defining RDMA property: the passive side's CPU did nothing.
  EXPECT_DOUBLE_EQ(cluster.host(1).cpu().busy_ns_total(), remote_cpu_before);
  // But its NIC processor worked hard.
  EXPECT_GT(dev_b->nic_proc().busy_ns_total(), 0.0);
}

TEST_F(RdmaFixture, MessagesArriveInPostOrder) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(10 * 1024);
  auto dst = dev_b->reg_mr(10 * 1024);
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 10; ++i) {
    RecvWr rwr;
    rwr.wr_id = static_cast<std::uint64_t>(i);
    rwr.local = {dst, static_cast<std::size_t>(i) * 1024, 1024};
    ASSERT_TRUE(qb->post_recv(rwr).is_ok());
  }
  for (int i = 0; i < 10; ++i) {
    SendWr swr;
    swr.wr_id = static_cast<std::uint64_t>(i);
    swr.local = {src, static_cast<std::size_t>(i) * 1024, 1024};
    ASSERT_TRUE(qa->post_send(swr).is_ok());
  }
  std::vector<WorkCompletion> wcs;
  EXPECT_TRUE(run_until([&]() {
    drain(*qb->recv_cq(), wcs);
    return wcs.size() == 10;
  }));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(wcs[i].wr_id, i);
}

TEST_F(RdmaFixture, SendQueueDepthEnforced) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(1024);
  SendWr wr;
  wr.local = {src, 0, 64};
  QpAttr attr;
  int accepted = 0;
  for (std::uint32_t i = 0; i < attr.max_send_wr + 50; ++i) {
    if (qa->post_send(wr).is_ok()) {
      ++accepted;
    } else {
      break;
    }
  }
  EXPECT_EQ(accepted, static_cast<int>(attr.max_send_wr));
}

TEST_F(RdmaFixture, ThroughputCappedAtLineRate) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  const std::size_t msg = 1 << 20;
  auto src = dev_a->reg_mr(msg);
  auto dst = dev_b->reg_mr(msg);

  std::uint64_t bytes_done = 0;
  const int total_msgs = 400;  // 400 MiB
  int inflight = 0, posted = 0;

  std::function<void()> pump = [&]() {
    while (inflight < 8 && posted < total_msgs) {
      SendWr wr;
      wr.opcode = Opcode::write;
      wr.local = {src, 0, msg};
      wr.remote = {dst->rkey(), 0};
      ASSERT_TRUE(qa->post_send(wr).is_ok());
      ++inflight;
      ++posted;
    }
  };
  qa->send_cq()->set_notify([&]() {
    WorkCompletion wc;
    while (qa->send_cq()->poll({&wc, 1}) == 1) {
      --inflight;
      bytes_done += msg;
    }
    pump();
  });
  const SimTime start = cluster.loop().now();
  pump();
  EXPECT_TRUE(run_until([&]() { return bytes_done == 400ull * msg; }, 600 * k_second));
  const double gbps = throughput_gbps(bytes_done, cluster.loop().now() - start);
  EXPECT_GT(gbps, 34.0);
  EXPECT_LE(gbps, 40.5);  // line rate is the binding constraint
}

TEST_F(RdmaFixture, IntraHostHairpinAlsoHitsLineRate) {
  // Two containers on ONE host, RDMA through the NIC (paper §2.3.1: RDMA
  // "only" improves intra-host throughput to 40 Gb/s).
  auto qa = dev_a->create_qp(dev_a->create_cq(), dev_a->create_cq());
  auto qb = dev_a->create_qp(dev_a->create_cq(), dev_a->create_cq());
  ASSERT_TRUE(connect_pair(*qa, *qb).is_ok());

  const std::size_t msg = 1 << 20;
  auto src = dev_a->reg_mr(msg);
  auto dst = dev_a->reg_mr(msg);
  std::uint64_t done = 0;
  int inflight = 0, posted = 0;
  const int total = 200;
  std::function<void()> pump = [&]() {
    while (inflight < 8 && posted < total) {
      SendWr wr;
      wr.opcode = Opcode::write;
      wr.local = {src, 0, msg};
      wr.remote = {dst->rkey(), 0};
      ASSERT_TRUE(qa->post_send(wr).is_ok());
      ++inflight;
      ++posted;
    }
  };
  qa->send_cq()->set_notify([&]() {
    WorkCompletion wc;
    while (qa->send_cq()->poll({&wc, 1}) == 1) {
      --inflight;
      done += msg;
    }
    pump();
  });
  const SimTime start = cluster.loop().now();
  pump();
  EXPECT_TRUE(run_until([&]() { return done == 200ull * msg; }, 600 * k_second));
  const double gbps = throughput_gbps(done, cluster.loop().now() - start);
  EXPECT_GT(gbps, 34.0);
  EXPECT_LE(gbps, 40.5);
}

TEST_F(RdmaFixture, CqOverflowLatches) {
  CompletionQueue cq(2);
  WorkCompletion wc;
  cq.push(wc);
  cq.push(wc);
  EXPECT_FALSE(cq.overflowed());
  cq.push(wc);  // over capacity
  EXPECT_TRUE(cq.overflowed());
  EXPECT_EQ(cq.depth(), 2u);  // the overflowing entry was dropped
}

TEST_F(RdmaFixture, CqNotifyFiresPerCompletion) {
  CompletionQueue cq(16);
  int notified = 0;
  cq.set_notify([&]() { ++notified; });
  WorkCompletion wc;
  cq.push(wc);
  cq.push(wc);
  EXPECT_EQ(notified, 2);
}

TEST_F(RdmaFixture, AsyncCmConnects) {
  auto qa = dev_a->create_qp(dev_a->create_cq(), dev_a->create_cq());
  auto qb = dev_b->create_qp(dev_b->create_cq(), dev_b->create_cq());
  Status result = internal_error("not called");
  connect_pair_async(qa, qb, [&](Status s) { result = s; });
  EXPECT_EQ(qa->state(), QpState::reset);  // not synchronous
  cluster.loop().run();
  EXPECT_TRUE(result.is_ok());
  EXPECT_EQ(qa->state(), QpState::ready);
  EXPECT_EQ(qb->state(), QpState::ready);
  EXPECT_EQ(qa->remote_qp(), qb->num());
}

TEST_F(RdmaFixture, ZeroLengthSend) {
  auto [qa, qb] = qp_pair(*dev_a, *dev_b);
  auto src = dev_a->reg_mr(64);
  auto dst = dev_b->reg_mr(64);
  RecvWr rwr;
  rwr.local = {dst, 0, 64};
  ASSERT_TRUE(qb->post_recv(rwr).is_ok());
  SendWr swr;
  swr.local = {src, 0, 0};
  ASSERT_TRUE(qa->post_send(swr).is_ok());
  std::vector<WorkCompletion> wcs;
  EXPECT_TRUE(run_until([&]() {
    WorkCompletion wc;
    while (qb->recv_cq()->poll({&wc, 1}) == 1) wcs.push_back(wc);
    return !wcs.empty();
  }));
  EXPECT_EQ(wcs[0].byte_len, 0u);
}

}  // namespace
}  // namespace freeflow::rdma
