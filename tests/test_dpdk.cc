#include <gtest/gtest.h>

#include "dpdk/pmd.h"
#include "fabric/cluster.h"

namespace freeflow::dpdk {
namespace {

struct DpdkFixture : ::testing::Test {
  DpdkFixture() {
    cluster.add_hosts(2);
    port_a = std::make_unique<DpdkPort>(cluster.host(0));
    port_b = std::make_unique<DpdkPort>(cluster.host(1));
  }

  bool run_until(const std::function<bool()>& pred, SimDuration budget = k_second) {
    const SimTime deadline = cluster.loop().now() + budget;
    for (;;) {
      if (pred()) return true;
      if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
    }
  }

  fabric::Cluster cluster;
  std::unique_ptr<DpdkPort> port_a;
  std::unique_ptr<DpdkPort> port_b;
};

TEST_F(DpdkFixture, SendRequiresRunningPmd) {
  EXPECT_EQ(port_a->send(1, Buffer(10)).code(), Errc::failed_precondition);
  port_a->start();
  port_b->start();
  EXPECT_TRUE(port_a->send(1, Buffer(10)).is_ok());
}

TEST_F(DpdkFixture, MessageRoundTripWithIntegrity) {
  port_a->start();
  port_b->start();
  Buffer got;
  fabric::HostId from = 99;
  port_b->set_on_message([&](fabric::HostId src, Buffer&& msg) {
    from = src;
    got = std::move(msg);
  });
  Buffer msg(100000);
  fill_pattern(msg.mutable_view(), 8);
  ASSERT_TRUE(port_a->send(1, std::move(msg)).is_ok());
  EXPECT_TRUE(run_until([&]() { return !got.empty(); }));
  EXPECT_EQ(from, 0u);
  EXPECT_EQ(got.size(), 100000u);
  EXPECT_TRUE(check_pattern(got.view(), 8));
}

TEST_F(DpdkFixture, LargeMessageFragmentsAndReassembles) {
  port_a->start();
  port_b->start();
  Buffer got;
  port_b->set_on_message([&](fabric::HostId, Buffer&& msg) { got = std::move(msg); });
  Buffer msg(3 * 1024 * 1024 + 17);  // many 4 KiB frames + remainder
  fill_pattern(msg.mutable_view(), 44);
  ASSERT_TRUE(port_a->send(1, std::move(msg)).is_ok());
  EXPECT_TRUE(run_until([&]() { return got.size() == 3 * 1024 * 1024 + 17; }));
  EXPECT_TRUE(check_pattern(got.view(), 44));
  EXPECT_EQ(port_b->messages_delivered(), 1u);
}

TEST_F(DpdkFixture, InterleavedSendersDemuxCorrectly) {
  fabric::Cluster big;
  big.add_hosts(3);
  DpdkPort p0(big.host(0)), p1(big.host(1)), p2(big.host(2));
  p0.start();
  p1.start();
  p2.start();
  std::map<fabric::HostId, Buffer> got;
  p2.set_on_message([&](fabric::HostId src, Buffer&& msg) { got[src] = std::move(msg); });
  Buffer m0(500000), m1(400000);
  fill_pattern(m0.mutable_view(), 1);
  fill_pattern(m1.mutable_view(), 2);
  ASSERT_TRUE(p0.send(2, std::move(m0)).is_ok());
  ASSERT_TRUE(p1.send(2, std::move(m1)).is_ok());
  const SimTime deadline = big.loop().now() + k_second;
  while (got.size() < 2 && big.loop().now() < deadline) {
    if (!big.loop().step()) break;
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(check_pattern(got[0].view(), 1));
  EXPECT_TRUE(check_pattern(got[1].view(), 2));
}

TEST_F(DpdkFixture, SpinAccountingTracksWallTime) {
  port_a->start();
  cluster.loop().run_for(10 * k_millisecond);
  EXPECT_NEAR(port_a->spin_core_busy_ns(), 1e7, 1.0);
  port_a->stop();
  cluster.loop().run_for(10 * k_millisecond);
  EXPECT_NEAR(port_a->spin_core_busy_ns(), 1e7, 1.0);  // frozen after stop
}

TEST_F(DpdkFixture, StoppedPortDropsFrames) {
  port_a->start();  // b stays stopped
  int delivered = 0;
  port_b->set_on_message([&](fabric::HostId, Buffer&&) { ++delivered; });
  ASSERT_TRUE(port_a->send(1, Buffer(100)).is_ok());
  cluster.loop().run();
  EXPECT_EQ(delivered, 0);
}

TEST_F(DpdkFixture, ThroughputNearLineRateWithLowPerPacketCost) {
  port_a->start();
  port_b->start();
  std::uint64_t received = 0;
  port_b->set_on_message([&](fabric::HostId, Buffer&& m) { received += m.size(); });
  const std::size_t msg = 1 << 20;
  const int count = 200;
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(port_a->send(1, Buffer(msg)).is_ok());
  }
  const SimTime start = cluster.loop().now();
  EXPECT_TRUE(run_until([&]() { return received == count * msg; }, 600 * k_second));
  const double gbps = throughput_gbps(received, cluster.loop().now() - start);
  EXPECT_GT(gbps, 30.0);
  EXPECT_LE(gbps, 40.5);
}

}  // namespace
}  // namespace freeflow::dpdk
