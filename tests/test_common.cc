#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>

#include "common/bytes.h"
#include "common/histogram.h"
#include "common/inline_function.h"
#include "common/rng.h"
#include "common/slab_pool.h"
#include "common/status.h"
#include "common/units.h"

namespace freeflow {
namespace {

// ----------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::ok);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = permission_denied("nope");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::permission_denied);
  EXPECT_EQ(s.to_string(), "permission_denied: nope");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(not_found("a"), not_found("b"));
  EXPECT_FALSE(not_found("a") == timed_out("a"));
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(Errc::internal); ++c) {
    EXPECT_NE(errc_name(static_cast<Errc>(c)), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = not_found("missing");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::not_found);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

// ----------------------------------------------------------------- Buffer

TEST(Buffer, RoundTripsStrings) {
  Buffer b = Buffer::from_string("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.to_string(), "hello");
}

TEST(Buffer, AppendGrows) {
  Buffer b;
  b.append(Buffer::from_string("ab").view());
  b.append(Buffer::from_string("cd").view());
  EXPECT_EQ(b.to_string(), "abcd");
}

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const Buffer b = Buffer::from_string("123456789");
  EXPECT_EQ(crc32(b.view()), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(ByteSpan{}), 0u); }

TEST(Crc32, SensitiveToEveryByte) {
  Buffer b(64);
  fill_pattern(b.mutable_view(), 1);
  const std::uint32_t base = crc32(b.view());
  for (std::size_t i = 0; i < b.size(); i += 7) {
    Buffer c = b;
    c.data()[i] ^= std::byte{1};
    EXPECT_NE(crc32(c.view()), base) << "flip at " << i;
  }
}

TEST(Pattern, DeterministicAndSeedSensitive) {
  Buffer a(256), b(256), c(256);
  fill_pattern(a.mutable_view(), 1);
  fill_pattern(b.mutable_view(), 1);
  fill_pattern(c.mutable_view(), 2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(check_pattern(a.view(), 1));
  EXPECT_FALSE(check_pattern(a.view(), 2));
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  // Bucketed quantile is within the bucket's relative error (~3 %).
  EXPECT_NEAR(static_cast<double>(h.p50()), 1234.0, 1234.0 * 0.05);
}

TEST(Histogram, QuantilesOfUniformRamp) {
  Histogram h;
  for (int v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 5000.0 * 0.06);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9900.0, 9900.0 * 0.06);
  EXPECT_EQ(h.max(), 10000);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(Histogram, MergeMatchesCombined) {
  Histogram a, b, combined;
  for (int v = 0; v < 5000; ++v) {
    a.record(v);
    combined.record(v);
  }
  for (int v = 5000; v < 10000; ++v) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.p50(), combined.p50());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(Histogram, MergeMixedResolutionKeepsExactMoments) {
  // Merging across resolutions re-records bucket midpoints, but count, sum
  // (hence mean), min and max are carried over exactly in both directions.
  Histogram fine(5), coarse(2);
  std::uint64_t n = 0;
  std::int64_t sum = 0;
  for (int v = 1; v <= 4000; ++v) {
    fine.record(v);
    ++n;
    sum += v;
  }
  for (int v = 4001; v <= 8000; ++v) {
    coarse.record(v);
    ++n;
    sum += v;
  }
  Histogram into_coarse(2);
  into_coarse.merge(fine);    // fine -> coarse
  into_coarse.merge(coarse);  // same resolution
  Histogram into_fine(5);
  into_fine.merge(coarse);  // coarse -> fine
  into_fine.merge(fine);
  for (const Histogram* h : {&into_coarse, &into_fine}) {
    EXPECT_EQ(h->count(), n);
    EXPECT_EQ(h->min(), 1);
    EXPECT_EQ(h->max(), 8000);
    EXPECT_NEAR(h->mean(), static_cast<double>(sum) / static_cast<double>(n), 1e-9);
  }
}

TEST(Histogram, MergeMixedResolutionQuantileDriftBounded) {
  // Quantiles after a cross-resolution merge must stay within one bucket of
  // the *coarser* histogram: relative error <= 2^-sub_log2 (plus the fine
  // side's own bucketing), here 1/4 for sub_log2 = 2.
  Histogram fine(5), reference(2), merged(2);
  for (int v = 1; v <= 10000; ++v) {
    fine.record(v);
    reference.record(v);
  }
  merged.merge(fine);
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const auto want = static_cast<double>(reference.quantile(q));
    const auto got = static_cast<double>(merged.quantile(q));
    EXPECT_NEAR(got, want, want * 0.25) << "q=" << q;
  }

  // And the other direction: coarse counts re-recorded into a fine grid
  // can only be off by the coarse bucket they came from.
  Histogram coarse(2), fine_ref(5), fine_merged(5);
  for (int v = 1; v <= 10000; ++v) {
    coarse.record(v);
    fine_ref.record(v);
  }
  fine_merged.merge(coarse);
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const auto want = static_cast<double>(fine_ref.quantile(q));
    const auto got = static_cast<double>(fine_merged.quantile(q));
    EXPECT_NEAR(got, want, want * 0.25) << "q=" << q;
  }
}

TEST(Histogram, MergeMixedResolutionIntoEmptyAdoptsBounds) {
  Histogram coarse(2);
  coarse.record(100);
  coarse.record(900);
  Histogram fine(5);
  fine.merge(coarse);  // empty target, different resolution
  EXPECT_EQ(fine.count(), 2u);
  EXPECT_EQ(fine.min(), 100);
  EXPECT_EQ(fine.max(), 900);
  Histogram empty(2);
  fine.merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(fine.count(), 2u);
  EXPECT_EQ(fine.min(), 100);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), -5);  // min/max track raw values
}

class HistogramQuantileSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HistogramQuantileSweep, RelativeErrorBounded) {
  // Property: for a point mass at V, every quantile is within ~3 % of V.
  const std::int64_t v = GetParam();
  Histogram h;
  h.record_n(v, 1000);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_NEAR(static_cast<double>(h.quantile(q)), static_cast<double>(v),
                static_cast<double>(v) * 0.05 + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramQuantileSweep,
                         ::testing::Values(1, 17, 1000, 123456, 99999999,
                                           123456789012LL));

TEST(FormatNs, HumanReadableAcrossScales) {
  EXPECT_EQ(format_ns(830), "830ns");
  EXPECT_EQ(format_ns(12'500), "12.50us");
  EXPECT_EQ(format_ns(1'250'000), "1.25ms");
  EXPECT_EQ(format_ns(2'000'000'000), "2.00s");
}

// ------------------------------------------------------------------ units

TEST(Units, TransmissionTime) {
  // 1500 bytes at 1 Gb/s = 12 us.
  EXPECT_EQ(transmission_time(1500, 1e9), 12000);
  EXPECT_EQ(transmission_time(0, 1e9), 0);
}

TEST(Units, ThroughputGbps) {
  // 1 GB in 1 second = 8 Gb/s.
  EXPECT_NEAR(throughput_gbps(1'000'000'000, k_second), 8.0, 1e-9);
  EXPECT_EQ(throughput_gbps(100, 0), 0.0);
}

TEST(Units, Literals) {
  EXPECT_EQ(64_KiB, 65536u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

// --------------------------------------------------------- InlineFunction

TEST(InlineFunction, DefaultIsEmpty) {
  common::InlineFunction<void(), 32> f;
  EXPECT_FALSE(f);
  f = []() {};
  EXPECT_TRUE(f);
  f.reset();
  EXPECT_FALSE(f);
}

TEST(InlineFunction, InvokesWithArgsAndResult) {
  common::InlineFunction<int(int, int), 16> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, CaptureUpToCapacityFitsInline) {
  // Exactly-at-capacity captures must compile and work: the storage is
  // 8-byte aligned (not max_align_t), so a 32-byte capture fits Capacity 32.
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  common::InlineFunction<std::uint64_t(), 32> f = [a, b, c, d]() { return a + b + c + d; };
  static_assert(sizeof(f) == 32 + sizeof(void*));
  EXPECT_EQ(f(), 10u);
}

TEST(InlineFunction, MoveTransfersStateAndEmptiesSource) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  common::InlineFunction<int(), 32> f = [token = std::move(token)]() { return *token; };
  common::InlineFunction<int(), 32> g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): post-move state is specified
  ASSERT_TRUE(g);
  EXPECT_EQ(g(), 7);
  EXPECT_FALSE(alive.expired());
  g.reset();
  EXPECT_TRUE(alive.expired());  // capture destroyed exactly once
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  common::InlineFunction<void(), 32> f = [token = std::move(token)]() {};
  f = []() {};
  EXPECT_TRUE(alive.expired());
  EXPECT_TRUE(f);
}

TEST(InlineFunction, DestructorReleasesCapture) {
  std::weak_ptr<int> alive;
  {
    auto token = std::make_shared<int>(9);
    alive = token;
    common::InlineFunction<void(), 32> f = [token = std::move(token)]() {};
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(InlineFunction, MutableLambdaKeepsStateAcrossCalls) {
  common::InlineFunction<int(), 16> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

// ---------------------------------------------------------------- SlabPool

TEST(SlabPool, RecyclesBlocksAcrossAcquisitions) {
  common::SlabPool<std::uint64_t> pool;
  auto p1 = pool.make(42u);
  EXPECT_EQ(*p1, 42u);
  const void* first = p1.get();
  p1.reset();  // returns the block to the freelist
  EXPECT_GE(pool.free_blocks(), 1u);
  auto p2 = pool.make(7u);
  EXPECT_EQ(p2.get(), first);  // same object+control block, recycled
  EXPECT_EQ(*p2, 7u);
}

TEST(SlabPool, SteadyStateChurnsWithoutGrowth) {
  common::SlabPool<int> pool;
  { auto warm = pool.make(0); }
  const std::size_t cap = pool.capacity();
  for (int i = 0; i < 10'000; ++i) {
    auto p = pool.make(i);
    EXPECT_EQ(*p, i);
  }
  EXPECT_EQ(pool.capacity(), cap);  // no new chunks carved
}

}  // namespace
}  // namespace freeflow
