// Connection-preserving live migration acceptance: the MigrationCoordinator
// must move a container with live connections — quiesce, capture, transfer,
// resume — with zero lost or reordered bytes, byte-exact payloads, and a
// bounded blackout; including while racing reactive failover, after a
// quiesce-deadline expiry, deterministically under a fixed seed, and when
// proactive triggers (degraded NIC, severed path) initiate the move.
#include <gtest/gtest.h>

#include "core/freeflow.h"
#include "faults/fault_injector.h"
#include "migration/migration.h"
#include "sim_env.h"
#include "stream/stream_net.h"

namespace freeflow::migration {
namespace {

using freeflow::testing::Env;

/// Deterministic byte pattern keyed by absolute stream offset (the
/// test_faults idiom): one check catches loss, duplication and reordering.
constexpr std::uint8_t pattern_byte(std::uint64_t offset) {
  return static_cast<std::uint8_t>((offset * 131 + 17) & 0xFF);
}

orch::Transport transport_of(const core::ContainerNetPtr& net) {
  auto conns = net->connections();
  return conns.empty() ? orch::Transport::tcp_overlay : conns[0].transport;
}

struct Pair {
  orch::ContainerPtr a, b;
  core::ContainerNetPtr net_a, net_b;
};

Pair attach_pair(Env& env, fabric::HostId ha, fabric::HostId hb) {
  Pair p;
  p.a = env.deploy("a", 1, ha);
  p.b = env.deploy("b", 1, hb);
  auto& ff = env.freeflow();
  auto na = ff.attach(p.a->id());
  auto nb = ff.attach(p.b->id());
  EXPECT_TRUE(na.is_ok());
  EXPECT_TRUE(nb.is_ok());
  p.net_a = *na;
  p.net_b = *nb;
  return p;
}

/// Pattern-checked one-way FlowSocket transfer, paced on writability with a
/// periodic re-pump (rides out pause/resume windows where on_space is
/// silent). Also keeps an order-sensitive FNV-1a hash of the received bytes
/// for the determinism test.
struct Stream {
  core::FlowSocketPtr client, server;
  std::uint64_t target = 0;
  std::uint64_t sent = 0;
  std::uint64_t verified = 0;
  std::uint64_t rx_hash = 1469598103934665603ull;
  bool corrupt = false;
  std::shared_ptr<std::function<void()>> pump;
  std::shared_ptr<std::function<void()>> tick;

  [[nodiscard]] bool done() const { return !corrupt && verified >= target; }
};

std::shared_ptr<Stream> start_stream(Env& env, Pair& p, std::uint16_t port,
                                     std::uint64_t target) {
  auto st = std::make_shared<Stream>();
  st->target = target;

  EXPECT_TRUE(p.net_b->sock_listen(port, [st](core::FlowSocketPtr s) {
    st->server = s;
    s->set_on_data([st](Buffer&& b) {
      const auto* bytes = b.data();
      for (std::size_t i = 0; i < b.size(); ++i) {
        const auto got = static_cast<std::uint8_t>(bytes[i]);
        if (got != pattern_byte(st->verified + i)) {
          st->corrupt = true;
          return;
        }
        st->rx_hash = (st->rx_hash ^ got) * 1099511628211ull;
      }
      st->verified += b.size();
    });
  }).is_ok());
  p.net_a->sock_connect(p.b->ip(), port, [st](Result<core::FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok()) << s.status();
    st->client = *s;
  });
  EXPECT_TRUE(env.wait([&]() { return st->client != nullptr && st->server != nullptr; }));

  st->pump = std::make_shared<std::function<void()>>();
  std::weak_ptr<Stream> w = st;
  *st->pump = [w]() {
    auto stream = w.lock();
    if (stream == nullptr) return;
    while (stream->sent < stream->target && stream->client->writable()) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(64 * 1024, stream->target - stream->sent));
      Buffer msg(n);
      auto* out = msg.data();
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::byte>(pattern_byte(stream->sent + i));
      }
      ASSERT_TRUE(stream->client->send(std::move(msg)).is_ok());
      stream->sent += n;
    }
  };
  st->client->set_on_space([pump = st->pump]() { (*pump)(); });
  (*st->pump)();

  st->tick = std::make_shared<std::function<void()>>();
  sim::EventLoop* loop = &env.loop();
  *st->tick = [loop, w, wt = std::weak_ptr<std::function<void()>>(st->tick)]() {
    auto stream = w.lock();
    auto t = wt.lock();
    if (stream == nullptr || t == nullptr) return;
    (*stream->pump)();
    if (stream->sent >= stream->target) return;
    loop->schedule(50 * k_microsecond, [t]() { (*t)(); });
  };
  (*st->tick)();
  return st;
}

// ------------------------------------------------------------- acceptance

// A planned migration under a live 32 MB transfer: zero loss, byte-exact,
// drained within the quiesce deadline, blackout far under the reactive
// stop-and-copy default, and the move surfaced through ConnectionInfo on
// both endpoints.
TEST(Migration, PlannedMigrationZeroLossByteExact) {
  Env env(3);
  auto p = attach_pair(env, 0, 1);
  MigrationCoordinator coord(env.freeflow());
  auto st = start_stream(env, p, 7000, 32ull * 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->verified > 4 * 1024 * 1024; }));

  std::optional<MigrationReport> report;
  coord.migrate(p.b->id(), 2, [&](Result<MigrationReport> r) {
    ASSERT_TRUE(r.is_ok()) << r.status();
    report = *r;
  });
  ASSERT_TRUE(env.wait([&]() { return report.has_value(); }));
  EXPECT_EQ(report->src_host, 1u);
  EXPECT_EQ(report->dst_host, 2u);
  EXPECT_EQ(report->conduits_moved, 1u);
  EXPECT_TRUE(report->drained);
  EXPECT_GT(report->image_bytes, 0u);
  EXPECT_LT(report->blackout_ns, 10 * k_millisecond);
  EXPECT_EQ(p.b->host(), 2u);

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->verified, st->target);

  for (const auto* net : {&p.net_a, &p.net_b}) {
    auto conns = (*net)->connections();
    ASSERT_EQ(conns.size(), 1u);
    EXPECT_EQ(conns[0].migrations_completed, 1u);
    EXPECT_EQ(conns[0].last_migration_reason, core::MigrationReason::planned);
    EXPECT_EQ(conns[0].last_blackout_ns, static_cast<SimDuration>(report->blackout_ns));
  }
}

// The stream adapter (sockets-over-RDMA) path: the server container moves
// mid-transfer while the stream rides a per-stream RC QP; the splice back
// onto a fresh fallback, the replay, and the re-upgrade at the new
// placement must all be transparent.
TEST(Migration, StreamAdapterSurvivesPlannedMigration) {
  Env env(3);
  Pair base;
  base.a = env.deploy("a", 1, 0);
  base.b = env.deploy("b", 1, 1);
  auto& ff = env.freeflow();
  auto na = ff.attach(base.a->id());
  auto nb = ff.attach(base.b->id());
  ASSERT_TRUE(na.is_ok());
  ASSERT_TRUE(nb.is_ok());
  auto sa = stream::StreamNet::make(*na);
  auto sb = stream::StreamNet::make(*nb);
  MigrationCoordinator coord(ff);

  struct Xfer {
    stream::StreamSocketPtr client, server;
    std::uint64_t target = 16ull * 1024 * 1024;
    std::uint64_t sent = 0;
    std::uint64_t verified = 0;
    bool corrupt = false;
  };
  auto st = std::make_shared<Xfer>();
  ASSERT_TRUE(sb->listen(7100, [st](stream::StreamSocketPtr s) {
    st->server = s;
    s->set_on_data([st](Buffer&& b) {
      const auto* bytes = b.data();
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (static_cast<std::uint8_t>(bytes[i]) != pattern_byte(st->verified + i)) {
          st->corrupt = true;
          return;
        }
      }
      st->verified += b.size();
    });
  }).is_ok());
  sa->connect(base.b->ip(), 7100, [st](Result<stream::StreamSocketPtr> s) {
    ASSERT_TRUE(s.is_ok()) << s.status();
    st->client = *s;
  });
  ASSERT_TRUE(env.wait([&]() { return st->client != nullptr && st->server != nullptr; }));

  auto pump = std::make_shared<std::function<void()>>();
  *pump = [st]() {
    while (st->sent < st->target && st->client->writable()) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(64 * 1024, st->target - st->sent));
      Buffer msg(n);
      auto* out = msg.data();
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::byte>(pattern_byte(st->sent + i));
      }
      ASSERT_TRUE(st->client->send(std::move(msg)).is_ok());
      st->sent += n;
    }
  };
  st->client->set_on_space([pump]() { (*pump)(); });
  auto tick = std::make_shared<std::function<void()>>();
  sim::EventLoop* loop = &env.loop();
  *tick = [loop, pump, st, wt = std::weak_ptr<std::function<void()>>(tick)]() {
    auto t = wt.lock();
    if (t == nullptr) return;
    (*pump)();
    if (st->sent >= st->target) return;
    loop->schedule(50 * k_microsecond, [t]() { (*t)(); });
  };
  (*tick)();

  // Let the stream upgrade onto RDMA before moving it.
  ASSERT_TRUE(env.wait([&]() { return sa->upgrades() >= 1 && st->verified > 1024 * 1024; }));

  std::optional<MigrationReport> report;
  coord.migrate(base.b->id(), 2, [&](Result<MigrationReport> r) {
    ASSERT_TRUE(r.is_ok()) << r.status();
    report = *r;
  });
  ASSERT_TRUE(env.wait([&]() { return report.has_value(); }));
  EXPECT_EQ(report->conduits_moved, 1u);

  ASSERT_TRUE(env.wait([&]() { return !st->corrupt && st->verified >= st->target; },
                       60 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  // The stream re-upgrades onto a per-stream RC QP at the new placement.
  ASSERT_TRUE(env.wait([&]() { return sa->upgrades() >= 2; }, 20 * k_second));
}

// Planned migration racing a concurrent NIC-death failover on the PEER's
// host: the coordinator owns the moving side while the reactive machinery
// wants to rebind the same conduits — the move completes and not a byte is
// lost or reordered.
TEST(Migration, MigrationRacingNicDeathFailover) {
  Env env(3);
  auto p = attach_pair(env, 0, 1);
  MigrationCoordinator coord(env.freeflow());
  faults::FaultInjector injector(*env.net_orch, env.freeflow().agents());
  auto st = start_stream(env, p, 7001, 32ull * 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->verified > 4 * 1024 * 1024; }));
  ASSERT_EQ(transport_of(p.net_a), orch::Transport::rdma);

  std::optional<MigrationReport> report;
  coord.migrate(p.b->id(), 2, [&](Result<MigrationReport> r) {
    ASSERT_TRUE(r.is_ok()) << r.status();
    report = *r;
  });
  // The RDMA engine under the peer's half of the connection dies while the
  // quiesce drain is in flight.
  injector.apply({env.loop().now(), faults::FaultKind::rdma_down, 0});

  ASSERT_TRUE(env.wait([&]() { return report.has_value(); }, 30 * k_second));
  EXPECT_EQ(p.b->host(), 2u);
  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 120 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->verified, st->target);
  // The resumed conduit rides a non-RDMA transport: host 0's engine is dead.
  EXPECT_NE(transport_of(p.net_a), orch::Transport::rdma);
}

// A quiesce deadline too short to drain the retained window: capture simply
// carries the undrained tail, which replays at the destination and the peer
// dedups — lossless, exactly like reactive failover, just flagged.
TEST(Migration, QuiesceDeadlineExpiryFallsBack) {
  Env env(3);
  auto p = attach_pair(env, 0, 1);
  MigrationConfig config;
  config.quiesce_deadline_ns = 1;  // expires before any ack can land
  MigrationCoordinator coord(env.freeflow(), config);
  auto st = start_stream(env, p, 7002, 32ull * 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->verified > 4 * 1024 * 1024; }));

  // Migrate the SENDER: its retained window is busy mid-transfer, so the
  // 1 ns deadline cannot drain it.
  std::optional<MigrationReport> report;
  coord.migrate(p.a->id(), 2, [&](Result<MigrationReport> r) {
    ASSERT_TRUE(r.is_ok()) << r.status();
    report = *r;
  });
  ASSERT_TRUE(env.wait([&]() { return report.has_value(); }, 30 * k_second));
  EXPECT_FALSE(report->drained);
  EXPECT_GE(coord.quiesce_timeouts(), 1u);

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->verified, st->target);
}

// Two identical seeded runs of a migration under load produce byte-identical
// outcomes: same receive-order hash, same blackout, same image size.
TEST(Migration, SeededDeterminismByteIdentical) {
  struct Outcome {
    std::uint64_t rx_hash;
    std::uint64_t verified;
    SimDuration blackout;
    std::size_t image_bytes;
  };
  auto run = []() -> Outcome {
    Env env(3);
    auto p = attach_pair(env, 0, 1);
    MigrationCoordinator coord(env.freeflow());
    auto st = start_stream(env, p, 7003, 8ull * 1024 * 1024);
    EXPECT_TRUE(env.wait([&]() { return st->verified > 2 * 1024 * 1024; }));
    std::optional<MigrationReport> report;
    coord.migrate(p.b->id(), 2, [&](Result<MigrationReport> r) {
      EXPECT_TRUE(r.is_ok()) << r.status();
      report = *r;
    });
    EXPECT_TRUE(env.wait([&]() { return report.has_value() && st->done(); },
                         60 * k_second));
    return {st->rx_hash, st->verified, report->blackout_ns, report->image_bytes};
  };
  const Outcome first = run();
  const Outcome second = run();
  EXPECT_EQ(first.rx_hash, second.rx_hash);
  EXPECT_EQ(first.verified, second.verified);
  EXPECT_EQ(first.blackout, second.blackout);
  EXPECT_EQ(first.image_bytes, second.image_bytes);
}

// Migrating the server back onto the client's host re-decides the resumed
// conduit onto shared memory — the paper's intra-host fast path — and the
// stream keeps flowing over it.
TEST(Migration, MigrateBackToColocatedPicksShm) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  MigrationCoordinator coord(env.freeflow());
  auto st = start_stream(env, p, 7004, 16ull * 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->verified > 2 * 1024 * 1024; }));
  ASSERT_EQ(transport_of(p.net_a), orch::Transport::rdma);

  std::optional<MigrationReport> report;
  coord.migrate(p.b->id(), 0, [&](Result<MigrationReport> r) {
    ASSERT_TRUE(r.is_ok()) << r.status();
    report = *r;
  });
  ASSERT_TRUE(env.wait([&]() { return report.has_value(); }));
  EXPECT_EQ(p.b->host(), 0u);
  ASSERT_TRUE(env.wait([&]() { return transport_of(p.net_a) == orch::Transport::shm; }));

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->verified, st->target);
}

// ------------------------------------------------------ proactive triggers

// A NIC degrading below the coordinator's threshold (link up, rate
// collapsed) proactively evacuates the host's containers to the healthiest
// least-loaded host — a planned move end to end, no operator involved.
TEST(Migration, ProactiveDegradeTrigger) {
  Env env(3);
  auto p = attach_pair(env, 0, 1);
  MigrationCoordinator coord(env.freeflow());
  faults::FaultInjector injector(*env.net_orch, env.freeflow().agents());
  auto st = start_stream(env, p, 7005, 16ull * 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->verified > 1024 * 1024; }));

  injector.apply({env.loop().now(), faults::FaultKind::nic_degrade, 1, 0.25});
  // Host 2 is empty and healthy: the coordinator moves b there on its own.
  ASSERT_TRUE(env.wait([&]() { return p.b->host() == 2; }, 30 * k_second));
  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);

  ASSERT_TRUE(env.wait([&]() {
    auto conns = p.net_b->connections();
    return !conns.empty() && conns[0].migrations_completed >= 1;
  }));
  EXPECT_EQ(p.net_b->connections()[0].last_migration_reason,
            core::MigrationReason::degraded_nic);
  EXPECT_GE(coord.migrations_completed(), 1u);
}

// A fabric path partition (both NICs healthy, inter-host path dead): no
// transport shift can heal the pair, so the coordinator co-locates it — the
// higher-numbered side moves to the lower — and the resumed conduit rides
// shm, which no fabric fault can touch.
TEST(Migration, PathPartitionTriggerColocates) {
  Env env(3);
  auto p = attach_pair(env, 0, 1);
  MigrationCoordinator coord(env.freeflow());
  faults::FaultInjector injector(*env.net_orch, env.freeflow().agents());
  auto st = start_stream(env, p, 7006, 16ull * 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->verified > 1024 * 1024; }));

  injector.apply({env.loop().now(), faults::FaultKind::path_partition, 0, 1.0, 1});
  ASSERT_TRUE(env.wait([&]() { return p.b->host() == 0; }, 30 * k_second));
  ASSERT_TRUE(env.wait([&]() { return transport_of(p.net_a) == orch::Transport::shm; },
                       30 * k_second));
  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 120 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->verified, st->target);
  ASSERT_FALSE(p.net_b->connections().empty());
  EXPECT_EQ(p.net_b->connections()[0].last_migration_reason,
            core::MigrationReason::path_partition);
}

// ---------------------------------------------------------------- guards

// Validation surface: unknown containers, bad destinations, and moves onto
// the current host are rejected or trivially completed up front.
TEST(Migration, ValidatesRequestsUpFront) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  MigrationCoordinator coord(env.freeflow());

  Status status = ok_status();
  coord.migrate(9999, 1, [&](Result<MigrationReport> r) { status = r.status(); });
  EXPECT_EQ(status.code(), Errc::not_found);

  coord.migrate(p.b->id(), 99, [&](Result<MigrationReport> r) { status = r.status(); });
  EXPECT_EQ(status.code(), Errc::invalid_argument);

  std::optional<MigrationReport> trivial;
  coord.migrate(p.b->id(), 1, [&](Result<MigrationReport> r) {
    ASSERT_TRUE(r.is_ok());
    trivial = *r;
  });
  ASSERT_TRUE(trivial.has_value());  // same-host: no move, fires synchronously
  EXPECT_EQ(trivial->conduits_moved, 0u);
  EXPECT_EQ(trivial->blackout_ns, 0);
}

// MigrationImage encode/decode round-trips and rejects corrupt input.
TEST(Migration, ImageRoundTripAndValidation) {
  MigrationImage image;
  image.container = 42;
  image.src_host = 1;
  image.dst_host = 2;
  image.conduit_records.emplace_back(Buffer::from_string("record-one"));
  image.conduit_records.emplace_back(Buffer::from_string("r2"));

  Buffer wire = image.encode();
  EXPECT_EQ(wire.size(), image.byte_size());
  auto back = MigrationImage::decode(wire.view());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->container, 42u);
  EXPECT_EQ(back->src_host, 1u);
  EXPECT_EQ(back->dst_host, 2u);
  ASSERT_EQ(back->conduit_records.size(), 2u);
  EXPECT_EQ(back->conduit_records[0], image.conduit_records[0]);
  EXPECT_EQ(back->conduit_records[1], image.conduit_records[1]);

  Buffer truncated(wire.data(), wire.size() - 3);
  EXPECT_FALSE(MigrationImage::decode(truncated.view()).is_ok());
  Buffer garbage = Buffer::from_string("not an image");
  EXPECT_FALSE(MigrationImage::decode(garbage.view()).is_ok());
}

}  // namespace
}  // namespace freeflow::migration
