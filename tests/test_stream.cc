// Stream adapter (sockets-over-RDMA) acceptance: the StreamSocket surface
// must deliver a byte-exact, in-order stream while StreamNet splices the
// conduit between the overlay-TCP fallback and a per-stream RC QP — across
// the initial upgrade, forced mid-transfer failover, and re-upgrade.
#include <gtest/gtest.h>

#include "core/freeflow.h"
#include "faults/fault_injector.h"
#include "sim_env.h"
#include "stream/stream_net.h"

namespace freeflow::stream {
namespace {

using freeflow::testing::Env;

/// Deterministic byte pattern keyed by absolute stream offset (the
/// test_faults idiom): one check catches loss, duplication and reordering.
constexpr std::uint8_t pattern_byte(std::uint64_t offset) {
  return static_cast<std::uint8_t>((offset * 131 + 17) & 0xFF);
}

struct Pair {
  orch::ContainerPtr a, b;
  StreamNetPtr net_a, net_b;
};

Pair attach_pair(Env& env, fabric::HostId ha, fabric::HostId hb,
                 orch::TenantId tenant_b = 1) {
  Pair p;
  p.a = env.deploy("a", 1, ha);
  p.b = env.deploy("b", tenant_b, hb);
  auto& ff = env.freeflow();
  auto na = ff.attach(p.a->id());
  auto nb = ff.attach(p.b->id());
  EXPECT_TRUE(na.is_ok());
  EXPECT_TRUE(nb.is_ok());
  p.net_a = StreamNet::make(*na);
  p.net_b = StreamNet::make(*nb);
  return p;
}

/// A pattern-checked one-way transfer over StreamSockets, paced on
/// writability with the periodic re-pump that rides out failovers.
struct Xfer {
  StreamSocketPtr client, server;
  std::uint64_t target = 0;
  std::uint64_t sent = 0;
  std::uint64_t verified = 0;
  bool corrupt = false;
  std::shared_ptr<std::function<void()>> pump;
  std::shared_ptr<std::function<void()>> tick;

  [[nodiscard]] bool done() const { return !corrupt && verified >= target; }
};

std::shared_ptr<Xfer> start_xfer(Env& env, Pair& p, std::uint16_t port,
                                 std::uint64_t target) {
  auto st = std::make_shared<Xfer>();
  st->target = target;

  EXPECT_TRUE(p.net_b->listen(port, [st](StreamSocketPtr s) {
    st->server = s;
    s->set_on_data([st](Buffer&& b) {
      const auto* bytes = b.data();
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (static_cast<std::uint8_t>(bytes[i]) != pattern_byte(st->verified + i)) {
          st->corrupt = true;
          return;
        }
      }
      st->verified += b.size();
    });
  }).is_ok());
  p.net_a->connect(p.b->ip(), port, [st](Result<StreamSocketPtr> s) {
    ASSERT_TRUE(s.is_ok()) << s.status();
    st->client = *s;
  });
  EXPECT_TRUE(env.wait([&]() { return st->client != nullptr && st->server != nullptr; }));

  st->pump = std::make_shared<std::function<void()>>();
  std::weak_ptr<Xfer> w = st;
  *st->pump = [w]() {
    auto xfer = w.lock();
    if (xfer == nullptr) return;
    while (xfer->sent < xfer->target && xfer->client->writable()) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(64 * 1024, xfer->target - xfer->sent));
      Buffer msg(n);
      auto* out = msg.data();
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::byte>(pattern_byte(xfer->sent + i));
      }
      ASSERT_TRUE(xfer->client->send(std::move(msg)).is_ok());
      xfer->sent += n;
    }
  };
  st->client->set_on_space([pump = st->pump]() { (*pump)(); });
  (*st->pump)();

  // Splices don't always fire on_space; the periodic re-pump keeps the
  // stream moving through upgrade and failover windows.
  st->tick = std::make_shared<std::function<void()>>();
  sim::EventLoop* loop = &env.loop();
  *st->tick = [loop, w, wt = std::weak_ptr<std::function<void()>>(st->tick)]() {
    auto xfer = w.lock();
    auto t = wt.lock();
    if (xfer == nullptr || t == nullptr) return;
    (*xfer->pump)();
    if (xfer->sent >= xfer->target) return;
    loop->schedule(50 * k_microsecond, [t]() { (*t)(); });
  };
  (*st->tick)();
  return st;
}

// ------------------------------------------------------------- acceptance

// The stream starts on the fallback, upgrades to a per-stream RC QP, and an
// echo round-trip is byte-exact; nearly all payload bytes ride RDMA.
TEST(StreamAdapter, UpgradesToRdmaAndEchoesByteExact) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);

  StreamSocketPtr server;
  std::uint64_t echoed = 0;
  ASSERT_TRUE(p.net_b->listen(9000, [&](StreamSocketPtr s) {
    server = s;
    s->set_on_data([&, s](Buffer&& b) {
      echoed += b.size();
      ASSERT_TRUE(s->send(std::move(b)).is_ok());
    });
  }).is_ok());

  StreamSocketPtr client;
  std::uint64_t back = 0;
  bool corrupt = false;
  p.net_a->connect(p.b->ip(), 9000, [&](Result<StreamSocketPtr> s) {
    ASSERT_TRUE(s.is_ok()) << s.status();
    client = *s;
    client->set_on_data([&](Buffer&& b) {
      const auto* bytes = b.data();
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (static_cast<std::uint8_t>(bytes[i]) != pattern_byte(back + i)) corrupt = true;
      }
      back += b.size();
    });
  });
  ASSERT_TRUE(env.wait([&]() { return client != nullptr && server != nullptr; }));

  // The upgrade is transparent; it must land without any traffic flowing.
  ASSERT_TRUE(env.wait([&]() { return client->transport() == orch::Transport::rdma &&
                                       server->transport() == orch::Transport::rdma; }));
  EXPECT_EQ(p.net_a->upgrades(), 1u);

  const std::uint64_t total = 4ull * 1024 * 1024;
  std::uint64_t sent = 0;
  while (sent < total) {
    const auto n = std::min<std::uint64_t>(64 * 1024, total - sent);
    Buffer msg(n);
    for (std::size_t i = 0; i < n; ++i) {
      msg.data()[i] = static_cast<std::byte>(pattern_byte(sent + i));
    }
    ASSERT_TRUE(client->send(std::move(msg)).is_ok());
    sent += n;
    env.wait([&]() { return client->writable(); });
  }
  ASSERT_TRUE(env.wait([&]() { return back >= total; }))
      << "echoed " << echoed << " back " << back;
  EXPECT_FALSE(corrupt);
  // The byte split proves the stream actually rode RDMA, not just claimed to.
  EXPECT_GT(client->bytes_rdma(), client->bytes_tcp());
}

// Kill the NIC's RDMA engine mid-transfer: the stream must fail over to a
// fresh fallback connection with zero loss and in-order delivery.
TEST(StreamAdapter, KillRdmaMidTransferFailsOverByteExact) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_xfer(env, p, 9001, 32ull * 1024 * 1024);
  faults::FaultInjector injector(*env.net_orch, env.freeflow().agents());

  ASSERT_TRUE(env.wait([&]() { return st->verified > 2 * 1024 * 1024 &&
                                       st->client->transport() == orch::Transport::rdma; }));

  injector.apply({env.loop().now(), faults::FaultKind::rdma_down, 1});
  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->verified, st->target);
  EXPECT_NE(st->client->transport(), orch::Transport::rdma);
  EXPECT_GE(p.net_a->fallbacks(), 1u);
}

// Heal the engine after the failover: the stream re-upgrades mid-stream and
// the re-upgraded QP actually carries bytes.
TEST(StreamAdapter, ReupgradesMidStreamAfterRecovery) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_xfer(env, p, 9002, 16ull * 1024 * 1024);
  faults::FaultInjector injector(*env.net_orch, env.freeflow().agents());

  ASSERT_TRUE(env.wait([&]() { return st->verified > 1024 * 1024 &&
                                       st->client->transport() == orch::Transport::rdma; }));

  injector.apply({env.loop().now(), faults::FaultKind::rdma_down, 1});
  ASSERT_TRUE(env.wait([&]() { return st->client->transport() != orch::Transport::rdma; },
                       60 * k_second));

  injector.apply({env.loop().now(), faults::FaultKind::rdma_up, 1});
  ASSERT_TRUE(env.wait([&]() { return st->client->transport() == orch::Transport::rdma; },
                       60 * k_second));
  EXPECT_GE(p.net_a->upgrades(), 2u);  // initial + re-upgrade

  const std::uint64_t rdma_before = st->client->conduit()->token() != 0
                                        ? st->server->bytes_rdma()
                                        : 0;
  st->target += 4ull * 1024 * 1024;
  (*st->pump)();
  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target;
  EXPECT_FALSE(st->corrupt);
  EXPECT_GT(st->server->bytes_rdma(), rdma_before);
}

// Several streams between the same pair, pumping both directions at once:
// per-stream QPs must not cross bytes, and every stream stays byte-exact.
TEST(StreamAdapter, ConcurrentBidirectionalStreams) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);

  constexpr int k_streams = 3;
  constexpr std::uint64_t k_bytes = 4ull * 1024 * 1024;
  std::vector<std::shared_ptr<Xfer>> forward;
  forward.reserve(k_streams);
  for (int i = 0; i < k_streams; ++i) {
    forward.push_back(start_xfer(env, p, static_cast<std::uint16_t>(9100 + i), k_bytes));
  }
  // Reverse direction: b connects back to a over the same trunk pair.
  Pair reversed{p.b, p.a, p.net_b, p.net_a};
  auto backward = start_xfer(env, reversed, 9200, k_bytes);

  ASSERT_TRUE(env.wait(
      [&]() {
        if (!backward->done()) return false;
        for (auto& st : forward) {
          if (!st->done()) return false;
        }
        return true;
      },
      120 * k_second));
  for (auto& st : forward) {
    EXPECT_FALSE(st->corrupt);
    EXPECT_EQ(st->verified, k_bytes);
    EXPECT_EQ(st->client->transport(), orch::Transport::rdma);
  }
  EXPECT_FALSE(backward->corrupt);
  EXPECT_EQ(p.net_a->stream_count(), static_cast<std::size_t>(k_streams + 1));
}

// Untrusted (cross-tenant) pair: the selector answers tcp_overlay, so the
// stream simply never upgrades — it still works, end to end.
TEST(StreamAdapter, UntrustedPairStaysOnFallback) {
  Env env(2);
  auto p = attach_pair(env, 0, 1, /*tenant_b=*/2);
  auto st = start_xfer(env, p, 9300, 4ull * 1024 * 1024);

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second));
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->client->transport(), orch::Transport::tcp_overlay);
  EXPECT_EQ(p.net_a->upgrades(), 0u);
  EXPECT_EQ(st->client->bytes_rdma(), 0u);
}

// --------------------------------------------------------- determinism

struct StreamRun {
  std::string transitions;
  std::uint64_t verified = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t fallbacks = 0;
  bool corrupt = false;
};

StreamRun run_scripted(std::uint64_t seed) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_xfer(env, p, 9400, 16ull * 1024 * 1024);
  faults::FaultInjector injector(*env.net_orch, env.freeflow().agents());
  faults::FaultPlan plan = faults::FaultPlan::random(seed, 2, 20 * k_millisecond, 2);
  plan.rdma_outage(1, 2 * k_millisecond, 10 * k_millisecond);
  injector.arm(plan);

  StreamRun run;
  orch::Transport last = st->client->transport();
  run.transitions += std::string(orch::transport_name(last)) + "\n";
  env.wait(
      [&]() {
        const orch::Transport t = st->client->transport();
        if (t != last) {
          last = t;
          run.transitions += "t=" + std::to_string(env.loop().now()) + " " +
                             std::string(orch::transport_name(t)) + "\n";
        }
        return st->done() && injector.faults_applied() >= plan.size();
      },
      200 * k_millisecond);
  run.verified = st->verified;
  run.upgrades = p.net_a->upgrades();
  run.fallbacks = p.net_a->fallbacks();
  run.corrupt = st->corrupt;
  return run;
}

// Same seed => identical splice timeline, identical bytes. Stream failures
// under chaos stay replayable, like the conduit-level chaos matrix.
TEST(StreamDeterminism, SameSeedIsByteIdentical) {
  const StreamRun first = run_scripted(1337);
  const StreamRun second = run_scripted(1337);
  EXPECT_EQ(first.transitions, second.transitions);
  EXPECT_EQ(first.verified, second.verified);
  EXPECT_EQ(first.upgrades, second.upgrades);
  EXPECT_EQ(first.fallbacks, second.fallbacks);
  EXPECT_FALSE(first.corrupt);
  EXPECT_FALSE(second.corrupt);
}

}  // namespace
}  // namespace freeflow::stream
