#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/resource.h"

namespace freeflow::sim {
namespace {

// -------------------------------------------------------------- EventLoop

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&]() { order.push_back(3); });
  loop.schedule(10, [&]() { order.push_back(1); });
  loop.schedule(20, [&]() { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, FifoAmongEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(100, [&order, i]() { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, NestedSchedulingAdvancesTime) {
  EventLoop loop;
  SimTime inner_fired = -1;
  loop.schedule(10, [&]() {
    loop.schedule(5, [&]() { inner_fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(inner_fired, 15);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  EventHandle h = loop.schedule_cancellable(10, [&]() { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelAfterFireIsHarmless) {
  EventLoop loop;
  EventHandle h = loop.schedule_cancellable(1, []() {});
  loop.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(EventLoop, QueueSizeCountsLiveEventsOnly) {
  EventLoop loop;
  EventHandle near = loop.schedule_cancellable(10, []() {});
  EventHandle far = loop.schedule_cancellable(1'000'000, []() {});  // heap
  loop.schedule(20, []() {});
  EXPECT_EQ(loop.queue_size(), 3u);
  near.cancel();  // reclaimed eagerly, not tombstoned
  EXPECT_EQ(loop.queue_size(), 2u);
  far.cancel();
  EXPECT_EQ(loop.queue_size(), 1u);
  loop.run();
  EXPECT_EQ(loop.queue_size(), 0u);
  EXPECT_EQ(loop.events_executed(), 1u);
}

TEST(EventLoop, FifoAmongEqualsAcrossWheelHeapBoundary) {
  // The first event lands beyond the near wheel's horizon (overflow heap);
  // the second, scheduled for the same timestamp once the loop has advanced,
  // lands in the wheel. Insertion order must still win the tie.
  EventLoop loop;
  constexpr SimTime target = 100'000;  // beyond the wheel horizon from t=0
  std::vector<int> order;
  loop.schedule_at(target, [&]() { order.push_back(0); });  // heap
  loop.schedule_at(target - 100, [&]() {
    loop.schedule_at(target, [&]() { order.push_back(1); });  // wheel
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(loop.now(), target);
}

TEST(EventLoop, DeterministicAcrossIdenticalRuns) {
  // Two identical schedules must execute bit-for-bit identically: same
  // event order, same timestamps, same final clock — regardless of which
  // events route through the near wheel vs the overflow heap.
  auto drive = [](std::vector<std::pair<SimTime, int>>& trace) {
    EventLoop loop;
    // A mix of near (wheel), far (heap), equal-time, and nested schedules.
    for (int i = 0; i < 50; ++i) {
      const SimTime at = (i % 2 == 0) ? 1000 + i : 500'000 + (i % 7) * 1000;
      loop.schedule_at(at, [&trace, &loop, i]() {
        trace.emplace_back(loop.now(), i);
        if (i % 5 == 0) {
          loop.schedule(40'000, [&trace, &loop, i]() {
            trace.emplace_back(loop.now(), 1000 + i);
          });
        }
      });
    }
    loop.run();
    return loop.now();
  };
  std::vector<std::pair<SimTime, int>> t1, t2;
  const SimTime end1 = drive(t1);
  const SimTime end2 = drive(t2);
  EXPECT_EQ(end1, end2);
  EXPECT_EQ(t1, t2);
  EXPECT_FALSE(t1.empty());
}

TEST(EventLoop, CancellationUnderLoad) {
  // Many pending cancellable events in both the wheel and the heap; cancel
  // every other one (including from inside a running callback) and verify
  // exactly the survivors fire, in timestamp order.
  EventLoop loop;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < 200; ++i) {
    const SimTime at = (i % 2 == 0) ? 100 + i : 200'000 + i;
    handles.push_back(loop.schedule_cancellable(at, [&fired, i]() { fired.push_back(i); }));
  }
  for (int i = 0; i < 200; i += 4) handles[static_cast<std::size_t>(i)].cancel();
  // Cancel a batch mid-run too: the first surviving event kills 50..99.
  loop.schedule(1, [&handles]() {
    for (int i = 50; i < 100; ++i) handles[static_cast<std::size_t>(i)].cancel();
  });
  loop.run();
  std::vector<int> expect;
  for (int i = 0; i < 200; i += 2) {  // wheel half (even i), time order
    if (i % 4 == 0 || (i >= 50 && i < 100)) continue;
    expect.push_back(i);
  }
  for (int i = 1; i < 200; i += 2) {  // heap half (odd i)
    if (i >= 50 && i < 100) continue;
    expect.push_back(i);
  }
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(loop.queue_size(), 0u);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10, [&]() { ++fired; });
  loop.schedule(100, [&]() { ++fired; });
  loop.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 50);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunForAdvancesRelative) {
  EventLoop loop;
  loop.run_for(1000);
  EXPECT_EQ(loop.now(), 1000);
  loop.run_for(500);
  EXPECT_EQ(loop.now(), 1500);
}

TEST(EventLoop, CountsExecutedEvents) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule(i, []() {});
  loop.run();
  EXPECT_EQ(loop.events_executed(), 7u);
}

// ---------------------------------------------------------------- quiesce

TEST(EventLoop, MaintenanceEventDoesNotKeepRunAlive) {
  EventLoop loop;
  bool maint_fired = false;
  bool work_fired = false;
  loop.schedule_maintenance(1'000'000, [&]() { maint_fired = true; });
  loop.schedule(100, [&]() { work_fired = true; });
  EXPECT_EQ(loop.queue_size(), 2u);
  EXPECT_EQ(loop.maintenance_size(), 1u);
  EXPECT_EQ(loop.blocking_size(), 1u);
  loop.run();
  // run() quiesced after the real work: the far-out maintenance timer did
  // not drag the clock forward, and it is still queued.
  EXPECT_TRUE(work_fired);
  EXPECT_FALSE(maint_fired);
  EXPECT_EQ(loop.now(), 100);
  EXPECT_EQ(loop.maintenance_size(), 1u);
}

TEST(EventLoop, MaintenanceFiresUnderRunUntilAndBeforeLaterWork) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_maintenance(10, [&]() { order.push_back(1); });
  loop.schedule(20, [&]() { order.push_back(2); });
  // Interleaved with blocking work, maintenance executes in plain time
  // order — run() only skips it once nothing else remains.
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  loop.schedule_maintenance(10, [&]() { order.push_back(3); });
  loop.run_until(loop.now() + 100);  // deadline-driven: maintenance fires
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.maintenance_size(), 0u);
}

TEST(EventLoop, MaintenanceCancelAndRearmKeepAccounting) {
  EventLoop loop;
  EventHandle h = loop.schedule_maintenance(50, []() {});
  EXPECT_TRUE(h.pending());
  EXPECT_EQ(loop.maintenance_size(), 1u);
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(loop.maintenance_size(), 0u);
  EXPECT_EQ(loop.queue_size(), 0u);

  // A self-re-arming maintenance timer (the heartbeat-monitor shape) stays
  // maintenance across generations and still never blocks run().
  int ticks = 0;
  EventHandle timer;
  std::function<void()> tick = [&]() {
    ++ticks;
    if (ticks < 3) timer = loop.schedule_maintenance(10, [&]() { tick(); });
  };
  timer = loop.schedule_maintenance(10, [&]() { tick(); });
  loop.schedule(25, []() {});  // keeps the loop alive past two ticks
  loop.run();
  EXPECT_EQ(ticks, 2);  // t=10, t=20 fired; t=30 re-arm left queued
  EXPECT_EQ(loop.maintenance_size(), 1u);
  EXPECT_EQ(loop.now(), 25);
  timer.cancel();
  EXPECT_EQ(loop.maintenance_size(), 0u);
}

// --------------------------------------------------------------- Resource

TEST(Resource, ServiceTimeMatchesRate) {
  EventLoop loop;
  Resource r(loop, "cpu", 1e9, 1);  // 1e9 units/sec: 1 unit = 1 ns
  EXPECT_EQ(r.service_time(1000), 1000);
  EXPECT_EQ(r.service_time(0), 0);
}

TEST(Resource, SingleServerSerializesJobs) {
  EventLoop loop;
  Resource r(loop, "link", 1e9, 1);
  std::vector<SimTime> done;
  r.submit(1000, [&]() { done.push_back(loop.now()); });
  r.submit(1000, [&]() { done.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 2000);  // queued behind the first
}

TEST(Resource, MultiServerRunsInParallel) {
  EventLoop loop;
  Resource r(loop, "cpu", 1e9, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    r.submit(1000, [&]() { done.push_back(loop.now()); });
  }
  loop.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 1000);
  EXPECT_EQ(done[2], 2000);
  EXPECT_EQ(done[3], 2000);
}

TEST(Resource, ExtraDelayDoesNotHoldServer) {
  EventLoop loop;
  Resource r(loop, "link", 1e9, 1);
  std::vector<SimTime> done;
  r.submit(1000, [&]() { done.push_back(loop.now()); }, nullptr, 500);
  r.submit(1000, [&]() { done.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 1500);  // 1000 service + 500 propagation
  EXPECT_EQ(done[1], 2000);  // server freed at 1000, not 1500
}

TEST(Resource, AccountsBusyTimePerConsumer) {
  EventLoop loop;
  Resource r(loop, "cpu", 1e9, 1);
  UsageAccount alice("alice"), bob("bob");
  r.submit(300, nullptr, &alice);
  r.submit(700, nullptr, &bob);
  loop.run();
  EXPECT_DOUBLE_EQ(alice.busy_ns, 300.0);
  EXPECT_DOUBLE_EQ(bob.busy_ns, 700.0);
  EXPECT_DOUBLE_EQ(r.busy_ns_total(), 1000.0);
  EXPECT_EQ(r.jobs_served(), 2u);
}

TEST(Resource, UtilizationOverWindow) {
  EventLoop loop;
  Resource r(loop, "cpu", 1e9, 2);
  r.mark();
  // One of two servers busy for the whole window: 50 % utilization.
  bool finished = false;
  r.submit(10000, [&]() { finished = true; });
  loop.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(loop.now(), 10000);
  EXPECT_NEAR(r.utilization_since_mark(), 0.5, 1e-9);
  EXPECT_NEAR(r.cores_busy_since_mark(), 1.0, 1e-9);
}

TEST(Resource, FireAndForgetSkipsTheCompletionEvent) {
  EventLoop loop;
  Resource r(loop, "cpu", 1e9, 1);
  // No completion, no extra delay: accounting is eager and no event is
  // scheduled, so the loop has nothing to run...
  r.submit(10000, nullptr);
  EXPECT_EQ(r.jobs_served(), 1u);
  EXPECT_NEAR(r.busy_ns_total(), 10000.0, 1e-9);
  loop.run();
  EXPECT_EQ(loop.now(), 0);
  // ...but the server occupancy still queues later jobs behind it.
  EXPECT_EQ(r.backlog_ns(), 10000);
}

TEST(Resource, BacklogReflectsQueuedWork) {
  EventLoop loop;
  Resource r(loop, "bus", 1e9, 1);
  EXPECT_EQ(r.backlog_ns(), 0);
  r.submit(5000, nullptr);
  r.submit(5000, nullptr);
  EXPECT_EQ(r.backlog_ns(), 10000);
  loop.run_until(5000);
  EXPECT_EQ(r.backlog_ns(), 5000);
}

TEST(Resource, SaturationBoundsThroughput) {
  // Property: a 1e9-units/sec server finishing N jobs of C units each takes
  // >= N*C ns regardless of arrival pattern.
  EventLoop loop;
  Resource r(loop, "cpu", 1e9, 1);
  int done = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    loop.schedule(i * 3, [&]() { r.submit(1000, [&]() { ++done; }); });
  }
  loop.run();
  EXPECT_EQ(done, n);
  EXPECT_GE(loop.now(), n * 1000);
}

// --------------------------------------------------------- SerialExecutor

TEST(SerialExecutor, SerializesEvenWithFreeServers) {
  EventLoop loop;
  Resource pool(loop, "cpu", 1e9, 4);  // plenty of parallel capacity
  SerialExecutor thread(pool);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    thread.submit(1000, [&]() { done.push_back(loop.now()); });
  }
  loop.run();
  // One at a time: completions at 1000, 2000, 3000, 4000 despite 4 cores.
  ASSERT_EQ(done.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(done[static_cast<std::size_t>(i)], (i + 1) * 1000);
}

TEST(SerialExecutor, TwoThreadsShareThePool) {
  EventLoop loop;
  Resource pool(loop, "cpu", 1e9, 2);
  SerialExecutor t1(pool), t2(pool);
  std::vector<SimTime> done;
  t1.submit(1000, [&]() { done.push_back(loop.now()); });
  t2.submit(1000, [&]() { done.push_back(loop.now()); });
  loop.run();
  // Different threads DO run in parallel on the 2-core pool.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 1000);
}

TEST(SerialExecutor, ContendsWhenPoolSmallerThanThreads) {
  EventLoop loop;
  Resource pool(loop, "cpu", 1e9, 1);
  SerialExecutor t1(pool), t2(pool);
  std::vector<SimTime> done;
  t1.submit(1000, [&]() { done.push_back(loop.now()); });
  t2.submit(1000, [&]() { done.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 2000);  // single core: threads serialize at the pool
}

TEST(SerialExecutor, ChargesAccount) {
  EventLoop loop;
  Resource pool(loop, "cpu", 1e9, 2);
  SerialExecutor thread(pool);
  UsageAccount acct("worker");
  thread.submit(500, nullptr, &acct);
  thread.submit(700, nullptr, &acct);
  loop.run();
  EXPECT_DOUBLE_EQ(acct.busy_ns, 1200.0);
}

TEST(SerialExecutor, BusBacklogDefersStart) {
  EventLoop loop;
  Resource pool(loop, "cpu", 1e9, 1);
  Resource bus(loop, "bus", 1e9, 1);
  bus.submit(5000, nullptr);  // pre-load the bus: 5 us backlog
  SerialExecutor thread(pool);
  SimTime done_at = 0;
  thread.submit(1000, [&]() { done_at = loop.now(); }, nullptr, &bus, 100);
  loop.run();
  // Job start deferred by the observed 5 us backlog, then 1 us of work.
  EXPECT_EQ(done_at, 6000);
}

TEST(SerialExecutor, NestedSubmitFromCallbackKeepsOrder) {
  EventLoop loop;
  Resource pool(loop, "cpu", 1e9, 4);
  SerialExecutor thread(pool);
  std::vector<int> order;
  thread.submit(100, [&]() {
    order.push_back(1);
    thread.submit(100, [&]() { order.push_back(3); });
  });
  thread.submit(100, [&]() { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// -------------------------------------------------------------- CostModel

TEST(CostModel, CalibrationInvariants) {
  const CostModel m;
  // Host-mode TCP per-chunk cost implies ~38 Gb/s for 64 KiB chunks.
  const double tx = m.tcp_tx_cost(m.tcp_chunk_bytes);
  const double gbps = static_cast<double>(m.tcp_chunk_bytes) * 8.0 / tx;
  EXPECT_GT(gbps, 35.0);
  EXPECT_LT(gbps, 41.0);

  // Bridge adds enough to land near 27 Gb/s.
  const double bridged = tx + m.bridge_cost(m.tcp_chunk_bytes);
  const double bgbps = static_cast<double>(m.tcp_chunk_bytes) * 8.0 / bridged;
  EXPECT_GT(bgbps, 24.0);
  EXPECT_LT(bgbps, 30.0);

  // NIC processor can just sustain line rate at the RDMA MTU.
  const double nic = m.nic_pkt_cost(m.rdma_mtu_bytes);
  const double ngbps = static_cast<double>(m.rdma_mtu_bytes) * 8.0 / nic;
  EXPECT_GT(ngbps, m.nic_line_gbps);
  EXPECT_LT(ngbps, m.nic_line_gbps * 1.15);

  // One-core shm copy beats everything else by a wide margin.
  const double shm_gbps = 8.0 / m.shm_copy_ns_per_byte;
  EXPECT_GT(shm_gbps, 100.0);
}

}  // namespace
}  // namespace freeflow::sim
