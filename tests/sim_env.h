// Shared test scaffolding: standard cluster/orchestrator/FreeFlow setups
// and small helpers for driving the event loop until a condition holds.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/freeflow.h"
#include "fabric/cluster.h"
#include "orchestrator/cluster_orchestrator.h"
#include "orchestrator/network_orchestrator.h"
#include "overlay/overlay.h"

namespace freeflow::testing {

/// Runs the loop until `pred()` or the deadline; returns pred() at exit.
inline bool run_until(sim::EventLoop& loop, const std::function<bool()>& pred,
                      SimDuration budget = 10 * k_second) {
  const SimTime deadline = loop.now() + budget;
  for (;;) {
    if (pred()) return true;
    if (loop.now() >= deadline || !loop.step()) return false;
  }
}

/// A full-stack environment: cluster + overlay + orchestrators (+ FreeFlow
/// on demand). Most integration tests start here.
struct Env {
  explicit Env(int hosts = 2, sim::CostModel model = {},
               fabric::NicCapabilities caps = {})
      : cluster(model),
        overlay_net(cluster, tcp::Subnet{tcp::Ipv4Addr(10, 244, 0, 0), 16}) {
    cluster.add_hosts(hosts, "host", caps);
    for (int h = 0; h < hosts; ++h) {
      overlay_net.attach_host(static_cast<fabric::HostId>(h));
    }
    cluster_orch = std::make_unique<orch::ClusterOrchestrator>(cluster, overlay_net);
    net_orch = std::make_unique<orch::NetworkOrchestrator>(*cluster_orch);
  }

  orch::ContainerPtr deploy(const std::string& name, orch::TenantId tenant,
                            fabric::HostId host) {
    orch::ContainerSpec spec;
    spec.name = name;
    spec.tenant = tenant;
    spec.pinned_host = host;
    auto c = cluster_orch->deploy(std::move(spec));
    EXPECT_TRUE(c.is_ok()) << c.status();
    return c.value();
  }

  core::FreeFlow& freeflow(agent::AgentConfig config = {}) {
    if (ff == nullptr) ff = std::make_unique<core::FreeFlow>(*net_orch, config);
    return *ff;
  }

  sim::EventLoop& loop() { return cluster.loop(); }

  bool wait(const std::function<bool()>& pred, SimDuration budget = 10 * k_second) {
    return run_until(loop(), pred, budget);
  }

  fabric::Cluster cluster;
  overlay::OverlayNetwork overlay_net;
  std::unique_ptr<orch::ClusterOrchestrator> cluster_orch;
  std::unique_ptr<orch::NetworkOrchestrator> net_orch;
  std::unique_ptr<core::FreeFlow> ff;
};

}  // namespace freeflow::testing
