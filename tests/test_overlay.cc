#include <gtest/gtest.h>

#include "fabric/cluster.h"
#include "overlay/ipam.h"
#include "overlay/overlay.h"
#include "tcpstack/network.h"

namespace freeflow::overlay {
namespace {

// ------------------------------------------------------------------- IPAM

TEST(Ipam, AllocatesUniqueAddressesFromPool) {
  Ipam ipam({tcp::Ipv4Addr(10, 244, 0, 0), 24});
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 50; ++i) {
    auto ip = ipam.allocate();
    ASSERT_TRUE(ip.is_ok());
    EXPECT_TRUE(seen.insert(ip->value()).second) << "duplicate " << ip->to_string();
    EXPECT_TRUE(ipam.pool().contains(*ip));
  }
  EXPECT_EQ(ipam.allocated(), 50u);
}

TEST(Ipam, HonorsRequestedAddress) {
  Ipam ipam({tcp::Ipv4Addr(10, 244, 0, 0), 24});
  auto want = tcp::Ipv4Addr(10, 244, 0, 42);
  auto got = ipam.allocate(want);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, want);
  EXPECT_EQ(ipam.allocate(want).status().code(), Errc::already_exists);
}

TEST(Ipam, RejectsOutOfPoolRequest) {
  Ipam ipam({tcp::Ipv4Addr(10, 244, 0, 0), 24});
  EXPECT_EQ(ipam.allocate(tcp::Ipv4Addr(10, 245, 0, 1)).status().code(),
            Errc::invalid_argument);
}

TEST(Ipam, ExhaustionAndRelease) {
  Ipam ipam({tcp::Ipv4Addr(10, 0, 0, 0), 30});  // 2 usable addresses
  auto a = ipam.allocate();
  auto b = ipam.allocate();
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(ipam.allocate().status().code(), Errc::resource_exhausted);
  EXPECT_TRUE(ipam.release(*a).is_ok());
  EXPECT_TRUE(ipam.allocate().is_ok());
  EXPECT_EQ(ipam.release(tcp::Ipv4Addr(9, 9, 9, 9)).code(), Errc::not_found);
}

TEST(Ipam, PropertyReleaseRestoresFullCapacity) {
  Ipam ipam({tcp::Ipv4Addr(10, 0, 0, 0), 26});
  std::vector<tcp::Ipv4Addr> held;
  for (std::size_t i = 0; i < ipam.capacity(); ++i) {
    auto ip = ipam.allocate();
    ASSERT_TRUE(ip.is_ok());
    held.push_back(*ip);
  }
  for (auto ip : held) ASSERT_TRUE(ipam.release(ip).is_ok());
  EXPECT_EQ(ipam.allocated(), 0u);
  for (std::size_t i = 0; i < ipam.capacity(); ++i) {
    ASSERT_TRUE(ipam.allocate().is_ok());
  }
}

// -------------------------------------------------------------- routing

struct OverlayFixture : ::testing::Test {
  OverlayFixture() : net(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16}) {
    cluster.add_hosts(3);
    for (fabric::HostId h = 0; h < 3; ++h) net.attach_host(h);
  }

  bool run_until(const std::function<bool()>& pred, SimDuration budget = k_second) {
    const SimTime deadline = cluster.loop().now() + budget;
    for (;;) {
      if (pred()) return true;
      if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
    }
  }

  fabric::Cluster cluster;
  OverlayNetwork net;
};

TEST_F(OverlayFixture, AnnouncementsConverge) {
  auto ip = net.add_container(0, nullptr);
  ASSERT_TRUE(ip.is_ok());
  // Local router learns instantly; remote routers after propagation.
  EXPECT_TRUE(net.router(0)->route(*ip).has_value());
  EXPECT_FALSE(net.router(1)->route(*ip).has_value());
  cluster.loop().run();
  ASSERT_TRUE(net.router(1)->route(*ip).has_value());
  EXPECT_EQ(net.router(1)->route(*ip).value(), 0u);
  EXPECT_EQ(net.router(2)->route(*ip).value(), 0u);
}

TEST_F(OverlayFixture, WithdrawRemovesRoutesEverywhere) {
  auto ip = net.add_container(0, nullptr);
  ASSERT_TRUE(ip.is_ok());
  cluster.loop().run();
  ASSERT_TRUE(net.remove_container(*ip).is_ok());
  cluster.loop().run();
  EXPECT_FALSE(net.router(1)->route(*ip).has_value());
  EXPECT_FALSE(net.router(0)->route(*ip).has_value());
}

TEST_F(OverlayFixture, MovePreservesIpAndReroutes) {
  auto ip = net.add_container(0, nullptr);
  ASSERT_TRUE(ip.is_ok());
  cluster.loop().run();
  ASSERT_TRUE(net.move_container(*ip, 2, nullptr).is_ok());
  cluster.loop().run();
  EXPECT_EQ(net.router(1)->route(*ip).value(), 2u);
  EXPECT_EQ(net.binding(*ip)->host, 2u);
}

TEST_F(OverlayFixture, PathBuildFailsBeforeConvergence) {
  auto a = net.add_container(0, nullptr);
  auto b = net.add_container(1, nullptr);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  // Route from host0 to b not yet learned: build must fail cleanly.
  auto paths = net.path_builder().build({*a, 1000}, {*b, 80});
  EXPECT_EQ(paths.status().code(), Errc::unavailable);
  cluster.loop().run();
  EXPECT_TRUE(net.path_builder().build({*a, 1000}, {*b, 80}).is_ok());
}

TEST_F(OverlayFixture, EndToEndTcpOverOverlay) {
  auto a = net.add_container(0, nullptr);
  auto b = net.add_container(1, nullptr);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  cluster.loop().run();  // converge routes

  tcp::TcpNetwork tcp_net(cluster.loop(), cluster.cost_model(), net.path_builder());
  Buffer received;
  ASSERT_TRUE(tcp_net.listen({*b, 80}, [&](tcp::TcpConnection::Ptr c) {
    c->set_on_data([&received](Buffer&& d) { received.append(d.view()); });
  }).is_ok());

  tcp::TcpConnection::Ptr client;
  tcp_net.connect({*a, 0}, {*b, 80}, [&](Result<tcp::TcpConnection::Ptr> c) {
    ASSERT_TRUE(c.is_ok()) << c.status();
    client = *c;
    Buffer payload(300000);
    fill_pattern(payload.mutable_view(), 11);
    ASSERT_TRUE(client->send(std::move(payload)).is_ok());
  });
  EXPECT_TRUE(run_until([&]() { return received.size() == 300000; }, 5 * k_second));
  EXPECT_TRUE(check_pattern(received.view(), 11));
}

TEST_F(OverlayFixture, IntraHostOverlayStillTraversesRouter) {
  auto a = net.add_container(0, nullptr);
  auto b = net.add_container(0, nullptr);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  cluster.loop().run();

  Router* r = net.router(0);
  const double before = r->account().busy_ns;

  tcp::TcpNetwork tcp_net(cluster.loop(), cluster.cost_model(), net.path_builder());
  std::uint64_t got = 0;
  ASSERT_TRUE(tcp_net.listen({*b, 80}, [&](tcp::TcpConnection::Ptr c) {
    c->set_on_data([&got](Buffer&& d) { got += d.size(); });
  }).is_ok());
  tcp_net.connect({*a, 0}, {*b, 80}, [&](Result<tcp::TcpConnection::Ptr> c) {
    ASSERT_TRUE(c.is_ok());
    Buffer payload(1 << 20);
    ASSERT_TRUE((*c)->send(std::move(payload)).is_ok());
  });
  EXPECT_TRUE(run_until([&]() { return got == (1 << 20); }, 5 * k_second));
  // The software router burned CPU on every chunk: the overlay hairpin.
  EXPECT_GT(r->account().busy_ns, before + 100000.0);
}

TEST_F(OverlayFixture, ManyContainersConvergeEverywhere) {
  std::vector<tcp::Ipv4Addr> ips;
  for (int i = 0; i < 30; ++i) {
    auto ip = net.add_container(static_cast<fabric::HostId>(i % 3), nullptr);
    ASSERT_TRUE(ip.is_ok());
    ips.push_back(*ip);
  }
  cluster.loop().run();
  for (fabric::HostId h = 0; h < 3; ++h) {
    EXPECT_EQ(net.router(h)->route_count(), 30u);
    for (auto ip : ips) {
      EXPECT_TRUE(net.router(h)->route(ip).has_value());
    }
  }
}

TEST_F(OverlayFixture, BindingLookupErrors) {
  EXPECT_EQ(net.binding(tcp::Ipv4Addr(10, 244, 9, 9)).status().code(), Errc::not_found);
  EXPECT_EQ(net.move_container(tcp::Ipv4Addr(10, 244, 9, 9), 1, nullptr).code(),
            Errc::not_found);
}

}  // namespace
}  // namespace freeflow::overlay
