#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "fabric/cluster.h"
#include "tcpstack/modes.h"
#include "tcpstack/network.h"
#include "tcpstack/routing.h"

namespace freeflow::tcp {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("10.244.1.2");
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a->to_string(), "10.244.1.2");
  EXPECT_EQ(a->value(), 0x0AF40102u);
  EXPECT_FALSE(Ipv4Addr::parse("10.244.1").is_ok());
  EXPECT_FALSE(Ipv4Addr::parse("10.244.1.300").is_ok());
  EXPECT_FALSE(Ipv4Addr::parse("garbage").is_ok());
}

TEST(Subnet, Containment) {
  Subnet s{Ipv4Addr(10, 0, 1, 0), 24};
  EXPECT_TRUE(s.contains(Ipv4Addr(10, 0, 1, 200)));
  EXPECT_FALSE(s.contains(Ipv4Addr(10, 0, 2, 1)));
  Subnet host_route{Ipv4Addr(10, 0, 1, 7), 32};
  EXPECT_TRUE(host_route.contains(Ipv4Addr(10, 0, 1, 7)));
  EXPECT_FALSE(host_route.contains(Ipv4Addr(10, 0, 1, 8)));
}

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable<int> table;
  table.add_route({Ipv4Addr(10, 0, 0, 0), 8}, 1);
  table.add_route({Ipv4Addr(10, 1, 0, 0), 16}, 2);
  table.add_route({Ipv4Addr(10, 1, 2, 3), 32}, 3);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 9, 9, 9)).value(), 1);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 1, 9, 9)).value(), 2);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 1, 2, 3)).value(), 3);
  EXPECT_FALSE(table.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
}

TEST(RoutingTable, ReplaceAndRemove) {
  RoutingTable<int> table;
  table.add_route({Ipv4Addr(10, 0, 0, 0), 8}, 1);
  table.add_route({Ipv4Addr(10, 0, 0, 0), 8}, 9);  // replace
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 1, 1, 1)).value(), 9);
  table.remove_route({Ipv4Addr(10, 0, 0, 0), 8});
  EXPECT_FALSE(table.lookup(Ipv4Addr(10, 1, 1, 1)).has_value());
}

TEST(Segment, WireBytesIncludePerMtuHeaders) {
  Segment seg;
  seg.payload.resize(1448);
  EXPECT_EQ(seg.wire_bytes(), 1448u + 78u);
  seg.payload.resize(64 * 1024);
  // 46 MTU packets worth of headers.
  EXPECT_EQ(seg.wire_bytes(), 64u * 1024 + 46 * 78);
  Segment empty;
  EXPECT_EQ(empty.wire_bytes(), 78u);
}

// ------------------------------------------------------------ stack fixture

struct TcpFixture : ::testing::Test {
  TcpFixture()
      : builder(cluster.cost_model()),
        net(cluster.loop(), cluster.cost_model(), builder) {
    cluster.add_hosts(2);
    WireHop::install_rx(cluster.host(0));
    WireHop::install_rx(cluster.host(1));
    EXPECT_TRUE(builder.addresses().add(ip_a, cluster.host(0), nullptr).is_ok());
    EXPECT_TRUE(builder.addresses().add(ip_b, cluster.host(1), nullptr).is_ok());
  }

  bool run_until(const std::function<bool()>& pred, SimDuration budget = 5 * k_second) {
    const SimTime deadline = cluster.loop().now() + budget;
    for (;;) {
      if (pred()) return true;
      if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
    }
  }

  std::pair<TcpConnection::Ptr, TcpConnection::Ptr> connect_pair(std::uint16_t port) {
    TcpConnection::Ptr client, server;
    EXPECT_TRUE(net.listen({ip_b, port}, [&](TcpConnection::Ptr c) { server = c; }).is_ok());
    net.connect({ip_a, 0}, {ip_b, port}, [&](Result<TcpConnection::Ptr> c) {
      ASSERT_TRUE(c.is_ok()) << c.status();
      client = *c;
    });
    EXPECT_TRUE(run_until([&]() { return client != nullptr && server != nullptr; }));
    return {client, server};
  }

  fabric::Cluster cluster;
  HostModeBuilder builder;
  TcpNetwork net;
  Ipv4Addr ip_a{192, 168, 0, 1};
  Ipv4Addr ip_b{192, 168, 0, 2};
};

TEST_F(TcpFixture, HandshakeEstablishesBothEnds) {
  auto [client, server] = connect_pair(80);
  EXPECT_EQ(client->state(), ConnState::established);
  EXPECT_EQ(server->state(), ConnState::established);
  EXPECT_EQ(net.connection_count(), 2u);
}

TEST_F(TcpFixture, PortConflictIsTheHostModeProblem) {
  // The paper: "there can be only one container bound to port 80 per
  // server" — our stack surfaces exactly that.
  EXPECT_TRUE(net.listen({ip_b, 80}, [](TcpConnection::Ptr) {}).is_ok());
  const Status second = net.listen({ip_b, 80}, [](TcpConnection::Ptr) {});
  EXPECT_EQ(second.code(), Errc::already_exists);
}

TEST_F(TcpFixture, ConnectionRefusedWithoutListener) {
  Status got;
  bool done = false;
  net.connect({ip_a, 0}, {ip_b, 9999}, [&](Result<TcpConnection::Ptr> c) {
    got = c.status();
    done = true;
  });
  EXPECT_TRUE(run_until([&]() { return done; }));
  EXPECT_EQ(got.code(), Errc::connection_refused);
}

TEST_F(TcpFixture, ConnectToUnboundIpFails) {
  Status got;
  bool done = false;
  net.connect({ip_a, 0}, {Ipv4Addr(1, 2, 3, 4), 80}, [&](Result<TcpConnection::Ptr> c) {
    got = c.status();
    done = true;
  });
  EXPECT_TRUE(run_until([&]() { return done; }));
  EXPECT_EQ(got.code(), Errc::not_found);
}

TEST_F(TcpFixture, DataIntegrityAcrossHosts) {
  auto [client, server] = connect_pair(80);
  Buffer received;
  server->set_on_data([&](Buffer&& b) { received.append(b.view()); });

  Buffer payload(777777);
  fill_pattern(payload.mutable_view(), 99);
  const std::uint32_t sent_crc = crc32(payload.view());
  ASSERT_TRUE(client->send(std::move(payload)).is_ok());

  EXPECT_TRUE(run_until([&]() { return received.size() == 777777; }));
  EXPECT_EQ(crc32(received.view()), sent_crc);
  EXPECT_TRUE(check_pattern(received.view(), 99));
  // The final ack is still in flight when the data lands; let it drain.
  EXPECT_TRUE(run_until([&]() { return client->bytes_acked() == 777777u; }));
}

TEST_F(TcpFixture, BidirectionalTransfer) {
  auto [client, server] = connect_pair(80);
  Buffer at_server, at_client;
  server->set_on_data([&](Buffer&& b) { at_server.append(b.view()); });
  client->set_on_data([&](Buffer&& b) { at_client.append(b.view()); });
  Buffer a(100000), b(50000);
  fill_pattern(a.mutable_view(), 1);
  fill_pattern(b.mutable_view(), 2);
  ASSERT_TRUE(client->send(std::move(a)).is_ok());
  ASSERT_TRUE(server->send(std::move(b)).is_ok());
  EXPECT_TRUE(
      run_until([&]() { return at_server.size() == 100000 && at_client.size() == 50000; }));
  EXPECT_TRUE(check_pattern(at_server.view(), 1));
  EXPECT_TRUE(check_pattern(at_client.view(), 2));
}

TEST_F(TcpFixture, SendBufferBackpressure) {
  auto [client, server] = connect_pair(80);
  client->set_send_buffer_limit(100 * 1024);
  server->set_on_data([](Buffer&&) {});
  Buffer big(200 * 1024);
  EXPECT_EQ(client->send(std::move(big)).code(), Errc::would_block);
  bool writable_seen = false;
  client->set_on_writable([&]() { writable_seen = true; });
  Buffer ok_size(90 * 1024);
  EXPECT_TRUE(client->send(std::move(ok_size)).is_ok());
  EXPECT_TRUE(run_until([&]() { return client->bytes_acked() == 90 * 1024; }));
  EXPECT_TRUE(writable_seen);
}

TEST_F(TcpFixture, GracefulClose) {
  auto [client, server] = connect_pair(80);
  bool server_closed = false;
  server->set_on_close([&]() { server_closed = true; });
  client->close();
  EXPECT_TRUE(run_until([&]() { return server_closed; }));
  server->close();
  EXPECT_TRUE(run_until([&]() { return net.connection_count() == 0; }));
}

TEST_F(TcpFixture, CloseFlushesPendingData) {
  auto [client, server] = connect_pair(80);
  Buffer received;
  bool closed = false;
  server->set_on_data([&](Buffer&& b) { received.append(b.view()); });
  server->set_on_close([&]() { closed = true; });
  Buffer payload(300000);
  fill_pattern(payload.mutable_view(), 5);
  ASSERT_TRUE(client->send(std::move(payload)).is_ok());
  client->close();
  EXPECT_TRUE(run_until([&]() { return closed; }));
  EXPECT_EQ(received.size(), 300000u);  // FIN ordered after all data
  EXPECT_TRUE(check_pattern(received.view(), 5));
}

TEST_F(TcpFixture, EphemeralPortsAreDistinct) {
  std::vector<TcpConnection::Ptr> clients;
  EXPECT_TRUE(net.listen({ip_b, 80}, [](TcpConnection::Ptr) {}).is_ok());
  for (int i = 0; i < 5; ++i) {
    net.connect({ip_a, 0}, {ip_b, 80}, [&](Result<TcpConnection::Ptr> c) {
      ASSERT_TRUE(c.is_ok());
      clients.push_back(*c);
    });
  }
  EXPECT_TRUE(run_until([&]() { return clients.size() == 5; }));
  std::set<std::uint16_t> ports;
  for (const auto& c : clients) ports.insert(c->flow().local.port);
  EXPECT_EQ(ports.size(), 5u);
}

TEST_F(TcpFixture, IntraHostFasterThanInterHost) {
  Ipv4Addr ip_c{192, 168, 0, 3};
  ASSERT_TRUE(builder.addresses().add(ip_c, cluster.host(0), nullptr).is_ok());

  auto transfer_time = [&](Ipv4Addr from, Ipv4Addr to, std::uint16_t port) {
    std::uint64_t got = 0;
    EXPECT_TRUE(net.listen({to, port}, [&](TcpConnection::Ptr c) {
      c->set_on_data([&got](Buffer&& b) { got += b.size(); });
    }).is_ok());
    const SimTime start = cluster.loop().now();
    net.connect({from, 0}, {to, port}, [&](Result<TcpConnection::Ptr> c) {
      ASSERT_TRUE(c.is_ok());
      Buffer payload(1 << 20);
      ASSERT_TRUE((*c)->send(std::move(payload)).is_ok());
    });
    EXPECT_TRUE(run_until([&]() { return got == (1 << 20); }));
    return cluster.loop().now() - start;
  };

  const SimDuration intra = transfer_time(ip_a, ip_c, 81);
  const SimDuration inter = transfer_time(ip_a, ip_b, 82);
  EXPECT_LT(intra, inter);
}

class TcpSizeSweep : public TcpFixture,
                     public ::testing::WithParamInterface<std::size_t> {};

TEST_P(TcpSizeSweep, IntegrityAcrossSizes) {
  // Sizes straddling the GSO chunk boundary and the window.
  auto [client, server] = connect_pair(80);
  const std::size_t size = GetParam();
  Buffer received;
  server->set_on_data([&](Buffer&& b) { received.append(b.view()); });
  Buffer payload(size);
  fill_pattern(payload.mutable_view(), size);
  ASSERT_TRUE(client->send(std::move(payload)).is_ok());
  EXPECT_TRUE(run_until([&]() { return received.size() == size; }, 30 * k_second));
  EXPECT_TRUE(check_pattern(received.view(), size));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpSizeSweep,
                         ::testing::Values(std::size_t{1}, std::size_t{1000},
                                           std::size_t{64} * 1024 - 1,
                                           std::size_t{64} * 1024,
                                           std::size_t{64} * 1024 + 1,
                                           std::size_t{8} * 64 * 1024,  // = window
                                           std::size_t{3} * 1024 * 1024 + 17));

TEST_F(TcpFixture, HandshakeCostsAboutOneControlRtt) {
  EXPECT_TRUE(net.listen({ip_b, 80}, [](TcpConnection::Ptr) {}).is_ok());
  const SimTime start = cluster.loop().now();
  SimTime connected_at = 0;
  net.connect({ip_a, 0}, {ip_b, 80}, [&](Result<TcpConnection::Ptr> c) {
    ASSERT_TRUE(c.is_ok());
    connected_at = cluster.loop().now();
  });
  EXPECT_TRUE(run_until([&]() { return connected_at != 0; }));
  const SimDuration took = connected_at - start;
  // SYN + SYN-ACK: two control-path traversals across the wire.
  EXPECT_GT(took, 2 * cluster.cost_model().link_prop_ns);
  EXPECT_LT(took, 50 * k_microsecond);
}

TEST_F(TcpFixture, ConnectStormAllSucceed) {
  int accepted = 0;
  EXPECT_TRUE(net.listen({ip_b, 80}, [&](TcpConnection::Ptr) { ++accepted; }).is_ok());
  int connected = 0;
  for (int i = 0; i < 50; ++i) {
    net.connect({ip_a, 0}, {ip_b, 80}, [&](Result<TcpConnection::Ptr> c) {
      ASSERT_TRUE(c.is_ok());
      ++connected;
    });
  }
  EXPECT_TRUE(run_until([&]() { return connected == 50 && accepted == 50; },
                        30 * k_second));
  EXPECT_EQ(net.connection_count(), 100u);
}

TEST_F(TcpFixture, CrossConnectionsDoNotInterfere) {
  // Two independent connections, interleaved sends: each stream's bytes
  // stay whole and ordered.
  auto [c1, s1] = connect_pair(81);
  auto [c2, s2] = connect_pair(82);
  Buffer r1, r2;
  s1->set_on_data([&](Buffer&& b) { r1.append(b.view()); });
  s2->set_on_data([&](Buffer&& b) { r2.append(b.view()); });
  for (int i = 0; i < 5; ++i) {
    Buffer b1(50000), b2(70000);
    fill_pattern(b1.mutable_view(), static_cast<std::uint64_t>(i));
    fill_pattern(b2.mutable_view(), static_cast<std::uint64_t>(100 + i));
    ASSERT_TRUE(c1->send(std::move(b1)).is_ok());
    ASSERT_TRUE(c2->send(std::move(b2)).is_ok());
  }
  EXPECT_TRUE(run_until(
      [&]() { return r1.size() == 250000 && r2.size() == 350000; }, 30 * k_second));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(check_pattern(ByteSpan{r1.data() + i * 50000, 50000},
                              static_cast<std::uint64_t>(i)));
    EXPECT_TRUE(check_pattern(ByteSpan{r2.data() + i * 70000, 70000},
                              static_cast<std::uint64_t>(100 + i)));
  }
}

TEST_F(TcpFixture, SrttConvergesAndShrinksRto) {
  auto [client, server] = connect_pair(80);
  server->set_on_data([](Buffer&&) {});
  EXPECT_EQ(client->srtt(), 0);
  EXPECT_EQ(client->rto(), cluster.cost_model().tcp_rto_ns);  // no sample yet

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client->send(Buffer(64 * 1024)).is_ok());
    EXPECT_TRUE(run_until([&]() {
      return client->bytes_acked() == static_cast<std::uint64_t>(i + 1) * 64 * 1024;
    }));
  }
  // SRTT converged to the real chunk RTT (tens of microseconds), so the RTO
  // is now far below the conservative pre-sample default of 5 ms.
  EXPECT_GT(client->srtt(), 10 * k_microsecond);
  EXPECT_LT(client->srtt(), 200 * k_microsecond);
  EXPECT_LT(client->rto(), k_millisecond);
  EXPECT_GE(client->rto(), 200 * k_microsecond);  // floor
}

// --------------------------------------------------------- loss recovery

/// Wraps another builder, dropping 20 % of data segments (acks unharmed),
/// to exercise RTO/fast-retransmit recovery.
class LossyBuilder final : public PathBuilder {
 public:
  LossyBuilder(PathBuilder& inner, Rng& rng) : inner_(inner), rng_(rng) {}

  Result<PathPair> build(const Endpoint& src, const Endpoint& dst) override {
    auto pp = inner_.build(src, dst);
    if (!pp.is_ok()) return pp.status();

    struct PathHop final : Hop {
      explicit PathHop(Path inner) : inner_(std::move(inner)) {}
      void transit(const SegmentPtr& seg, sim::DoneFn next) override {
        // DoneFn is wider than DeliverFn's inline budget; box it (test-only path).
        auto boxed = std::make_shared<sim::DoneFn>(std::move(next));
        inner_.walk(seg, [boxed](SegmentPtr) { (*boxed)(); });
      }
      Path inner_;
    };

    PathPair out;
    out.data.add(std::make_shared<LossHop>(rng_, 0.2));
    out.data.add(std::make_shared<PathHop>(std::move(pp->data)));
    out.control = std::move(pp->control);
    return out;
  }

 private:
  PathBuilder& inner_;
  Rng& rng_;
};

TEST_F(TcpFixture, RetransmissionRecoversFromLoss) {
  Rng rng(123);
  LossyBuilder lossy(builder, rng);
  TcpNetwork lossy_net(cluster.loop(), cluster.cost_model(), lossy);

  TcpConnection::Ptr client;
  Buffer received;
  ASSERT_TRUE(lossy_net.listen({ip_b, 80}, [&](TcpConnection::Ptr c) {
    c->set_on_data([&received](Buffer&& b) { received.append(b.view()); });
  }).is_ok());
  lossy_net.connect({ip_a, 0}, {ip_b, 80}, [&](Result<TcpConnection::Ptr> c) {
    ASSERT_TRUE(c.is_ok());
    client = *c;
  });
  ASSERT_TRUE(run_until([&]() { return client != nullptr; }, 60 * k_second));

  Buffer payload(512 * 1024);
  fill_pattern(payload.mutable_view(), 7);
  ASSERT_TRUE(client->send(std::move(payload)).is_ok());
  ASSERT_TRUE(run_until([&]() { return received.size() == 512 * 1024; }, 300 * k_second));
  EXPECT_TRUE(check_pattern(received.view(), 7));
  EXPECT_GT(client->retransmits(), 0u);
}

}  // namespace
}  // namespace freeflow::tcp
