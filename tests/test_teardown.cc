// Teardown-protocol coverage: close()/detach() must be idempotent, must
// propagate to the remote side (VMsg::bye), must tolerate in-flight
// traffic without use-after-free (the whole binary runs under ASan in
// CI), and a connect/close churn loop must hold steady memory — every
// registry the connection touched returns to its pre-connection size.
#include <gtest/gtest.h>

#include "core/freeflow.h"
#include "sim_env.h"

namespace freeflow::core {
namespace {

using freeflow::testing::Env;

struct TeardownFixture : ::testing::Test {
  struct Pair {
    orch::ContainerPtr a, b;
    ContainerNetPtr net_a, net_b;
  };

  static Pair make_pair(Env& env, bool same_host) {
    Pair p;
    p.a = env.deploy("a", 1, 0);
    p.b = env.deploy("b", 1, same_host ? 0 : 1);
    auto na = env.freeflow().attach(p.a->id());
    auto nb = env.freeflow().attach(p.b->id());
    EXPECT_TRUE(na.is_ok());
    EXPECT_TRUE(nb.is_ok());
    p.net_a = *na;
    p.net_b = *nb;
    return p;
  }

  static std::pair<FlowSocketPtr, FlowSocketPtr> socket_pair(Env& env, Pair& p,
                                                             std::uint16_t port) {
    FlowSocketPtr client, server;
    EXPECT_TRUE(p.net_b->sock_listen(port, [&](FlowSocketPtr s) { server = s; }).is_ok());
    p.net_a->sock_connect(p.b->ip(), port, [&](Result<FlowSocketPtr> s) {
      ASSERT_TRUE(s.is_ok()) << s.status();
      client = *s;
    });
    EXPECT_TRUE(env.wait([&]() { return client != nullptr && server != nullptr; }));
    return {client, server};
  }

  static std::pair<VirtualQpPtr, VirtualQpPtr> qp_pair(Env& env, Pair& p,
                                                       std::uint16_t port) {
    VirtualQpPtr qa, qb;
    EXPECT_TRUE(p.net_b->listen_qp(port, [&](VirtualQpPtr q) { qb = q; }).is_ok());
    p.net_a->connect_qp(p.b->ip(), port, p.net_a->create_cq(), p.net_a->create_cq(),
                        [&](Result<VirtualQpPtr> q) {
      ASSERT_TRUE(q.is_ok()) << q.status();
      qa = *q;
    });
    EXPECT_TRUE(env.wait([&]() { return qa != nullptr && qb != nullptr; }));
    return {qa, qb};
  }
};

// ------------------------------------------------------------ idempotence

TEST(ConduitTeardown, PeerCloseAfterLocalCloseIsIdempotent) {
  Conduit conduit(1, 10, 20, tcp::Ipv4Addr(10, 0, 0, 1), 80, true);
  int closed = 0;
  int torn_down = 0;
  CloseReason reason{};
  conduit.set_on_closed([&](CloseReason r) {
    reason = r;
    ++closed;
  });
  conduit.set_on_teardown([&]() { ++torn_down; });
  conduit.close();
  // Late bye from the wire after the local close: must be a no-op.
  conduit.close_with(CloseReason::peer_bye, /*handshake=*/false);
  conduit.close();
  EXPECT_EQ(closed, 1);
  EXPECT_EQ(torn_down, 1);
  EXPECT_EQ(reason, CloseReason::app_close);
  EXPECT_EQ(conduit.close_reason(), CloseReason::app_close);
}

TEST_F(TeardownFixture, DoubleCloseIsIdempotentOnEverySurface) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/false);
  auto [client, server] = socket_pair(env, p, 6000);
  auto [qa, qb] = qp_pair(env, p, 18515);

  client->close();
  client->close();  // second close: silent no-op
  qa->close();
  qa->close();
  EXPECT_TRUE(env.wait([&]() {
    return p.net_a->conduit_count() == 0 && p.net_b->conduit_count() == 0;
  }));
  // Remote ends observed the teardown; closing them again is still safe.
  server->close();
  qb->close();
  EXPECT_FALSE(server->is_open());
  EXPECT_EQ(client->send(Buffer::from_string("x")).code(), Errc::failed_precondition);
}

// -------------------------------------------------------- bye propagation

TEST_F(TeardownFixture, OneSidedCloseTearsDownBothEnds) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/false);
  auto [client, server] = socket_pair(env, p, 6000);
  EXPECT_EQ(p.net_a->conduit_count(), 1u);
  EXPECT_EQ(p.net_b->conduit_count(), 1u);

  bool server_saw_close = false;
  CloseReason server_reason{};
  server->set_on_close([&](CloseReason r) {
    server_reason = r;
    server_saw_close = true;
  });
  client->close();

  // The bye must reach the passive side and erase the conduit from BOTH
  // owner registries without the server ever calling close() itself.
  EXPECT_TRUE(env.wait([&]() {
    return server_saw_close && p.net_a->conduit_count() == 0 &&
           p.net_b->conduit_count() == 0;
  }));
  EXPECT_FALSE(server->is_open());
  EXPECT_EQ(server_reason, CloseReason::peer_bye);
}

// The bye/bye_ack handshake times out against an unresponsive peer: freeze
// the remote agent (records buffer, nothing is acked) and close. The drain
// timer must fire on the sim clock and report drain_timeout — not hang, and
// not pretend the close was acknowledged.
TEST_F(TeardownFixture, UnresponsivePeerYieldsDrainTimeout) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/false);
  auto [client, server] = socket_pair(env, p, 6000);

  env.freeflow().agents().agent_on(1).set_paused(true);
  bool closed = false;
  CloseReason reason{};
  client->set_on_close([&](CloseReason r) {
    reason = r;
    closed = true;
  });
  client->close();
  EXPECT_TRUE(env.wait([&]() { return closed; }, 1 * k_second));
  EXPECT_EQ(reason, CloseReason::drain_timeout);
  EXPECT_EQ(p.net_a->conduit_count(), 0u);
  env.freeflow().agents().agent_on(1).set_paused(false);
}

// A graceful handshake completes before the drain timeout: the closer's own
// callback reports app_close only after the peer acked the bye.
TEST_F(TeardownFixture, GracefulCloseReportsAppClose) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/false);
  auto [client, server] = socket_pair(env, p, 6000);

  bool closed = false;
  CloseReason reason{};
  client->set_on_close([&](CloseReason r) {
    reason = r;
    closed = true;
  });
  client->close();
  EXPECT_TRUE(env.wait([&]() { return closed; }));
  EXPECT_EQ(reason, CloseReason::app_close);
}

// ------------------------------------------------------- close with inflight

TEST_F(TeardownFixture, CloseWithInflightTrafficDrainsCleanly) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/true);  // shm lane: deepest pipeline
  auto [client, server] = socket_pair(env, p, 6000);

  std::size_t received = 0;
  server->set_on_data([&](Buffer&& b) { received += b.size(); });

  // Fill the pipe, then close mid-flight without draining first. The
  // in-flight chunks either deliver or drop; ASan verifies no callback
  // fires into freed endpoint/lane state.
  for (int i = 0; i < 8; ++i) {
    Buffer msg(64 * 1024);
    fill_pattern(msg.mutable_view(), i);
    (void)client->send(std::move(msg));
  }
  for (int i = 0; i < 3; ++i) env.loop().step();  // a few deliveries start
  client->close();
  client = nullptr;  // drop the test's reference while chunks are in flight

  EXPECT_TRUE(env.wait([&]() {
    return p.net_a->conduit_count() == 0 && p.net_b->conduit_count() == 0;
  }));
  env.wait([]() { return false; }, 1 * k_second);  // drain any stragglers
  EXPECT_FALSE(server->is_open());
}

// ------------------------------------------------------------- churn loop

TEST_F(TeardownFixture, ConnectCloseChurnHoldsSteadyMemory) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/false);
  agent::Agent& agent_a = env.freeflow().agents().agent_on(0);
  agent::Agent& agent_b = env.freeflow().agents().agent_on(1);

  FlowSocketPtr server;
  ASSERT_TRUE(
      p.net_b->sock_listen(6000, [&](FlowSocketPtr s) { server = std::move(s); }).is_ok());

  std::size_t endpoints_a = 0, endpoints_b = 0;
  for (int round = 0; round < 8; ++round) {
    server = nullptr;
    FlowSocketPtr client;
    p.net_a->sock_connect(p.b->ip(), 6000, [&](Result<FlowSocketPtr> s) {
      ASSERT_TRUE(s.is_ok()) << s.status();
      client = *s;
    });
    ASSERT_TRUE(env.wait([&]() { return client != nullptr && server != nullptr; }));
    std::string got;
    server->set_on_data([&](Buffer&& b) { got = b.to_string(); });
    ASSERT_TRUE(client->send(Buffer::from_string("ping")).is_ok());
    ASSERT_TRUE(env.wait([&]() { return got == "ping"; }));
    client->close();
    ASSERT_TRUE(env.wait([&]() {
      return p.net_a->conduit_count() == 0 && p.net_b->conduit_count() == 0;
    })) << "round " << round;
    if (round == 0) {
      // Size of every per-connection registry after one full cycle...
      endpoints_a = agent_a.endpoint_count();
      endpoints_b = agent_b.endpoint_count();
    } else {
      // ...must not grow across further cycles: no channel, endpoint or
      // reassembly state accretes per connection.
      ASSERT_EQ(agent_a.endpoint_count(), endpoints_a) << "round " << round;
      ASSERT_EQ(agent_b.endpoint_count(), endpoints_b) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace freeflow::core
