#include <gtest/gtest.h>

#include "fabric/cluster.h"
#include "fabric/control.h"

namespace freeflow::fabric {
namespace {

TEST(Cluster, BuildsHostsWithIds) {
  Cluster cluster;
  cluster.add_hosts(3);
  EXPECT_EQ(cluster.host_count(), 3u);
  EXPECT_EQ(cluster.host(0).id(), 0u);
  EXPECT_EQ(cluster.host(2).name(), "host2");
  EXPECT_EQ(cluster.host(1).cpu().servers(), cluster.cost_model().cores_per_host);
}

TEST(Cluster, MixedNicCapabilities) {
  Cluster cluster;
  cluster.add_host("rdma-host", NicCapabilities{.rdma = true, .dpdk = true});
  cluster.add_host("plain-host", NicCapabilities{.rdma = false, .dpdk = false});
  EXPECT_TRUE(cluster.host(0).nic().capabilities().rdma);
  EXPECT_FALSE(cluster.host(1).nic().capabilities().rdma);
}

TEST(Host, VmMapping) {
  Cluster cluster;
  cluster.add_hosts(2);
  EXPECT_FALSE(cluster.host(0).is_vm());
  cluster.host(1).set_physical_machine(0);
  EXPECT_TRUE(cluster.host(1).is_vm());
  EXPECT_EQ(cluster.host(1).physical_machine().value(), 0u);
}

PacketPtr make_test_packet(HostId dst, std::uint32_t bytes, PacketKind kind) {
  auto p = std::make_shared<Packet>();
  p->dst_host = dst;
  p->wire_bytes = bytes;
  p->kind = kind;
  p->body = std::make_shared<ControlBody>();
  return p;
}

TEST(Nic, DeliversAcrossSwitch) {
  Cluster cluster;
  cluster.add_hosts(2);
  int arrived = 0;
  cluster.host(1).nic().set_rx_handler(PacketKind::control,
                                       [&](PacketPtr) { ++arrived; });
  cluster.host(0).nic().send(make_test_packet(1, 1500, PacketKind::control));
  cluster.loop().run();
  EXPECT_EQ(arrived, 1);
  EXPECT_EQ(cluster.host(0).nic().tx_packets(), 1u);
  EXPECT_EQ(cluster.host(1).nic().rx_packets(), 1u);
  EXPECT_EQ(cluster.tor().forwarded(), 1u);
}

TEST(Nic, LoopbackSkipsSwitch) {
  Cluster cluster;
  cluster.add_hosts(1);
  int arrived = 0;
  cluster.host(0).nic().set_rx_handler(PacketKind::control,
                                       [&](PacketPtr) { ++arrived; });
  cluster.host(0).nic().send(make_test_packet(0, 1000, PacketKind::control));
  cluster.loop().run();
  EXPECT_EQ(arrived, 1);
  EXPECT_EQ(cluster.tor().forwarded(), 0u);
}

TEST(Nic, EndToEndLatencyMatchesModel) {
  // serialization(tx) + prop + switch fwd + serialization(port) + prop.
  sim::CostModel m;
  Cluster cluster(m);
  cluster.add_hosts(2);
  SimTime arrival = -1;
  cluster.host(1).nic().set_rx_handler(PacketKind::control,
                                       [&](PacketPtr) { arrival = cluster.loop().now(); });
  const std::uint32_t bytes = 4096;
  cluster.host(0).nic().send(make_test_packet(1, bytes, PacketKind::control));
  cluster.loop().run();
  const SimDuration ser = transmission_time(bytes, m.nic_line_gbps * 1e9);
  const SimDuration expected = ser + m.link_prop_ns + m.switch_fwd_ns + ser + m.link_prop_ns;
  EXPECT_EQ(arrival, expected);
}

TEST(Nic, LineRateBoundsThroughput) {
  // 1000 x 64 KiB packets over a 40 Gb/s link take >= 13.1 ms.
  Cluster cluster;
  cluster.add_hosts(2);
  int arrived = 0;
  cluster.host(1).nic().set_rx_handler(PacketKind::control,
                                       [&](PacketPtr) { ++arrived; });
  const std::uint32_t bytes = 64 * 1024;
  for (int i = 0; i < 1000; ++i) {
    cluster.host(0).nic().send(make_test_packet(1, bytes, PacketKind::control));
  }
  cluster.loop().run();
  EXPECT_EQ(arrived, 1000);
  const double gbps = throughput_gbps(1000ull * bytes, cluster.loop().now());
  EXPECT_LE(gbps, 40.5);
  EXPECT_GT(gbps, 38.0);
}

TEST(Nic, UnhandledKindIsDroppedSafely) {
  Cluster cluster;
  cluster.add_hosts(2);
  cluster.host(0).nic().send(make_test_packet(1, 100, PacketKind::dpdk_frame));
  cluster.loop().run();  // no handler installed: warn + drop, no crash
  EXPECT_EQ(cluster.host(1).nic().rx_packets(), 1u);
}

TEST(Nic, ByteCountersTrackWireBytes) {
  Cluster cluster;
  cluster.add_hosts(2);
  cluster.host(1).nic().set_rx_handler(PacketKind::control, [](PacketPtr) {});
  cluster.host(0).nic().send(make_test_packet(1, 1111, PacketKind::control));
  cluster.host(0).nic().send(make_test_packet(1, 2222, PacketKind::control));
  cluster.loop().run();
  EXPECT_EQ(cluster.host(0).nic().tx_bytes(), 3333u);
  EXPECT_EQ(cluster.host(1).nic().rx_bytes(), 3333u);
}

TEST(Control, InstallIsIdempotent) {
  Cluster cluster;
  cluster.add_hosts(1);
  install_control_rx(cluster.host(0));
  install_control_rx(cluster.host(0));  // re-install must not break dispatch
  int fired = 0;
  send_control(cluster.host(0), 0, 64, [&]() { ++fired; });
  cluster.loop().run();
  EXPECT_EQ(fired, 1);
}

TEST(Control, RoundTripAcrossHosts) {
  Cluster cluster;
  cluster.add_hosts(2);
  install_control_rx(cluster.host(0));
  install_control_rx(cluster.host(1));
  bool there = false, back = false;
  send_control(cluster.host(0), 1, 128, [&]() {
    there = true;
    send_control(cluster.host(1), 0, 128, [&]() { back = true; });
  });
  cluster.loop().run();
  EXPECT_TRUE(there);
  EXPECT_TRUE(back);
}

TEST(Control, SameHostDeliveryStillAsync) {
  Cluster cluster;
  cluster.add_hosts(1);
  install_control_rx(cluster.host(0));
  bool fired = false;
  send_control(cluster.host(0), 0, 64, [&]() { fired = true; });
  EXPECT_FALSE(fired);  // never synchronous
  cluster.loop().run();
  EXPECT_TRUE(fired);
}

TEST(Switch, IncastQueuesOnOutputPort) {
  // Two senders to one receiver share the receiver's 40 Gb/s port: total
  // delivery time is bounded by the port, not the senders.
  Cluster cluster;
  cluster.add_hosts(3);
  std::uint64_t bytes_rx = 0;
  cluster.host(2).nic().set_rx_handler(
      PacketKind::control, [&](PacketPtr p) { bytes_rx += p->wire_bytes; });
  const std::uint32_t sz = 64 * 1024;
  const int per_sender = 200;
  for (int i = 0; i < per_sender; ++i) {
    cluster.host(0).nic().send(make_test_packet(2, sz, PacketKind::control));
    cluster.host(1).nic().send(make_test_packet(2, sz, PacketKind::control));
  }
  cluster.loop().run();
  EXPECT_EQ(bytes_rx, 2ull * per_sender * sz);
  const double gbps = throughput_gbps(bytes_rx, cluster.loop().now());
  EXPECT_LE(gbps, 40.5);  // receiver port is the bottleneck
  EXPECT_GT(gbps, 35.0);
}

PacketPtr make_tenant_packet(HostId dst, std::uint32_t bytes, std::uint32_t tenant) {
  auto p = make_test_packet(dst, bytes, PacketKind::control);
  p->tenant = tenant;
  return p;
}

TEST(WdrrTenantQos, WeightedShareConvergesToRatio) {
  // Two tenants saturate one tx link with an 8:1 weight split; the byte
  // split observed mid-drain must converge to the weights within +/-10%.
  Cluster cluster;
  cluster.add_hosts(2);
  cluster.host(1).nic().set_rx_handler(PacketKind::control, [](PacketPtr) {});
  cluster.host(0).nic().set_tenant_qos(1, TenantQos{.weight = 8});
  cluster.host(0).nic().set_tenant_qos(2, TenantQos{.weight = 1});
  const std::uint32_t sz = 64 * 1024;
  for (int i = 0; i < 400; ++i) {
    cluster.host(0).nic().send(make_tenant_packet(1, sz, 1));
    cluster.host(0).nic().send(make_tenant_packet(1, sz, 2));
  }
  // Half the drain time: both queues are still backlogged at the deadline,
  // so the split reflects scheduling, not work conservation.
  cluster.loop().run_for(5 * k_millisecond);
  const auto t1 = cluster.host(0).nic().tenant_tx_bytes(1);
  const auto t2 = cluster.host(0).nic().tenant_tx_bytes(2);
  ASSERT_GT(t2, 0u);  // the weight-1 tenant must not be starved
  const double ratio = static_cast<double>(t1) / static_cast<double>(t2);
  EXPECT_GE(ratio, 8.0 * 0.9);
  EXPECT_LE(ratio, 8.0 * 1.1);
  EXPECT_GT(cluster.host(0).nic().tenant_queue_depth(1), 0u);
  EXPECT_GT(cluster.host(0).nic().tenant_queue_depth(2), 0u);
}

TEST(WdrrTenantQos, Weight1NotStarvedUnderWeight8Saturation) {
  // A single weight-1 packet enqueued behind a saturating weight-8 burst
  // must be transmitted after at most a few quanta of the heavy tenant,
  // not after the whole burst drains.
  Cluster cluster;
  cluster.add_hosts(2);
  SimTime lone_arrival = -1;
  cluster.host(1).nic().set_rx_handler(PacketKind::control, [&](PacketPtr p) {
    if (p->tenant == 2) lone_arrival = cluster.loop().now();
  });
  cluster.host(0).nic().set_tenant_qos(1, TenantQos{.weight = 8});
  cluster.host(0).nic().set_tenant_qos(2, TenantQos{.weight = 1});
  const std::uint32_t sz = 64 * 1024;
  for (int i = 0; i < 200; ++i) {
    cluster.host(0).nic().send(make_tenant_packet(1, sz, 1));
  }
  cluster.host(0).nic().send(make_tenant_packet(1, sz, 2));
  cluster.loop().run();
  // Full drain takes ~2.6 ms at 40 Gb/s; WDRR interleaving must deliver
  // the lone packet within the first ~1 MiB of heavy traffic (~0.25 ms).
  ASSERT_GE(lone_arrival, 0);
  EXPECT_LT(lone_arrival, 1 * k_millisecond);
}

TEST(WdrrTenantQos, RateCapThrottlesTenantOnIdleLink) {
  // A 5 Gb/s token-bucket cap must bound the tenant even though the
  // 40 Gb/s link is otherwise idle (the cap is not work-conserving).
  Cluster cluster;
  cluster.add_hosts(2);
  std::uint64_t bytes_rx = 0;
  cluster.host(1).nic().set_rx_handler(
      PacketKind::control, [&](PacketPtr p) { bytes_rx += p->wire_bytes; });
  cluster.host(0).nic().set_tenant_qos(3, TenantQos{.weight = 4, .rate_bps = 5e9});
  const std::uint32_t sz = 64 * 1024;
  for (int i = 0; i < 100; ++i) {
    cluster.host(0).nic().send(make_tenant_packet(1, sz, 3));
  }
  cluster.loop().run();
  EXPECT_EQ(bytes_rx, 100ull * sz);
  const double gbps = throughput_gbps(bytes_rx, cluster.loop().now());
  EXPECT_LE(gbps, 5.5);
  EXPECT_GT(gbps, 4.0);
}

}  // namespace
}  // namespace freeflow::fabric
