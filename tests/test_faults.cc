// Fault-injection scenario matrix: every recoverable fault the injector can
// produce is driven against a live transfer, and the transfer must survive
// with zero payload loss and no reordering — the conduit-level ARQ plus the
// agent/orchestrator failover machinery are what's under test. The whole
// binary also runs under ASan/LSan in CI (chaos-smoke stage).
#include <gtest/gtest.h>

#include "core/freeflow.h"
#include "faults/fault_injector.h"
#include "sim_env.h"

namespace freeflow::faults {
namespace {

using freeflow::testing::Env;

/// Deterministic byte pattern keyed by absolute stream offset: the receiver
/// verifies every arriving byte against the offset it SHOULD be at, which
/// catches loss, duplication and reordering in one check.
constexpr std::uint8_t pattern_byte(std::uint64_t offset) {
  return static_cast<std::uint8_t>((offset * 131 + 17) & 0xFF);
}

orch::Transport transport_of(const core::ContainerNetPtr& net) {
  auto conns = net->connections();
  return conns.empty() ? orch::Transport::tcp_overlay : conns[0].transport;
}

std::uint64_t rebinds_of(const core::ContainerNetPtr& net) {
  auto conns = net->connections();
  return conns.empty() ? 0 : conns[0].rebinds;
}

struct Pair {
  orch::ContainerPtr a, b;
  core::ContainerNetPtr net_a, net_b;
};

Pair attach_pair(Env& env, fabric::HostId ha, fabric::HostId hb,
                 agent::AgentConfig config = {}) {
  Pair p;
  p.a = env.deploy("a", 1, ha);
  p.b = env.deploy("b", 1, hb);
  auto& ff = env.freeflow(config);
  auto na = ff.attach(p.a->id());
  auto nb = ff.attach(p.b->id());
  EXPECT_TRUE(na.is_ok());
  EXPECT_TRUE(nb.is_ok());
  p.net_a = *na;
  p.net_b = *nb;
  return p;
}

/// A pattern-checked one-way transfer of `target` bytes, paced on the
/// socket's writability (the idiom the throughput drivers use).
struct Stream {
  core::FlowSocketPtr client, server;
  std::uint64_t target = 0;
  std::uint64_t sent = 0;
  std::uint64_t verified = 0;  ///< in-order, pattern-correct bytes received
  bool corrupt = false;
  SimTime last_rx = 0;
  std::shared_ptr<std::function<void()>> pump;
  std::shared_ptr<std::function<void()>> tick;

  [[nodiscard]] bool done() const { return !corrupt && verified >= target; }
};

std::shared_ptr<Stream> start_stream(Env& env, Pair& p, std::uint16_t port,
                                     std::uint64_t target) {
  auto st = std::make_shared<Stream>();
  st->target = target;
  sim::EventLoop* loop = &env.loop();

  EXPECT_TRUE(p.net_b->sock_listen(port, [st, loop](core::FlowSocketPtr s) {
    st->server = s;
    s->set_on_data([st, loop](Buffer&& b) {
      const auto* bytes = b.data();
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (static_cast<std::uint8_t>(bytes[i]) != pattern_byte(st->verified + i)) {
          st->corrupt = true;
          return;
        }
      }
      st->verified += b.size();
      st->last_rx = loop->now();
    });
  }).is_ok());
  p.net_a->sock_connect(p.b->ip(), port, [st](Result<core::FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok()) << s.status();
    st->client = *s;
  });
  EXPECT_TRUE(env.wait([&]() { return st->client != nullptr && st->server != nullptr; }));

  st->pump = std::make_shared<std::function<void()>>();
  std::weak_ptr<Stream> w = st;
  *st->pump = [w]() {
    auto stream = w.lock();
    if (stream == nullptr) return;
    while (stream->sent < stream->target && stream->client->writable()) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(64 * 1024, stream->target - stream->sent));
      Buffer msg(n);
      auto* out = msg.data();
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::byte>(pattern_byte(stream->sent + i));
      }
      ASSERT_TRUE(stream->client->send(std::move(msg)).is_ok());
      stream->sent += n;
    }
  };
  st->client->set_on_space([pump = st->pump]() { (*pump)(); });
  (*st->pump)();

  // Writability can also come back via failover re-binds, which don't fire
  // on_space; a periodic re-pump keeps the stream moving through them.
  st->tick = std::make_shared<std::function<void()>>();
  *st->tick = [loop, w, wt = std::weak_ptr<std::function<void()>>(st->tick)]() {
    auto stream = w.lock();
    auto t = wt.lock();
    if (stream == nullptr || t == nullptr) return;
    (*stream->pump)();
    if (stream->sent >= stream->target) return;  // the chain ends itself
    loop->schedule(50 * k_microsecond, [t]() { (*t)(); });
  };
  (*st->tick)();
  return st;
}

// ------------------------------------------------------------- acceptance

// Kill-RDMA-mid-transfer: a 64 MB transfer riding rdma survives the NIC's
// RDMA engine dying — it fails over to tcp_host with zero loss and in-order
// delivery, and re-upgrades to rdma once the engine heals.
TEST(FaultMatrix, KillRdmaMidTransferFailsOverAndReupgrades) {
  fabric::NicCapabilities caps;
  caps.dpdk = false;  // make tcp_host the fallback edge
  Env env(2, {}, caps);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7000, 64ull * 1024 * 1024);
  FaultInjector injector(*env.net_orch, env.freeflow().agents());

  ASSERT_TRUE(env.wait([&]() { return st->verified > 4 * 1024 * 1024; }));
  ASSERT_EQ(transport_of(p.net_a), orch::Transport::rdma);

  injector.apply({env.loop().now(), FaultKind::rdma_down, 1});
  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(st->verified, st->target);
  EXPECT_EQ(transport_of(p.net_a), orch::Transport::tcp_host);
  EXPECT_GE(rebinds_of(p.net_a), 1u);

  injector.apply({env.loop().now(), FaultKind::rdma_up, 1});
  ASSERT_TRUE(env.wait(
      [&]() { return transport_of(p.net_a) == orch::Transport::rdma; }));

  // The re-upgraded lane must actually carry data, not just exist.
  st->target += 1024 * 1024;
  (*st->pump)();
  ASSERT_TRUE(env.wait([&]() { return st->done(); }))
      << "sent " << st->sent << " verified " << st->verified << "/" << st->target
      << " writable " << st->client->writable()
      << " retained " << p.net_a->connections()[0].retained
      << (st->corrupt ? " CORRUPT" : "");
  EXPECT_FALSE(st->corrupt);
}

// --------------------------------------------------------------- matrix

// rdma -> dpdk -> tcp_host: each kill steps the conduit down one rung of
// the capability ladder, without losing a byte.
TEST(FaultMatrix, FallbackChainRdmaDpdkTcp) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7001, 32ull * 1024 * 1024);
  FaultInjector injector(*env.net_orch, env.freeflow().agents());

  ASSERT_TRUE(env.wait([&]() { return st->verified > 2 * 1024 * 1024; }));
  ASSERT_EQ(transport_of(p.net_a), orch::Transport::rdma);

  injector.apply({env.loop().now(), FaultKind::rdma_down, 1});
  ASSERT_TRUE(env.wait(
      [&]() { return transport_of(p.net_a) == orch::Transport::dpdk; }));

  injector.apply({env.loop().now(), FaultKind::dpdk_down, 1});
  ASSERT_TRUE(env.wait(
      [&]() { return transport_of(p.net_a) == orch::Transport::tcp_host; }));

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target;
  EXPECT_FALSE(st->corrupt);
}

// A link flap shorter than any failover machinery cares about: kernel TCP
// retransmission plus conduit ARQ ride it out; the transfer just stalls.
TEST(FaultMatrix, LinkFlapStallsAndRecovers) {
  fabric::NicCapabilities caps;
  caps.rdma = false;
  caps.dpdk = false;
  Env env(2, {}, caps);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7002, 8ull * 1024 * 1024);
  FaultInjector injector(*env.net_orch, env.freeflow().agents());
  FaultPlan plan;
  plan.link_flap(1, 1 * k_millisecond, 5 * k_millisecond);
  injector.arm(plan);

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second))
      << "verified " << st->verified << "/" << st->target;
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(injector.faults_applied(), 2u);
}

// A degraded NIC (20 % of line rate) slows the transfer but must not change
// correctness — and the orchestrator deliberately keeps the decision.
TEST(FaultMatrix, DegradedNicStillCompletes) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7003, 8ull * 1024 * 1024);
  FaultInjector injector(*env.net_orch, env.freeflow().agents());
  FaultPlan plan;
  plan.degrade(1, 1 * k_millisecond, 0.2, 20 * k_millisecond);
  injector.arm(plan);

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second));
  EXPECT_FALSE(st->corrupt);
  EXPECT_EQ(transport_of(p.net_a), orch::Transport::rdma);
}

// Regression: two degrade windows overlapping on one host used to clobber
// each other — the first restore snapped the NIC back to full rate while
// the longer degrade was still in force. Each restore must heal only its
// own degrade; the NIC runs at the most severe fraction still active.
TEST(FaultMatrix, OverlappingDegradesComposeAndHealIndependently) {
  Env env(2);
  env.freeflow();
  FaultInjector injector(*env.net_orch, env.freeflow().agents());
  FaultPlan plan;
  plan.degrade(1, 1 * k_millisecond, 0.5, 10 * k_millisecond);   // heals at 11 ms
  plan.degrade(1, 2 * k_millisecond, 0.25, 4 * k_millisecond);   // heals at 6 ms
  injector.arm(plan);

  const auto& nic = env.cluster.host(1).nic();
  env.loop().run_until(1500 * k_microsecond);
  EXPECT_DOUBLE_EQ(nic.health().rate_fraction, 0.5);
  env.loop().run_until(3 * k_millisecond);
  EXPECT_DOUBLE_EQ(nic.health().rate_fraction, 0.25);  // most severe wins
  env.loop().run_until(8 * k_millisecond);
  // The short degrade healed, the long one is still active: 0.5, not 1.0.
  EXPECT_DOUBLE_EQ(nic.health().rate_fraction, 0.5);
  env.loop().run_until(15 * k_millisecond);
  EXPECT_DOUBLE_EQ(nic.health().rate_fraction, 1.0);
  EXPECT_EQ(injector.faults_applied(), 4u);
}

// An agent pause buffers the relay in both directions; resume replays the
// buffers in order, so the stream completes untouched.
TEST(FaultMatrix, AgentPauseBuffersAndResumes) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7004, 8ull * 1024 * 1024);
  FaultInjector injector(*env.net_orch, env.freeflow().agents());
  FaultPlan plan;
  plan.agent_pause(1, 1 * k_millisecond, 2 * k_millisecond);
  injector.arm(plan);

  ASSERT_TRUE(env.wait([&]() { return st->done(); }, 60 * k_second));
  EXPECT_FALSE(st->corrupt);
  EXPECT_TRUE(env.freeflow().agents().agent_on(1).paused() == false);
}

// Missed heartbeats are the detection path of last resort: an agent that
// goes silent (paused longer than the timeout) gets its lanes declared dead
// by the peer's monitor. No config opt-in: lane-health monitoring is on by
// default now that the monitor runs as a maintenance (non-blocking) timer.
TEST(FaultMatrix, MissedHeartbeatsDeclareLaneDead) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7005, 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->done(); }));

  FaultInjector injector(*env.net_orch, env.freeflow().agents());
  injector.apply({env.loop().now(), FaultKind::agent_pause, 1});
  agent::Agent& agent_a = env.freeflow().agents().agent_on(0);
  EXPECT_TRUE(env.wait([&]() { return agent_a.lanes_failed() > 0; }, 1 * k_second));
  injector.apply({env.loop().now(), FaultKind::agent_resume, 1});
}

// A host crash is unrecoverable: peers' sockets close with host_crashed —
// not peer_bye — so applications can tell a crash from a goodbye.
TEST(FaultMatrix, HostCrashClosesPeersWithReason) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7006, 4ull * 1024 * 1024);
  ASSERT_TRUE(env.wait([&]() { return st->verified > 64 * 1024; }));

  bool closed = false;
  core::CloseReason reason{};
  st->client->set_on_close([&](core::CloseReason r) {
    reason = r;
    closed = true;
  });
  FaultInjector injector(*env.net_orch, env.freeflow().agents());
  injector.apply({env.loop().now(), FaultKind::host_crash, 1});
  EXPECT_TRUE(env.wait([&]() { return closed; }));
  EXPECT_EQ(reason, core::CloseReason::host_crashed);
  EXPECT_EQ(p.net_a->conduit_count(), 0u);
}

// --------------------------------------------------------- determinism

struct ChaosRun {
  std::string trace;        ///< injector event trace
  std::string transitions;  ///< "t:transport" every time the conduit moves
  std::uint64_t verified = 0;
  bool corrupt = false;
};

ChaosRun run_chaos(std::uint64_t seed) {
  Env env(2);
  auto p = attach_pair(env, 0, 1);
  auto st = start_stream(env, p, 7100, 16ull * 1024 * 1024);
  FaultInjector injector(*env.net_orch, env.freeflow().agents());
  FaultPlan plan = FaultPlan::random(seed, 2, 20 * k_millisecond, 2);
  plan.rdma_outage(1, 2 * k_millisecond, 10 * k_millisecond);
  injector.arm(plan);

  ChaosRun run;
  orch::Transport last = transport_of(p.net_a);
  run.transitions += std::string(orch::transport_name(last)) + "\n";
  env.wait(
      [&]() {
        const orch::Transport t = transport_of(p.net_a);
        if (t != last) {
          last = t;
          run.transitions += "t=" + std::to_string(env.loop().now()) + " " +
                             std::string(orch::transport_name(t)) + "\n";
        }
        return st->done() && injector.faults_applied() >= plan.size();
      },
      200 * k_millisecond);
  run.trace = injector.trace_text();
  run.verified = st->verified;
  run.corrupt = st->corrupt;
  return run;
}

// Same seed, same plan => byte-identical fault trace, identical failover
// decisions, identical bytes delivered. This is what makes chaos failures
// replayable.
TEST(FaultDeterminism, SameSeedSamePlanIsByteIdentical) {
  const ChaosRun first = run_chaos(42);
  const ChaosRun second = run_chaos(42);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.transitions, second.transitions);
  EXPECT_EQ(first.verified, second.verified);
  EXPECT_FALSE(first.corrupt);
  EXPECT_FALSE(second.corrupt);
  EXPECT_FALSE(first.trace.empty());
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  FaultPlan a = FaultPlan::random(1, 4, 100 * k_millisecond, 4);
  FaultPlan b = FaultPlan::random(2, 4, 100 * k_millisecond, 4);
  EXPECT_NE(a.describe(), b.describe());
  EXPECT_EQ(a.describe(), FaultPlan::random(1, 4, 100 * k_millisecond, 4).describe());
}

}  // namespace
}  // namespace freeflow::faults
