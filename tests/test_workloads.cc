#include <gtest/gtest.h>

#include "sim_env.h"
#include "workloads/kv_store.h"
#include "workloads/param_server.h"
#include "workloads/drivers.h"
#include "workloads/shuffle.h"

namespace freeflow::workloads {
namespace {

using freeflow::testing::Env;

struct WorkloadFixture : ::testing::Test {
  static std::pair<StreamPtr, StreamPtr> freeflow_stream_pair(
      Env& env, core::ContainerNetPtr from, core::ContainerNetPtr to,
      tcp::Ipv4Addr to_ip, std::uint16_t port) {
    core::FlowSocketPtr client, server;
    EXPECT_TRUE(to->sock_listen(port, [&](core::FlowSocketPtr s) { server = s; }).is_ok());
    from->sock_connect(to_ip, port, [&](Result<core::FlowSocketPtr> s) {
      ASSERT_TRUE(s.is_ok()) << s.status();
      client = *s;
    });
    EXPECT_TRUE(env.wait([&]() { return client != nullptr && server != nullptr; }));
    return {std::make_shared<FlowSocketStream>(client),
            std::make_shared<FlowSocketStream>(server)};
  }
};

TEST_F(WorkloadFixture, RecordStreamFramesAcrossChunkBoundaries) {
  Env env(1);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto na = env.freeflow().attach(a->id()).value();
  auto nb = env.freeflow().attach(b->id()).value();
  auto [cs, ss] = freeflow_stream_pair(env, na, nb, b->ip(), 6000);

  std::vector<std::size_t> sizes;
  RecordStream server_rs(ss, [&](ByteSpan rec) { sizes.push_back(rec.size()); });
  RecordStream client_rs(cs, [](ByteSpan) {});

  // Records straddling the 64 KiB socket chunking.
  ASSERT_TRUE(client_rs.send_record(Buffer(10).view()).is_ok());
  ASSERT_TRUE(client_rs.send_record(Buffer(100000).view()).is_ok());
  ASSERT_TRUE(client_rs.send_record(Buffer(0).view()).is_ok());
  ASSERT_TRUE(client_rs.send_record(Buffer(65536).view()).is_ok());
  EXPECT_TRUE(env.wait([&]() { return sizes.size() == 4; }, 30 * k_second));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{10, 100000, 0, 65536}));
}

TEST_F(WorkloadFixture, KvPutGetRoundTrip) {
  Env env(2);
  auto server_c = env.deploy("kv-server", 1, 0);
  auto client_c = env.deploy("kv-client", 1, 1);
  auto ns = env.freeflow().attach(server_c->id()).value();
  auto nc = env.freeflow().attach(client_c->id()).value();

  KvServer kv;
  ASSERT_TRUE(ns->sock_listen(7000, [&](core::FlowSocketPtr s) {
    kv.serve(std::make_shared<FlowSocketStream>(s));
  }).is_ok());

  std::shared_ptr<KvClient> client;
  nc->sock_connect(server_c->ip(), 7000, [&](Result<core::FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok());
    client = std::make_shared<KvClient>(std::make_shared<FlowSocketStream>(*s));
    client->set_clock([&env]() { return env.loop().now(); });
  });
  ASSERT_TRUE(env.wait([&]() { return client != nullptr; }));

  Buffer value(5000);
  fill_pattern(value.mutable_view(), 77);
  bool put_done = false;
  client->put("answer", value, [&](KvStatus st) {
    EXPECT_EQ(st, KvStatus::ok);
    put_done = true;
  });
  ASSERT_TRUE(env.wait([&]() { return put_done; }, 30 * k_second));

  Buffer got;
  KvStatus get_status = KvStatus::not_found;
  client->get("answer", [&](KvStatus st, Buffer&& v) {
    get_status = st;
    got = std::move(v);
  });
  ASSERT_TRUE(env.wait([&]() { return !got.empty(); }, 30 * k_second));
  EXPECT_EQ(get_status, KvStatus::ok);
  EXPECT_EQ(got.size(), 5000u);
  EXPECT_TRUE(check_pattern(got.view(), 77));

  bool missing_done = false;
  client->get("nope", [&](KvStatus st, Buffer&&) {
    EXPECT_EQ(st, KvStatus::not_found);
    missing_done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return missing_done; }, 30 * k_second));
  EXPECT_EQ(kv.requests_served(), 3u);
  EXPECT_EQ(client->completed(), 3u);
  EXPECT_GT(client->latency().mean(), 0.0);
}

TEST_F(WorkloadFixture, KvPipelinedRequestsAllComplete) {
  Env env(1);
  auto server_c = env.deploy("kv-server", 1, 0);
  auto client_c = env.deploy("kv-client", 1, 0);
  auto ns = env.freeflow().attach(server_c->id()).value();
  auto nc = env.freeflow().attach(client_c->id()).value();

  KvServer kv;
  ASSERT_TRUE(ns->sock_listen(7000, [&](core::FlowSocketPtr s) {
    kv.serve(std::make_shared<FlowSocketStream>(s));
  }).is_ok());
  std::shared_ptr<KvClient> client;
  nc->sock_connect(server_c->ip(), 7000, [&](Result<core::FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok());
    client = std::make_shared<KvClient>(std::make_shared<FlowSocketStream>(*s));
  });
  ASSERT_TRUE(env.wait([&]() { return client != nullptr; }));

  const int n = 200;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    client->put("k" + std::to_string(i), Buffer(128), [&](KvStatus) { ++done; });
  }
  EXPECT_TRUE(env.wait([&]() { return done == n; }, 60 * k_second));
  int verified = 0;
  for (int i = 0; i < n; ++i) {
    client->get("k" + std::to_string(i), [&](KvStatus st, Buffer&& v) {
      EXPECT_EQ(st, KvStatus::ok);
      EXPECT_EQ(v.size(), 128u);
      ++verified;
    });
  }
  EXPECT_TRUE(env.wait([&]() { return verified == n; }, 60 * k_second));
}

TEST_F(WorkloadFixture, ShuffleDeliversAllBytes) {
  Env env(4);
  Shuffle::Config cfg;
  cfg.mappers = 2;
  cfg.reducers = 2;
  cfg.bytes_per_flow = 2 * 1024 * 1024;

  std::vector<orch::ContainerPtr> mappers, reducers;
  std::vector<core::ContainerNetPtr> mnets, rnets;
  for (int i = 0; i < cfg.mappers; ++i) {
    mappers.push_back(env.deploy("map" + std::to_string(i), 1,
                                 static_cast<fabric::HostId>(i)));
    mnets.push_back(env.freeflow().attach(mappers.back()->id()).value());
  }
  for (int i = 0; i < cfg.reducers; ++i) {
    reducers.push_back(env.deploy("red" + std::to_string(i), 1,
                                  static_cast<fabric::HostId>(2 + i)));
    rnets.push_back(env.freeflow().attach(reducers.back()->id()).value());
  }

  Shuffle shuffle(cfg, [&](int m, int r, std::function<void(Result<StreamPtr>)> cb) {
    mnets[static_cast<std::size_t>(m)]->sock_connect(
        reducers[static_cast<std::size_t>(r)]->ip(), 8000,
        [cb = std::move(cb)](Result<core::FlowSocketPtr> s) {
          if (!s.is_ok()) {
            cb(s.status());
            return;
          }
          cb(StreamPtr(std::make_shared<FlowSocketStream>(*s)));
        });
  });
  auto sink = shuffle.reducer_sink();
  for (auto& rn : rnets) {
    ASSERT_TRUE(rn->sock_listen(8000, [sink](core::FlowSocketPtr s) {
      sink(std::make_shared<FlowSocketStream>(s));
    }).is_ok());
  }

  SimDuration elapsed = 0;
  shuffle.run([&]() { return env.loop().now(); }, [&](Result<SimDuration> e) {
    ASSERT_TRUE(e.is_ok()) << e.status();
    elapsed = *e;
  });
  EXPECT_TRUE(env.wait([&]() { return elapsed != 0; }, 120 * k_second));
  EXPECT_EQ(shuffle.bytes_received_total(), shuffle.bytes_expected_total());
  EXPECT_GT(elapsed, 0);
}

TEST_F(WorkloadFixture, KvEdgeCases) {
  Env env(1);
  auto server_c = env.deploy("kv", 1, 0);
  auto client_c = env.deploy("cl", 1, 0);
  auto ns = env.freeflow().attach(server_c->id()).value();
  auto nc = env.freeflow().attach(client_c->id()).value();
  KvServer kv;
  ASSERT_TRUE(ns->sock_listen(7000, [&](core::FlowSocketPtr s) {
    kv.serve(std::make_shared<FlowSocketStream>(s));
  }).is_ok());
  std::shared_ptr<KvClient> client;
  nc->sock_connect(server_c->ip(), 7000, [&](Result<core::FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok());
    client = std::make_shared<KvClient>(std::make_shared<FlowSocketStream>(*s));
  });
  ASSERT_TRUE(env.wait([&]() { return client != nullptr; }));

  // Empty value round-trips.
  bool empty_ok = false;
  client->put("empty", Buffer{}, [&](KvStatus st) { EXPECT_EQ(st, KvStatus::ok); });
  client->get("empty", [&](KvStatus st, Buffer&& v) {
    empty_ok = st == KvStatus::ok && v.empty();
  });
  EXPECT_TRUE(env.wait([&]() { return empty_ok; }, 30 * k_second));

  // Overwrite replaces the value.
  bool overwrote = false;
  client->put("k", Buffer::from_string("v1"), [](KvStatus) {});
  client->put("k", Buffer::from_string("v2-longer"), [](KvStatus) {});
  client->get("k", [&](KvStatus st, Buffer&& v) {
    overwrote = st == KvStatus::ok && v.to_string() == "v2-longer";
  });
  EXPECT_TRUE(env.wait([&]() { return overwrote; }, 30 * k_second));

  // Large value (spans several socket chunks).
  Buffer big(700000);
  fill_pattern(big.mutable_view(), 9);
  bool big_ok = false;
  client->put("big", big, [](KvStatus) {});
  client->get("big", [&](KvStatus st, Buffer&& v) {
    big_ok = st == KvStatus::ok && v.size() == 700000 && check_pattern(v.view(), 9);
  });
  EXPECT_TRUE(env.wait([&]() { return big_ok; }, 30 * k_second));
}

TEST_F(WorkloadFixture, KvWorksOverPlainTcpAdapter) {
  // The same KvServer/KvClient over the kernel stack (overlay baseline):
  // proof of the stream-adapter abstraction the benches rely on.
  fabric::Cluster cluster;
  cluster.add_hosts(2);
  overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
  overlay.attach_host(0);
  overlay.attach_host(1);
  auto a = overlay.add_container(0, nullptr);
  auto b = overlay.add_container(1, nullptr);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  cluster.loop().run();

  tcp::TcpNetwork net(cluster.loop(), cluster.cost_model(), overlay.path_builder());
  KvServer kv;
  ASSERT_TRUE(net.listen({*b, 7000}, [&](tcp::TcpConnection::Ptr c) {
    kv.serve(std::make_shared<TcpStream>(c));
  }).is_ok());
  std::shared_ptr<KvClient> client;
  net.connect({*a, 0}, {*b, 7000}, [&](Result<tcp::TcpConnection::Ptr> c) {
    ASSERT_TRUE(c.is_ok());
    client = std::make_shared<KvClient>(std::make_shared<TcpStream>(*c));
  });
  auto run = [&](const std::function<bool()>& pred) {
    const SimTime deadline = cluster.loop().now() + 30 * k_second;
    for (;;) {
      if (pred()) return true;
      if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
    }
  };
  ASSERT_TRUE(run([&]() { return client != nullptr; }));
  bool ok = false;
  client->put("x", Buffer::from_string("y"), [](KvStatus) {});
  client->get("x", [&](KvStatus st, Buffer&& v) {
    ok = st == KvStatus::ok && v.to_string() == "y";
  });
  EXPECT_TRUE(run([&]() { return ok; }));
}

TEST_F(WorkloadFixture, DriversReportFieldsAreConsistent) {
  fabric::Cluster cluster;
  cluster.add_hosts(1);
  auto r = drive_shm_stream(cluster, 0, 1, 1 << 20, 10 * k_millisecond);
  EXPECT_GT(r.bytes, 0u);
  EXPECT_GE(r.window, 10 * k_millisecond);
  EXPECT_NEAR(r.goodput_gbps,
              static_cast<double>(r.bytes) * 8.0 / static_cast<double>(r.window), 1e-9);
  EXPECT_GE(r.host_cpu_cores, 0.0);
  EXPECT_LE(r.membus_util, 1.05);
}

TEST_F(WorkloadFixture, ParamServerIterates) {
  Env env(2);
  auto server_c = env.deploy("ps", 1, 0);
  auto worker_c = env.deploy("worker", 1, 1);
  auto ns = env.freeflow().attach(server_c->id()).value();
  auto nw = env.freeflow().attach(worker_c->id()).value();

  ParamServer::Config cfg;
  cfg.model_floats = 64 * 1024;
  cfg.iterations = 3;
  ParamServer ps(ns, cfg);
  ASSERT_TRUE(ps.start().is_ok());

  PsWorker worker(nw, server_c->ip(), cfg);
  SimDuration elapsed = 0;
  worker.run(ps.model_mr_id(), [&](Result<SimDuration> e) {
    ASSERT_TRUE(e.is_ok()) << e.status();
    elapsed = *e;
  });
  EXPECT_TRUE(env.wait([&]() { return elapsed != 0; }, 120 * k_second));
  EXPECT_EQ(ps.workers_connected(), 1u);
  EXPECT_EQ(worker.transport(), orch::Transport::rdma);
  EXPECT_GT(elapsed, 0);
}

}  // namespace
}  // namespace freeflow::workloads
