#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "common/rng.h"
#include "fabric/cluster.h"
#include "shm/channel.h"
#include "shm/region.h"
#include "shm/spsc_ring.h"

namespace freeflow::shm {
namespace {

// --------------------------------------------------------------- SpscRing

TEST(SpscRing, PushPopRoundTrip) {
  SpscRing ring(1024);
  EXPECT_TRUE(ring.try_push(Buffer::from_string("hello").view()));
  Buffer out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.to_string(), "hello");
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopOnEmptyFails) {
  SpscRing ring(256);
  Buffer out;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, ZeroLengthMessages) {
  SpscRing ring(256);
  EXPECT_TRUE(ring.try_push(ByteSpan{}));
  Buffer out = Buffer::from_string("junk");
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(out.empty());
}

TEST(SpscRing, RejectsWhenFull) {
  SpscRing ring(64);
  Buffer big(60);
  EXPECT_TRUE(ring.try_push(big.view()));
  EXPECT_FALSE(ring.try_push(big.view()));
  Buffer out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(big.view()));  // space reclaimed
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo) {
  SpscRing ring(1000);
  EXPECT_EQ(ring.capacity(), 1024u);
}

TEST(SpscRing, WrapAroundPreservesContent) {
  SpscRing ring(128);
  // Drive the cursors past the wrap point many times.
  for (int i = 0; i < 500; ++i) {
    Buffer msg(static_cast<std::size_t>(i % 40 + 1));
    fill_pattern(msg.mutable_view(), static_cast<std::uint64_t>(i));
    ASSERT_TRUE(ring.try_push(msg.view()));
    Buffer out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out.size(), msg.size());
    ASSERT_TRUE(check_pattern(out.view(), static_cast<std::uint64_t>(i)));
  }
}

TEST(SpscRing, PropertyRandomOpsMatchModelQueue) {
  // Property: against a reference deque, random interleaved push/pop never
  // loses, duplicates or reorders messages.
  Rng rng(42);
  SpscRing ring(1 << 12);
  std::deque<Buffer> model;
  std::uint64_t next_seed = 0;
  for (int step = 0; step < 20000; ++step) {
    if (rng.chance(0.55)) {
      Buffer msg(rng.next_below(200));
      fill_pattern(msg.mutable_view(), next_seed);
      const bool pushed = ring.try_push(msg.view());
      const bool expected = ring.record_size(msg.size()) <= (1u << 12) || !pushed;
      (void)expected;
      if (pushed) {
        model.push_back(std::move(msg));
        ++next_seed;
      } else {
        ASSERT_FALSE(model.empty());  // only full rings reject
      }
    } else {
      Buffer out;
      const bool popped = ring.try_pop(out);
      ASSERT_EQ(popped, !model.empty());
      if (popped) {
        ASSERT_EQ(out, model.front());
        model.pop_front();
      }
    }
  }
  EXPECT_EQ(ring.pushed() - ring.popped(), model.size());
}

TEST(SpscRing, TwoThreadStress) {
  // The ring is a real lock-free structure: hammer it from two OS threads
  // and verify the integrity of every message.
  SpscRing ring(1 << 14);
  constexpr int k_messages = 50000;
  std::atomic<bool> failed{false};

  std::thread producer([&]() {
    for (int i = 0; i < k_messages; ++i) {
      Buffer msg(static_cast<std::size_t>(i % 257));
      fill_pattern(msg.mutable_view(), static_cast<std::uint64_t>(i));
      while (!ring.try_push(msg.view())) {
        std::this_thread::yield();
      }
    }
  });
  std::thread consumer([&]() {
    Buffer out;
    for (int i = 0; i < k_messages; ++i) {
      while (!ring.try_pop(out)) {
        std::this_thread::yield();
      }
      if (out.size() != static_cast<std::size_t>(i % 257) ||
          !check_pattern(out.view(), static_cast<std::uint64_t>(i))) {
        failed = true;
        return;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(ring.empty());
}

// ----------------------------------------------------------------- Region

TEST(RegionRegistry, CreateAttachDestroy) {
  RegionRegistry reg;
  auto r = reg.create(/*owner=*/1, 4096);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(reg.region_count(), 1u);
  EXPECT_EQ(reg.bytes_in_use(), 4096u);

  auto same = reg.attach((*r)->id(), 1);
  EXPECT_TRUE(same.is_ok());
  EXPECT_TRUE(reg.destroy((*r)->id()).is_ok());
  EXPECT_EQ(reg.region_count(), 0u);
}

TEST(RegionRegistry, EnforcesTenantIsolation) {
  RegionRegistry reg;
  auto r = reg.create(1, 1024);
  ASSERT_TRUE(r.is_ok());
  auto denied = reg.attach((*r)->id(), 2);
  EXPECT_EQ(denied.status().code(), Errc::permission_denied);

  (*r)->allow(2);
  EXPECT_TRUE(reg.attach((*r)->id(), 2).is_ok());
  auto still_denied = reg.attach((*r)->id(), 3);
  EXPECT_EQ(still_denied.status().code(), Errc::permission_denied);
}

TEST(RegionAccounting, DestroyWithLiveAttachmentsKeepsBudgetCharged) {
  // Regression: destroy() used to release the budget immediately even with
  // attachments outstanding, so the registry over-admitted new regions
  // against memory that was still pinned (shm_unlink does not free live
  // mmaps). The charge must persist until the LAST holder releases.
  RegionRegistry reg;
  reg.set_capacity(1000);
  auto r = reg.create(1, 600);
  ASSERT_TRUE(r.is_ok());
  auto held = reg.attach((*r)->id(), 1);
  ASSERT_TRUE(held.is_ok());

  ASSERT_TRUE(reg.destroy((*r)->id()).is_ok());
  EXPECT_EQ(reg.region_count(), 0u);          // unlinked from the namespace
  EXPECT_EQ(reg.bytes_in_use(), 600u);        // ...but still pinned
  EXPECT_EQ(reg.create(1, 600).status().code(), Errc::resource_exhausted);

  (*r).reset();
  (*held).reset();  // last holder gone -> budget released
  EXPECT_EQ(reg.bytes_in_use(), 0u);
  EXPECT_TRUE(reg.create(1, 600).is_ok());
}

TEST(RegionTenantIsolation, CrossTenantAttachMatrixDeniedAndAudited) {
  // Full 3-tenant matrix: every cross-tenant attach is denied (and counted)
  // unless explicitly granted; grants are pairwise, not transitive.
  RegionRegistry reg;
  std::vector<std::shared_ptr<Region>> owned;
  for (TenantId t = 1; t <= 3; ++t) {
    auto r = reg.create(t, 1024);
    ASSERT_TRUE(r.is_ok());
    owned.push_back(*r);
  }
  for (TenantId t = 1; t <= 3; ++t) {
    for (const auto& region : owned) {
      auto got = reg.attach(region->id(), t);
      if (region->owner() == t) {
        EXPECT_TRUE(got.is_ok());
      } else {
        EXPECT_EQ(got.status().code(), Errc::permission_denied);
      }
    }
  }
  EXPECT_EQ(reg.denied_attaches(), 6u);   // 3x3 matrix minus the diagonal
  EXPECT_EQ(reg.foreign_attaches(), 0u);

  owned[0]->allow(2);  // tenant 1 trusts tenant 2 with this region only
  EXPECT_TRUE(reg.attach(owned[0]->id(), 2).is_ok());
  EXPECT_EQ(reg.attach(owned[0]->id(), 3).status().code(), Errc::permission_denied);
  EXPECT_EQ(reg.attach(owned[1]->id(), 1).status().code(), Errc::permission_denied);
  EXPECT_EQ(reg.foreign_attaches(), 1u);  // exactly the granted one
  EXPECT_EQ(reg.denied_attaches(), 8u);
}

TEST(RegionRegistry, CapacityLimit) {
  RegionRegistry reg;
  reg.set_capacity(1000);
  EXPECT_TRUE(reg.create(1, 600).is_ok());
  auto too_big = reg.create(1, 600);
  EXPECT_EQ(too_big.status().code(), Errc::resource_exhausted);
}

TEST(RegionRegistry, RejectsZeroSize) {
  RegionRegistry reg;
  EXPECT_EQ(reg.create(1, 0).status().code(), Errc::invalid_argument);
}

TEST(RegionRegistry, AttachUnknownFails) {
  RegionRegistry reg;
  EXPECT_EQ(reg.attach(999, 1).status().code(), Errc::not_found);
}

// ---------------------------------------------------------------- ShmLane

struct LaneFixture : ::testing::Test {
  LaneFixture() { cluster.add_hosts(1); }
  fabric::Cluster cluster;
};

TEST_F(LaneFixture, DeliversMessagesInOrderWithIntegrity) {
  ShmLane lane(cluster.host(0), 1 << 20);
  std::vector<Buffer> got;
  lane.set_receiver([&](Buffer&& b) { got.push_back(std::move(b)); });
  for (int i = 0; i < 10; ++i) {
    Buffer msg(1000 + static_cast<std::size_t>(i));
    fill_pattern(msg.mutable_view(), static_cast<std::uint64_t>(i));
    ASSERT_TRUE(lane.send(msg.view()).is_ok());
  }
  cluster.loop().run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].size(), 1000u + static_cast<std::size_t>(i));
    EXPECT_TRUE(check_pattern(got[static_cast<std::size_t>(i)].view(),
                              static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(lane.messages_delivered(), 10u);
}

TEST_F(LaneFixture, ChargesSenderAndReceiverCpu) {
  ShmLane lane(cluster.host(0), 1 << 20);
  sim::UsageAccount tx("tx"), rx("rx");
  lane.set_sender_account(&tx);
  lane.set_receiver_account(&rx);
  lane.set_receiver([](Buffer&&) {});
  Buffer msg(100000);
  ASSERT_TRUE(lane.send(msg.view()).is_ok());
  cluster.loop().run();
  const auto& m = cluster.cost_model();
  EXPECT_NEAR(tx.busy_ns, m.shm_post_ns + m.shm_copy_ns_per_byte * 100000, 1.0);
  EXPECT_NEAR(rx.busy_ns, m.shm_poll_ns + m.shm_copy_ns_per_byte * 100000, 1.0);
}

TEST_F(LaneFixture, BackpressureAndOnSpace) {
  ShmLane lane(cluster.host(0), 1 << 10);  // tiny ring
  int delivered = 0;
  lane.set_receiver([&](Buffer&&) { ++delivered; });
  Buffer big(600);
  ASSERT_TRUE(lane.send(big.view()).is_ok());
  const Status blocked = lane.send(big.view());
  EXPECT_EQ(blocked.code(), Errc::would_block);

  bool space_seen = false;
  lane.set_on_space([&]() { space_seen = true; });
  cluster.loop().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(space_seen);
  EXPECT_TRUE(lane.can_send(600));
}

TEST_F(LaneFixture, SinglePairThroughputNearMemoryBandwidth) {
  // The paper's claim: shm throughput approaches memory bandwidth and
  // dwarfs the 40 Gb/s NIC. Stream 1 MiB messages closed-loop for 20 ms.
  ShmLane lane(cluster.host(0), 8 << 20);
  std::uint64_t received = 0;
  const std::size_t msg = 1 << 20;
  std::function<void()> refill = [&]() {
    while (lane.can_send(msg)) {
      Buffer b(msg);
      ASSERT_TRUE(lane.send(b.view()).is_ok());
    }
  };
  lane.set_receiver([&](Buffer&& b) { received += b.size(); });
  lane.set_on_space(refill);
  refill();
  cluster.loop().run_until(20 * k_millisecond);
  const double gbps = throughput_gbps(received, cluster.loop().now());
  EXPECT_GT(gbps, 90.0);   // far above the 40 Gb/s NIC
  EXPECT_LT(gbps, 250.0);  // below the memory bus ceiling
}

TEST_F(LaneFixture, SenderCopiesSerializeOnOneCore) {
  // Queue several large messages at once: the producer is one thread, so
  // total elapsed >= sum of the per-message copy costs even on 4 cores.
  ShmLane lane(cluster.host(0), 32 << 20);
  int delivered = 0;
  lane.set_receiver([&](Buffer&&) { ++delivered; });
  const std::size_t msg = 1 << 20;
  const auto& m = cluster.cost_model();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(lane.send(Buffer(msg).view()).is_ok());
  }
  cluster.loop().run();
  EXPECT_EQ(delivered, 8);
  const double copy_ns = m.shm_copy_ns_per_byte * static_cast<double>(msg);
  EXPECT_GE(static_cast<double>(cluster.loop().now()), 8 * copy_ns);
}

TEST_F(LaneFixture, InterleavedLanesPreservePerLaneOrder) {
  ShmLane a(cluster.host(0), 1 << 20);
  ShmLane b(cluster.host(0), 1 << 20);
  std::vector<std::uint64_t> got_a, got_b;
  a.set_receiver([&](Buffer&& msg) {
    got_a.push_back(static_cast<std::uint64_t>(msg.size()));
  });
  b.set_receiver([&](Buffer&& msg) {
    got_b.push_back(static_cast<std::uint64_t>(msg.size()));
  });
  for (std::size_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(a.send(Buffer(100 * i).view()).is_ok());
    ASSERT_TRUE(b.send(Buffer(200 * i).view()).is_ok());
  }
  cluster.loop().run();
  EXPECT_EQ(got_a, (std::vector<std::uint64_t>{100, 200, 300, 400, 500, 600}));
  EXPECT_EQ(got_b, (std::vector<std::uint64_t>{200, 400, 600, 800, 1000, 1200}));
}

TEST_F(LaneFixture, ZeroLengthMessageDelivered) {
  ShmLane lane(cluster.host(0), 1 << 12);
  bool got = false;
  lane.set_receiver([&](Buffer&& msg) { got = msg.empty(); });
  ASSERT_TRUE(lane.send(ByteSpan{}).is_ok());
  cluster.loop().run();
  EXPECT_TRUE(got);
}

TEST_F(LaneFixture, LatencySubMicrosecondForSmallMessages) {
  ShmLane lane(cluster.host(0), 1 << 20);
  SimTime sent = 0, got = -1;
  lane.set_receiver([&](Buffer&&) { got = cluster.loop().now(); });
  Buffer tiny(64);
  sent = cluster.loop().now();
  ASSERT_TRUE(lane.send(tiny.view()).is_ok());
  cluster.loop().run();
  const SimDuration oneway = got - sent;
  EXPECT_GT(oneway, 0);
  EXPECT_LT(oneway, 2 * k_microsecond);
}

}  // namespace
}  // namespace freeflow::shm
