// End-to-end calibration guards: the throughput/latency/CPU relationships
// the paper reports must emerge from the simulation. These invariants are
// what the benchmark harness (bench/) prints; if they drift, the repro of
// the paper's figures is broken.
#include <gtest/gtest.h>

#include "rdma/device.h"
#include "sim_env.h"
#include "tcpstack/modes.h"
#include "workloads/drivers.h"

namespace freeflow {
namespace {

using freeflow::testing::Env;
using namespace freeflow::workloads;

constexpr SimDuration k_window = 50 * k_millisecond;
constexpr std::size_t k_msg = 1 << 20;

struct TcpModeRig {
  TcpModeRig(fabric::Cluster& cluster, tcp::PathBuilder& builder)
      : net(cluster.loop(), cluster.cost_model(), builder) {}
  tcp::TcpNetwork net;
};

double tcp_mode_gbps(fabric::Cluster& cluster, tcp::PathBuilder& builder,
                     tcp::Endpoint a, tcp::Endpoint b, double* cpu = nullptr) {
  TcpModeRig rig(cluster, builder);
  auto report = drive_tcp_stream(cluster, rig.net, {{a, b}}, k_msg, k_window);
  if (cpu != nullptr) *cpu = report.host_cpu_cores;
  return report.goodput_gbps;
}

struct IntraHostTcp : ::testing::Test {
  IntraHostTcp() {
    cluster.add_hosts(1);
    tcp::WireHop::install_rx(cluster.host(0));
  }
  fabric::Cluster cluster;
  tcp::Endpoint ep_a{tcp::Ipv4Addr(172, 17, 0, 2), 0};
  tcp::Endpoint ep_b{tcp::Ipv4Addr(172, 17, 0, 3), 9000};
};

TEST_F(IntraHostTcp, BridgeModeLandsNear27Gbps) {
  tcp::BridgeModeBuilder bridge(cluster.cost_model());
  ASSERT_TRUE(bridge.addresses().add(ep_a.ip, cluster.host(0), nullptr).is_ok());
  ASSERT_TRUE(bridge.addresses().add(ep_b.ip, cluster.host(0), nullptr).is_ok());
  double cpu = 0;
  const double gbps = tcp_mode_gbps(cluster, bridge, ep_a, ep_b, &cpu);
  EXPECT_GT(gbps, 23.0);
  EXPECT_LT(gbps, 30.0);
  // "near to 200% of cpu" (§2.3.1).
  EXPECT_GT(cpu, 1.6);
  EXPECT_LT(cpu, 2.4);
}

TEST_F(IntraHostTcp, HostModeLandsNear38Gbps) {
  tcp::HostModeBuilder host(cluster.cost_model());
  ASSERT_TRUE(host.addresses().add(ep_a.ip, cluster.host(0), nullptr).is_ok());
  ASSERT_TRUE(host.addresses().add(ep_b.ip, cluster.host(0), nullptr).is_ok());
  const double gbps = tcp_mode_gbps(cluster, host, ep_a, ep_b);
  EXPECT_GT(gbps, 33.0);
  EXPECT_LT(gbps, 41.0);
}

TEST(Calibration, OverlaySlowerThanBridgeSlowerThanHost) {
  Env env(1);
  auto a = env.overlay_net.add_container(0, nullptr);
  auto b = env.overlay_net.add_container(0, nullptr);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  env.loop().run();

  const double overlay =
      tcp_mode_gbps(env.cluster, env.overlay_net.path_builder(), {*a, 0}, {*b, 9100});

  tcp::BridgeModeBuilder bridge(env.cluster.cost_model());
  ASSERT_TRUE(bridge.addresses().add(tcp::Ipv4Addr(172, 17, 0, 2), env.cluster.host(0), nullptr).is_ok());
  ASSERT_TRUE(bridge.addresses().add(tcp::Ipv4Addr(172, 17, 0, 3), env.cluster.host(0), nullptr).is_ok());
  const double bridged = tcp_mode_gbps(env.cluster, bridge,
                                       {tcp::Ipv4Addr(172, 17, 0, 2), 0},
                                       {tcp::Ipv4Addr(172, 17, 0, 3), 9200});

  tcp::HostModeBuilder host(env.cluster.cost_model());
  ASSERT_TRUE(host.addresses().add(tcp::Ipv4Addr(192, 168, 1, 2), env.cluster.host(0), nullptr).is_ok());
  ASSERT_TRUE(host.addresses().add(tcp::Ipv4Addr(192, 168, 1, 3), env.cluster.host(0), nullptr).is_ok());
  const double hostmode = tcp_mode_gbps(env.cluster, host,
                                        {tcp::Ipv4Addr(192, 168, 1, 2), 0},
                                        {tcp::Ipv4Addr(192, 168, 1, 3), 9300});

  EXPECT_LT(overlay, bridged);
  EXPECT_LT(bridged, hostmode);
}

TEST(Calibration, RdmaHitsLineRateWithLowHostCpu) {
  fabric::Cluster cluster;
  cluster.add_hosts(2);
  rdma::RdmaDevice da(cluster.host(0));
  rdma::RdmaDevice db(cluster.host(1));
  auto report = drive_rdma_stream(cluster, da, db, 1, k_msg, k_window);
  EXPECT_GT(report.goodput_gbps, 36.0);
  EXPECT_LE(report.goodput_gbps, 40.5);
  EXPECT_LT(report.host_cpu_cores, 0.3);   // kernel bypass
  EXPECT_GT(report.nic_proc_util, 0.7);    // the NIC does the work
}

TEST(Calibration, ShmNearMemoryBandwidthAboveEverything) {
  fabric::Cluster cluster;
  cluster.add_hosts(1);
  auto report = drive_shm_stream(cluster, 0, 1, k_msg, k_window);
  EXPECT_GT(report.goodput_gbps, 90.0);  // >> 40 Gb/s NIC
  EXPECT_GT(report.membus_util, 0.3);
}

TEST(Calibration, PairScalingShapes) {
  // Fig 2(a-c) shapes: TCP saturates host CPU (~4 cores), RDMA pins at the
  // NIC, shm plateaus at the memory bus far above both.
  fabric::Cluster tcp_cluster;
  tcp_cluster.add_hosts(1);
  tcp::WireHop::install_rx(tcp_cluster.host(0));
  tcp::BridgeModeBuilder bridge(tcp_cluster.cost_model());
  std::vector<std::pair<tcp::Endpoint, tcp::Endpoint>> eps;
  for (int p = 0; p < 4; ++p) {
    tcp::Ipv4Addr src(172, 17, 0, static_cast<std::uint8_t>(10 + 2 * p));
    tcp::Ipv4Addr dst(172, 17, 0, static_cast<std::uint8_t>(11 + 2 * p));
    ASSERT_TRUE(bridge.addresses().add(src, tcp_cluster.host(0), nullptr).is_ok());
    ASSERT_TRUE(bridge.addresses().add(dst, tcp_cluster.host(0), nullptr).is_ok());
    eps.push_back({{src, 0}, {dst, 9000}});
  }
  tcp::TcpNetwork net(tcp_cluster.loop(), tcp_cluster.cost_model(), bridge);
  auto tcp4 = drive_tcp_stream(tcp_cluster, net, eps, k_msg, k_window);
  // 4 pairs on 4 cores: aggregate well below 4x the single-pair 27 Gb/s.
  EXPECT_LT(tcp4.goodput_gbps, 60.0);
  EXPECT_GT(tcp4.host_cpu_cores, 3.5);  // CPU saturated

  fabric::Cluster rdma_cluster;
  rdma_cluster.add_hosts(2);
  rdma::RdmaDevice da(rdma_cluster.host(0));
  rdma::RdmaDevice db(rdma_cluster.host(1));
  auto rdma4 = drive_rdma_stream(rdma_cluster, da, db, 4, k_msg, k_window);
  EXPECT_LE(rdma4.goodput_gbps, 40.5);  // still the line rate
  EXPECT_GT(rdma4.nic_proc_util, 0.85);

  fabric::Cluster shm_cluster;
  shm_cluster.add_hosts(1);
  auto shm4 = drive_shm_stream(shm_cluster, 0, 4, k_msg, k_window);
  EXPECT_GT(shm4.goodput_gbps, tcp4.goodput_gbps * 2);
  EXPECT_GT(shm4.goodput_gbps, 150.0);
  // Memory bus becomes the binding resource.
  EXPECT_GT(shm4.membus_util, 0.9);
}

TEST(Calibration, LatencyOrderingSmallMessages) {
  // shm < rdma < tcp-host for 64 B round trips.
  fabric::Cluster cluster;
  cluster.add_hosts(2);
  tcp::WireHop::install_rx(cluster.host(0));
  tcp::WireHop::install_rx(cluster.host(1));

  const SimDuration shm = shm_rtt(cluster, 0, 64, 21);

  rdma::RdmaDevice da(cluster.host(0));
  rdma::RdmaDevice db(cluster.host(1));
  const SimDuration rdma_lat = rdma_rtt(cluster, da, db, 64, 21);

  tcp::HostModeBuilder host(cluster.cost_model());
  ASSERT_TRUE(host.addresses().add(tcp::Ipv4Addr(192, 168, 1, 2), cluster.host(0), nullptr).is_ok());
  ASSERT_TRUE(host.addresses().add(tcp::Ipv4Addr(192, 168, 1, 3), cluster.host(1), nullptr).is_ok());
  tcp::TcpNetwork net(cluster.loop(), cluster.cost_model(), host);
  const SimDuration tcp_lat = tcp_rtt(cluster, net, {tcp::Ipv4Addr(192, 168, 1, 2), 0},
                                      {tcp::Ipv4Addr(192, 168, 1, 3), 9500}, 64, 21);

  EXPECT_LT(shm, rdma_lat);
  EXPECT_LT(rdma_lat, tcp_lat);
  EXPECT_LT(shm, 3 * k_microsecond);
  EXPECT_LT(rdma_lat, 15 * k_microsecond);
  EXPECT_GT(tcp_lat, 15 * k_microsecond);
}

TEST(Calibration, LargeMessageTcpLatencyNearMillisecond) {
  // §2.3.1: "1 ms latency" for TCP through the bridge — that is a 1 MiB
  // message's completion time, orders above shm.
  fabric::Cluster cluster;
  cluster.add_hosts(1);
  tcp::BridgeModeBuilder bridge(cluster.cost_model());
  ASSERT_TRUE(bridge.addresses().add(tcp::Ipv4Addr(172, 17, 0, 2), cluster.host(0), nullptr).is_ok());
  ASSERT_TRUE(bridge.addresses().add(tcp::Ipv4Addr(172, 17, 0, 3), cluster.host(0), nullptr).is_ok());
  tcp::TcpNetwork net(cluster.loop(), cluster.cost_model(), bridge);
  const SimDuration tcp_1m = tcp_rtt(cluster, net, {tcp::Ipv4Addr(172, 17, 0, 2), 0},
                                     {tcp::Ipv4Addr(172, 17, 0, 3), 9600}, 1 << 20, 7);
  const SimDuration shm_1m = shm_rtt(cluster, 0, 1 << 20, 7);
  EXPECT_GT(tcp_1m, 400 * k_microsecond);
  EXPECT_LT(tcp_1m, 3 * k_millisecond);
  EXPECT_LT(shm_1m, tcp_1m / 3);
}

TEST(Calibration, FreeFlowMatchesBestRawTransport) {
  // Intra-host FreeFlow ~ shm class; inter-host FreeFlow ~ RDMA class.
  Env env_intra(1);
  auto a1 = env_intra.deploy("a", 1, 0);
  auto b1 = env_intra.deploy("b", 1, 0);
  auto na1 = env_intra.freeflow().attach(a1->id()).value();
  auto nb1 = env_intra.freeflow().attach(b1->id()).value();
  auto intra = drive_freeflow_stream(env_intra.cluster, na1, nb1, b1->ip(), 9000,
                                     k_msg, k_window);
  EXPECT_GT(intra.goodput_gbps, 60.0);  // far above any TCP mode

  Env env_inter(2);
  auto a2 = env_inter.deploy("a", 1, 0);
  auto b2 = env_inter.deploy("b", 1, 1);
  auto na2 = env_inter.freeflow().attach(a2->id()).value();
  auto nb2 = env_inter.freeflow().attach(b2->id()).value();
  auto inter = drive_freeflow_stream(env_inter.cluster, na2, nb2, b2->ip(), 9000,
                                     k_msg, k_window);
  EXPECT_GT(inter.goodput_gbps, 30.0);  // RDMA-class
  EXPECT_LE(inter.goodput_gbps, 40.5);
  EXPECT_LT(inter.host_cpu_cores, 2.0);  // ~0.7 cores/host vs ~2 for kernel TCP at 27 Gb/s
}

}  // namespace
}  // namespace freeflow
