#include <gtest/gtest.h>

#include "core/freeflow.h"
#include "core/mpi.h"
#include "sim_env.h"

namespace freeflow::core {
namespace {

using freeflow::testing::Env;

struct CoreFixture : ::testing::Test {
  /// Standard two-container setup; co-located when same_host.
  struct Pair {
    orch::ContainerPtr a, b;
    ContainerNetPtr net_a, net_b;
  };

  static Pair make_pair(Env& env, bool same_host, orch::TenantId tenant_b = 1) {
    Pair p;
    p.a = env.deploy("a", 1, 0);
    p.b = env.deploy("b", tenant_b, same_host ? 0 : 1);
    auto na = env.freeflow().attach(p.a->id());
    auto nb = env.freeflow().attach(p.b->id());
    EXPECT_TRUE(na.is_ok());
    EXPECT_TRUE(nb.is_ok());
    p.net_a = *na;
    p.net_b = *nb;
    return p;
  }

  static std::pair<FlowSocketPtr, FlowSocketPtr> socket_pair(Env& env, Pair& p,
                                                             std::uint16_t port) {
    FlowSocketPtr client, server;
    EXPECT_TRUE(p.net_b->sock_listen(port, [&](FlowSocketPtr s) { server = s; }).is_ok());
    p.net_a->sock_connect(p.b->ip(), port, [&](Result<FlowSocketPtr> s) {
      ASSERT_TRUE(s.is_ok()) << s.status();
      client = *s;
    });
    EXPECT_TRUE(env.wait([&]() { return client != nullptr && server != nullptr; }));
    return {client, server};
  }
};

// ----------------------------------------------------------- wire/conduit

TEST(WireProtocol, HeaderRoundTrip) {
  WireHeader h;
  h.type = VMsg::verbs_write;
  h.port = 4242;
  h.mr = 7;
  h.id = 0xDEADBEEFCAFEULL;
  h.offset = 123456789;
  h.token = 42;
  Buffer msg = make_message(h, Buffer::from_string("payload").view());
  auto parsed = parse_message(msg.view());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->header.type, VMsg::verbs_write);
  EXPECT_EQ(parsed->header.port, 4242);
  EXPECT_EQ(parsed->header.mr, 7u);
  EXPECT_EQ(parsed->header.id, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(parsed->header.offset, 123456789u);
  EXPECT_EQ(parsed->header.token, 42u);
  EXPECT_EQ(parsed->header.len, 7u);
  EXPECT_EQ(Buffer(parsed->payload.data(), parsed->payload.size()).to_string(),
            "payload");
}

TEST(WireProtocol, ParseRejectsTruncatedAndMismatched) {
  Buffer tiny(10);
  EXPECT_FALSE(parse_message(tiny.view()).is_ok());
  WireHeader h;
  Buffer msg = make_message(h, Buffer(5).view());
  Buffer truncated(msg.data(), msg.size() - 1);  // drop the last payload byte
  EXPECT_FALSE(parse_message(truncated.view()).is_ok());
}

TEST(ConduitUnit, QueuesUntilChannelAttached) {
  Conduit conduit(1, 10, 20, tcp::Ipv4Addr(10, 0, 0, 1), 80, true);
  EXPECT_FALSE(conduit.live());
  WireHeader h;
  conduit.send(h, Buffer::from_string("queued").view());
  EXPECT_EQ(conduit.messages_sent(), 0u);  // nothing on the wire yet
  EXPECT_FALSE(conduit.writable());
}

TEST(ConduitUnit, CloseFiresOnceAndDropsTraffic) {
  Conduit conduit(1, 10, 20, tcp::Ipv4Addr(10, 0, 0, 1), 80, true);
  int closed = 0;
  conduit.set_on_closed([&](CloseReason) { ++closed; });
  conduit.close();
  conduit.close();  // idempotent
  EXPECT_EQ(closed, 1);
  EXPECT_TRUE(conduit.closed());
  WireHeader h;
  conduit.send(h);  // silently dropped, no crash
  EXPECT_EQ(conduit.messages_sent(), 0u);
}

// ------------------------------------------------- delayed-ack regression

/// Minimal loopback channel pair for conduit-level ARQ tests: delivery one
/// microsecond later on the sim clock, with a kill switch per direction so
/// tests can model a lane that swallows traffic (e.g. in-flight acks dying
/// with a failing transport).
class TestPipe final : public agent::Channel {
 public:
  TestPipe(sim::EventLoop& loop, orch::ContainerId peer_id)
      : loop_(loop), peer_id_(peer_id) {}

  static std::pair<std::shared_ptr<TestPipe>, std::shared_ptr<TestPipe>> connect(
      sim::EventLoop& loop, orch::ContainerId a_id, orch::ContainerId b_id) {
    auto a = std::make_shared<TestPipe>(loop, b_id);
    auto b = std::make_shared<TestPipe>(loop, a_id);
    a->peer_pipe_ = b;
    b->peer_pipe_ = a;
    return {a, b};
  }

  Status send(Buffer message) override {
    if (closed_) return failed_precondition("pipe closed");
    if (!deliver) return ok_status();  // swallowed by the dying lane
    auto peer = peer_pipe_.lock();
    if (peer == nullptr) return ok_status();
    loop_.schedule(1000, [peer, msg = Buffer(message.data(), message.size())]() mutable {
      if (!peer->closed_ && peer->on_message_) peer->on_message_(std::move(msg));
    });
    return ok_status();
  }
  [[nodiscard]] bool writable() const noexcept override { return !closed_; }
  void set_on_message(DeliverFn cb) override { on_message_ = std::move(cb); }
  void set_on_space(std::function<void()> /*cb*/) override {}
  [[nodiscard]] orch::Transport transport() const noexcept override {
    return orch::Transport::rdma;  // lossy class: the conduit retains/acks
  }
  [[nodiscard]] orch::ContainerId peer() const noexcept override { return peer_id_; }
  void close() noexcept override { closed_ = true; }
  [[nodiscard]] bool closed() const noexcept override { return closed_; }

  bool deliver = true;

 private:
  sim::EventLoop& loop_;
  orch::ContainerId peer_id_;
  std::weak_ptr<TestPipe> peer_pipe_;
  DeliverFn on_message_;
  bool closed_ = false;
};

/// A short burst leaves the receiver mid-ack-cadence (since_ack_ < 16).
/// Without the delayed-ack timer the tail is never acked and the sender's
/// retained window never drains — this is the idle half of the ack-stall
/// bugfix, and it fails on the pre-fix code.
TEST(ConduitUnit, DelayedAckDrainsIdleTail) {
  sim::EventLoop loop;
  auto a = std::make_shared<Conduit>(1, 10, 20, tcp::Ipv4Addr(10, 0, 0, 1), 80, true);
  auto b = std::make_shared<Conduit>(1, 20, 10, tcp::Ipv4Addr(10, 0, 0, 2), 80, false);
  a->set_loop(&loop);
  b->set_loop(&loop);
  auto [pa, pb] = TestPipe::connect(loop, 10, 20);
  a->attach_channel(pa);
  b->attach_channel(pb);

  for (int i = 0; i < 5; ++i) {
    WireHeader h;
    h.type = VMsg::sock_data;
    a->send(h, Buffer::from_string("x").view());
  }
  loop.run_for(10'000);  // delivery only; before the delayed-ack bound
  EXPECT_EQ(b->messages_received(), 5u);
  EXPECT_EQ(a->retained_count(), 5u);  // mid-cadence: no piggyback ack yet

  loop.run();  // idle apart from the pending delayed-ack timer
  EXPECT_EQ(a->retained_count(), 0u);
  EXPECT_LE(loop.now(), 10'000 + Conduit::k_delayed_ack_ns + 2'000);
}

/// The blocking half: the receiver's acks die with a failing lane while the
/// sender fills its whole retained window. After failover the retransmitted
/// window is all duplicates — rx_next_ never advances, so the piggyback
/// cadence can never fire again. Pre-fix the sender stays blocked forever;
/// the duplicate-triggered ack resync (delayed-ack timer) unblocks it.
TEST(ConduitUnit, AckStallAfterFailoverLostAcks) {
  sim::EventLoop loop;
  auto a = std::make_shared<Conduit>(1, 10, 20, tcp::Ipv4Addr(10, 0, 0, 1), 80, true);
  auto b = std::make_shared<Conduit>(1, 20, 10, tcp::Ipv4Addr(10, 0, 0, 2), 80, false);
  a->set_loop(&loop);
  b->set_loop(&loop);
  auto [pa, pb] = TestPipe::connect(loop, 10, 20);
  a->attach_channel(pa);
  b->attach_channel(pb);
  pb->deliver = false;  // b -> a direction swallows traffic: acks are lost

  const std::uint64_t target = Conduit::k_max_retained + 32;
  std::uint64_t app_sent = 0;
  auto pump = [&]() {
    while (app_sent < target && a->writable()) {
      WireHeader h;
      h.type = VMsg::sock_data;
      a->send(h, Buffer::from_string("y").view());
      ++app_sent;
    }
  };
  a->set_on_space(pump);
  pump();
  loop.run();

  // Sender is wedged: window full, and the receiver — which got everything —
  // believes it already acked.
  EXPECT_EQ(app_sent, Conduit::k_max_retained);
  EXPECT_EQ(a->retained_count(), Conduit::k_max_retained);
  EXPECT_FALSE(a->writable());
  EXPECT_EQ(b->messages_received(), Conduit::k_max_retained);

  // Failover: both sides splice onto a healthy channel; the sender replays
  // its retained window, which the receiver sees purely as duplicates.
  a->mark_stale();
  b->mark_stale();
  auto [pa2, pb2] = TestPipe::connect(loop, 10, 20);
  a->attach_channel(pa2);
  b->attach_channel(pb2);
  loop.run();

  EXPECT_EQ(app_sent, target);
  EXPECT_EQ(a->retained_count(), 0u);
  EXPECT_TRUE(a->writable());
  EXPECT_EQ(a->retransmits(), Conduit::k_max_retained);
  EXPECT_EQ(b->messages_received(), target);
}

TEST_F(CoreFixture, AttachRequiresRunningContainer) {
  Env env(1);
  EXPECT_FALSE(env.freeflow().attach(99).is_ok());
  auto c = env.deploy("a", 1, 0);
  auto net = env.freeflow().attach(c->id());
  ASSERT_TRUE(net.is_ok());
  EXPECT_EQ((*net)->id(), c->id());
  // Attaching twice returns the same instance.
  EXPECT_EQ(env.freeflow().attach(c->id()).value(), *net);
}

TEST_F(CoreFixture, IntraHostSocketsUseShm) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/true);
  auto [client, server] = socket_pair(env, p, 5000);
  EXPECT_EQ(client->transport(), orch::Transport::shm);
  EXPECT_EQ(server->transport(), orch::Transport::shm);
}

TEST_F(CoreFixture, InterHostSocketsUseRdma) {
  Env env(2);
  auto p = make_pair(env, /*same_host=*/false);
  auto [client, server] = socket_pair(env, p, 5000);
  EXPECT_EQ(client->transport(), orch::Transport::rdma);
  EXPECT_EQ(server->transport(), orch::Transport::rdma);
}

TEST_F(CoreFixture, InterHostFallsBackToDpdkThenTcp) {
  {
    fabric::NicCapabilities caps;
    caps.rdma = false;
    caps.dpdk = true;
    Env env(2, sim::CostModel{}, caps);
    auto p = make_pair(env, false);
    auto [client, server] = socket_pair(env, p, 5000);
    EXPECT_EQ(client->transport(), orch::Transport::dpdk);
  }
  {
    fabric::NicCapabilities caps;
    caps.rdma = false;
    caps.dpdk = false;
    Env env(2, sim::CostModel{}, caps);
    auto p = make_pair(env, false);
    auto [client, server] = socket_pair(env, p, 5000);
    EXPECT_EQ(client->transport(), orch::Transport::tcp_host);
  }
}

TEST_F(CoreFixture, UntrustedPairIsRefused) {
  Env env(1);
  auto p = make_pair(env, true, /*tenant_b=*/2);
  Status result;
  bool done = false;
  ASSERT_TRUE(p.net_b->sock_listen(5000, [](FlowSocketPtr) {}).is_ok());
  p.net_a->sock_connect(p.b->ip(), 5000, [&](Result<FlowSocketPtr> s) {
    result = s.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::permission_denied);
}

TEST_F(CoreFixture, ConnectToMissingPortRefused) {
  Env env(1);
  auto p = make_pair(env, true);
  Status result;
  bool done = false;
  p.net_a->sock_connect(p.b->ip(), 1234, [&](Result<FlowSocketPtr> s) {
    result = s.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::connection_refused);
}

TEST_F(CoreFixture, SocketStreamIntegrityBothDirections) {
  Env env(2);
  auto p = make_pair(env, false);
  auto [client, server] = socket_pair(env, p, 5000);
  Buffer at_server, at_client;
  server->set_on_data([&](Buffer&& b) { at_server.append(b.view()); });
  client->set_on_data([&](Buffer&& b) { at_client.append(b.view()); });

  Buffer up(500000), down(250000);
  fill_pattern(up.mutable_view(), 1);
  fill_pattern(down.mutable_view(), 2);
  ASSERT_TRUE(client->send(std::move(up)).is_ok());
  ASSERT_TRUE(server->send(std::move(down)).is_ok());
  EXPECT_TRUE(env.wait(
      [&]() { return at_server.size() == 500000 && at_client.size() == 250000; },
      30 * k_second));
  EXPECT_TRUE(check_pattern(at_server.view(), 1));
  EXPECT_TRUE(check_pattern(at_client.view(), 2));
}

TEST_F(CoreFixture, SocketCloseNotifiesPeer) {
  Env env(1);
  auto p = make_pair(env, true);
  auto [client, server] = socket_pair(env, p, 5000);
  bool closed = false;
  CloseReason reason{};
  server->set_on_close([&](CloseReason r) {
    reason = r;
    closed = true;
  });
  client->close();
  EXPECT_TRUE(env.wait([&]() { return closed; }));
  EXPECT_EQ(reason, CloseReason::peer_bye);
  EXPECT_FALSE(server->is_open());
  EXPECT_EQ(client->send(Buffer(1)).code(), Errc::failed_precondition);
}

// ------------------------------------------------------------- verbs vNIC

struct VerbsFixture : CoreFixture {
  static std::pair<VirtualQpPtr, VirtualQpPtr> qp_pair(Env& env, Pair& p,
                                                       std::uint16_t port) {
    VirtualQpPtr client, server;
    EXPECT_TRUE(p.net_b->listen_qp(port, [&](VirtualQpPtr q) { server = q; }).is_ok());
    p.net_a->connect_qp(p.b->ip(), port, p.net_a->create_cq(), p.net_a->create_cq(),
                        [&](Result<VirtualQpPtr> q) {
                          ASSERT_TRUE(q.is_ok()) << q.status();
                          client = *q;
                        });
    EXPECT_TRUE(env.wait([&]() { return client != nullptr && server != nullptr; }));
    return {client, server};
  }

  static bool poll_one(const rdma::CqPtr& cq, rdma::WorkCompletion& wc) {
    return cq->poll({&wc, 1}) == 1;
  }
};

class VerbsPlacement : public VerbsFixture,
                       public ::testing::WithParamInterface<bool> {};

TEST_P(VerbsPlacement, SendRecvWorksOnAnyPlacement) {
  const bool same_host = GetParam();
  Env env(2);
  auto p = make_pair(env, same_host);
  auto [qa, qb] = qp_pair(env, p, 18515);
  ASSERT_NE(qa, nullptr);
  EXPECT_EQ(qa->transport(),
            same_host ? orch::Transport::shm : orch::Transport::rdma);

  auto src = p.net_a->reg_mr(128 * 1024);
  auto dst = p.net_b->reg_mr(128 * 1024);
  fill_pattern(src->data().mutable_view(), 42);

  rdma::RecvWr rwr;
  rwr.wr_id = 1;
  rwr.local = {dst, 0, dst->length()};
  ASSERT_TRUE(qb->post_recv(rwr).is_ok());

  rdma::SendWr swr;
  swr.wr_id = 2;
  swr.opcode = rdma::Opcode::send;
  swr.local = {src, 0, src->length()};
  ASSERT_TRUE(qa->post_send(swr).is_ok());

  rdma::WorkCompletion wc;
  EXPECT_TRUE(env.wait([&]() { return poll_one(qb->recv_cq(), wc); }, 30 * k_second));
  EXPECT_EQ(wc.wr_id, 1u);
  EXPECT_EQ(wc.byte_len, 128u * 1024);
  EXPECT_TRUE(check_pattern(dst->data().view(), 42));
}

INSTANTIATE_TEST_SUITE_P(Placements, VerbsPlacement, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "intra_host" : "inter_host";
                         });

TEST_F(VerbsFixture, WriteAndReadAgainstRemoteMr) {
  Env env(2);
  auto p = make_pair(env, false);
  auto [qa, qb] = qp_pair(env, p, 18515);

  auto local = p.net_a->reg_mr(64 * 1024);
  auto remote = p.net_b->reg_mr(64 * 1024);
  fill_pattern(local->data().mutable_view(), 9);

  // WRITE into the server's memory.
  rdma::SendWr wr;
  wr.wr_id = 1;
  wr.opcode = rdma::Opcode::write;
  wr.local = {local, 0, local->length()};
  wr.remote = {remote->rkey(), 0};
  ASSERT_TRUE(qa->post_send(wr).is_ok());
  rdma::WorkCompletion wc;
  EXPECT_TRUE(env.wait([&]() { return poll_one(qa->send_cq(), wc); }, 30 * k_second));
  EXPECT_TRUE(env.wait([&]() { return check_pattern(remote->data().view(), 9); },
                       30 * k_second));

  // Mutate at the server, READ it back.
  fill_pattern(remote->data().mutable_view(), 10);
  rdma::SendWr rd;
  rd.wr_id = 2;
  rd.opcode = rdma::Opcode::read;
  rd.local = {local, 0, local->length()};
  rd.remote = {remote->rkey(), 0};
  ASSERT_TRUE(qa->post_send(rd).is_ok());
  rdma::WorkCompletion wc2;
  EXPECT_TRUE(env.wait([&]() {
    return poll_one(qa->send_cq(), wc2) && wc2.opcode == rdma::Opcode::read;
  }, 30 * k_second));
  EXPECT_EQ(wc2.status, rdma::WcStatus::success);
  EXPECT_TRUE(check_pattern(local->data().view(), 10));
}

TEST_F(VerbsFixture, ReadBadMrReturnsError) {
  Env env(1);
  auto p = make_pair(env, true);
  auto [qa, qb] = qp_pair(env, p, 18515);
  auto local = p.net_a->reg_mr(1024);
  rdma::SendWr rd;
  rd.opcode = rdma::Opcode::read;
  rd.local = {local, 0, 1024};
  rd.remote = {0xBAD, 0};
  ASSERT_TRUE(qa->post_send(rd).is_ok());
  rdma::WorkCompletion wc;
  EXPECT_TRUE(env.wait([&]() {
    return poll_one(qa->send_cq(), wc) && wc.opcode == rdma::Opcode::read;
  }));
  EXPECT_EQ(wc.status, rdma::WcStatus::remote_access_error);
}

// -------------------------------------------------------------- selector

TEST_F(CoreFixture, SelectorCachesDecisions) {
  Env env(2);
  auto p = make_pair(env, false);
  auto& selector = env.freeflow().selector();
  bool done1 = false, done2 = false;
  selector.decide(p.a->id(), p.b->id(), [&](Result<orch::TransportDecision> d) {
    EXPECT_TRUE(d.is_ok());
    done1 = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done1; }));
  EXPECT_EQ(selector.cache_misses(), 1u);
  selector.decide(p.a->id(), p.b->id(), [&](Result<orch::TransportDecision> d) {
    EXPECT_TRUE(d.is_ok());
    done2 = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done2; }));
  EXPECT_EQ(selector.cache_hits(), 1u);
}

TEST_F(CoreFixture, SelectorInvalidatesOnMigration) {
  Env env(2);
  auto p = make_pair(env, false);
  auto& selector = env.freeflow().selector();
  orch::Transport first{}, second{};
  bool d1 = false, d2 = false;
  selector.decide(p.a->id(), p.b->id(), [&](Result<orch::TransportDecision> d) {
    first = d->transport;
    d1 = true;
  });
  EXPECT_TRUE(env.wait([&]() { return d1; }));
  EXPECT_EQ(first, orch::Transport::rdma);

  ASSERT_TRUE(env.cluster_orch->migrate(p.b->id(), 0).is_ok());
  env.loop().run();
  selector.decide(p.a->id(), p.b->id(), [&](Result<orch::TransportDecision> d) {
    second = d->transport;
    d2 = true;
  });
  EXPECT_TRUE(env.wait([&]() { return d2; }));
  EXPECT_EQ(second, orch::Transport::shm);  // stale rdma answer was evicted
}

// -------------------------------------------------------------- migration

TEST_F(CoreFixture, SocketSurvivesPeerMigration) {
  Env env(2);
  auto p = make_pair(env, false);  // a on host0, b on host1: rdma
  auto [client, server] = socket_pair(env, p, 5000);
  EXPECT_EQ(client->transport(), orch::Transport::rdma);

  Buffer at_server;
  server->set_on_data([&](Buffer&& b) { at_server.append(b.view()); });

  Buffer first(100000);
  fill_pattern(first.mutable_view(), 1);
  ASSERT_TRUE(client->send(std::move(first)).is_ok());
  ASSERT_TRUE(env.wait([&]() { return at_server.size() == 100000; }, 30 * k_second));

  // Quiesce, migrate b onto a's host, then keep talking: the conduit must
  // re-bind onto a *shared-memory* channel transparently.
  ASSERT_TRUE(env.cluster_orch->migrate(p.b->id(), 0).is_ok());
  env.loop().run();

  Buffer second(50000);
  fill_pattern(second.mutable_view(), 2);
  ASSERT_TRUE(client->send(std::move(second)).is_ok());
  ASSERT_TRUE(env.wait([&]() { return at_server.size() == 150000; }, 30 * k_second));
  EXPECT_TRUE(check_pattern(ByteSpan{at_server.data() + 100000, 50000}, 2));
  EXPECT_EQ(client->transport(), orch::Transport::shm);
  EXPECT_GE(client->conduit()->rebinds(), 1u);
}

TEST_F(CoreFixture, SocketSurvivesSelfMigration) {
  Env env(2);
  auto p = make_pair(env, true);  // both on host0: shm
  auto [client, server] = socket_pair(env, p, 5000);
  EXPECT_EQ(client->transport(), orch::Transport::shm);

  Buffer at_server;
  server->set_on_data([&](Buffer&& b) { at_server.append(b.view()); });

  // Move the *initiator* (a) to the other host.
  ASSERT_TRUE(env.cluster_orch->migrate(p.a->id(), 1).is_ok());
  env.loop().run();

  Buffer data(80000);
  fill_pattern(data.mutable_view(), 4);
  ASSERT_TRUE(client->send(std::move(data)).is_ok());
  ASSERT_TRUE(env.wait([&]() { return at_server.size() == 80000; }, 30 * k_second));
  EXPECT_TRUE(check_pattern(at_server.view(), 4));
  EXPECT_EQ(client->transport(), orch::Transport::rdma);
}

// ----------------------------------------------------------- more verbs

TEST_F(VerbsFixture, UnsignaledSendsProduceNoCompletion) {
  Env env(1);
  auto p = make_pair(env, true);
  auto [qa, qb] = qp_pair(env, p, 18515);
  auto src = p.net_a->reg_mr(1024);
  auto dst = p.net_b->reg_mr(1024);
  rdma::RecvWr rwr;
  rwr.local = {dst, 0, 1024};
  ASSERT_TRUE(qb->post_recv(rwr).is_ok());
  rdma::SendWr swr;
  swr.opcode = rdma::Opcode::send;
  swr.signaled = false;
  swr.local = {src, 0, 1024};
  ASSERT_TRUE(qa->post_send(swr).is_ok());
  rdma::WorkCompletion wc;
  EXPECT_TRUE(env.wait([&]() { return poll_one(qb->recv_cq(), wc); }));
  EXPECT_FALSE(poll_one(qa->send_cq(), wc));  // no send CQE when unsignaled
}

TEST_F(VerbsFixture, SendBeforeRecvBacklogsUntilPosted) {
  Env env(1);
  auto p = make_pair(env, true);
  auto [qa, qb] = qp_pair(env, p, 18515);
  auto src = p.net_a->reg_mr(4096);
  auto dst = p.net_b->reg_mr(4096);
  fill_pattern(src->data().mutable_view(), 12);

  rdma::SendWr swr;
  swr.local = {src, 0, 4096};
  ASSERT_TRUE(qa->post_send(swr).is_ok());
  env.loop().run();  // message arrives; no recv posted

  rdma::WorkCompletion wc;
  EXPECT_FALSE(poll_one(qb->recv_cq(), wc));
  rdma::RecvWr rwr;
  rwr.wr_id = 5;
  rwr.local = {dst, 0, 4096};
  ASSERT_TRUE(qb->post_recv(rwr).is_ok());
  EXPECT_TRUE(env.wait([&]() { return poll_one(qb->recv_cq(), wc); }));
  EXPECT_EQ(wc.wr_id, 5u);
  EXPECT_TRUE(check_pattern(dst->data().view(), 12));
}

TEST_F(VerbsFixture, MultipleQpsBetweenSamePairAreIndependent) {
  Env env(2);
  auto p = make_pair(env, false);
  auto [q1a, q1b] = qp_pair(env, p, 18515);
  auto [q2a, q2b] = qp_pair(env, p, 18516);

  auto src = p.net_a->reg_mr(2048);
  auto dst = p.net_b->reg_mr(4096);
  fill_pattern(src->data().mutable_view(), 1);

  rdma::RecvWr r1;
  r1.wr_id = 1;
  r1.local = {dst, 0, 2048};
  ASSERT_TRUE(q1b->post_recv(r1).is_ok());
  rdma::RecvWr r2;
  r2.wr_id = 2;
  r2.local = {dst, 2048, 2048};
  ASSERT_TRUE(q2b->post_recv(r2).is_ok());

  rdma::SendWr s1;
  s1.local = {src, 0, 2048};
  ASSERT_TRUE(q1a->post_send(s1).is_ok());
  ASSERT_TRUE(q2a->post_send(s1).is_ok());

  rdma::WorkCompletion wc1, wc2;
  EXPECT_TRUE(env.wait([&]() { return poll_one(q1b->recv_cq(), wc1); }, 30 * k_second));
  EXPECT_TRUE(env.wait([&]() { return poll_one(q2b->recv_cq(), wc2); }, 30 * k_second));
  EXPECT_EQ(wc1.wr_id, 1u);
  EXPECT_EQ(wc2.wr_id, 2u);
}

TEST_F(VerbsFixture, QpListenerRejectsUnknownPort) {
  Env env(1);
  auto p = make_pair(env, true);
  Status result;
  bool done = false;
  p.net_a->connect_qp(p.b->ip(), 4242, p.net_a->create_cq(), p.net_a->create_cq(),
                      [&](Result<VirtualQpPtr> q) {
                        result = q.status();
                        done = true;
                      });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  EXPECT_EQ(result.code(), Errc::connection_refused);
}

TEST_F(VerbsFixture, PostValidatesLocalBounds) {
  Env env(1);
  auto p = make_pair(env, true);
  auto [qa, qb] = qp_pair(env, p, 18515);
  auto mr = p.net_a->reg_mr(100);
  rdma::SendWr wr;
  wr.local = {mr, 50, 100};  // overruns
  EXPECT_EQ(qa->post_send(wr).code(), Errc::invalid_argument);
  rdma::RecvWr rwr;
  rwr.local = {nullptr, 0, 10};
  EXPECT_EQ(qa->post_recv(rwr).code(), Errc::invalid_argument);
}

// ------------------------------------------------------------ more sockets

TEST_F(CoreFixture, DoubleListenOnPortFails) {
  Env env(1);
  auto p = make_pair(env, true);
  ASSERT_TRUE(p.net_b->sock_listen(5000, [](FlowSocketPtr) {}).is_ok());
  EXPECT_EQ(p.net_b->sock_listen(5000, [](FlowSocketPtr) {}).code(),
            Errc::already_exists);
  // But the SAME port on a different container is fine (no host-mode
  // port-space sharing — the paper's portability requirement).
  ASSERT_TRUE(p.net_a->sock_listen(5000, [](FlowSocketPtr) {}).is_ok());
}

TEST_F(CoreFixture, ManySocketsBetweenOnePair) {
  Env env(2);
  auto p = make_pair(env, false);
  std::vector<FlowSocketPtr> servers, clients;
  ASSERT_TRUE(p.net_b->sock_listen(5000, [&](FlowSocketPtr s) {
    servers.push_back(s);
  }).is_ok());
  for (int i = 0; i < 5; ++i) {
    p.net_a->sock_connect(p.b->ip(), 5000, [&](Result<FlowSocketPtr> s) {
      ASSERT_TRUE(s.is_ok());
      clients.push_back(*s);
    });
  }
  EXPECT_TRUE(env.wait([&]() { return clients.size() == 5 && servers.size() == 5; },
                       30 * k_second));
  // Each socket is its own stream: message on socket i arrives only there.
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5; ++i) {
    servers[static_cast<std::size_t>(i)]->set_on_data(
        [&hits, i](Buffer&&) { ++hits[static_cast<std::size_t>(i)]; });
  }
  ASSERT_TRUE(clients[2]->send(Buffer(64)).is_ok());
  EXPECT_TRUE(env.wait([&]() { return hits[2] == 1; }));
  EXPECT_EQ(hits[0] + hits[1] + hits[3] + hits[4], 0);
}

TEST_F(CoreFixture, SelectorTtlExpiryRefreshes) {
  sim::CostModel m;
  m.location_cache_ttl_ns = 1 * k_millisecond;
  Env env(2, m);
  auto p = make_pair(env, false);
  auto& selector = env.freeflow().selector();
  bool d = false;
  selector.decide(p.a->id(), p.b->id(), [&](Result<orch::TransportDecision>) { d = true; });
  EXPECT_TRUE(env.wait([&]() { return d; }));
  EXPECT_EQ(selector.cache_misses(), 1u);
  env.loop().run_for(2 * k_millisecond);  // let the entry expire
  d = false;
  selector.decide(p.a->id(), p.b->id(), [&](Result<orch::TransportDecision>) { d = true; });
  EXPECT_TRUE(env.wait([&]() { return d; }));
  EXPECT_EQ(selector.cache_misses(), 2u);  // refreshed, not served stale
}

TEST_F(CoreFixture, VmDeploymentCasesEndToEnd) {
  // Paper Fig. 2 cases (c)/(d): hosts are VMs with a fabric-controller
  // mapping to physical machines. Same-VM containers get shm; VMs on
  // different physical machines get RDMA — end to end, not just decide().
  Env env(2);
  env.cluster.host(0).set_physical_machine(100);
  env.cluster.host(1).set_physical_machine(101);

  // Case (c): both containers in VM host0.
  {
    auto p = make_pair(env, /*same_host=*/true);
    auto [client, server] = socket_pair(env, p, 5001);
    EXPECT_EQ(client->transport(), orch::Transport::shm);
    Buffer got;
    server->set_on_data([&](Buffer&& b) { got = std::move(b); });
    ASSERT_TRUE(client->send(Buffer::from_string("case-c")).is_ok());
    EXPECT_TRUE(env.wait([&]() { return !got.empty(); }));
    EXPECT_EQ(got.to_string(), "case-c");
  }
  // Case (d): VMs on different physical machines.
  {
    auto c = env.deploy("c", 1, 0);
    auto d = env.deploy("d", 1, 1);
    auto nc = env.freeflow().attach(c->id()).value();
    auto nd = env.freeflow().attach(d->id()).value();
    FlowSocketPtr client, server;
    ASSERT_TRUE(nd->sock_listen(5002, [&](FlowSocketPtr s) { server = s; }).is_ok());
    nc->sock_connect(d->ip(), 5002, [&](Result<FlowSocketPtr> s) {
      ASSERT_TRUE(s.is_ok());
      client = *s;
    });
    EXPECT_TRUE(env.wait([&]() { return client && server; }));
    EXPECT_EQ(client->transport(), orch::Transport::rdma);
  }
}

// ------------------------------------------------------------- lifecycle

TEST_F(CoreFixture, PeerStopClosesSockets) {
  Env env(2);
  auto p = make_pair(env, false);
  auto [client, server] = socket_pair(env, p, 5000);
  bool closed = false;
  CloseReason reason{};
  client->set_on_close([&](CloseReason r) {
    reason = r;
    closed = true;
  });

  ASSERT_TRUE(env.cluster_orch->stop(p.b->id()).is_ok());
  EXPECT_TRUE(env.wait([&]() { return closed; }));
  EXPECT_EQ(reason, CloseReason::peer_bye);
  EXPECT_FALSE(client->is_open());
  EXPECT_EQ(client->send(Buffer(10)).code(), Errc::failed_precondition);
  EXPECT_EQ(p.net_a->conduit_count(), 0u);
}

TEST_F(CoreFixture, SelfStopDetachesNet) {
  Env env(2);
  auto p = make_pair(env, false);
  auto [client, server] = socket_pair(env, p, 5000);
  ASSERT_TRUE(env.cluster_orch->stop(p.a->id()).is_ok());
  EXPECT_EQ(env.freeflow().net(p.a->id()), nullptr);
  // Re-attaching a stopped container fails.
  EXPECT_EQ(env.freeflow().attach(p.a->id()).status().code(), Errc::failed_precondition);
}

TEST_F(CoreFixture, PeerStopErrsPendingVerbs) {
  Env env(2);
  auto p = make_pair(env, false);
  VirtualQpPtr qa, qb;
  ASSERT_TRUE(p.net_b->listen_qp(18515, [&](VirtualQpPtr q) { qb = q; }).is_ok());
  p.net_a->connect_qp(p.b->ip(), 18515, p.net_a->create_cq(), p.net_a->create_cq(),
                      [&](Result<VirtualQpPtr> q) {
                        ASSERT_TRUE(q.is_ok());
                        qa = *q;
                      });
  ASSERT_TRUE(env.wait([&]() { return qa && qb; }));

  // Post a recv that will never be matched, then stop the peer.
  auto mr = p.net_a->reg_mr(1024);
  rdma::RecvWr rwr;
  rwr.wr_id = 77;
  rwr.local = {mr, 0, 1024};
  ASSERT_TRUE(qa->post_recv(rwr).is_ok());
  ASSERT_TRUE(env.cluster_orch->stop(p.b->id()).is_ok());

  rdma::WorkCompletion wc;
  EXPECT_TRUE(env.wait([&]() { return qa->recv_cq()->poll({&wc, 1}) == 1; }));
  EXPECT_EQ(wc.wr_id, 77u);
  EXPECT_EQ(wc.status, rdma::WcStatus::qp_error);
}

TEST_F(CoreFixture, ConnectionIntrospection) {
  Env env(2);
  auto p = make_pair(env, false);
  auto [client, server] = socket_pair(env, p, 5000);
  ASSERT_TRUE(client->send(Buffer(1000)).is_ok());
  env.loop().run_for(10 * k_millisecond);

  auto conns = p.net_a->connections();
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].peer, p.b->id());
  EXPECT_EQ(conns[0].peer_ip, p.b->ip());
  EXPECT_EQ(conns[0].transport, orch::Transport::rdma);
  EXPECT_TRUE(conns[0].initiator);
  EXPECT_GE(conns[0].messages_sent, 1u);

  auto peer_conns = p.net_b->connections();
  ASSERT_EQ(peer_conns.size(), 1u);
  EXPECT_FALSE(peer_conns[0].initiator);
  EXPECT_GE(peer_conns[0].messages_received, 1u);
}

TEST_F(CoreFixture, ShmChannelsBackedByPermissionedRegions) {
  Env env(1);
  auto p = make_pair(env, true);
  auto& registry = env.freeflow().agents().agent_on(0).shm_registry();
  const std::size_t before = registry.region_count();
  auto [client, server] = socket_pair(env, p, 5000);
  EXPECT_EQ(registry.region_count(), before + 1);
  EXPECT_GT(registry.bytes_in_use(), 0u);
}

// ----------------------------------------------------- three-tier app

TEST_F(CoreFixture, ThreeTierApplicationEndToEnd) {
  // A realistic composition across 3 hosts: client -> load balancer ->
  // web worker -> cache, every hop over whatever transport the
  // orchestrator picks, with the request id threaded end to end.
  Env env(3);
  auto lb_c = env.deploy("lb", 1, 0);
  auto web_c = env.deploy("web", 1, 1);
  auto cache_c = env.deploy("cache", 1, 1);  // co-located with web -> shm
  auto client_c = env.deploy("client", 1, 2);

  auto lb = env.freeflow().attach(lb_c->id()).value();
  auto web = env.freeflow().attach(web_c->id()).value();
  auto cache = env.freeflow().attach(cache_c->id()).value();
  auto client = env.freeflow().attach(client_c->id()).value();

  // Cache tier: echoes "value:<key>".
  std::vector<FlowSocketPtr> held;
  ASSERT_TRUE(cache->sock_listen(11211, [&](FlowSocketPtr s) {
    held.push_back(s);
    s->set_on_data([s](Buffer&& key) {
      FF_CHECK(s->send(Buffer::from_string("value:" + key.to_string())).is_ok());
    });
  }).is_ok());

  // Web tier: forwards each request to the cache, returns its answer.
  FlowSocketPtr web_to_cache;
  web->sock_connect(cache_c->ip(), 11211, [&](Result<FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok());
    web_to_cache = *s;
  });
  ASSERT_TRUE(env.wait([&]() { return web_to_cache != nullptr; }));
  ASSERT_TRUE(web->sock_listen(8080, [&](FlowSocketPtr from_lb) {
    held.push_back(from_lb);
    from_lb->set_on_data([&, from_lb](Buffer&& req) {
      web_to_cache->set_on_data([from_lb](Buffer&& resp) {
        FF_CHECK(from_lb->send(std::move(resp)).is_ok());
      });
      FF_CHECK(web_to_cache->send(std::move(req)).is_ok());
    });
  }).is_ok());

  // LB tier: forwards to the (single) web worker.
  FlowSocketPtr lb_to_web;
  lb->sock_connect(web_c->ip(), 8080, [&](Result<FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok());
    lb_to_web = *s;
  });
  ASSERT_TRUE(env.wait([&]() { return lb_to_web != nullptr; }));
  ASSERT_TRUE(lb->sock_listen(80, [&](FlowSocketPtr from_client) {
    held.push_back(from_client);
    from_client->set_on_data([&, from_client](Buffer&& req) {
      lb_to_web->set_on_data([from_client](Buffer&& resp) {
        FF_CHECK(from_client->send(std::move(resp)).is_ok());
      });
      FF_CHECK(lb_to_web->send(std::move(req)).is_ok());
    });
  }).is_ok());

  // Client issues requests through the whole chain.
  FlowSocketPtr sock;
  client->sock_connect(lb_c->ip(), 80, [&](Result<FlowSocketPtr> s) {
    ASSERT_TRUE(s.is_ok());
    sock = *s;
  });
  ASSERT_TRUE(env.wait([&]() { return sock != nullptr; }));

  std::vector<std::string> answers;
  sock->set_on_data([&](Buffer&& resp) { answers.push_back(resp.to_string()); });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sock->send(Buffer::from_string("k" + std::to_string(i))).is_ok());
    ASSERT_TRUE(env.wait([&]() { return answers.size() == static_cast<std::size_t>(i + 1); },
                         30 * k_second));
  }
  EXPECT_EQ(answers, (std::vector<std::string>{"value:k0", "value:k1", "value:k2"}));

  // The tiers picked per-pair transports: web<->cache co-located -> shm,
  // the cross-host hops -> rdma.
  EXPECT_EQ(web_to_cache->transport(), orch::Transport::shm);
  EXPECT_EQ(lb_to_web->transport(), orch::Transport::rdma);
  EXPECT_EQ(sock->transport(), orch::Transport::rdma);
}

// -------------------------------------------------------------------- MPI

TEST_F(CoreFixture, MpiSendRecvAndCollectives) {
  Env env(2);
  std::vector<orch::ContainerPtr> cs;
  std::vector<ContainerNetPtr> nets;
  std::vector<tcp::Ipv4Addr> ips;
  for (int r = 0; r < 4; ++r) {
    cs.push_back(env.deploy("rank" + std::to_string(r), 1,
                            static_cast<fabric::HostId>(r % 2)));
    nets.push_back(env.freeflow().attach(cs.back()->id()).value());
    ips.push_back(cs.back()->ip());
  }
  std::vector<MpiEndpointPtr> eps;
  for (int r = 0; r < 4; ++r) {
    eps.push_back(std::make_shared<MpiEndpoint>(nets[static_cast<std::size_t>(r)], r, ips));
    ASSERT_TRUE(eps.back()->start().is_ok());
  }

  // Point-to-point with tag matching, including recv-before-send.
  Buffer got;
  eps[3]->recv(1, 7, [&](Buffer&& b) { got = std::move(b); });
  eps[1]->send(3, 7, Buffer::from_string("tagged"));
  EXPECT_TRUE(env.wait([&]() { return !got.empty(); }, 30 * k_second));
  EXPECT_EQ(got.to_string(), "tagged");

  // Barrier: all ranks pass together.
  int through = 0;
  for (auto& ep : eps) ep->barrier([&]() { ++through; });
  EXPECT_TRUE(env.wait([&]() { return through == 4; }, 30 * k_second));

  // Broadcast from rank 2.
  std::vector<Buffer> bcast(4);
  for (int r = 0; r < 4; ++r) {
    eps[static_cast<std::size_t>(r)]->broadcast(
        2, r == 2 ? Buffer::from_string("payload") : Buffer{},
        [&bcast, r](Buffer&& b) { bcast[static_cast<std::size_t>(r)] = std::move(b); });
  }
  EXPECT_TRUE(env.wait([&]() {
    return std::all_of(bcast.begin(), bcast.end(),
                       [](const Buffer& b) { return !b.empty(); });
  }, 30 * k_second));
  for (const auto& b : bcast) EXPECT_EQ(b.to_string(), "payload");

  // Allreduce: sum of per-rank vectors.
  std::vector<std::vector<double>> results(4);
  for (int r = 0; r < 4; ++r) {
    eps[static_cast<std::size_t>(r)]->allreduce_sum(
        {static_cast<double>(r), 1.0},
        [&results, r](std::vector<double> v) { results[static_cast<std::size_t>(r)] = std::move(v); });
  }
  EXPECT_TRUE(env.wait([&]() {
    return std::all_of(results.begin(), results.end(),
                       [](const auto& v) { return !v.empty(); });
  }, 30 * k_second));
  for (const auto& v : results) {
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(v[1], 4.0);
  }

  // Gather to rank 1.
  std::vector<Buffer> gathered;
  bool gather_root_done = false;
  for (int r = 0; r < 4; ++r) {
    eps[static_cast<std::size_t>(r)]->gather(
        1, Buffer::from_string("rank" + std::to_string(r)),
        [&, r](std::vector<Buffer> parts) {
          if (r == 1) {
            gathered = std::move(parts);
            gather_root_done = true;
          }
        });
  }
  EXPECT_TRUE(env.wait([&]() { return gather_root_done; }, 30 * k_second));
  ASSERT_EQ(gathered.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(gathered[static_cast<std::size_t>(r)].to_string(),
              "rank" + std::to_string(r));
  }

  // Scatter from rank 0.
  std::vector<Buffer> scattered(4);
  int scatter_done = 0;
  for (int r = 0; r < 4; ++r) {
    std::vector<Buffer> parts;
    if (r == 0) {
      for (int i = 0; i < 4; ++i) parts.push_back(Buffer::from_string("part" + std::to_string(i)));
    }
    eps[static_cast<std::size_t>(r)]->scatter(
        0, std::move(parts), [&, r](Buffer&& mine) {
          scattered[static_cast<std::size_t>(r)] = std::move(mine);
          ++scatter_done;
        });
  }
  EXPECT_TRUE(env.wait([&]() { return scatter_done == 4; }, 30 * k_second));
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(scattered[static_cast<std::size_t>(r)].to_string(),
              "part" + std::to_string(r));
  }
}

}  // namespace
}  // namespace freeflow::core
