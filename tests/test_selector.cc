// Sharded control plane + per-agent decision caches: routing, precise
// invalidation, epoch coherence. The properties under test are the ones
// the decision-storm bench gates — a cache entry is never served after an
// event that could change it (stale_served == 0 is the acceptance bar),
// and invalidation drops exactly the affected (src, dst) entries.
#include <gtest/gtest.h>

#include "core/freeflow.h"
#include "faults/fault_injector.h"
#include "sim_env.h"

namespace freeflow {
namespace {

using testing::Env;
using faults::FaultInjector;
using faults::FaultKind;

/// Synchronous-looking decide: runs the loop until the callback fires.
Result<orch::TransportDecision> decide_now(Env& env, core::TransportSelector& sel,
                                           orch::ContainerId src,
                                           orch::ContainerId dst) {
  Result<orch::TransportDecision> out = unavailable("decide never completed");
  bool done = false;
  sel.decide(src, dst, [&](Result<orch::TransportDecision> d) {
    out = std::move(d);
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }));
  return out;
}

// ------------------------------------------------------ precise invalidation

TEST(Selector, PreciseInvalidationDropsOnlyAffectedPairs) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto c = env.deploy("c", 1, 1);
  auto& sel = env.freeflow().selector();

  ASSERT_EQ(decide_now(env, sel, a->id(), b->id())->transport, orch::Transport::shm);
  ASSERT_EQ(decide_now(env, sel, a->id(), c->id())->transport, orch::Transport::rdma);
  ASSERT_EQ(decide_now(env, sel, b->id(), c->id())->transport, orch::Transport::rdma);
  ASSERT_EQ(sel.cache_size(), 3u);

  sel.invalidate(c->id());  // drops exactly the two entries touching c
  EXPECT_EQ(sel.cache_size(), 1u);
  EXPECT_EQ(sel.invalidations(), 2u);

  // The (a, b) entry was untouched: still a hit.
  const auto hits_before = sel.cache_hits();
  ASSERT_TRUE(decide_now(env, sel, a->id(), b->id()).is_ok());
  EXPECT_EQ(sel.cache_hits(), hits_before + 1);
}

// Trust is an orchestrator-level event that can change any cached decision
// for the two tenants involved. Regression: revoking trust never reached
// the shards, so warmed selectors kept handing out shm/rdma decisions to
// pairs that no longer trust each other — an isolation hole, not a perf bug.
TEST(Selector, TenantTrustRevocationFlushesCachedDecisions) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 2, 0);
  auto& sel = env.freeflow().selector();

  // Untrusted cross-tenant pair: only the overlay is permitted; cached.
  ASSERT_EQ(decide_now(env, sel, a->id(), b->id())->transport,
            orch::Transport::tcp_overlay);

  // Granting trust must flush the cached overlay answer so the co-located
  // pair upgrades to shm on the next decide.
  env.net_orch->set_tenant_trust(1, 2, true);
  ASSERT_EQ(decide_now(env, sel, a->id(), b->id())->transport,
            orch::Transport::shm);

  // Revoking trust must drop the cached shm decision the same way.
  env.net_orch->set_tenant_trust(1, 2, false);
  EXPECT_EQ(decide_now(env, sel, a->id(), b->id())->transport,
            orch::Transport::tcp_overlay);
  EXPECT_EQ(sel.stale_served(), 0u);

  // No-op transitions (revoking absent trust, double-granting) must not
  // thrash the cache with redundant flushes.
  const auto inv_before = sel.invalidations();
  env.net_orch->set_tenant_trust(1, 2, false);
  env.net_orch->set_tenant_trust(3, 4, false);
  EXPECT_EQ(sel.invalidations(), inv_before);
}

TEST(Selector, LruEvictionKeepsCacheBounded) {
  agent::AgentConfig config;
  config.selector_cache_capacity = 2;
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto c = env.deploy("c", 1, 1);
  auto& sel = env.freeflow(config).selector();

  ASSERT_TRUE(decide_now(env, sel, a->id(), b->id()).is_ok());
  ASSERT_TRUE(decide_now(env, sel, a->id(), c->id()).is_ok());
  ASSERT_TRUE(decide_now(env, sel, b->id(), c->id()).is_ok());  // evicts (a, b)
  EXPECT_EQ(sel.cache_size(), 2u);
  EXPECT_EQ(sel.evictions(), 1u);

  // The evicted pair is a miss again; the survivors are hits.
  const auto misses_before = sel.cache_misses();
  ASSERT_TRUE(decide_now(env, sel, a->id(), b->id()).is_ok());
  EXPECT_EQ(sel.cache_misses(), misses_before + 1);
}

TEST(Selector, NegativeAnswersAreCached) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto& sel = env.freeflow().selector();

  auto d1 = decide_now(env, sel, a->id(), 9999);
  ASSERT_FALSE(d1.is_ok());
  EXPECT_EQ(d1.status().code(), Errc::not_found);
  const auto rounds = sel.rpc_rounds();

  // The retry is served from the negative cache: same error, no new RPC.
  auto d2 = decide_now(env, sel, a->id(), 9999);
  ASSERT_FALSE(d2.is_ok());
  EXPECT_EQ(d2.status().code(), Errc::not_found);
  EXPECT_EQ(sel.rpc_rounds(), rounds);
  EXPECT_GE(sel.cache_hits(), 1u);
}

// ------------------------------------------------------------ fault coherence

// The stale-serve window this PR closes: a TTL-fresh cached rdma decision
// must NOT survive the orchestrator learning the RDMA engine died. The
// flush lands with the health update; the very next decide() re-consults.
TEST(Selector, FaultFlushPreventsStaleServe) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  auto& ff = env.freeflow();
  auto& sel = ff.selector();
  FaultInjector injector(*env.net_orch, ff.agents());

  ASSERT_EQ(decide_now(env, sel, a->id(), b->id())->transport, orch::Transport::rdma);

  injector.apply({env.loop().now(), FaultKind::rdma_down, 1});
  const auto& cm = env.cluster.cost_model();
  env.loop().run_for(cm.fault_detect_ns + k_microsecond);
  // Far inside the 500 ms TTL: only the push-flush can have dropped it.
  ASSERT_LT(env.loop().now(), cm.location_cache_ttl_ns);

  auto d = decide_now(env, sel, a->id(), b->id());
  ASSERT_TRUE(d.is_ok());
  EXPECT_NE(d->transport, orch::Transport::rdma);
  EXPECT_EQ(sel.stale_served(), 0u);
}

// An RDMA engine death drops only the cached rdma decisions: a co-located
// pair's shm entry on the same host rides it out untouched.
TEST(Selector, RdmaDeathDropsOnlyRdmaEntries) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto c = env.deploy("c", 1, 1);
  auto& sel = env.freeflow().selector();

  ASSERT_EQ(decide_now(env, sel, a->id(), b->id())->transport, orch::Transport::shm);
  ASSERT_EQ(decide_now(env, sel, a->id(), c->id())->transport, orch::Transport::rdma);

  fabric::NicHealth sick;
  sick.rdma_up = false;
  env.net_orch->update_nic_health(0, sick);

  // shm entry survived (hit); rdma entry was flushed (miss, re-decided).
  const auto hits_before = sel.cache_hits();
  const auto misses_before = sel.cache_misses();
  EXPECT_EQ(decide_now(env, sel, a->id(), b->id())->transport, orch::Transport::shm);
  EXPECT_EQ(sel.cache_hits(), hits_before + 1);
  EXPECT_NE(decide_now(env, sel, a->id(), c->id())->transport, orch::Transport::rdma);
  EXPECT_EQ(sel.cache_misses(), misses_before + 1);
  EXPECT_EQ(sel.stale_served(), 0u);
}

TEST(Selector, ReportLaneFailureFlushesTransportEntries) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto c = env.deploy("c", 1, 1);
  auto& sel = env.freeflow().selector();

  ASSERT_EQ(decide_now(env, sel, a->id(), b->id())->transport, orch::Transport::shm);
  ASSERT_EQ(decide_now(env, sel, a->id(), c->id())->transport, orch::Transport::rdma);
  const auto invalidations_before = sel.invalidations();

  // An agent reports the rdma lane between hosts 0 and 1 dead: the cached
  // rdma decision is flushed even though telemetry still says healthy.
  env.net_orch->report_lane_failure(0, 1, orch::Transport::rdma);
  EXPECT_GE(sel.invalidations(), invalidations_before + 1);

  const auto hits_before = sel.cache_hits();
  EXPECT_EQ(decide_now(env, sel, a->id(), b->id())->transport, orch::Transport::shm);
  EXPECT_EQ(sel.cache_hits(), hits_before + 1);  // shm entry untouched
}

// --------------------------------------------------------------- sharding

TEST(Shards, CrossShardDecideForwards) {
  agent::AgentConfig config;
  config.control_plane_shards = 4;
  Env env(4);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);  // home shard 0, dst shard 1: forward
  auto& ff = env.freeflow(config);

  ASSERT_EQ(decide_now(env, ff.selector_on(0), a->id(), b->id())->transport,
            orch::Transport::rdma);
  EXPECT_EQ(ff.control_plane().shard_count(), 4);
  EXPECT_GE(ff.control_plane().cross_shard_forwards(), 1u);
  EXPECT_GE(ff.control_plane().shard_rpcs(), 1u);
}

TEST(Shards, SameShardDecideDoesNotForward) {
  agent::AgentConfig config;
  config.control_plane_shards = 4;
  Env env(8);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 4);  // 4 % 4 == 0: same home shard
  auto& ff = env.freeflow(config);

  ASSERT_TRUE(decide_now(env, ff.selector_on(0), a->id(), b->id()).is_ok());
  EXPECT_EQ(ff.control_plane().cross_shard_forwards(), 0u);
}

// A migration completing while a decide reply is on the wire bumps the
// container's epoch past the reply's stamp: the cache rejects the answer
// (it describes the pre-move world) and re-queries instead of serving it.
TEST(Shards, MigrationMidFlightRejectedByEpoch) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  auto& ff = env.freeflow();
  auto& sel = ff.selector();

  // Reply timeline: batch window 10 us + one-way 25 us + service ~5 us +
  // one-way 25 us ~= 65 us. A move landing at 50 us falls between shard
  // service (where the reply is stamped) and delivery.
  Result<orch::TransportDecision> out = unavailable("pending");
  bool done = false;
  sel.decide(a->id(), b->id(), [&](Result<orch::TransportDecision> d) {
    out = std::move(d);
    done = true;
  });
  ASSERT_TRUE(env.cluster_orch->migrate(b->id(), 0, /*downtime=*/50 * k_microsecond)
                  .is_ok());
  ASSERT_TRUE(env.wait([&]() { return done; }));

  // The answer reflects the post-move world, proving the stale in-flight
  // reply (rdma, stamped pre-move) was rejected and re-queried.
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out->transport, orch::Transport::shm);
  EXPECT_GE(sel.epoch_rejects(), 1u);
  EXPECT_EQ(sel.stale_served(), 0u);
}

// Decisions are a pure function of cluster truth: the shard count changes
// timing and load distribution, never answers. And the whole pipeline is
// deterministic — identical runs produce identical stats.
TEST(Shards, DeterministicAcrossShardCounts) {
  auto run = [](int shards) {
    agent::AgentConfig config;
    config.control_plane_shards = shards;
    auto env = std::make_unique<Env>(4);
    std::vector<orch::ContainerPtr> cs;
    for (int i = 0; i < 8; ++i) {
      cs.push_back(env->deploy("c" + std::to_string(i), 1,
                               static_cast<fabric::HostId>(i % 4)));
    }
    auto& ff = env->freeflow(config);
    std::vector<orch::Transport> decisions;
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        if (i == j) continue;
        auto d = decide_now(*env, ff.selector_on(cs[static_cast<std::size_t>(i)]->host()),
                            cs[static_cast<std::size_t>(i)]->id(),
                            cs[static_cast<std::size_t>(j)]->id());
        EXPECT_TRUE(d.is_ok());
        decisions.push_back(d->transport);
      }
    }
    return std::pair{decisions, ff.control_plane().shard_rpcs()};
  };

  const auto [d1, rpcs1] = run(1);
  const auto [d4, rpcs4] = run(4);
  EXPECT_EQ(d1, d4);  // same answers regardless of partitioning

  const auto [d4b, rpcs4b] = run(4);
  EXPECT_EQ(d4, d4b);
  EXPECT_EQ(rpcs4, rpcs4b);  // byte-identical re-run
}

}  // namespace
}  // namespace freeflow
