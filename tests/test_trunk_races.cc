// Regression tests for trunk-establishment races. The schedule that used to
// kill mapreduce_shuffle is reproduced deterministically here: both hosts
// start a setup toward each other on the same tick, so each side's attempt
// finds the peer's half-trunk mid-handshake. Pre-fix, the second adoption
// clobbered the first and the zombie guard reported "lane died during trunk
// setup"; post-fix the sides merge onto one trunk and both channels open.
// A fault-injected variant kills the lane mid-handshake and requires the
// RetryPolicy to carry the setup through the outage.
#include <gtest/gtest.h>

#include "agent/agent.h"
#include "faults/fault_injector.h"
#include "sim_env.h"

namespace freeflow::agent {
namespace {

using freeflow::testing::Env;

struct BiDirRig {
  orch::ContainerPtr a, b;
  ChannelPtr ab_a, ab_b;  ///< a->b channel, both endpoints
  ChannelPtr ba_b, ba_a;  ///< b->a channel, both endpoints
  Status ab_error, ba_error;

  [[nodiscard]] bool complete() const {
    return ab_a && ab_b && ba_b && ba_a;
  }
};

/// Starts a->b and b->a setups WITHOUT stepping the loop in between: both
/// agents enter setup for the same (host pair, transport) key on the same
/// tick, which is the exact schedule of the historical clobber bug.
BiDirRig start_bidirectional(Env& env, AgentFabric& agents,
                             orch::Transport transport) {
  BiDirRig rig;
  rig.a = env.deploy("a", 1, 0);
  rig.b = env.deploy("b", 1, 1);
  agents.agent_on(0).register_container(
      rig.a->id(), [&rig](orch::ContainerId, ChannelPtr ch) {
        rig.ba_a = std::move(ch);
      });
  agents.agent_on(1).register_container(
      rig.b->id(), [&rig](orch::ContainerId, ChannelPtr ch) {
        rig.ab_b = std::move(ch);
      });
  agents.agent_on(0).establish(rig.a->id(), rig.b->id(), transport,
                               [&rig](Result<ChannelPtr> ch) {
    if (!ch.is_ok()) {
      rig.ab_error = ch.status();
      return;
    }
    rig.ab_a = std::move(ch.value());
  });
  agents.agent_on(1).establish(rig.b->id(), rig.a->id(), transport,
                               [&rig](Result<ChannelPtr> ch) {
    if (!ch.is_ok()) {
      rig.ba_error = ch.status();
      return;
    }
    rig.ba_b = std::move(ch.value());
  });
  return rig;
}

class TrunkRace : public ::testing::TestWithParam<orch::Transport> {};

TEST_P(TrunkRace, BidirectionalSameTickSetupConverges) {
  Env env(2);
  AgentFabric agents(*env.net_orch);
  BiDirRig rig = start_bidirectional(env, agents, GetParam());

  EXPECT_TRUE(env.wait([&]() { return rig.complete(); }, 30 * k_second))
      << "a->b error: " << rig.ab_error << "; b->a error: " << rig.ba_error;
  ASSERT_TRUE(rig.complete());

  // Both directions must actually carry traffic over whatever trunk won.
  Buffer at_b, at_a;
  rig.ab_b->set_on_message([&](Buffer&& m) { at_b = std::move(m); });
  rig.ba_a->set_on_message([&](Buffer&& m) { at_a = std::move(m); });
  ASSERT_TRUE(rig.ab_a->send(Buffer::from_string("forward")).is_ok());
  ASSERT_TRUE(rig.ba_b->send(Buffer::from_string("backward")).is_ok());
  EXPECT_TRUE(env.wait([&]() { return !at_b.empty() && !at_a.empty(); }));
  EXPECT_EQ(at_b.to_string(), "forward");
  EXPECT_EQ(at_a.to_string(), "backward");
}

INSTANTIATE_TEST_SUITE_P(AllTrunkKinds, TrunkRace,
                         ::testing::Values(orch::Transport::rdma,
                                           orch::Transport::dpdk,
                                           orch::Transport::tcp_host),
                         [](const ::testing::TestParamInfo<orch::Transport>& p) {
                           return std::string(orch::transport_name(p.param)) ==
                                          "tcp-host"
                                      ? "tcp_host"
                                      : std::string(orch::transport_name(p.param));
                         });

TEST(TrunkRaceTelemetry, SimultaneousSetupsResolveOntoOneTrunk) {
  Env env(2);
  AgentFabric agents(*env.net_orch);
  BiDirRig rig = start_bidirectional(env, agents, orch::Transport::rdma);
  ASSERT_TRUE(env.wait([&]() { return rig.complete(); }, 30 * k_second));

  auto& metrics = env.cluster.telemetry().metrics();
  const std::uint64_t races =
      metrics.counter("agent/0/trunk/setup_races_resolved").value() +
      metrics.counter("agent/1/trunk/setup_races_resolved").value();
  EXPECT_GE(races, 1u) << "same-tick opposite setups did not detect the race";
}

TEST(TrunkRaceFaults, LaneDeathMidHandshakeIsRetriedToSuccess) {
  Env env(2);
  // A retry schedule guaranteed to span the outage below even if attempts
  // fail instantly: backoffs alone cover 1+2+4+5*6 ms > 20ms.
  AgentConfig config;
  config.trunk_retry.max_attempts = 10;
  config.trunk_retry.attempt_timeout_ns = 5 * k_millisecond;
  config.trunk_retry.initial_backoff_ns = 1 * k_millisecond;
  AgentFabric agents(*env.net_orch, config);
  faults::FaultInjector injector(*env.net_orch, agents);

  // The whole link on host 0 goes dark NOW and heals after 20ms: handshake
  // control messages in flight are eaten, so in-progress attempts die by
  // watchdog (or by drop-indicted lane death), and the setup must ride its
  // backoff schedule through the heal and still come up.
  faults::FaultPlan plan;
  plan.link_flap(0, env.loop().now(), 20 * k_millisecond);
  injector.arm(plan);

  BiDirRig rig = start_bidirectional(env, agents, orch::Transport::rdma);
  EXPECT_TRUE(env.wait([&]() { return rig.complete(); }, 120 * k_second))
      << "a->b error: " << rig.ab_error << "; b->a error: " << rig.ba_error;
  ASSERT_TRUE(rig.complete());

  Buffer at_b;
  rig.ab_b->set_on_message([&](Buffer&& m) { at_b = std::move(m); });
  ASSERT_TRUE(rig.ab_a->send(Buffer::from_string("survived")).is_ok());
  EXPECT_TRUE(env.wait([&]() { return !at_b.empty(); }));
  EXPECT_EQ(at_b.to_string(), "survived");

  // The outage must have cost at least one attempt on some agent.
  auto& metrics = env.cluster.telemetry().metrics();
  const std::uint64_t retries =
      metrics.counter("agent/0/trunk/setup_retries").value() +
      metrics.counter("agent/1/trunk/setup_retries").value();
  EXPECT_GE(retries, 1u) << "outage overlapped no attempt — timing drifted?";
}

TEST(TrunkRaceFaults, TerminalErrorAfterRetryBudgetExhausted) {
  Env env(2);
  AgentFabric agents(*env.net_orch);
  faults::FaultInjector injector(*env.net_orch, agents);

  // Link outage far longer than the whole retry budget: the setup must
  // fail loudly with an annotated terminal error, not hang.
  faults::FaultPlan plan;
  plan.link_flap(0, env.loop().now(), 600 * k_second);
  injector.arm(plan);

  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  agents.agent_on(1).register_container(b->id(),
                                        [](orch::ContainerId, ChannelPtr) {});
  agents.agent_on(0).register_container(a->id(),
                                        [](orch::ContainerId, ChannelPtr) {});
  Status result;
  bool done = false;
  agents.agent_on(0).establish(a->id(), b->id(), orch::Transport::rdma,
                               [&](Result<ChannelPtr> ch) {
    result = ch.status();
    done = true;
  });
  EXPECT_TRUE(env.wait([&]() { return done; }, 300 * k_second));
  EXPECT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find("attempt"), std::string::npos)
      << "terminal error should carry the attempt count: " << result;
}

}  // namespace
}  // namespace freeflow::agent
