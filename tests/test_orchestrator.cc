#include <gtest/gtest.h>

#include "sim_env.h"

namespace freeflow::orch {
namespace {

using freeflow::testing::Env;

TEST(ClusterOrchestrator, DeployAssignsIpAndHost) {
  Env env(2);
  auto c = env.deploy("web", 1, 0);
  EXPECT_EQ(c->host(), 0u);
  EXPECT_EQ(c->state(), ContainerState::running);
  EXPECT_NE(c->ip().value(), 0u);
  EXPECT_EQ(env.cluster_orch->container(c->id()), c);
  EXPECT_EQ(env.cluster_orch->container_by_name("web"), c);
  EXPECT_EQ(env.cluster_orch->container_by_ip(c->ip()), c);
}

TEST(ClusterOrchestrator, SpreadPlacementBalances) {
  Env env(3);
  env.cluster_orch->set_placement_policy(PlacementPolicy::spread);
  std::vector<int> per_host(3, 0);
  for (int i = 0; i < 9; ++i) {
    ContainerSpec spec;
    spec.name = "c" + std::to_string(i);
    auto c = env.cluster_orch->deploy(std::move(spec));
    ASSERT_TRUE(c.is_ok());
    ++per_host[(*c)->host()];
  }
  EXPECT_EQ(per_host, (std::vector<int>{3, 3, 3}));
}

TEST(ClusterOrchestrator, BinpackPlacementConcentrates) {
  Env env(3);
  env.cluster_orch->set_placement_policy(PlacementPolicy::binpack);
  env.deploy("seed", 1, 1);  // host1 has one container: binpack piles on
  for (int i = 0; i < 5; ++i) {
    ContainerSpec spec;
    spec.name = "c" + std::to_string(i);
    auto c = env.cluster_orch->deploy(std::move(spec));
    ASSERT_TRUE(c.is_ok());
    EXPECT_EQ((*c)->host(), 1u);
  }
}

TEST(ClusterOrchestrator, UniqueIpsAcrossDeployments) {
  Env env(2);
  std::set<std::uint32_t> ips;
  for (int i = 0; i < 20; ++i) {
    auto c = env.deploy("c" + std::to_string(i), 1, static_cast<fabric::HostId>(i % 2));
    EXPECT_TRUE(ips.insert(c->ip().value()).second);
  }
}

TEST(ClusterOrchestrator, StopReleasesIp) {
  Env env(1);
  auto c = env.deploy("victim", 1, 0);
  const auto ip = c->ip();
  ASSERT_TRUE(env.cluster_orch->stop(c->id()).is_ok());
  EXPECT_EQ(c->state(), ContainerState::stopped);
  EXPECT_FALSE(env.overlay_net.ipam().in_use(ip));
  EXPECT_EQ(env.cluster_orch->container_by_ip(ip), nullptr);
}

TEST(ClusterOrchestrator, MigrationPreservesIpAndNotifies) {
  Env env(2);
  auto c = env.deploy("mover", 1, 0);
  const auto ip = c->ip();
  int notifications = 0;
  env.cluster_orch->on_moved([&](const Container& moved) {
    ++notifications;
    EXPECT_EQ(moved.id(), c->id());
  });
  ASSERT_TRUE(env.cluster_orch->migrate(c->id(), 1).is_ok());
  EXPECT_EQ(c->state(), ContainerState::migrating);
  env.loop().run();
  EXPECT_EQ(c->state(), ContainerState::running);
  EXPECT_EQ(c->host(), 1u);
  EXPECT_EQ(c->ip(), ip);
  EXPECT_EQ(notifications, 1);
}

TEST(ClusterOrchestrator, MigrateErrors) {
  Env env(2);
  auto c = env.deploy("x", 1, 0);
  EXPECT_EQ(env.cluster_orch->migrate(999, 1).code(), Errc::not_found);
  EXPECT_EQ(env.cluster_orch->migrate(c->id(), 7).code(), Errc::invalid_argument);
  EXPECT_TRUE(env.cluster_orch->migrate(c->id(), 0).is_ok());  // no-op same host
}

// ------------------------------------------------- NetworkOrchestrator

TEST(NetworkOrchestrator, LocateAndResolve) {
  Env env(2);
  auto c = env.deploy("svc", 1, 1);
  auto loc = env.net_orch->locate(c->id());
  ASSERT_TRUE(loc.is_ok());
  EXPECT_EQ(loc->host, 1u);
  EXPECT_EQ(loc->ip, c->ip());
  EXPECT_EQ(env.net_orch->resolve_ip(c->ip()).value(), c->id());
  EXPECT_FALSE(env.net_orch->locate(777).is_ok());
}

TEST(NetworkOrchestrator, QueryLocationPaysRpcLatency) {
  Env env(1);
  auto c = env.deploy("svc", 1, 0);
  bool answered = false;
  const SimTime start = env.loop().now();
  SimTime when = 0;
  env.net_orch->query_location(c->id(), [&](Result<NetworkOrchestrator::Location> l) {
    EXPECT_TRUE(l.is_ok());
    answered = true;
    when = env.loop().now();
  });
  EXPECT_FALSE(answered);
  env.loop().run();
  EXPECT_TRUE(answered);
  EXPECT_EQ(when - start, env.cluster.cost_model().orchestrator_rpc_ns);
}

TEST(NetworkOrchestrator, TrustDefaultsToSameTenant) {
  Env env(1);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  auto c = env.deploy("c", 2, 0);
  EXPECT_TRUE(env.net_orch->trusted(*a, *b));
  EXPECT_FALSE(env.net_orch->trusted(*a, *c));
  env.net_orch->set_tenant_trust(1, 2, true);
  EXPECT_TRUE(env.net_orch->trusted(*a, *c));
  env.net_orch->set_tenant_trust(1, 2, false);
  EXPECT_FALSE(env.net_orch->trusted(*a, *c));
}

// The paper's (commented) Table 1: best transport per deployment case and
// constraint. Parameterized over the four cases.
struct DecisionCase {
  const char* name;
  bool same_host;       // case a/c vs b/d
  bool vms;             // cases c/d run containers inside VMs
  bool trusted;
  bool rdma_nics;
  Transport expected;
};

class DecisionMatrix : public ::testing::TestWithParam<DecisionCase> {};

TEST_P(DecisionMatrix, PicksPaperTransport) {
  const DecisionCase& tc = GetParam();
  fabric::NicCapabilities caps;
  caps.rdma = tc.rdma_nics;
  caps.dpdk = false;  // isolate the rdma-vs-tcp fallback decision
  Env env(2, sim::CostModel{}, caps);
  if (tc.vms) {
    // Hosts are VMs pinned on physical machines (fabric controller view).
    env.cluster.host(0).set_physical_machine(10);
    env.cluster.host(1).set_physical_machine(11);
  }
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", tc.trusted ? 1 : 2, tc.same_host ? 0 : 1);

  auto d = env.net_orch->decide(a->id(), b->id());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->transport, tc.expected) << tc.name << ": " << d->reason;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, DecisionMatrix,
    ::testing::Values(
        // Case (a): same bare-metal host.
        DecisionCase{"a_default", true, false, true, true, Transport::shm},
        DecisionCase{"a_no_trust", true, false, false, true, Transport::tcp_overlay},
        DecisionCase{"a_no_rdma", true, false, true, false, Transport::shm},
        // Case (b): different bare-metal hosts.
        DecisionCase{"b_default", false, false, true, true, Transport::rdma},
        DecisionCase{"b_no_trust", false, false, false, true, Transport::tcp_overlay},
        DecisionCase{"b_no_rdma", false, false, true, false, Transport::tcp_host},
        // Case (c): same VM (containers co-located inside one VM host).
        DecisionCase{"c_default", true, true, true, true, Transport::shm},
        DecisionCase{"c_no_rdma", true, true, true, false, Transport::shm},
        // Case (d): VMs on different physical machines.
        DecisionCase{"d_default", false, true, true, true, Transport::rdma},
        DecisionCase{"d_no_trust", false, true, false, true, Transport::tcp_overlay}),
    [](const ::testing::TestParamInfo<DecisionCase>& pinfo) {
      return pinfo.param.name;
    });

TEST(NetworkOrchestrator, DpdkFallbackWhenNoRdma) {
  fabric::NicCapabilities caps;
  caps.rdma = false;
  caps.dpdk = true;
  Env env(2, sim::CostModel{}, caps);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  auto d = env.net_orch->decide(a->id(), b->id());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->transport, Transport::dpdk);
}

TEST(NetworkOrchestrator, GlobalIsolationSwitchForcesOverlay) {
  Env env(1);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 0);
  env.net_orch->set_allow_isolation_trade(false);
  auto d = env.net_orch->decide(a->id(), b->id());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d->transport, Transport::tcp_overlay);
}

TEST(NetworkOrchestrator, MoveSubscriptionFires) {
  Env env(2);
  auto c = env.deploy("m", 1, 0);
  ContainerId seen = 0;
  env.net_orch->subscribe_moves([&](const Container& moved) { seen = moved.id(); });
  ASSERT_TRUE(env.cluster_orch->migrate(c->id(), 1).is_ok());
  env.loop().run();
  EXPECT_EQ(seen, c->id());
}

TEST(NetworkOrchestrator, DecisionChangesAfterMigration) {
  Env env(2);
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", 1, 1);
  EXPECT_EQ(env.net_orch->decide(a->id(), b->id())->transport, Transport::rdma);
  ASSERT_TRUE(env.cluster_orch->migrate(b->id(), 0).is_ok());
  env.loop().run();
  EXPECT_EQ(env.net_orch->decide(a->id(), b->id())->transport, Transport::shm);
}

TEST(NetworkOrchestrator, PhysicalMachineMapping) {
  Env env(2);
  EXPECT_EQ(env.net_orch->physical_machine(0), 0u);
  env.cluster.host(1).set_physical_machine(42);
  EXPECT_EQ(env.net_orch->physical_machine(1), 42u);
}

}  // namespace
}  // namespace freeflow::orch
