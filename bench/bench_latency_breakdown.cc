// E7 / Fig. 3 (planned, commented source): stacked latency components per
// transport. The stages come from the calibrated cost model (they are what
// the simulation actually charges); the measured end-to-end column is the
// live ping-pong median, confirming the stack adds up.
#include "bench_common.h"

#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {
void stack_row(const char* stage, double ns) {
  if (ns <= 0) return;
  std::printf("    %-28s %10s\n", stage, format_ns(ns).c_str());
}
}  // namespace

int main(int argc, char** argv) {
  banner("Latency breakdown (64 B, one way), per transport",
         "Fig. 3 plan: 'stacked bar chart of latency components'");

  JsonReport json(argc, argv, "latency_breakdown");

  const sim::CostModel m;
  const double wire64 = static_cast<double>(transmission_time(64 + 78, m.nic_line_gbps * 1e9)) +
                        static_cast<double>(2 * m.link_prop_ns + m.switch_fwd_ns);

  std::printf("shared memory:\n");
  stack_row("ring enqueue (tx CPU)", m.shm_post_ns + m.shm_copy_ns_per_byte * 64);
  stack_row("cross-core wakeup", static_cast<double>(m.shm_wakeup_ns));
  stack_row("ring dequeue (rx CPU)", m.shm_poll_ns + m.shm_copy_ns_per_byte * 64);

  std::printf("rdma (inter-host):\n");
  stack_row("post_send doorbell", m.rdma_post_ns);
  stack_row("NIC processor (tx)", m.nic_pkt_cost(64));
  stack_row("wire + switch", wire64);
  stack_row("NIC processor (rx)", m.nic_pkt_cost(64));
  stack_row("completion poll", m.rdma_poll_ns);

  std::printf("tcp host mode (inter-host):\n");
  stack_row("syscall+protocol (tx)", m.tcp_tx_cost(64));
  stack_row("wire + switch", wire64);
  stack_row("softirq+protocol (rx)", m.tcp_rx_cost(64));
  stack_row("scheduler wakeup", static_cast<double>(m.tcp_rx_wakeup_ns));

  std::printf("tcp bridge mode (intra-host): adds per side:\n");
  stack_row("veth + bridge", m.bridge_cost(64));

  std::printf("overlay mode: additionally per router crossed:\n");
  stack_row("router copies + forward", m.router_cost(64));
  stack_row("vxlan encap/decap", m.vxlan_ns_per_chunk);

  footer();
  std::printf("measured one-way medians (validate the stacks):\n");
  {
    fabric::Cluster c;
    c.add_hosts(1);
    const double ns = static_cast<double>(shm_rtt(c, 0, 64, 31)) / 2;
    json.add("shm_oneway_64b_ns", ns);
    std::printf("  %-24s %10s\n", "shared memory", format_ns(ns).c_str());
  }
  {
    fabric::Cluster c;
    c.add_hosts(2);
    rdma::RdmaDevice a(c.host(0)), b(c.host(1));
    const double ns = static_cast<double>(rdma_rtt(c, a, b, 64, 31)) / 2;
    json.add("rdma_oneway_64b_ns", ns);
    std::printf("  %-24s %10s\n", "rdma inter-host", format_ns(ns).c_str());
  }
  {
    TcpRig rig(TcpRig::Mode::host, 2, 1);
    std::printf("  %-24s %10s\n", "tcp host inter-host",
                format_ns(static_cast<double>(tcp_rtt(rig.cluster, *rig.net,
                                                      rig.endpoints[0].first,
                                                      rig.endpoints[0].second, 64, 31)) /
                          2)
                    .c_str());
  }
  {
    OverlayRig rig(2, 1, true);
    std::printf("  %-24s %10s\n", "tcp overlay inter-host",
                format_ns(static_cast<double>(tcp_rtt(rig.env.cluster, *rig.net,
                                                      rig.endpoints[0].first,
                                                      {rig.endpoints[0].second.ip, 9100},
                                                      64, 31)) /
                          2)
                    .c_str());
  }
  footer();
  return 0;
}
