// Decision storm: every flow in a 64-host cluster asks the control plane
// for a transport decision on the same tick, at 1 / 4 / 16 orchestrator
// shards. This regenerates the scaling argument behind §4.1: the
// orchestrator is cheap because it is off the data path, but only if
// decision *setup* throughput scales — one serial decision service caps
// the whole cluster. Three phases per shard count:
//
//   cold   every (src, dst) missing: miss batching collapses the storm
//          into one RPC per agent; shard queueing bounds the tail.
//   warm   the same flows again: all hits, zero new RPCs.
//   churn  (16 shards) NIC faults + migrations, quiesce, re-decide:
//          every answer must match orchestrator ground truth, with zero
//          stale serves — the precise-invalidation acceptance bar.
#include "bench_common.h"

#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "faults/fault_injector.h"

using namespace freeflow;
using namespace freeflow::bench;

namespace {

constexpr int k_hosts = 64;
constexpr int k_containers = 2048;

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

struct Pair {
  std::size_t src;
  std::size_t dst;
};

/// The same seeded flow list for every shard count: identical offered load,
/// so throughput differences are the sharding, not the workload.
std::vector<Pair> make_pairs(int flows) {
  Rng rng(0xDEC15105ULL);
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::size_t>(rng.next_below(k_containers));
    auto dst = static_cast<std::size_t>(rng.next_below(k_containers));
    if (dst == src) dst = (dst + 1) % k_containers;
    pairs.push_back({src, dst});
  }
  return pairs;
}

struct StormResult {
  double cold_dps = 0;            ///< decisions per sim-second, cold caches
  std::int64_t cold_p50_ns = 0;
  std::int64_t cold_p99_ns = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_rpc_rounds = 0;  ///< must be 0: warm storms pay no RPC
  std::uint64_t shard_rpcs = 0;
  std::uint64_t cross_shard_forwards = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t epoch_rejects = 0;
  std::uint64_t ground_truth_mismatches = 0;
  std::uint64_t decide_errors = 0;
  std::string telemetry_json;
};

StormResult run_storm(int shards, const std::vector<Pair>& pairs, bool churn) {
  BenchEnv env(k_hosts);
  agent::AgentConfig config;
  config.control_plane_shards = shards;
  auto& ff = env.freeflow(config);

  std::vector<orch::ContainerPtr> containers;
  containers.reserve(k_containers);
  for (int i = 0; i < k_containers; ++i) {
    containers.push_back(env.deploy("c" + std::to_string(i), 1,
                                    static_cast<fabric::HostId>(i % k_hosts)));
  }

  StormResult r;
  auto decide_all = [&](Histogram* latency, std::uint64_t* mismatches) {
    int done = 0;
    const SimTime start = env.loop().now();
    for (const Pair& p : pairs) {
      const orch::ContainerPtr& src = containers[p.src];
      const orch::ContainerPtr& dst = containers[p.dst];
      ff.selector_on(src->host())
          .decide(src->id(), dst->id(),
                  [&, start, src, dst](Result<orch::TransportDecision> d) {
                    ++done;
                    if (!d.is_ok()) {
                      ++r.decide_errors;
                      return;
                    }
                    if (latency != nullptr) {
                      latency->record(
                          static_cast<std::int64_t>(env.loop().now() - start));
                    }
                    if (mismatches != nullptr) {
                      // Ground truth at delivery time: after quiesce nothing
                      // races, so every served answer must match a fresh
                      // orchestrator decision for the same pair.
                      auto truth = env.net_orch->decide(src->id(), dst->id());
                      if (!truth.is_ok() || truth->transport != d->transport) {
                        ++*mismatches;
                      }
                    }
                  });
    }
    FF_CHECK(spin(env.cluster, [&]() { return done == static_cast<int>(pairs.size()); },
                  600 * k_second));
    return env.loop().now() - start;
  };

  // ---- cold storm: every pair misses, all on one tick -------------------
  Histogram cold;
  const SimDuration cold_ns = decide_all(&cold, nullptr);
  FF_CHECK(cold_ns > 0);
  r.cold_dps = static_cast<double>(pairs.size()) /
               (static_cast<double>(cold_ns) / 1e9);
  r.cold_p50_ns = cold.p50();
  r.cold_p99_ns = cold.p99();

  // ---- warm storm: the same flows again, straight from the caches -------
  auto& metrics = env.cluster.telemetry().metrics();
  const std::uint64_t rounds_before = metrics.counter_value("selector/decide_rpc_rounds");
  std::uint64_t hits_before = 0;
  for (int h = 0; h < k_hosts; ++h) {
    hits_before += ff.selector_on(static_cast<fabric::HostId>(h)).cache_hits();
  }
  decide_all(nullptr, nullptr);
  r.warm_rpc_rounds = metrics.counter_value("selector/decide_rpc_rounds") - rounds_before;
  for (int h = 0; h < k_hosts; ++h) {
    r.warm_hits += ff.selector_on(static_cast<fabric::HostId>(h)).cache_hits();
  }
  r.warm_hits -= hits_before;

  // ---- churn: NIC faults + migrations against the warm caches -----------
  if (churn) {
    faults::FaultInjector injector(*env.net_orch, ff.agents());
    for (fabric::HostId victim : {fabric::HostId{1}, fabric::HostId{5},
                                  fabric::HostId{9}, fabric::HostId{13}}) {
      injector.apply({env.loop().now(), faults::FaultKind::rdma_down, victim});
    }
    Rng rng(0xC4112ULL);
    for (int m = 0; m < 16; ++m) {
      const auto id =
          containers[static_cast<std::size_t>(rng.next_below(k_containers))]->id();
      const auto dst = static_cast<fabric::HostId>(rng.next_below(k_hosts));
      (void)env.cluster_orch->migrate(id, dst, /*downtime=*/1 * k_millisecond);
    }
    // Quiesce: past fault detection and migration downtime, every epoch
    // bump and cache flush has landed.
    env.loop().run_for(5 * k_millisecond);
    decide_all(nullptr, &r.ground_truth_mismatches);
  }

  // ---- stats + telemetry cross-check ------------------------------------
  r.shard_rpcs = ff.control_plane().shard_rpcs();
  r.cross_shard_forwards = ff.control_plane().cross_shard_forwards();
  std::uint64_t invalidations = 0;
  for (int h = 0; h < k_hosts; ++h) {
    auto& sel = ff.selector_on(static_cast<fabric::HostId>(h));
    r.cache_evictions += sel.evictions();
    r.stale_served += sel.stale_served();
    r.epoch_rejects += sel.epoch_rejects();
    invalidations += sel.invalidations();
  }
  // The registry aggregates what the objects counted — any drift means a
  // path bumped one side and not the other.
  FF_CHECK(metrics.counter_value("orch/shard_rpcs") == r.shard_rpcs);
  FF_CHECK(metrics.counter_value("orch/cross_shard_forwards") == r.cross_shard_forwards);
  FF_CHECK(metrics.counter_value("selector/cache_evictions") == r.cache_evictions);
  FF_CHECK(metrics.counter_value("selector/stale_served") == r.stale_served);
  FF_CHECK(metrics.counter_value("selector/epoch_rejects") == r.epoch_rejects);
  FF_CHECK(metrics.counter_value("selector/invalidations") == invalidations);
  r.telemetry_json = metrics.snapshot_json();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int flows = 100000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--flows") == 0) flows = std::atoi(argv[i + 1]);
  }

  banner("Decision storm: control-plane scaling across orchestrator shards",
         "perf extension: §4.1 decision throughput off the data path");
  JsonReport json(argc, argv, "decision_storm");

  const std::vector<Pair> pairs = make_pairs(flows);

  std::printf("%7s %14s %12s %12s %10s %10s %10s\n", "shards", "decisions/s",
              "cold p50", "cold p99", "warm hits", "rpcs", "forwards");
  StormResult results[3];
  const int shard_counts[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    const bool churn = shard_counts[i] == 16;  // fault phase at full fan-out
    results[i] = run_storm(shard_counts[i], pairs, churn);
    const StormResult& r = results[i];
    std::printf("%7d %14.3g %12s %12s %10llu %10llu %10llu\n", shard_counts[i],
                r.cold_dps, format_ns(static_cast<double>(r.cold_p50_ns)).c_str(),
                format_ns(static_cast<double>(r.cold_p99_ns)).c_str(),
                static_cast<unsigned long long>(r.warm_hits),
                static_cast<unsigned long long>(r.shard_rpcs),
                static_cast<unsigned long long>(r.cross_shard_forwards));
  }

  const double speedup = results[0].cold_dps > 0
                             ? results[2].cold_dps / results[0].cold_dps
                             : 0.0;
  std::uint64_t stale = 0, rejects = 0, warm_rounds = 0, errors = 0;
  for (const StormResult& r : results) {
    stale += r.stale_served;
    rejects += r.epoch_rejects;
    warm_rounds += r.warm_rpc_rounds;
    errors += r.decide_errors;
  }
  std::printf("\n16-shard speedup over single orchestrator: %.1fx (floor 5x)\n",
              speedup);
  std::printf("coherence: %llu stale serves, %llu ground-truth mismatches, "
              "%llu epoch rejects\n",
              static_cast<unsigned long long>(stale),
              static_cast<unsigned long long>(results[2].ground_truth_mismatches),
              static_cast<unsigned long long>(rejects));

  json.add("flows", flows);
  json.add("dps_1shard", results[0].cold_dps);
  json.add("dps_4shards", results[1].cold_dps);
  json.add("dps_16shards", results[2].cold_dps);
  json.add("speedup_16v1", speedup);
  json.add("cold_p50_ns_16shards", static_cast<double>(results[2].cold_p50_ns));
  json.add("cold_p99_ns_1shard", static_cast<double>(results[0].cold_p99_ns));
  json.add("cold_p99_ns_4shards", static_cast<double>(results[1].cold_p99_ns));
  json.add("cold_p99_ns_16shards", static_cast<double>(results[2].cold_p99_ns));
  json.add("warm_hits", static_cast<double>(results[2].warm_hits));
  json.add("warm_rpc_rounds", static_cast<double>(warm_rounds));
  json.add("stale_served", static_cast<double>(stale));
  json.add("ground_truth_mismatches",
           static_cast<double>(results[2].ground_truth_mismatches));
  json.add("epoch_rejects", static_cast<double>(rejects));
  json.add("decide_errors", static_cast<double>(errors));
  json.add("shard_rpcs_16", static_cast<double>(results[2].shard_rpcs));
  json.add("cross_shard_forwards_16",
           static_cast<double>(results[2].cross_shard_forwards));
  json.add("cache_evictions_16", static_cast<double>(results[2].cache_evictions));
  json.add_raw("telemetry", results[2].telemetry_json);

  footer();
  std::printf("sharding is what keeps \"off the data path\" true at scale: the\n"
              "same storm that saturates one orchestrator rides 16 shards with\n"
              "a flat tail — and precise flushes keep every warm cache honest.\n");
  const bool ok = stale == 0 && results[2].ground_truth_mismatches == 0 &&
                  errors == 0 && warm_rounds == 0;
  return ok ? 0 : 1;
}
