// E13 / §5 (Figs. 5-7): the verbs WRITE working flow. One RDMA WRITE of
// 1 MiB issued through FreeFlow's virtual NIC, on both placements, against
// the raw substrate — quantifying the vNIC+agent indirection overhead and
// demonstrating API equivalence (same SendWr on every path).
#include "bench_common.h"

#include "core/vqp.h"
#include "rdma/cm.h"
#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

/// One signaled 1 MiB WRITE through a FreeFlow vQP; returns completion time.
SimDuration freeflow_write_once(FreeFlowRig& rig) {
  auto& cluster = rig.env.cluster;
  core::VirtualQpPtr qa, qb;
  // The acceptor must hold its QP (app-owned), or inbound verbs are dropped.
  FF_CHECK(rig.net_b->listen_qp(18515, [&qb](core::VirtualQpPtr q) {
    qb = std::move(q);
  }).is_ok());
  rig.net_a->connect_qp(rig.b->ip(), 18515, rig.net_a->create_cq(),
                        rig.net_a->create_cq(), [&](Result<core::VirtualQpPtr> q) {
                          FF_CHECK(q.is_ok());
                          qa = *q;
                        });
  FF_CHECK(spin(cluster, [&]() { return qa != nullptr; }, 10 * k_second));

  auto src = rig.net_a->reg_mr(1 << 20);
  auto dst = rig.net_b->reg_mr(1 << 20);
  fill_pattern(src->data().mutable_view(), 7);

  rdma::SendWr wr;
  wr.wr_id = 1;
  wr.opcode = rdma::Opcode::write;
  wr.local = {src, 0, src->length()};
  wr.remote = {dst->rkey(), 0};

  const SimTime t0 = cluster.loop().now();
  FF_CHECK(qa->post_send(wr).is_ok());
  // Completion is local (RC semantics); wait for the data to actually land.
  FF_CHECK(spin(cluster, [&]() { return check_pattern(dst->data().view(), 7); },
                30 * k_second));
  return cluster.loop().now() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  banner("vNIC indirection: RDMA WRITE 1 MiB, end-to-end placement time",
         "§5 working flows (Figs. 5/6/7): same verbs call, three data planes");

  JsonReport json(argc, argv, "vnic_overhead");

  std::printf("%-34s %14s\n", "path", "1MiB placement");

  {
    fabric::Cluster cluster;
    cluster.add_hosts(2);
    rdma::RdmaDevice a(cluster.host(0)), b(cluster.host(1));
    auto qa = a.create_qp(a.create_cq(), a.create_cq());
    auto qb = b.create_qp(b.create_cq(), b.create_cq());
    FF_CHECK(rdma::connect_pair(*qa, *qb).is_ok());
    auto src = a.reg_mr(1 << 20);
    auto dst = b.reg_mr(1 << 20);
    fill_pattern(src->data().mutable_view(), 3);
    rdma::SendWr wr;
    wr.opcode = rdma::Opcode::write;
    wr.local = {src, 0, src->length()};
    wr.remote = {dst->rkey(), 0};
    const SimTime t0 = cluster.loop().now();
    FF_CHECK(qa->post_send(wr).is_ok());
    FF_CHECK(spin(cluster, [&]() { return check_pattern(dst->data().view(), 3); },
                  30 * k_second));
    json.add("raw_verbs_1mib_ns", static_cast<double>(cluster.loop().now() - t0));
    std::printf("%-34s %14s\n", "raw verbs (hardware path, Fig.5)",
                format_ns(static_cast<double>(cluster.loop().now() - t0)).c_str());
  }
  {
    FreeFlowRig rig(/*inter_host=*/true);
    const SimDuration t = freeflow_write_once(rig);
    json.add("freeflow_inter_1mib_ns", static_cast<double>(t));
    std::printf("%-34s %14s\n", "FreeFlow inter-host (Fig.6 flow)",
                format_ns(static_cast<double>(t)).c_str());
  }
  {
    FreeFlowRig rig(/*inter_host=*/false);
    const SimDuration t = freeflow_write_once(rig);
    json.add("freeflow_intra_1mib_ns", static_cast<double>(t));
    std::printf("%-34s %14s\n", "FreeFlow intra-host (Fig.7, shm)",
                format_ns(static_cast<double>(t)).c_str());
  }

  footer();
  std::printf("the same SendWr drives all three rows; the vNIC hides whether a\n"
              "QP is backed by hardware verbs, an agent relay, or an shm ring.\n");
  return 0;
}
