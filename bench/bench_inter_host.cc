// E8 / §2.3.2 (inter-host communication): two containers on different
// hosts — overlay vs host-mode TCP vs raw RDMA vs FreeFlow (which relays
// shm -> agent -> RDMA zero-copy). Throughput, CPU and latency.
#include "bench_common.h"

#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  banner("Inter-host: overlay vs host TCP vs RDMA vs FreeFlow",
         "§2.3.2 (inter-host) + §5 working flow (Fig. 6)");

  JsonReport json(argc, argv, "inter_host");

  constexpr SimDuration k_window = 50 * k_millisecond;
  constexpr std::size_t k_msg = 1 << 20;

  std::printf("%-22s %12s %12s %14s\n", "transport", "throughput", "host CPU",
              "64B RTT");

  {
    OverlayRig rig(2, 1, true);
    auto r = drive_tcp_stream(rig.env.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    OverlayRig rtt_rig(2, 1, true);
    auto rtt = tcp_rtt(rtt_rig.env.cluster, *rtt_rig.net, rtt_rig.endpoints[0].first,
                       {rtt_rig.endpoints[0].second.ip, 9100}, 64, 31);
    json.add("tcp_overlay_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s %9.0f %% %14s\n", "tcp (overlay mode)",
                r.goodput_gbps, r.host_cpu_cores * 100,
                format_ns(static_cast<double>(rtt)).c_str());
  }
  {
    TcpRig rig(TcpRig::Mode::host, 2, 1);
    auto r = drive_tcp_stream(rig.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    TcpRig rtt_rig(TcpRig::Mode::host, 2, 1);
    auto rtt = tcp_rtt(rtt_rig.cluster, *rtt_rig.net, rtt_rig.endpoints[0].first,
                       rtt_rig.endpoints[0].second, 64, 31);
    json.add("tcp_host_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s %9.0f %% %14s\n", "tcp (host mode)", r.goodput_gbps,
                r.host_cpu_cores * 100, format_ns(static_cast<double>(rtt)).c_str());
  }
  {
    fabric::Cluster cluster;
    cluster.add_hosts(2);
    rdma::RdmaDevice a(cluster.host(0)), b(cluster.host(1));
    auto r = drive_rdma_stream(cluster, a, b, 1, k_msg, k_window);
    fabric::Cluster c2;
    c2.add_hosts(2);
    rdma::RdmaDevice a2(c2.host(0)), b2(c2.host(1));
    auto rtt = rdma_rtt(c2, a2, b2, 64, 31);
    json.add("rdma_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s %9.0f %% %14s\n", "rdma (raw verbs)", r.goodput_gbps,
                r.host_cpu_cores * 100, format_ns(static_cast<double>(rtt)).c_str());
  }
  auto freeflow_row = [&](const char* name, fabric::NicCapabilities caps,
                          const char* note) {
    FreeFlowRig rig(/*inter_host=*/true, sim::CostModel{}, caps);
    auto r = drive_freeflow_stream(rig.env.cluster, rig.net_a, rig.net_b, rig.b->ip(),
                                   9000, k_msg, k_window);
    FreeFlowRig rtt_rig(true, sim::CostModel{}, caps);
    auto rtt = freeflow_rtt(rtt_rig.env.cluster, rtt_rig.net_a, rtt_rig.net_b,
                            rtt_rig.b->ip(), 9000, 64, 31);
    json.add(std::string(name) + " gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s %9.0f %% %14s   %s\n", name, r.goodput_gbps,
                r.host_cpu_cores * 100, format_ns(static_cast<double>(rtt)).c_str(),
                note);
  };
  // The orchestrator's full fallback ladder (paper §4.2: RDMA, DPDK or
  // TCP/IP depending on NIC capability), all through the SAME application
  // code and agents.
  freeflow_row("FreeFlow (rdma)", {}, "(shm->agent->RDMA)");
  freeflow_row("FreeFlow (dpdk)", {.rdma = false, .dpdk = true},
               "(no RDMA: PMD relay; +1 pinned core/host)");
  freeflow_row("FreeFlow (tcp)", {.rdma = false, .dpdk = false},
               "(commodity NICs: agent kernel TCP)");

  footer();
  std::printf("paper shape: FreeFlow reaches RDMA-class throughput across hosts\n"
              "while the overlay baseline is CPU-bound far below line rate.\n");
  return 0;
}
