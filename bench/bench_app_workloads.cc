// E10 / §1 motivation: application-level gains. A key-value store (GET-
// heavy, latency-sensitive) and a MapReduce shuffle (throughput-bound) run
// unchanged over the overlay baseline and over FreeFlow.
#include "bench_common.h"

#include "workloads/kv_store.h"
#include "workloads/shuffle.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

struct KvResult {
  double kops = 0;
  SimDuration p50 = 0;
  SimDuration p99 = 0;
};

KvResult run_kv(StreamPtr client_stream, fabric::Cluster& cluster, int ops) {
  KvServer unused_server;  // server side is wired by the caller
  (void)unused_server;
  auto client = std::make_shared<KvClient>(std::move(client_stream));
  client->set_clock([&cluster]() { return cluster.loop().now(); });

  // Load phase.
  int loaded = 0;
  for (int i = 0; i < 100; ++i) {
    client->put("key" + std::to_string(i), Buffer(512), [&](KvStatus) { ++loaded; });
  }
  FF_CHECK(spin(cluster, [&]() { return loaded == 100; }, 30 * k_second));

  // GET-heavy closed loop with pipeline depth 8.
  const SimTime start = cluster.loop().now();
  int completed = 0;
  int issued = 0;
  std::function<void()> issue = [&]() {
    while (issued - completed < 8 && issued < ops) {
      ++issued;
      client->get("key" + std::to_string(issued % 100), [&](KvStatus, Buffer&&) {
        ++completed;
        issue();
      });
    }
  };
  issue();
  FF_CHECK(spin(cluster, [&]() { return completed == ops; }, 300 * k_second));
  const double secs = static_cast<double>(cluster.loop().now() - start) / 1e9;

  KvResult out;
  out.kops = static_cast<double>(ops) / secs / 1e3;
  out.p50 = client->latency().p50();
  out.p99 = client->latency().p99();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Application workloads: KV store + MapReduce shuffle",
         "§1 motivation (key-value stores, big-data analytics)");

  JsonReport json(argc, argv, "app_workloads");

  constexpr int k_ops = 20000;

  // ---- KV store over the overlay baseline ------------------------------
  {
    OverlayRig rig(2, 1, /*inter_host=*/true);
    KvServer server;
    FF_CHECK(rig.net->listen({rig.endpoints[0].second.ip, 7000},
                             [&](tcp::TcpConnection::Ptr c) {
                               server.serve(std::make_shared<TcpStream>(c));
                             })
                 .is_ok());
    tcp::TcpConnection::Ptr conn;
    rig.net->connect(rig.endpoints[0].first, {rig.endpoints[0].second.ip, 7000},
                     [&](Result<tcp::TcpConnection::Ptr> c) {
                       FF_CHECK(c.is_ok());
                       conn = *c;
                     });
    FF_CHECK(spin(rig.env.cluster, [&]() { return conn != nullptr; }, 10 * k_second));
    auto r = run_kv(std::make_shared<TcpStream>(conn), rig.env.cluster, k_ops);
    json.add("kv_overlay_kops", r.kops);
    json.add("kv_overlay_p99_ns", static_cast<double>(r.p99));
    std::printf("%-26s %8.1f kops/s   p50 %-10s p99 %s\n", "KV over overlay",
                r.kops, format_ns(static_cast<double>(r.p50)).c_str(),
                format_ns(static_cast<double>(r.p99)).c_str());
  }

  // ---- KV store over FreeFlow ------------------------------------------
  {
    FreeFlowRig rig(/*inter_host=*/true);
    KvServer server;
    FF_CHECK(rig.net_b->sock_listen(7000, [&](core::FlowSocketPtr s) {
      server.serve(std::make_shared<FlowSocketStream>(s));
    }).is_ok());
    core::FlowSocketPtr sock;
    rig.net_a->sock_connect(rig.b->ip(), 7000, [&](Result<core::FlowSocketPtr> s) {
      FF_CHECK(s.is_ok());
      sock = *s;
    });
    FF_CHECK(spin(rig.env.cluster, [&]() { return sock != nullptr; }, 10 * k_second));
    auto r = run_kv(std::make_shared<FlowSocketStream>(sock), rig.env.cluster, k_ops);
    json.add("kv_freeflow_kops", r.kops);
    json.add("kv_freeflow_p99_ns", static_cast<double>(r.p99));
    std::printf("%-26s %8.1f kops/s   p50 %-10s p99 %s   (via %s)\n",
                "KV over FreeFlow", r.kops,
                format_ns(static_cast<double>(r.p50)).c_str(),
                format_ns(static_cast<double>(r.p99)).c_str(),
                orch::transport_name(sock->transport()).data());
  }

  // ---- Shuffle: 2 mappers x 2 reducers, 8 MiB per flow, 4 hosts ---------
  Shuffle::Config cfg;
  cfg.mappers = 2;
  cfg.reducers = 2;
  cfg.bytes_per_flow = 8 * 1024 * 1024;

  {
    // Overlay: mappers on hosts 0/1, reducers on hosts 2/3.
    OverlayRig rig(4, 0, false);
    std::vector<tcp::Ipv4Addr> mappers, reducers;
    for (int i = 0; i < cfg.mappers; ++i) {
      mappers.push_back(*rig.env.overlay_net.add_container(
          static_cast<fabric::HostId>(i), nullptr));
    }
    for (int i = 0; i < cfg.reducers; ++i) {
      reducers.push_back(*rig.env.overlay_net.add_container(
          static_cast<fabric::HostId>(2 + i), nullptr));
    }
    rig.env.loop().run();  // converge

    Shuffle shuffle(cfg, [&](int m, int r, std::function<void(Result<StreamPtr>)> cb) {
      rig.net->connect({mappers[static_cast<std::size_t>(m)], 0},
                       {reducers[static_cast<std::size_t>(r)], 8000},
                       [cb = std::move(cb)](Result<tcp::TcpConnection::Ptr> c) {
                         if (!c.is_ok()) {
                           cb(c.status());
                           return;
                         }
                         cb(StreamPtr(std::make_shared<TcpStream>(*c)));
                       });
    });
    auto sink = shuffle.reducer_sink();
    for (auto r : reducers) {
      FF_CHECK(rig.net->listen({r, 8000}, [sink](tcp::TcpConnection::Ptr c) {
        sink(std::make_shared<TcpStream>(c));
      }).is_ok());
    }
    SimDuration elapsed = 0;
    shuffle.run([&]() { return rig.env.loop().now(); },
                [&](Result<SimDuration> e) {
                  FF_CHECK(e.is_ok());
                  elapsed = *e;
                });
    FF_CHECK(spin(rig.env.cluster, [&]() { return elapsed != 0; }, 600 * k_second));
    json.add("shuffle_overlay_ns", static_cast<double>(elapsed));
    std::printf("%-26s completion %-10s (%.1f Gb/s aggregate)\n",
                "shuffle over overlay", format_ns(static_cast<double>(elapsed)).c_str(),
                throughput_gbps(shuffle.bytes_expected_total(), elapsed));
  }
  {
    // FreeFlow: same placement.
    BenchEnv env(4);
    std::vector<orch::ContainerPtr> ms, rs;
    std::vector<core::ContainerNetPtr> mnets, rnets;
    env.freeflow();
    for (int i = 0; i < cfg.mappers; ++i) {
      ms.push_back(env.deploy("m" + std::to_string(i), 1, static_cast<fabric::HostId>(i)));
      mnets.push_back(env.ff->attach(ms.back()->id()).value());
    }
    for (int i = 0; i < cfg.reducers; ++i) {
      rs.push_back(env.deploy("r" + std::to_string(i), 1,
                              static_cast<fabric::HostId>(2 + i)));
      rnets.push_back(env.ff->attach(rs.back()->id()).value());
    }
    Shuffle shuffle(cfg, [&](int m, int r, std::function<void(Result<StreamPtr>)> cb) {
      mnets[static_cast<std::size_t>(m)]->sock_connect(
          rs[static_cast<std::size_t>(r)]->ip(), 8000,
          [cb = std::move(cb)](Result<core::FlowSocketPtr> s) {
            if (!s.is_ok()) {
              cb(s.status());
              return;
            }
            cb(StreamPtr(std::make_shared<FlowSocketStream>(*s)));
          });
    });
    auto sink = shuffle.reducer_sink();
    for (auto& rn : rnets) {
      FF_CHECK(rn->sock_listen(8000, [sink](core::FlowSocketPtr s) {
        sink(std::make_shared<FlowSocketStream>(s));
      }).is_ok());
    }
    SimDuration elapsed = 0;
    shuffle.run([&]() { return env.loop().now(); }, [&](Result<SimDuration> e) {
      FF_CHECK(e.is_ok());
      elapsed = *e;
    });
    FF_CHECK(spin(env.cluster, [&]() { return elapsed != 0; }, 600 * k_second));
    json.add("shuffle_freeflow_ns", static_cast<double>(elapsed));
    std::printf("%-26s completion %-10s (%.1f Gb/s aggregate)\n",
                "shuffle over FreeFlow", format_ns(static_cast<double>(elapsed)).c_str(),
                throughput_gbps(shuffle.bytes_expected_total(), elapsed));
  }

  footer();
  std::printf("paper shape: FreeFlow lifts both the latency-sensitive KV and the\n"
              "bandwidth-bound shuffle well past the overlay baseline.\n");
  return 0;
}
