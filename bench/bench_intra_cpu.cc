// E4 / Fig. "eval_baremetal_cpu" (§2.3.1): CPU burned by a streaming
// container pair. Paper: TCP via bridge "uses near to 200% of cpu"
// (saturates ~2 cores); RDMA has low host CPU; shm "still burns some cpu".
#include "bench_common.h"

#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  banner("Intra-host CPU usage while streaming, 1 container pair",
         "Fig. eval_baremetal_cpu (paper: TCP ~200%, RDMA low, shm some)");

  JsonReport json(argc, argv, "intra_cpu");

  constexpr SimDuration k_window = 50 * k_millisecond;
  constexpr std::size_t k_msg = 1 << 20;

  std::printf("%-22s %12s %12s %12s\n", "transport", "throughput", "host CPU",
              "NIC proc");

  auto row = [&json](const char* name, const ThroughputReport& r,
                    const char* note = "") {
    json.add(std::string(name) + " gbps", r.goodput_gbps);
    json.add(std::string(name) + " host_cpu_cores", r.host_cpu_cores);
    std::printf("%-22s %8.1f Gb/s %9.0f %% %9.0f %%  %s\n", name, r.goodput_gbps,
                r.host_cpu_cores * 100.0, r.nic_proc_util * 100.0, note);
  };

  {
    OverlayRig rig(1, 1, false);
    row("tcp (overlay mode)",
        drive_tcp_stream(rig.env.cluster, *rig.net, rig.endpoints, k_msg, k_window),
        "(2 stacks + router)");
  }
  {
    TcpRig rig(TcpRig::Mode::bridge, 1, 1);
    row("tcp (bridge mode)",
        drive_tcp_stream(rig.cluster, *rig.net, rig.endpoints, k_msg, k_window),
        "(the paper's ~200%)");
  }
  {
    TcpRig rig(TcpRig::Mode::host, 1, 1);
    row("tcp (host mode)",
        drive_tcp_stream(rig.cluster, *rig.net, rig.endpoints, k_msg, k_window));
  }
  {
    fabric::Cluster cluster;
    cluster.add_hosts(1);
    rdma::RdmaDevice dev(cluster.host(0));
    row("rdma (intra-host)", drive_rdma_stream(cluster, dev, dev, 1, k_msg, k_window),
        "(work lives on the NIC)");
  }
  {
    fabric::Cluster cluster;
    cluster.add_hosts(1);
    row("shared memory", drive_shm_stream(cluster, 0, 1, k_msg, k_window),
        "(copies still burn CPU)");
  }
  {
    FreeFlowRig rig(false);
    row("FreeFlow (intra-host)",
        drive_freeflow_stream(rig.env.cluster, rig.net_a, rig.net_b, rig.b->ip(), 9000,
                              k_msg, k_window));
    // Who burned the cycles: the per-account breakdown (containers do the
    // copies; the agent only brokered setup for the intra-host case).
    const double window_ns = static_cast<double>(rig.env.loop().now());
    std::printf("  breakdown:  %-12s %5.0f %%   %-12s %5.0f %%   %-12s %5.0f %%\n",
                rig.a->name().c_str(), rig.a->account().busy_ns / window_ns * 100,
                rig.b->name().c_str(), rig.b->account().busy_ns / window_ns * 100,
                "agent@host0",
                rig.env.ff->agents().agent_on(0).account().busy_ns / window_ns * 100);
  }

  footer();
  return 0;
}
