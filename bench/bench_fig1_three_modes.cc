// E1 / Figure 1 ("intro_exist2"): throughput and latency of the two
// container networking modes (host, overlay) against shared-memory IPC —
// the paper's opening demonstration of the portability/performance tussle.
#include "bench_common.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  banner("Fig. 1: host mode vs overlay mode vs shared-memory IPC",
         "Figure 1 (intro_exist2.pdf), one host, 2 containers");

  JsonReport json(argc, argv, "fig1_three_modes");

  constexpr SimDuration k_window = 50 * k_millisecond;
  constexpr std::size_t k_msg = 1 << 20;

  std::printf("%-16s %14s %16s %16s\n", "mode", "throughput", "64B RTT",
              "1MiB transfer");

  // Shared-memory IPC (specially-set-up containers, least isolation).
  {
    fabric::Cluster cluster;
    cluster.add_hosts(1);
    auto report = drive_shm_stream(cluster, 0, 1, k_msg, k_window);
    const SimDuration rtt = shm_rtt(cluster, 0, 64, 31);
    const SimDuration big = shm_rtt(cluster, 0, 1 << 20, 11);
    json.add("shm_gbps", report.goodput_gbps);
    json.add("shm_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-16s %10.1f Gb/s %16s %16s\n", "shared-memory", report.goodput_gbps,
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }

  // Host mode: container binds the host IP (ports shared).
  {
    TcpRig rig(TcpRig::Mode::host, 1, 1);
    auto report = drive_tcp_stream(rig.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    TcpRig rtt_rig(TcpRig::Mode::host, 1, 1);
    const SimDuration rtt = tcp_rtt(rtt_rig.cluster, *rtt_rig.net,
                                    rtt_rig.endpoints[0].first,
                                    rtt_rig.endpoints[0].second, 64, 31);
    TcpRig big_rig(TcpRig::Mode::host, 1, 1);
    const SimDuration big = tcp_rtt(big_rig.cluster, *big_rig.net,
                                    big_rig.endpoints[0].first,
                                    big_rig.endpoints[0].second, 1 << 20, 11);
    json.add("host_gbps", report.goodput_gbps);
    json.add("host_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-16s %10.1f Gb/s %16s %16s\n", "host mode", report.goodput_gbps,
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }

  // Overlay mode: full portability, double hairpin through the router.
  {
    OverlayRig rig(1, 1, /*inter_host=*/false);
    auto report =
        drive_tcp_stream(rig.env.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    OverlayRig rtt_rig(1, 1, false);
    const SimDuration rtt =
        tcp_rtt(rtt_rig.env.cluster, *rtt_rig.net, rtt_rig.endpoints[0].first,
                {rtt_rig.endpoints[0].second.ip, 9100}, 64, 31);
    OverlayRig big_rig(1, 1, false);
    const SimDuration big =
        tcp_rtt(big_rig.env.cluster, *big_rig.net, big_rig.endpoints[0].first,
                {big_rig.endpoints[0].second.ip, 9200}, 1 << 20, 11);
    json.add("overlay_gbps", report.goodput_gbps);
    json.add("overlay_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-16s %10.1f Gb/s %16s %16s\n", "overlay mode", report.goodput_gbps,
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }

  footer();
  std::printf("paper shape: both TCP modes are far below shm IPC, and overlay\n"
              "is worse than host mode (the hairpin happens twice).\n");
  return 0;
}
