// E9 / Table 1 (commented in the paper source): the network orchestrator's
// suggested transport for each deployment case of Fig. 2 under each
// constraint row (no constraint / no trust / no RDMA NIC).
#include "bench_common.h"

using namespace freeflow;
using namespace freeflow::bench;

namespace {

std::string run_case(bool same_host, bool vms, bool trusted, bool rdma_nic) {
  fabric::NicCapabilities caps;
  caps.rdma = rdma_nic;
  caps.dpdk = false;
  BenchEnv env(2, sim::CostModel{}, caps);
  if (vms) {
    env.cluster.host(0).set_physical_machine(10);
    env.cluster.host(1).set_physical_machine(11);
  }
  auto a = env.deploy("a", 1, 0);
  auto b = env.deploy("b", trusted ? 1 : 2, same_host ? 0 : 1);
  auto d = env.net_orch->decide(a->id(), b->id());
  FF_CHECK(d.is_ok());
  return std::string(orch::transport_name(d->transport));
}

void print_row(const char* constraint, bool trusted, bool rdma_nic) {
  const std::string a = run_case(true, false, trusted, rdma_nic);
  const std::string b = run_case(false, false, trusted, rdma_nic);
  const std::string c = run_case(true, true, trusted, rdma_nic);
  const std::string d = run_case(false, true, trusted, rdma_nic);
  std::printf("%-14s | %-12s %-12s %-12s %-12s\n", constraint, a.c_str(), b.c_str(),
              c.c_str(), d.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  banner("Transport decision matrix",
         "Table 1 (commented in paper source): best transport per case");

  JsonReport json(argc, argv, "decision_matrix");
  json.add("rows", 3);

  std::printf("%-14s | %-12s %-12s %-12s %-12s\n", "constraint", "(a) same BM",
              "(b) diff BM", "(c) same VM", "(d) diff VM");
  print_row("none", /*trusted=*/true, /*rdma_nic=*/true);
  print_row("w/o trust", /*trusted=*/false, /*rdma_nic=*/true);
  print_row("w/o RDMA NIC", /*trusted=*/true, /*rdma_nic=*/false);

  footer();
  std::printf("paper Table 1:  none       -> SharedMem / RDMA / SharedMem / RDMA\n");
  std::printf("                w/o trust  -> TCP/IP everywhere (overlay)\n");
  std::printf("                w/o RDMA   -> SharedMem / TCP/IP / SharedMem / TCP/IP\n");
  return 0;
}
