// E2 / Fig. "eval_baremetal_thr" (§2.3.1): intra-host throughput of a
// container pair over every data plane. Paper claims: bridge TCP ≈27 Gb/s,
// RDMA ≈40 Gb/s (NIC line rate, even intra-host via hairpin), shared memory
// near memory bandwidth. FreeFlow rows added to show it matches the best.
#include "bench_common.h"

#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  banner("Intra-host throughput, 1 container pair, 1 MiB messages",
         "Fig. eval_baremetal_thr (paper: 27 / 40 / ~memBW Gb/s)");

  JsonReport json(argc, argv, "intra_throughput");

  constexpr SimDuration k_window = 50 * k_millisecond;
  constexpr std::size_t k_msg = 1 << 20;

  std::printf("%-22s %12s\n", "transport", "throughput");

  {
    OverlayRig rig(1, 1, false);
    auto r = drive_tcp_stream(rig.env.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    json.add("tcp_overlay_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s\n", "tcp (overlay mode)", r.goodput_gbps);
  }
  {
    TcpRig rig(TcpRig::Mode::bridge, 1, 1);
    auto r = drive_tcp_stream(rig.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    json.add("tcp_bridge_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s\n", "tcp (bridge mode)", r.goodput_gbps);
  }
  {
    TcpRig rig(TcpRig::Mode::host, 1, 1);
    auto r = drive_tcp_stream(rig.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    json.add("tcp_host_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s\n", "tcp (host mode)", r.goodput_gbps);
  }
  {
    fabric::Cluster cluster;
    cluster.add_hosts(1);
    rdma::RdmaDevice dev(cluster.host(0));
    auto r = drive_rdma_stream(cluster, dev, dev, 1, k_msg, k_window);
    json.add("rdma_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s   (NIC hairpin: capped at line rate)\n",
                "rdma (intra-host)", r.goodput_gbps);
  }
  {
    fabric::Cluster cluster;
    cluster.add_hosts(1);
    auto r = drive_shm_stream(cluster, 0, 1, k_msg, k_window);
    json.add("shm_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s   (near memory bandwidth)\n", "shared memory",
                r.goodput_gbps);
  }
  {
    FreeFlowRig rig(/*inter_host=*/false);
    auto r = drive_freeflow_stream(rig.env.cluster, rig.net_a, rig.net_b, rig.b->ip(),
                                   9000, k_msg, k_window);
    json.add("freeflow_gbps", r.goodput_gbps);
    std::printf("%-22s %8.1f Gb/s   (transparently picked shm)\n",
                "FreeFlow (intra-host)", r.goodput_gbps);
  }

  footer();
  return 0;
}
