// Failover blackout and goodput dip, one row per failover edge: kill the
// transport a live transfer is riding and measure how long the receiver
// goes silent, what the fallback lane sustains, and whether the conduit
// re-upgrades once the fault heals. shm is excluded — co-located pairs
// have no NIC in the path, so NIC faults cannot sever them.
#include "bench_common.h"

#include "common/logging.h"
#include "faults/fault_injector.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

struct EdgeResult {
  double baseline_gbps = 0;
  double blackout_ms = 0;
  double fallback_gbps = 0;
  bool recovered = false;
  std::uint64_t retransmits = 0;      ///< client-conduit, per its own counter
  double conduit_blackout_ms = 0;     ///< client-conduit detached time
  std::string telemetry_snapshot;     ///< registry JSON at end of edge
};

/// One failover edge: stream over `from`, kill it on host 1, ride `to`,
/// heal, and expect the conduit back on `from`. A non-empty `trace_path`
/// exports the edge's Chrome trace (fault markers + failover spans).
EdgeResult run_edge(const char* label, fabric::NicCapabilities caps,
                    orch::Transport from, orch::Transport to,
                    faults::FaultKind kill, faults::FaultKind heal,
                    const std::string& trace_path = {}) {
  constexpr SimDuration k_window = 10 * k_millisecond;
  EdgeResult r;
  FreeFlowRig rig(/*inter_host=*/true, {}, caps);
  auto& cluster = rig.env.cluster;
  faults::FaultInjector injector(*rig.env.net_orch, rig.env.ff->agents());

  core::FlowSocketPtr client, server;
  std::uint64_t received = 0;
  SimTime last_rx = 0;
  SimDuration max_gap = 0;  // longest rx silence while the gap tracker is armed
  bool track_gaps = false;
  FF_CHECK(rig.net_b->sock_listen(5000, [&](core::FlowSocketPtr s) {
    server = s;
    s->set_on_data([&](Buffer&& b) {
      received += b.size();
      const SimTime now = cluster.loop().now();
      if (track_gaps && now - last_rx > max_gap) max_gap = now - last_rx;
      last_rx = now;
    });
  }).is_ok());
  rig.net_a->sock_connect(rig.b->ip(), 5000, [&](Result<core::FlowSocketPtr> s) {
    FF_CHECK(s.is_ok());
    client = *s;
  });
  FF_CHECK(spin(cluster, [&]() { return client && server; }, 10 * k_second));
  FF_CHECK(client->transport() == from);

  auto pump = std::make_shared<std::function<void()>>();
  core::FlowSocket* raw = client.get();
  *pump = [raw]() {
    while (raw->writable()) FF_CHECK(raw->send(Buffer(1 << 20)).is_ok());
  };
  client->set_on_space([pump]() { (*pump)(); });
  (*pump)();
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&cluster, pump, tick]() {
    (*pump)();
    cluster.loop().schedule(50 * k_microsecond, [tick]() { (*tick)(); });
  };
  (*tick)();

  // Baseline on the primary transport.
  const SimTime t0 = cluster.loop().now();
  const std::uint64_t bytes0 = received;
  cluster.loop().run_until(t0 + k_window);
  r.baseline_gbps = throughput_gbps(received - bytes0, k_window);

  // Kill the primary on the remote host mid-transfer. The blackout is the
  // longest receiver silence from the fault until the fallback window ends
  // (detection + re-decision + trunk setup + retransmit of the lost tail).
  last_rx = cluster.loop().now();
  max_gap = 0;
  track_gaps = true;
  injector.apply({cluster.loop().now(), kill, 1});
  FF_CHECK(spin(cluster, [&]() { return client->transport() == to; }, 10 * k_second));

  const SimTime t1 = cluster.loop().now();
  const std::uint64_t bytes1 = received;
  cluster.loop().run_until(t1 + k_window);
  r.fallback_gbps = throughput_gbps(received - bytes1, k_window);
  track_gaps = false;
  r.blackout_ms = static_cast<double>(max_gap) / static_cast<double>(k_millisecond);

  // Heal and expect the conduit to climb back onto the primary.
  injector.apply({cluster.loop().now(), heal, 1});
  r.recovered =
      spin(cluster, [&]() { return client->transport() == from; }, 10 * k_second);

  // Cross-check the telemetry registry against the conduit's own counters:
  // the snapshot embedded in --json must agree with what the bench measured.
  const auto& metrics = cluster.telemetry().metrics();
  for (const auto& info : rig.net_a->connections()) {
    const std::string base = "conduit/" + std::to_string(info.token) + "/c" +
                             std::to_string(rig.a->id()) + "/";
    FF_CHECK(metrics.counter_value(base + "retransmits") == info.retransmits);
    FF_CHECK(metrics.counter_value(base + "blackout_ns") ==
             static_cast<std::uint64_t>(info.blackout_ns));
    r.retransmits += info.retransmits;
    r.conduit_blackout_ms += static_cast<double>(info.blackout_ns) /
                             static_cast<double>(k_millisecond);
  }
  r.telemetry_snapshot = metrics.snapshot_json();
  if (!trace_path.empty()) {
    if (cluster.telemetry().tracer().export_to_file(trace_path)) {
      std::printf("chrome trace: %s (%zu events)\n", trace_path.c_str(),
                  cluster.telemetry().tracer().size());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
    }
  }

  std::printf("%-16s %10.1f %12.3f %12.1f %10s\n", label, r.baseline_gbps,
              r.blackout_ms, r.fallback_gbps, r.recovered ? "yes" : "NO");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Transport failover: blackout and goodput per edge",
         "fault-tolerance extension (orchestrator-driven failover)");
  JsonReport json(argc, argv, "failover");
  // --trace PATH: Chrome-trace export of the first kill-rdma edge (fault
  // markers, mark_stale -> rebind -> retransmit -> re-upgrade timeline).
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") trace_path = argv[i + 1];
  }
  // Blackouts legitimately drop packets and retry re-binds; the warn spam
  // is the fault model working, not a problem worth 100 lines of output.
  set_log_level(LogLevel::error);

  std::printf("%-16s %10s %12s %12s %10s\n", "edge", "base Gb/s", "blackout ms",
              "fallbk Gb/s", "recovered");

  fabric::NicCapabilities no_dpdk;
  no_dpdk.dpdk = false;
  fabric::NicCapabilities no_rdma;
  no_rdma.rdma = false;
  const struct {
    const char* label;
    fabric::NicCapabilities caps;
    orch::Transport from, to;
    faults::FaultKind kill, heal;
  } edges[] = {
      {"rdma->tcp_host", no_dpdk, orch::Transport::rdma, orch::Transport::tcp_host,
       faults::FaultKind::rdma_down, faults::FaultKind::rdma_up},
      {"rdma->dpdk", {}, orch::Transport::rdma, orch::Transport::dpdk,
       faults::FaultKind::rdma_down, faults::FaultKind::rdma_up},
      {"dpdk->tcp_host", no_rdma, orch::Transport::dpdk, orch::Transport::tcp_host,
       faults::FaultKind::dpdk_down, faults::FaultKind::dpdk_up},
  };
  for (const auto& e : edges) {
    const bool want_trace = !trace_path.empty() && e.kill == faults::FaultKind::rdma_down;
    const EdgeResult r =
        run_edge(e.label, e.caps, e.from, e.to, e.kill, e.heal,
                 want_trace ? trace_path : std::string());
    if (want_trace) trace_path.clear();  // one export: the first rdma kill
    std::string key(e.label);
    key.replace(key.find("->"), 2, "_to_");
    json.add(key + "_baseline_gbps", r.baseline_gbps);
    json.add(key + "_blackout_ms", r.blackout_ms);
    json.add(key + "_fallback_gbps", r.fallback_gbps);
    json.add(key + "_recovered", r.recovered ? 1 : 0);
    json.add(key + "_retransmits", static_cast<double>(r.retransmits));
    json.add(key + "_conduit_blackout_ms", r.conduit_blackout_ms);
    json.add_raw("telemetry_" + key, r.telemetry_snapshot);
  }

  footer();
  std::printf("blackout = longest receiver silence after the kill: detection,\n"
              "re-decision against the orchestrator's health map, fallback trunk\n"
              "setup and the retransmit of the lost in-flight tail.\n");
  return 0;
}
