// E14 (extension beyond the paper's figures): control-plane costs — the
// part of FreeFlow the paper argues is cheap because it is off the data
// path. Measures (1) overlay route convergence vs cluster size, (2)
// FreeFlow channel setup latency per transport, (3) what the library's
// location/decision cache saves per connection setup.
#include "bench_common.h"

using namespace freeflow;
using namespace freeflow::bench;

namespace {
bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}
}  // namespace

int main(int argc, char** argv) {
  banner("Control plane: convergence, setup latency, cache effectiveness",
         "extension: §4.1 'centralized control-plane' costs quantified");

  JsonReport json(argc, argv, "control_plane");

  // ---- 1. BGP-lite route convergence vs cluster size ---------------------
  std::printf("route convergence (announce one container, all routers learn):\n");
  std::printf("%8s %16s\n", "hosts", "convergence");
  for (int hosts : {2, 8, 32, 128}) {
    fabric::Cluster cluster;
    cluster.add_hosts(hosts);
    overlay::OverlayNetwork overlay(cluster, {tcp::Ipv4Addr(10, 244, 0, 0), 16});
    for (int h = 0; h < hosts; ++h) {
      overlay.attach_host(static_cast<fabric::HostId>(h));
    }
    auto ip = overlay.add_container(0, nullptr);
    FF_CHECK(ip.is_ok());
    const SimTime start = cluster.loop().now();
    const bool converged = spin(cluster, [&]() {
      for (int h = 1; h < hosts; ++h) {
        if (!overlay.router(static_cast<fabric::HostId>(h))->route(*ip).has_value()) {
          return false;
        }
      }
      return true;
    }, k_second);
    FF_CHECK(converged);
    json.add("convergence_ns_" + std::to_string(hosts) + "hosts",
             static_cast<double>(cluster.loop().now() - start));
    std::printf("%8d %16s\n", hosts,
                format_ns(static_cast<double>(cluster.loop().now() - start)).c_str());
  }

  // ---- 2. FreeFlow channel setup latency per transport -------------------
  std::printf("\nchannel setup latency (sock_connect -> connected), cold cache:\n");
  std::printf("%-14s %16s\n", "transport", "setup");
  struct Case {
    const char* name;
    bool inter_host;
    fabric::NicCapabilities caps;
  };
  for (const Case& c : {Case{"shm", false, {}},
                        Case{"rdma", true, {}},
                        Case{"dpdk", true, {.rdma = false, .dpdk = true}},
                        Case{"tcp-host", true, {.rdma = false, .dpdk = false}}}) {
    FreeFlowRig rig(c.inter_host, sim::CostModel{}, c.caps);
    FF_CHECK(rig.net_b->sock_listen(5000, [](core::FlowSocketPtr s) {
      static std::vector<core::FlowSocketPtr> keep;
      keep.push_back(std::move(s));
    }).is_ok());
    core::FlowSocketPtr sock;
    const SimTime start = rig.env.loop().now();
    rig.net_a->sock_connect(rig.b->ip(), 5000, [&](Result<core::FlowSocketPtr> s) {
      FF_CHECK(s.is_ok());
      sock = *s;
    });
    FF_CHECK(spin(rig.env.cluster, [&]() { return sock != nullptr; }, 10 * k_second));
    json.add(std::string(c.name) + "_setup_ns",
             static_cast<double>(rig.env.loop().now() - start));
    std::printf("%-14s %16s   (via %s)\n", c.name,
                format_ns(static_cast<double>(rig.env.loop().now() - start)).c_str(),
                orch::transport_name(sock->transport()).data());
  }

  // ---- 3. selector cache: first vs subsequent connects -------------------
  std::printf("\nlocation/decision cache (second connect reuses the cached\n"
              "orchestrator answer AND the established trunk):\n");
  {
    FreeFlowRig rig(true);
    FF_CHECK(rig.net_b->sock_listen(5000, [](core::FlowSocketPtr s) {
      static std::vector<core::FlowSocketPtr> keep;
      keep.push_back(std::move(s));
    }).is_ok());
    for (int attempt = 1; attempt <= 3; ++attempt) {
      core::FlowSocketPtr sock;
      const SimTime start = rig.env.loop().now();
      rig.net_a->sock_connect(rig.b->ip(), 5000, [&](Result<core::FlowSocketPtr> s) {
        FF_CHECK(s.is_ok());
        sock = *s;
      });
      FF_CHECK(spin(rig.env.cluster, [&]() { return sock != nullptr; }, 10 * k_second));
      std::printf("  connect #%d: %10s   (cache hits=%llu misses=%llu)\n", attempt,
                  format_ns(static_cast<double>(rig.env.loop().now() - start)).c_str(),
                  static_cast<unsigned long long>(rig.env.ff->selector().cache_hits()),
                  static_cast<unsigned long long>(rig.env.ff->selector().cache_misses()));
    }
  }

  footer();
  std::printf("the control plane stays in the microsecond-to-millisecond range\n"
              "and off the per-message path — the paper's premise for making the\n"
              "orchestrator (conceptually) centralized.\n");
  return 0;
}
