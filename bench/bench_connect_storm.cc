// Connect storm: every container in the cluster declares a flow on the
// same tick. This is the control-plane worst case — thousands of
// simultaneous decide RPCs funnelling into a handful of per-host-pair
// trunk setups — and the scenario the race-free establishment machinery
// plus selector batching exist for. The gate is strict: zero failed
// establishments, and a p99 setup latency held to the committed baseline.
#include "bench_common.h"

#include <cstdlib>
#include <cstring>

using namespace freeflow;
using namespace freeflow::bench;

namespace {

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  int flows = 1000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--flows") == 0) flows = std::atoi(argv[i + 1]);
  }

  banner("Connect storm: simultaneous flow declarations",
         "robustness extension: §4.1 control plane under fan-in");
  JsonReport json(argc, argv, "connect_storm");

  constexpr int k_hosts = 16;
  BenchEnv env(k_hosts);
  // The storm measures the control plane, not bulk transfer: small lane
  // rings keep thousands of idle channels from dominating wall time with
  // allocation churn without touching the setup path under test.
  agent::AgentConfig config;
  config.lane_ring_bytes = 64 * 1024;
  config.fragment_bytes = 16 * 1024;
  auto& ff = env.freeflow(config);

  // One container per flow, round-robin over hosts: container i dials
  // container i+1, so every host pair (h, h+1) funnels ~flows/16 setups
  // into ONE trunk — maximum contention on the establishment path.
  std::vector<orch::ContainerPtr> containers;
  std::vector<core::ContainerNetPtr> nets;
  containers.reserve(static_cast<std::size_t>(flows));
  nets.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    containers.push_back(env.deploy("c" + std::to_string(i), 1,
                                    static_cast<fabric::HostId>(i % k_hosts)));
    nets.push_back(ff.attach(containers.back()->id()).value());
  }
  std::vector<core::FlowSocketPtr> accepted;
  accepted.reserve(static_cast<std::size_t>(flows));
  for (auto& net : nets) {
    FF_CHECK(net->sock_listen(9000, [&accepted](core::FlowSocketPtr s) {
      accepted.push_back(std::move(s));
    }).is_ok());
  }

  // Declare every flow before the loop steps: all of them see the cold
  // cache, all of them race on the same trunks, all on one tick. Even
  // flows dial forward (host h -> h+1) while odd flows dial backward
  // (h -> h-1), so every adjacent host pair gets same-tick setups in BOTH
  // directions — the bidirectional-race schedule, a thousand times over.
  Histogram setup_latency;
  std::vector<core::FlowSocketPtr> socks(static_cast<std::size_t>(flows));
  int connected = 0;
  int failed = 0;
  const SimTime storm_start = env.loop().now();
  for (int i = 0; i < flows; ++i) {
    const auto dst = static_cast<std::size_t>(
        (i % 2 == 0 ? i + 1 : i - 1 + flows) % flows);
    nets[static_cast<std::size_t>(i)]->sock_connect(
        containers[dst]->ip(), 9000,
        [&, i](Result<core::FlowSocketPtr> s) {
          if (!s.is_ok()) {
            ++failed;
            std::fprintf(stderr, "flow %d failed: %s\n", i,
                         s.status().to_string().c_str());
            return;
          }
          socks[static_cast<std::size_t>(i)] = *s;
          setup_latency.record(
              static_cast<std::int64_t>(env.loop().now() - storm_start));
          ++connected;
        });
  }
  FF_CHECK(spin(env.cluster, [&]() { return connected + failed == flows; },
                600 * k_second));

  auto& metrics = env.cluster.telemetry().metrics();
  // Selector stats are per-agent now: sum over every host's cache.
  std::uint64_t selector_misses = 0;
  std::uint64_t selector_rounds = 0;
  for (int h = 0; h < k_hosts; ++h) {
    const auto& sel = ff.selector_on(static_cast<fabric::HostId>(h));
    selector_misses += sel.cache_misses();
    selector_rounds += sel.rpc_rounds();
  }

  std::printf("%8s %10s %12s %12s %12s %12s\n", "flows", "failed", "p50", "p99",
              "p999", "max");
  std::printf("%8d %10d %12s %12s %12s %12s\n", flows, failed,
              format_ns(static_cast<double>(setup_latency.p50())).c_str(),
              format_ns(static_cast<double>(setup_latency.p99())).c_str(),
              format_ns(static_cast<double>(setup_latency.p999())).c_str(),
              format_ns(static_cast<double>(setup_latency.max())).c_str());
  std::printf("\nselectors: %llu misses collapsed into %llu shard RPC rounds "
              "(%llu coalesced) across %d agents\n",
              static_cast<unsigned long long>(selector_misses),
              static_cast<unsigned long long>(selector_rounds),
              static_cast<unsigned long long>(
                  metrics.counter_value("selector/decide_coalesced")),
              k_hosts);
  std::uint64_t retries = 0;
  std::uint64_t races = 0;
  for (int h = 0; h < k_hosts; ++h) {
    const std::string prefix = "agent/" + std::to_string(h) + "/trunk/";
    retries += metrics.counter_value(prefix + "setup_retries");
    races += metrics.counter_value(prefix + "setup_races_resolved");
  }
  std::printf("trunks: %llu setup races resolved, %llu retries across %d agents\n",
              static_cast<unsigned long long>(races),
              static_cast<unsigned long long>(retries), k_hosts);

  json.add("flows", flows);
  json.add("failed", failed);
  json.add("setup_p50_ns", static_cast<double>(setup_latency.p50()));
  json.add("setup_p99_ns", static_cast<double>(setup_latency.p99()));
  json.add("setup_p999_ns", static_cast<double>(setup_latency.p999()));
  json.add("setup_max_ns", static_cast<double>(setup_latency.max()));
  json.add("decide_rpc_rounds", static_cast<double>(selector_rounds));
  json.add("decide_coalesced",
           static_cast<double>(metrics.counter_value("selector/decide_coalesced")));
  json.add("trunk_setup_races_resolved", static_cast<double>(races));
  json.add("trunk_setup_retries", static_cast<double>(retries));
  json.add_raw("telemetry", metrics.snapshot_json());

  footer();
  std::printf("every declaration must land: the storm is survivable precisely\n"
              "because opposite-direction setups merge instead of clobbering.\n");
  return failed == 0 ? 0 : 1;
}
