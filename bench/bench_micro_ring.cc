// M1: real wall-clock micro-benchmark of the lock-free SPSC ring that
// backs FreeFlow's shm channels, driven by two actual OS threads
// (google-benchmark). This is the one bench measuring the machine it runs
// on rather than the simulated testbed.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "shm/spsc_ring.h"

namespace {

using freeflow::Buffer;
using freeflow::shm::SpscRing;

void BM_RingPushPopSameThread(benchmark::State& state) {
  const auto msg_size = static_cast<std::size_t>(state.range(0));
  SpscRing ring(1 << 20);
  Buffer msg(msg_size);
  Buffer out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(msg.view()));
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msg_size));
}
BENCHMARK(BM_RingPushPopSameThread)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_RingTwoThreads(benchmark::State& state) {
  const auto msg_size = static_cast<std::size_t>(state.range(0));
  SpscRing ring(1 << 22);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> consumed{0};

  std::thread consumer([&]() {
    Buffer out;
    while (!stop.load(std::memory_order_relaxed)) {
      if (ring.try_pop(out)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (ring.try_pop(out)) {
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Buffer msg(msg_size);
  std::uint64_t produced = 0;
  for (auto _ : state) {
    while (!ring.try_push(msg.view())) {
      // ring full: consumer catching up
    }
    ++produced;
  }
  stop.store(true);
  consumer.join();
  if (consumed.load() != produced) state.SkipWithError("lost messages");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msg_size));
}
BENCHMARK(BM_RingTwoThreads)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Accepts the harness-wide `--json <path>` flag by mapping it onto
// google-benchmark's native JSON reporter.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag = "--benchmark_out_format=json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
      break;
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
