// E3 / Fig. "eval_baremetal_latency" (§2.3.1): intra-host latency per data
// plane. Paper claims shm achieves the lowest latency, while TCP sits near
// 1 ms (large messages); we report both 64 B RTT and 1 MiB completion.
#include "bench_common.h"

#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  banner("Intra-host latency, 1 container pair",
         "Fig. eval_baremetal_latency (paper: shm lowest; TCP ~1ms large)");

  JsonReport json(argc, argv, "intra_latency");

  std::printf("%-22s %14s %18s\n", "transport", "64B RTT", "1MiB one-way");

  {
    OverlayRig r1(1, 1, false);
    const auto rtt = tcp_rtt(r1.env.cluster, *r1.net, r1.endpoints[0].first,
                             {r1.endpoints[0].second.ip, 9100}, 64, 31);
    OverlayRig r2(1, 1, false);
    const auto big = tcp_rtt(r2.env.cluster, *r2.net, r2.endpoints[0].first,
                             {r2.endpoints[0].second.ip, 9200}, 1 << 20, 11);
    json.add("tcp_overlay_rtt_64b_ns", static_cast<double>(rtt));
    json.add("tcp_overlay_1mib_oneway_ns", static_cast<double>(big) / 2);
    std::printf("%-22s %14s %18s\n", "tcp (overlay mode)",
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }
  {
    TcpRig r1(TcpRig::Mode::bridge, 1, 1);
    const auto rtt = tcp_rtt(r1.cluster, *r1.net, r1.endpoints[0].first,
                             r1.endpoints[0].second, 64, 31);
    TcpRig r2(TcpRig::Mode::bridge, 1, 1);
    const auto big = tcp_rtt(r2.cluster, *r2.net, r2.endpoints[0].first,
                             r2.endpoints[0].second, 1 << 20, 11);
    json.add("tcp_bridge_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-22s %14s %18s\n", "tcp (bridge mode)",
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }
  {
    TcpRig r1(TcpRig::Mode::host, 1, 1);
    const auto rtt = tcp_rtt(r1.cluster, *r1.net, r1.endpoints[0].first,
                             r1.endpoints[0].second, 64, 31);
    TcpRig r2(TcpRig::Mode::host, 1, 1);
    const auto big = tcp_rtt(r2.cluster, *r2.net, r2.endpoints[0].first,
                             r2.endpoints[0].second, 1 << 20, 11);
    json.add("tcp_host_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-22s %14s %18s\n", "tcp (host mode)",
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }
  {
    fabric::Cluster cluster;
    cluster.add_hosts(1);
    rdma::RdmaDevice dev(cluster.host(0));
    const auto rtt = rdma_rtt(cluster, dev, dev, 64, 31);
    fabric::Cluster c2;
    c2.add_hosts(1);
    rdma::RdmaDevice dev2(c2.host(0));
    const auto big = rdma_rtt(c2, dev2, dev2, 1 << 20, 11);
    json.add("rdma_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-22s %14s %18s\n", "rdma (intra-host)",
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }
  {
    fabric::Cluster cluster;
    cluster.add_hosts(1);
    const auto rtt = shm_rtt(cluster, 0, 64, 31);
    const auto big = shm_rtt(cluster, 0, 1 << 20, 11);
    json.add("shm_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-22s %14s %18s\n", "shared memory",
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }
  {
    FreeFlowRig r1(false);
    const auto rtt = freeflow_rtt(r1.env.cluster, r1.net_a, r1.net_b, r1.b->ip(), 9000,
                                  64, 31);
    FreeFlowRig r2(false);
    const auto big = freeflow_rtt(r2.env.cluster, r2.net_a, r2.net_b, r2.b->ip(), 9000,
                                  1 << 20, 11);
    json.add("freeflow_rtt_64b_ns", static_cast<double>(rtt));
    std::printf("%-22s %14s %18s\n", "FreeFlow (intra-host)",
                format_ns(static_cast<double>(rtt)).c_str(),
                format_ns(static_cast<double>(big) / 2).c_str());
  }

  footer();
  std::printf("paper shape: shm lowest by orders of magnitude; TCP's 1 MiB\n"
              "completion sits near the paper's '~1 ms'.\n");
  return 0;
}
