// E11 / §7 Discussion ("Live migration"): connection-preserving live
// migration as a planned protocol. A server container with TWO live
// streaming connections — a FlowSocket and a sockets-over-RDMA stream —
// ping-pongs between hosts under the MigrationCoordinator while both
// receivers pattern-verify every byte. The bench reports the planned
// blackout distribution (receiver-silence p50/p99/max), one reactive
// stop-and-copy blackout measured in the SAME run for comparison, and the
// loss/reorder counters the perf gate holds at hard zero. The finale
// migrates the server onto the client's host: the resumed conduits must
// re-decide onto shm.
#include "bench_common.h"

#include "common/logging.h"
#include "migration/migration.h"
#include "stream/stream_net.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

constexpr std::uint8_t pattern_byte(std::uint64_t offset) {
  return static_cast<std::uint8_t>((offset * 131 + 17) & 0xFF);
}

/// One pattern-verified receiver with a receiver-silence gap tracker (the
/// bench_failover blackout idiom): while armed, the longest stretch without
/// a verified byte is the app-visible blackout.
struct Rx {
  sim::EventLoop* loop = nullptr;
  std::uint64_t verified = 0;
  std::uint64_t mismatches = 0;
  SimTime last_rx = 0;
  SimDuration max_gap = 0;
  bool track = false;

  void feed(const Buffer& b) {
    const auto* bytes = b.data();
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (static_cast<std::uint8_t>(bytes[i]) != pattern_byte(verified + i)) {
        ++mismatches;
        return;
      }
    }
    verified += b.size();
    const SimTime now = loop->now();
    if (track && now - last_rx > max_gap) max_gap = now - last_rx;
    last_rx = now;
  }
  void arm() {
    last_rx = loop->now();
    max_gap = 0;
    track = true;
  }
  SimDuration disarm() {
    track = false;
    return max_gap;
  }
};

Buffer pattern_chunk(std::uint64_t offset, std::size_t n) {
  Buffer msg(n);
  auto* out = msg.data();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(pattern_byte(offset + i));
  }
  return msg;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Live migration: planned, connection-preserving moves",
         "§7 Discussion (FreeFlow as a live-migration enabler)");

  JsonReport json(argc, argv, "live_migration");
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") trace_path = argv[i + 1];
  }

  BenchEnv env(3);
  auto& cluster = env.cluster;
  auto a = env.deploy("client", 1, 0);
  auto b = env.deploy("server", 1, 1);
  auto& ff = env.freeflow();
  auto na = ff.attach(a->id());
  auto nb = ff.attach(b->id());
  FF_CHECK(na.is_ok() && nb.is_ok());
  migration::MigrationCoordinator coord(ff);

  // ---- connection 1: FlowSocket, client -> server, pattern-verified ----
  Rx sock_rx;
  sock_rx.loop = &cluster.loop();
  core::FlowSocketPtr sock_client, sock_server;
  std::uint64_t sock_sent = 0;
  FF_CHECK((*nb)->sock_listen(5000, [&](core::FlowSocketPtr s) {
    sock_server = s;
    s->set_on_data([&](Buffer&& buf) { sock_rx.feed(buf); });
  }).is_ok());
  (*na)->sock_connect(b->ip(), 5000, [&](Result<core::FlowSocketPtr> s) {
    FF_CHECK(s.is_ok());
    sock_client = *s;
  });
  FF_CHECK(spin(cluster, [&]() { return sock_client && sock_server; }, 10 * k_second));

  // ---- connection 2: stream adapter (TSoR), client -> server ----
  auto stream_a = stream::StreamNet::make(*na);
  auto stream_b = stream::StreamNet::make(*nb);
  Rx tsor_rx;
  tsor_rx.loop = &cluster.loop();
  stream::StreamSocketPtr tsor_client, tsor_server;
  std::uint64_t tsor_sent = 0;
  FF_CHECK(stream_b->listen(5001, [&](stream::StreamSocketPtr s) {
    tsor_server = s;
    s->set_on_data([&](Buffer&& buf) { tsor_rx.feed(buf); });
  }).is_ok());
  stream_a->connect(b->ip(), 5001, [&](Result<stream::StreamSocketPtr> s) {
    FF_CHECK(s.is_ok());
    tsor_client = *s;
  });
  FF_CHECK(spin(cluster, [&]() { return tsor_client && tsor_server; }, 10 * k_second));

  // Writable-paced pumps plus the periodic re-pump that rides out the
  // pause/resume windows (on_space is silent across a splice). `pumping`
  // shuts the firehose off for the final drain-and-account phase.
  auto pumping = std::make_shared<bool>(true);
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [&, pumping]() {
    if (!*pumping) return;
    while (sock_client->writable()) {
      const std::size_t n = 64 * 1024;
      FF_CHECK(sock_client->send(pattern_chunk(sock_sent, n)).is_ok());
      sock_sent += n;
    }
    while (tsor_client->writable()) {
      const std::size_t n = 32 * 1024;
      FF_CHECK(tsor_client->send(pattern_chunk(tsor_sent, n)).is_ok());
      tsor_sent += n;
    }
  };
  sock_client->set_on_space([pump]() { (*pump)(); });
  tsor_client->set_on_space([pump]() { (*pump)(); });
  (*pump)();
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&cluster, pump, pumping, tick]() {
    if (!*pumping) return;
    (*pump)();
    cluster.loop().schedule(50 * k_microsecond, [tick]() { (*tick)(); });
  };
  (*tick)();

  // Warm up: both streams flowing, the TSoR stream upgraded onto its RC QP.
  FF_CHECK(spin(cluster, [&]() {
    return sock_rx.verified > 8ull * 1024 * 1024 &&
           tsor_rx.verified > 2ull * 1024 * 1024 && stream_a->upgrades() >= 1;
  }, 10 * k_second));
  std::printf("streams up: socket %s, stream adapter via RC QP\n",
              orch::transport_name(sock_client->transport()).data());

  // ---- planned ping-pong: 6 coordinated moves host1 <-> host2 ----------
  Histogram planned_gap_ns;   // receiver-silence blackout per move
  Histogram report_blackout_ns;  // coordinator's pause->live span
  std::uint64_t image_bytes_total = 0;
  std::uint64_t conduits_moved_total = 0;
  int planned_moves = 0;
  bool all_drained = true;
  for (int i = 0; i < 6; ++i) {
    const fabric::HostId dst = (b->host() == 1) ? 2 : 1;
    sock_rx.arm();
    tsor_rx.arm();
    bool done = false;
    migration::MigrationReport report;
    coord.migrate(b->id(), dst, [&](Result<migration::MigrationReport> r) {
      FF_CHECK(r.is_ok());
      report = *r;
      done = true;
    });
    FF_CHECK(spin(cluster, [&]() { return done; }, 10 * k_second));
    // Let both receivers verify fresh post-move bytes so the silence window
    // brackets the whole outage, then read the gaps.
    const SimTime resumed = cluster.loop().now();
    FF_CHECK(spin(cluster, [&]() {
      return sock_rx.last_rx > resumed && tsor_rx.last_rx > resumed;
    }, 10 * k_second));
    const SimDuration gap = std::max(sock_rx.disarm(), tsor_rx.disarm());
    planned_gap_ns.record(gap);
    report_blackout_ns.record(report.blackout_ns);
    image_bytes_total += report.image_bytes;
    conduits_moved_total += report.conduits_moved;
    all_drained = all_drained && report.drained;
    ++planned_moves;
    std::printf("planned move %d: host%u, %zu conns, image %zu B, "
                "blackout %s (receiver gap %s)%s\n",
                i + 1, dst, report.conduits_moved, report.image_bytes,
                format_ns(static_cast<double>(report.blackout_ns)).c_str(),
                format_ns(static_cast<double>(gap)).c_str(),
                report.drained ? "" : " [quiesce timeout]");
  }

  // ---- one reactive stop-and-copy move, same run, same metric ----------
  sock_rx.arm();
  tsor_rx.arm();
  const fabric::HostId reactive_dst = (b->host() == 1) ? 2 : 1;
  FF_CHECK(env.cluster_orch->migrate(b->id(), reactive_dst).is_ok());
  FF_CHECK(spin(cluster, [&]() {
    return b->state() == orch::ContainerState::running && b->host() == reactive_dst;
  }, 10 * k_second));
  const SimTime reactive_done = cluster.loop().now();
  FF_CHECK(spin(cluster, [&]() {
    return sock_rx.last_rx > reactive_done && tsor_rx.last_rx > reactive_done;
  }, 30 * k_second));
  const SimDuration reactive_gap = std::max(sock_rx.disarm(), tsor_rx.disarm());
  std::printf("reactive move: receiver gap %s (50 ms stop-and-copy default)\n",
              format_ns(static_cast<double>(reactive_gap)).c_str());

  // ---- finale: co-locate with the client; resumed conduits pick shm ----
  bool done = false;
  coord.migrate(b->id(), 0, [&](Result<migration::MigrationReport> r) {
    FF_CHECK(r.is_ok());
    done = true;
  });
  FF_CHECK(spin(cluster, [&]() { return done; }, 10 * k_second));
  ++planned_moves;
  const bool colocated_shm = spin(cluster, [&]() {
    return sock_client->transport() == orch::Transport::shm;
  }, 10 * k_second);
  std::printf("co-located: socket conduit now rides %s\n",
              orch::transport_name(sock_client->transport()).data());

  // ---- drain both streams and account for every byte ------------------
  *pumping = false;
  sock_client->set_on_space(nullptr);
  tsor_client->set_on_space(nullptr);
  const std::uint64_t sock_target = sock_sent;
  const std::uint64_t tsor_target = tsor_sent;
  spin(cluster, [&]() {
    return sock_rx.verified >= sock_target && tsor_rx.verified >= tsor_target;
  }, 30 * k_second);
  const std::uint64_t sock_lost =
      sock_target > sock_rx.verified ? sock_target - sock_rx.verified : 0;
  const std::uint64_t tsor_lost =
      tsor_target > tsor_rx.verified ? tsor_target - tsor_rx.verified : 0;

  const double ms = static_cast<double>(k_millisecond);
  json.add("migrations", planned_moves);
  json.add("conduits_moved", static_cast<double>(conduits_moved_total));
  json.add("planned_blackout_p50_ms", static_cast<double>(planned_gap_ns.p50()) / ms);
  json.add("planned_blackout_p99_ms", static_cast<double>(planned_gap_ns.p99()) / ms);
  json.add("planned_blackout_max_ms", static_cast<double>(planned_gap_ns.max()) / ms);
  json.add("coordinator_blackout_max_ms",
           static_cast<double>(report_blackout_ns.max()) / ms);
  json.add("reactive_blackout_ms", static_cast<double>(reactive_gap) / ms);
  json.add("image_bytes", static_cast<double>(image_bytes_total));
  json.add("all_drained", all_drained ? 1 : 0);
  json.add("quiesce_timeouts", static_cast<double>(coord.quiesce_timeouts()));
  json.add("lost_bytes", static_cast<double>(sock_lost));
  json.add("pattern_mismatches", static_cast<double>(sock_rx.mismatches));
  json.add("stream_lost_bytes", static_cast<double>(tsor_lost));
  json.add("stream_pattern_mismatches", static_cast<double>(tsor_rx.mismatches));
  json.add("colocated_shm", colocated_shm ? 1 : 0);
  json.add_raw("telemetry", cluster.telemetry().metrics().snapshot_json());

  footer();
  std::printf("planned blackout p50/p99/max: %s / %s / %s vs reactive %s\n",
              format_ns(static_cast<double>(planned_gap_ns.p50())).c_str(),
              format_ns(static_cast<double>(planned_gap_ns.p99())).c_str(),
              format_ns(static_cast<double>(planned_gap_ns.max())).c_str(),
              format_ns(static_cast<double>(reactive_gap)).c_str());
  std::printf("socket: %llu/%llu bytes verified (%llu mismatches); "
              "stream: %llu/%llu (%llu mismatches)\n",
              static_cast<unsigned long long>(sock_rx.verified),
              static_cast<unsigned long long>(sock_target),
              static_cast<unsigned long long>(sock_rx.mismatches),
              static_cast<unsigned long long>(tsor_rx.verified),
              static_cast<unsigned long long>(tsor_target),
              static_cast<unsigned long long>(tsor_rx.mismatches));
  FF_CHECK(sock_lost == 0 && tsor_lost == 0);
  FF_CHECK(sock_rx.mismatches == 0 && tsor_rx.mismatches == 0);

  if (!trace_path.empty()) {
    FF_CHECK(cluster.telemetry().tracer().export_to_file(trace_path));
    std::printf("trace: %s\n", trace_path.c_str());
  }
  return 0;
}
