// E11 / §7 Discussion ("Live migration"): a FreeFlow connection survives
// container migration, and the library transparently re-selects the
// transport — rdma while the peers are apart, shm once co-located.
#include "bench_common.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {
bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}
}  // namespace

int main(int argc, char** argv) {
  banner("Live migration: transparent transport re-selection",
         "§7 Discussion (FreeFlow as a live-migration enabler)");

  JsonReport json(argc, argv, "live_migration");

  FreeFlowRig rig(/*inter_host=*/true);
  auto& cluster = rig.env.cluster;

  core::FlowSocketPtr client, server;
  std::uint64_t received = 0;
  FF_CHECK(rig.net_b->sock_listen(5000, [&](core::FlowSocketPtr s) {
    server = s;
    s->set_on_data([&](Buffer&& b) { received += b.size(); });
  }).is_ok());
  rig.net_a->sock_connect(rig.b->ip(), 5000, [&](Result<core::FlowSocketPtr> s) {
    FF_CHECK(s.is_ok());
    client = *s;
  });
  FF_CHECK(spin(cluster, [&]() { return client && server; }, 10 * k_second));
  std::printf("connection up; transport: %s\n",
              orch::transport_name(client->transport()).data());

  // Phase 1: stream for 20 ms across hosts.
  auto pump = std::make_shared<std::function<void()>>();
  core::FlowSocket* raw = client.get();
  *pump = [raw]() {
    while (raw->writable()) FF_CHECK(raw->send(Buffer(1 << 20)).is_ok());
  };
  client->set_on_space([pump]() { (*pump)(); });
  (*pump)();
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&cluster, pump, tick]() {
    (*pump)();
    cluster.loop().schedule(50 * k_microsecond, [tick]() { (*tick)(); });
  };
  (*tick)();

  const SimTime p1_start = cluster.loop().now();
  const std::uint64_t p1_bytes0 = received;
  cluster.loop().run_until(p1_start + 20 * k_millisecond);
  const double p1_gbps = throughput_gbps(received - p1_bytes0, 20 * k_millisecond);
  json.add("phase1_gbps", p1_gbps);
  std::printf("phase 1 (inter-host, %s): %.1f Gb/s\n",
              orch::transport_name(client->transport()).data(), p1_gbps);

  // Migrate the server container next to the client.
  std::printf("migrating container '%s' host1 -> host0 (50 ms downtime)...\n",
              rig.b->name().c_str());
  FF_CHECK(rig.env.cluster_orch->migrate(rig.b->id(), 0).is_ok());
  const SimTime mig_start = cluster.loop().now();
  FF_CHECK(spin(cluster, [&]() {
    return rig.b->state() == orch::ContainerState::running && rig.b->host() == 0;
  }, 10 * k_second));
  // Let the conduit re-bind.
  FF_CHECK(spin(cluster, [&]() {
    return client->transport() == orch::Transport::shm;
  }, 10 * k_second));
  std::printf("re-bound after %s; transport now: %s (rebinds: %llu)\n",
              format_ns(static_cast<double>(cluster.loop().now() - mig_start)).c_str(),
              orch::transport_name(client->transport()).data(),
              static_cast<unsigned long long>(client->conduit()->rebinds()));

  // Phase 2: stream co-located.
  (*pump)();
  const SimTime p2_start = cluster.loop().now();
  const std::uint64_t p2_bytes0 = received;
  cluster.loop().run_until(p2_start + 20 * k_millisecond);
  const double p2_gbps = throughput_gbps(received - p2_bytes0, 20 * k_millisecond);
  json.add("phase2_gbps", p2_gbps);
  std::printf("phase 2 (co-located, %s): %.1f Gb/s (%.1fx phase 1)\n",
              orch::transport_name(client->transport()).data(), p2_gbps,
              p2_gbps / p1_gbps);

  footer();
  std::printf("the application never touched the connection: the overlay IP and\n"
              "the socket survived; only the data plane changed underneath.\n");
  return 0;
}
