// Shared scaffolding for the FreeFlow benchmark harness. Each binary in
// bench/ regenerates one table/figure from the paper (see DESIGN.md's
// experiment index); these helpers build the standard rigs and print
// aligned rows.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "core/freeflow.h"
#include "fabric/cluster.h"
#include "orchestrator/cluster_orchestrator.h"
#include "orchestrator/network_orchestrator.h"
#include "overlay/overlay.h"
#include "rdma/device.h"
#include "tcpstack/modes.h"
#include "workloads/drivers.h"

namespace freeflow::bench {

/// Machine-readable sidecar for a bench run. Every bench constructs one from
/// its argv; passing `--json <path>` (or a non-empty default path) makes the
/// destructor write `{"bench": ..., "metrics": {...}}` to that file. Metrics
/// are flat key → number; keys appear in insertion order.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string bench_name,
             std::string default_path = {})
      : name_(std::move(bench_name)), path_(std::move(default_path)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(std::string key, double value) {
    metrics_.emplace_back(std::move(key), value);
  }

  /// Embeds a pre-rendered JSON value (e.g. a telemetry registry snapshot)
  /// as a top-level sibling of "metrics". The caller owns well-formedness.
  void add_raw(std::string key, std::string raw_json) {
    raw_.emplace_back(std::move(key), std::move(raw_json));
  }

  ~JsonReport() { flush(); }

  void flush() {
    if (path_.empty() || flushed_) return;
    flushed_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {", name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.6g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(f, "\n  }");
    for (const auto& [key, raw] : raw_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), raw.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("json report: %s\n", path_.c_str());
  }

 private:
  std::string name_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> raw_;
  bool flushed_ = false;
};

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper artifact: %s\n", paper_ref);
  std::printf("%s\n", std::string(72, '-').c_str());
}

inline void footer() { std::printf("%s\n", std::string(72, '-').c_str()); }

/// Full-stack environment mirroring tests/sim_env.h for the benches.
struct BenchEnv {
  explicit BenchEnv(int hosts, sim::CostModel model = {},
                    fabric::NicCapabilities caps = {})
      : cluster(model),
        overlay_net(cluster, tcp::Subnet{tcp::Ipv4Addr(10, 244, 0, 0), 16}) {
    cluster.add_hosts(hosts, "host", caps);
    for (int h = 0; h < hosts; ++h) {
      overlay_net.attach_host(static_cast<fabric::HostId>(h));
    }
    cluster_orch = std::make_unique<orch::ClusterOrchestrator>(cluster, overlay_net);
    net_orch = std::make_unique<orch::NetworkOrchestrator>(*cluster_orch);
  }

  orch::ContainerPtr deploy(const std::string& name, orch::TenantId tenant,
                            fabric::HostId host) {
    orch::ContainerSpec spec;
    spec.name = name;
    spec.tenant = tenant;
    spec.pinned_host = host;
    auto c = cluster_orch->deploy(std::move(spec));
    FF_CHECK(c.is_ok());
    return c.value();
  }

  core::FreeFlow& freeflow(agent::AgentConfig config = {}) {
    if (ff == nullptr) ff = std::make_unique<core::FreeFlow>(*net_orch, config);
    return *ff;
  }

  sim::EventLoop& loop() { return cluster.loop(); }

  fabric::Cluster cluster;
  overlay::OverlayNetwork overlay_net;
  std::unique_ptr<orch::ClusterOrchestrator> cluster_orch;
  std::unique_ptr<orch::NetworkOrchestrator> net_orch;
  std::unique_ptr<core::FreeFlow> ff;
};

/// A kernel-TCP rig for one networking mode on a dedicated cluster, with
/// `pairs` distinct container IP pairs bound on the chosen hosts.
struct TcpRig {
  enum class Mode { host, bridge };

  TcpRig(Mode mode, int hosts, int pairs, sim::CostModel model = {})
      : cluster(model) {
    cluster.add_hosts(hosts);
    for (int h = 0; h < hosts; ++h) {
      tcp::WireHop::install_rx(cluster.host(static_cast<fabric::HostId>(h)));
    }
    if (mode == Mode::host) {
      builder = std::make_unique<tcp::HostModeBuilder>(cluster.cost_model());
    } else {
      auto b = std::make_unique<tcp::BridgeModeBuilder>(cluster.cost_model());
      bridge_builder = b.get();
      builder_bridge = std::move(b);
    }
    net = std::make_unique<tcp::TcpNetwork>(cluster.loop(), cluster.cost_model(),
                                            mode == Mode::host
                                                ? static_cast<tcp::PathBuilder&>(*builder)
                                                : *builder_bridge);
    for (int p = 0; p < pairs; ++p) {
      const tcp::Ipv4Addr src(172, 17, 1, static_cast<std::uint8_t>(2 * p + 2));
      const tcp::Ipv4Addr dst(172, 17, 2, static_cast<std::uint8_t>(2 * p + 3));
      auto& src_host = cluster.host(0);
      auto& dst_host = cluster.host(static_cast<fabric::HostId>(hosts > 1 ? 1 : 0));
      if (mode == Mode::host) {
        FF_CHECK(builder->addresses().add(src, src_host, nullptr).is_ok());
        FF_CHECK(builder->addresses().add(dst, dst_host, nullptr).is_ok());
      } else {
        FF_CHECK(bridge_builder->addresses().add(src, src_host, nullptr).is_ok());
        FF_CHECK(bridge_builder->addresses().add(dst, dst_host, nullptr).is_ok());
      }
      endpoints.push_back({{src, 0}, {dst, 9000}});
    }
  }

  fabric::Cluster cluster;
  std::unique_ptr<tcp::HostModeBuilder> builder;
  std::unique_ptr<tcp::BridgeModeBuilder> builder_bridge;
  tcp::BridgeModeBuilder* bridge_builder = nullptr;
  std::unique_ptr<tcp::TcpNetwork> net;
  std::vector<std::pair<tcp::Endpoint, tcp::Endpoint>> endpoints;
};

/// Overlay rig: containers on hosts with converged routes.
struct OverlayRig {
  OverlayRig(int hosts, int pairs, bool inter_host, sim::CostModel model = {})
      : env(hosts, model) {
    for (int p = 0; p < pairs; ++p) {
      auto a = env.overlay_net.add_container(0, nullptr);
      auto b = env.overlay_net.add_container(
          inter_host ? static_cast<fabric::HostId>(1) : 0, nullptr);
      FF_CHECK(a.is_ok() && b.is_ok());
      endpoints.push_back({{*a, 0}, {*b, 9000}});
    }
    env.loop().run();  // converge routes
    net = std::make_unique<tcp::TcpNetwork>(env.loop(), env.cluster.cost_model(),
                                            env.overlay_net.path_builder());
  }

  BenchEnv env;
  std::unique_ptr<tcp::TcpNetwork> net;
  std::vector<std::pair<tcp::Endpoint, tcp::Endpoint>> endpoints;
};

/// A FreeFlow container pair rig (a on host0, b on host0 or host1).
struct FreeFlowRig {
  FreeFlowRig(bool inter_host, sim::CostModel model = {},
              fabric::NicCapabilities caps = {}, agent::AgentConfig config = {})
      : env(2, model, caps) {
    a = env.deploy("a", 1, 0);
    b = env.deploy("b", 1, inter_host ? 1 : 0);
    env.freeflow(config);
    net_a = env.ff->attach(a->id()).value();
    net_b = env.ff->attach(b->id()).value();
  }

  BenchEnv env;
  orch::ContainerPtr a, b;
  core::ContainerNetPtr net_a, net_b;
};

}  // namespace freeflow::bench
