// E6 / Fig. 2(a,b,c) (planned in §2, commented source): aggregate
// throughput, host CPU and NIC-processor utilization as the number of
// concurrent container pairs grows on the 4-core host. The paper's planned
// lines: TCP/IP, RDMA, shared memory, plus the memory-bus ceiling.
#include "bench_common.h"

#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  banner("Pair scaling: throughput / host CPU / NIC CPU vs #pairs",
         "Fig. 2(a)(b)(c) plan; lines: TCP, RDMA, SHM, memory bus");

  JsonReport json(argc, argv, "pair_scaling");

  constexpr SimDuration k_window = 40 * k_millisecond;
  constexpr std::size_t k_msg = 1 << 20;
  const sim::CostModel model;
  const double membus_gbps = model.membus_bytes_per_sec * 8.0 / 1e9;

  std::printf("%5s | %26s | %22s | %10s\n", "", "throughput (Gb/s)", "host CPU (cores)",
              "NIC proc");
  std::printf("%5s | %8s %8s %8s | %6s %7s %7s | %10s\n", "pairs", "tcp", "rdma",
              "shm", "tcp", "rdma", "shm", "rdma util");

  for (int pairs : {1, 2, 3, 4, 6, 8}) {
    // TCP bridge mode, all pairs on one 4-core host.
    TcpRig tcp_rig(TcpRig::Mode::bridge, 1, pairs);
    auto tcp = drive_tcp_stream(tcp_rig.cluster, *tcp_rig.net, tcp_rig.endpoints,
                                k_msg, k_window);

    // RDMA hairpin through one NIC.
    fabric::Cluster rdma_cluster;
    rdma_cluster.add_hosts(1);
    rdma::RdmaDevice dev(rdma_cluster.host(0));
    auto rdma = drive_rdma_stream(rdma_cluster, dev, dev, pairs, k_msg, k_window);

    // Shared memory.
    fabric::Cluster shm_cluster;
    shm_cluster.add_hosts(1);
    auto shm = drive_shm_stream(shm_cluster, 0, pairs, k_msg, k_window);

    json.add("tcp_gbps_" + std::to_string(pairs) + "pairs", tcp.goodput_gbps);
    json.add("rdma_gbps_" + std::to_string(pairs) + "pairs", rdma.goodput_gbps);
    json.add("shm_gbps_" + std::to_string(pairs) + "pairs", shm.goodput_gbps);
    std::printf("%5d | %8.1f %8.1f %8.1f | %6.2f %7.2f %7.2f | %8.0f %%\n", pairs,
                tcp.goodput_gbps, rdma.goodput_gbps, shm.goodput_gbps,
                tcp.host_cpu_cores, rdma.host_cpu_cores, shm.host_cpu_cores,
                rdma.nic_proc_util * 100.0);
  }

  footer();
  std::printf("memory-bus line (Fig. 2a's 4th series): %.0f Gb/s\n", membus_gbps);
  std::printf("paper shapes: TCP plateaus when the %d cores saturate; RDMA pins\n"
              "at 40 Gb/s line rate with the NIC processor going to ~100%%; shm\n"
              "scales until the memory bus binds, far above both.\n",
              model.cores_per_host);
  return 0;
}
