// B15: raw simulator-core throughput. Replays the same micro-ring workload
// (64 nodes passing tokens with ~100 ns hops, RTO-style cancellable timers
// riding along) on two event loops:
//
//   seed — a verbatim copy of the original core: std::priority_queue,
//          std::function events, one make_shared<bool> cancel token per
//          schedule() (kept here so the speedup stays measurable after the
//          real loop moved on);
//   sim  — the current sim::EventLoop (timer wheel, inline callbacks,
//          pooled cancel tokens).
//
// A counting global operator new measures allocations per event; the whole
// point of the hot-path overhaul is that the `sim` row sustains >= 2x the
// events/sec with ~0 steady-state allocations/event. Results land in
// BENCH_sim_core.json (override with --json <path>).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "bench_common.h"
#include "sim/event_loop.h"

// ------------------------------------------------- counting allocator hook

namespace {
std::uint64_t g_allocs = 0;  // single-threaded bench: plain counter
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) std::abort();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  ++g_allocs;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (n + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) std::abort();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace freeflow::bench {
namespace {

// ------------------------------------------------------ seed loop (copy)

namespace seed {

class EventHandle {
 public:
  EventHandle() = default;
  void cancel() noexcept {
    if (auto p = cancelled_.lock()) *p = true;
    cancelled_.reset();
  }
  [[nodiscard]] bool pending() const noexcept {
    auto p = cancelled_.lock();
    return p != nullptr && !*p;
  }

 private:
  friend class EventLoop;
  explicit EventHandle(std::weak_ptr<bool> c) : cancelled_(std::move(c)) {}
  std::weak_ptr<bool> cancelled_;
};

class EventLoop {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  EventHandle schedule(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  // The seed had one schedule(); both bench entry points map onto it.
  EventHandle schedule_cancellable(SimDuration delay, std::function<void()> fn) {
    return schedule(delay, std::move(fn));
  }

  EventHandle schedule_at(SimTime at, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    EventHandle handle{std::weak_ptr<bool>(cancelled)};
    queue_.push(Event{at, next_seq_++, std::move(fn), std::move(cancelled)});
    return handle;
  }

  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (*ev.cancelled) continue;
      now_ = ev.at;
      ++executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  SimTime run() {
    while (step()) {
    }
    return now_;
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace seed

// ------------------------------------------------------------- workload

/// Token-passing ring: 64 logical nodes, 64 in-flight tokens, each hop one
/// ~100 ns event whose closure captures 24 bytes (the packet layer's size
/// class, and deliberately beyond std::function's 16-byte SBO). The callback
/// body is deliberately tiny — this benchmark measures scheduler overhead,
/// not payload arithmetic. Every 256 hops a token re-arms a 20 us
/// cancellable timeout, cancelling the previous one — the TCP RTO pattern.
template <typename Loop, typename Handle>
class MicroRing {
 public:
  explicit MicroRing(Loop& loop) : loop_(loop) {}

  void run(std::uint64_t events) {
    remaining_ = events;
    const int tokens =
        static_cast<int>(std::min<std::uint64_t>(k_tokens, events));
    for (int t = 0; t < tokens; ++t) hop(t * (k_nodes / k_tokens));
    loop_.run();
  }

  [[nodiscard]] std::uint64_t checksum() const noexcept { return sink_; }

 private:
  static constexpr int k_nodes = 64;
  static constexpr int k_tokens = 64;

  void hop(int node) {
    if (remaining_ == 0) return;
    --remaining_;
    if (++hops_ % 256 == 0) {
      timer_.cancel();
      timer_ = loop_.schedule_cancellable(20'000, [this]() { ++timeouts_; });
    }
    const std::uint64_t a = ++counters_[static_cast<std::size_t>(node)];
    loop_.schedule(100 + node % 3, [this, node, a]() {
      sink_ += a * 0x9e3779b97f4a7c15ULL;
      hop((node + 1) % k_nodes);
    });
  }

  Loop& loop_;
  std::uint64_t remaining_ = 0;
  std::uint64_t hops_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t sink_ = 0;
  std::uint64_t counters_[k_nodes] = {};
  Handle timer_;
};

struct RunStats {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t checksum = 0;
};

template <typename Loop, typename Handle>
RunStats drive(std::uint64_t warmup_events, std::uint64_t measure_events) {
  Loop loop;
  MicroRing<Loop, Handle> ring(loop);
  ring.run(warmup_events);  // warm pools, wheel slots and freelists

  const std::uint64_t allocs0 = g_allocs;
  const auto t0 = std::chrono::steady_clock::now();
  ring.run(measure_events);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_allocs - allocs0;

  const double secs = std::chrono::duration<double>(t1 - t0).count();
  RunStats out;
  out.events_per_sec = static_cast<double>(measure_events) / secs;
  out.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(measure_events);
  out.checksum = ring.checksum();
  return out;
}

}  // namespace
}  // namespace freeflow::bench

int main(int argc, char** argv) {
  using namespace freeflow;
  using namespace freeflow::bench;

  banner("Simulator core: events/sec and allocations/event, micro-ring",
         "hot-path gate: sim loop >= 2x seed loop, ~0 allocs/event");
  JsonReport json(argc, argv, "sim_core", "BENCH_sim_core.json");

  // Warmup long enough to first-touch every wheel-slot vector so the
  // measured window sees only steady-state recycling.
  constexpr std::uint64_t k_warmup = 1024 * 1024;
  constexpr std::uint64_t k_measure = 2'000'000;

  const RunStats old_loop =
      drive<seed::EventLoop, seed::EventHandle>(k_warmup, k_measure);
  const RunStats new_loop =
      drive<sim::EventLoop, sim::EventHandle>(k_warmup, k_measure);
  FF_CHECK(old_loop.checksum == new_loop.checksum);  // same simulated work

  std::printf("%-10s %16s %16s\n", "loop", "events/sec", "allocs/event");
  std::printf("%-10s %14.2fM %16.3f\n", "seed", old_loop.events_per_sec / 1e6,
              old_loop.allocs_per_event);
  std::printf("%-10s %14.2fM %16.3f\n", "sim", new_loop.events_per_sec / 1e6,
              new_loop.allocs_per_event);
  const double speedup = new_loop.events_per_sec / old_loop.events_per_sec;
  std::printf("speedup: %.2fx\n", speedup);

  json.add("seed_events_per_sec", old_loop.events_per_sec);
  json.add("seed_allocs_per_event", old_loop.allocs_per_event);
  json.add("sim_events_per_sec", new_loop.events_per_sec);
  json.add("sim_allocs_per_event", new_loop.allocs_per_event);
  json.add("speedup", speedup);
  json.add("events_measured", static_cast<double>(k_measure));

  footer();
  return 0;
}
