// E12: ablations over FreeFlow's design choices called out in DESIGN.md:
//   (1) zero-copy vs copy relay at the agent (paper Fig. 6's key trick),
//   (2) agent CQ wakeup latency (polling aggressiveness),
//   (3) shm lane ring size,
//   (4) RDMA MTU,
//   (5) kernel-TCP in-flight window.
#include "bench_common.h"

#include "rdma/device.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  JsonReport json(argc, argv, "ablations");

  constexpr SimDuration k_window = 40 * k_millisecond;
  constexpr std::size_t k_msg = 1 << 20;

  banner("Ablation 1: zero-copy vs copy relay at the agent",
         "design choice behind Fig. 6 (shm block registered as MR)");
  std::printf("%-14s %12s %12s\n", "relay mode", "throughput", "host CPU");
  for (bool zero_copy : {true, false}) {
    agent::AgentConfig cfg;
    cfg.zero_copy = zero_copy;
    FreeFlowRig rig(true, sim::CostModel{}, fabric::NicCapabilities{}, cfg);
    auto r = drive_freeflow_stream(rig.env.cluster, rig.net_a, rig.net_b, rig.b->ip(),
                                   9000, k_msg, k_window);
    json.add(zero_copy ? "zerocopy_gbps" : "copy_gbps", r.goodput_gbps);
    std::printf("%-14s %8.1f Gb/s %9.0f %%\n", zero_copy ? "zero-copy" : "copy",
                r.goodput_gbps, r.host_cpu_cores * 100);
  }

  banner("Ablation 2: agent wakeup latency (CQ notification)",
         "polling vs blocking trade at the agent");
  std::printf("%-14s %14s\n", "wakeup", "64B RTT");
  for (SimDuration wakeup : {100L, 500L, 2000L, 10000L}) {
    sim::CostModel m;
    m.agent_wakeup_ns = wakeup;
    FreeFlowRig rig(true, m);
    auto rtt = freeflow_rtt(rig.env.cluster, rig.net_a, rig.net_b, rig.b->ip(), 9000,
                            64, 31);
    std::printf("%10lld ns %14s\n", static_cast<long long>(wakeup),
                format_ns(static_cast<double>(rtt)).c_str());
  }

  banner("Ablation 3: shm lane ring size", "container<->container ring capacity");
  std::printf("%-14s %12s\n", "ring", "throughput");
  for (std::size_t ring : {std::size_t{256} * 1024, std::size_t{1} << 20,
                           std::size_t{4} << 20, std::size_t{16} << 20}) {
    agent::AgentConfig cfg;
    cfg.lane_ring_bytes = ring;
    FreeFlowRig rig(false, sim::CostModel{}, fabric::NicCapabilities{}, cfg);
    const std::size_t msg = std::min<std::size_t>(k_msg, ring / 4);
    auto r = drive_freeflow_stream(rig.env.cluster, rig.net_a, rig.net_b, rig.b->ip(),
                                   9000, msg, k_window);
    std::printf("%10zu KiB %8.1f Gb/s\n", ring / 1024, r.goodput_gbps);
  }

  banner("Ablation 3b: relay fragment size", "agent record granularity");
  std::printf("%-14s %12s\n", "fragment", "throughput");
  for (std::size_t frag : {std::size_t{64} * 1024, std::size_t{256} * 1024,
                           std::size_t{1} << 20}) {
    agent::AgentConfig cfg;
    cfg.fragment_bytes = frag;
    FreeFlowRig rig(true, sim::CostModel{}, fabric::NicCapabilities{}, cfg);
    auto r = drive_freeflow_stream(rig.env.cluster, rig.net_a, rig.net_b, rig.b->ip(),
                                   9000, k_msg, k_window);
    std::printf("%10zu KiB %8.1f Gb/s\n", frag / 1024, r.goodput_gbps);
  }

  banner("Ablation 4: RDMA MTU", "NIC chunking granularity vs line rate");
  std::printf("%-14s %12s %12s\n", "mtu", "throughput", "nic proc");
  for (std::uint32_t mtu : {1024u, 2048u, 4096u, 8192u}) {
    sim::CostModel m;
    m.rdma_mtu_bytes = mtu;
    fabric::Cluster cluster(m);
    cluster.add_hosts(2);
    rdma::RdmaDevice a(cluster.host(0)), b(cluster.host(1));
    auto r = drive_rdma_stream(cluster, a, b, 1, k_msg, k_window);
    std::printf("%10u B  %8.1f Gb/s %9.0f %%\n", mtu, r.goodput_gbps,
                r.nic_proc_util * 100);
  }

  banner("Ablation 5: kernel TCP in-flight window (GSO chunks)",
         "go-back-N window vs throughput (inter-host host mode)");
  std::printf("%-14s %12s\n", "window", "throughput");
  for (int window : {1, 2, 4, 8, 16}) {
    sim::CostModel m;
    m.tcp_window_chunks = window;
    TcpRig rig(TcpRig::Mode::host, 2, 1, m);
    auto r = drive_tcp_stream(rig.cluster, *rig.net, rig.endpoints, k_msg, k_window);
    std::printf("%8d ch  %8.1f Gb/s\n", window, r.goodput_gbps);
  }

  footer();
  return 0;
}
