// Socket-over-RDMA stream adapter (TSoR): unmodified socket apps whose byte
// stream rides a per-stream RC QP. Three comparisons frame the win and its
// cost, plus a fault phase that proves the transparency claim:
//   echo     socket RTT through the adapter vs the native overlay stack
//   bulk     adapter goodput vs native overlay TCP vs raw RDMA verbs
//   failover a fixed pattern-checked transfer survives kill-rdma + heal
//            (fallback + re-upgrade) with zero lost or reordered bytes
#include "bench_common.h"

#include "common/logging.h"
#include "faults/fault_injector.h"
#include "stream/stream_net.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {

// Bulk compares all three modes at a realistic socket send size: 16 KiB is
// where the overlay's per-send CPU work (syscall + hairpin) dominates and
// the adapter's kernel-bypass win shows; the failover transfer uses larger
// chunks purely to keep the pattern-checked volume cheap to generate.
constexpr std::size_t k_bulk_msg = 16 * 1024;
constexpr std::size_t k_msg = 64 * 1024;
constexpr SimDuration k_window = 20 * k_millisecond;

constexpr std::uint8_t pattern_byte(std::uint64_t offset) {
  return static_cast<std::uint8_t>((offset * 131 + 17) & 0xFF);
}

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

/// An adapter rig: FreeFlow pair plus a StreamNet per container, with one
/// established (and, unless the selector refuses, upgraded) stream.
struct StreamRig {
  explicit StreamRig(fabric::NicCapabilities caps = {})
      : rig(/*inter_host=*/true, {}, caps) {
    net_a = stream::StreamNet::make(rig.net_a);
    net_b = stream::StreamNet::make(rig.net_b);
  }

  /// Opens client->server on `port`; spins until both ends exist.
  void open(std::uint16_t port, std::function<void(Buffer&&)> on_server_data) {
    FF_CHECK(net_b->listen(port, [this, cb = std::move(on_server_data)](
                                     stream::StreamSocketPtr s) mutable {
      server = s;
      s->set_on_data(std::move(cb));
    }).is_ok());
    net_a->connect(rig.b->ip(), port, [this](Result<stream::StreamSocketPtr> s) {
      FF_CHECK(s.is_ok());
      client = *s;
    });
    FF_CHECK(spin(rig.env.cluster, [&]() { return client && server; }, 10 * k_second));
  }

  void await_rdma() {
    FF_CHECK(spin(rig.env.cluster,
                  [&]() { return client->transport() == orch::Transport::rdma; },
                  10 * k_second));
  }

  FreeFlowRig rig;
  stream::StreamNetPtr net_a, net_b;
  stream::StreamSocketPtr client, server;
};

// ------------------------------------------------------------------ echo

double stream_echo_rtt_us() {
  StreamRig r;
  std::uint64_t received = 0;
  r.open(6000, [&](Buffer&& b) {
    received += b.size();
    FF_CHECK(r.server->send(std::move(b)).is_ok());
  });
  r.await_rdma();

  auto& loop = r.rig.env.cluster.loop();
  std::vector<SimDuration> rtts;
  std::uint64_t back = 0;
  r.client->set_on_data([&](Buffer&& b) { back += b.size(); });
  for (int i = 0; i < 63; ++i) {
    const SimTime t0 = loop.now();
    const std::uint64_t want = back + 4096;
    FF_CHECK(r.client->send(Buffer(4096)).is_ok());
    FF_CHECK(spin(r.rig.env.cluster, [&]() { return back >= want; }, 1 * k_second));
    rtts.push_back(loop.now() - t0);
  }
  std::sort(rtts.begin(), rtts.end());
  return static_cast<double>(rtts[rtts.size() / 2]) / 1e3;
}

double overlay_echo_rtt_us() {
  OverlayRig rig(2, 1, /*inter_host=*/true);
  const auto [src, dst] = rig.endpoints[0];
  return static_cast<double>(
             tcp_rtt(rig.env.cluster, *rig.net, src, dst, 4096, 63)) /
         1e3;
}

// ------------------------------------------------------------------ bulk

double stream_bulk_gbps() {
  StreamRig r;
  std::uint64_t received = 0;
  r.open(6001, [&](Buffer&& b) { received += b.size(); });
  r.await_rdma();

  auto& cluster = r.rig.env.cluster;
  auto pump = std::make_shared<std::function<void()>>();
  stream::StreamSocket* raw = r.client.get();
  *pump = [raw]() {
    while (raw->writable()) FF_CHECK(raw->send(Buffer(k_bulk_msg)).is_ok());
  };
  r.client->set_on_space([pump]() { (*pump)(); });
  (*pump)();

  // Warm up, then measure a fixed sim-clock window.
  cluster.loop().run_until(cluster.loop().now() + 2 * k_millisecond);
  const std::uint64_t bytes0 = received;
  const SimTime t0 = cluster.loop().now();
  cluster.loop().run_until(t0 + k_window);
  return throughput_gbps(received - bytes0, k_window);
}

double native_tcp_gbps() {
  OverlayRig rig(2, 1, /*inter_host=*/true);
  return drive_tcp_stream(rig.env.cluster, *rig.net, rig.endpoints, k_bulk_msg,
                          k_window)
      .goodput_gbps;
}

double raw_rdma_gbps() {
  fabric::Cluster cluster;
  cluster.add_hosts(2);
  rdma::RdmaDevice a(cluster.host(0)), b(cluster.host(1));
  return drive_rdma_stream(cluster, a, b, 1, k_bulk_msg, k_window).goodput_gbps;
}

// -------------------------------------------------------------- failover

struct FailoverResult {
  std::uint64_t target = 0;
  std::uint64_t verified = 0;       ///< in-order, pattern-correct bytes
  std::uint64_t mismatches = 0;     ///< pattern violations (loss/reorder/dup)
  std::uint64_t fallbacks = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t bytes_rdma = 0;     ///< receiver bytes that arrived via RC QP
  std::uint64_t bytes_tcp = 0;      ///< receiver bytes via the fallback
  bool completed = false;
};

FailoverResult run_failover(const std::string& trace_path) {
  FailoverResult res;
  res.target = 48ull * 1024 * 1024;
  StreamRig r;
  auto& cluster = r.rig.env.cluster;
  faults::FaultInjector injector(*r.rig.env.net_orch, r.rig.env.ff->agents());

  r.open(6002, [&](Buffer&& b) {
    const auto* bytes = b.data();
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (static_cast<std::uint8_t>(bytes[i]) != pattern_byte(res.verified + i)) {
        ++res.mismatches;
      }
    }
    res.verified += b.size();
  });
  r.await_rdma();

  std::uint64_t sent = 0;
  auto pump = std::make_shared<std::function<void()>>();
  stream::StreamSocket* raw = r.client.get();
  *pump = [&, raw]() {
    while (sent < res.target && raw->writable()) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(k_msg, res.target - sent));
      Buffer msg(n);
      for (std::size_t i = 0; i < n; ++i) {
        msg.data()[i] = static_cast<std::byte>(pattern_byte(sent + i));
      }
      FF_CHECK(raw->send(std::move(msg)).is_ok());
      sent += n;
    }
  };
  r.client->set_on_space([pump]() { (*pump)(); });
  (*pump)();
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&cluster, pump, tick]() {
    (*pump)();
    cluster.loop().schedule(50 * k_microsecond, [tick]() { (*tick)(); });
  };
  (*tick)();

  // Kill the RDMA engine under the remote end a third of the way in, heal
  // it once the fallback carries the stream, and let the re-upgraded QP
  // finish the transfer.
  FF_CHECK(spin(cluster, [&]() { return res.verified > res.target / 3; }, 30 * k_second));
  injector.apply({cluster.loop().now(), faults::FaultKind::rdma_down, 1});
  FF_CHECK(spin(cluster,
                [&]() { return r.client->transport() != orch::Transport::rdma; },
                30 * k_second));
  FF_CHECK(spin(cluster, [&]() { return res.verified > res.target / 2; }, 30 * k_second));
  injector.apply({cluster.loop().now(), faults::FaultKind::rdma_up, 1});

  res.completed = spin(
      cluster,
      [&]() {
        return res.verified >= res.target &&
               r.client->transport() == orch::Transport::rdma;
      },
      60 * k_second);
  res.fallbacks = r.net_a->fallbacks();
  res.upgrades = r.net_a->upgrades();
  res.bytes_rdma = r.server->bytes_rdma();
  res.bytes_tcp = r.server->bytes_tcp();

  if (!trace_path.empty()) {
    auto& tracer = cluster.telemetry().tracer();
    if (tracer.export_to_file(trace_path)) {
      std::printf("chrome trace: %s (%zu events)\n", trace_path.c_str(),
                  tracer.size());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Socket-over-RDMA stream adapter: RTT, goodput, failover",
         "TSoR-style transparent socket acceleration (FreeFlow socket API)");
  JsonReport json(argc, argv, "socket_stream");
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") trace_path = argv[i + 1];
  }
  // The failover phase legitimately drops RDMA chunks on the floor; silence
  // the per-chunk warn spam like bench_failover does.
  set_log_level(LogLevel::error);

  const double stream_rtt = stream_echo_rtt_us();
  const double tcp_rtt_us = overlay_echo_rtt_us();
  std::printf("%-34s %10.2f us\n", "echo RTT  stream-over-rdma", stream_rtt);
  std::printf("%-34s %10.2f us\n", "echo RTT  native overlay tcp", tcp_rtt_us);
  json.add("stream_rtt_us", stream_rtt);
  json.add("tcp_rtt_us", tcp_rtt_us);

  const double stream_gbps = stream_bulk_gbps();
  const double tcp_gbps = native_tcp_gbps();
  const double rdma_gbps = raw_rdma_gbps();
  std::printf("%-34s %10.1f Gb/s\n", "bulk      stream-over-rdma", stream_gbps);
  std::printf("%-34s %10.1f Gb/s\n", "bulk      native overlay tcp", tcp_gbps);
  std::printf("%-34s %10.1f Gb/s\n", "bulk      raw rdma verbs", rdma_gbps);
  json.add("stream_goodput_gbps", stream_gbps);
  json.add("native_tcp_gbps", tcp_gbps);
  json.add("raw_rdma_gbps", rdma_gbps);
  json.add("speedup_vs_tcp", tcp_gbps > 0 ? stream_gbps / tcp_gbps : 0);

  const FailoverResult f = run_failover(trace_path);
  const std::uint64_t lost =
      f.verified >= f.target ? 0 : f.target - f.verified;
  std::printf("%-34s %10s   (%.0f MB: %llu lost, %llu mismatched, "
              "%llu fallbacks, %llu upgrades)\n",
              "failover  kill-rdma + heal", f.completed ? "ok" : "FAILED",
              static_cast<double>(f.target) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(lost),
              static_cast<unsigned long long>(f.mismatches),
              static_cast<unsigned long long>(f.fallbacks),
              static_cast<unsigned long long>(f.upgrades));
  json.add("failover_transfer_mb",
           static_cast<double>(f.target) / (1024.0 * 1024.0));
  json.add("failover_completed", f.completed ? 1 : 0);
  json.add("failover_lost_bytes", static_cast<double>(lost));
  json.add("failover_pattern_mismatches", static_cast<double>(f.mismatches));
  json.add("failover_fallbacks", static_cast<double>(f.fallbacks));
  json.add("failover_upgrades", static_cast<double>(f.upgrades));
  json.add("failover_bytes_rdma", static_cast<double>(f.bytes_rdma));
  json.add("failover_bytes_tcp", static_cast<double>(f.bytes_tcp));

  footer();
  std::printf("the adapter terminates the socket locally and carries the byte\n"
              "stream over a per-stream RC QP; the failover row is the paper's\n"
              "transparency claim under fault: zero loss, zero reordering.\n");
  return 0;
}
