// Multi-tenant API-gateway scenario: two tenants share one gateway host —
// a latency-sensitive tenant (small RPCs) and a bulk-heavy tenant (large
// responses, deep pipelines) — with tenant-3 background container churn and
// scripted NIC degrade / link-flap faults on the churn host. The gateway
// host's NIC arbitrates the tenants with the weighted deficit-round-robin
// scheduler, so the number this bench gates on is the paper's multi-tenancy
// claim in one ratio: the latency tenant's p99 under full bulk contention
// divided by its uncontended p99. Also measured: aggregate goodput across
// both tenants (floor-gated against the committed baseline), autoscaler
// activity, and the shm isolation audit (zero cross-tenant attaches).
#include "bench_common.h"

#include "common/logging.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "shm/region.h"
#include "workloads/gateway.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

namespace {

constexpr orch::TenantId k_lat_tenant = 1;
constexpr orch::TenantId k_bulk_tenant = 2;
constexpr orch::TenantId k_churn_tenant = 3;

constexpr std::uint16_t k_lat_gw_port = 8100;
constexpr std::uint16_t k_bulk_gw_port = 8200;
constexpr std::uint16_t k_lat_be_port = 9100;
constexpr std::uint16_t k_bulk_be_port = 9200;
constexpr std::uint16_t k_churn_port = 7000;

constexpr int k_lat_clients = 4;
constexpr int k_bulk_clients = 4;
constexpr std::size_t k_lat_resp = 4 * 1024;
constexpr std::size_t k_bulk_resp = 256 * 1024;
constexpr int k_bulk_pipeline = 8;

constexpr SimDuration k_uncontended_window = 20 * k_millisecond;
constexpr SimDuration k_contended_window = 40 * k_millisecond;

bool spin(fabric::Cluster& cluster, const std::function<bool()>& pred,
          SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

/// One tenant's gateway service: gateway container + autoscaled backends,
/// all on the gateway host so backend channels ride tenant-scoped shm.
struct GatewayService {
  GatewayService(BenchEnv& env, orch::TenantId tenant, const std::string& name,
                 std::uint16_t gw_port, std::uint16_t be_port, GatewayConfig cfg,
                 SimDuration service_ns)
      : env_(env), tenant_(tenant), name_(name), be_port_(be_port),
        service_ns_(service_ns) {
    cfg.listen_port = gw_port;
    cfg.backend_port = be_port;
    gw_container = env_.deploy(name + "-gw", tenant, 0);
    gw_net = env_.ff->attach(gw_container->id()).value();
    gateway = std::make_unique<Gateway>(gw_net, cfg);
    gateway->set_pool_hooks([this]() { return spawn_backend(); },
                            [this](orch::ContainerId id) {
                              (void)env_.cluster_orch->stop(id);
                            });
    gateway->add_backend(spawn_backend());
    FF_CHECK(gateway->start().is_ok());
  }

  core::ContainerNetPtr spawn_backend() {
    const std::string bname = name_ + "-be" + std::to_string(next_backend_++);
    auto c = env_.deploy(bname, tenant_, 0);
    auto net = env_.ff->attach(c->id()).value();
    auto backend = std::make_unique<GatewayBackend>(net, service_ns_);
    FF_CHECK(backend->start(be_port_).is_ok());
    backends.push_back(std::move(backend));
    return net;
  }

  BenchEnv& env_;
  orch::TenantId tenant_;
  std::string name_;
  std::uint16_t be_port_;
  SimDuration service_ns_ = 0;
  int next_backend_ = 0;
  orch::ContainerPtr gw_container;
  core::ContainerNetPtr gw_net;
  std::unique_ptr<Gateway> gateway;
  std::vector<std::unique_ptr<GatewayBackend>> backends;
};

/// A tenant's client fleet on one host, all flows through its gateway.
struct ClientFleet {
  ClientFleet(BenchEnv& env, orch::TenantId tenant, const std::string& prefix,
              fabric::HostId host, int count, tcp::Ipv4Addr gw_ip,
              std::uint16_t gw_port, std::size_t req_bytes, std::size_t resp_bytes,
              int pipeline) {
    for (int i = 0; i < count; ++i) {
      auto c = env.deploy(prefix + std::to_string(i), tenant, host);
      auto net = env.ff->attach(c->id()).value();
      clients.push_back(std::make_unique<GatewayClient>(
          net, gw_ip, gw_port, req_bytes, resp_bytes, pipeline));
    }
  }

  void start() {
    for (auto& c : clients) c->start();
  }
  [[nodiscard]] bool all_connected() const {
    for (const auto& c : clients) {
      if (!c->connected()) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t completed() const {
    std::uint64_t n = 0;
    for (const auto& c : clients) n += c->completed();
    return n;
  }
  [[nodiscard]] std::uint64_t response_bytes() const {
    std::uint64_t n = 0;
    for (const auto& c : clients) n += c->response_bytes();
    return n;
  }
  [[nodiscard]] Histogram merged_latency() const {
    Histogram h;
    for (const auto& c : clients) h.merge(c->latency());
    return h;
  }
  void reset_latency() {
    for (auto& c : clients) c->latency().reset();
  }

  std::vector<std::unique_ptr<GatewayClient>> clients;
};

/// Background container churn: short-lived tenant-3 containers on the churn
/// host dial the churn echo service on the gateway host, push a few
/// requests, then stop — continuous deploy/connect/teardown pressure on the
/// control plane while the fault plan batters the churn host's NIC.
struct ChurnDriver {
  ChurnDriver(BenchEnv& env, tcp::Ipv4Addr service_ip, fabric::HostId host)
      : env_(env), service_ip_(service_ip), host_(host) {}

  void run(SimTime until) {
    until_ = until;
    launch();
  }

  void launch() {
    if (env_.loop().now() >= until_) return;
    const int id = next_++;
    auto c = env_.deploy("churn" + std::to_string(id), k_churn_tenant, host_);
    auto net = env_.ff->attach(c->id()).value();
    auto client = std::make_shared<GatewayClient>(net, service_ip_, k_churn_port,
                                                  16 * 1024, 16 * 1024, 1);
    client->start();
    ++launched_;
    // Each churner lives ~2 ms, then its container is stopped outright.
    env_.loop().schedule(2 * k_millisecond, [this, c, client]() {
      client->stop();
      (void)env_.cluster_orch->stop(c->id());
      ++retired_;
    });
    env_.loop().schedule(1 * k_millisecond, [this]() { launch(); });
  }

  BenchEnv& env_;
  tcp::Ipv4Addr service_ip_;
  fabric::HostId host_;
  SimTime until_ = 0;
  int next_ = 0;
  std::uint64_t launched_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  JsonReport report(argc, argv, "tenant_gateway");
  banner("multi-tenant API gateway with per-tenant QoS",
         "multi-tenancy: WDRR NIC scheduling + tenant-scoped shm (paper §3-4)");

  // Hosts: 0 = gateway host (both tenants' gateways + backend pools),
  // 1 = latency-tenant clients, 2 = bulk-tenant clients, 3 = churn host.
  BenchEnv env(4);
  agent::AgentConfig config;
  env.freeflow(config);

  // Per-tenant QoS on every NIC: the latency tenant outweighs bulk 8:1, and
  // the churn tenant is both low-weight and rate-capped to 5 Gbps.
  for (fabric::HostId h = 0; h < 4; ++h) {
    auto& nic = env.cluster.host(h).nic();
    nic.set_tenant_qos(k_lat_tenant, {.weight = 8, .rate_bps = 0.0});
    nic.set_tenant_qos(k_bulk_tenant, {.weight = 1, .rate_bps = 0.0});
    nic.set_tenant_qos(k_churn_tenant, {.weight = 1, .rate_bps = 5e9});
  }

  GatewayConfig lat_cfg;
  lat_cfg.min_backends = 1;
  lat_cfg.max_backends = 3;
  GatewayConfig bulk_cfg;
  bulk_cfg.min_backends = 1;
  bulk_cfg.max_backends = 4;
  bulk_cfg.grow_queue_depth = 6.0;

  // Backend service times: the latency tenant's requests are cheap; the
  // bulk tenant's one initial backend is undersized for 32 pipelined flows,
  // so its queue depth forces the scaler to grow the pool.
  GatewayService lat_svc(env, k_lat_tenant, "lat", k_lat_gw_port, k_lat_be_port,
                         lat_cfg, 2 * k_microsecond);
  GatewayService bulk_svc(env, k_bulk_tenant, "bulk", k_bulk_gw_port,
                          k_bulk_be_port, bulk_cfg, 200 * k_microsecond);

  // Churn echo service (tenant 3) on the gateway host.
  auto churn_svc_c = env.deploy("churn-svc", k_churn_tenant, 0);
  auto churn_svc_net = env.ff->attach(churn_svc_c->id()).value();
  GatewayBackend churn_echo(churn_svc_net);
  FF_CHECK(churn_echo.start(k_churn_port).is_ok());

  // ---- phase 1: uncontended latency baseline ---------------------------
  ClientFleet lat_fleet(env, k_lat_tenant, "latc", 1, k_lat_clients,
                        lat_svc.gw_container->ip(), k_lat_gw_port, 256,
                        k_lat_resp, 1);
  lat_fleet.start();
  FF_CHECK(spin(env.cluster,
                [&]() { return lat_fleet.all_connected() &&
                               lat_fleet.completed() >= 8; },
                10 * k_second));
  lat_fleet.reset_latency();
  env.loop().run_for(k_uncontended_window);
  const Histogram uncontended = lat_fleet.merged_latency();
  const double p99_uncontended_us = static_cast<double>(uncontended.p99()) / 1e3;
  std::printf("uncontended latency tenant: %s\n", uncontended.summary_ns().c_str());

  // ---- phase 2: bulk contention + churn + faults -----------------------
  // Two waves: the first saturates the single bulk backend (its serial
  // queue trips the scaler), the second wave's fresh flows land on the
  // scaled-up backends — the router prefers the emptiest, freshest slot.
  ClientFleet bulk_wave1(env, k_bulk_tenant, "bulkc", 2, k_bulk_clients / 2,
                         bulk_svc.gw_container->ip(), k_bulk_gw_port, 256,
                         k_bulk_resp, k_bulk_pipeline);
  ClientFleet bulk_wave2(env, k_bulk_tenant, "bulkd", 2, k_bulk_clients / 2,
                         bulk_svc.gw_container->ip(), k_bulk_gw_port, 256,
                         k_bulk_resp, k_bulk_pipeline);
  bulk_wave1.start();
  FF_CHECK(spin(env.cluster,
                [&]() { return bulk_wave1.all_connected() &&
                               bulk_wave1.completed() >= 4; },
                10 * k_second));
  env.loop().schedule(8 * k_millisecond, [&]() { bulk_wave2.start(); });
  const auto bulk_completed = [&]() {
    return bulk_wave1.completed() + bulk_wave2.completed();
  };
  const auto bulk_response_bytes = [&]() {
    return bulk_wave1.response_bytes() + bulk_wave2.response_bytes();
  };

  ChurnDriver churn(env, churn_svc_c->ip(), 3);
  churn.run(env.loop().now() + k_contended_window);

  // Faults land on the churn host: a degrade overlapping a link flap, so
  // recovery must restore only its own contribution (the PR-10 injector
  // semantics) while the tenant QoS question is decided on host 0.
  faults::FaultInjector injector(*env.net_orch, env.ff->agents());
  faults::FaultPlan plan;
  const SimTime t0 = env.loop().now();
  plan.degrade(3, t0 + 5 * k_millisecond, 0.4, 15 * k_millisecond);
  plan.link_flap(3, t0 + 22 * k_millisecond, 2 * k_millisecond);
  injector.arm(plan);

  lat_fleet.reset_latency();
  const std::uint64_t lat_bytes0 = lat_fleet.response_bytes();
  const std::uint64_t bulk_bytes0 = bulk_response_bytes();
  const SimTime window_start = env.loop().now();
  env.loop().run_for(k_contended_window);
  const SimDuration window = env.loop().now() - window_start;

  const Histogram contended = lat_fleet.merged_latency();
  const double p99_contended_us = static_cast<double>(contended.p99()) / 1e3;
  const double lat_gbps =
      static_cast<double>(lat_fleet.response_bytes() - lat_bytes0) * 8.0 /
      static_cast<double>(window);
  const double bulk_gbps =
      static_cast<double>(bulk_response_bytes() - bulk_bytes0) * 8.0 /
      static_cast<double>(window);
  std::printf("contended latency tenant:   %s\n", contended.summary_ns().c_str());
  std::printf("goodput: latency %.2f Gbps, bulk %.2f Gbps, aggregate %.2f Gbps\n",
              lat_gbps, bulk_gbps, lat_gbps + bulk_gbps);
  std::printf("bulk pool %zu backends (%llu scale-ups), churn %llu launched\n",
              bulk_svc.gateway->pool_size(),
              static_cast<unsigned long long>(bulk_svc.gateway->scale_ups()),
              static_cast<unsigned long long>(churn.launched_));

  // ---- phase 3: shm isolation audit ------------------------------------
  // Every backend region so far was created tenant-scoped by the gateway
  // host's agent; now provoke one cross-tenant attach and expect denial.
  auto& registry = env.ff->agents().agent_on(0).shm_registry();
  auto probe = registry.create(k_bulk_tenant, 4096);
  FF_CHECK(probe.is_ok());
  auto stolen = registry.attach((*probe)->id(), k_lat_tenant);
  FF_CHECK(!stolen.is_ok());
  FF_CHECK(registry.destroy((*probe)->id()).is_ok());

  const double p99_ratio =
      p99_uncontended_us > 0 ? p99_contended_us / p99_uncontended_us : 0.0;
  report.add("latency_p99_uncontended_us", p99_uncontended_us);
  report.add("latency_p99_contended_us", p99_contended_us);
  report.add("p99_isolation_ratio", p99_ratio);
  report.add("latency_p50_contended_us", static_cast<double>(contended.p50()) / 1e3);
  report.add("latency_goodput_gbps", lat_gbps);
  report.add("bulk_goodput_gbps", bulk_gbps);
  report.add("aggregate_goodput_gbps", lat_gbps + bulk_gbps);
  report.add("latency_flows", k_lat_clients);
  report.add("bulk_flows", k_bulk_clients);
  report.add("bulk_resp_kb", static_cast<double>(k_bulk_resp) / 1024.0);
  report.add("latency_completed", static_cast<double>(lat_fleet.completed()));
  report.add("bulk_completed", static_cast<double>(bulk_completed()));
  report.add("scale_ups", static_cast<double>(lat_svc.gateway->scale_ups() +
                                              bulk_svc.gateway->scale_ups()));
  report.add("bulk_pool_final", static_cast<double>(bulk_svc.gateway->pool_size()));
  report.add("churn_launched", static_cast<double>(churn.launched_));
  report.add("churn_retired", static_cast<double>(churn.retired_));
  report.add("faults_applied", static_cast<double>(injector.faults_applied()));
  report.add("cross_tenant_attaches", static_cast<double>(registry.foreign_attaches()));
  report.add("denied_attaches", static_cast<double>(registry.denied_attaches()));

  footer();
  return 0;
}
