// E5 / Fig. "eval_bw_host_bridge": host mode (≈38 Gb/s) vs docker0 bridge
// mode (≈27 Gb/s) — the cost of the veth+bridge hairpin alone, swept over
// message sizes.
#include "bench_common.h"

using namespace freeflow;
using namespace freeflow::bench;
using namespace freeflow::workloads;

int main(int argc, char** argv) {
  banner("Host mode vs bridge mode throughput (message-size sweep)",
         "Fig. eval_bw_host_bridge (paper: 38 vs 27 Gb/s)");

  JsonReport json(argc, argv, "host_vs_bridge");

  constexpr SimDuration k_window = 40 * k_millisecond;
  std::printf("%-12s %16s %16s %10s\n", "msg size", "host mode", "bridge mode",
              "ratio");

  for (std::size_t msg : {std::size_t{16} * 1024, std::size_t{64} * 1024,
                          std::size_t{256} * 1024, std::size_t{1} << 20,
                          std::size_t{4} << 20}) {
    TcpRig host_rig(TcpRig::Mode::host, 1, 1);
    auto host = drive_tcp_stream(host_rig.cluster, *host_rig.net, host_rig.endpoints,
                                 msg, k_window);
    TcpRig bridge_rig(TcpRig::Mode::bridge, 1, 1);
    auto bridge = drive_tcp_stream(bridge_rig.cluster, *bridge_rig.net,
                                   bridge_rig.endpoints, msg, k_window);
    json.add("host_gbps_" + std::to_string(msg / 1024) + "kib", host.goodput_gbps);
    json.add("bridge_gbps_" + std::to_string(msg / 1024) + "kib", bridge.goodput_gbps);
    std::printf("%9zu KiB %11.1f Gb/s %11.1f Gb/s %9.2fx\n", msg / 1024,
                host.goodput_gbps, bridge.goodput_gbps,
                host.goodput_gbps / bridge.goodput_gbps);
  }

  footer();
  std::printf("paper shape: host mode sustains ~1.4x bridge mode at large sizes.\n");
  return 0;
}
