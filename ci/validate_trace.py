#!/usr/bin/env python3
"""Validates a Chrome-trace-format export from the telemetry Tracer.

Checks (stdlib only):
  1. The file parses as JSON with a top-level "traceEvents" array.
  2. Every event has the required fields; ph is one of B/E/i/M; ts is a
     non-negative number; events are in non-decreasing ts order.
  3. B/E pairs balance per (pid, tid) row and never close an unopened span
     (metadata and instants are exempt).
  4. Optional --expect (repeatable): a comma-separated "ph:name" subsequence
     that must appear, in order, somewhere in the event stream, e.g.
       --expect "i:rdma_down,B:failover,i:mark_stale,i:rebind,i:retransmit,E:failover,i:re-upgrade"
     Each --expect is validated independently from the start of the trace,
     so two overlapping timelines (say, the conduit's failover and the
     stream adapter's upgrade dance) can be asserted against one export.

Exit code 0 on success; prints the first violation and exits 1 otherwise.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = ("name", "ph", "ts", "pid", "tid")
VALID_PH = {"B", "E", "i", "M"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the Chrome-trace JSON file")
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        help='comma-separated "ph:name" subsequence that must appear in '
        "order; may be given multiple times, each checked independently",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('top-level "traceEvents" array missing')
    if not events:
        fail("trace is empty")

    open_spans = {}  # (pid, tid) -> [span names]
    last_ts = None
    for i, ev in enumerate(events):
        for field in REQUIRED_FIELDS:
            if field not in ev:
                fail(f"event {i} missing field {field!r}: {ev}")
        if ev["ph"] not in VALID_PH:
            fail(f"event {i} has unknown phase {ev['ph']!r}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i} has bad ts {ts!r}")
        if ev["ph"] != "M":  # metadata carries ts 0 by convention
            if last_ts is not None and ts < last_ts:
                fail(f"event {i} goes back in time: ts {ts} after {last_ts}")
            last_ts = ts
        row = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            open_spans.setdefault(row, []).append(ev["name"])
        elif ev["ph"] == "E":
            stack = open_spans.get(row)
            if not stack:
                fail(f"event {i}: E {ev['name']!r} closes nothing on row {row}")
            opened = stack.pop()
            if opened != ev["name"]:
                fail(
                    f"event {i}: E {ev['name']!r} does not match open "
                    f"B {opened!r} on row {row}"
                )

    dangling = {row: stack for row, stack in open_spans.items() if stack}
    if dangling:
        fail(f"unclosed spans at end of trace: {dangling}")

    for spec in args.expect:
        wanted = []
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            ph, _, name = item.partition(":")
            if not name:
                fail(f"--expect item {item!r} is not ph:name")
            wanted.append((ph, name))
        it = iter(events)  # fresh iterator: each --expect scans independently
        for ph, name in wanted:
            for ev in it:
                if ev["ph"] == ph and ev["name"] == name:
                    break
            else:
                fail(f"expected subsequence broken at {ph}:{name}")

    n_spans = sum(1 for e in events if e["ph"] == "B")
    n_instants = sum(1 for e in events if e["ph"] == "i")
    print(
        f"validate_trace: OK: {len(events)} events "
        f"({n_spans} spans, {n_instants} instants) in {args.trace}"
    )


if __name__ == "__main__":
    main()
