#!/usr/bin/env python3
"""Perf gate for the bench JSON reports (stdlib only).

Usage: perf_gate.py FRESH_JSON BASELINE_JSON

The gate dispatches on the report's ``bench`` name (fresh and baseline must
match). The CI box is a noisy 1-core machine, so wall-clock deltas are not a
reliable signal; each gate leans on self-relative or simulated-time metrics
that box noise cannot touch.

bench_sim_core:
  1. HARD  fresh ``speedup`` >= FLOOR (2.0x): the new event loop must beat
     the embedded seed replica measured in the *same* run — self-relative,
     so box noise cancels out. This is the acceptance floor from PR 1.
  2. HARD  fresh ``sim_events_per_sec`` >= TOLERANCE (40%) of the committed
     baseline: generous enough that scheduler noise never trips it, tight
     enough that a real hot-path regression (lost inlining, reintroduced
     per-event allocation) cannot hide.
  3. INFO  everything else (allocs/event, raw deltas) is printed, not gated.

bench_connect_storm:
  1. HARD  ``failed`` == 0: every declared flow must establish.
  2. HARD  ``flows`` >= baseline flows: the storm may not be quietly shrunk.
  3. HARD  ``setup_p99_ns`` <= baseline * (1 + STORM_P99_TOLERANCE). Setup
     latency is measured on the simulation clock, which is deterministic,
     so the tolerance only absorbs intentional cost-model adjustments.
  4. INFO  races resolved, retries, decide RPC rounds.

bench_decision_storm:
  1. HARD  ``speedup_16v1`` >= DECISION_SPEEDUP_FLOOR (5.0x): cold decision
     throughput at 16 shards vs the single-orchestrator run *in the same
     report* — self-relative and on the sim clock, immune to box noise.
  2. HARD  ``stale_served`` == 0 and ``ground_truth_mismatches`` == 0: a
     cached decision served after an event that changed it is a correctness
     bug, not a perf miss. Same for ``decide_errors`` and
     ``warm_rpc_rounds`` (a warm storm paying RPCs means caching broke).
  3. HARD  ``flows`` >= baseline flows: the storm may not quietly shrink.
  4. HARD  ``cold_p99_ns_16shards`` <= baseline * (1 + STORM_P99_TOLERANCE):
     deterministic sim-clock tail; the tolerance only absorbs intentional
     cost-model adjustments.
  5. INFO  per-shard-count throughput, forwards, evictions, epoch rejects.

bench_socket_stream:
  1. HARD  ``speedup_vs_tcp`` >= STREAM_SPEEDUP_FLOOR (2.0x): adapter bulk
     goodput vs the native overlay TCP stack measured in the same report —
     self-relative on the sim clock, so box noise cancels out. This is the
     PR's acceptance floor for the sockets-over-RDMA path.
  2. HARD  ``failover_lost_bytes`` == 0 and ``failover_pattern_mismatches``
     == 0: the transparency claim. A byte lost, duplicated or reordered
     across the rdma_down -> fallback -> re-upgrade sequence is a
     correctness bug, never a perf miss.
  3. HARD  ``failover_completed`` == 1: the transfer must finish back on
     RDMA after the heal; ``failover_fallbacks`` >= 1 and
     ``failover_upgrades`` >= 2 prove the stream actually took the detour
     (initial upgrade + re-upgrade) rather than idling through the fault.
  4. HARD  ``failover_transfer_mb`` >= baseline: the transfer may not be
     quietly shrunk to dodge the fault window.
  5. INFO  RTTs, raw-RDMA headroom, receiver byte split (rdma vs tcp).

bench_live_migration:
  1. HARD  ``lost_bytes`` == ``pattern_mismatches`` == ``stream_lost_bytes``
     == ``stream_pattern_mismatches`` == 0: a planned migration is
     connection-preserving or it is broken — both the FlowSocket and the
     sockets-over-RDMA stream verify every byte in order.
  2. HARD  ``planned_blackout_max_ms`` < ``reactive_blackout_ms``: the
     coordinated quiesce/capture/resume protocol must beat the reactive
     stop-and-copy blackout measured in the *same* run — self-relative on
     the sim clock, immune to box noise.
  3. HARD  ``planned_blackout_p99_ms`` <= baseline * (1 +
     STORM_P99_TOLERANCE): deterministic sim-clock tail; the tolerance only
     absorbs intentional cost-model adjustments.
  4. HARD  ``migrations`` >= baseline and ``colocated_shm`` == 1: the
     ping-pong may not be quietly shrunk, and migrating the server onto its
     peer's host must land the resumed conduits on shm.
  5. INFO  p50, coordinator-side blackout, image bytes, quiesce timeouts.

bench_tenant_gateway:
  1. HARD  ``p99_isolation_ratio`` <= ISOLATION_P99_CEILING (3.0x): the
     latency tenant's p99 while the bulk tenant saturates the shared NICs,
     over its own uncontended p99 in the *same* run — self-relative and on
     the sim clock, so box noise cancels out. This is the WDRR scheduler's
     acceptance criterion.
  2. HARD  ``aggregate_goodput_gbps`` >= TOLERANCE (40%) of the committed
     baseline: per-tenant fairness must not be bought with throughput.
  3. HARD  ``cross_tenant_attaches`` == 0 and ``denied_attaches`` >= 1: the
     cross-tenant shm probe must be denied and audited; a foreign attach
     that succeeds is an isolation hole, never a perf miss.
  4. HARD  ``latency_flows``, ``bulk_flows``, ``bulk_resp_kb`` >= baseline:
     the contention may not be quietly shrunk to flatter the ratio.
  5. INFO  p99s, goodput split, scale-ups, final pool size, churn counts,
     faults applied, completions.
"""

import json
import sys

FLOOR_SPEEDUP = 2.0
BASELINE_TOLERANCE = 0.40
STORM_P99_TOLERANCE = 0.25
DECISION_SPEEDUP_FLOOR = 5.0
STREAM_SPEEDUP_FLOOR = 2.0
ISOLATION_P99_CEILING = 3.0


def load(path):
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("bench")
    if not name:
        raise SystemExit(f"{path}: report has no 'bench' name")
    return name, doc["metrics"]


def gate_sim_core(fresh, base):
    failures = []

    speedup = fresh.get("speedup", 0.0)
    print(f"perf-gate: fresh speedup vs seed loop: {speedup:.2f}x (floor {FLOOR_SPEEDUP}x)")
    if speedup < FLOOR_SPEEDUP:
        failures.append(
            f"speedup {speedup:.2f}x is below the {FLOOR_SPEEDUP}x floor vs seed"
        )

    fresh_eps = fresh.get("sim_events_per_sec", 0.0)
    base_eps = base.get("sim_events_per_sec", 0.0)
    if base_eps > 0:
        ratio = fresh_eps / base_eps
        print(
            f"perf-gate: sim events/s {fresh_eps:.3g} vs baseline {base_eps:.3g}"
            f" ({ratio:.0%}; hard floor {BASELINE_TOLERANCE:.0%})"
        )
        if ratio < BASELINE_TOLERANCE:
            failures.append(
                f"sim_events_per_sec at {ratio:.0%} of baseline "
                f"(< {BASELINE_TOLERANCE:.0%}) — not explainable by box noise"
            )
    else:
        failures.append("baseline has no sim_events_per_sec metric")

    for key in ("sim_allocs_per_event", "seed_events_per_sec", "events_measured"):
        if key in fresh:
            b = f" (baseline {base[key]:.6g})" if key in base else ""
            print(f"perf-gate: info {key} = {fresh[key]:.6g}{b}")

    return failures


def gate_connect_storm(fresh, base):
    failures = []

    failed = fresh.get("failed", -1)
    print(f"perf-gate: connect storm failed establishments: {failed:.0f} (hard 0)")
    if failed != 0:
        failures.append(f"{failed:.0f} flow establishment(s) failed — hard zero")

    flows = fresh.get("flows", 0)
    base_flows = base.get("flows", 0)
    print(f"perf-gate: storm size {flows:.0f} flows (baseline {base_flows:.0f})")
    if flows < base_flows:
        failures.append(f"storm shrank to {flows:.0f} flows (baseline {base_flows:.0f})")

    p99 = fresh.get("setup_p99_ns", 0.0)
    base_p99 = base.get("setup_p99_ns", 0.0)
    if base_p99 > 0:
        ratio = p99 / base_p99
        ceiling = 1.0 + STORM_P99_TOLERANCE
        print(
            f"perf-gate: setup p99 {p99:.4g}ns vs baseline {base_p99:.4g}ns"
            f" ({ratio:.0%}; hard ceiling {ceiling:.0%})"
        )
        if ratio > ceiling:
            failures.append(
                f"setup_p99_ns at {ratio:.0%} of baseline (> {ceiling:.0%}) — "
                "sim-clock latency regressed, this is not box noise"
            )
    else:
        failures.append("baseline has no setup_p99_ns metric")

    for key in ("setup_p50_ns", "setup_p999_ns", "decide_rpc_rounds",
                "trunk_setup_races_resolved", "trunk_setup_retries"):
        if key in fresh:
            b = f" (baseline {base[key]:.6g})" if key in base else ""
            print(f"perf-gate: info {key} = {fresh[key]:.6g}{b}")

    return failures


def gate_decision_storm(fresh, base):
    failures = []

    speedup = fresh.get("speedup_16v1", 0.0)
    print(
        f"perf-gate: 16-shard decision speedup: {speedup:.2f}x"
        f" (floor {DECISION_SPEEDUP_FLOOR}x)"
    )
    if speedup < DECISION_SPEEDUP_FLOOR:
        failures.append(
            f"speedup_16v1 {speedup:.2f}x below the {DECISION_SPEEDUP_FLOOR}x floor"
        )

    for key in ("stale_served", "ground_truth_mismatches", "decide_errors",
                "warm_rpc_rounds"):
        v = fresh.get(key, -1)
        print(f"perf-gate: {key}: {v:.0f} (hard 0)")
        if v != 0:
            failures.append(f"{key} = {v:.0f} — cache coherence broke, hard zero")

    flows = fresh.get("flows", 0)
    base_flows = base.get("flows", 0)
    print(f"perf-gate: storm size {flows:.0f} flows (baseline {base_flows:.0f})")
    if flows < base_flows:
        failures.append(f"storm shrank to {flows:.0f} flows (baseline {base_flows:.0f})")

    p99 = fresh.get("cold_p99_ns_16shards", 0.0)
    base_p99 = base.get("cold_p99_ns_16shards", 0.0)
    if base_p99 > 0:
        ratio = p99 / base_p99
        ceiling = 1.0 + STORM_P99_TOLERANCE
        print(
            f"perf-gate: cold p99 (16 shards) {p99:.4g}ns vs baseline"
            f" {base_p99:.4g}ns ({ratio:.0%}; hard ceiling {ceiling:.0%})"
        )
        if ratio > ceiling:
            failures.append(
                f"cold_p99_ns_16shards at {ratio:.0%} of baseline (> {ceiling:.0%})"
                " — sim-clock tail regressed, this is not box noise"
            )
    else:
        failures.append("baseline has no cold_p99_ns_16shards metric")

    for key in ("dps_1shard", "dps_4shards", "dps_16shards", "warm_hits",
                "epoch_rejects", "shard_rpcs_16", "cross_shard_forwards_16",
                "cache_evictions_16"):
        if key in fresh:
            b = f" (baseline {base[key]:.6g})" if key in base else ""
            print(f"perf-gate: info {key} = {fresh[key]:.6g}{b}")

    return failures


def gate_socket_stream(fresh, base):
    failures = []

    speedup = fresh.get("speedup_vs_tcp", 0.0)
    print(
        f"perf-gate: stream goodput vs native overlay tcp: {speedup:.2f}x"
        f" (floor {STREAM_SPEEDUP_FLOOR}x)"
    )
    if speedup < STREAM_SPEEDUP_FLOOR:
        failures.append(
            f"speedup_vs_tcp {speedup:.2f}x below the {STREAM_SPEEDUP_FLOOR}x floor"
        )

    for key in ("failover_lost_bytes", "failover_pattern_mismatches"):
        v = fresh.get(key, -1)
        print(f"perf-gate: {key}: {v:.0f} (hard 0)")
        if v != 0:
            failures.append(
                f"{key} = {v:.0f} — the stream broke byte-exactness across "
                "failover, hard zero"
            )

    completed = fresh.get("failover_completed", 0)
    print(f"perf-gate: failover transfer completed back on rdma: {completed:.0f} (hard 1)")
    if completed != 1:
        failures.append("failover transfer did not complete back on rdma")

    fallbacks = fresh.get("failover_fallbacks", 0)
    upgrades = fresh.get("failover_upgrades", 0)
    print(
        f"perf-gate: failover path taken: {fallbacks:.0f} fallback(s),"
        f" {upgrades:.0f} upgrade(s) (hard >=1 / >=2)"
    )
    if fallbacks < 1 or upgrades < 2:
        failures.append(
            f"fault detour not exercised: {fallbacks:.0f} fallbacks, "
            f"{upgrades:.0f} upgrades (need >=1 and >=2)"
        )

    mb = fresh.get("failover_transfer_mb", 0)
    base_mb = base.get("failover_transfer_mb", 0)
    print(f"perf-gate: failover transfer {mb:.0f} MB (baseline {base_mb:.0f})")
    if mb < base_mb:
        failures.append(
            f"failover transfer shrank to {mb:.0f} MB (baseline {base_mb:.0f})"
        )

    for key in ("stream_rtt_us", "tcp_rtt_us", "stream_goodput_gbps",
                "native_tcp_gbps", "raw_rdma_gbps", "failover_bytes_rdma",
                "failover_bytes_tcp"):
        if key in fresh:
            b = f" (baseline {base[key]:.6g})" if key in base else ""
            print(f"perf-gate: info {key} = {fresh[key]:.6g}{b}")

    return failures


def gate_live_migration(fresh, base):
    failures = []

    for key in ("lost_bytes", "pattern_mismatches", "stream_lost_bytes",
                "stream_pattern_mismatches"):
        v = fresh.get(key, -1)
        print(f"perf-gate: {key}: {v:.0f} (hard 0)")
        if v != 0:
            failures.append(
                f"{key} = {v:.0f} — a migrated connection lost or reordered "
                "bytes, hard zero"
            )

    planned_max = fresh.get("planned_blackout_max_ms", -1.0)
    reactive = fresh.get("reactive_blackout_ms", 0.0)
    print(
        f"perf-gate: planned blackout max {planned_max:.3f}ms vs reactive"
        f" {reactive:.3f}ms measured in the same run (hard <)"
    )
    if not 0 <= planned_max < reactive:
        failures.append(
            f"planned blackout max {planned_max:.3f}ms is not strictly below "
            f"the reactive stop-and-copy blackout {reactive:.3f}ms — the "
            "coordinated protocol lost its reason to exist"
        )

    p99 = fresh.get("planned_blackout_p99_ms", 0.0)
    base_p99 = base.get("planned_blackout_p99_ms", 0.0)
    if base_p99 > 0:
        ratio = p99 / base_p99
        ceiling = 1.0 + STORM_P99_TOLERANCE
        print(
            f"perf-gate: planned blackout p99 {p99:.4g}ms vs baseline"
            f" {base_p99:.4g}ms ({ratio:.0%}; hard ceiling {ceiling:.0%})"
        )
        if ratio > ceiling:
            failures.append(
                f"planned_blackout_p99_ms at {ratio:.0%} of baseline "
                f"(> {ceiling:.0%}) — sim-clock blackout regressed, this is "
                "not box noise"
            )
    else:
        failures.append("baseline has no planned_blackout_p99_ms metric")

    moves = fresh.get("migrations", 0)
    base_moves = base.get("migrations", 0)
    print(f"perf-gate: planned migrations {moves:.0f} (baseline {base_moves:.0f})")
    if moves < base_moves:
        failures.append(
            f"migration count shrank to {moves:.0f} (baseline {base_moves:.0f})"
        )

    shm = fresh.get("colocated_shm", 0)
    print(f"perf-gate: co-located finale picked shm: {shm:.0f} (hard 1)")
    if shm != 1:
        failures.append(
            "migrating the server onto its peer's host did not land on shm"
        )

    for key in ("planned_blackout_p50_ms", "coordinator_blackout_max_ms",
                "conduits_moved", "image_bytes", "quiesce_timeouts",
                "all_drained"):
        if key in fresh:
            b = f" (baseline {base[key]:.6g})" if key in base else ""
            print(f"perf-gate: info {key} = {fresh[key]:.6g}{b}")

    return failures


def gate_tenant_gateway(fresh, base):
    failures = []

    ratio = fresh.get("p99_isolation_ratio", 0.0)
    print(
        f"perf-gate: latency-tenant p99 contended/uncontended: {ratio:.2f}x"
        f" (hard ceiling {ISOLATION_P99_CEILING}x)"
    )
    if not 0 < ratio <= ISOLATION_P99_CEILING:
        failures.append(
            f"p99_isolation_ratio {ratio:.2f}x breaches the "
            f"{ISOLATION_P99_CEILING}x ceiling — WDRR is not isolating the "
            "latency tenant from the bulk tenant"
        )

    agg = fresh.get("aggregate_goodput_gbps", 0.0)
    base_agg = base.get("aggregate_goodput_gbps", 0.0)
    if base_agg > 0:
        frac = agg / base_agg
        print(
            f"perf-gate: aggregate goodput {agg:.3g} Gbps vs baseline"
            f" {base_agg:.3g} ({frac:.0%}; hard floor {BASELINE_TOLERANCE:.0%})"
        )
        if frac < BASELINE_TOLERANCE:
            failures.append(
                f"aggregate_goodput_gbps at {frac:.0%} of baseline "
                f"(< {BASELINE_TOLERANCE:.0%}) — fairness bought with "
                "throughput, sim-clock metric so this is not box noise"
            )
    else:
        failures.append("baseline has no aggregate_goodput_gbps metric")

    stolen = fresh.get("cross_tenant_attaches", -1)
    print(f"perf-gate: cross-tenant shm attaches: {stolen:.0f} (hard 0)")
    if stolen != 0:
        failures.append(
            f"cross_tenant_attaches = {stolen:.0f} — a foreign tenant "
            "attached another tenant's shm region, hard zero"
        )

    denied = fresh.get("denied_attaches", 0)
    print(f"perf-gate: denied shm attach probes: {denied:.0f} (hard >=1)")
    if denied < 1:
        failures.append(
            "denied_attaches == 0 — the cross-tenant probe was not "
            "exercised (or not audited)"
        )

    for key in ("latency_flows", "bulk_flows", "bulk_resp_kb"):
        v = fresh.get(key, 0)
        b = base.get(key, 0)
        print(f"perf-gate: {key} {v:.0f} (baseline {b:.0f})")
        if v < b:
            failures.append(
                f"{key} shrank to {v:.0f} (baseline {b:.0f}) — contention "
                "may not be quietly reduced to flatter the isolation ratio"
            )

    for key in ("latency_p99_uncontended_us", "latency_p99_contended_us",
                "latency_p50_contended_us", "latency_goodput_gbps",
                "bulk_goodput_gbps", "latency_completed", "bulk_completed",
                "scale_ups", "bulk_pool_final", "churn_launched",
                "churn_retired", "faults_applied"):
        if key in fresh:
            b = f" (baseline {base[key]:.6g})" if key in base else ""
            print(f"perf-gate: info {key} = {fresh[key]:.6g}{b}")

    return failures


GATES = {
    "sim_core": gate_sim_core,
    "connect_storm": gate_connect_storm,
    "decision_storm": gate_decision_storm,
    "socket_stream": gate_socket_stream,
    "live_migration": gate_live_migration,
    "tenant_gateway": gate_tenant_gateway,
}


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_name, fresh = load(argv[1])
    base_name, base = load(argv[2])
    if fresh_name != base_name:
        raise SystemExit(
            f"bench mismatch: fresh is {fresh_name!r}, baseline is {base_name!r}"
        )
    gate = GATES.get(fresh_name)
    if gate is None:
        raise SystemExit(f"no gate registered for bench {fresh_name!r}")

    failures = gate(fresh, base)
    if failures:
        for f in failures:
            print(f"perf-gate: FAIL: {f}", file=sys.stderr)
        return 1
    print("perf-gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
