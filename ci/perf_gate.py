#!/usr/bin/env python3
"""Perf gate for bench_sim_core (stdlib only).

Usage: perf_gate.py FRESH_JSON BASELINE_JSON

The CI box is a noisy 1-core machine, so run-to-run deltas are not a
reliable signal. The gate therefore checks, in order of severity:

  1. HARD  fresh ``speedup`` >= FLOOR (2.0x): the new event loop must beat
     the embedded seed replica measured in the *same* run — self-relative,
     so box noise cancels out. This is the acceptance floor from PR 1.
  2. HARD  fresh ``sim_events_per_sec`` >= TOLERANCE (40%) of the committed
     baseline: generous enough that scheduler noise never trips it, tight
     enough that a real hot-path regression (lost inlining, reintroduced
     per-event allocation) cannot hide.
  3. INFO  everything else (allocs/event, raw deltas) is printed, not gated.
"""

import json
import sys

FLOOR_SPEEDUP = 2.0
BASELINE_TOLERANCE = 0.40


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "sim_core":
        raise SystemExit(f"{path}: expected bench 'sim_core', got {doc.get('bench')!r}")
    return doc["metrics"]


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh = load_metrics(argv[1])
    base = load_metrics(argv[2])

    failures = []

    speedup = fresh.get("speedup", 0.0)
    print(f"perf-gate: fresh speedup vs seed loop: {speedup:.2f}x (floor {FLOOR_SPEEDUP}x)")
    if speedup < FLOOR_SPEEDUP:
        failures.append(
            f"speedup {speedup:.2f}x is below the {FLOOR_SPEEDUP}x floor vs seed"
        )

    fresh_eps = fresh.get("sim_events_per_sec", 0.0)
    base_eps = base.get("sim_events_per_sec", 0.0)
    if base_eps > 0:
        ratio = fresh_eps / base_eps
        print(
            f"perf-gate: sim events/s {fresh_eps:.3g} vs baseline {base_eps:.3g}"
            f" ({ratio:.0%}; hard floor {BASELINE_TOLERANCE:.0%})"
        )
        if ratio < BASELINE_TOLERANCE:
            failures.append(
                f"sim_events_per_sec at {ratio:.0%} of baseline "
                f"(< {BASELINE_TOLERANCE:.0%}) — not explainable by box noise"
            )
    else:
        failures.append("baseline has no sim_events_per_sec metric")

    for key in ("sim_allocs_per_event", "seed_events_per_sec", "events_measured"):
        if key in fresh:
            b = f" (baseline {base[key]:.6g})" if key in base else ""
            print(f"perf-gate: info {key} = {fresh[key]:.6g}{b}")

    if failures:
        for f in failures:
            print(f"perf-gate: FAIL: {f}", file=sys.stderr)
        return 1
    print("perf-gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
