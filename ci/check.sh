#!/usr/bin/env bash
# Staged tier-1 gate. Run from the repo root:
#   ci/check.sh [jobs]             run every stage
#   ci/check.sh --stage N [jobs]   run exactly stage N (assumes earlier
#                                  stages' artifacts exist, e.g. build/)
#   ci/check.sh --from N [jobs]    run stage N and everything after it
#   ci/check.sh --list             print the stage table and exit
#
# Timings for the stages that actually ran land in ci/stage_times.json
# (machine-readable, written even when a stage fails) so gate cost can be
# tracked over time and the slow stage named from CI logs alone.
#
# Stages:
#   1 build          normal config, warnings-as-errors
#   2 test           ctest, normal config
#   3 build-asan     ASan+UBSan config, warnings-as-errors
#   4 test-asan      ctest under ASan+UBSan with LeakSanitizer ENABLED
#   5 chaos-smoke    failover + migration matrices under LSan, migration bench + trace
#   6 examples-smoke quickstart + mapreduce_shuffle run end-to-end (timed)
#   7 bench-smoke    bench_sim_core + storms + bench_socket_stream --json
#   8 trace-validate failover + socket-stream traces vs expected timelines
#   9 perf-gate      ci/perf_gate.py vs the committed baselines
set -euo pipefail

cd "$(dirname "$0")/.."

stage_table() {
  grep -E '^#   [1-9] ' "$0" | sed 's/^#   //'
}

only=0
from=1
jobs=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --stage) only="$2"; shift 2 ;;
    --from)  from="$2"; shift 2 ;;
    --list)  stage_table; exit 0 ;;
    -h|--help) sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) jobs="$1"; shift ;;
  esac
done
jobs="${jobs:-$(nproc)}"

# ---------------------------------------------------------------- timings

times_names=()
times_secs=()
times_status=()

write_times() {
  local out="ci/stage_times.json"
  {
    echo '{'
    echo '  "stages": ['
    local i last=$(( ${#times_names[@]} - 1 ))
    for i in "${!times_names[@]}"; do
      local comma=','
      [[ "$i" -eq "$last" ]] && comma=''
      echo "    {\"stage\": \"${times_names[$i]}\"," \
           "\"seconds\": ${times_secs[$i]}," \
           "\"status\": \"${times_status[$i]}\"}$comma"
    done
    echo '  ]'
    echo '}'
  } >"$out"
}

run_stage() {  # run_stage NUMBER NAME FUNCTION
  local n="$1" name="$2" fn="$3"
  if [[ "$only" -ne 0 ]]; then
    [[ "$n" -eq "$only" ]] || return 0
  elif [[ "$n" -lt "$from" ]]; then
    return 0
  fi
  echo "== stage $n: $name"
  local t0 t1 rc=0
  t0=$(date +%s)
  "$fn" || rc=$?
  t1=$(date +%s)
  times_names+=("$name")
  times_secs+=($((t1 - t0)))
  if [[ "$rc" -ne 0 ]]; then
    times_status+=("failed")
    write_times
    echo "== stage $n ($name) FAILED after $((t1 - t0))s" >&2
    exit "$rc"
  fi
  times_status+=("ok")
  echo "   (stage $n took $((t1 - t0))s)"
}

# ----------------------------------------------------------------- stages

stage_build() {
  cmake -B build -S . -DFREEFLOW_WERROR=ON >/dev/null
  cmake --build build -j "$jobs"
}

stage_test() {
  ctest --test-dir build --output-on-failure -j "$jobs"
}

stage_build_asan() {
  cmake -B build-asan -S . -DFREEFLOW_SANITIZE=ON -DFREEFLOW_WERROR=ON >/dev/null
  cmake --build build-asan -j "$jobs"
}

stage_test_asan() {
  # No detect_leaks=0 and no suppression file: the explicit teardown protocol
  # keeps steady-state ownership a DAG, so every test must exit leak-clean.
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

stage_chaos_smoke() {
  # The fault matrix tears lanes down mid-transfer; running it under ASan+LSan
  # proves failover never leaks or double-frees channel/trunk state. It already
  # ran in stage 4 alongside everything else — this stage re-runs it alone so a
  # chaos regression is named by the gate that owns it.
  ./build-asan/tests/test_faults --gtest_brief=1
  # Same treatment for the migration matrix: planned moves racing NIC death,
  # quiesce-deadline expiry, and proactive partition evacuation under
  # ASan+LSan. The bench then ping-pongs a container under live verified
  # traffic and must show the full coordinated protocol in its trace.
  ./build-asan/tests/test_migration --gtest_brief=1
  ./build/bench/bench_live_migration --json build/BENCH_live_migration.json \
    --trace build/TRACE_live_migration.json
  python3 ci/validate_trace.py build/TRACE_live_migration.json \
    --expect "B:migration,i:quiesce,i:capture,i:transfer,i:resume,E:migration"
  # Tenant-isolation matrix under ASan+LSan: WDRR fairness, cross-tenant shm
  # denial, and the overlapping degrade/restore and trust-revocation
  # regressions all tear down mid-flight state worth leak-checking.
  ./build-asan/tests/test_fabric --gtest_brief=1 --gtest_filter='*Tenant*:*Wdrr*'
  ./build-asan/tests/test_shm --gtest_brief=1 --gtest_filter='*Tenant*:*Accounting*'
}

stage_examples_smoke() {
  # The examples exercise the full user-facing path, including the
  # bidirectional trunk-setup schedule that mapreduce_shuffle's 3x3 flow
  # matrix produces; a hang or an abort here is a regression even if every
  # unit test passes. The stage timer doubles as a coarse wall-clock guard.
  ./build/examples/quickstart >/dev/null
  ./build/examples/mapreduce_shuffle >/dev/null
}

stage_bench_smoke() {
  ./build/bench/bench_sim_core --json build/BENCH_sim_core.json
  ./build/bench/bench_connect_storm --json build/BENCH_connect_storm.json
  ./build/bench/bench_decision_storm --json build/BENCH_decision_storm.json
  # The stream bench exports its failover-phase trace here so the
  # trace-validate stage can assert the splice timeline without re-running.
  ./build/bench/bench_socket_stream --json build/BENCH_socket_stream.json \
    --trace build/TRACE_socket_stream.json
  ./build/bench/bench_tenant_gateway --json build/BENCH_tenant_gateway.json
}

stage_trace_validate() {
  # Runs the failover matrix with Chrome-trace export and checks the trace is
  # well-formed and shows the full kill-rdma recovery timeline. The bench
  # itself FF_CHECKs that the telemetry snapshot in --json matches its own
  # per-conduit retransmit/blackout measurements.
  ./build/bench/bench_failover --json build/BENCH_failover.json \
    --trace build/TRACE_failover.json
  python3 ci/validate_trace.py build/TRACE_failover.json \
    --expect "i:rdma_down,B:failover,i:mark_stale,i:rebind,i:retransmit,E:failover,i:rdma_up,i:re-upgrade"
  python3 -c "import json; json.load(open('build/BENCH_failover.json'))"
  # The stream adapter's trace (exported by bench-smoke) must show both
  # timelines: the adapter's upgrade -> fallback -> re-upgrade dance, and the
  # conduit-level failover it rides on. Two --expect flags, one export.
  python3 ci/validate_trace.py build/TRACE_socket_stream.json \
    --expect "i:stream_upgrade,i:rdma_down,i:stream_fallback,i:rdma_up,i:stream_upgrade" \
    --expect "i:rdma_down,B:failover,i:mark_stale,i:rebind,i:retransmit,E:failover"
}

stage_perf_gate() {
  python3 ci/perf_gate.py build/BENCH_sim_core.json \
    bench/baselines/BENCH_sim_core.json
  python3 ci/perf_gate.py build/BENCH_connect_storm.json \
    bench/baselines/BENCH_connect_storm.json
  python3 ci/perf_gate.py build/BENCH_decision_storm.json \
    bench/baselines/BENCH_decision_storm.json
  python3 ci/perf_gate.py build/BENCH_socket_stream.json \
    bench/baselines/BENCH_socket_stream.json
  python3 ci/perf_gate.py build/BENCH_live_migration.json \
    bench/baselines/BENCH_live_migration.json
  python3 ci/perf_gate.py build/BENCH_tenant_gateway.json \
    bench/baselines/BENCH_tenant_gateway.json
}

# ------------------------------------------------------------------ drive

run_stage 1 build          stage_build
run_stage 2 test           stage_test
run_stage 3 build-asan     stage_build_asan
run_stage 4 test-asan      stage_test_asan
run_stage 5 chaos-smoke    stage_chaos_smoke
run_stage 6 examples-smoke stage_examples_smoke
run_stage 7 bench-smoke    stage_bench_smoke
run_stage 8 trace-validate stage_trace_validate
run_stage 9 perf-gate      stage_perf_gate

write_times
echo "== all selected stages passed (timings: ci/stage_times.json)"
