#!/usr/bin/env bash
# Staged tier-1 gate. Run from the repo root:
#   ci/check.sh [jobs]
#
# Stages:
#   1 build          normal config, warnings-as-errors
#   2 test           ctest, normal config
#   3 build-asan     ASan+UBSan config, warnings-as-errors
#   4 test-asan      ctest under ASan+UBSan with LeakSanitizer ENABLED
#   5 chaos-smoke    failover matrix (test_faults) under LeakSanitizer
#   6 examples-smoke quickstart + mapreduce_shuffle run end-to-end (timed)
#   7 bench-smoke    bench_sim_core + bench_connect_storm + bench_decision_storm
#   8 trace-validate bench_failover --trace + ci/validate_trace.py
#   9 perf-gate      ci/perf_gate.py vs the committed baselines
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

stage_t0=0
stage() {
  local now
  now=$(date +%s)
  if [[ "$stage_t0" -ne 0 ]]; then
    echo "   (stage took $((now - stage_t0))s)"
  fi
  stage_t0=$now
  echo "== $1"
}

stage "build (normal config, -Werror)"
cmake -B build -S . -DFREEFLOW_WERROR=ON >/dev/null
cmake --build build -j "$jobs"

stage "test (normal config)"
ctest --test-dir build --output-on-failure -j "$jobs"

stage "build-asan (ASan+UBSan, -Werror)"
cmake -B build-asan -S . -DFREEFLOW_SANITIZE=ON -DFREEFLOW_WERROR=ON >/dev/null
cmake --build build-asan -j "$jobs"

stage "test-asan (LeakSanitizer enabled)"
# No detect_leaks=0 and no suppression file: the explicit teardown protocol
# keeps steady-state ownership a DAG, so every test must exit leak-clean.
ctest --test-dir build-asan --output-on-failure -j "$jobs"

stage "chaos-smoke (failover matrix under LeakSanitizer)"
# The fault matrix tears lanes down mid-transfer; running it under ASan+LSan
# proves failover never leaks or double-frees channel/trunk state. It already
# ran in stage 4 alongside everything else — this stage re-runs it alone so a
# chaos regression is named by the gate that owns it.
./build-asan/tests/test_faults --gtest_brief=1

stage "examples-smoke (quickstart + mapreduce_shuffle)"
# The examples exercise the full user-facing path, including the
# bidirectional trunk-setup schedule that mapreduce_shuffle's 3x3 flow
# matrix produces; a hang or an abort here is a regression even if every
# unit test passes. The stage timer doubles as a coarse wall-clock guard.
./build/examples/quickstart >/dev/null
./build/examples/mapreduce_shuffle >/dev/null

stage "bench-smoke (bench_sim_core + bench_connect_storm + bench_decision_storm --json)"
./build/bench/bench_sim_core --json build/BENCH_sim_core.json
./build/bench/bench_connect_storm --json build/BENCH_connect_storm.json
./build/bench/bench_decision_storm --json build/BENCH_decision_storm.json

stage "trace-validate (bench_failover --trace + telemetry snapshot)"
# Runs the failover matrix with Chrome-trace export and checks the trace is
# well-formed and shows the full kill-rdma recovery timeline. The bench
# itself FF_CHECKs that the telemetry snapshot in --json matches its own
# per-conduit retransmit/blackout measurements.
./build/bench/bench_failover --json build/BENCH_failover.json \
  --trace build/TRACE_failover.json
python3 ci/validate_trace.py build/TRACE_failover.json \
  --expect "i:rdma_down,B:failover,i:mark_stale,i:rebind,i:retransmit,E:failover,i:rdma_up,i:re-upgrade"
python3 -c "import json; json.load(open('build/BENCH_failover.json'))"

stage "perf-gate (vs bench/baselines)"
python3 ci/perf_gate.py build/BENCH_sim_core.json bench/baselines/BENCH_sim_core.json
python3 ci/perf_gate.py build/BENCH_connect_storm.json \
  bench/baselines/BENCH_connect_storm.json
python3 ci/perf_gate.py build/BENCH_decision_storm.json \
  bench/baselines/BENCH_decision_storm.json

stage "all checks passed"
