#!/usr/bin/env bash
# Tier-1 gate: build + tests in the normal config, then again under
# ASan+UBSan (-DFREEFLOW_SANITIZE=ON). Run from the repo root:
#   ci/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "== normal config (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== sanitized config (build-asan/)"
cmake -B build-asan -S . -DFREEFLOW_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs"
# detect_leaks=0: several tests leak object graphs at exit via known
# Conduit<->Channel shared_ptr cycles (see ROADMAP open items). ASan's
# memory-error and UBSan's undefined-behavior checks stay fully enabled.
ASAN_OPTIONS=detect_leaks=0 \
  ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== all checks passed"
