#include "shm/spsc_ring.h"

#include <bit>
#include <cstring>

namespace freeflow::shm {

SpscRing::SpscRing(std::size_t capacity) {
  FF_CHECK(capacity >= 64);
  capacity = std::bit_ceil(capacity);
  mask_ = capacity - 1;
  storage_.resize(capacity);
}

void SpscRing::copy_in(std::size_t pos, const std::byte* src, std::size_t n) noexcept {
  const std::size_t offset = pos & mask_;
  const std::size_t first = std::min(n, capacity() - offset);
  std::memcpy(storage_.data() + offset, src, first);
  if (first < n) std::memcpy(storage_.data(), src + first, n - first);
}

void SpscRing::copy_out(std::size_t pos, std::byte* dst, std::size_t n) const noexcept {
  const std::size_t offset = pos & mask_;
  const std::size_t first = std::min(n, capacity() - offset);
  std::memcpy(dst, storage_.data() + offset, first);
  if (first < n) std::memcpy(dst + first, storage_.data(), n - first);
}

bool SpscRing::try_push(ByteSpan message) noexcept {
  const std::size_t need = record_size(message.size());
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (capacity() - static_cast<std::size_t>(tail - head) < need) return false;

  const auto len = static_cast<std::uint32_t>(message.size());
  std::byte header[k_header_size];
  std::memcpy(header, &len, k_header_size);
  copy_in(static_cast<std::size_t>(tail), header, k_header_size);
  if (!message.empty()) {
    copy_in(static_cast<std::size_t>(tail + k_header_size), message.data(), message.size());
  }
  tail_.store(tail + need, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SpscRing::try_pop(Buffer& out) noexcept {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  if (tail == head) return false;

  std::uint32_t len = 0;
  std::byte header[k_header_size];
  copy_out(static_cast<std::size_t>(head), header, k_header_size);
  std::memcpy(&len, header, k_header_size);

  out.resize(len);
  if (len != 0) {
    copy_out(static_cast<std::size_t>(head + k_header_size), out.data(), len);
  }
  head_.store(head + record_size(len), std::memory_order_release);
  popped_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace freeflow::shm
