// Simulation-level shared-memory message channel between two containers on
// the same host. Payload bytes really travel through an SpscRing; the cost
// model charges sender/receiver CPU (enqueue + memcpy) and the host memory
// bus, which is what makes shm throughput plateau at the bus for many pairs
// (paper Fig. 2a) while staying far above TCP/RDMA for one pair.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "fabric/host.h"
#include "shm/spsc_ring.h"
#include "sim/resource.h"

namespace freeflow::shm {

/// One direction of a channel.
///
/// Lifetime: work queued on the lane's own executors dies with the lane
/// (SerialExecutor's liveness token turns in-flight pool completions into
/// no-ops), so queued jobs never pin their owner — no leak cycle at
/// shutdown. Only the cross-core wakeup hop through the event loop escapes
/// the lane; when the lane is shared_ptr-owned (agent-brokered channels)
/// that hop carries a keep-alive, so an endpoint may be torn down with
/// traffic still in the ring without dangling the pending event. Stack- or
/// unique-owned lanes (workload drivers) must simply outlive the run.
class ShmLane : public std::enable_shared_from_this<ShmLane> {
 public:
  ShmLane(fabric::Host& host, std::size_t ring_bytes);

  ShmLane(const ShmLane&) = delete;
  ShmLane& operator=(const ShmLane&) = delete;

  void set_sender_account(sim::UsageAccount* account) noexcept { sender_account_ = account; }
  void set_receiver_account(sim::UsageAccount* account) noexcept { receiver_account_ = account; }
  void set_receiver(std::function<void(Buffer&&)> on_message) {
    on_message_ = std::move(on_message);
  }

  /// Invoked whenever a pop frees ring space (senders blocked on
  /// would_block re-arm themselves here).
  void set_on_space(std::function<void()> cb) { on_space_ = std::move(cb); }

  [[nodiscard]] bool can_send(std::size_t payload) const noexcept {
    return ring_.can_push(payload);
  }

  /// Enqueues one message (bytes are copied into the ring; the caller keeps
  /// its buffer). Returns would_block, with no side effects, when the ring
  /// lacks space — retry from on_space.
  Status send(ByteSpan message);

  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept { return bytes_delivered_; }
  [[nodiscard]] SpscRing& ring() noexcept { return ring_; }
  [[nodiscard]] fabric::Host& host() noexcept { return host_; }

 private:
  void deliver_one(std::size_t payload_size);

  fabric::Host& host_;
  /// Producer and consumer are each one thread: their copies serialize.
  sim::SerialExecutor tx_thread_;
  sim::SerialExecutor rx_thread_;
  SpscRing ring_;
  std::function<void(Buffer&&)> on_message_;
  std::function<void()> on_space_;
  sim::UsageAccount* sender_account_ = nullptr;
  sim::UsageAccount* receiver_account_ = nullptr;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

/// Bidirectional channel: two lanes over one logical shm region.
class ShmChannel {
 public:
  ShmChannel(fabric::Host& host, std::size_t ring_bytes)
      : a_to_b_(host, ring_bytes), b_to_a_(host, ring_bytes) {}

  [[nodiscard]] ShmLane& a_to_b() noexcept { return a_to_b_; }
  [[nodiscard]] ShmLane& b_to_a() noexcept { return b_to_a_; }

 private:
  ShmLane a_to_b_;
  ShmLane b_to_a_;
};

/// Models "memcpy uses CPU and memory bus simultaneously": charges the bus
/// as contention-only work, defers the CPU job by the bus backlog observed
/// before our own charge, so the binding constraint approximates
/// max(cpu, bus) rather than their sum.
void charge_bus_then_cpu(fabric::Host& host, double bus_bytes, double cpu_units,
                         sim::UsageAccount* account, std::function<void()> done);

}  // namespace freeflow::shm
