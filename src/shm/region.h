// Shared-memory region registry. Regions model POSIX shm segments: they are
// owned by a tenant and may only be attached by containers whose tenant is on
// the region's allow-list — this is where FreeFlow's "trade isolation only
// among trusting containers" policy is enforced mechanically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace freeflow::shm {

using RegionId = std::uint64_t;
using TenantId = std::uint32_t;

class Region {
 public:
  Region(RegionId id, TenantId owner, std::size_t size)
      : id_(id), owner_(owner), bytes_(size) {}

  [[nodiscard]] RegionId id() const noexcept { return id_; }
  [[nodiscard]] TenantId owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] Buffer& bytes() noexcept { return bytes_; }

  void allow(TenantId tenant) { allowed_.insert(tenant); }
  [[nodiscard]] bool allows(TenantId tenant) const noexcept {
    return tenant == owner_ || allowed_.contains(tenant);
  }

 private:
  RegionId id_;
  TenantId owner_;
  Buffer bytes_;
  std::unordered_set<TenantId> allowed_;
};

/// Per-host registry of shm regions (models /dev/shm of one machine).
class RegionRegistry {
 public:
  /// Creates a region owned by `owner`. Fails if the host shm budget would
  /// be exceeded.
  Result<std::shared_ptr<Region>> create(TenantId owner, std::size_t size);

  /// Attaches an existing region; permission-checked against the tenant.
  Result<std::shared_ptr<Region>> attach(RegionId id, TenantId tenant);

  /// Removes a region from the registry; outstanding shared_ptr holders
  /// keep it (and its budget charge) alive until the last one releases.
  Status destroy(RegionId id);

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  /// Bytes actually pinned in host shm: charged at create, released when
  /// the LAST holder drops the region — destroy() with attachments still
  /// outstanding does not free anything (the segment is merely unlinked,
  /// exactly like shm_unlink with live mmaps).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return acct_->live_bytes; }

  void set_capacity(std::size_t bytes) noexcept { capacity_ = bytes; }

  /// Attach attempts rejected by the tenant allow-list (isolation audit).
  [[nodiscard]] std::uint64_t denied_attaches() const noexcept { return denied_attaches_; }
  /// Successful attaches by a tenant other than the owner — each one was
  /// explicitly granted via Region::allow; anything else is denied.
  [[nodiscard]] std::uint64_t foreign_attaches() const noexcept { return foreign_attaches_; }

 private:
  /// Live-byte tally shared with every region's deleter, so a registry that
  /// dies before the last region release never dangles.
  struct Accounting {
    std::size_t live_bytes = 0;
  };

  RegionId next_id_ = 1;
  std::size_t capacity_ = 1ULL << 34;  // 16 GiB of host shm by default
  std::shared_ptr<Accounting> acct_ = std::make_shared<Accounting>();
  std::uint64_t denied_attaches_ = 0;
  std::uint64_t foreign_attaches_ = 0;
  std::unordered_map<RegionId, std::shared_ptr<Region>> regions_;
};

}  // namespace freeflow::shm
