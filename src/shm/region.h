// Shared-memory region registry. Regions model POSIX shm segments: they are
// owned by a tenant and may only be attached by containers whose tenant is on
// the region's allow-list — this is where FreeFlow's "trade isolation only
// among trusting containers" policy is enforced mechanically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace freeflow::shm {

using RegionId = std::uint64_t;
using TenantId = std::uint32_t;

class Region {
 public:
  Region(RegionId id, TenantId owner, std::size_t size)
      : id_(id), owner_(owner), bytes_(size) {}

  [[nodiscard]] RegionId id() const noexcept { return id_; }
  [[nodiscard]] TenantId owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] Buffer& bytes() noexcept { return bytes_; }

  void allow(TenantId tenant) { allowed_.insert(tenant); }
  [[nodiscard]] bool allows(TenantId tenant) const noexcept {
    return tenant == owner_ || allowed_.contains(tenant);
  }

 private:
  RegionId id_;
  TenantId owner_;
  Buffer bytes_;
  std::unordered_set<TenantId> allowed_;
};

/// Per-host registry of shm regions (models /dev/shm of one machine).
class RegionRegistry {
 public:
  /// Creates a region owned by `owner`. Fails if the host shm budget would
  /// be exceeded.
  Result<std::shared_ptr<Region>> create(TenantId owner, std::size_t size);

  /// Attaches an existing region; permission-checked against the tenant.
  Result<std::shared_ptr<Region>> attach(RegionId id, TenantId tenant);

  /// Removes a region; outstanding shared_ptr holders keep it alive.
  Status destroy(RegionId id);

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return bytes_in_use_; }

  void set_capacity(std::size_t bytes) noexcept { capacity_ = bytes; }

 private:
  RegionId next_id_ = 1;
  std::size_t capacity_ = 1ULL << 34;  // 16 GiB of host shm by default
  std::size_t bytes_in_use_ = 0;
  std::unordered_map<RegionId, std::shared_ptr<Region>> regions_;
};

}  // namespace freeflow::shm
