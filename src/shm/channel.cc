#include "shm/channel.h"

namespace freeflow::shm {

void charge_bus_then_cpu(fabric::Host& host, double bus_bytes, double cpu_units,
                         sim::UsageAccount* account, std::function<void()> done) {
  const SimDuration bus_wait = host.membus().backlog_ns();
  if (bus_bytes > 0) {
    host.membus().submit(bus_bytes, nullptr);
  }
  host.loop().schedule(bus_wait, [&host, cpu_units, account, cb = std::move(done)]() mutable {
    host.cpu().submit(cpu_units, std::move(cb), account);
  });
}

ShmLane::ShmLane(fabric::Host& host, std::size_t ring_bytes)
    : host_(host), tx_thread_(host.cpu()), rx_thread_(host.cpu()), ring_(ring_bytes) {}

Status ShmLane::send(ByteSpan message) {
  const std::size_t size = message.size();
  if (!ring_.can_push(size)) {
    return would_block("shm ring full");
  }
  FF_CHECK(ring_.try_push(message));

  const auto& model = host_.cost_model();
  const double side_bus = static_cast<double>(size) * model.shm_bus_bytes_factor / 2.0;
  const double send_cpu =
      model.shm_post_ns + model.shm_copy_ns_per_byte * static_cast<double>(size);

  tx_thread_.submit(send_cpu,
                    [this, size]() {
                      // Cross-core notification, then the receiver's poll +
                      // copy-out. The loop hop escapes the lane's own
                      // executors, so it alone carries a keep-alive: null for
                      // stack/unique-owned lanes, the lane itself when shared.
                      auto self = weak_from_this().lock();
                      host_.loop().schedule(host_.cost_model().shm_wakeup_ns,
                                            [this, self, size]() { deliver_one(size); });
                    },
                    sender_account_, &host_.membus(), side_bus);
  return ok_status();
}

void ShmLane::deliver_one(std::size_t payload_size) {
  const auto& model = host_.cost_model();
  const double side_bus =
      static_cast<double>(payload_size) * model.shm_bus_bytes_factor / 2.0;
  const double recv_cpu =
      model.shm_poll_ns + model.shm_copy_ns_per_byte * static_cast<double>(payload_size);

  rx_thread_.submit(recv_cpu, [this]() {
    // Pin the lane across the handlers: delivering a teardown message (bye)
    // may drop the channel's last reference to us mid-callback. Acquired at
    // run time, not capture time, so queued jobs still don't pin their owner.
    auto self = weak_from_this().lock();
    Buffer out;
    FF_CHECK(ring_.try_pop(out));
    ++delivered_;
    bytes_delivered_ += out.size();
    // Copy the handlers: a callback may re-register itself (e.g. a channel
    // handshake swapping in the data-phase handler) while executing.
    if (on_message_) {
      auto handler = on_message_;
      handler(std::move(out));
    }
    if (on_space_) {
      auto handler = on_space_;
      handler();
    }
  }, receiver_account_, &host_.membus(), side_bus);
}

}  // namespace freeflow::shm
