// Lock-free single-producer/single-consumer byte ring. This is the real data
// structure FreeFlow's shm channels move payloads through: records are
// length-prefixed and the head/tail indices are atomics with acquire/release
// ordering, so the same code is safe when driven by two actual threads (the
// micro-benchmark does exactly that).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace freeflow::shm {

class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two; must be >= 64.
  explicit SpscRing(std::size_t capacity);

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Appends one message. Returns false (ring unchanged) if there is not
  /// enough free space for the record (4-byte header + payload).
  bool try_push(ByteSpan message) noexcept;

  /// Pops the oldest message into `out` (resized to fit). Returns false if
  /// the ring is empty.
  bool try_pop(Buffer& out) noexcept;

  /// Bytes a message of `payload` size occupies in the ring.
  [[nodiscard]] static std::size_t record_size(std::size_t payload) noexcept {
    return k_header_size + payload;
  }

  [[nodiscard]] bool can_push(std::size_t payload) const noexcept {
    return free_bytes() >= record_size(payload);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    return static_cast<std::size_t>(
        tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire));
  }
  [[nodiscard]] std::size_t free_bytes() const noexcept { return capacity() - used_bytes(); }
  [[nodiscard]] bool empty() const noexcept { return used_bytes() == 0; }

  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const noexcept {
    return popped_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t k_header_size = 4;

  void copy_in(std::size_t pos, const std::byte* src, std::size_t n) noexcept;
  void copy_out(std::size_t pos, std::byte* dst, std::size_t n) const noexcept;

  std::size_t mask_;
  Buffer storage_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
};

}  // namespace freeflow::shm
