#include "shm/region.h"

namespace freeflow::shm {

Result<std::shared_ptr<Region>> RegionRegistry::create(TenantId owner, std::size_t size) {
  if (size == 0) return invalid_argument("shm region size must be > 0");
  if (bytes_in_use_ + size > capacity_) {
    return resource_exhausted("host shm capacity exceeded");
  }
  auto region = std::make_shared<Region>(next_id_++, owner, size);
  regions_.emplace(region->id(), region);
  bytes_in_use_ += size;
  return region;
}

Result<std::shared_ptr<Region>> RegionRegistry::attach(RegionId id, TenantId tenant) {
  auto it = regions_.find(id);
  if (it == regions_.end()) return not_found("no shm region " + std::to_string(id));
  if (!it->second->allows(tenant)) {
    return permission_denied("tenant " + std::to_string(tenant) +
                             " may not attach region " + std::to_string(id));
  }
  return it->second;
}

Status RegionRegistry::destroy(RegionId id) {
  auto it = regions_.find(id);
  if (it == regions_.end()) return not_found("no shm region " + std::to_string(id));
  bytes_in_use_ -= it->second->size();
  regions_.erase(it);
  return ok_status();
}

}  // namespace freeflow::shm
