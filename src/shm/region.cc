#include "shm/region.h"

namespace freeflow::shm {

Result<std::shared_ptr<Region>> RegionRegistry::create(TenantId owner, std::size_t size) {
  if (size == 0) return invalid_argument("shm region size must be > 0");
  if (acct_->live_bytes + size > capacity_) {
    return resource_exhausted("host shm capacity exceeded");
  }
  // The budget charge rides the control block, not the registry entry: the
  // deleter releases the bytes when the LAST holder (registry or outstanding
  // attachment) lets go, so destroy-with-attachments cannot under-count.
  auto acct = acct_;
  std::shared_ptr<Region> region(new Region(next_id_++, owner, size),
                                 [acct](Region* r) {
                                   acct->live_bytes -= r->size();
                                   delete r;
                                 });
  regions_.emplace(region->id(), region);
  acct_->live_bytes += size;
  return region;
}

Result<std::shared_ptr<Region>> RegionRegistry::attach(RegionId id, TenantId tenant) {
  auto it = regions_.find(id);
  if (it == regions_.end()) return not_found("no shm region " + std::to_string(id));
  if (!it->second->allows(tenant)) {
    ++denied_attaches_;
    return permission_denied("tenant " + std::to_string(tenant) +
                             " may not attach region " + std::to_string(id));
  }
  if (tenant != it->second->owner()) ++foreign_attaches_;
  return it->second;
}

Status RegionRegistry::destroy(RegionId id) {
  auto it = regions_.find(id);
  if (it == regions_.end()) return not_found("no shm region " + std::to_string(id));
  regions_.erase(it);
  return ok_status();
}

}  // namespace freeflow::shm
