// Sim-clock-native metrics: named counters, gauges and histograms organized
// by entity ("conduit/7/retransmits", "nic/0/drops/rdma_chunk"). The
// registry hands out stable pointers, so instrumented hot paths pay one
// pointer-chase and one increment — no name lookup, no allocation, no
// branch on "is telemetry on" (unwired objects point at a shared discard
// sink instead of carrying null checks).
//
// Snapshots are deterministic: names are kept sorted, values depend only on
// simulation history, so two seeded runs export byte-identical JSON.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/histogram.h"

namespace freeflow::telemetry {

/// Monotonic event count. Increment-only by design; a registry snapshot can
/// difference two exports, the counter itself never goes backwards.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  /// Shared sink for instrumented objects that were never wired to a
  /// registry (bare conduits in unit tests): increments land nowhere
  /// observable, and the hot path stays branch-free.
  static Counter* discard() noexcept {
    static Counter sink;
    return &sink;
  }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (window occupancy, graveyard size).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t d) noexcept { value_ += d; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

  static Gauge* discard() noexcept {
    static Gauge sink;
    return &sink;
  }

 private:
  std::int64_t value_ = 0;
};

/// Shared discard histogram (see Counter::discard).
Histogram* discard_histogram() noexcept;

/// Owns every metric of one simulated deployment. Lookup-or-create by name;
/// returned pointers are stable for the registry's lifetime (deque
/// storage). Single-threaded, like the simulation itself.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, int sub_buckets_log2 = 5);

  /// Sampled-at-snapshot gauge: `fn` runs during snapshot_json(), so values
  /// like "NIC tx utilization so far" need no hot-path updates. The owner
  /// of whatever `fn` captures must unregister_probe() before dying if the
  /// registry can outlive it.
  void register_probe(const std::string& name, std::function<double()> fn);
  void unregister_probe(const std::string& name);

  /// Null when absent — never creates (introspection/tests).
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;
  /// Convenience: the counter's value, or 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size() + probes_.size();
  }

  /// Deterministic JSON export, sorted by name within each section:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  [[nodiscard]] std::string snapshot_json() const;

 private:
  std::deque<Counter> counter_store_;
  std::deque<Gauge> gauge_store_;
  std::deque<Histogram> histogram_store_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::map<std::string, std::function<double()>> probes_;
};

}  // namespace freeflow::telemetry
