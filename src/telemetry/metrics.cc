#include "telemetry/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace freeflow::telemetry {

Histogram* discard_histogram() noexcept {
  static Histogram sink;
  return &sink;
}

Counter& MetricRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  counter_store_.emplace_back();
  Counter* c = &counter_store_.back();
  counters_.emplace(name, c);
  return *c;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  gauge_store_.emplace_back();
  Gauge* g = &gauge_store_.back();
  gauges_.emplace(name, g);
  return *g;
}

Histogram& MetricRegistry::histogram(const std::string& name, int sub_buckets_log2) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  histogram_store_.emplace_back(sub_buckets_log2);
  Histogram* h = &histogram_store_.back();
  histograms_.emplace(name, h);
  return *h;
}

void MetricRegistry::register_probe(const std::string& name, std::function<double()> fn) {
  probes_[name] = std::move(fn);
}

void MetricRegistry::unregister_probe(const std::string& name) { probes_.erase(name); }

const Counter* MetricRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second;
}

const Gauge* MetricRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second;
}

const Histogram* MetricRegistry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second;
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string MetricRegistry::snapshot_json() const {
  // std::map iteration is name-sorted, so the export order — and for a
  // deterministic simulation, the whole byte stream — is reproducible.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, c->value());
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, g->value());
    out += buf;
  }
  for (const auto& [name, fn] : probes_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_double(out, fn());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  ":{\"count\":%" PRIu64 ",\"min\":%" PRId64 ",\"max\":%" PRId64
                  ",\"mean\":%.6g,\"p50\":%" PRId64 ",\"p99\":%" PRId64 "}",
                  h->count(), h->min(), h->max(), h->mean(), h->p50(), h->p99());
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace freeflow::telemetry
