// Chrome-trace-format tracer on the virtual clock. Events accumulate in
// memory (the simulation is single-threaded and runs are short) and export
// as a `{"traceEvents":[...]}` JSON array loadable by chrome://tracing and
// Perfetto.
//
// Mapping of simulation entities onto the trace model (DESIGN.md §10):
//   pid — host id (one "process" per simulated host; orchestrator = pid 0)
//   tid — entity within the host (conduit token, NIC, agent)
//   ts  — virtual time in microseconds (fractional; sim clock is ns)
// Span phases use B/E pairs; one-shot markers (fault injected, retransmit
// burst, re-upgrade) use instants ("i"). Metadata ("M") names pids/tids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/event_loop.h"

namespace freeflow::telemetry {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'i';  // B, E, i, M
  SimTime ts_ns = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string args_json;  // pre-rendered JSON object ("{...}"), or empty
};

class Tracer {
 public:
  explicit Tracer(sim::EventLoop* loop = nullptr) noexcept : loop_(loop) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_clock(sim::EventLoop* loop) noexcept { loop_ = loop; }
  /// Disabled tracers drop events at the record call — instrumentation
  /// stays in place, memory stays flat for metrics-only runs.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Duration-span begin/end pair; nest within (pid, tid) like call stacks.
  void begin(const std::string& cat, const std::string& name, std::uint32_t pid,
             std::uint32_t tid, std::string args_json = {});
  void end(const std::string& cat, const std::string& name, std::uint32_t pid,
           std::uint32_t tid, std::string args_json = {});
  /// One-shot marker at now().
  void instant(const std::string& cat, const std::string& name, std::uint32_t pid,
               std::uint32_t tid, std::string args_json = {});
  /// Metadata: labels the pid row ("host 2") in the viewer.
  void name_process(std::uint32_t pid, const std::string& name);
  void name_thread(std::uint32_t pid, std::uint32_t tid, const std::string& name);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() noexcept { events_.clear(); }

  /// Renders `{"traceEvents":[...],"displayTimeUnit":"ns"}`.
  [[nodiscard]] std::string export_json() const;
  /// Writes export_json() to `path`; false on I/O failure.
  bool export_to_file(const std::string& path) const;

  /// Renders a one-pair args object: {"key":"value"} with escaping.
  static std::string arg(const std::string& key, const std::string& value);

 private:
  void push(char ph, const std::string& cat, const std::string& name, std::uint32_t pid,
            std::uint32_t tid, std::string args_json);

  sim::EventLoop* loop_ = nullptr;
  bool enabled_ = true;
  std::vector<TraceEvent> events_;
};

}  // namespace freeflow::telemetry
