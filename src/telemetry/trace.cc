#include "telemetry/trace.h"

#include <cstdio>

namespace freeflow::telemetry {

void Tracer::push(char ph, const std::string& cat, const std::string& name,
                  std::uint32_t pid, std::uint32_t tid, std::string args_json) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = ph;
  ev.ts_ns = loop_ != nullptr ? loop_->now() : 0;
  ev.pid = pid;
  ev.tid = tid;
  ev.args_json = std::move(args_json);
  events_.push_back(std::move(ev));
}

void Tracer::begin(const std::string& cat, const std::string& name, std::uint32_t pid,
                   std::uint32_t tid, std::string args_json) {
  push('B', cat, name, pid, tid, std::move(args_json));
}

void Tracer::end(const std::string& cat, const std::string& name, std::uint32_t pid,
                 std::uint32_t tid, std::string args_json) {
  push('E', cat, name, pid, tid, std::move(args_json));
}

void Tracer::instant(const std::string& cat, const std::string& name, std::uint32_t pid,
                     std::uint32_t tid, std::string args_json) {
  push('i', cat, name, pid, tid, std::move(args_json));
}

void Tracer::name_process(std::uint32_t pid, const std::string& name) {
  push('M', "__metadata", "process_name", pid, 0, arg("name", name));
}

void Tracer::name_thread(std::uint32_t pid, std::uint32_t tid, const std::string& name) {
  push('M', "__metadata", "thread_name", pid, tid, arg("name", name));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string Tracer::arg(const std::string& key, const std::string& value) {
  std::string out = "{";
  append_escaped(out, key);
  out += ':';
  append_escaped(out, value);
  out += '}';
  return out;
}

std::string Tracer::export_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_escaped(out, ev.name);
    out += ",\"cat\":";
    append_escaped(out, ev.cat);
    char buf[128];
    // ts is microseconds in the trace format; the sim clock is ns, so emit
    // three fixed decimals to keep nanosecond resolution losslessly.
    std::snprintf(buf, sizeof buf, ",\"ph\":\"%c\",\"ts\":%lld.%03lld,\"pid\":%u,\"tid\":%u",
                  ev.ph, static_cast<long long>(ev.ts_ns / 1000),
                  static_cast<long long>(ev.ts_ns % 1000), ev.pid, ev.tid);
    out += buf;
    // Instants need a scope; "t" (thread) keeps them on their tid row.
    if (ev.ph == 'i') out += ",\"s\":\"t\"";
    if (!ev.args_json.empty()) {
      out += ",\"args\":";
      out += ev.args_json;
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool Tracer::export_to_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = export_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace freeflow::telemetry
