// Telemetry hub: one MetricRegistry + one Tracer per simulated deployment,
// owned by fabric::Cluster so every layer that can reach the cluster
// (orchestrator, agents, conduits via their agent fabric, NICs) shares the
// same sink. Entity naming scheme (DESIGN.md §10):
//   conduit/<token>/c<container>/<metric>   nic/<host>/<metric>[/<packet-kind>]
//   agent/<host>/<metric>                   orchestrator/<metric>
// (both endpoints of a channel share the token, hence the container leg)
#pragma once

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace freeflow::telemetry {

class Telemetry {
 public:
  explicit Telemetry(sim::EventLoop* loop = nullptr) noexcept : tracer_(loop) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }

 private:
  MetricRegistry metrics_;
  Tracer tracer_;
};

}  // namespace freeflow::telemetry
