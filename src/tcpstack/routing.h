// Longest-prefix-match routing table. Used by the overlay routers to map
// container IPs (and subnets learned via the BGP-lite exchange) to next
// hops, and unit-tested as a standalone component.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "tcpstack/ip.h"

namespace freeflow::tcp {

template <typename NextHop>
class RoutingTable {
 public:
  /// Adds or replaces the route for `subnet`.
  void add_route(const Subnet& subnet, NextHop hop) {
    for (auto& e : entries_) {
      if (e.subnet.base == subnet.base && e.subnet.prefix_len == subnet.prefix_len) {
        e.hop = std::move(hop);
        return;
      }
    }
    entries_.push_back({subnet, std::move(hop)});
  }

  void remove_route(const Subnet& subnet) {
    std::erase_if(entries_, [&](const Entry& e) {
      return e.subnet.base == subnet.base && e.subnet.prefix_len == subnet.prefix_len;
    });
  }

  /// Removes the route only while it still points at `hop`: an in-flight
  /// withdrawal must not clobber a newer announcement that already replaced
  /// the route (BGP implicit-withdraw semantics).
  void remove_route(const Subnet& subnet, const NextHop& hop) {
    std::erase_if(entries_, [&](const Entry& e) {
      return e.subnet.base == subnet.base &&
             e.subnet.prefix_len == subnet.prefix_len && e.hop == hop;
    });
  }

  /// Longest-prefix match; nullopt when no route covers `addr`.
  [[nodiscard]] std::optional<NextHop> lookup(Ipv4Addr addr) const {
    const Entry* best = nullptr;
    for (const auto& e : entries_) {
      if (e.subnet.contains(addr) &&
          (best == nullptr || e.subnet.prefix_len > best->subnet.prefix_len)) {
        best = &e;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->hop;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

 private:
  struct Entry {
    Subnet subnet;
    NextHop hop;
  };
  std::vector<Entry> entries_;
};

}  // namespace freeflow::tcp
