#include "tcpstack/connection.h"

#include <algorithm>

#include "common/logging.h"
#include "tcpstack/network.h"

namespace freeflow::tcp {

TcpConnection::TcpConnection(TcpNetwork& net, FourTuple flow,
                             std::shared_ptr<const PathPair> to_peer, ConnState state)
    : net_(net), flow_(flow), to_peer_(std::move(to_peer)), state_(state) {}

bool TcpConnection::writable(std::size_t bytes) const noexcept {
  return state_ == ConnState::established && tx_queue_bytes_ + bytes <= tx_limit_bytes_;
}

Status TcpConnection::send(Buffer data) {
  if (state_ != ConnState::established) {
    return failed_precondition("connection not established");
  }
  if (data.empty()) return ok_status();
  if (tx_queue_bytes_ + data.size() > tx_limit_bytes_) {
    return would_block("send buffer full");
  }
  // Segment into GSO chunks.
  const std::size_t chunk_size = net_.cost_model().tcp_chunk_bytes;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n = std::min(chunk_size, data.size() - offset);
    Buffer chunk(data.data() + offset, n);
    tx_queue_bytes_ += n;
    tx_queue_.push_back(std::move(chunk));
    offset += n;
  }
  pump();
  return ok_status();
}

void TcpConnection::pump() {
  const auto window = static_cast<std::uint64_t>(net_.cost_model().tcp_window_chunks);
  while (snd_nxt_ - snd_una_ < window && !tx_queue_.empty()) {
    Buffer chunk = std::move(tx_queue_.front());
    tx_queue_.pop_front();
    tx_queue_bytes_ -= chunk.size();
    const std::uint64_t seq = snd_nxt_++;
    bytes_sent_ += chunk.size();
    sent_at_.emplace(seq, net_.loop().now());
    transmit_chunk(seq, chunk);
    inflight_.emplace(seq, std::move(chunk));
  }
  if (!inflight_.empty() && !rto_timer_.pending()) arm_rto();
  if (tx_queue_.empty() && fin_pending_ && inflight_.empty()) {
    fin_pending_ = false;
    fin_sent_ = true;
    send_control(SegKind::fin);
    maybe_finish_close();
  }
}

void TcpConnection::transmit_chunk(std::uint64_t seq, const Buffer& chunk) {
  auto seg = acquire_segment();
  seg->flow = flow_;
  seg->kind = SegKind::data;
  seg->seq = seq;
  seg->payload = chunk;
  to_peer_->data.walk(std::move(seg), [&net = net_](SegmentPtr s) { net.demux(s); });
}

void TcpConnection::send_control(SegKind kind, std::uint64_t seq) {
  auto seg = acquire_segment();
  seg->flow = flow_;
  seg->kind = kind;
  seg->seq = seq;
  to_peer_->control.walk(std::move(seg), [&net = net_](SegmentPtr s) { net.demux(s); });
}

void TcpConnection::on_segment(const SegmentPtr& seg) {
  switch (seg->kind) {
    case SegKind::data:
      handle_data(seg);
      break;
    case SegKind::ack:
      handle_ack(seg->seq);
      break;
    case SegKind::fin:
      peer_fin_ = true;
      if (on_close_) on_close_();
      maybe_finish_close();
      break;
    case SegKind::rst:
      state_ = ConnState::closed;
      if (on_close_) on_close_();
      teardown();
      break;
    case SegKind::syn:
    case SegKind::syn_ack:
    case SegKind::handshake_ack:
      // Handshake segments are handled by TcpNetwork::demux.
      break;
  }
}

void TcpConnection::handle_data(const SegmentPtr& seg) {
  if (seg->seq == rcv_nxt_) {
    ++rcv_nxt_;
    bytes_received_ += seg->payload.size();
    send_control(SegKind::ack, rcv_nxt_);
    if (on_data_) {
      auto handler = on_data_;  // survives reentrant set_on_data
      handler(std::move(seg->payload));
    }
  } else {
    // Go-back-N: out-of-order chunks are dropped; re-ack the expected seq.
    send_control(SegKind::ack, rcv_nxt_);
  }
}

void TcpConnection::handle_ack(std::uint64_t ack_seq) {
  if (ack_seq > snd_una_) {
    dup_acks_ = 0;
    while (!inflight_.empty() && inflight_.begin()->first < ack_seq) {
      const std::uint64_t seq = inflight_.begin()->first;
      // RTT sample from chunks acked on their first transmission (Karn).
      auto sit = sent_at_.find(seq);
      if (sit != sent_at_.end()) {
        update_rtt(net_.loop().now() - sit->second);
        sent_at_.erase(sit);
      }
      bytes_acked_ += inflight_.begin()->second.size();
      inflight_.erase(inflight_.begin());
    }
    snd_una_ = ack_seq;
    rto_timer_.cancel();
    if (!inflight_.empty()) arm_rto();
    pump();
    if (on_writable_ && writable()) on_writable_();
    if (state_ == ConnState::closing) maybe_finish_close();
  } else if (ack_seq == snd_una_ && !inflight_.empty()) {
    if (++dup_acks_ >= 3) {
      dup_acks_ = 0;
      // Fast retransmit of the first unacked chunk.
      auto it = inflight_.find(snd_una_);
      if (it != inflight_.end()) {
        ++retransmits_;
        sent_at_.erase(it->first);
        transmit_chunk(it->first, it->second);
      }
    }
  }
}

SimDuration TcpConnection::rto() const noexcept {
  if (srtt_ == 0) return net_.cost_model().tcp_rto_ns;  // no sample yet
  // RFC 6298: RTO = SRTT + 4*RTTVAR, floored so jitter can't spuriously fire.
  const SimDuration computed = srtt_ + 4 * rttvar_;
  return std::max<SimDuration>(computed, 200 * k_microsecond);
}

void TcpConnection::update_rtt(SimDuration sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    return;
  }
  const SimDuration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
  rttvar_ = (3 * rttvar_ + err) / 4;        // beta = 1/4
  srtt_ = (7 * srtt_ + sample) / 8;         // alpha = 1/8
}

void TcpConnection::arm_rto() {
  rto_timer_.cancel();
  auto self = weak_from_this();
  rto_timer_ = net_.loop().schedule_cancellable(rto(), [self]() {
    if (auto conn = self.lock()) conn->on_rto();
  });
}

void TcpConnection::on_rto() {
  if (inflight_.empty()) return;
  // Go-back-N: retransmit everything outstanding, in order. Retransmitted
  // chunks lose their RTT-sample eligibility (Karn's algorithm).
  for (const auto& [seq, chunk] : inflight_) {
    ++retransmits_;
    sent_at_.erase(seq);
    transmit_chunk(seq, chunk);
  }
  // Exponential backoff via rttvar inflation on timeout.
  rttvar_ = std::max<SimDuration>(rttvar_ * 2, k_microsecond);
  arm_rto();
}

void TcpConnection::close() {
  if (state_ == ConnState::closed || state_ == ConnState::closing) return;
  state_ = ConnState::closing;
  if (tx_queue_.empty() && inflight_.empty()) {
    fin_sent_ = true;
    send_control(SegKind::fin);
    maybe_finish_close();
  } else {
    fin_pending_ = true;
  }
}

void TcpConnection::maybe_finish_close() {
  if (fin_sent_ && peer_fin_ && inflight_.empty() && tx_queue_.empty()) {
    state_ = ConnState::closed;
    teardown();
  }
}

void TcpConnection::teardown() {
  rto_timer_.cancel();
  net_.forget(flow_);
  // The connection just left the demux; nothing can invoke the app callbacks
  // again, and keeping them would pin any stream adapter captured inside.
  release_callbacks();
}

void TcpConnection::enter_established() { state_ = ConnState::established; }

}  // namespace freeflow::tcp
