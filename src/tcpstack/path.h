// Packet paths: a segment traverses an ordered chain of hops, each charging
// work to the resource it models (sender stack CPU, veth+bridge softirq,
// overlay router core, NIC wire, receiver softirq) before delivery. The
// "hairpin" penalties of container networking (paper Fig. 1) are expressed
// entirely as hop composition, so one TCP implementation serves host mode,
// bridge mode, overlay mode and FreeFlow's fallback alike.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "fabric/host.h"
#include "fabric/packet.h"
#include "sim/resource.h"
#include "tcpstack/segment.h"

namespace freeflow::tcp {

class Hop {
 public:
  virtual ~Hop() = default;
  /// Processes `seg`; invokes `next` when the segment moves on. A hop that
  /// drops the segment simply never calls `next`.
  virtual void transit(const SegmentPtr& seg, std::function<void()> next) = 0;
};

/// Charges CPU work on a host before forwarding. The work runs on a
/// SerialExecutor ("software thread"): per-thread processing is serialized,
/// which is what CPU-bounds a single flow even on a multicore host. The
/// executor is shared between hops that execute in the same context (e.g.
/// the sender's stack + veth/bridge softirq, or one software router).
class CpuHop final : public Hop {
 public:
  using CostFn = std::function<double(const Segment&)>;

  CpuHop(fabric::Host& host, std::shared_ptr<sim::SerialExecutor> thread, CostFn cost,
         sim::UsageAccount* account = nullptr,
         double bus_bytes_per_payload_byte = 0.0)
      : host_(host),
        thread_(std::move(thread)),
        cost_(std::move(cost)),
        account_(account),
        bus_factor_(bus_bytes_per_payload_byte) {}

  void transit(const SegmentPtr& seg, std::function<void()> next) override;

 private:
  fabric::Host& host_;
  std::shared_ptr<sim::SerialExecutor> thread_;
  CostFn cost_;
  sim::UsageAccount* account_;
  double bus_factor_;
};

/// Serializes onto the source NIC and crosses the switch to the
/// destination host, where the walk continues.
class WireHop final : public Hop {
 public:
  WireHop(fabric::Host& src, fabric::HostId dst) : src_(src), dst_(dst) {}

  void transit(const SegmentPtr& seg, std::function<void()> next) override;

  /// Installs the tcp_frame receive handler on a host's NIC. Must be called
  /// once per host that terminates wire hops.
  static void install_rx(fabric::Host& host);

 private:
  fabric::Host& src_;
  fabric::HostId dst_;
};

/// Pure latency (e.g. scheduler wakeup when data reaches a blocked app).
class DelayHop final : public Hop {
 public:
  DelayHop(sim::EventLoop& loop, SimDuration delay) : loop_(loop), delay_(delay) {}

  void transit(const SegmentPtr& seg, std::function<void()> next) override;

 private:
  sim::EventLoop& loop_;
  SimDuration delay_;
};

/// Drops segments with probability p (fault injection for retransmit tests).
class LossHop final : public Hop {
 public:
  LossHop(Rng& rng, double drop_probability) : rng_(rng), p_(drop_probability) {}

  void transit(const SegmentPtr& seg, std::function<void()> next) override;

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Rng& rng_;
  double p_;
  std::uint64_t dropped_ = 0;
};

class Path {
 public:
  Path() = default;
  explicit Path(std::vector<std::shared_ptr<Hop>> hops) : hops_(std::move(hops)) {}

  void add(std::shared_ptr<Hop> hop) { hops_.push_back(std::move(hop)); }

  /// Sends `seg` through every hop; `deliver` fires at the far end (never,
  /// if a hop drops the segment).
  void walk(SegmentPtr seg, std::function<void(SegmentPtr)> deliver) const;

  [[nodiscard]] std::size_t hop_count() const noexcept { return hops_.size(); }

 private:
  static void step(std::shared_ptr<const std::vector<std::shared_ptr<Hop>>> hops,
                   std::size_t index, SegmentPtr seg,
                   std::shared_ptr<std::function<void(SegmentPtr)>> deliver);

  std::vector<std::shared_ptr<Hop>> hops_;
};

/// Paths from one endpoint toward its peer: full-cost data path and a
/// lightweight control path for SYN/ACK/FIN segments.
struct PathPair {
  Path data;
  Path control;
};

}  // namespace freeflow::tcp
