// Packet paths: a segment traverses an ordered chain of hops, each charging
// work to the resource it models (sender stack CPU, veth+bridge softirq,
// overlay router core, NIC wire, receiver softirq) before delivery. The
// "hairpin" penalties of container networking (paper Fig. 1) are expressed
// entirely as hop composition, so one TCP implementation serves host mode,
// bridge mode, overlay mode and FreeFlow's fallback alike.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/inline_function.h"
#include "common/rng.h"
#include "fabric/host.h"
#include "fabric/packet.h"
#include "sim/resource.h"
#include "tcpstack/segment.h"

namespace freeflow::tcp {

/// Delivery continuation at the far end of a path walk. Deliberately tiny
/// (16-byte capture): walk callers bind a reference or a boxed pointer, so
/// each per-segment walk stays allocation-free.
using DeliverFn = common::InlineFunction<void(SegmentPtr), 16>;

class Hop {
 public:
  virtual ~Hop() = default;
  /// Processes `seg`; invokes `next` when the segment moves on. A hop that
  /// drops the segment simply never calls `next`.
  virtual void transit(const SegmentPtr& seg, sim::DoneFn next) = 0;
};

/// Charges CPU work on a host before forwarding. The work runs on a
/// SerialExecutor ("software thread"): per-thread processing is serialized,
/// which is what CPU-bounds a single flow even on a multicore host. The
/// executor is shared between hops that execute in the same context (e.g.
/// the sender's stack + veth/bridge softirq, or one software router).
///
/// The hop only *observes* the thread: the owning edge lives with whoever
/// registered the endpoint (tcp::AddressMap binding, overlay binding or
/// router). Otherwise a segment queued on the thread — whose continuation
/// holds the hop list, which holds this hop — would cycle back to the
/// executor and pin the whole path at teardown. A transit after the owner
/// unbound is simply a dropped packet.
class CpuHop final : public Hop {
 public:
  using CostFn = std::function<double(const Segment&)>;

  CpuHop(fabric::Host& host, const std::shared_ptr<sim::SerialExecutor>& thread,
         CostFn cost, sim::UsageAccount* account = nullptr,
         double bus_bytes_per_payload_byte = 0.0)
      : host_(host),
        thread_(thread),
        cost_(std::move(cost)),
        account_(account),
        bus_factor_(bus_bytes_per_payload_byte) {}

  void transit(const SegmentPtr& seg, sim::DoneFn next) override;

 private:
  fabric::Host& host_;
  std::weak_ptr<sim::SerialExecutor> thread_;
  CostFn cost_;
  sim::UsageAccount* account_;
  double bus_factor_;
};

/// Serializes onto the source NIC and crosses the switch to the
/// destination host, where the walk continues.
class WireHop final : public Hop {
 public:
  WireHop(fabric::Host& src, fabric::HostId dst) : src_(src), dst_(dst) {}

  void transit(const SegmentPtr& seg, sim::DoneFn next) override;

  /// Installs the tcp_frame receive handler on a host's NIC. Must be called
  /// once per host that terminates wire hops.
  static void install_rx(fabric::Host& host);

 private:
  fabric::Host& src_;
  fabric::HostId dst_;
};

/// Pure latency (e.g. scheduler wakeup when data reaches a blocked app).
class DelayHop final : public Hop {
 public:
  DelayHop(sim::EventLoop& loop, SimDuration delay) : loop_(loop), delay_(delay) {}

  void transit(const SegmentPtr& seg, sim::DoneFn next) override;

 private:
  sim::EventLoop& loop_;
  SimDuration delay_;
};

/// Drops segments with probability p (fault injection for retransmit tests).
class LossHop final : public Hop {
 public:
  LossHop(Rng& rng, double drop_probability) : rng_(rng), p_(drop_probability) {}

  void transit(const SegmentPtr& seg, sim::DoneFn next) override;

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Rng& rng_;
  double p_;
  std::uint64_t dropped_ = 0;
};

class Path {
 public:
  using HopList = std::vector<std::shared_ptr<Hop>>;

  Path() : hops_(std::make_shared<HopList>()) {}
  explicit Path(HopList hops) : hops_(std::make_shared<HopList>(std::move(hops))) {}

  void add(std::shared_ptr<Hop> hop) { hops_->push_back(std::move(hop)); }

  /// Sends `seg` through every hop; `deliver` fires at the far end (never,
  /// if a hop drops the segment). Allocation-free per walk: the hop list is
  /// shared (not snapshotted — paths are assembled before traffic starts)
  /// and the continuation state travels inline through each hop.
  void walk(SegmentPtr seg, DeliverFn deliver) const;

  [[nodiscard]] std::size_t hop_count() const noexcept { return hops_->size(); }

 private:
  static void step(std::shared_ptr<const HopList> hops, std::size_t index,
                   SegmentPtr seg, DeliverFn deliver);

  std::shared_ptr<HopList> hops_;
};

/// Paths from one endpoint toward its peer: full-cost data path and a
/// lightweight control path for SYN/ACK/FIN segments.
struct PathPair {
  Path data;
  Path control;
};

}  // namespace freeflow::tcp
