// TcpNetwork: socket-level entry point of the mini stack. Owns the listener
// and connection demux tables, performs the three-way handshake, and builds
// per-connection paths through the registered PathBuilder (which encodes the
// networking mode: host / bridge / overlay / FreeFlow-fallback).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "tcpstack/connection.h"
#include "tcpstack/ip.h"
#include "tcpstack/path.h"

namespace freeflow::tcp {

/// Builds the pair of paths (data + control) from `src` toward `dst`.
/// Implementations encode the networking mode and resolve endpoint
/// locations (which host an IP lives on).
class PathBuilder {
 public:
  virtual ~PathBuilder() = default;
  virtual Result<PathPair> build(const Endpoint& src, const Endpoint& dst) = 0;
};

class TcpNetwork {
 public:
  using AcceptFn = std::function<void(TcpConnection::Ptr)>;
  using ConnectFn = std::function<void(Result<TcpConnection::Ptr>)>;

  TcpNetwork(sim::EventLoop& loop, const sim::CostModel& model, PathBuilder& builder);
  ~TcpNetwork();

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Binds a listener. Fails with already_exists if the endpoint is taken —
  /// this is exactly the host-mode port-conflict problem the paper
  /// describes ("only one container bound to port 80 per server").
  Status listen(const Endpoint& local, AcceptFn on_accept);
  void close_listener(const Endpoint& local);

  /// Opens a connection; `local.port == 0` picks an ephemeral port.
  void connect(Endpoint local, const Endpoint& remote, ConnectFn on_connected);

  /// Stack-internal: removes a fully closed connection from the demux.
  void forget(const FourTuple& flow);

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const sim::CostModel& cost_model() const noexcept { return model_; }

  [[nodiscard]] std::size_t connection_count() const noexcept { return connections_.size(); }
  [[nodiscard]] bool port_in_use(const Endpoint& e) const noexcept {
    return listeners_.contains(e.key());
  }

 private:
  struct Listener {
    AcceptFn on_accept;
  };

  void demux(const SegmentPtr& seg);
  void handle_syn(const SegmentPtr& seg);

  sim::EventLoop& loop_;
  const sim::CostModel& model_;
  PathBuilder& builder_;
  std::unordered_map<std::uint64_t, Listener> listeners_;
  std::unordered_map<FourTuple, TcpConnection::Ptr, FourTupleHash> connections_;
  std::unordered_map<FourTuple, ConnectFn, FourTupleHash> pending_connects_;
  std::uint16_t next_ephemeral_ = 40000;

  friend class TcpConnection;
};

/// Extra segment fields used only during connection setup: the reverse
/// paths the responder should use toward the initiator.
struct SynBody {
  std::shared_ptr<const PathPair> reverse_paths;
};

}  // namespace freeflow::tcp
