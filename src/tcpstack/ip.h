// IPv4 addressing primitives shared by the TCP stack and the overlay.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace freeflow::tcp {

/// An IPv4 address, stored host-order for arithmetic.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted quad ("10.0.1.2").
  static Result<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(Ipv4Addr a, Ipv4Addr b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator<(Ipv4Addr a, Ipv4Addr b) noexcept {
    return a.value_ < b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

/// CIDR subnet, e.g. 10.0.1.0/24.
struct Subnet {
  Ipv4Addr base;
  int prefix_len = 0;

  [[nodiscard]] bool contains(Ipv4Addr addr) const noexcept {
    if (prefix_len == 0) return true;
    const std::uint32_t mask = ~std::uint32_t{0} << (32 - prefix_len);
    return (addr.value() & mask) == (base.value() & mask);
  }
  [[nodiscard]] Ipv4Addr host(std::uint32_t index) const noexcept {
    return Ipv4Addr(base.value() + index);
  }
  [[nodiscard]] std::string to_string() const {
    return base.to_string() + "/" + std::to_string(prefix_len);
  }
};

struct Endpoint {
  Ipv4Addr ip;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint& a, const Endpoint& b) noexcept {
    return a.ip == b.ip && a.port == b.port;
  }
  [[nodiscard]] std::string to_string() const {
    return ip.to_string() + ":" + std::to_string(port);
  }
  [[nodiscard]] std::uint64_t key() const noexcept {
    return (std::uint64_t{ip.value()} << 16) | port;
  }
};

struct FourTuple {
  Endpoint local;
  Endpoint remote;

  friend bool operator==(const FourTuple& a, const FourTuple& b) noexcept {
    return a.local == b.local && a.remote == b.remote;
  }
  [[nodiscard]] std::string to_string() const {
    return local.to_string() + "<->" + remote.to_string();
  }
};

struct FourTupleHash {
  std::size_t operator()(const FourTuple& t) const noexcept {
    const std::uint64_t a = t.local.key();
    const std::uint64_t b = t.remote.key();
    std::uint64_t h = a * 0x9E3779B97F4A7C15ULL ^ (b + 0x7F4A7C15ULL);
    h ^= h >> 29;
    return static_cast<std::size_t>(h * 0xBF58476D1CE4E5B9ULL);
  }
};

}  // namespace freeflow::tcp
