#include "tcpstack/path.h"

#include "common/slab_pool.h"
#include "shm/channel.h"

namespace freeflow::tcp {

namespace {
/// Fabric packet body carrying a TCP segment and its pending continuation.
struct WireBody final : fabric::PacketBody {
  SegmentPtr seg;
  sim::DoneFn next;
};

std::shared_ptr<WireBody> acquire_wire_body() {
  static common::SlabPool<WireBody> pool;
  return pool.make();
}
}  // namespace

void CpuHop::transit(const SegmentPtr& seg, sim::DoneFn next) {
  auto thread = thread_.lock();
  if (!thread) return;  // endpoint unbound mid-flight: the segment is lost
  const double cost = cost_(*seg);
  const double bus_bytes = bus_factor_ * static_cast<double>(seg->payload_bytes());
  thread->submit(cost, std::move(next), account_,
                 bus_bytes > 0 ? &host_.membus() : nullptr, bus_bytes);
}

void WireHop::transit(const SegmentPtr& seg, sim::DoneFn next) {
  auto body = acquire_wire_body();
  body->seg = seg;
  body->next = std::move(next);
  auto packet = fabric::acquire_packet();
  packet->dst_host = dst_;
  packet->wire_bytes = seg->wire_bytes();
  packet->kind = fabric::PacketKind::tcp_frame;
  packet->body = std::move(body);
  src_.nic().send(std::move(packet));
}

void WireHop::install_rx(fabric::Host& host) {
  host.nic().set_rx_handler(fabric::PacketKind::tcp_frame, [](fabric::PacketPtr packet) {
    auto body = fabric::body_as<WireBody>(packet);
    if (body->next) body->next();
  });
}

void DelayHop::transit(const SegmentPtr& seg, sim::DoneFn next) {
  (void)seg;
  loop_.schedule(delay_, std::move(next));
}

void LossHop::transit(const SegmentPtr& seg, sim::DoneFn next) {
  (void)seg;
  if (rng_.chance(p_)) {
    ++dropped_;
    return;  // dropped: continuation never fires
  }
  next();
}

void Path::walk(SegmentPtr seg, DeliverFn deliver) const {
  step(hops_, 0, std::move(seg), std::move(deliver));
}

void Path::step(std::shared_ptr<const HopList> hops, std::size_t index,
                SegmentPtr seg, DeliverFn deliver) {
  if (index >= hops->size()) {
    if (deliver) deliver(std::move(seg));
    return;
  }
  Hop& hop = *(*hops)[index];
  // The continuation captures exactly 64 bytes — the DoneFn inline budget.
  hop.transit(seg, [hops = std::move(hops), index, seg,
                    deliver = std::move(deliver)]() mutable {
    step(std::move(hops), index + 1, std::move(seg), std::move(deliver));
  });
}

}  // namespace freeflow::tcp
