// Networking-mode path builders for the two non-overlay container modes the
// paper measures:
//   - host mode: the container binds the host's IP/port directly; the stack
//     is traversed once per side, no bridge (fast, but ports conflict).
//   - bridge mode: veth + docker0-style bridge adds softirq work per chunk
//     on both sides (the classic docker default network).
// The overlay mode builder lives in src/overlay (it needs routers/IPAM).
#pragma once

#include <unordered_map>

#include "fabric/host.h"
#include "sim/cost_model.h"
#include "tcpstack/network.h"

namespace freeflow::tcp {

/// Where an IP lives, whose CPU account its stack work bills to, and the
/// software thread that serializes that endpoint's stack processing.
struct EndpointBinding {
  fabric::Host* host = nullptr;
  sim::UsageAccount* account = nullptr;
  std::shared_ptr<sim::SerialExecutor> thread;
};

/// ip -> host/account registry shared by the mode builders.
class AddressMap {
 public:
  Status add(Ipv4Addr ip, fabric::Host& host, sim::UsageAccount* account = nullptr);
  void remove(Ipv4Addr ip);
  [[nodiscard]] Result<EndpointBinding> resolve(Ipv4Addr ip) const;

 private:
  std::unordered_map<std::uint32_t, EndpointBinding> map_;
};

/// Shared helpers for composing stack-cost hops. `b` supplies the host,
/// account and serializing thread of the endpoint doing the work.
namespace hops {
std::shared_ptr<Hop> tcp_tx(const EndpointBinding& b, const sim::CostModel& m);
std::shared_ptr<Hop> tcp_rx(const EndpointBinding& b, const sim::CostModel& m);
std::shared_ptr<Hop> bridge(const EndpointBinding& b, const sim::CostModel& m);
std::shared_ptr<Hop> ack_cost(const EndpointBinding& b, double cost_ns);
std::shared_ptr<Hop> wire(fabric::Host& src, fabric::HostId dst);
std::shared_ptr<Hop> rx_wakeup(fabric::Host& host, const sim::CostModel& m);
}  // namespace hops

class HostModeBuilder final : public PathBuilder {
 public:
  explicit HostModeBuilder(const sim::CostModel& model) : model_(model) {}

  [[nodiscard]] AddressMap& addresses() noexcept { return addresses_; }
  Result<PathPair> build(const Endpoint& src, const Endpoint& dst) override;

 private:
  const sim::CostModel& model_;
  AddressMap addresses_;
};

class BridgeModeBuilder final : public PathBuilder {
 public:
  explicit BridgeModeBuilder(const sim::CostModel& model) : model_(model) {}

  [[nodiscard]] AddressMap& addresses() noexcept { return addresses_; }
  Result<PathPair> build(const Endpoint& src, const Endpoint& dst) override;

 private:
  const sim::CostModel& model_;
  AddressMap addresses_;
};

}  // namespace freeflow::tcp
