// Reliable, in-order byte stream over segment paths: GSO-chunk granularity
// go-back-N with cumulative ACKs, duplicate-ACK fast retransmit and an RTO
// timer. This is the "full TCP/IP stack" whose per-chunk costs make
// container networking expensive in the paper's measurements.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/event_loop.h"
#include "tcpstack/path.h"
#include "tcpstack/segment.h"

namespace freeflow::tcp {

class TcpNetwork;

enum class ConnState : std::uint8_t {
  syn_sent,
  syn_received,
  established,
  closing,   ///< FIN sent, draining
  closed,
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using Ptr = std::shared_ptr<TcpConnection>;
  using DataFn = std::function<void(Buffer&&)>;
  using VoidFn = std::function<void()>;

  /// Created by TcpNetwork only.
  TcpConnection(TcpNetwork& net, FourTuple flow, std::shared_ptr<const PathPair> to_peer,
                ConnState state);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // ---- application API -------------------------------------------------
  /// Queues `data` for transmission. Returns would_block (nothing queued)
  /// when the send buffer is full; wait for on_writable.
  Status send(Buffer data);

  /// True if `bytes` more can be queued right now.
  [[nodiscard]] bool writable(std::size_t bytes = 1) const noexcept;

  void set_on_data(DataFn cb) { on_data_ = std::move(cb); }
  void set_on_writable(VoidFn cb) { on_writable_ = std::move(cb); }
  void set_on_close(VoidFn cb) { on_close_ = std::move(cb); }

  /// Graceful close: FIN after the send queue drains.
  void close();

  /// Drops the stored application callbacks. An app closure that captures
  /// its own stream adapter — which owns this connection — would otherwise
  /// cycle back through on_data_. Called on teardown, and by the network
  /// destructor for connections that were never closed.
  void release_callbacks() noexcept {
    on_data_ = nullptr;
    on_writable_ = nullptr;
    on_close_ = nullptr;
  }

  [[nodiscard]] ConnState state() const noexcept { return state_; }
  [[nodiscard]] const FourTuple& flow() const noexcept { return flow_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_received_; }
  [[nodiscard]] std::uint64_t bytes_acked() const noexcept { return bytes_acked_; }
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }

  /// Smoothed RTT estimate (RFC 6298-style), 0 until the first sample.
  [[nodiscard]] SimDuration srtt() const noexcept { return srtt_; }
  /// Current retransmission timeout derived from srtt/rttvar.
  [[nodiscard]] SimDuration rto() const noexcept;

  void set_send_buffer_limit(std::size_t bytes) noexcept { tx_limit_bytes_ = bytes; }

  // ---- stack internal ---------------------------------------------------
  void on_segment(const SegmentPtr& seg);
  void enter_established();
  void send_control(SegKind kind, std::uint64_t seq = 0);

 private:
  void pump();
  void transmit_chunk(std::uint64_t seq, const Buffer& chunk);
  void handle_ack(std::uint64_t ack_seq);
  void handle_data(const SegmentPtr& seg);
  void update_rtt(SimDuration sample);
  void arm_rto();
  void on_rto();
  void maybe_finish_close();
  void teardown();

  TcpNetwork& net_;
  FourTuple flow_;
  std::shared_ptr<const PathPair> to_peer_;
  ConnState state_;

  // Sender.
  std::deque<Buffer> tx_queue_;       ///< segmented chunks not yet transmitted
  std::size_t tx_queue_bytes_ = 0;
  std::size_t tx_limit_bytes_ = 4 * 1024 * 1024;
  std::map<std::uint64_t, Buffer> inflight_;  ///< seq -> chunk awaiting ack
  std::map<std::uint64_t, SimTime> sent_at_;  ///< seq -> first-transmit time
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  int dup_acks_ = 0;
  SimDuration srtt_ = 0;
  SimDuration rttvar_ = 0;
  sim::EventHandle rto_timer_;
  bool fin_pending_ = false;
  bool fin_sent_ = false;

  // Receiver.
  std::uint64_t rcv_nxt_ = 0;
  bool peer_fin_ = false;

  // Stats.
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_acked_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t retransmits_ = 0;

  DataFn on_data_;
  VoidFn on_writable_;
  VoidFn on_close_;
};

}  // namespace freeflow::tcp
