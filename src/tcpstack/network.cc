#include "tcpstack/network.h"

#include "common/logging.h"

namespace freeflow::tcp {

TcpNetwork::TcpNetwork(sim::EventLoop& loop, const sim::CostModel& model, PathBuilder& builder)
    : loop_(loop), model_(model), builder_(builder) {}

TcpNetwork::~TcpNetwork() {
  // Connections that were never closed still sit in the demux with their app
  // callbacks attached; a stream adapter captured in on_data_ owns the
  // connection right back, and the cycle would outlive the stack.
  for (auto& [flow, conn] : connections_) conn->release_callbacks();
}

Status TcpNetwork::listen(const Endpoint& local, AcceptFn on_accept) {
  if (local.port == 0) return invalid_argument("cannot listen on port 0");
  auto [it, inserted] = listeners_.emplace(local.key(), Listener{std::move(on_accept)});
  (void)it;
  if (!inserted) {
    // The host-mode port conflict of the paper, surfaced as an error.
    return already_exists("endpoint " + local.to_string() + " already bound");
  }
  return ok_status();
}

void TcpNetwork::close_listener(const Endpoint& local) { listeners_.erase(local.key()); }

void TcpNetwork::connect(Endpoint local, const Endpoint& remote, ConnectFn on_connected) {
  if (local.port == 0) {
    local.port = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 40000;
  }
  auto forward = builder_.build(local, remote);
  auto reverse = builder_.build(remote, local);
  if (!forward.is_ok() || !reverse.is_ok()) {
    Status error = forward.is_ok() ? reverse.status() : forward.status();
    loop_.schedule(0, [cb = std::move(on_connected), error]() { cb(error); });
    return;
  }
  const FourTuple flow{local, remote};
  if (connections_.contains(flow)) {
    loop_.schedule(0, [cb = std::move(on_connected), flow]() {
      cb(already_exists("connection " + flow.to_string() + " exists"));
    });
    return;
  }
  auto forward_paths = std::make_shared<const PathPair>(std::move(forward.value()));
  auto conn = std::make_shared<TcpConnection>(*this, flow, forward_paths, ConnState::syn_sent);
  connections_.emplace(flow, conn);
  pending_connects_.emplace(flow, std::move(on_connected));

  auto syn = acquire_segment();
  syn->flow = flow;
  syn->kind = SegKind::syn;
  syn->syn_reverse = std::make_shared<const PathPair>(std::move(reverse.value()));
  // The SYN itself travels the forward control path.
  forward_paths->control.walk(std::move(syn), [this](SegmentPtr s) { demux(s); });
}

void TcpNetwork::forget(const FourTuple& flow) {
  connections_.erase(flow);
  pending_connects_.erase(flow);
}

void TcpNetwork::handle_syn(const SegmentPtr& seg) {
  // seg->flow is from the initiator's perspective; we are the remote side.
  const Endpoint& listen_at = seg->flow.remote;
  const FourTuple flow{listen_at, seg->flow.local};
  auto lit = listeners_.find(listen_at.key());
  if (lit == listeners_.end()) {
    // Connection refused: RST travels the reverse control path.
    auto rst = acquire_segment();
    rst->flow = flow;
    rst->kind = SegKind::rst;
    if (seg->syn_reverse) {
      seg->syn_reverse->control.walk(std::move(rst), [this](SegmentPtr s) { demux(s); });
    }
    return;
  }
  if (connections_.contains(flow)) return;  // duplicate SYN

  auto conn = std::make_shared<TcpConnection>(*this, flow, seg->syn_reverse,
                                              ConnState::syn_received);
  connections_.emplace(flow, conn);
  conn->send_control(SegKind::syn_ack);
}

void TcpNetwork::demux(const SegmentPtr& seg) {
  const FourTuple flow{seg->flow.remote, seg->flow.local};

  if (seg->kind == SegKind::syn) {
    handle_syn(seg);
    return;
  }

  auto it = connections_.find(flow);
  if (it == connections_.end()) return;  // stray segment after close
  TcpConnection::Ptr conn = it->second;  // keep alive through callbacks

  if (seg->kind == SegKind::syn_ack) {
    if (conn->state() == ConnState::syn_sent) {
      conn->enter_established();
      conn->send_control(SegKind::handshake_ack);
      auto pit = pending_connects_.find(flow);
      if (pit != pending_connects_.end()) {
        ConnectFn cb = std::move(pit->second);
        pending_connects_.erase(pit);
        cb(conn);
      }
    }
    return;
  }

  if (conn->state() == ConnState::syn_received &&
      (seg->kind == SegKind::handshake_ack || seg->kind == SegKind::data ||
       seg->kind == SegKind::ack || seg->kind == SegKind::fin)) {
    // Promote: the handshake completed (possibly implied by early data).
    conn->enter_established();
    auto lit = listeners_.find(flow.local.key());
    if (lit != listeners_.end() && lit->second.on_accept) {
      lit->second.on_accept(conn);
    }
    if (seg->kind == SegKind::handshake_ack) return;
  }

  if (seg->kind == SegKind::rst && conn->state() == ConnState::syn_sent) {
    auto pit = pending_connects_.find(flow);
    if (pit != pending_connects_.end()) {
      ConnectFn cb = std::move(pit->second);
      pending_connects_.erase(pit);
      cb(connection_refused("peer refused " + flow.to_string()));
    }
    forget(flow);
    return;
  }

  conn->on_segment(seg);
}

}  // namespace freeflow::tcp
