// RoutingTable is header-only (template); this TU anchors the library.
#include "tcpstack/routing.h"
