#include "tcpstack/ip.h"

#include <cstdio>

namespace freeflow::tcp {

Result<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const std::string owned(text);
  if (std::sscanf(owned.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    return invalid_argument("bad IPv4 address: " + owned);
  }
  return Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                  static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

}  // namespace freeflow::tcp
