#include "tcpstack/modes.h"

namespace freeflow::tcp {

Status AddressMap::add(Ipv4Addr ip, fabric::Host& host, sim::UsageAccount* account) {
  EndpointBinding binding{&host, account,
                          std::make_shared<sim::SerialExecutor>(host.cpu())};
  auto [it, inserted] = map_.emplace(ip.value(), std::move(binding));
  (void)it;
  if (!inserted) return already_exists("IP " + ip.to_string() + " already bound");
  return ok_status();
}

void AddressMap::remove(Ipv4Addr ip) { map_.erase(ip.value()); }

Result<EndpointBinding> AddressMap::resolve(Ipv4Addr ip) const {
  auto it = map_.find(ip.value());
  if (it == map_.end()) return not_found("no binding for IP " + ip.to_string());
  return it->second;
}

namespace hops {

std::shared_ptr<Hop> tcp_tx(const EndpointBinding& b, const sim::CostModel& m) {
  return std::make_shared<CpuHop>(
      *b.host, b.thread, [&m](const Segment& s) { return m.tcp_tx_cost(s.payload_bytes()); },
      b.account);
}

std::shared_ptr<Hop> tcp_rx(const EndpointBinding& b, const sim::CostModel& m) {
  return std::make_shared<CpuHop>(
      *b.host, b.thread, [&m](const Segment& s) { return m.tcp_rx_cost(s.payload_bytes()); },
      b.account);
}

std::shared_ptr<Hop> bridge(const EndpointBinding& b, const sim::CostModel& m) {
  return std::make_shared<CpuHop>(
      *b.host, b.thread, [&m](const Segment& s) { return m.bridge_cost(s.payload_bytes()); },
      b.account);
}

std::shared_ptr<Hop> ack_cost(const EndpointBinding& b, double cost_ns) {
  return std::make_shared<CpuHop>(
      *b.host, b.thread, [cost_ns](const Segment&) { return cost_ns; }, b.account);
}

std::shared_ptr<Hop> wire(fabric::Host& src, fabric::HostId dst) {
  return std::make_shared<WireHop>(src, dst);
}

std::shared_ptr<Hop> rx_wakeup(fabric::Host& host, const sim::CostModel& m) {
  return std::make_shared<DelayHop>(host.loop(), m.tcp_rx_wakeup_ns);
}

}  // namespace hops

Result<PathPair> HostModeBuilder::build(const Endpoint& src, const Endpoint& dst) {
  auto s = addresses_.resolve(src.ip);
  if (!s.is_ok()) return s.status();
  auto d = addresses_.resolve(dst.ip);
  if (!d.is_ok()) return d.status();

  fabric::Host& sh = *s->host;
  fabric::Host& dh = *d->host;
  const auto& m = model_;

  PathPair paths;
  paths.data.add(hops::tcp_tx(*s, m));
  paths.control.add(hops::ack_cost(*s, m.tcp_ack_ns));
  if (sh.id() != dh.id()) {
    paths.data.add(hops::wire(sh, dh.id()));
    paths.control.add(hops::wire(sh, dh.id()));
  }
  paths.data.add(hops::tcp_rx(*d, m));
  paths.data.add(hops::rx_wakeup(dh, m));
  paths.control.add(hops::ack_cost(*d, m.tcp_ack_ns));
  return paths;
}

Result<PathPair> BridgeModeBuilder::build(const Endpoint& src, const Endpoint& dst) {
  auto s = addresses_.resolve(src.ip);
  if (!s.is_ok()) return s.status();
  auto d = addresses_.resolve(dst.ip);
  if (!d.is_ok()) return d.status();

  fabric::Host& sh = *s->host;
  fabric::Host& dh = *d->host;
  const auto& m = model_;

  // veth + bridge softirq work executes in the sender's / receiver's
  // context (same thread executor), so it extends the per-side serialized
  // cost: ~19.4 us per 64 KiB chunk per side -> ~27 Gb/s at ~200 % CPU.
  PathPair paths;
  paths.data.add(hops::tcp_tx(*s, m));
  paths.data.add(hops::bridge(*s, m));
  paths.control.add(hops::ack_cost(*s, m.tcp_ack_ns + m.bridge_ack_ns));
  if (sh.id() != dh.id()) {
    paths.data.add(hops::wire(sh, dh.id()));
    paths.control.add(hops::wire(sh, dh.id()));
  }
  paths.data.add(hops::bridge(*d, m));
  paths.data.add(hops::tcp_rx(*d, m));
  paths.data.add(hops::rx_wakeup(dh, m));
  paths.control.add(hops::ack_cost(*d, m.tcp_ack_ns + m.bridge_ack_ns));
  return paths;
}

}  // namespace freeflow::tcp
