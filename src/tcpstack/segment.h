// TCP segments as they travel through the simulation. A "segment" here is a
// GSO-sized chunk (up to CostModel::tcp_chunk_bytes): modern stacks hand such
// chunks down in one syscall/softirq unit, which is also the natural event
// granularity for the simulation. Wire size accounts for the per-MTU-packet
// header overhead the chunk incurs once serialized.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/slab_pool.h"
#include "fabric/packet.h"
#include "tcpstack/ip.h"

namespace freeflow::tcp {

enum class SegKind : std::uint8_t { syn, syn_ack, handshake_ack, data, ack, fin, rst };

struct PathPair;  // path.h

struct Segment {
  FourTuple flow;          ///< from the *sender's* perspective
  SegKind kind = SegKind::data;
  std::uint64_t seq = 0;   ///< data: chunk index; ack: cumulative next-expected
  Buffer payload;          ///< data segments only
  /// SYN only: paths the responder should use back toward the initiator.
  std::shared_ptr<const PathPair> syn_reverse;

  [[nodiscard]] std::uint32_t payload_bytes() const noexcept {
    return static_cast<std::uint32_t>(payload.size());
  }

  /// Bytes on the wire: payload + Ethernet/IP/TCP headers per MTU packet.
  [[nodiscard]] std::uint32_t wire_bytes() const noexcept {
    constexpr std::uint32_t k_mss = 1448;
    constexpr std::uint32_t k_hdr = 78;
    const std::uint32_t n = payload_bytes();
    const std::uint32_t pkts = n == 0 ? 1 : (n + k_mss - 1) / k_mss;
    return n + pkts * k_hdr;
  }
};

using SegmentPtr = std::shared_ptr<Segment>;

/// Acquires a fresh Segment from the process-wide slab pool (shell + control
/// block recycled; the payload Buffer still owns its bytes normally).
inline SegmentPtr acquire_segment() {
  static common::SlabPool<Segment> pool;
  return pool.make();
}

}  // namespace freeflow::tcp
