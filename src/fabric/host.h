// A physical (or virtual) host: a pool of CPU cores, a memory bus and a NIC.
// Every software stage in the simulation charges work to one of these
// resources, which is how throughput ceilings and CPU-% figures emerge.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "fabric/nic.h"
#include "fabric/packet.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/resource.h"

namespace freeflow::fabric {

class Host {
 public:
  Host(sim::EventLoop& loop, const sim::CostModel& model, HostId id,
       std::string name, NicCapabilities nic_caps);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] sim::Resource& cpu() noexcept { return cpu_; }
  [[nodiscard]] sim::Resource& membus() noexcept { return membus_; }
  [[nodiscard]] Nic& nic() noexcept { return nic_; }
  [[nodiscard]] const Nic& nic() const noexcept { return nic_; }

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const sim::CostModel& cost_model() const noexcept { return model_; }

  /// For containers-in-VMs deployments (paper Fig. 2 cases c/d): the
  /// physical machine this VM runs on, if this host is a VM.
  void set_physical_machine(HostId machine) noexcept { physical_machine_ = machine; }
  [[nodiscard]] std::optional<HostId> physical_machine() const noexcept {
    return physical_machine_;
  }
  [[nodiscard]] bool is_vm() const noexcept { return physical_machine_.has_value(); }

  /// Fault injection: a crashed host takes its NIC link down with it. The
  /// flag lets upper layers distinguish a crash (peers close with
  /// CloseReason::host_crashed) from a graceful container stop.
  void set_crashed(bool crashed) noexcept {
    crashed_ = crashed;
    nic_.set_link_up(!crashed);
  }
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

 private:
  sim::EventLoop& loop_;
  const sim::CostModel& model_;
  HostId id_;
  std::string name_;
  sim::Resource cpu_;
  sim::Resource membus_;
  Nic nic_;
  std::optional<HostId> physical_machine_;
  bool crashed_ = false;
};

}  // namespace freeflow::fabric
