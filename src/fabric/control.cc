#include "fabric/control.h"

#include "common/slab_pool.h"

namespace freeflow::fabric {

namespace {
std::shared_ptr<ControlBody> acquire_control_body() {
  static common::SlabPool<ControlBody> pool;
  return pool.make();
}
}  // namespace

void install_control_rx(Host& host) {
  host.nic().set_rx_handler(PacketKind::control, [](PacketPtr packet) {
    auto body = body_as<ControlBody>(packet);
    if (body->on_arrival) body->on_arrival();
  });
}

void send_control(Host& src, HostId dst_host, std::uint32_t wire_bytes,
                  std::function<void()> on_arrival) {
  if (dst_host == src.id()) {
    src.loop().schedule(1 * k_microsecond, std::move(on_arrival));
    return;
  }
  auto body = acquire_control_body();
  body->on_arrival = std::move(on_arrival);
  auto packet = acquire_packet();
  packet->dst_host = dst_host;
  packet->wire_bytes = wire_bytes;
  packet->kind = PacketKind::control;
  packet->body = std::move(body);
  src.nic().send(std::move(packet));
}

}  // namespace freeflow::fabric
