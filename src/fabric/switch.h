// A single non-blocking ToR switch connecting all hosts. Each destination
// port has its own output link (line rate), so incast congestion on a
// receiver shows up as queueing on that port.
#pragma once

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fabric/packet.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/resource.h"

namespace freeflow::fabric {

class Nic;

class Switch {
 public:
  Switch(sim::EventLoop& loop, const sim::CostModel& model);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Registers the NIC serving `host`. Ports are indexed by HostId.
  void connect(HostId host, Nic* nic);

  /// Store-and-forward: forwarding latency, then the output port link.
  void forward(PacketPtr packet);

  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  /// Packets silently dropped on a partitioned host pair.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Fabric partition between two hosts (both NICs stay healthy): while
  /// set, every packet between `a` and `b` is dropped in the fabric, in
  /// both directions. Fault-injector only.
  void set_partitioned(HostId a, HostId b, bool down);
  [[nodiscard]] bool partitioned(HostId a, HostId b) const noexcept;

  /// Output-port link resource for a host (for utilization probes).
  [[nodiscard]] sim::Resource* port_link(HostId host) noexcept;

 private:
  struct Port {
    Nic* nic = nullptr;
    std::unique_ptr<sim::Resource> link;
  };
  [[nodiscard]] static std::uint64_t pair_key(HostId a, HostId b) noexcept {
    if (a > b) std::swap(a, b);
    return (std::uint64_t{a} << 32) | b;
  }

  sim::EventLoop& loop_;
  const sim::CostModel& model_;
  std::vector<Port> ports_;
  /// Severed host pairs, keyed min<<32|max. Usually empty — the common
  /// forward path pays one empty() check.
  std::unordered_set<std::uint64_t> partitions_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace freeflow::fabric
