// A single non-blocking ToR switch connecting all hosts. Each destination
// port has its own output link (line rate), so incast congestion on a
// receiver shows up as queueing on that port.
#pragma once

#include <memory>
#include <vector>

#include "fabric/packet.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/resource.h"

namespace freeflow::fabric {

class Nic;

class Switch {
 public:
  Switch(sim::EventLoop& loop, const sim::CostModel& model);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Registers the NIC serving `host`. Ports are indexed by HostId.
  void connect(HostId host, Nic* nic);

  /// Store-and-forward: forwarding latency, then the output port link.
  void forward(PacketPtr packet);

  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }

  /// Output-port link resource for a host (for utilization probes).
  [[nodiscard]] sim::Resource* port_link(HostId host) noexcept;

 private:
  struct Port {
    Nic* nic = nullptr;
    std::unique_ptr<sim::Resource> link;
  };

  sim::EventLoop& loop_;
  const sim::CostModel& model_;
  std::vector<Port> ports_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace freeflow::fabric
