// Generic control-plane messaging over the fabric: small packets that carry
// a closure to run on arrival. Used by the BGP-lite route exchange and the
// orchestrator RPCs; they share links with data traffic, so control-plane
// latency is affected by (and visible in) the simulation.
#pragma once

#include <functional>

#include "fabric/host.h"
#include "fabric/packet.h"

namespace freeflow::fabric {

struct ControlBody final : PacketBody {
  std::function<void()> on_arrival;
};

/// Installs the control-packet receive handler on a host (idempotent).
void install_control_rx(Host& host);

/// Sends a control message of `wire_bytes` from `src` to `dst_host`;
/// `on_arrival` runs at the destination. Same-host messages still pay the
/// local IPC cost via the event loop (one scheduling quantum).
void send_control(Host& src, HostId dst_host, std::uint32_t wire_bytes,
                  std::function<void()> on_arrival);

}  // namespace freeflow::fabric
