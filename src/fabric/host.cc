#include "fabric/host.h"

namespace freeflow::fabric {

Host::Host(sim::EventLoop& loop, const sim::CostModel& model, HostId id,
           std::string name, NicCapabilities nic_caps)
    : loop_(loop),
      model_(model),
      id_(id),
      name_(std::move(name)),
      cpu_(loop, name_ + "/cpu", model.core_rate, model.cores_per_host),
      membus_(loop, name_ + "/membus", model.membus_bytes_per_sec, 1),
      nic_(loop, model, id, nic_caps) {}

}  // namespace freeflow::fabric
