// Builds the simulated datacenter: a set of hosts hanging off one ToR
// switch, all driven by a single event loop and cost model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fabric/host.h"
#include "fabric/switch.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"

namespace freeflow::fabric {

class Cluster {
 public:
  explicit Cluster(sim::CostModel model = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds a host with the given NIC capabilities; returns it.
  Host& add_host(const std::string& name, NicCapabilities nic_caps = {});

  /// Adds `count` identical hosts named "<prefix>0..n".
  void add_hosts(int count, const std::string& prefix = "host",
                 NicCapabilities nic_caps = {});

  [[nodiscard]] Host& host(HostId id);
  [[nodiscard]] const Host& host(HostId id) const;
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const sim::CostModel& cost_model() const noexcept { return model_; }
  [[nodiscard]] Switch& tor() noexcept { return switch_; }

  /// Deployment-wide observability hub. The cluster is the one object every
  /// layer can reach (agents/conduits via their fabric, the orchestrator via
  /// cluster_orch().cluster()), so it owns the shared registry and tracer.
  [[nodiscard]] telemetry::Telemetry& telemetry() noexcept { return telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const noexcept {
    return telemetry_;
  }

 private:
  sim::CostModel model_;
  sim::EventLoop loop_;
  telemetry::Telemetry telemetry_{&loop_};
  Switch switch_;
  std::vector<std::unique_ptr<Host>> hosts_;
};

}  // namespace freeflow::fabric
