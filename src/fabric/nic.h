// A physical NIC: line-rate serialization, an on-board processor (used by
// the RDMA engine), capability flags the network orchestrator reads, and a
// receive demultiplexer keyed by packet kind.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>

#include "fabric/packet.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/resource.h"

namespace freeflow::fabric {

class Switch;

struct NicCapabilities {
  bool rdma = true;
  bool dpdk = true;
  double line_rate_gbps = 40.0;
};

class Nic {
 public:
  Nic(sim::EventLoop& loop, const sim::CostModel& model, HostId host,
      NicCapabilities caps);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] HostId host() const noexcept { return host_; }
  [[nodiscard]] const NicCapabilities& capabilities() const noexcept { return caps_; }

  /// The on-NIC processor; the RDMA engine charges per-packet work here.
  [[nodiscard]] sim::Resource& processor() noexcept { return processor_; }
  [[nodiscard]] const sim::Resource& processor() const noexcept { return processor_; }

  /// Transmit queue (line-rate serialization).
  [[nodiscard]] sim::Resource& tx_link() noexcept { return tx_link_; }

  /// Attaches this NIC to the ToR switch. Must be called before send().
  void attach(Switch* tor) noexcept { tor_ = tor; }

  /// Serializes and hands the packet to the switch (or loops back if the
  /// destination is this host — e.g. an RDMA hairpin through the NIC).
  void send(PacketPtr packet);

  /// Registers the receive handler for one packet kind.
  void set_rx_handler(PacketKind kind, std::function<void(PacketPtr)> handler);

  /// Called by the switch (or loopback) when a packet arrives.
  void deliver(PacketPtr packet);

  [[nodiscard]] std::uint64_t tx_packets() const noexcept { return tx_packets_; }
  [[nodiscard]] std::uint64_t rx_packets() const noexcept { return rx_packets_; }
  [[nodiscard]] std::uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }

 private:
  sim::EventLoop& loop_;
  const sim::CostModel& model_;
  HostId host_;
  NicCapabilities caps_;
  sim::Resource processor_;
  sim::Resource tx_link_;
  Switch* tor_ = nullptr;
  std::array<std::function<void(PacketPtr)>, 4> rx_handlers_{};

  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
};

}  // namespace freeflow::fabric
