// A physical NIC: line-rate serialization, an on-board processor (used by
// the RDMA engine), capability flags the network orchestrator reads, and a
// receive demultiplexer keyed by packet kind.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "fabric/packet.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/resource.h"
#include "telemetry/telemetry.h"

namespace freeflow::fabric {

class Switch;

struct NicCapabilities {
  bool rdma = true;
  bool dpdk = true;
  double line_rate_gbps = 40.0;
};

/// Live health of a NIC, mutated by the fault injector. Faults are modeled
/// per capability: an RDMA engine death drops only rdma_chunk packets, so
/// the kernel path (and the control plane) keeps working — which is exactly
/// what makes a transport fallback possible. A link-down drops everything.
struct NicHealth {
  bool link_up = true;
  bool rdma_up = true;
  bool dpdk_up = true;
  /// Fraction of line rate the NIC can still serialize at (degradation).
  double rate_fraction = 1.0;

  [[nodiscard]] bool healthy() const noexcept {
    return link_up && rdma_up && dpdk_up && rate_fraction >= 1.0;
  }
};

/// Per-tenant transmit QoS. The NIC schedules its tx link with weighted
/// deficit round-robin across tenants: each round a tenant's deficit grows
/// by `weight` quanta, so long-run bandwidth shares converge to the weight
/// ratio while any single tenant still gets the full line rate when alone
/// (work conservation). `rate_bps`, when non-zero, additionally caps the
/// tenant with a token bucket — its packets wait for tokens even when the
/// link is idle.
struct TenantQos {
  std::uint32_t weight = 1;
  double rate_bps = 0.0;  ///< 0 = uncapped
};

class Nic {
 public:
  Nic(sim::EventLoop& loop, const sim::CostModel& model, HostId host,
      NicCapabilities caps);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] HostId host() const noexcept { return host_; }
  [[nodiscard]] const NicCapabilities& capabilities() const noexcept { return caps_; }

  /// Fault-injection surface. Setters mutate live health; the injector is
  /// responsible for pushing the new state to the orchestrator (telemetry
  /// has its own detection latency — the NIC itself tells nobody).
  [[nodiscard]] const NicHealth& health() const noexcept { return health_; }
  void set_link_up(bool up) noexcept { health_.link_up = up; }
  void set_rdma_up(bool up) noexcept { health_.rdma_up = up; }
  void set_dpdk_up(bool up) noexcept { health_.dpdk_up = up; }
  /// Degrades serialization to `fraction` of line rate (1.0 restores).
  void set_rate_fraction(double fraction) noexcept;

  /// True if the current health state would discard a packet of `kind`.
  [[nodiscard]] bool would_drop(PacketKind kind) const noexcept;

  /// Observer for dropped packets (tx or rx side): the local agent uses
  /// this as its send-error signal for instant lane-failure detection.
  void set_on_drop(std::function<void(PacketKind)> cb) { on_drop_ = std::move(cb); }

  [[nodiscard]] std::uint64_t dropped_packets() const noexcept { return dropped_packets_; }

  /// The on-NIC processor; the RDMA engine charges per-packet work here.
  [[nodiscard]] sim::Resource& processor() noexcept { return processor_; }
  [[nodiscard]] const sim::Resource& processor() const noexcept { return processor_; }

  /// Transmit queue (line-rate serialization).
  [[nodiscard]] sim::Resource& tx_link() noexcept { return tx_link_; }

  /// Attaches this NIC to the ToR switch. Must be called before send().
  void attach(Switch* tor) noexcept { tor_ = tor; }

  /// Serializes and hands the packet to the switch (or loops back if the
  /// destination is this host — e.g. an RDMA hairpin through the NIC).
  /// Packets enter per-tenant queues (keyed by `packet->tenant`) and a
  /// weighted deficit-round-robin scheduler feeds the tx link one packet at
  /// a time, so a saturating tenant cannot starve the others.
  void send(PacketPtr packet);

  /// Configures (or reconfigures) one tenant's scheduling weight and
  /// optional rate cap. Unconfigured tenants default to weight 1, uncapped.
  void set_tenant_qos(std::uint32_t tenant, TenantQos qos);

  /// Bytes this NIC transmitted for `tenant` (0 if never seen).
  [[nodiscard]] std::uint64_t tenant_tx_bytes(std::uint32_t tenant) const noexcept;
  /// Packets currently queued for `tenant` awaiting the scheduler.
  [[nodiscard]] std::size_t tenant_queue_depth(std::uint32_t tenant) const noexcept;

  /// Registers the receive handler for one packet kind.
  void set_rx_handler(PacketKind kind, std::function<void(PacketPtr)> handler);

  /// Called by the switch (or loopback) when a packet arrives.
  void deliver(PacketPtr packet);

  [[nodiscard]] std::uint64_t tx_packets() const noexcept { return tx_packets_; }
  [[nodiscard]] std::uint64_t rx_packets() const noexcept { return rx_packets_; }
  [[nodiscard]] std::uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_bytes() const noexcept { return rx_bytes_; }

  /// Wires per-PacketKind byte/drop counters and a tx-utilization probe into
  /// the deployment hub ("nic/<host>/..."). Cluster::add_host calls this;
  /// the NIC lives as long as the cluster, so the probe capture is safe.
  void set_telemetry(telemetry::Telemetry* hub);

 private:
  /// DRR quantum per unit of weight, in bytes. Small enough that a weight-8
  /// tenant interleaves with a weight-1 tenant every few packets; deficits
  /// accumulate across rounds, so packets larger than one quantum still go
  /// out once the deficit catches up.
  static constexpr double k_drr_quantum_bytes = 16.0 * 1024;

  struct TenantQueue {
    std::deque<PacketPtr> q;
    TenantQos qos;
    double deficit = 0.0;  ///< bytes this tenant may send before rotating
    bool active = false;   ///< member of active_
    bool charged = false;  ///< deficit already grew this rotation
    double tokens = 0.0;   ///< rate-cap token bucket, in bytes
    SimTime tokens_at = 0;
    std::uint64_t tx_bytes = 0;
    telemetry::Counter* ctr_tx_bytes = telemetry::Counter::discard();
    telemetry::Gauge* g_queue_depth = telemetry::Gauge::discard();
    telemetry::Gauge* g_deficit = telemetry::Gauge::discard();
  };

  sim::EventLoop& loop_;
  const sim::CostModel& model_;
  void drop(PacketKind kind);
  TenantQueue& tenant_queue(std::uint32_t tenant);
  void refill_tokens(TenantQueue& tq) noexcept;
  /// Picks the next packet by WDRR and occupies the tx link with it; no-op
  /// while a packet is serializing or every queue is empty/rate-blocked
  /// (blocked queues arm a retry timer at the earliest token-ready time).
  void dispatch_next();
  void transmit(PacketPtr packet);

  HostId host_;
  NicCapabilities caps_;
  NicHealth health_;
  sim::Resource processor_;
  sim::Resource tx_link_;
  Switch* tor_ = nullptr;
  std::array<std::function<void(PacketPtr)>, 4> rx_handlers_{};
  std::function<void(PacketKind)> on_drop_;

  /// Keyed by tenant; std::map keeps round-robin admission order (and
  /// telemetry names) deterministic. Pointers into the map are stable.
  std::map<std::uint32_t, TenantQueue> tenants_;
  /// Rotation of tenants with queued packets (WDRR active list).
  std::deque<TenantQueue*> active_;
  bool tx_busy_ = false;
  bool retry_armed_ = false;
  telemetry::Telemetry* hub_ = nullptr;

  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t dropped_packets_ = 0;

  // Per-PacketKind telemetry (discard sinks until set_telemetry wires them).
  std::array<telemetry::Counter*, k_packet_kinds> ctr_tx_bytes_{};
  std::array<telemetry::Counter*, k_packet_kinds> ctr_rx_bytes_{};
  std::array<telemetry::Counter*, k_packet_kinds> ctr_drops_{};
};

}  // namespace freeflow::fabric
