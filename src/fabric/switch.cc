#include "fabric/switch.h"

#include "common/status.h"
#include "fabric/nic.h"

namespace freeflow::fabric {

Switch::Switch(sim::EventLoop& loop, const sim::CostModel& model)
    : loop_(loop), model_(model) {}

void Switch::connect(HostId host, Nic* nic) {
  FF_CHECK(nic != nullptr);
  if (ports_.size() <= host) ports_.resize(host + 1);
  FF_CHECK(ports_[host].nic == nullptr);
  ports_[host].nic = nic;
  ports_[host].link = std::make_unique<sim::Resource>(
      loop_, "switch_port", nic->capabilities().line_rate_gbps * 1e9 / 8.0, 1);
}

void Switch::set_partitioned(HostId a, HostId b, bool down) {
  if (down) {
    partitions_.insert(pair_key(a, b));
  } else {
    partitions_.erase(pair_key(a, b));
  }
}

bool Switch::partitioned(HostId a, HostId b) const noexcept {
  return !partitions_.empty() && partitions_.contains(pair_key(a, b));
}

void Switch::forward(PacketPtr packet) {
  const HostId dst = packet->dst_host;
  FF_CHECK(dst < ports_.size() && ports_[dst].nic != nullptr);
  if (partitioned(packet->src_host, dst)) {
    // Fabric partition: the packet dies in the switch. Both endpoint NICs
    // are healthy, so only end-to-end machinery (retransmits, migration)
    // can observe or heal this.
    ++dropped_;
    return;
  }
  ++forwarded_;
  Port& port = ports_[dst];
  loop_.schedule(model_.switch_fwd_ns, [this, packet, &port]() {
    port.link->submit(static_cast<double>(packet->wire_bytes),
                      [packet, &port]() { port.nic->deliver(packet); },
                      /*account=*/nullptr, model_.link_prop_ns);
  });
}

sim::Resource* Switch::port_link(HostId host) noexcept {
  if (host >= ports_.size()) return nullptr;
  return ports_[host].link.get();
}

}  // namespace freeflow::fabric
