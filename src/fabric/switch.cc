#include "fabric/switch.h"

#include "common/status.h"
#include "fabric/nic.h"

namespace freeflow::fabric {

Switch::Switch(sim::EventLoop& loop, const sim::CostModel& model)
    : loop_(loop), model_(model) {}

void Switch::connect(HostId host, Nic* nic) {
  FF_CHECK(nic != nullptr);
  if (ports_.size() <= host) ports_.resize(host + 1);
  FF_CHECK(ports_[host].nic == nullptr);
  ports_[host].nic = nic;
  ports_[host].link = std::make_unique<sim::Resource>(
      loop_, "switch_port", nic->capabilities().line_rate_gbps * 1e9 / 8.0, 1);
}

void Switch::forward(PacketPtr packet) {
  const HostId dst = packet->dst_host;
  FF_CHECK(dst < ports_.size() && ports_[dst].nic != nullptr);
  ++forwarded_;
  Port& port = ports_[dst];
  loop_.schedule(model_.switch_fwd_ns, [this, packet, &port]() {
    port.link->submit(static_cast<double>(packet->wire_bytes),
                      [packet, &port]() { port.nic->deliver(packet); },
                      /*account=*/nullptr, model_.link_prop_ns);
  });
}

sim::Resource* Switch::port_link(HostId host) noexcept {
  if (host >= ports_.size()) return nullptr;
  return ports_[host].link.get();
}

}  // namespace freeflow::fabric
