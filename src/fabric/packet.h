// The unit the physical underlay moves between hosts. The underlay is
// host-addressed (the paper assumes "connectivity between any pair of hosts
// is always maintained by the host network"); higher layers (overlay IPs,
// TCP streams, RDMA QPs) put their own headers in typed bodies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/slab_pool.h"

namespace freeflow::fabric {

using HostId = std::uint32_t;
constexpr HostId k_invalid_host = 0xFFFFFFFFU;

/// Discriminates the typed body so receivers can downcast safely.
enum class PacketKind : std::uint8_t {
  tcp_frame,    ///< tcpstack::WireSegment
  rdma_chunk,   ///< rdma::RdmaChunk
  dpdk_frame,   ///< dpdk::DpdkFrame
  control,      ///< orchestrator / routing control messages
};

constexpr std::size_t k_packet_kinds = 4;

/// Stable lowercase name, used in telemetry metric paths.
constexpr const char* packet_kind_name(PacketKind kind) noexcept {
  switch (kind) {
    case PacketKind::tcp_frame: return "tcp_frame";
    case PacketKind::rdma_chunk: return "rdma_chunk";
    case PacketKind::dpdk_frame: return "dpdk_frame";
    case PacketKind::control: return "control";
  }
  return "unknown";
}

/// Base class for typed packet bodies (owned via shared_ptr; zero-copy
/// within the simulation).
struct PacketBody {
  virtual ~PacketBody() = default;
};

struct Packet {
  HostId src_host = k_invalid_host;
  HostId dst_host = k_invalid_host;
  std::uint32_t wire_bytes = 0;  ///< size serialized on links (incl. headers)
  PacketKind kind = PacketKind::control;
  /// Traffic class for per-tenant NIC scheduling. 0 is the infrastructure
  /// class (control, heartbeats, unclassifiable byte streams); data paths
  /// stamp the owning container's tenant so the WDRR scheduler can keep one
  /// tenant's bulk traffic from starving another's.
  std::uint32_t tenant = 0;
  std::shared_ptr<PacketBody> body;
};

using PacketPtr = std::shared_ptr<Packet>;

/// Acquires a fresh Packet from the process-wide slab pool. The shell and
/// its control block are recycled: steady-state traffic allocates nothing.
inline PacketPtr acquire_packet() {
  static common::SlabPool<Packet> pool;
  return pool.make();
}

template <typename T>
std::shared_ptr<T> body_as(const PacketPtr& packet) {
  return std::static_pointer_cast<T>(packet->body);
}

}  // namespace freeflow::fabric
