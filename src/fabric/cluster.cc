#include "fabric/cluster.h"

#include "common/status.h"

namespace freeflow::fabric {

Cluster::Cluster(sim::CostModel model)
    : model_(model), switch_(loop_, model_) {}

Host& Cluster::add_host(const std::string& name, NicCapabilities nic_caps) {
  const auto id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(std::make_unique<Host>(loop_, model_, id, name, nic_caps));
  Host& host = *hosts_.back();
  host.nic().attach(&switch_);
  host.nic().set_telemetry(&telemetry_);
  switch_.connect(id, &host.nic());
  return host;
}

void Cluster::add_hosts(int count, const std::string& prefix, NicCapabilities nic_caps) {
  for (int i = 0; i < count; ++i) {
    add_host(prefix + std::to_string(i), nic_caps);
  }
}

Host& Cluster::host(HostId id) {
  FF_CHECK(id < hosts_.size());
  return *hosts_[id];
}

const Host& Cluster::host(HostId id) const {
  FF_CHECK(id < hosts_.size());
  return *hosts_[id];
}

}  // namespace freeflow::fabric
