#include "fabric/nic.h"

#include "common/logging.h"
#include "common/status.h"
#include "fabric/switch.h"

namespace freeflow::fabric {

Nic::Nic(sim::EventLoop& loop, const sim::CostModel& model, HostId host,
         NicCapabilities caps)
    : loop_(loop),
      model_(model),
      host_(host),
      caps_(caps),
      processor_(loop, "nic_proc", model.nic_proc_rate, 1),
      tx_link_(loop, "nic_tx", caps.line_rate_gbps * 1e9 / 8.0, 1) {}

void Nic::send(PacketPtr packet) {
  FF_CHECK(packet != nullptr);
  packet->src_host = host_;
  ++tx_packets_;
  tx_bytes_ += packet->wire_bytes;

  if (packet->dst_host == host_) {
    // NIC-internal hairpin: serialization at line rate, no switch traversal.
    tx_link_.submit(static_cast<double>(packet->wire_bytes),
                    [this, packet]() { deliver(packet); });
    return;
  }
  FF_CHECK(tor_ != nullptr);
  tx_link_.submit(static_cast<double>(packet->wire_bytes),
                  [this, packet]() { tor_->forward(packet); },
                  /*account=*/nullptr, model_.link_prop_ns);
}

void Nic::set_rx_handler(PacketKind kind, std::function<void(PacketPtr)> handler) {
  rx_handlers_[static_cast<std::size_t>(kind)] = std::move(handler);
}

void Nic::deliver(PacketPtr packet) {
  ++rx_packets_;
  rx_bytes_ += packet->wire_bytes;
  auto& handler = rx_handlers_[static_cast<std::size_t>(packet->kind)];
  if (handler) {
    handler(std::move(packet));
  } else {
    FF_LOG(warn, "nic") << "host " << host_ << " dropped packet of kind "
                        << static_cast<int>(packet->kind) << " (no handler)";
  }
}

}  // namespace freeflow::fabric
