#include "fabric/nic.h"

#include "common/logging.h"
#include "common/status.h"
#include "fabric/switch.h"

namespace freeflow::fabric {

Nic::Nic(sim::EventLoop& loop, const sim::CostModel& model, HostId host,
         NicCapabilities caps)
    : loop_(loop),
      model_(model),
      host_(host),
      caps_(caps),
      processor_(loop, "nic_proc", model.nic_proc_rate, 1),
      tx_link_(loop, "nic_tx", caps.line_rate_gbps * 1e9 / 8.0, 1) {
  ctr_tx_bytes_.fill(telemetry::Counter::discard());
  ctr_rx_bytes_.fill(telemetry::Counter::discard());
  ctr_drops_.fill(telemetry::Counter::discard());
}

void Nic::set_telemetry(telemetry::Telemetry* hub) {
  if (hub == nullptr) return;
  auto& m = hub->metrics();
  const std::string prefix = "nic/" + std::to_string(host_) + "/";
  for (std::size_t k = 0; k < k_packet_kinds; ++k) {
    const char* kind = packet_kind_name(static_cast<PacketKind>(k));
    ctr_tx_bytes_[k] = &m.counter(prefix + "tx_bytes/" + kind);
    ctr_rx_bytes_[k] = &m.counter(prefix + "rx_bytes/" + kind);
    ctr_drops_[k] = &m.counter(prefix + "drops/" + kind);
  }
  // Sampled at snapshot time: fraction of the tx link's total capacity used
  // since t=0. The NIC outlives the registry's export calls (both die with
  // the cluster), so capturing `this` is safe.
  m.register_probe(prefix + "tx_utilization", [this]() {
    const double now = static_cast<double>(loop_.now());
    return now <= 0 ? 0.0 : tx_link_.busy_ns_total() / now;
  });
}

void Nic::set_rate_fraction(double fraction) noexcept {
  // A fully dead serializer is modeled as link-down, not as a divide-by-zero.
  health_.rate_fraction = fraction < 1e-3 ? 1e-3 : fraction;
}

bool Nic::would_drop(PacketKind kind) const noexcept {
  if (!health_.link_up) return true;
  if (!health_.rdma_up && kind == PacketKind::rdma_chunk) return true;
  if (!health_.dpdk_up && kind == PacketKind::dpdk_frame) return true;
  return false;
}

void Nic::drop(PacketKind kind) {
  ++dropped_packets_;
  ctr_drops_[static_cast<std::size_t>(kind)]->inc();
  if (on_drop_) on_drop_(kind);
}

void Nic::send(PacketPtr packet) {
  FF_CHECK(packet != nullptr);
  packet->src_host = host_;
  if (would_drop(packet->kind)) {
    drop(packet->kind);
    return;
  }
  ++tx_packets_;
  tx_bytes_ += packet->wire_bytes;
  ctr_tx_bytes_[static_cast<std::size_t>(packet->kind)]->inc(packet->wire_bytes);

  // A degraded NIC serializes slower: the same bytes occupy the tx link for
  // 1/rate_fraction as long, which shows up as reduced goodput downstream.
  const double units =
      static_cast<double>(packet->wire_bytes) / health_.rate_fraction;

  if (packet->dst_host == host_) {
    // NIC-internal hairpin: serialization at line rate, no switch traversal.
    tx_link_.submit(units, [this, packet]() { deliver(packet); });
    return;
  }
  FF_CHECK(tor_ != nullptr);
  tx_link_.submit(units, [this, packet]() { tor_->forward(packet); },
                  /*account=*/nullptr, model_.link_prop_ns);
}

void Nic::set_rx_handler(PacketKind kind, std::function<void(PacketPtr)> handler) {
  rx_handlers_[static_cast<std::size_t>(kind)] = std::move(handler);
}

void Nic::deliver(PacketPtr packet) {
  if (would_drop(packet->kind)) {
    // Rx-side fault (e.g. the receiver's RDMA engine died while packets were
    // in flight): the bytes made it across the wire but nobody home.
    drop(packet->kind);
    return;
  }
  ++rx_packets_;
  rx_bytes_ += packet->wire_bytes;
  ctr_rx_bytes_[static_cast<std::size_t>(packet->kind)]->inc(packet->wire_bytes);
  auto& handler = rx_handlers_[static_cast<std::size_t>(packet->kind)];
  if (handler) {
    handler(std::move(packet));
  } else {
    FF_LOG(warn, "nic") << "host " << host_ << " dropped packet of kind "
                        << static_cast<int>(packet->kind) << " (no handler)";
  }
}

}  // namespace freeflow::fabric
