#include "fabric/nic.h"

#include <algorithm>

#include "common/logging.h"
#include "common/status.h"
#include "fabric/switch.h"

namespace freeflow::fabric {

Nic::Nic(sim::EventLoop& loop, const sim::CostModel& model, HostId host,
         NicCapabilities caps)
    : loop_(loop),
      model_(model),
      host_(host),
      caps_(caps),
      processor_(loop, "nic_proc", model.nic_proc_rate, 1),
      tx_link_(loop, "nic_tx", caps.line_rate_gbps * 1e9 / 8.0, 1) {
  ctr_tx_bytes_.fill(telemetry::Counter::discard());
  ctr_rx_bytes_.fill(telemetry::Counter::discard());
  ctr_drops_.fill(telemetry::Counter::discard());
}

void Nic::set_telemetry(telemetry::Telemetry* hub) {
  if (hub == nullptr) return;
  hub_ = hub;
  auto& m = hub->metrics();
  const std::string prefix = "nic/" + std::to_string(host_) + "/";
  for (std::size_t k = 0; k < k_packet_kinds; ++k) {
    const char* kind = packet_kind_name(static_cast<PacketKind>(k));
    ctr_tx_bytes_[k] = &m.counter(prefix + "tx_bytes/" + kind);
    ctr_rx_bytes_[k] = &m.counter(prefix + "rx_bytes/" + kind);
    ctr_drops_[k] = &m.counter(prefix + "drops/" + kind);
  }
  // Tenants seen before the hub was wired pick up real sinks now; tenants
  // seen later wire themselves lazily in tenant_queue().
  for (auto& [tenant, tq] : tenants_) {
    const std::string tprefix = prefix + "tenant/" + std::to_string(tenant) + "/";
    tq.ctr_tx_bytes = &m.counter(tprefix + "tx_bytes");
    tq.g_queue_depth = &m.gauge(tprefix + "queue_depth");
    tq.g_deficit = &m.gauge(tprefix + "sched_deficit");
  }
  // Sampled at snapshot time: fraction of the tx link's total capacity used
  // since t=0. The NIC outlives the registry's export calls (both die with
  // the cluster), so capturing `this` is safe.
  m.register_probe(prefix + "tx_utilization", [this]() {
    const double now = static_cast<double>(loop_.now());
    return now <= 0 ? 0.0 : tx_link_.busy_ns_total() / now;
  });
}

void Nic::set_rate_fraction(double fraction) noexcept {
  // A fully dead serializer is modeled as link-down, not as a divide-by-zero.
  health_.rate_fraction = fraction < 1e-3 ? 1e-3 : fraction;
}

bool Nic::would_drop(PacketKind kind) const noexcept {
  if (!health_.link_up) return true;
  if (!health_.rdma_up && kind == PacketKind::rdma_chunk) return true;
  if (!health_.dpdk_up && kind == PacketKind::dpdk_frame) return true;
  return false;
}

void Nic::drop(PacketKind kind) {
  ++dropped_packets_;
  ctr_drops_[static_cast<std::size_t>(kind)]->inc();
  if (on_drop_) on_drop_(kind);
}

Nic::TenantQueue& Nic::tenant_queue(std::uint32_t tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  TenantQueue& tq = tenants_[tenant];
  if (hub_ != nullptr) {
    auto& m = hub_->metrics();
    const std::string prefix = "nic/" + std::to_string(host_) + "/tenant/" +
                               std::to_string(tenant) + "/";
    tq.ctr_tx_bytes = &m.counter(prefix + "tx_bytes");
    tq.g_queue_depth = &m.gauge(prefix + "queue_depth");
    tq.g_deficit = &m.gauge(prefix + "sched_deficit");
  }
  return tq;
}

void Nic::set_tenant_qos(std::uint32_t tenant, TenantQos qos) {
  FF_CHECK(qos.weight >= 1);
  TenantQueue& tq = tenant_queue(tenant);
  tq.qos = qos;
  // Any (re)configured cap starts earning tokens from now — an empty bucket,
  // so a tightened cap cannot spend a stale surplus.
  tq.tokens_at = loop_.now();
  tq.tokens = 0.0;
  dispatch_next();
}

std::uint64_t Nic::tenant_tx_bytes(std::uint32_t tenant) const noexcept {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.tx_bytes;
}

std::size_t Nic::tenant_queue_depth(std::uint32_t tenant) const noexcept {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.q.size();
}

void Nic::refill_tokens(TenantQueue& tq) noexcept {
  const SimTime now = loop_.now();
  const double bytes_per_ns = tq.qos.rate_bps / 8.0e9;
  tq.tokens += static_cast<double>(now - tq.tokens_at) * bytes_per_ns;
  tq.tokens_at = now;
  // Burst allowance: one scheduling quantum or one max-sized chunk,
  // whichever is larger — enough that the cap shapes rate, not liveness.
  const double burst =
      std::max(k_drr_quantum_bytes * tq.qos.weight, 128.0 * 1024);
  if (tq.tokens > burst) tq.tokens = burst;
}

void Nic::send(PacketPtr packet) {
  FF_CHECK(packet != nullptr);
  packet->src_host = host_;
  if (would_drop(packet->kind)) {
    drop(packet->kind);
    return;
  }
  ++tx_packets_;
  tx_bytes_ += packet->wire_bytes;
  ctr_tx_bytes_[static_cast<std::size_t>(packet->kind)]->inc(packet->wire_bytes);

  TenantQueue& tq = tenant_queue(packet->tenant);
  tq.q.push_back(std::move(packet));
  tq.g_queue_depth->set(static_cast<std::int64_t>(tq.q.size()));
  if (!tq.active) {
    tq.active = true;
    tq.charged = false;
    active_.push_back(&tq);
  }
  dispatch_next();
}

void Nic::dispatch_next() {
  if (tx_busy_) return;
  SimTime earliest_ready = -1;
  std::size_t blocked_in_row = 0;
  while (!active_.empty() && blocked_in_row < active_.size()) {
    TenantQueue& tq = *active_.front();
    if (tq.q.empty()) {
      // Drained on a previous dispatch; retire from the rotation.
      tq.active = false;
      tq.charged = false;
      tq.deficit = 0.0;
      tq.g_deficit->set(0);
      active_.pop_front();
      continue;
    }
    const Packet& head = *tq.q.front();
    if (tq.qos.rate_bps > 0) {
      refill_tokens(tq);
      if (tq.tokens < head.wire_bytes) {
        // Rate-capped below its WDRR share: wait for tokens without
        // charging a quantum, and let the others use the idle link.
        const double bytes_per_ns = tq.qos.rate_bps / 8.0e9;
        const auto wait = static_cast<SimTime>(
            (head.wire_bytes - tq.tokens) / bytes_per_ns) + 1;
        const SimTime ready = loop_.now() + wait;
        if (earliest_ready < 0 || ready < earliest_ready) earliest_ready = ready;
        ++blocked_in_row;
        tq.charged = false;
        active_.pop_front();
        active_.push_back(&tq);
        continue;
      }
    }
    if (tq.deficit < head.wire_bytes) {
      if (!tq.charged) {
        tq.deficit += k_drr_quantum_bytes * tq.qos.weight;
        tq.charged = true;
      }
      if (tq.deficit < head.wire_bytes) {
        // Out of deficit this rotation; accumulate across rounds.
        blocked_in_row = 0;
        tq.charged = false;
        tq.g_deficit->set(static_cast<std::int64_t>(tq.deficit));
        active_.pop_front();
        active_.push_back(&tq);
        continue;
      }
    }
    // Dispatch the head: it owns the serializer until service completes.
    PacketPtr packet = std::move(tq.q.front());
    tq.q.pop_front();
    tq.deficit -= packet->wire_bytes;
    if (tq.qos.rate_bps > 0) tq.tokens -= packet->wire_bytes;
    tq.tx_bytes += packet->wire_bytes;
    tq.ctr_tx_bytes->inc(packet->wire_bytes);
    tq.g_queue_depth->set(static_cast<std::int64_t>(tq.q.size()));
    if (tq.q.empty()) {
      tq.active = false;
      tq.charged = false;
      tq.deficit = 0.0;
      active_.pop_front();
    }
    tq.g_deficit->set(static_cast<std::int64_t>(tq.deficit));
    transmit(std::move(packet));
    return;
  }
  if (earliest_ready >= 0 && !retry_armed_) {
    retry_armed_ = true;
    loop_.schedule(earliest_ready - loop_.now(), [this]() {
      retry_armed_ = false;
      dispatch_next();
    });
  }
}

void Nic::transmit(PacketPtr packet) {
  tx_busy_ = true;
  // A degraded NIC serializes slower: the same bytes occupy the tx link for
  // 1/rate_fraction as long, which shows up as reduced goodput downstream.
  const double units =
      static_cast<double>(packet->wire_bytes) / health_.rate_fraction;
  if (packet->dst_host == host_) {
    // NIC-internal hairpin: serialization at line rate, no switch traversal.
    tx_link_.submit(units, [this, packet]() {
      tx_busy_ = false;
      dispatch_next();
      deliver(packet);
    });
    return;
  }
  FF_CHECK(tor_ != nullptr);
  tx_link_.submit(units, [this, packet]() {
    tx_busy_ = false;
    dispatch_next();
    // Propagation happens off the serializer: the next packet starts
    // serializing while this one is in flight, exactly as before WDRR.
    loop_.schedule(model_.link_prop_ns, [this, packet]() { tor_->forward(packet); });
  });
}

void Nic::set_rx_handler(PacketKind kind, std::function<void(PacketPtr)> handler) {
  rx_handlers_[static_cast<std::size_t>(kind)] = std::move(handler);
}

void Nic::deliver(PacketPtr packet) {
  if (would_drop(packet->kind)) {
    // Rx-side fault (e.g. the receiver's RDMA engine died while packets were
    // in flight): the bytes made it across the wire but nobody home.
    drop(packet->kind);
    return;
  }
  ++rx_packets_;
  rx_bytes_ += packet->wire_bytes;
  ctr_rx_bytes_[static_cast<std::size_t>(packet->kind)]->inc(packet->wire_bytes);
  auto& handler = rx_handlers_[static_cast<std::size_t>(packet->kind)];
  if (handler) {
    handler(std::move(packet));
  } else {
    FF_LOG(warn, "nic") << "host " << host_ << " dropped packet of kind "
                        << static_cast<int>(packet->kind) << " (no handler)";
  }
}

}  // namespace freeflow::fabric
