#include "core/wire.h"

#include <cstring>

namespace freeflow::core {

void WireHeader::encode(std::byte* out) const noexcept {
  std::memset(out, 0, k_size);
  out[0] = static_cast<std::byte>(type);
  std::memcpy(out + 2, &port, 2);
  std::memcpy(out + 4, &mr, 4);
  std::memcpy(out + 8, &len, 4);
  std::memcpy(out + 16, &id, 8);
  std::memcpy(out + 24, &offset, 8);
  std::memcpy(out + 32, &token, 8);
  std::memcpy(out + 40, &seq, 8);
}

WireHeader WireHeader::decode(const std::byte* in) noexcept {
  WireHeader h;
  h.type = static_cast<VMsg>(in[0]);
  std::memcpy(&h.port, in + 2, 2);
  std::memcpy(&h.mr, in + 4, 4);
  std::memcpy(&h.len, in + 8, 4);
  std::memcpy(&h.id, in + 16, 8);
  std::memcpy(&h.offset, in + 24, 8);
  std::memcpy(&h.token, in + 32, 8);
  std::memcpy(&h.seq, in + 40, 8);
  return h;
}

Buffer make_message(const WireHeader& header, ByteSpan payload) {
  WireHeader h = header;
  h.len = static_cast<std::uint32_t>(payload.size());
  Buffer out(WireHeader::k_size + payload.size());
  h.encode(out.data());
  if (!payload.empty()) {
    std::memcpy(out.data() + WireHeader::k_size, payload.data(), payload.size());
  }
  return out;
}

Result<ParsedMessage> parse_message(ByteSpan message) {
  if (message.size() < WireHeader::k_size) {
    return invalid_argument("freeflow message shorter than header");
  }
  ParsedMessage out;
  out.header = WireHeader::decode(message.data());
  out.payload = message.subspan(WireHeader::k_size);
  if (out.payload.size() != out.header.len) {
    return invalid_argument("freeflow message length mismatch");
  }
  return out;
}

}  // namespace freeflow::core
