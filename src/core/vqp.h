// The virtual RDMA NIC's queue pair: exposes the very same verbs call
// shapes as the hardware path (rdma::QueuePair) — post_send with
// SEND/WRITE/READ opcodes, post_recv, completion queues — but executes over
// whatever conduit/transport the orchestrator chose. Applications written
// against verbs run unchanged whether the peer is across a shared-memory
// ring or across the datacenter (paper §4.2, Figs. 5-7).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "core/conduit.h"
#include "rdma/verbs.h"

namespace freeflow::core {

class ContainerNet;

class VirtualQp : public std::enable_shared_from_this<VirtualQp> {
 public:
  VirtualQp(ContainerNet& net, ConduitPtr conduit, rdma::CqPtr send_cq,
            rdma::CqPtr recv_cq);

  VirtualQp(const VirtualQp&) = delete;
  VirtualQp& operator=(const VirtualQp&) = delete;

  /// Same contract as rdma::QueuePair::post_send. For WRITE/READ the
  /// RemoteBuffer's rkey names a peer MR id (as returned by reg_mr).
  Status post_send(const rdma::SendWr& wr);
  Status post_recv(const rdma::RecvWr& wr);

  [[nodiscard]] rdma::CqPtr send_cq() const noexcept { return send_cq_; }
  [[nodiscard]] rdma::CqPtr recv_cq() const noexcept { return recv_cq_; }
  [[nodiscard]] orch::Transport transport() const noexcept { return conduit_->transport(); }
  [[nodiscard]] ConduitPtr conduit() const noexcept { return conduit_; }

  /// Tears the connection down: pending work completes with qp_error and
  /// the teardown propagates to the peer QP over the conduit.
  void close() { conduit_->close(); }

  /// Why the conduit under this QP went down (meaningful once closed).
  [[nodiscard]] CloseReason close_reason() const noexcept { return close_reason_; }

  /// ContainerNet-internal: wires the conduit's messages to this QP.
  void bind();

 private:
  void handle_message(const WireHeader& header, ByteSpan payload);
  void complete_send(const rdma::SendWr& wr, rdma::WcStatus status);

  ContainerNet& net_;
  ConduitPtr conduit_;
  rdma::CqPtr send_cq_;
  rdma::CqPtr recv_cq_;

  std::deque<rdma::RecvWr> rq_;
  std::deque<Buffer> rx_backlog_;  ///< sends that arrived before a recv
  std::unordered_map<std::uint64_t, rdma::SendWr> pending_reads_;
  std::uint64_t next_req_id_ = 1;
  CloseReason close_reason_ = CloseReason::app_close;
};

using VirtualQpPtr = std::shared_ptr<VirtualQp>;

}  // namespace freeflow::core
