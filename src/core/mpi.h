// Minimal MPI-flavored API on top of FreeFlow (paper §4.2: "there are
// already libraries translating MPI to verbs semantics"; we layer the MPI
// runtime on the FreeFlow socket/verbs library the same way). Point-to-point
// send/recv with tag matching plus the collectives the example workloads
// need (barrier, broadcast, allreduce).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/container_net.h"

namespace freeflow::core {

class MpiEndpoint : public std::enable_shared_from_this<MpiEndpoint> {
 public:
  using ReadyFn = std::function<void(Status)>;
  using RecvFn = std::function<void(Buffer&&)>;

  /// `members[i]` is the overlay IP of rank i; `net` is this rank's library.
  MpiEndpoint(ContainerNetPtr net, int rank, std::vector<tcp::Ipv4Addr> members,
              std::uint16_t port = 29500);

  /// Binds the MPI service port; call on every rank before communicating.
  Status start();

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(members_.size()); }

  /// Tagged point-to-point. Tags >= k_reserved_tag_base are reserved.
  void send(int dst, std::uint32_t tag, Buffer data);
  void recv(int src, std::uint32_t tag, RecvFn cb);

  /// Collectives (root = rank 0 unless stated). Each call site must issue
  /// collectives in the same order on every rank, as in MPI.
  void barrier(std::function<void()> done);
  void broadcast(int root, Buffer data, RecvFn done);
  void allreduce_sum(std::vector<double> values,
                     std::function<void(std::vector<double>)> done);
  /// Root receives every rank's contribution (indexed by rank); other ranks
  /// get an empty vector.
  void gather(int root, Buffer data, std::function<void(std::vector<Buffer>)> done);
  /// Root distributes parts[i] to rank i (parts.size() must equal size()).
  void scatter(int root, std::vector<Buffer> parts, RecvFn done);

  static constexpr std::uint32_t k_reserved_tag_base = 0xFFFF0000;

 private:
  struct MatchKey {
    int src;
    std::uint32_t tag;
    auto operator<=>(const MatchKey&) const = default;
  };

  void with_socket(int dst, std::function<void(Result<FlowSocketPtr>)> cb);
  void dispatch(int src, std::uint32_t tag, Buffer&& payload);
  /// Wires a socket's stream into the record parser/demux.
  void adopt_socket(FlowSocketPtr sock);

  ContainerNetPtr net_;
  int rank_;
  std::vector<tcp::Ipv4Addr> members_;
  std::uint16_t port_;

  std::map<int, FlowSocketPtr> sockets_;
  std::vector<FlowSocketPtr> accepted_;  ///< keeps inbound sockets alive
  std::map<int, std::vector<std::function<void(Result<FlowSocketPtr>)>>> connecting_;

  std::map<MatchKey, std::deque<Buffer>> unexpected_;
  std::map<MatchKey, std::deque<RecvFn>> waiting_;

  std::uint32_t barrier_round_ = 0;
  std::uint32_t bcast_round_ = 0;
  std::uint32_t reduce_round_ = 0;
  std::uint32_t gather_round_ = 0;
  std::uint32_t scatter_round_ = 0;
};

using MpiEndpointPtr = std::shared_ptr<MpiEndpoint>;

}  // namespace freeflow::core
