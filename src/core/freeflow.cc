#include "core/freeflow.h"

namespace freeflow::core {

FreeFlow::FreeFlow(orch::NetworkOrchestrator& orchestrator, agent::AgentConfig config)
    : orchestrator_(orchestrator),
      plane_(orchestrator, config.control_plane_shards),
      agents_(orchestrator, config) {
  // Route migration notifications to the affected library instances. The
  // orchestrator outlives this object, so guard with the liveness token.
  std::weak_ptr<bool> alive = alive_;
  orchestrator_.subscribe_moves([this, alive](const orch::Container& moved) {
    if (alive.expired()) return;
    // A coordinator-driven move resumes through the MigrationImage restore
    // path instead of the reactive rebind below (the coordinator's own
    // moves subscription runs after this one).
    if (planned_.contains(moved.id())) return;
    for (auto& [cid, net] : nets_) {
      if (cid == moved.id()) {
        net->handle_self_moved();
      } else if (net->has_conduit_to(moved.id())) {
        net->handle_peer_moved(moved.id());
      }
    }
  });
  // Reactive (coordinator-less) migration: the instant the container stops
  // for its stop-and-copy, detach every conduit touching it so no bytes die
  // in a closed channel during the downtime — sends queue, and the moved
  // notification above re-binds when the container lands.
  orchestrator_.cluster_orch().on_migration_started(
      [this, alive](const orch::Container& moving) {
        if (alive.expired()) return;
        if (planned_.contains(moving.id())) return;
        for (auto& [cid, net] : nets_) {
          if (cid == moving.id()) {
            net->freeze_all_conduits();
          } else if (net->has_conduit_to(moving.id())) {
            net->freeze_conduits_to(moving.id());
          }
        }
      });
  // Container stops tear their connections down everywhere. A stop caused
  // by a host crash surfaces as host_crashed to the peers' close callbacks.
  orchestrator_.cluster_orch().on_stopped([this, alive](const orch::Container& stopped) {
    if (alive.expired()) return;
    const bool crashed =
        orchestrator_.cluster_orch().cluster().host(stopped.host()).crashed();
    auto it = nets_.find(stopped.id());
    if (it != nets_.end()) {
      it->second->handle_self_stopped();
      nets_.erase(it);
    }
    const CloseReason reason =
        crashed ? CloseReason::host_crashed : CloseReason::peer_bye;
    for (auto& [cid, net] : nets_) {
      if (net->has_conduit_to(stopped.id())) net->handle_peer_stopped(stopped.id(), reason);
    }
  });
  // NIC health changes (telemetry or agent failure reports): every library
  // instance with a conduit touching the changed host re-decides.
  orchestrator_.subscribe_health([this, alive](fabric::HostId changed) {
    if (alive.expired()) return;
    std::vector<ContainerNetPtr> snapshot;
    snapshot.reserve(nets_.size());
    for (auto& [cid, net] : nets_) snapshot.push_back(net);
    for (auto& net : snapshot) net->handle_health_event(changed);
  });
}

tcp::TcpNetwork& FreeFlow::fallback_net() {
  if (fallback_net_ == nullptr) {
    auto& cluster_orch = orchestrator_.cluster_orch();
    fallback_net_ = std::make_unique<tcp::TcpNetwork>(
        loop(), cluster_orch.cluster().cost_model(),
        cluster_orch.overlay().path_builder());
  }
  return *fallback_net_;
}

TransportSelector& FreeFlow::selector_on(fabric::HostId host) {
  auto it = selectors_.find(host);
  if (it == selectors_.end()) {
    it = selectors_
             .emplace(host, std::make_unique<TransportSelector>(
                                plane_, agents_.loop(), host,
                                agents_.config().selector_cache_capacity))
             .first;
  }
  return *it->second;
}

Result<ContainerNetPtr> FreeFlow::attach(orch::ContainerId id) {
  if (auto it = nets_.find(id); it != nets_.end()) return it->second;
  auto container = orchestrator_.cluster_orch().container(id);
  if (container == nullptr) return not_found("no container " + std::to_string(id));
  if (container->state() != orch::ContainerState::running) {
    return failed_precondition("container not running");
  }
  auto net = std::make_shared<ContainerNet>(*this, container);
  net->register_with_agent();
  nets_.emplace(id, net);
  return net;
}

void FreeFlow::note_planned_migration(orch::ContainerId id, bool active) {
  if (active) {
    planned_.insert(id);
  } else {
    planned_.erase(id);
  }
}

ContainerNetPtr FreeFlow::net(orch::ContainerId id) const {
  auto it = nets_.find(id);
  return it == nets_.end() ? nullptr : it->second;
}

}  // namespace freeflow::core
