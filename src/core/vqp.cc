#include "core/vqp.h"

#include <cstring>

#include "common/logging.h"
#include "core/container_net.h"

namespace freeflow::core {

VirtualQp::VirtualQp(ContainerNet& net, ConduitPtr conduit, rdma::CqPtr send_cq,
                     rdma::CqPtr recv_cq)
    : net_(net),
      conduit_(std::move(conduit)),
      send_cq_(std::move(send_cq)),
      recv_cq_(std::move(recv_cq)) {
  FF_CHECK(conduit_ != nullptr && send_cq_ != nullptr && recv_cq_ != nullptr);
}

void VirtualQp::bind() {
  auto self = weak_from_this();
  conduit_->set_on_message([self](const WireHeader& h, ByteSpan payload) {
    if (auto qp = self.lock()) qp->handle_message(h, payload);
  });
  conduit_->set_on_closed([self](CloseReason reason) {
    auto qp = self.lock();
    if (qp == nullptr) return;
    qp->close_reason_ = reason;
    // Pending reads and posted receives flush with an error completion,
    // mirroring a hardware QP transitioning to the error state.
    for (auto& [id, wr] : qp->pending_reads_) {
      qp->complete_send(wr, rdma::WcStatus::qp_error);
    }
    qp->pending_reads_.clear();
    while (!qp->rq_.empty()) {
      rdma::WorkCompletion wc;
      wc.wr_id = qp->rq_.front().wr_id;
      wc.opcode = rdma::Opcode::recv;
      wc.status = rdma::WcStatus::qp_error;
      qp->recv_cq_->push(wc);
      qp->rq_.pop_front();
    }
  });
}

Status VirtualQp::post_send(const rdma::SendWr& wr) {
  if (wr.local.mr == nullptr ||
      wr.local.offset + wr.local.length > wr.local.mr->length()) {
    return invalid_argument("local buffer out of MR bounds");
  }
  net_.charge_post();

  WireHeader h;
  h.id = wr.wr_id;
  switch (wr.opcode) {
    case rdma::Opcode::send: {
      h.type = VMsg::verbs_send;
      conduit_->send(h, ByteSpan{wr.local.mr->data().data() + wr.local.offset,
                                 wr.local.length});
      complete_send(wr, rdma::WcStatus::success);
      return ok_status();
    }
    case rdma::Opcode::write: {
      h.type = VMsg::verbs_write;
      h.mr = wr.remote.rkey;
      h.offset = wr.remote.offset;
      conduit_->send(h, ByteSpan{wr.local.mr->data().data() + wr.local.offset,
                                 wr.local.length});
      complete_send(wr, rdma::WcStatus::success);
      return ok_status();
    }
    case rdma::Opcode::read: {
      h.type = VMsg::verbs_read_req;
      h.id = next_req_id_++;
      h.mr = wr.remote.rkey;
      h.offset = wr.remote.offset;
      h.token = wr.local.length;  // bytes requested
      pending_reads_.emplace(h.id, wr);
      conduit_->send(h);
      return ok_status();
    }
    case rdma::Opcode::recv:
      return invalid_argument("recv is not a send opcode");
  }
  return invalid_argument("unknown opcode");
}

Status VirtualQp::post_recv(const rdma::RecvWr& wr) {
  if (wr.local.mr == nullptr ||
      wr.local.offset + wr.local.length > wr.local.mr->length()) {
    return invalid_argument("local buffer out of MR bounds");
  }
  net_.charge_post();
  rq_.push_back(wr);
  // Drain any sends that arrived before this receive was posted.
  while (!rx_backlog_.empty() && !rq_.empty()) {
    Buffer msg = std::move(rx_backlog_.front());
    rx_backlog_.pop_front();
    auto parsed = parse_message(msg.view());
    FF_CHECK(parsed.is_ok());
    handle_message(parsed->header, parsed->payload);
  }
  return ok_status();
}

void VirtualQp::complete_send(const rdma::SendWr& wr, rdma::WcStatus status) {
  // The conduit is reliable and ordered, so the RC completion semantics
  // ("local buffer reusable, delivery guaranteed") hold as soon as the
  // channel accepted the message.
  if (!wr.signaled && status == rdma::WcStatus::success) return;
  rdma::WorkCompletion wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = wr.opcode;
  wc.status = status;
  wc.byte_len = static_cast<std::uint32_t>(wr.local.length);
  send_cq_->push(wc);
}

void VirtualQp::handle_message(const WireHeader& h, ByteSpan payload) {
  switch (h.type) {
    case VMsg::verbs_send: {
      if (rq_.empty()) {
        rx_backlog_.push_back(make_message(h, payload));
        return;
      }
      rdma::RecvWr wr = rq_.front();
      rq_.pop_front();
      rdma::WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.opcode = rdma::Opcode::recv;
      wc.byte_len = static_cast<std::uint32_t>(payload.size());
      if (payload.size() > wr.local.length) {
        wc.status = rdma::WcStatus::local_length_error;
      } else if (!payload.empty()) {
        std::memcpy(wr.local.mr->data().data() + wr.local.offset, payload.data(),
                    payload.size());
      }
      recv_cq_->push(wc);
      return;
    }
    case VMsg::verbs_write: {
      rdma::MrPtr target = net_.mr(h.mr);
      if (target == nullptr || h.offset + payload.size() > target->length()) {
        FF_LOG(warn, "core") << "verbs write out of bounds; dropped";
        return;
      }
      if (!payload.empty()) {
        std::memcpy(target->data().data() + h.offset, payload.data(), payload.size());
      }
      return;
    }
    case VMsg::verbs_read_req: {
      rdma::MrPtr target = net_.mr(h.mr);
      WireHeader resp;
      resp.type = VMsg::verbs_read_resp;
      resp.id = h.id;
      net_.charge_post();  // the vNIC answers; one doorbell worth of CPU
      if (target == nullptr || h.offset + h.token > target->length()) {
        resp.mr = 1;  // non-zero marks an error response
        conduit_->send(resp);
        return;
      }
      conduit_->send(resp, ByteSpan{target->data().data() + h.offset,
                                    static_cast<std::size_t>(h.token)});
      return;
    }
    case VMsg::verbs_read_resp: {
      auto it = pending_reads_.find(h.id);
      if (it == pending_reads_.end()) return;
      const rdma::SendWr wr = it->second;
      pending_reads_.erase(it);
      rdma::WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.opcode = rdma::Opcode::read;
      wc.byte_len = static_cast<std::uint32_t>(payload.size());
      if (h.mr != 0 || payload.size() > wr.local.length) {
        wc.status = rdma::WcStatus::remote_access_error;
      } else if (!payload.empty()) {
        std::memcpy(wr.local.mr->data().data() + wr.local.offset, payload.data(),
                    payload.size());
      }
      send_cq_->push(wc);
      return;
    }
    default:
      FF_LOG(warn, "core") << "vQP got unexpected message type "
                           << static_cast<int>(h.type);
  }
}

}  // namespace freeflow::core
