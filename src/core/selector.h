// Transport selector: the per-agent decision cache over the sharded
// control plane. The library "keeps pulling the newest container location
// information from the network orchestrator" (paper §3.2); each host's
// agent now holds its own bounded cache of (src, dst) -> TransportDecision
// entries, versioned by the control plane's per-container decision epochs.
//
// Misses are batched per home shard: every query that arrives within one
// coalescing window rides the same batched RPC instead of paying its own.
// Negative answers (unknown container) are cached briefly too, so retry
// loops don't hammer the shards. The cache is bounded: beyond capacity the
// least-recently-used entry is evicted.
//
// Invalidation is push-based and precise. The plane tracks which selectors
// hold entries involving each container (the selector registers interest
// as entries appear and drops it when the last one dies); fault reports,
// NIC-health transitions and migrations push epoch-bumped flushes that
// drop exactly the affected entries via a per-container reverse index —
// a co-located shm pair survives its host's RDMA engine dying. TTL expiry
// remains only as a backstop; the `selector/stale_served` counter audits
// every hit against ground-truth epochs and the perf gate holds it at
// zero, proving the push plumbing (not the TTL) keeps caches coherent.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "orchestrator/shard.h"
#include "sim/event_loop.h"
#include "telemetry/metrics.h"

namespace freeflow::core {

class TransportSelector final : public orch::DecisionCacheClient {
 public:
  TransportSelector(orch::ShardedControlPlane& plane, sim::EventLoop& loop,
                    fabric::HostId host, std::size_t capacity);
  ~TransportSelector() override;

  TransportSelector(const TransportSelector&) = delete;
  TransportSelector& operator=(const TransportSelector&) = delete;

  /// Decides the transport from `src` to `dst`. Cached answers return after
  /// one scheduling quantum; misses join the current batch window and pay
  /// (one shared) home-shard RPC. A reply that raced an epoch bump (e.g. a
  /// migration completing while the RPC was in flight) is rejected and
  /// re-queried instead of being cached or served.
  void decide(orch::ContainerId src, orch::ContainerId dst,
              std::function<void(Result<orch::TransportDecision>)> cb);

  /// Drops every cached decision involving `container` — O(entries actually
  /// affected) via the reverse index, not a full-cache sweep.
  void invalidate(orch::ContainerId container);

  /// Control-plane flush push (DecisionCacheClient). Drops entries for
  /// `container` whose transport is in `drop_mask`; re-stamps survivors.
  void on_flush(orch::ContainerId container, orch::DecisionEpoch epoch,
                std::uint8_t drop_mask) override;

  [[nodiscard]] fabric::HostId host() const noexcept { return host_; }
  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }

  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept { return misses_; }
  /// Shard round-trips actually paid (<= cache_misses() under storms).
  [[nodiscard]] std::uint64_t rpc_rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  /// Entries dropped by invalidate()/flush pushes.
  [[nodiscard]] std::uint64_t invalidations() const noexcept { return invalidations_; }
  /// Fresh-by-TTL hits whose epochs lagged ground truth — a flush that
  /// should have arrived didn't. Served as a miss instead; the perf gate
  /// holds this at zero.
  [[nodiscard]] std::uint64_t stale_served() const noexcept { return stale_served_; }
  /// In-flight replies rejected because an epoch bump overtook them.
  [[nodiscard]] std::uint64_t epoch_rejects() const noexcept { return epoch_rejects_; }

 private:
  /// Epoch-reject retry budget: a query that keeps racing container events
  /// (one bump per in-flight window is the realistic worst case) re-rides
  /// the next batch this many times before surfacing `aborted`.
  static constexpr int k_max_decide_attempts = 4;

  struct CacheEntry {
    orch::TransportDecision decision;
    Status error;         ///< negative-cache payload (negative == true)
    bool negative = false;
    SimTime fresh_until = 0;
    orch::DecisionEpoch src_epoch = 0;
    orch::DecisionEpoch dst_epoch = 0;
    std::list<std::uint64_t>::iterator lru;
  };
  using CacheMap = std::unordered_map<std::uint64_t, CacheEntry>;

  struct PendingQuery {
    std::uint64_t key = 0;
    orch::ContainerId src = 0;
    orch::ContainerId dst = 0;
    int attempt = 0;
    std::function<void(Result<orch::TransportDecision>)> cb;
  };

  void enqueue(PendingQuery q);
  void flush_batch();
  void complete(PendingQuery q, orch::ShardedControlPlane::DecideReply reply);
  void store(const PendingQuery& q,
             const orch::ShardedControlPlane::DecideReply& reply);
  /// Single exit for entries: maintains LRU, reverse index and interest.
  void erase_entry(CacheMap::iterator it);
  void unindex(orch::ContainerId container, std::uint64_t key);
  void index(orch::ContainerId container, std::uint64_t key);

  orch::ShardedControlPlane& plane_;
  sim::EventLoop& loop_;
  const fabric::HostId host_;
  const std::size_t capacity_;

  CacheMap cache_;
  /// Most-recently-used at the front; evictions pop the back.
  std::list<std::uint64_t> lru_;
  /// container -> keys of cached entries involving it (precise flushes).
  std::unordered_map<orch::ContainerId, std::unordered_set<std::uint64_t>> by_container_;

  std::vector<PendingQuery> batch_;
  bool flush_scheduled_ = false;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t stale_served_ = 0;
  std::uint64_t epoch_rejects_ = 0;

  // Registry-shared counters (aggregated across the per-agent selectors).
  telemetry::Counter* ctr_rpc_rounds_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_coalesced_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_invalidations_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_stale_served_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_evictions_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_epoch_rejects_ = telemetry::Counter::discard();

  /// Guard for replies scheduled on the loop outliving this selector.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace freeflow::core
