// Transport selector: the library-side cache over the network
// orchestrator's location/decision service. The library "keeps pulling the
// newest container location information from the network orchestrator"
// (paper §3.2); we cache decisions with a TTL and invalidate eagerly on
// move notifications, so steady-state traffic pays no control-plane RTT.
//
// Misses are batched: every query that arrives within one RPC window rides
// the same orchestrator round instead of paying its own. Under a connect
// storm (thousands of flows declared the same tick) this collapses N
// control-plane round-trips into one, which is what keeps setup-latency
// tails flat as the storm grows.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "orchestrator/network_orchestrator.h"
#include "sim/event_loop.h"
#include "telemetry/metrics.h"

namespace freeflow::core {

class TransportSelector {
 public:
  TransportSelector(orch::NetworkOrchestrator& orchestrator, sim::EventLoop& loop);

  /// Decides the transport from `src` to `dst`. Cached answers return after
  /// one scheduling quantum; misses join the current batch and pay (one
  /// shared) orchestrator RPC latency.
  void decide(orch::ContainerId src, orch::ContainerId dst,
              std::function<void(Result<orch::TransportDecision>)> cb);

  /// Drops the cached decision for any pair involving `container`.
  void invalidate(orch::ContainerId container);

  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept { return misses_; }
  /// Orchestrator round-trips actually paid (≤ cache_misses() under storms).
  [[nodiscard]] std::uint64_t rpc_rounds() const noexcept { return rounds_; }

 private:
  struct CacheEntry {
    orch::TransportDecision decision;
    SimTime fresh_until = 0;
  };

  struct PendingQuery {
    std::uint64_t key = 0;
    orch::ContainerId src = 0;
    orch::ContainerId dst = 0;
    std::function<void(Result<orch::TransportDecision>)> cb;
  };

  void flush();

  orch::NetworkOrchestrator& orchestrator_;
  sim::EventLoop& loop_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::vector<PendingQuery> batch_;
  bool flush_scheduled_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rounds_ = 0;
  telemetry::Counter* ctr_rpc_rounds_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_coalesced_ = telemetry::Counter::discard();
};

}  // namespace freeflow::core
