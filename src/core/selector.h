// Transport selector: the library-side cache over the network
// orchestrator's location/decision service. The library "keeps pulling the
// newest container location information from the network orchestrator"
// (paper §3.2); we cache decisions with a TTL and invalidate eagerly on
// move notifications, so steady-state traffic pays no control-plane RTT.
#pragma once

#include <functional>
#include <unordered_map>

#include "orchestrator/network_orchestrator.h"
#include "sim/event_loop.h"

namespace freeflow::core {

class TransportSelector {
 public:
  TransportSelector(orch::NetworkOrchestrator& orchestrator, sim::EventLoop& loop);

  /// Decides the transport from `src` to `dst`. Cached answers return after
  /// one scheduling quantum; misses pay the orchestrator RPC latency.
  void decide(orch::ContainerId src, orch::ContainerId dst,
              std::function<void(Result<orch::TransportDecision>)> cb);

  /// Drops the cached decision for any pair involving `container`.
  void invalidate(orch::ContainerId container);

  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept { return misses_; }

 private:
  struct CacheEntry {
    orch::TransportDecision decision;
    SimTime fresh_until = 0;
  };

  orch::NetworkOrchestrator& orchestrator_;
  sim::EventLoop& loop_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace freeflow::core
