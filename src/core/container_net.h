// ContainerNet: the per-container instance of FreeFlow's network library —
// the paper's "customized network library supporting standard network APIs"
// plus the virtual RDMA NIC. It owns the container's MR table, its QP/socket
// listeners, and one conduit per peer connection; it consults the transport
// selector, asks the host agent for channels, and transparently re-binds
// everything when the orchestrator reports a migration.
#pragma once

#include <functional>
#include <vector>
#include <map>
#include <memory>
#include <unordered_map>

#include "core/conduit.h"
#include "core/socket.h"
#include "core/vqp.h"
#include "orchestrator/network_orchestrator.h"
#include "rdma/verbs.h"

namespace freeflow::core {

class FreeFlow;

class ContainerNet : public std::enable_shared_from_this<ContainerNet> {
 public:
  using QpAcceptFn = std::function<void(VirtualQpPtr)>;
  using QpConnectFn = std::function<void(Result<VirtualQpPtr>)>;
  using SockAcceptFn = std::function<void(FlowSocketPtr)>;
  using SockConnectFn = std::function<void(Result<FlowSocketPtr>)>;

  ContainerNet(FreeFlow& ff, orch::ContainerPtr container);
  /// Closes every conduit (and unrouted incoming channel) so no callback
  /// registered on lanes or the event loop outlives the library instance.
  ~ContainerNet();

  ContainerNet(const ContainerNet&) = delete;
  ContainerNet& operator=(const ContainerNet&) = delete;

  // ---- verbs surface ----------------------------------------------------
  /// Registers container memory; the returned MR's rkey names it to peers.
  rdma::MrPtr reg_mr(std::size_t length);
  [[nodiscard]] rdma::MrPtr mr(std::uint32_t id) const;
  rdma::CqPtr create_cq(std::size_t capacity = 4096);

  /// CM-style rendezvous: accept verbs QPs on a service port.
  Status listen_qp(std::uint16_t port, QpAcceptFn on_accept);
  void connect_qp(tcp::Ipv4Addr peer_ip, std::uint16_t port, rdma::CqPtr send_cq,
                  rdma::CqPtr recv_cq, QpConnectFn done);

  // ---- socket surface ---------------------------------------------------
  Status sock_listen(std::uint16_t port, SockAcceptFn on_accept);
  void sock_connect(tcp::Ipv4Addr peer_ip, std::uint16_t port, SockConnectFn done);

  // ---- identity / plumbing ----------------------------------------------
  [[nodiscard]] orch::ContainerId id() const noexcept { return container_->id(); }
  [[nodiscard]] tcp::Ipv4Addr ip() const noexcept { return container_->ip(); }
  [[nodiscard]] const std::string& name() const noexcept { return container_->name(); }
  [[nodiscard]] orch::ContainerPtr container() const noexcept { return container_; }
  [[nodiscard]] FreeFlow& freeflow() noexcept { return ff_; }
  [[nodiscard]] fabric::Host& current_host();
  [[nodiscard]] sim::EventLoop& loop();

  /// Charges one verb-post worth of CPU to this container.
  void charge_post();

  // ---- migration / teardown (driven by FreeFlow) -------------------------
  void handle_self_moved();
  void handle_peer_moved(orch::ContainerId peer);
  /// The container stopped: unregister and permanently close every conduit.
  void handle_self_stopped();
  /// A peer stopped: close conduits to it (sockets fire on_close, QPs err)
  /// with `reason` (peer_bye for a graceful stop, host_crashed for a crash).
  /// No close handshake — the peer is already gone.
  void handle_peer_stopped(orch::ContainerId peer, CloseReason reason);
  /// NIC health changed on `host`: re-decide every conduit touching it and
  /// splice survivors onto the (possibly different) best transport.
  void handle_health_event(fabric::HostId host);
  [[nodiscard]] bool has_conduit_to(orch::ContainerId peer) const;

  [[nodiscard]] std::size_t conduit_count() const noexcept { return conduits_.size(); }

  /// Introspection: one row per open conduit (ops tooling / examples).
  struct ConnectionInfo {
    std::uint64_t token;  ///< keys telemetry: "conduit/<token>/c<self>/..."
    orch::ContainerId peer;
    tcp::Ipv4Addr peer_ip;
    orch::Transport transport;
    bool initiator;
    std::uint64_t messages_sent;
    std::uint64_t messages_received;
    std::uint64_t rebinds;
    std::uint64_t retransmits;
    SimDuration blackout_ns;  ///< total detached (stale) virtual time
    bool live;            ///< a channel is currently attached
    bool writable;        ///< conduit accepts more traffic right now
    std::size_t retained; ///< sent-but-unacked window depth
    std::size_t queued;   ///< messages waiting for a channel
    bool channel_writable;
    // --- migration introspection (src/migration) ---
    std::uint64_t migrations_completed;  ///< coordinated moves survived
    SimDuration last_blackout_ns;        ///< blackout of the most recent move
    MigrationReason last_migration_reason;
  };
  [[nodiscard]] std::vector<ConnectionInfo> connections() const;

  /// FreeFlow-internal: register with the (current) host agent.
  void register_with_agent();

  // ---- stream adapter hooks (src/stream) --------------------------------
  /// A stream-adapter conduit is owned here like any other (teardown,
  /// telemetry, health routing), but its transport decisions are delegated:
  /// the adapter embraces tcp_overlay as a fallback where open_channel_for
  /// refuses it, and upgrades to per-stream RC QPs out of band.
  struct StreamHooks {
    /// Replaces refit_conduit: re-decide and splice per adapter policy.
    std::function<void(const ConduitPtr&)> refit;
    /// Runs after the conduit leaves conduits_ (close/teardown).
    std::function<void()> teardown;
    /// Planned migration: cancel in-flight upgrade/dial state for this
    /// stream so no half-built RC channel attaches mid-move. The adapter's
    /// credit/handshake position is already inside the conduit's sequenced
    /// history, so it travels with the MigrationImage for free.
    std::function<void()> quiesce;
  };
  void adopt_stream_conduit(const ConduitPtr& conduit, StreamHooks hooks);

  // ---- planned migration hooks (src/migration) --------------------------
  /// Conduit lookup by token (both endpoints share the token).
  [[nodiscard]] ConduitPtr find_conduit(std::uint64_t token) const;
  /// Tells the stream adapter (if this token is adapter-owned) to cancel
  /// in-flight upgrade state ahead of capture. No-op for plain conduits.
  void quiesce_stream_state(std::uint64_t token);
  /// Drives the post-restore rebind of a migrated (or peer-of-migrated)
  /// conduit through the initiator side: stream-adapter conduits go through
  /// the adapter's refit, plain ones through open_channel_for(rebinding).
  void resume_migrated_conduit(const ConduitPtr& conduit);
  /// Reactive-move freeze: detach every conduit (mark_stale only — sends
  /// queue, blackout span opens) so no bytes die in a channel while the
  /// container is stop-and-copied. The moved_ notification rebinds later.
  void freeze_all_conduits();
  /// Peer-side half of the freeze, scoped to conduits toward `peer`.
  void freeze_conduits_to(orch::ContainerId peer);

 private:
  friend class VirtualQp;
  friend class FlowSocket;

  void on_incoming_channel(orch::ContainerId src, agent::ChannelPtr channel);
  void handle_first_message(orch::ContainerId src, agent::Channel* channel,
                            const WireHeader& header);

  /// Resolves, decides, establishes and attaches a channel to `conduit`;
  /// when `rebinding`, the first message on the new channel is a rebind.
  void open_channel_for(ConduitPtr conduit, bool rebinding,
                        std::function<void(Status)> done);

  /// Takes ownership of `conduit` in conduits_ and installs the teardown
  /// hook that drops that reference when the conduit closes.
  void adopt_conduit(const ConduitPtr& conduit);
  /// Re-decides the transport for one (initiator-side) conduit and re-binds
  /// it when the decision differs from what it currently rides.
  void refit_conduit(const ConduitPtr& conduit);
  /// Closes every conduit via a snapshot (close re-enters conduits_).
  void close_all_conduits();

  FreeFlow& ff_;
  orch::ContainerPtr container_;

  std::unordered_map<std::uint32_t, rdma::MrPtr> mrs_;
  std::uint32_t next_mr_ = 1;

  std::map<std::uint16_t, QpAcceptFn> qp_listeners_;
  std::map<std::uint16_t, SockAcceptFn> sock_listeners_;
  std::unordered_map<std::uint64_t, ConduitPtr> conduits_;
  /// Conduits whose transport policy is delegated to the stream adapter,
  /// keyed by conduit token. Entries mirror conduits_ membership.
  std::unordered_map<std::uint64_t, StreamHooks> stream_hooks_;
  /// Incoming channels awaiting their routing (first) message. Owned here —
  /// the channel's own callbacks never keep it alive (no self-cycle).
  std::map<agent::Channel*, agent::ChannelPtr> pending_incoming_;
};

using ContainerNetPtr = std::shared_ptr<ContainerNet>;

}  // namespace freeflow::core
