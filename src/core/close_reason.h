// Why a conduit (and everything stacked on it: sockets, virtual QPs) was
// closed. Surfaced through every close callback so applications can tell an
// orderly shutdown from a fault — the difference between "peer finished"
// and "re-dial somewhere else".
#pragma once

namespace freeflow::core {

enum class CloseReason {
  app_close,         ///< the local application asked for the close
  peer_bye,          ///< the peer sent bye (orderly remote close)
  drain_timeout,     ///< close handshake timed out waiting for bye_ack
  transport_failed,  ///< the backing transport died and no path remained
  host_crashed,      ///< the peer's host crashed (fault injection / ops)
};

[[nodiscard]] constexpr const char* close_reason_name(CloseReason reason) noexcept {
  switch (reason) {
    case CloseReason::app_close: return "app_close";
    case CloseReason::peer_bye: return "peer_bye";
    case CloseReason::drain_timeout: return "drain_timeout";
    case CloseReason::transport_failed: return "transport_failed";
    case CloseReason::host_crashed: return "host_crashed";
  }
  return "unknown";
}

}  // namespace freeflow::core
