#include "core/socket.h"

#include <algorithm>

#include "core/container_net.h"

namespace freeflow::core {

FlowSocket::FlowSocket(ContainerNet& net, ConduitPtr conduit)
    : net_(net), conduit_(std::move(conduit)) {}

void FlowSocket::bind() {
  auto self = weak_from_this();
  conduit_->set_on_message([self](const WireHeader& h, ByteSpan payload) {
    if (auto sock = self.lock()) sock->handle_message(h, payload);
  });
  conduit_->set_on_closed([self](CloseReason reason) {
    auto sock = self.lock();
    if (sock == nullptr) return;
    sock->open_ = false;
    // Move the handler out first: it fires at most once, even if the
    // conduit close races a sock_fin already seen by handle_message.
    auto handler = std::move(sock->on_close_);
    sock->release_callbacks();
    if (handler) handler(reason);
  });
}

void FlowSocket::release_callbacks() noexcept {
  on_data_ = nullptr;
  on_close_ = nullptr;
}

void FlowSocket::set_on_space(VoidFn cb) { conduit_->set_on_space(std::move(cb)); }

Status FlowSocket::send(Buffer data) {
  if (!open_) return failed_precondition("socket closed");
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n = std::min(k_chunk, data.size() - offset);
    WireHeader h;
    h.type = VMsg::sock_data;
    conduit_->send(h, ByteSpan{data.data() + offset, n});
    offset += n;
  }
  bytes_sent_ += data.size();
  return ok_status();
}

void FlowSocket::close() {
  if (!open_) return;
  WireHeader h;
  h.type = VMsg::sock_fin;
  conduit_->send(h);
  open_ = false;
  on_data_ = nullptr;
  // The fin is queued ahead of the conduit's bye, so the peer sees an
  // orderly close before its side of the conduit is torn down. on_close_
  // stays armed: it reports the handshake's outcome (app_close once the
  // peer acks the bye, drain_timeout if it never does).
  conduit_->close();
}

void FlowSocket::handle_message(const WireHeader& h, ByteSpan payload) {
  switch (h.type) {
    case VMsg::sock_data:
      bytes_received_ += payload.size();
      if (on_data_) on_data_(Buffer(payload.data(), payload.size()));
      return;
    case VMsg::sock_fin: {
      open_ = false;
      // Copy: the handler may reset callbacks or drop this socket.
      auto handler = on_close_;
      if (handler) handler(CloseReason::peer_bye);
      release_callbacks();
      return;
    }
    default:
      break;  // handshake leftovers are ignored
  }
}

}  // namespace freeflow::core
