// FreeFlow library wire protocol: the messages the per-container network
// library exchanges over agent channels. One fixed header in front of every
// message multiplexes connection setup (CM-style QP rendezvous, socket
// handshakes, migration rebinds) and data-plane verbs.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace freeflow::core {

enum class VMsg : std::uint8_t {
  cm_connect,    ///< open a verbs QP toward `port` (token identifies conduit)
  cm_accept,
  cm_reject,
  sock_connect,  ///< open a byte-stream socket toward `port`
  sock_accept,
  sock_reject,
  sock_data,     ///< one stream chunk
  sock_fin,
  verbs_send,    ///< two-sided send (needs a posted recv)
  verbs_write,   ///< one-sided write into (mr, offset)
  verbs_read_req,
  verbs_read_resp,
  rebind,        ///< migration: this channel replaces conduit `token`
  mpi_data,      ///< MPI point-to-point payload (tag in `offset`)
  bye,           ///< teardown: the sending side closed conduit `token`
  bye_ack,       ///< close handshake: bye received, drain complete
  ack,           ///< conduit ARQ: cumulative receive ack (highest seq in `id`)
  // ---- stream adapter (src/stream): TSoR-style RC upgrade handshake ----
  rc_offer,      ///< initiator offers a per-stream RC QP (`id` = qp num, `offset` = host)
  rc_answer,     ///< peer's QP is connected and ready (`id` = qp num, `offset` = host)
  rc_switch,     ///< first message on the fresh RC channel: replace the tcp path
  rc_credit,     ///< RC flow control: `id` receive credits returned to the sender
};

struct WireHeader {
  VMsg type = VMsg::cm_connect;
  std::uint16_t port = 0;
  std::uint32_t mr = 0;         ///< target MR id (verbs)
  std::uint32_t len = 0;        ///< payload length that follows
  std::uint64_t id = 0;         ///< wr_id / request id
  std::uint64_t offset = 0;     ///< MR offset (verbs) or MPI tag
  std::uint64_t token = 0;      ///< conduit token (setup/rebind)
  std::uint64_t seq = 0;        ///< conduit ARQ sequence (0 = unsequenced)

  static constexpr std::size_t k_size = 48;

  void encode(std::byte* out) const noexcept;
  static WireHeader decode(const std::byte* in) noexcept;
};

/// One message = header + payload.
Buffer make_message(const WireHeader& header, ByteSpan payload = {});

struct ParsedMessage {
  WireHeader header;
  ByteSpan payload;
};
Result<ParsedMessage> parse_message(ByteSpan message);

}  // namespace freeflow::core
