// Conduit: the library's reliable, transport-agnostic message pipe to one
// peer container. A conduit outlives the agent channel backing it: on
// migration the channel is torn down and a new one (over the newly optimal
// transport) is attached, while outbound messages queue — this is the
// mechanism behind FreeFlow's transparent transport switching.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "agent/channel.h"
#include "core/wire.h"
#include "tcpstack/ip.h"

namespace freeflow::core {

class Conduit : public std::enable_shared_from_this<Conduit> {
 public:
  using MessageFn = std::function<void(const WireHeader&, ByteSpan)>;

  Conduit(std::uint64_t token, orch::ContainerId self, orch::ContainerId peer,
          tcp::Ipv4Addr peer_ip, std::uint16_t service_port, bool initiator)
      : token_(token),
        self_(self),
        peer_(peer),
        peer_ip_(peer_ip),
        service_port_(service_port),
        initiator_(initiator) {}

  /// Sends one protocol message; queued while no channel is attached.
  void send(const WireHeader& header, ByteSpan payload = {});

  void set_on_message(MessageFn cb) { on_message_ = std::move(cb); }
  void set_on_space(std::function<void()> cb) { on_space_ = std::move(cb); }

  /// Attaches (or replaces) the backing channel and drains the queue.
  void attach_channel(agent::ChannelPtr channel);

  /// Migration: detach; sends queue until a new channel is attached.
  void mark_stale();

  /// Permanent teardown (peer stopped, self stopped, app close): tells the
  /// peer (`bye`), drops the channel, unhooks every callback and fires
  /// on_closed exactly once. Idempotent.
  void close();
  /// Teardown initiated by the peer's bye: close() without echoing a bye.
  void close_from_peer();
  [[nodiscard]] bool closed() const noexcept { return closed_; }
  void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }
  /// Owner hook (ContainerNet): fires last during close so the owning map
  /// can drop its reference — the conduit never points back at its owner.
  void set_on_teardown(std::function<void()> cb) { on_teardown_ = std::move(cb); }

  [[nodiscard]] bool live() const noexcept { return channel_ != nullptr; }
  [[nodiscard]] bool writable() const noexcept {
    return channel_ != nullptr && queue_.empty() && channel_->writable();
  }
  [[nodiscard]] orch::Transport transport() const noexcept {
    return channel_ == nullptr ? orch::Transport::tcp_overlay : channel_->transport();
  }

  [[nodiscard]] std::uint64_t token() const noexcept { return token_; }
  [[nodiscard]] orch::ContainerId self() const noexcept { return self_; }
  [[nodiscard]] orch::ContainerId peer() const noexcept { return peer_; }
  [[nodiscard]] tcp::Ipv4Addr peer_ip() const noexcept { return peer_ip_; }
  [[nodiscard]] std::uint16_t service_port() const noexcept { return service_port_; }
  [[nodiscard]] bool initiator() const noexcept { return initiator_; }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t rebinds() const noexcept { return rebinds_; }

 private:
  void drain();
  void do_close(bool notify_peer);

  std::uint64_t token_;
  orch::ContainerId self_;
  orch::ContainerId peer_;
  tcp::Ipv4Addr peer_ip_;
  std::uint16_t service_port_;
  bool initiator_;

  agent::ChannelPtr channel_;
  std::deque<Buffer> queue_;
  MessageFn on_message_;
  std::function<void()> on_space_;
  std::function<void()> on_closed_;
  std::function<void()> on_teardown_;
  bool closed_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t rebinds_ = 0;
};

using ConduitPtr = std::shared_ptr<Conduit>;

}  // namespace freeflow::core
