// Conduit: the library's reliable, transport-agnostic message pipe to one
// peer container. A conduit outlives the agent channel backing it: on
// migration or transport failure the channel is torn down and a new one
// (over the newly optimal transport) is attached, while outbound messages
// queue — this is the mechanism behind FreeFlow's transparent transport
// switching.
//
// Reliability across channel switches is the conduit's job, not the
// channel's: every data message carries a sequence number, the sender
// retains sent-but-unacked messages (on lossy transports), and on re-attach
// the retained window is retransmitted ahead of queued messages. The
// receiver accepts exactly the next expected sequence and drops duplicates,
// so a failover loses nothing and never reorders.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "agent/channel.h"
#include "core/close_reason.h"
#include "core/wire.h"
#include "sim/event_loop.h"
#include "tcpstack/ip.h"
#include "telemetry/telemetry.h"

namespace freeflow::core {

/// Why a conduit last changed hosts (surfaced through ConnectionInfo).
enum class MigrationReason : std::uint8_t {
  none = 0,        ///< never migrated
  planned,         ///< operator-requested coordinated move
  degraded_nic,    ///< proactive: source NIC rate_fraction below threshold
  path_partition,  ///< proactive: inter-host path down, co-locate with peer
  reactive,        ///< unplanned stop-and-copy move (no coordinator)
};

[[nodiscard]] constexpr std::string_view migration_reason_name(
    MigrationReason r) noexcept {
  switch (r) {
    case MigrationReason::none: return "none";
    case MigrationReason::planned: return "planned";
    case MigrationReason::degraded_nic: return "degraded_nic";
    case MigrationReason::path_partition: return "path_partition";
    case MigrationReason::reactive: return "reactive";
  }
  return "?";
}

class Conduit : public std::enable_shared_from_this<Conduit> {
 public:
  using MessageFn = std::function<void(const WireHeader&, ByteSpan)>;
  using ClosedFn = std::function<void(CloseReason)>;

  Conduit(std::uint64_t token, orch::ContainerId self, orch::ContainerId peer,
          tcp::Ipv4Addr peer_ip, std::uint16_t service_port, bool initiator)
      : token_(token),
        self_(self),
        peer_(peer),
        peer_ip_(peer_ip),
        service_port_(service_port),
        initiator_(initiator) {}

  /// Sends one protocol message; queued while no channel is attached.
  void send(const WireHeader& header, ByteSpan payload = {});

  void set_on_message(MessageFn cb) { on_message_ = std::move(cb); }
  void set_on_space(std::function<void()> cb) { on_space_ = std::move(cb); }

  /// Attaches (or replaces) the backing channel, retransmits the unacked
  /// window and drains the queue.
  void attach_channel(agent::ChannelPtr channel);

  /// Migration / failover: detach; sends queue until a new channel attaches.
  void mark_stale();

  // --- Planned live migration (driven by migration::MigrationCoordinator) --

  /// Stops putting new sequences on the wire at a message boundary: sends
  /// queue, drain() is inhibited, writable() deasserts. The receive path —
  /// including ack generation — stays live so the peer's retained window
  /// (and ours, via the peer's acks) can still drain.
  void pause() noexcept { paused_ = true; }
  /// Re-enables transmission; drains whatever queued while paused and fires
  /// on_space if the conduit is writable again.
  void unpause();
  [[nodiscard]] bool paused() const noexcept { return paused_; }

  /// Quiesce for capture: pause(), then wait (sim clock) until the retained
  /// window is fully acked or `deadline` expires. `done(drained)` fires
  /// exactly once. A false result is not fatal — capture simply carries the
  /// undrained tail, which replays at the destination and peers dedup, the
  /// same lossless path as reactive failover.
  void quiesce(SimDuration deadline, std::function<void(bool)> done);

  /// Serializes the portable connection state (sequence counters, ack
  /// bookkeeping, retained window, blackout queue) into a flat record and
  /// WIPES it locally: the conduit detaches (generation-guarded, blackout
  /// span opens) and enters the migrating state, where application sends
  /// park un-sequenced until restore. Call only while paused.
  [[nodiscard]] Buffer capture_for_migration();
  /// Inverse of capture: reloads the record (token must match), leaves the
  /// migrating state and re-sequences any sends parked during the move.
  /// The conduit stays paused and detached; the coordinator rebinds through
  /// the normal generation-guarded path, which replays the retained window.
  [[nodiscard]] Status restore_from_migration(ByteSpan record);
  /// True between capture and restore: connection state is in flight.
  [[nodiscard]] bool migrating() const noexcept { return migrating_; }

  /// Coordinator bookkeeping on completion (both endpoints).
  void note_migration_complete(SimDuration blackout, MigrationReason reason) noexcept {
    ++migrations_completed_;
    last_blackout_ns_ = blackout;
    last_migration_reason_ = reason;
  }
  [[nodiscard]] std::uint64_t migrations_completed() const noexcept {
    return migrations_completed_;
  }
  [[nodiscard]] SimDuration last_blackout_ns() const noexcept {
    return last_blackout_ns_;
  }
  [[nodiscard]] MigrationReason last_migration_reason() const noexcept {
    return last_migration_reason_;
  }

  /// Orderly teardown (app close): sends `bye` and — when a sim clock is
  /// available — waits for the peer's bye_ack up to the drain timeout
  /// before completing. Without a clock (or channel) it completes
  /// synchronously, preserving the fire-and-forget behaviour. Idempotent.
  void close() { close_with(CloseReason::app_close, /*handshake=*/true); }
  /// Teardown with an explicit reason; handshake=false skips the bye-ack
  /// wait (used when the peer is known dead: crash, stop notifications).
  void close_with(CloseReason reason, bool handshake);
  /// Immediate teardown for owner destruction / container stop: completes
  /// even mid-drain (keeping the drain's original reason), best-effort bye.
  void force_close(CloseReason reason);
  [[nodiscard]] bool closed() const noexcept { return closed_; }
  /// True between close() and the bye_ack / drain timeout that completes it.
  [[nodiscard]] bool closing() const noexcept { return closing_; }
  [[nodiscard]] CloseReason close_reason() const noexcept { return close_reason_; }
  void set_on_closed(ClosedFn cb) { on_closed_ = std::move(cb); }
  /// Owner hook (ContainerNet): fires last during close so the owning map
  /// can drop its reference — the conduit never points back at its owner.
  void set_on_teardown(std::function<void()> cb) { on_teardown_ = std::move(cb); }

  /// Failover hook: the attached channel's transport died (lane declared
  /// dead by the agent). The conduit detaches itself first; the observer
  /// (ContainerNet) re-decides and splices on a fallback channel.
  void set_on_transport_failed(std::function<void()> cb) {
    on_transport_failed_ = std::move(cb);
  }

  /// Sim clock used for the close-handshake drain timer (ContainerNet wires
  /// this on adoption; bare conduits stay clockless and close synchronously).
  void set_loop(sim::EventLoop* loop) noexcept { loop_ = loop; }

  /// Wires this conduit's counters/spans into the deployment-wide telemetry
  /// hub (ContainerNet calls this on adoption). Unwired conduits count into
  /// shared discard sinks — the hot path never branches on telemetry.
  void set_telemetry(telemetry::Telemetry* hub);
  void set_drain_timeout(SimDuration timeout_ns) noexcept {
    drain_timeout_ns_ = timeout_ns;
  }

  /// Receiver-side resync for setup messages routed before this conduit
  /// existed (the incoming-channel first-message tap consumes seq 1).
  void sync_rx(std::uint64_t seq) noexcept {
    if (seq >= rx_next_) rx_next_ = seq + 1;
  }

  [[nodiscard]] bool live() const noexcept { return channel_ != nullptr; }
  [[nodiscard]] bool writable() const noexcept {
    return channel_ != nullptr && !paused_ && queue_.empty() &&
           channel_->writable() && retained_.size() < k_max_retained;
  }
  [[nodiscard]] orch::Transport transport() const noexcept {
    return channel_ == nullptr ? orch::Transport::tcp_overlay : channel_->transport();
  }

  [[nodiscard]] std::uint64_t token() const noexcept { return token_; }
  [[nodiscard]] orch::ContainerId self() const noexcept { return self_; }
  [[nodiscard]] orch::ContainerId peer() const noexcept { return peer_; }
  [[nodiscard]] tcp::Ipv4Addr peer_ip() const noexcept { return peer_ip_; }
  [[nodiscard]] std::uint16_t service_port() const noexcept { return service_port_; }
  [[nodiscard]] bool initiator() const noexcept { return initiator_; }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t rebinds() const noexcept { return rebinds_; }
  /// Messages replayed from the retained window across all re-attaches.
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }
  /// Total virtual time spent detached between mark_stale and re-attach.
  [[nodiscard]] SimDuration blackout_ns() const noexcept { return blackout_ns_total_; }
  /// Monotonic detach counter: a slow re-bind whose generation no longer
  /// matches must abandon its freshly built channel (a newer re-bind won).
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  [[nodiscard]] std::size_t retained_count() const noexcept { return retained_.size(); }
  [[nodiscard]] std::size_t queued_count() const noexcept { return queue_.size(); }
  [[nodiscard]] bool channel_writable() const noexcept {
    return channel_ != nullptr && channel_->writable();
  }

  /// Cumulative-ack cadence: one ack per this many received data messages.
  static constexpr std::uint64_t k_ack_every = 16;
  /// Sender-side retention cap; writable() deasserts at the cap.
  static constexpr std::size_t k_max_retained = 256;
  /// Delayed-ack bound: with un-acked receipts (`since_ack_ > 0`) and no
  /// k_ack_every-th message to piggyback on, an ack goes out within this
  /// idle window — so a sender that filled its retained window mid-cadence
  /// always unblocks (see the ack-stall regression test).
  static constexpr SimDuration k_delayed_ack_ns = 100'000;  // 100 us

 private:
  void drain();
  void retransmit_retained();
  void handle_message(Buffer&& message);
  void handle_ack(std::uint64_t acked_upto);
  void handle_bye();
  void handle_bye_ack();
  void handle_channel_failed();
  void maybe_ack();
  void send_ack_now();
  void arm_ack_timer();
  void note_window_filled();
  void send_control(VMsg type, std::uint64_t ack_upto = 0);
  void finish_close(CloseReason reason, bool notify_peer);
  void finish_quiesce(bool drained);
  [[nodiscard]] bool should_retain() const noexcept {
    return channel_ != nullptr && channel_->transport() != orch::Transport::shm;
  }

  std::uint64_t token_;
  orch::ContainerId self_;
  orch::ContainerId peer_;
  tcp::Ipv4Addr peer_ip_;
  std::uint16_t service_port_;
  bool initiator_;

  agent::ChannelPtr channel_;
  std::deque<Buffer> queue_;
  /// Sent on a lossy channel, not yet cumulatively acked: (seq, message).
  std::deque<std::pair<std::uint64_t, Buffer>> retained_;
  MessageFn on_message_;
  std::function<void()> on_space_;
  ClosedFn on_closed_;
  std::function<void()> on_teardown_;
  std::function<void()> on_transport_failed_;

  sim::EventLoop* loop_ = nullptr;
  SimDuration drain_timeout_ns_ = 5'000'000;  // 5 ms default
  sim::EventHandle drain_timer_;
  sim::EventHandle ack_timer_;
  /// A failover retransmit delivered only duplicates: the piggyback ack
  /// cadence won't fire (rx_next_ unchanged), but the sender is waiting on
  /// an ack for exactly those sequences — resync via the delayed-ack timer.
  bool resync_ack_ = false;

  bool closed_ = false;
  bool closing_ = false;
  CloseReason pending_reason_ = CloseReason::app_close;
  CloseReason close_reason_ = CloseReason::app_close;

  std::uint64_t tx_seq_ = 0;   ///< last assigned outbound sequence
  std::uint64_t rx_next_ = 1;  ///< next expected inbound sequence
  std::uint64_t since_ack_ = 0;

  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t rebinds_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t generation_ = 0;

  // --- telemetry (discard sinks until set_telemetry wires real ones) ---
  telemetry::Telemetry* hub_ = nullptr;  // tracer + gauges; null = no tracing
  telemetry::Counter* ctr_sent_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_received_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_acks_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_delayed_acks_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_retransmits_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_rebinds_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_window_full_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_blackout_ns_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_blocked_ns_ = telemetry::Counter::discard();
  telemetry::Gauge* gauge_retained_ = telemetry::Gauge::discard();
  /// Transport in use before the current/last failover — a re-attach onto a
  /// strictly better transport is the "re-upgrade" trace marker.
  orch::Transport pre_failover_transport_ = orch::Transport::tcp_overlay;
  SimTime blackout_started_ = 0;
  bool in_blackout_ = false;
  /// True while attach_channel replays the retained window and drains the
  /// blackout queue: writable notifications are deferred until the splice
  /// completes so no new sequence can interleave with the replay on the wire.
  bool splicing_ = false;
  SimTime window_full_since_ = 0;
  SimDuration blackout_ns_total_ = 0;

  // --- planned-migration state ---
  /// Transmit-side freeze: sends queue, drain() inhibited, writable() false.
  bool paused_ = false;
  /// Between capture and restore: connection state travels with the
  /// container; app sends park un-sequenced in pending_sends_.
  bool migrating_ = false;
  /// (header, payload) pairs sent while migrating — sequenced on restore so
  /// the transferred tx_seq_ stays authoritative.
  std::deque<std::pair<WireHeader, Buffer>> pending_sends_;
  std::function<void(bool)> quiesce_done_;
  sim::EventHandle quiesce_timer_;
  std::uint64_t migrations_completed_ = 0;
  SimDuration last_blackout_ns_ = 0;
  MigrationReason last_migration_reason_ = MigrationReason::none;
};

using ConduitPtr = std::shared_ptr<Conduit>;

}  // namespace freeflow::core
