#include "core/container_net.h"

#include "common/logging.h"
#include "core/freeflow.h"

namespace freeflow::core {

ContainerNet::ContainerNet(FreeFlow& ff, orch::ContainerPtr container)
    : ff_(ff), container_(std::move(container)) {}

ContainerNet::~ContainerNet() {
  close_all_conduits();
  for (auto& [raw, channel] : pending_incoming_) channel->close();
  pending_incoming_.clear();
}

void ContainerNet::adopt_conduit(const ConduitPtr& conduit) {
  conduits_.emplace(conduit->token(), conduit);
  auto self = weak_from_this();
  conduit->set_on_teardown([self, token = conduit->token()]() {
    if (auto net = self.lock()) net->conduits_.erase(token);
  });
  conduit->set_loop(&loop());
  conduit->set_drain_timeout(current_host().cost_model().close_drain_timeout_ns);
  conduit->set_telemetry(&ff_.orchestrator().cluster_orch().cluster().telemetry());
  // Transport failure (lane declared dead by the agent): the initiator
  // re-decides and splices on a fallback channel; the passive side waits
  // for the initiator's rebind to arrive over the new transport.
  conduit->set_on_transport_failed([self, weak_conduit = ConduitPtr::weak_type(conduit)]() {
    auto net = self.lock();
    auto c = weak_conduit.lock();
    if (net == nullptr || c == nullptr) return;
    // Drop cached decisions for this pair before re-deciding: the hook runs
    // before the agent's lane-failure report reaches the control plane, so
    // the push-flush hasn't landed yet. The reverse index makes this
    // O(affected entries), not a cache sweep.
    auto& selector = net->ff_.selector_on(net->container_->host());
    selector.invalidate(net->id());
    selector.invalidate(c->peer());
    if (c->initiator()) net->refit_conduit(c);
  });
}

void ContainerNet::adopt_stream_conduit(const ConduitPtr& conduit, StreamHooks hooks) {
  adopt_conduit(conduit);
  stream_hooks_.emplace(conduit->token(), std::move(hooks));
  // Replace the plain teardown hook: also release the adapter's state.
  auto self = weak_from_this();
  conduit->set_on_teardown([self, token = conduit->token()]() {
    auto net = self.lock();
    if (net == nullptr) return;
    net->conduits_.erase(token);
    auto it = net->stream_hooks_.find(token);
    if (it == net->stream_hooks_.end()) return;
    // Extract first: the adapter's teardown may re-enter conduit maps.
    auto stream_hooks = std::move(it->second);
    net->stream_hooks_.erase(it);
    if (stream_hooks.teardown) stream_hooks.teardown();
  });
}

void ContainerNet::close_all_conduits() {
  std::vector<ConduitPtr> snapshot;
  snapshot.reserve(conduits_.size());
  for (auto& [token, conduit] : conduits_) snapshot.push_back(conduit);
  // Hard close, not the bye-ack handshake: this runs from the destructor and
  // container stop, where nothing will pump the drain to completion — a
  // conduit parked in `closing_` would strand its channel graph forever.
  for (auto& conduit : snapshot) conduit->force_close(CloseReason::app_close);
  conduits_.clear();
}

fabric::Host& ContainerNet::current_host() {
  return ff_.orchestrator().cluster_orch().cluster().host(container_->host());
}

sim::EventLoop& ContainerNet::loop() { return ff_.loop(); }

void ContainerNet::charge_post() {
  fabric::Host& host = current_host();
  host.cpu().submit(host.cost_model().rdma_post_ns, nullptr, &container_->account());
}

void ContainerNet::register_with_agent() {
  auto self = weak_from_this();
  ff_.agents().agent_on(container_->host())
      .register_container(id(), [self](orch::ContainerId src, agent::ChannelPtr ch) {
        if (auto net = self.lock()) net->on_incoming_channel(src, std::move(ch));
      });
}

// ---------------------------------------------------------------- verbs API

rdma::MrPtr ContainerNet::reg_mr(std::size_t length) {
  const std::uint32_t mr_id = next_mr_++;
  auto mr = std::make_shared<rdma::MemoryRegion>(mr_id, mr_id, length);
  mrs_.emplace(mr_id, mr);
  return mr;
}

rdma::MrPtr ContainerNet::mr(std::uint32_t mr_id) const {
  auto it = mrs_.find(mr_id);
  return it == mrs_.end() ? nullptr : it->second;
}

rdma::CqPtr ContainerNet::create_cq(std::size_t capacity) {
  return std::make_shared<rdma::CompletionQueue>(capacity);
}

Status ContainerNet::listen_qp(std::uint16_t port, QpAcceptFn on_accept) {
  auto [it, inserted] = qp_listeners_.emplace(port, std::move(on_accept));
  (void)it;
  if (!inserted) return already_exists("QP service port in use");
  return ok_status();
}

Status ContainerNet::sock_listen(std::uint16_t port, SockAcceptFn on_accept) {
  auto [it, inserted] = sock_listeners_.emplace(port, std::move(on_accept));
  (void)it;
  if (!inserted) return already_exists("socket port in use");
  return ok_status();
}

// ---------------------------------------------------------- channel opening

void ContainerNet::open_channel_for(ConduitPtr conduit, bool rebinding,
                                    std::function<void(Status)> done) {
  // Concurrent re-binds race (health flaps faster than channel setup): the
  // conduit's generation stamps this attempt, and a stale winner abandons
  // its freshly built channel instead of overriding a newer decision.
  const std::uint64_t gen = conduit->generation();
  ff_.selector_on(container_->host())
      .decide(id(), conduit->peer(),
              [this, conduit, rebinding, gen,
               done = std::move(done)](Result<orch::TransportDecision> d) mutable {
    if (!d.is_ok()) {
      done(d.status());
      return;
    }
    if (d->transport == orch::Transport::tcp_overlay) {
      // No trust: FreeFlow refuses to pierce isolation; such pairs use the
      // plain overlay network instead of the library's fast channels.
      done(permission_denied("peers do not trust each other; use overlay TCP"));
      return;
    }
    ff_.agents().agent_on(container_->host())
        .establish(id(), conduit->peer(), d->transport,
                   [conduit, rebinding, gen,
                    done = std::move(done)](Result<agent::ChannelPtr> ch) mutable {
      if (!ch.is_ok()) {
        done(ch.status());
        return;
      }
      if (conduit->closed() || (rebinding && conduit->generation() != gen)) {
        (*ch)->close();
        done(aborted("conduit re-bound again before channel setup finished"));
        return;
      }
      if (rebinding) {
        WireHeader h;
        h.type = VMsg::rebind;
        h.token = conduit->token();
        // The rebind must be the first message on the fresh channel.
        (*ch)->send(make_message(h));
      }
      conduit->attach_channel(std::move(ch.value()));
      done(ok_status());
    });
  });
}

void ContainerNet::connect_qp(tcp::Ipv4Addr peer_ip, std::uint16_t port,
                              rdma::CqPtr send_cq, rdma::CqPtr recv_cq,
                              QpConnectFn done) {
  auto peer = ff_.orchestrator().resolve_ip(peer_ip);
  if (!peer.is_ok()) {
    loop().schedule(0, [done = std::move(done), s = peer.status()]() { done(s); });
    return;
  }
  auto conduit = std::make_shared<Conduit>(ff_.next_token(), id(), *peer, peer_ip,
                                           port, /*initiator=*/true);
  // Owned by conduits_ from the start; the handshake handler below may
  // capture the conduit freely — close() unhooks it, so no cycle survives.
  adopt_conduit(conduit);
  open_channel_for(conduit, /*rebinding=*/false,
                   [this, conduit, port, send_cq, recv_cq,
                    done = std::move(done)](Status st) mutable {
    if (!st.is_ok()) {
      conduit->close();
      done(st);
      return;
    }
    // Await cm_accept / cm_reject.
    conduit->set_on_message([this, conduit, send_cq, recv_cq,
                             done = std::move(done)](const WireHeader& h, ByteSpan) mutable {
      if (h.type == VMsg::cm_accept) {
        auto qp = std::make_shared<VirtualQp>(*this, conduit, send_cq, recv_cq);
        qp->bind();
        done(qp);
      } else {
        conduit->close();
        done(connection_refused("peer rejected QP on port"));
      }
    });
    WireHeader h;
    h.type = VMsg::cm_connect;
    h.port = port;
    h.token = conduit->token();
    conduit->send(h);
  });
}

void ContainerNet::sock_connect(tcp::Ipv4Addr peer_ip, std::uint16_t port,
                                SockConnectFn done) {
  auto peer = ff_.orchestrator().resolve_ip(peer_ip);
  if (!peer.is_ok()) {
    loop().schedule(0, [done = std::move(done), s = peer.status()]() { done(s); });
    return;
  }
  auto conduit = std::make_shared<Conduit>(ff_.next_token(), id(), *peer, peer_ip,
                                           port, /*initiator=*/true);
  adopt_conduit(conduit);
  open_channel_for(conduit, /*rebinding=*/false,
                   [this, conduit, port, done = std::move(done)](Status st) mutable {
    if (!st.is_ok()) {
      conduit->close();
      done(st);
      return;
    }
    conduit->set_on_message([this, conduit,
                             done = std::move(done)](const WireHeader& h, ByteSpan) mutable {
      if (h.type == VMsg::sock_accept) {
        auto sock = std::make_shared<FlowSocket>(*this, conduit);
        sock->bind();
        done(sock);
      } else {
        conduit->close();
        done(connection_refused("peer rejected socket on port"));
      }
    });
    WireHeader h;
    h.type = VMsg::sock_connect;
    h.port = port;
    h.token = conduit->token();
    conduit->send(h);
  });
}

// ---------------------------------------------------------- incoming side

void ContainerNet::on_incoming_channel(orch::ContainerId src, agent::ChannelPtr channel) {
  // Tap the first message to route the channel (setup vs rebind). The tap
  // captures only a raw key — pending_incoming_ owns the channel, so the
  // callback never keeps its own channel alive (no self-cycle).
  auto self = weak_from_this();
  auto raw = channel.get();
  pending_incoming_.emplace(raw, std::move(channel));
  raw->set_on_message([self, src, raw](Buffer&& message) {
    auto net = self.lock();
    if (net == nullptr) return;
    auto parsed = parse_message(message.view());
    if (!parsed.is_ok()) {
      FF_LOG(warn, "core") << "bad first message on incoming channel";
      return;
    }
    net->handle_first_message(src, raw, parsed->header);
  });
}

void ContainerNet::handle_first_message(orch::ContainerId src, agent::Channel* raw,
                                        const WireHeader& header) {
  auto pit = pending_incoming_.find(raw);
  if (pit == pending_incoming_.end()) return;  // already routed or torn down
  agent::ChannelPtr channel = std::move(pit->second);
  pending_incoming_.erase(pit);
  switch (header.type) {
    case VMsg::cm_connect: {
      auto lit = qp_listeners_.find(header.port);
      WireHeader reply;
      reply.token = header.token;
      if (lit == qp_listeners_.end()) {
        reply.type = VMsg::cm_reject;
        channel->send(make_message(reply));
        channel->close();  // the reply is already in the lane; unhook and drop
        return;
      }
      auto c = ff_.orchestrator().cluster_orch().container(src);
      auto conduit = std::make_shared<Conduit>(
          header.token, id(), src, c ? c->ip() : tcp::Ipv4Addr{}, header.port,
          /*initiator=*/false);
      // The routing tap consumed the peer's first sequenced message.
      conduit->sync_rx(header.seq);
      conduit->attach_channel(std::move(channel));
      auto qp = std::make_shared<VirtualQp>(*this, conduit, create_cq(), create_cq());
      qp->bind();
      adopt_conduit(conduit);
      reply.type = VMsg::cm_accept;
      conduit->send(reply);
      lit->second(qp);
      return;
    }
    case VMsg::sock_connect: {
      auto lit = sock_listeners_.find(header.port);
      WireHeader reply;
      reply.token = header.token;
      if (lit == sock_listeners_.end()) {
        reply.type = VMsg::sock_reject;
        channel->send(make_message(reply));
        channel->close();
        return;
      }
      auto c = ff_.orchestrator().cluster_orch().container(src);
      auto conduit = std::make_shared<Conduit>(
          header.token, id(), src, c ? c->ip() : tcp::Ipv4Addr{}, header.port,
          /*initiator=*/false);
      conduit->sync_rx(header.seq);
      conduit->attach_channel(std::move(channel));
      auto sock = std::make_shared<FlowSocket>(*this, conduit);
      sock->bind();
      adopt_conduit(conduit);
      reply.type = VMsg::sock_accept;
      conduit->send(reply);
      lit->second(sock);
      return;
    }
    case VMsg::rebind: {
      auto it = conduits_.find(header.token);
      if (it == conduits_.end()) {
        FF_LOG(warn, "core") << "rebind for unknown conduit " << header.token;
        channel->close();
        return;
      }
      it->second->attach_channel(std::move(channel));
      return;
    }
    case VMsg::bye: {
      // Peer opened a channel and tore it down before it was routed.
      // Acknowledge so the peer's close handshake drains immediately.
      WireHeader reply;
      reply.type = VMsg::bye_ack;
      reply.token = header.token;
      channel->send(make_message(reply));
      channel->close();
      return;
    }
    default:
      FF_LOG(warn, "core") << "unexpected first message type "
                           << static_cast<int>(header.type);
      channel->close();
  }
}

// -------------------------------------------------------------- migration

void ContainerNet::handle_self_stopped() {
  ff_.agents().agent_on(container_->host()).unregister_container(id());
  close_all_conduits();
  for (auto& [raw, channel] : pending_incoming_) channel->close();
  pending_incoming_.clear();
}

void ContainerNet::handle_peer_stopped(orch::ContainerId peer, CloseReason reason) {
  // Snapshot: close() fires the teardown hook, which erases from conduits_.
  std::vector<ConduitPtr> victims;
  for (auto& [token, conduit] : conduits_) {
    if (conduit->peer() == peer) victims.push_back(conduit);
  }
  // No handshake: the peer is gone; waiting for its bye_ack would only
  // stall teardown until the drain timeout and mislabel the reason.
  for (auto& conduit : victims) conduit->close_with(reason, /*handshake=*/false);
}

void ContainerNet::handle_health_event(fabric::HostId host) {
  std::vector<ConduitPtr> snapshot;
  snapshot.reserve(conduits_.size());
  for (auto& [token, conduit] : conduits_) snapshot.push_back(conduit);
  for (auto& conduit : snapshot) {
    if (conduit->closed() || conduit->closing()) continue;
    // Paused/migrating conduits belong to the migration coordinator: a
    // health-driven refit here would race its capture/restore protocol.
    if (conduit->paused() || conduit->migrating()) continue;
    auto peer_loc = ff_.orchestrator().locate(conduit->peer());
    if (!peer_loc.is_ok()) continue;
    const bool touches =
        peer_loc->host == host || container_->host() == host;
    if (!touches) continue;
    // No invalidate here: the control plane's health-diff flush already
    // dropped exactly the affected entries (and only those — a co-located
    // shm pair rides out its host's RDMA death) before this callback ran.
    // Only the initiator re-dials; the passive side splices on the rebind.
    if (conduit->initiator()) refit_conduit(conduit);
  }
}

void ContainerNet::refit_conduit(const ConduitPtr& conduit) {
  if (conduit->paused() || conduit->migrating()) return;  // coordinator owns it
  // Stream-adapter conduits pick their own transports (they fall back to
  // overlay TCP where open_channel_for refuses, and upgrade to per-stream
  // RC QPs): health events and lane failures route to the adapter instead.
  if (auto it = stream_hooks_.find(conduit->token()); it != stream_hooks_.end()) {
    if (it->second.refit) it->second.refit(conduit);
    return;
  }
  auto self = weak_from_this();
  ff_.selector_on(container_->host()).decide(id(), conduit->peer(),
                        [self, conduit](Result<orch::TransportDecision> d) {
    auto net = self.lock();
    if (net == nullptr || !d.is_ok()) return;
    if (conduit->closed() || conduit->closing()) return;
    if (conduit->live() && conduit->transport() == d->transport) return;
    conduit->mark_stale();
    net->open_channel_for(conduit, /*rebinding=*/true, [](Status st) {
      if (!st.is_ok()) {
        // Leave the conduit stale rather than killing it: sends queue, and
        // the next health event (e.g. link recovery) retries the splice.
        FF_LOG(warn, "core") << "failover re-bind failed (will retry on next "
                                "health event): " << st;
      }
    });
  });
}

std::vector<ContainerNet::ConnectionInfo> ContainerNet::connections() const {
  std::vector<ConnectionInfo> out;
  out.reserve(conduits_.size());
  for (const auto& [token, c] : conduits_) {
    if (c->closed()) continue;
    out.push_back(ConnectionInfo{c->token(), c->peer(), c->peer_ip(), c->transport(),
                                 c->initiator(), c->messages_sent(),
                                 c->messages_received(), c->rebinds(),
                                 c->retransmits(), c->blackout_ns(),
                                 c->live(), c->writable(), c->retained_count(),
                                 c->queued_count(), c->channel_writable(),
                                 c->migrations_completed(), c->last_blackout_ns(),
                                 c->last_migration_reason()});
  }
  return out;
}

bool ContainerNet::has_conduit_to(orch::ContainerId peer) const {
  for (const auto& [token, c] : conduits_) {
    if (c->peer() == peer) return true;
  }
  return false;
}

void ContainerNet::handle_self_moved() {
  register_with_agent();
  for (auto& [token, conduit] : conduits_) {
    conduit->mark_stale();
    if (!conduit->initiator()) continue;
    if (auto it = stream_hooks_.find(token); it != stream_hooks_.end()) {
      if (it->second.refit) it->second.refit(conduit);
      continue;
    }
    open_channel_for(conduit, /*rebinding=*/true, [](Status st) {
      if (!st.is_ok()) {
        FF_LOG(warn, "core") << "re-bind after self-move failed: " << st;
      }
    });
  }
}

// ------------------------------------------------- planned migration hooks

ConduitPtr ContainerNet::find_conduit(std::uint64_t token) const {
  auto it = conduits_.find(token);
  return it == conduits_.end() ? nullptr : it->second;
}

void ContainerNet::quiesce_stream_state(std::uint64_t token) {
  if (auto it = stream_hooks_.find(token); it != stream_hooks_.end()) {
    if (it->second.quiesce) it->second.quiesce();
  }
}

void ContainerNet::resume_migrated_conduit(const ConduitPtr& conduit) {
  if (conduit->closed() || conduit->closing()) return;
  if (auto it = stream_hooks_.find(conduit->token()); it != stream_hooks_.end()) {
    if (it->second.refit) it->second.refit(conduit);
    return;
  }
  open_channel_for(conduit, /*rebinding=*/true, [](Status st) {
    if (!st.is_ok()) {
      FF_LOG(warn, "core") << "re-bind after planned migration failed: " << st;
    }
  });
}

void ContainerNet::freeze_all_conduits() {
  for (auto& [token, conduit] : conduits_) {
    if (conduit->closed() || conduit->closing() || conduit->migrating()) continue;
    conduit->mark_stale();
  }
}

void ContainerNet::freeze_conduits_to(orch::ContainerId peer) {
  for (auto& [token, conduit] : conduits_) {
    if (conduit->peer() != peer) continue;
    if (conduit->closed() || conduit->closing() || conduit->migrating()) continue;
    conduit->mark_stale();
  }
}

void ContainerNet::handle_peer_moved(orch::ContainerId peer) {
  for (auto& [token, conduit] : conduits_) {
    if (conduit->peer() != peer) continue;
    conduit->mark_stale();
    if (!conduit->initiator()) continue;
    if (auto it = stream_hooks_.find(token); it != stream_hooks_.end()) {
      if (it->second.refit) it->second.refit(conduit);
      continue;
    }
    open_channel_for(conduit, /*rebinding=*/true, [](Status st) {
      if (!st.is_ok()) {
        FF_LOG(warn, "core") << "re-bind after peer-move failed: " << st;
      }
    });
  }
}

}  // namespace freeflow::core
