// FreeFlow's socket API: a reliable byte stream with the familiar
// listen/connect/send shapes, translated by the library onto the verbs-like
// message conduit (rsocket-style). Applications using sockets get the
// orchestrator-chosen data plane without a line of code changing.
#pragma once

#include <memory>

#include "core/conduit.h"

namespace freeflow::core {

class ContainerNet;

class FlowSocket : public std::enable_shared_from_this<FlowSocket> {
 public:
  using DataFn = std::function<void(Buffer&&)>;
  using VoidFn = std::function<void()>;
  using CloseFn = std::function<void(CloseReason)>;

  FlowSocket(ContainerNet& net, ConduitPtr conduit);

  FlowSocket(const FlowSocket&) = delete;
  FlowSocket& operator=(const FlowSocket&) = delete;

  /// Sends stream bytes (chunked into conduit messages). Never blocks;
  /// pace on writable()/on_space for bounded memory.
  Status send(Buffer data);

  [[nodiscard]] bool writable() const noexcept { return open_ && conduit_->writable(); }

  void set_on_data(DataFn cb) { on_data_ = std::move(cb); }
  void set_on_space(VoidFn cb);
  /// Fires once when the stream closes from anywhere but local close():
  /// orderly fin (peer_bye), fault teardown (transport_failed /
  /// host_crashed), or a close handshake that timed out (drain_timeout).
  void set_on_close(CloseFn cb) { on_close_ = std::move(cb); }

  void close();

  [[nodiscard]] bool is_open() const noexcept { return open_; }
  [[nodiscard]] orch::Transport transport() const noexcept { return conduit_->transport(); }
  [[nodiscard]] ConduitPtr conduit() const noexcept { return conduit_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_received_; }

  // --- migration introspection (delegates to the conduit) ---
  /// Coordinated container moves this stream survived.
  [[nodiscard]] std::uint64_t migrations_completed() const noexcept {
    return conduit_->migrations_completed();
  }
  /// Blackout (detached virtual time) of the most recent move.
  [[nodiscard]] SimDuration last_blackout_ns() const noexcept {
    return conduit_->last_blackout_ns();
  }
  [[nodiscard]] MigrationReason last_migration_reason() const noexcept {
    return conduit_->last_migration_reason();
  }

  /// ContainerNet-internal: wires conduit messages to this socket.
  void bind();

  /// Stream chunk size (matches the kernel stack's GSO unit for fairness).
  static constexpr std::size_t k_chunk = 64 * 1024;

 private:
  void handle_message(const WireHeader& header, ByteSpan payload);
  /// Once closed, the stored callbacks are dead weight — and worse, an
  /// application closure that captures its own stream adapter would cycle
  /// back to this socket through on_data_. Dropping them on every close
  /// path keeps socket ownership a DAG.
  void release_callbacks() noexcept;

  ContainerNet& net_;
  ConduitPtr conduit_;
  bool open_ = true;
  DataFn on_data_;
  CloseFn on_close_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

using FlowSocketPtr = std::shared_ptr<FlowSocket>;

}  // namespace freeflow::core
