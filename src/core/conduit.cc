#include "core/conduit.h"

#include "common/logging.h"

namespace freeflow::core {

void Conduit::send(const WireHeader& header, ByteSpan payload) {
  if (closed_) return;  // teardown races with in-flight application sends
  Buffer message = make_message(header, payload);
  if (channel_ == nullptr) {
    queue_.push_back(std::move(message));
    return;
  }
  ++sent_;
  const Status s = channel_->send(std::move(message));
  if (!s.is_ok()) {
    FF_LOG(warn, "core") << "conduit send failed: " << s;
  }
}

void Conduit::attach_channel(agent::ChannelPtr channel) {
  FF_CHECK(!closed_);
  if (channel_ != nullptr) {
    channel_->close();
  }
  channel_ = std::move(channel);
  auto self = weak_from_this();
  channel_->set_on_message([self](Buffer&& message) {
    auto conduit = self.lock();
    if (conduit == nullptr) return;
    auto parsed = parse_message(message.view());
    if (!parsed.is_ok()) {
      FF_LOG(warn, "core") << "conduit got malformed message: " << parsed.status();
      return;
    }
    if (parsed->header.type == VMsg::bye) {
      conduit->close_from_peer();
      return;
    }
    ++conduit->received_;
    if (conduit->on_message_) {
      // Copy: handlers swap themselves during handshakes (cm_accept installs
      // the QP/socket data handler from inside the setup handler).
      auto handler = conduit->on_message_;
      handler(parsed->header, parsed->payload);
    }
  });
  channel_->set_on_space([self]() {
    if (auto conduit = self.lock(); conduit && conduit->on_space_) conduit->on_space_();
  });
  drain();
}

void Conduit::close() { do_close(/*notify_peer=*/true); }

void Conduit::close_from_peer() { do_close(/*notify_peer=*/false); }

void Conduit::do_close(bool notify_peer) {
  if (closed_) return;
  closed_ = true;
  queue_.clear();
  if (channel_ != nullptr) {
    if (notify_peer) {
      // The bye rides the lane behind any data already queued, so the peer
      // drains in order and then tears down its side. Not counted in sent_:
      // it is protocol overhead, not application traffic.
      WireHeader h;
      h.type = VMsg::bye;
      h.token = token_;
      channel_->send(make_message(h));
    }
    channel_->close();
    channel_ = nullptr;
  }
  // Unhook everything the application registered: callbacks must not keep
  // peers (or this conduit's captures) alive past close.
  on_message_ = nullptr;
  on_space_ = nullptr;
  auto closed_cb = std::move(on_closed_);
  on_closed_ = nullptr;
  if (closed_cb) closed_cb();
  auto teardown = std::move(on_teardown_);
  on_teardown_ = nullptr;
  if (teardown) teardown();
}

void Conduit::mark_stale() {
  if (channel_ != nullptr) {
    channel_->close();
    ++rebinds_;
  }
  channel_ = nullptr;
}

void Conduit::drain() {
  while (!queue_.empty() && channel_ != nullptr) {
    ++sent_;
    const Status s = channel_->send(std::move(queue_.front()));
    queue_.pop_front();
    if (!s.is_ok()) {
      FF_LOG(warn, "core") << "conduit drain failed: " << s;
    }
  }
}

}  // namespace freeflow::core
