#include "core/conduit.h"

#include "common/logging.h"

namespace freeflow::core {

void Conduit::send(const WireHeader& header, ByteSpan payload) {
  if (closed_ || closing_) return;  // teardown races with in-flight sends
  WireHeader h = header;
  h.seq = ++tx_seq_;
  Buffer message = make_message(h, payload);
  if (channel_ == nullptr) {
    queue_.push_back(std::move(message));
    return;
  }
  ++sent_;
  if (should_retain()) {
    retained_.emplace_back(h.seq, Buffer(message.data(), message.size()));
  }
  const Status s = channel_->send(std::move(message));
  if (!s.is_ok()) {
    FF_LOG(warn, "core") << "conduit send failed: " << s;
  }
}

void Conduit::send_control(VMsg type, std::uint64_t ack_upto) {
  // Control messages (ack / bye / bye_ack) are unsequenced (seq 0), skip
  // retention and are not counted in sent_ — protocol overhead, not traffic.
  if (channel_ == nullptr) return;
  WireHeader h;
  h.type = type;
  h.token = token_;
  h.id = ack_upto;
  channel_->send(make_message(h));
}

void Conduit::attach_channel(agent::ChannelPtr channel) {
  FF_CHECK(!closed_);
  if (channel_ != nullptr) {
    channel_->close();
  }
  channel_ = std::move(channel);
  auto self = weak_from_this();
  channel_->set_on_message([self](Buffer&& message) {
    if (auto conduit = self.lock()) conduit->handle_message(std::move(message));
  });
  channel_->set_on_space([self]() {
    if (auto conduit = self.lock(); conduit && conduit->on_space_) conduit->on_space_();
  });
  channel_->set_on_failed([self]() {
    if (auto conduit = self.lock()) conduit->handle_channel_failed();
  });
  retransmit_retained();
  drain();
  if (closing_) {
    // Close handshake started while stale: re-issue the bye on the new path
    // so the peer's bye_ack can still beat the drain timer.
    send_control(VMsg::bye);
  }
}

void Conduit::handle_message(Buffer&& message) {
  auto parsed = parse_message(message.view());
  if (!parsed.is_ok()) {
    FF_LOG(warn, "core") << "conduit got malformed message: " << parsed.status();
    return;
  }
  const WireHeader& h = parsed->header;
  switch (h.type) {
    case VMsg::ack:
      handle_ack(h.id);
      return;
    case VMsg::bye:
      handle_bye();
      return;
    case VMsg::bye_ack:
      handle_bye_ack();
      return;
    default:
      break;
  }
  if (h.seq != 0) {
    if (h.seq < rx_next_) return;  // duplicate from a failover retransmit
    if (h.seq > rx_next_) {
      // Cumulative acks make this impossible in-protocol; a gap means the
      // channel below reordered, which the transports never do.
      FF_LOG(warn, "core") << "conduit " << token_ << " seq gap: got " << h.seq
                           << " expected " << rx_next_;
      return;
    }
    ++rx_next_;
    maybe_ack();
  }
  ++received_;
  if (on_message_) {
    // Copy: handlers swap themselves during handshakes (cm_accept installs
    // the QP/socket data handler from inside the setup handler).
    auto handler = on_message_;
    handler(parsed->header, parsed->payload);
  }
}

void Conduit::maybe_ack() {
  if (!should_retain()) return;  // shm is lossless: peer retains nothing
  if (++since_ack_ < k_ack_every) return;
  since_ack_ = 0;
  send_control(VMsg::ack, rx_next_ - 1);
}

void Conduit::handle_ack(std::uint64_t acked_upto) {
  const bool was_full = retained_.size() >= k_max_retained;
  while (!retained_.empty() && retained_.front().first <= acked_upto) {
    retained_.pop_front();
  }
  if (was_full && retained_.size() < k_max_retained && on_space_) on_space_();
}

void Conduit::handle_bye() {
  // Peer-initiated close (or the peer's half of a simultaneous close):
  // acknowledge so the peer's drain completes, then tear down this side.
  send_control(VMsg::bye_ack);
  finish_close(closing_ ? pending_reason_ : CloseReason::peer_bye,
               /*notify_peer=*/false);
}

void Conduit::handle_bye_ack() {
  if (closing_) finish_close(pending_reason_, /*notify_peer=*/false);
}

void Conduit::handle_channel_failed() {
  if (closed_) return;
  if (closing_) {
    // The path carrying our bye died; the ack can never come.
    finish_close(CloseReason::transport_failed, /*notify_peer=*/false);
    return;
  }
  mark_stale();
  // Copy: the observer re-binds, which may re-enter this conduit.
  auto cb = on_transport_failed_;
  if (cb) cb();
}

void Conduit::force_close(CloseReason reason) {
  if (closed_) return;
  // Hard teardown (net destructor / container stop): finish immediately with
  // a best-effort bye. A drain already in flight keeps its original reason —
  // the app asked first; the handshake just didn't get to complete.
  finish_close(closing_ ? pending_reason_ : reason,
               /*notify_peer=*/channel_ != nullptr);
}

void Conduit::close_with(CloseReason reason, bool handshake) {
  if (closed_) return;
  if (closing_) {
    // A no-handshake close overtaking an in-flight drain (peer died): the
    // ack can never come, so finish now instead of waiting out the timer.
    if (!handshake) finish_close(pending_reason_, /*notify_peer=*/false);
    return;
  }
  if (!handshake || channel_ == nullptr || loop_ == nullptr) {
    // Fire-and-forget close: the legacy behaviour, and the only option for
    // clockless conduits or known-dead peers. Still sends a best-effort bye.
    finish_close(reason, /*notify_peer=*/handshake && channel_ != nullptr);
    return;
  }
  closing_ = true;
  pending_reason_ = reason;
  // The app-facing hooks go now, not at finish_close: connect handshakes
  // park a self-capturing lambda in on_message_, and a loop that stops
  // mid-drain would strand that cycle forever. Nothing app-visible may
  // fire during the drain anyway — bye/bye_ack dispatch internally.
  on_message_ = nullptr;
  on_space_ = nullptr;
  on_transport_failed_ = nullptr;
  send_control(VMsg::bye);
  auto self = weak_from_this();
  drain_timer_ = loop_->schedule_cancellable(drain_timeout_ns_, [self]() {
    auto conduit = self.lock();
    if (conduit == nullptr || conduit->closed_) return;
    conduit->finish_close(CloseReason::drain_timeout, /*notify_peer=*/false);
  });
}

void Conduit::finish_close(CloseReason reason, bool notify_peer) {
  if (closed_) return;
  closed_ = true;
  closing_ = false;
  close_reason_ = reason;
  drain_timer_.cancel();
  queue_.clear();
  retained_.clear();
  if (channel_ != nullptr) {
    if (notify_peer) {
      // The bye rides the lane behind any data already queued, so the peer
      // drains in order and then tears down its side.
      send_control(VMsg::bye);
    }
    channel_->close();
    channel_ = nullptr;
  }
  // Unhook everything the application registered: callbacks must not keep
  // peers (or this conduit's captures) alive past close.
  on_message_ = nullptr;
  on_space_ = nullptr;
  on_transport_failed_ = nullptr;
  auto closed_cb = std::move(on_closed_);
  on_closed_ = nullptr;
  if (closed_cb) closed_cb(reason);
  auto teardown = std::move(on_teardown_);
  on_teardown_ = nullptr;
  if (teardown) teardown();
}

void Conduit::mark_stale() {
  if (channel_ != nullptr) {
    channel_->close();
    ++rebinds_;
  }
  channel_ = nullptr;
  ++generation_;
}

void Conduit::retransmit_retained() {
  // The peer drops already-delivered duplicates by sequence, so replaying
  // the whole unacked window is safe — and the only way to guarantee the
  // lost tail of the dead lane arrives.
  for (auto& [seq, message] : retained_) {
    (void)seq;
    const Status s = channel_->send(Buffer(message.data(), message.size()));
    if (!s.is_ok()) {
      FF_LOG(warn, "core") << "conduit retransmit failed: " << s;
    }
  }
  if (!should_retain()) {
    // The new channel is lossless shm: once pushed it cannot be lost, and
    // the peer will never ack over shm. Drop the window.
    retained_.clear();
  }
}

void Conduit::drain() {
  while (!queue_.empty() && channel_ != nullptr) {
    Buffer message = std::move(queue_.front());
    queue_.pop_front();
    ++sent_;
    if (should_retain()) {
      const std::uint64_t seq = WireHeader::decode(message.data()).seq;
      retained_.emplace_back(seq, Buffer(message.data(), message.size()));
    }
    const Status s = channel_->send(std::move(message));
    if (!s.is_ok()) {
      FF_LOG(warn, "core") << "conduit drain failed: " << s;
    }
  }
}

}  // namespace freeflow::core
