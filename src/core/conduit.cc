#include "core/conduit.h"

#include <cstring>
#include <string>

#include "common/logging.h"
#include "orchestrator/network_orchestrator.h"

namespace freeflow::core {

namespace {
/// Trace coordinates: one "process" per container, one "thread" per conduit.
std::uint32_t trace_tid(std::uint64_t token) noexcept {
  return static_cast<std::uint32_t>(token);
}
}  // namespace

void Conduit::set_telemetry(telemetry::Telemetry* hub) {
  hub_ = hub;
  if (hub_ == nullptr) return;
  // Both endpoints of a channel share the token, so the metric entity is
  // (token, endpoint container) — "conduit/<token>/c<self>/<metric>".
  const std::string prefix = "conduit/" + std::to_string(token_) + "/c" +
                             std::to_string(self_) + "/";
  auto& m = hub_->metrics();
  ctr_sent_ = &m.counter(prefix + "sent");
  ctr_received_ = &m.counter(prefix + "received");
  ctr_acks_ = &m.counter(prefix + "acks");
  ctr_delayed_acks_ = &m.counter(prefix + "delayed_acks");
  ctr_retransmits_ = &m.counter(prefix + "retransmits");
  ctr_rebinds_ = &m.counter(prefix + "rebinds");
  ctr_window_full_ = &m.counter(prefix + "window_full");
  ctr_blackout_ns_ = &m.counter(prefix + "blackout_ns");
  ctr_blocked_ns_ = &m.counter(prefix + "blocked_ns");
  gauge_retained_ = &m.gauge(prefix + "retained");
  hub_->tracer().name_thread(self_, trace_tid(token_),
                             "conduit " + std::to_string(token_));
}

void Conduit::send(const WireHeader& header, ByteSpan payload) {
  if (closed_ || closing_) return;  // teardown races with in-flight sends
  if (migrating_) {
    // Connection state is in flight with the container: tx_seq_ travels in
    // the image, so sequencing now would fork the numbering. Park the send;
    // restore_from_migration re-sequences it behind the transferred state.
    pending_sends_.emplace_back(header,
                                Buffer(payload.data(), payload.size()));
    return;
  }
  WireHeader h = header;
  h.seq = ++tx_seq_;
  Buffer message = make_message(h, payload);
  if (channel_ == nullptr || paused_) {
    // Detached, or transmit-frozen for quiesce: the sequence is assigned
    // (message-boundary pause keeps ordering contiguous) but the bytes wait
    // in the queue until drain() runs again.
    queue_.push_back(std::move(message));
    return;
  }
  ++sent_;
  ctr_sent_->inc();
  if (should_retain()) {
    retained_.emplace_back(h.seq, Buffer(message.data(), message.size()));
    gauge_retained_->set(static_cast<std::int64_t>(retained_.size()));
    if (retained_.size() == k_max_retained) note_window_filled();
  }
  const Status s = channel_->send(std::move(message));
  if (!s.is_ok()) {
    FF_LOG(warn, "core") << "conduit send failed: " << s;
  }
}

void Conduit::note_window_filled() {
  // The retained window just hit the cap: writable() deasserts until an ack
  // drains it. Track how long the app stays blocked on the window.
  ctr_window_full_->inc();
  if (loop_ != nullptr) window_full_since_ = loop_->now();
}

void Conduit::send_control(VMsg type, std::uint64_t ack_upto) {
  // Control messages (ack / bye / bye_ack) are unsequenced (seq 0), skip
  // retention and are not counted in sent_ — protocol overhead, not traffic.
  if (channel_ == nullptr) return;
  WireHeader h;
  h.type = type;
  h.token = token_;
  h.id = ack_upto;
  channel_->send(make_message(h));
}

void Conduit::attach_channel(agent::ChannelPtr channel) {
  FF_CHECK(!closed_);
  if (channel_ != nullptr) {
    channel_->close();
  }
  // Until the retained replay and blackout drain below finish, nothing new
  // may enter the channel: an on_space_ fired mid-replay (the fresh channel
  // drains fast) would re-enter the application's pump and put a new, higher
  // sequence on the wire between two replayed ones — the peer sees a gap it
  // can never heal. Defer writable notifications until the splice completes.
  splicing_ = true;
  channel_ = std::move(channel);
  auto self = weak_from_this();
  channel_->set_on_message([self](Buffer&& message) {
    if (auto conduit = self.lock()) conduit->handle_message(std::move(message));
  });
  channel_->set_on_space([self]() {
    auto conduit = self.lock();
    if (conduit && !conduit->splicing_ && !conduit->paused_ && conduit->on_space_) {
      conduit->on_space_();
    }
  });
  channel_->set_on_failed([self]() {
    if (auto conduit = self.lock()) conduit->handle_channel_failed();
  });
  const bool recovering = in_blackout_;
  const orch::Transport now_on = channel_->transport();
  if (recovering) {
    in_blackout_ = false;
    if (loop_ != nullptr) {
      const SimDuration gap = loop_->now() - blackout_started_;
      blackout_ns_total_ += gap;
      ctr_blackout_ns_->inc(static_cast<std::uint64_t>(gap));
    }
    if (hub_ != nullptr) {
      hub_->tracer().instant(
          "conduit", "rebind", self_, trace_tid(token_),
          telemetry::Tracer::arg("to", std::string(orch::transport_name(now_on))));
    }
  }
  retransmit_retained();
  if (recovering && hub_ != nullptr) {
    hub_->tracer().end("conduit", "failover", self_, trace_tid(token_));
    // Re-attaching onto a strictly better transport than the one that died
    // is the heal-path re-upgrade (Transport enum orders best-first).
    if (static_cast<int>(now_on) < static_cast<int>(pre_failover_transport_)) {
      hub_->tracer().instant(
          "conduit", "re-upgrade", self_, trace_tid(token_),
          telemetry::Tracer::arg("to", std::string(orch::transport_name(now_on))));
    }
  }
  drain();
  // A receive-side ack obligation may have been parked while detached
  // (delayed-ack timer fires as a no-op without a channel): resume it.
  if (since_ack_ > 0 || resync_ack_) arm_ack_timer();
  if (closing_) {
    // Close handshake started while stale: re-issue the bye on the new path
    // so the peer's bye_ack can still beat the drain timer.
    send_control(VMsg::bye);
  }
  splicing_ = false;
  if (writable() && on_space_) on_space_();
}

void Conduit::handle_message(Buffer&& message) {
  auto parsed = parse_message(message.view());
  if (!parsed.is_ok()) {
    FF_LOG(warn, "core") << "conduit got malformed message: " << parsed.status();
    return;
  }
  const WireHeader& h = parsed->header;
  switch (h.type) {
    case VMsg::ack:
      handle_ack(h.id);
      return;
    case VMsg::bye:
      handle_bye();
      return;
    case VMsg::bye_ack:
      handle_bye_ack();
      return;
    default:
      break;
  }
  if (h.seq != 0) {
    if (h.seq < rx_next_) {
      // Duplicate from a failover retransmit. The original ack for these
      // sequences may have died with the old lane, and the piggyback cadence
      // will never re-fire for them (rx_next_ is unchanged) — without a
      // re-ack the sender's retained window can stay pinned full forever.
      resync_ack_ = true;
      arm_ack_timer();
      return;
    }
    if (h.seq > rx_next_) {
      // Cumulative acks make this impossible in-protocol; a gap means the
      // channel below reordered, which the transports never do.
      FF_LOG(warn, "core") << "conduit " << token_ << " seq gap: got " << h.seq
                           << " expected " << rx_next_;
      return;
    }
    ++rx_next_;
    maybe_ack();
  }
  ++received_;
  ctr_received_->inc();
  if (on_message_) {
    // Copy: handlers swap themselves during handshakes (cm_accept installs
    // the QP/socket data handler from inside the setup handler).
    auto handler = on_message_;
    handler(parsed->header, parsed->payload);
  }
}

void Conduit::maybe_ack() {
  if (!should_retain()) return;  // shm is lossless: peer retains nothing
  if (++since_ack_ >= k_ack_every) {
    send_ack_now();
    return;
  }
  // Mid-cadence: guarantee the ack goes out within the delayed-ack bound
  // even if no further messages arrive — the sender may be blocked on a
  // full retained window right now, with nothing left to send us.
  arm_ack_timer();
}

void Conduit::send_ack_now() {
  since_ack_ = 0;
  resync_ack_ = false;
  ack_timer_.cancel();
  send_control(VMsg::ack, rx_next_ - 1);
  ctr_acks_->inc();
}

void Conduit::arm_ack_timer() {
  if (loop_ == nullptr || ack_timer_.pending()) return;
  auto self = weak_from_this();
  ack_timer_ = loop_->schedule_cancellable(k_delayed_ack_ns, [self]() {
    auto conduit = self.lock();
    if (conduit == nullptr || conduit->closed_ || conduit->closing_) return;
    if (conduit->since_ack_ == 0 && !conduit->resync_ack_) return;
    if (!conduit->should_retain()) return;  // detached or lossless: no ack path
    conduit->ctr_delayed_acks_->inc();
    conduit->send_ack_now();
  });
}

void Conduit::handle_ack(std::uint64_t acked_upto) {
  const bool was_full = retained_.size() >= k_max_retained;
  while (!retained_.empty() && retained_.front().first <= acked_upto) {
    retained_.pop_front();
  }
  gauge_retained_->set(static_cast<std::int64_t>(retained_.size()));
  if (quiesce_done_ && retained_.empty()) {
    // The quiesce drain just completed: every sequence this side ever put on
    // a lossy wire is acknowledged, so the capture carries no replay tail.
    finish_quiesce(/*drained=*/true);
  }
  if (was_full && retained_.size() < k_max_retained) {
    if (loop_ != nullptr && window_full_since_ != 0) {
      ctr_blocked_ns_->inc(static_cast<std::uint64_t>(loop_->now() - window_full_since_));
      window_full_since_ = 0;
    }
    if (!paused_ && on_space_) on_space_();
  }
}

void Conduit::handle_bye() {
  // Peer-initiated close (or the peer's half of a simultaneous close):
  // acknowledge so the peer's drain completes, then tear down this side.
  send_control(VMsg::bye_ack);
  finish_close(closing_ ? pending_reason_ : CloseReason::peer_bye,
               /*notify_peer=*/false);
}

void Conduit::handle_bye_ack() {
  if (closing_) finish_close(pending_reason_, /*notify_peer=*/false);
}

void Conduit::handle_channel_failed() {
  if (closed_) return;
  if (closing_) {
    // The path carrying our bye died; the ack can never come.
    finish_close(CloseReason::transport_failed, /*notify_peer=*/false);
    return;
  }
  if (paused_) {
    // Mid-quiesce lane death (e.g. migration racing a NIC failure): detach,
    // but do NOT trigger the observer's reactive rebind — the coordinator
    // owns this conduit's next attach. Retained messages can no longer
    // drain, so the quiesce deadline will fire and capture carries them.
    mark_stale();
    return;
  }
  mark_stale();
  // Copy: the observer re-binds, which may re-enter this conduit.
  auto cb = on_transport_failed_;
  if (cb) cb();
}

void Conduit::force_close(CloseReason reason) {
  if (closed_) return;
  // Hard teardown (net destructor / container stop): finish immediately with
  // a best-effort bye. A drain already in flight keeps its original reason —
  // the app asked first; the handshake just didn't get to complete.
  finish_close(closing_ ? pending_reason_ : reason,
               /*notify_peer=*/channel_ != nullptr);
}

void Conduit::close_with(CloseReason reason, bool handshake) {
  if (closed_) return;
  if (closing_) {
    // A no-handshake close overtaking an in-flight drain (peer died): the
    // ack can never come, so finish now instead of waiting out the timer.
    if (!handshake) finish_close(pending_reason_, /*notify_peer=*/false);
    return;
  }
  if (!handshake || channel_ == nullptr || loop_ == nullptr) {
    // Fire-and-forget close: the legacy behaviour, and the only option for
    // clockless conduits or known-dead peers. Still sends a best-effort bye.
    finish_close(reason, /*notify_peer=*/handshake && channel_ != nullptr);
    return;
  }
  closing_ = true;
  pending_reason_ = reason;
  // The app-facing hooks go now, not at finish_close: connect handshakes
  // park a self-capturing lambda in on_message_, and a loop that stops
  // mid-drain would strand that cycle forever. Nothing app-visible may
  // fire during the drain anyway — bye/bye_ack dispatch internally.
  on_message_ = nullptr;
  on_space_ = nullptr;
  on_transport_failed_ = nullptr;
  send_control(VMsg::bye);
  auto self = weak_from_this();
  drain_timer_ = loop_->schedule_cancellable(drain_timeout_ns_, [self]() {
    auto conduit = self.lock();
    if (conduit == nullptr || conduit->closed_) return;
    conduit->finish_close(CloseReason::drain_timeout, /*notify_peer=*/false);
  });
}

void Conduit::finish_close(CloseReason reason, bool notify_peer) {
  if (closed_) return;
  closed_ = true;
  closing_ = false;
  close_reason_ = reason;
  drain_timer_.cancel();
  ack_timer_.cancel();
  quiesce_timer_.cancel();
  quiesce_done_ = nullptr;
  pending_sends_.clear();
  if (in_blackout_) {
    // Close during a failover gap: end the span so B/E stay balanced.
    in_blackout_ = false;
    if (hub_ != nullptr) hub_->tracer().end("conduit", "failover", self_, trace_tid(token_));
  }
  queue_.clear();
  retained_.clear();
  if (channel_ != nullptr) {
    if (notify_peer) {
      // The bye rides the lane behind any data already queued, so the peer
      // drains in order and then tears down its side.
      send_control(VMsg::bye);
    }
    channel_->close();
    channel_ = nullptr;
  }
  // Unhook everything the application registered: callbacks must not keep
  // peers (or this conduit's captures) alive past close.
  on_message_ = nullptr;
  on_space_ = nullptr;
  on_transport_failed_ = nullptr;
  auto closed_cb = std::move(on_closed_);
  on_closed_ = nullptr;
  if (closed_cb) closed_cb(reason);
  auto teardown = std::move(on_teardown_);
  on_teardown_ = nullptr;
  if (teardown) teardown();
}

void Conduit::mark_stale() {
  if (channel_ != nullptr) {
    pre_failover_transport_ = channel_->transport();
    channel_->close();
    ++rebinds_;
    ctr_rebinds_->inc();
    if (!in_blackout_) {
      in_blackout_ = true;
      blackout_started_ = loop_ != nullptr ? loop_->now() : 0;
      if (hub_ != nullptr) {
        hub_->tracer().begin(
            "conduit", "failover", self_, trace_tid(token_),
            telemetry::Tracer::arg(
                "from", std::string(orch::transport_name(pre_failover_transport_))));
        hub_->tracer().instant("conduit", "mark_stale", self_, trace_tid(token_));
      }
    }
  }
  channel_ = nullptr;
  ++generation_;
}

void Conduit::retransmit_retained() {
  // The peer drops already-delivered duplicates by sequence, so replaying
  // the whole unacked window is safe — and the only way to guarantee the
  // lost tail of the dead lane arrives.
  if (!retained_.empty()) {
    retransmits_ += retained_.size();
    ctr_retransmits_->inc(retained_.size());
    if (hub_ != nullptr) {
      hub_->tracer().instant(
          "conduit", "retransmit", self_, trace_tid(token_),
          telemetry::Tracer::arg("count", std::to_string(retained_.size())));
    }
  }
  // Index loop: a reentrant Conduit::send (e.g. an ack-driven on_space_)
  // may push_back into the deque mid-replay, which invalidates iterators.
  for (std::size_t i = 0; i < retained_.size(); ++i) {
    const Buffer& message = retained_[i].second;
    const Status s = channel_->send(Buffer(message.data(), message.size()));
    if (!s.is_ok()) {
      FF_LOG(warn, "core") << "conduit retransmit failed: " << s;
    }
  }
  if (!should_retain()) {
    // The new channel is lossless shm: once pushed it cannot be lost, and
    // the peer will never ack over shm. Drop the window.
    retained_.clear();
  }
}

void Conduit::unpause() {
  if (!paused_) return;
  paused_ = false;
  drain();
  if (since_ack_ > 0 || resync_ack_) arm_ack_timer();
  if (writable() && on_space_) on_space_();
}

void Conduit::quiesce(SimDuration deadline, std::function<void(bool)> done) {
  pause();
  FF_CHECK(!quiesce_done_);  // one quiesce at a time per conduit
  if (retained_.empty()) {
    // Nothing unacked on a lossy wire (or the channel is lossless shm):
    // the pause alone is a clean message boundary.
    done(true);
    return;
  }
  quiesce_done_ = std::move(done);
  if (loop_ == nullptr) {
    // Clockless conduit: no deadline to wait out, capture the tail as-is.
    finish_quiesce(/*drained=*/false);
    return;
  }
  auto self = weak_from_this();
  quiesce_timer_ = loop_->schedule_cancellable(deadline, [self]() {
    auto conduit = self.lock();
    if (conduit != nullptr) conduit->finish_quiesce(/*drained=*/false);
  });
}

void Conduit::finish_quiesce(bool drained) {
  quiesce_timer_.cancel();
  auto cb = std::move(quiesce_done_);
  quiesce_done_ = nullptr;
  if (cb) cb(drained);
}

namespace {
template <typename T>
void put_scalar(Buffer& out, T v) {
  out.append(&v, sizeof(T));
}
template <typename T>
bool get_scalar(ByteSpan in, std::size_t& at, T& v) {
  if (in.size() - at < sizeof(T)) return false;
  std::memcpy(&v, in.data() + at, sizeof(T));
  at += sizeof(T);
  return true;
}
void put_buffer(Buffer& out, const Buffer& b) {
  put_scalar(out, static_cast<std::uint32_t>(b.size()));
  out.append(b.view());
}
bool get_buffer(ByteSpan in, std::size_t& at, Buffer& b) {
  std::uint32_t len = 0;
  if (!get_scalar(in, at, len)) return false;
  if (in.size() - at < len) return false;
  b = Buffer(in.data() + at, len);
  at += len;
  return true;
}
}  // namespace

Buffer Conduit::capture_for_migration() {
  FF_CHECK(paused_ && !migrating_ && !closed_);
  Buffer record;
  put_scalar(record, token_);
  put_scalar(record, tx_seq_);
  put_scalar(record, rx_next_);
  put_scalar(record, since_ack_);
  put_scalar(record, static_cast<std::uint8_t>(resync_ack_ ? 1 : 0));
  // RC QP identity travels as the transport in use at capture; the actual
  // QP is rebuilt at the destination through the same generation-guarded
  // rebind failover uses (§9) — identity is the (token, transport) pair,
  // not the simulated queue-pair number, which is host-local.
  put_scalar(record, static_cast<std::uint8_t>(transport()));
  put_scalar(record, static_cast<std::uint16_t>(0));  // reserved
  put_scalar(record, static_cast<std::uint32_t>(retained_.size()));
  put_scalar(record, static_cast<std::uint32_t>(queue_.size()));
  for (const auto& [seq, message] : retained_) put_buffer(record, message);
  for (const auto& message : queue_) put_buffer(record, message);
  // The state now lives in the record. Wipe the local copy so a stale
  // source-side conduit can never emit these sequences again, and detach —
  // this opens the blackout span and bumps the rebind generation, exactly
  // like a failover mark_stale.
  tx_seq_ = 0;
  rx_next_ = 1;
  since_ack_ = 0;
  resync_ack_ = false;
  retained_.clear();
  queue_.clear();
  gauge_retained_->set(0);
  ack_timer_.cancel();
  migrating_ = true;
  mark_stale();
  return record;
}

Status Conduit::restore_from_migration(ByteSpan record) {
  FF_CHECK(paused_ && migrating_ && !closed_);
  std::size_t at = 0;
  std::uint64_t token = 0, tx_seq = 0, rx_next = 0, since_ack = 0;
  std::uint8_t resync = 0, transport_at_capture = 0;
  std::uint16_t reserved = 0;
  std::uint32_t n_retained = 0, n_queued = 0;
  if (!get_scalar(record, at, token) || !get_scalar(record, at, tx_seq) ||
      !get_scalar(record, at, rx_next) || !get_scalar(record, at, since_ack) ||
      !get_scalar(record, at, resync) ||
      !get_scalar(record, at, transport_at_capture) ||
      !get_scalar(record, at, reserved) ||
      !get_scalar(record, at, n_retained) || !get_scalar(record, at, n_queued)) {
    return invalid_argument("migration record truncated");
  }
  if (token != token_) return invalid_argument("migration record token mismatch");
  tx_seq_ = tx_seq;
  rx_next_ = rx_next;
  since_ack_ = since_ack;
  resync_ack_ = resync != 0;
  retained_.clear();
  queue_.clear();
  for (std::uint32_t i = 0; i < n_retained; ++i) {
    Buffer message;
    if (!get_buffer(record, at, message)) {
      return invalid_argument("migration record truncated (retained)");
    }
    const std::uint64_t seq = WireHeader::decode(message.data()).seq;
    retained_.emplace_back(seq, std::move(message));
  }
  for (std::uint32_t i = 0; i < n_queued; ++i) {
    Buffer message;
    if (!get_buffer(record, at, message)) {
      return invalid_argument("migration record truncated (queued)");
    }
    queue_.push_back(std::move(message));
  }
  if (at != record.size()) return invalid_argument("migration record trailing bytes");
  gauge_retained_->set(static_cast<std::int64_t>(retained_.size()));
  migrating_ = false;
  // Sends parked during the move get their sequences now, behind the
  // transferred counter — order is exactly the app's send order.
  while (!pending_sends_.empty()) {
    auto [h, payload] = std::move(pending_sends_.front());
    pending_sends_.pop_front();
    h.seq = ++tx_seq_;
    queue_.push_back(make_message(h, payload.view()));
  }
  return ok_status();
}

void Conduit::drain() {
  while (!queue_.empty() && channel_ != nullptr && !paused_) {
    Buffer message = std::move(queue_.front());
    queue_.pop_front();
    ++sent_;
    ctr_sent_->inc();
    if (should_retain()) {
      const std::uint64_t seq = WireHeader::decode(message.data()).seq;
      retained_.emplace_back(seq, Buffer(message.data(), message.size()));
      gauge_retained_->set(static_cast<std::int64_t>(retained_.size()));
      if (retained_.size() == k_max_retained) note_window_filled();
    }
    const Status s = channel_->send(std::move(message));
    if (!s.is_ok()) {
      FF_LOG(warn, "core") << "conduit drain failed: " << s;
    }
  }
}

}  // namespace freeflow::core
