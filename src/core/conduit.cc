#include "core/conduit.h"

#include "common/logging.h"

namespace freeflow::core {

void Conduit::send(const WireHeader& header, ByteSpan payload) {
  if (closed_) return;  // teardown races with in-flight application sends
  Buffer message = make_message(header, payload);
  if (channel_ == nullptr) {
    queue_.push_back(std::move(message));
    return;
  }
  ++sent_;
  const Status s = channel_->send(std::move(message));
  if (!s.is_ok()) {
    FF_LOG(warn, "core") << "conduit send failed: " << s;
  }
}

void Conduit::attach_channel(agent::ChannelPtr channel) {
  FF_CHECK(!closed_);
  if (channel_ != nullptr) {
    channel_->close();
  }
  channel_ = std::move(channel);
  auto self = weak_from_this();
  channel_->set_on_message([self](Buffer&& message) {
    auto conduit = self.lock();
    if (conduit == nullptr) return;
    auto parsed = parse_message(message.view());
    if (!parsed.is_ok()) {
      FF_LOG(warn, "core") << "conduit got malformed message: " << parsed.status();
      return;
    }
    ++conduit->received_;
    if (conduit->on_message_) {
      // Copy: handlers swap themselves during handshakes (cm_accept installs
      // the QP/socket data handler from inside the setup handler).
      auto handler = conduit->on_message_;
      handler(parsed->header, parsed->payload);
    }
  });
  channel_->set_on_space([self]() {
    if (auto conduit = self.lock(); conduit && conduit->on_space_) conduit->on_space_();
  });
  drain();
}

void Conduit::close() {
  if (closed_) return;
  closed_ = true;
  if (channel_ != nullptr) {
    channel_->close();
    channel_ = nullptr;
  }
  queue_.clear();
  if (on_closed_) {
    auto handler = on_closed_;
    handler();
  }
}

void Conduit::mark_stale() {
  if (channel_ != nullptr) {
    channel_->close();
    ++rebinds_;
  }
  channel_ = nullptr;
}

void Conduit::drain() {
  while (!queue_.empty() && channel_ != nullptr) {
    ++sent_;
    const Status s = channel_->send(std::move(queue_.front()));
    queue_.pop_front();
    if (!s.is_ok()) {
      FF_LOG(warn, "core") << "conduit drain failed: " << s;
    }
  }
}

}  // namespace freeflow::core
