// FreeFlow: the deployment-wide entry point. Wires the network
// orchestrator, per-host agents, the transport selector and per-container
// library instances together. This is the object an operator (or an
// example/benchmark) constructs once per cluster.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "agent/agent.h"
#include "core/container_net.h"
#include "core/selector.h"

namespace freeflow::core {

class FreeFlow {
 public:
  explicit FreeFlow(orch::NetworkOrchestrator& orchestrator,
                    agent::AgentConfig config = {});

  FreeFlow(const FreeFlow&) = delete;
  FreeFlow& operator=(const FreeFlow&) = delete;

  /// Attaches the FreeFlow library to a running container: starts the host
  /// agent if needed and registers the container with it.
  Result<ContainerNetPtr> attach(orch::ContainerId id);

  /// The library instance of an attached container.
  [[nodiscard]] ContainerNetPtr net(orch::ContainerId id) const;

  [[nodiscard]] orch::NetworkOrchestrator& orchestrator() noexcept { return orchestrator_; }
  [[nodiscard]] orch::ShardedControlPlane& control_plane() noexcept { return plane_; }
  [[nodiscard]] agent::AgentFabric& agents() noexcept { return agents_; }
  /// The decision cache of the agent on `host` (created on first use): each
  /// host's library talks to its own bounded, epoch-validated cache.
  [[nodiscard]] TransportSelector& selector_on(fabric::HostId host);
  /// Host-0 agent's cache — the single-host tests' and benches' shorthand.
  [[nodiscard]] TransportSelector& selector() { return selector_on(0); }
  [[nodiscard]] sim::EventLoop& loop() noexcept { return agents_.loop(); }

  /// The deployment-shared overlay TCP network the stream adapter
  /// (src/stream) falls back to when the selector withholds RDMA. One
  /// shared instance so listeners and dials demux on the same tables.
  [[nodiscard]] tcp::TcpNetwork& fallback_net();

  [[nodiscard]] std::uint64_t next_token() noexcept { return next_token_++; }

  /// Migration-coordinator handshake: while `active`, the coordinator owns
  /// every network-layer consequence of `id`'s move — the built-in moved /
  /// migration-started handlers skip the container instead of racing the
  /// quiesce/capture/resume protocol with reactive freezes and rebinds.
  void note_planned_migration(orch::ContainerId id, bool active);
  [[nodiscard]] bool planned_migration_active(orch::ContainerId id) const {
    return planned_.contains(id);
  }

 private:
  orch::NetworkOrchestrator& orchestrator_;
  /// Constructed (and subscribed to container/health events) BEFORE the
  /// handlers below, so cache flushes land before any re-decision runs.
  orch::ShardedControlPlane plane_;
  agent::AgentFabric agents_;
  std::unordered_map<fabric::HostId, std::unique_ptr<TransportSelector>> selectors_;
  std::unique_ptr<tcp::TcpNetwork> fallback_net_;
  std::unordered_map<orch::ContainerId, ContainerNetPtr> nets_;
  /// Containers currently moved by a MigrationCoordinator (see
  /// note_planned_migration).
  std::unordered_set<orch::ContainerId> planned_;
  std::uint64_t next_token_ = 1;
  /// Liveness token for orchestrator subscriptions: the orchestrator can
  /// outlive this FreeFlow, so its callbacks hold a weak observer instead
  /// of a raw back-pointer (teardown protocol).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace freeflow::core
