#include "core/selector.h"

namespace freeflow::core {

namespace {
std::uint64_t pair_key(orch::ContainerId a, orch::ContainerId b) noexcept {
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

TransportSelector::TransportSelector(orch::NetworkOrchestrator& orchestrator,
                                     sim::EventLoop& loop)
    : orchestrator_(orchestrator), loop_(loop) {
  orchestrator_.subscribe_moves([this](const orch::Container& c) { invalidate(c.id()); });
}

void TransportSelector::decide(orch::ContainerId src, orch::ContainerId dst,
                               std::function<void(Result<orch::TransportDecision>)> cb) {
  const std::uint64_t key = pair_key(src, dst);
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.fresh_until >= loop_.now()) {
    ++hits_;
    loop_.schedule(0, [cb = std::move(cb), d = it->second.decision]() { cb(d); });
    return;
  }
  ++misses_;
  const SimDuration rpc =
      orchestrator_.cluster_orch().cluster().cost_model().orchestrator_rpc_ns;
  const SimDuration ttl =
      orchestrator_.cluster_orch().cluster().cost_model().location_cache_ttl_ns;
  loop_.schedule(rpc, [this, src, dst, key, ttl, cb = std::move(cb)]() {
    auto decision = orchestrator_.decide(src, dst);
    if (decision.is_ok()) {
      cache_[key] = CacheEntry{*decision, loop_.now() + ttl};
    }
    cb(std::move(decision));
  });
}

void TransportSelector::invalidate(orch::ContainerId container) {
  std::erase_if(cache_, [container](const auto& kv) {
    const std::uint64_t key = kv.first;
    return static_cast<orch::ContainerId>(key >> 32) == container ||
           static_cast<orch::ContainerId>(key & 0xFFFFFFFFULL) == container;
  });
}

}  // namespace freeflow::core
