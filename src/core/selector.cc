#include "core/selector.h"

namespace freeflow::core {

namespace {
std::uint64_t pair_key(orch::ContainerId a, orch::ContainerId b) noexcept {
  return (std::uint64_t{a} << 32) | b;
}
orch::ContainerId key_src(std::uint64_t key) noexcept {
  return static_cast<orch::ContainerId>(key >> 32);
}
orch::ContainerId key_dst(std::uint64_t key) noexcept {
  return static_cast<orch::ContainerId>(key & 0xFFFFFFFFULL);
}
}  // namespace

TransportSelector::TransportSelector(orch::ShardedControlPlane& plane,
                                     sim::EventLoop& loop, fabric::HostId host,
                                     std::size_t capacity)
    : plane_(plane), loop_(loop), host_(host), capacity_(capacity) {
  FF_CHECK(capacity_ > 0);
  auto& metrics =
      plane_.orchestrator().cluster_orch().cluster().telemetry().metrics();
  ctr_rpc_rounds_ = &metrics.counter("selector/decide_rpc_rounds");
  ctr_coalesced_ = &metrics.counter("selector/decide_coalesced");
  ctr_invalidations_ = &metrics.counter("selector/invalidations");
  ctr_stale_served_ = &metrics.counter("selector/stale_served");
  ctr_evictions_ = &metrics.counter("selector/cache_evictions");
  ctr_epoch_rejects_ = &metrics.counter("selector/epoch_rejects");
}

TransportSelector::~TransportSelector() {
  *alive_ = false;
  plane_.detach(this);
}

void TransportSelector::decide(orch::ContainerId src, orch::ContainerId dst,
                               std::function<void(Result<orch::TransportDecision>)> cb) {
  const std::uint64_t key = pair_key(src, dst);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    CacheEntry& e = it->second;
    if (e.fresh_until < loop_.now()) {
      erase_entry(it);  // TTL backstop expired: fall through to a miss
    } else if (e.src_epoch < plane_.epoch(src) || e.dst_epoch < plane_.epoch(dst)) {
      // Ground-truth audit: the entry is fresh by TTL but its epochs lag —
      // a flush that should have dropped or re-stamped it never arrived.
      // Serve as a miss (never the stale answer) and count the escape; the
      // perf gate holds this at zero.
      ++stale_served_;
      ctr_stale_served_->inc();
      erase_entry(it);
    } else {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, e.lru);
      if (e.negative) {
        loop_.schedule(0, [cb = std::move(cb), s = e.error]() { cb(s); });
      } else {
        loop_.schedule(0, [cb = std::move(cb), d = e.decision]() { cb(d); });
      }
      return;
    }
  }
  ++misses_;
  enqueue(PendingQuery{key, src, dst, 0, std::move(cb)});
}

void TransportSelector::enqueue(PendingQuery q) {
  batch_.push_back(std::move(q));
  if (flush_scheduled_) return;  // riding the window already open
  flush_scheduled_ = true;
  const SimDuration window = plane_.orchestrator()
                                 .cluster_orch()
                                 .cluster()
                                 .cost_model()
                                 .decide_batch_window_ns;
  std::weak_ptr<bool> alive = alive_;
  loop_.schedule(window, [this, alive]() {
    if (alive.expired()) return;
    flush_batch();
  });
}

void TransportSelector::flush_batch() {
  flush_scheduled_ = false;
  std::vector<PendingQuery> round;
  round.swap(batch_);  // queries arriving during callbacks start a new round
  ++rounds_;
  ctr_rpc_rounds_->inc();
  if (round.size() > 1) ctr_coalesced_->inc(round.size() - 1);

  std::vector<orch::ShardedControlPlane::DecideRequest> requests;
  requests.reserve(round.size());
  for (const auto& q : round) requests.push_back({q.src, q.dst});

  std::weak_ptr<bool> alive = alive_;
  plane_.decide_batch(
      host_, std::move(requests),
      [this, alive, round = std::move(round)](
          std::vector<orch::ShardedControlPlane::DecideReply> replies) mutable {
        if (alive.expired()) return;
        FF_CHECK(replies.size() == round.size());
        for (std::size_t i = 0; i < round.size(); ++i) {
          complete(std::move(round[i]), std::move(replies[i]));
        }
      });
}

void TransportSelector::complete(PendingQuery q,
                                 orch::ShardedControlPlane::DecideReply reply) {
  // Epoch check: the reply was served at shard service time; if the
  // container moved (or its host's health flipped) while the reply was on
  // the wire, the epochs in our plane lookup have advanced past the stamps
  // and the answer describes a world that no longer exists. Reject it and
  // ride the next batch instead of caching or serving it.
  if (reply.src_epoch < plane_.epoch(q.src) || reply.dst_epoch < plane_.epoch(q.dst)) {
    ++epoch_rejects_;
    ctr_epoch_rejects_->inc();
    if (q.attempt + 1 < k_max_decide_attempts) {
      ++q.attempt;
      enqueue(std::move(q));
    } else {
      q.cb(aborted("transport decision kept racing container events"));
    }
    return;
  }
  store(q, reply);
  if (reply.error.is_ok()) {
    q.cb(std::move(reply.decision));
  } else {
    q.cb(std::move(reply.error));
  }
}

void TransportSelector::store(const PendingQuery& q,
                              const orch::ShardedControlPlane::DecideReply& reply) {
  const auto& cm = plane_.orchestrator().cluster_orch().cluster().cost_model();
  auto it = cache_.find(q.key);
  if (it == cache_.end()) {
    if (cache_.size() >= capacity_) {
      // Evict the least-recently-used entry to stay within bound.
      auto victim = cache_.find(lru_.back());
      FF_CHECK(victim != cache_.end());
      erase_entry(victim);
      ++evictions_;
      ctr_evictions_->inc();
    }
    lru_.push_front(q.key);
    it = cache_.emplace(q.key, CacheEntry{}).first;
    it->second.lru = lru_.begin();
    index(q.src, q.key);
    if (q.dst != q.src) index(q.dst, q.key);
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  CacheEntry& e = it->second;
  e.negative = !reply.error.is_ok();
  e.error = reply.error;
  e.decision = reply.decision;
  e.fresh_until = loop_.now() + (e.negative ? cm.negative_decision_ttl_ns
                                            : cm.location_cache_ttl_ns);
  e.src_epoch = reply.src_epoch;
  e.dst_epoch = reply.dst_epoch;
}

void TransportSelector::invalidate(orch::ContainerId container) {
  auto idx = by_container_.find(container);
  if (idx == by_container_.end()) return;
  // Copy: erase_entry mutates (and may erase) the index set underneath us.
  std::vector<std::uint64_t> keys(idx->second.begin(), idx->second.end());
  for (std::uint64_t key : keys) {
    auto it = cache_.find(key);
    if (it == cache_.end()) continue;
    erase_entry(it);
    ++invalidations_;
    ctr_invalidations_->inc();
  }
}

void TransportSelector::on_flush(orch::ContainerId container,
                                 orch::DecisionEpoch epoch, std::uint8_t drop_mask) {
  auto idx = by_container_.find(container);
  if (idx == by_container_.end()) return;
  std::vector<std::uint64_t> keys(idx->second.begin(), idx->second.end());
  for (std::uint64_t key : keys) {
    auto it = cache_.find(key);
    if (it == cache_.end()) continue;
    CacheEntry& e = it->second;
    // Negative entries carry no transport to mask on; any event involving
    // the container (it may exist now) invalidates them.
    const bool drop = e.negative ||
                      (orch::transport_bit(e.decision.transport) & drop_mask) != 0;
    if (drop) {
      erase_entry(it);
      ++invalidations_;
      ctr_invalidations_->inc();
    } else {
      // Provably unaffected by this event (e.g. a co-located shm pair
      // riding out an RDMA engine death): re-stamp so the hit-path audit
      // knows the entry was revalidated, not missed.
      if (key_src(key) == container) e.src_epoch = epoch;
      if (key_dst(key) == container) e.dst_epoch = epoch;
    }
  }
}

void TransportSelector::erase_entry(CacheMap::iterator it) {
  const std::uint64_t key = it->first;
  lru_.erase(it->second.lru);
  cache_.erase(it);
  unindex(key_src(key), key);
  if (key_dst(key) != key_src(key)) unindex(key_dst(key), key);
}

void TransportSelector::index(orch::ContainerId container, std::uint64_t key) {
  auto& keys = by_container_[container];
  if (keys.empty()) plane_.register_interest(container, this);
  keys.insert(key);
}

void TransportSelector::unindex(orch::ContainerId container, std::uint64_t key) {
  auto idx = by_container_.find(container);
  if (idx == by_container_.end()) return;
  idx->second.erase(key);
  if (idx->second.empty()) {
    by_container_.erase(idx);
    plane_.drop_interest(container, this);
  }
}

}  // namespace freeflow::core
