#include "core/selector.h"

namespace freeflow::core {

namespace {
std::uint64_t pair_key(orch::ContainerId a, orch::ContainerId b) noexcept {
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

TransportSelector::TransportSelector(orch::NetworkOrchestrator& orchestrator,
                                     sim::EventLoop& loop)
    : orchestrator_(orchestrator), loop_(loop) {
  orchestrator_.subscribe_moves([this](const orch::Container& c) { invalidate(c.id()); });
  auto& metrics = orchestrator_.cluster_orch().cluster().telemetry().metrics();
  ctr_rpc_rounds_ = &metrics.counter("selector/decide_rpc_rounds");
  ctr_coalesced_ = &metrics.counter("selector/decide_coalesced");
}

void TransportSelector::decide(orch::ContainerId src, orch::ContainerId dst,
                               std::function<void(Result<orch::TransportDecision>)> cb) {
  const std::uint64_t key = pair_key(src, dst);
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.fresh_until >= loop_.now()) {
    ++hits_;
    loop_.schedule(0, [cb = std::move(cb), d = it->second.decision]() { cb(d); });
    return;
  }
  ++misses_;
  batch_.push_back(PendingQuery{key, src, dst, std::move(cb)});
  if (flush_scheduled_) return;  // riding the round already in flight
  flush_scheduled_ = true;
  const SimDuration rpc =
      orchestrator_.cluster_orch().cluster().cost_model().orchestrator_rpc_ns;
  loop_.schedule(rpc, [this]() { flush(); });
}

void TransportSelector::flush() {
  flush_scheduled_ = false;
  std::vector<PendingQuery> round;
  round.swap(batch_);  // queries arriving during callbacks start a new round
  ++rounds_;
  ctr_rpc_rounds_->inc();
  if (round.size() > 1) ctr_coalesced_->inc(round.size() - 1);
  const SimDuration ttl =
      orchestrator_.cluster_orch().cluster().cost_model().location_cache_ttl_ns;
  for (auto& q : round) {
    // Duplicate keys in one round resolve from the entry the first answer
    // cached — the orchestrator is consulted once per distinct pair.
    if (auto it = cache_.find(q.key);
        it != cache_.end() && it->second.fresh_until >= loop_.now()) {
      q.cb(it->second.decision);
      continue;
    }
    auto decision = orchestrator_.decide(q.src, q.dst);
    if (decision.is_ok()) {
      cache_[q.key] = CacheEntry{*decision, loop_.now() + ttl};
    }
    q.cb(std::move(decision));
  }
}

void TransportSelector::invalidate(orch::ContainerId container) {
  std::erase_if(cache_, [container](const auto& kv) {
    const std::uint64_t key = kv.first;
    return static_cast<orch::ContainerId>(key >> 32) == container ||
           static_cast<orch::ContainerId>(key & 0xFFFFFFFFULL) == container;
  });
}

}  // namespace freeflow::core
