#include "core/mpi.h"

#include <cstring>

#include "common/logging.h"

namespace freeflow::core {

namespace {
constexpr std::size_t k_rec_header = 12;  // u32 payload_len, i32 src, u32 tag

Buffer frame(int src, std::uint32_t tag, ByteSpan payload) {
  Buffer out(k_rec_header + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(out.data(), &len, 4);
  const auto s = static_cast<std::int32_t>(src);
  std::memcpy(out.data() + 4, &s, 4);
  std::memcpy(out.data() + 8, &tag, 4);
  if (!payload.empty()) {
    std::memcpy(out.data() + k_rec_header, payload.data(), payload.size());
  }
  return out;
}
}  // namespace

MpiEndpoint::MpiEndpoint(ContainerNetPtr net, int rank,
                         std::vector<tcp::Ipv4Addr> members, std::uint16_t port)
    : net_(std::move(net)), rank_(rank), members_(std::move(members)), port_(port) {
  FF_CHECK(rank_ >= 0 && rank_ < static_cast<int>(members_.size()));
}

Status MpiEndpoint::start() {
  auto self = weak_from_this();
  return net_->sock_listen(port_, [self](FlowSocketPtr sock) {
    if (auto me = self.lock()) me->adopt_socket(std::move(sock));
  });
}

void MpiEndpoint::adopt_socket(FlowSocketPtr sock) {
  accepted_.push_back(sock);  // the endpoint owns its inbound sockets
  auto self = weak_from_this();
  auto accum = std::make_shared<Buffer>();
  sock->set_on_data([self, accum](Buffer&& chunk) {
    auto me = self.lock();
    if (me == nullptr) return;
    accum->append(chunk.view());
    std::size_t cursor = 0;
    while (accum->size() - cursor >= k_rec_header) {
      std::uint32_t len = 0;
      std::int32_t src = 0;
      std::uint32_t tag = 0;
      std::memcpy(&len, accum->data() + cursor, 4);
      std::memcpy(&src, accum->data() + cursor + 4, 4);
      std::memcpy(&tag, accum->data() + cursor + 8, 4);
      if (accum->size() - cursor - k_rec_header < len) break;
      Buffer payload(accum->data() + cursor + k_rec_header, len);
      cursor += k_rec_header + len;
      me->dispatch(src, tag, std::move(payload));
    }
    if (cursor > 0) {
      Buffer rest(accum->data() + cursor, accum->size() - cursor);
      *accum = std::move(rest);
    }
  });
}

void MpiEndpoint::with_socket(int dst, std::function<void(Result<FlowSocketPtr>)> cb) {
  if (auto it = sockets_.find(dst); it != sockets_.end()) {
    cb(it->second);
    return;
  }
  auto& waiters = connecting_[dst];
  waiters.push_back(std::move(cb));
  if (waiters.size() > 1) return;

  auto self = shared_from_this();
  net_->sock_connect(members_[static_cast<std::size_t>(dst)], port_,
                     [self, dst](Result<FlowSocketPtr> sock) {
    if (sock.is_ok()) {
      self->adopt_socket(*sock);
      self->sockets_[dst] = *sock;
    }
    auto pending = std::move(self->connecting_[dst]);
    self->connecting_.erase(dst);
    for (auto& w : pending) w(sock);
  });
}

void MpiEndpoint::send(int dst, std::uint32_t tag, Buffer data) {
  FF_CHECK(dst >= 0 && dst < size());
  if (dst == rank_) {
    dispatch(rank_, tag, std::move(data));
    return;
  }
  with_socket(dst, [rank = rank_, tag, data = std::move(data)](Result<FlowSocketPtr> sock) {
    if (!sock.is_ok()) {
      FF_LOG(warn, "mpi") << "send failed: " << sock.status();
      return;
    }
    (void)(*sock)->send(frame(rank, tag, data.view()));
  });
}

void MpiEndpoint::recv(int src, std::uint32_t tag, RecvFn cb) {
  const MatchKey key{src, tag};
  auto uit = unexpected_.find(key);
  if (uit != unexpected_.end() && !uit->second.empty()) {
    Buffer payload = std::move(uit->second.front());
    uit->second.pop_front();
    cb(std::move(payload));
    return;
  }
  waiting_[key].push_back(std::move(cb));
}

void MpiEndpoint::dispatch(int src, std::uint32_t tag, Buffer&& payload) {
  const MatchKey key{src, tag};
  auto wit = waiting_.find(key);
  if (wit != waiting_.end() && !wit->second.empty()) {
    RecvFn cb = std::move(wit->second.front());
    wit->second.pop_front();
    cb(std::move(payload));
    return;
  }
  unexpected_[key].push_back(std::move(payload));
}

// ----------------------------------------------------------- collectives

void MpiEndpoint::barrier(std::function<void()> done) {
  const std::uint32_t tag = k_reserved_tag_base + (barrier_round_++ & 0xFFF);
  auto self = shared_from_this();
  if (rank_ == 0) {
    auto remaining = std::make_shared<int>(size() - 1);
    if (*remaining == 0) {
      net_->loop().schedule(0, std::move(done));
      return;
    }
    for (int r = 1; r < size(); ++r) {
      recv(r, tag, [self, remaining, tag, done](Buffer&&) mutable {
        if (--*remaining == 0) {
          for (int r2 = 1; r2 < self->size(); ++r2) self->send(r2, tag + 0x1000, Buffer{});
          done();
        }
      });
    }
  } else {
    send(0, tag, Buffer{});
    recv(0, tag + 0x1000, [done = std::move(done)](Buffer&&) { done(); });
  }
}

void MpiEndpoint::broadcast(int root, Buffer data, RecvFn done) {
  const std::uint32_t tag = k_reserved_tag_base + 0x2000 + (bcast_round_++ & 0xFFF);
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, tag, data);
    }
    net_->loop().schedule(0, [done = std::move(done), data = std::move(data)]() mutable {
      done(std::move(data));
    });
  } else {
    recv(root, tag, std::move(done));
  }
}

void MpiEndpoint::allreduce_sum(std::vector<double> values,
                                std::function<void(std::vector<double>)> done) {
  const std::uint32_t tag = k_reserved_tag_base + 0x4000 + (reduce_round_++ & 0xFFF);
  const std::size_t n = values.size();
  auto self = shared_from_this();

  auto unpack = [n](ByteSpan bytes) {
    std::vector<double> out(n);
    FF_CHECK(bytes.size() == n * sizeof(double));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  };
  auto pack = [](const std::vector<double>& v) {
    return Buffer(v.data(), v.size() * sizeof(double));
  };

  if (rank_ == 0) {
    auto sum = std::make_shared<std::vector<double>>(std::move(values));
    auto remaining = std::make_shared<int>(size() - 1);
    auto finish = [self, sum, tag, pack, done]() {
      for (int r = 1; r < self->size(); ++r) self->send(r, tag + 0x1000, pack(*sum));
      done(*sum);
    };
    if (*remaining == 0) {
      net_->loop().schedule(0, finish);
      return;
    }
    for (int r = 1; r < size(); ++r) {
      recv(r, tag, [sum, remaining, unpack, finish](Buffer&& payload) mutable {
        const auto theirs = unpack(payload.view());
        for (std::size_t i = 0; i < sum->size(); ++i) (*sum)[i] += theirs[i];
        if (--*remaining == 0) finish();
      });
    }
  } else {
    send(0, tag, pack(values));
    recv(0, tag + 0x1000,
         [unpack, done = std::move(done)](Buffer&& payload) { done(unpack(payload.view())); });
  }
}

void MpiEndpoint::gather(int root, Buffer data,
                         std::function<void(std::vector<Buffer>)> done) {
  const std::uint32_t tag = k_reserved_tag_base + 0x6000 + (gather_round_++ & 0xFFF);
  if (rank_ == root) {
    auto parts = std::make_shared<std::vector<Buffer>>(static_cast<std::size_t>(size()));
    (*parts)[static_cast<std::size_t>(root)] = std::move(data);
    auto remaining = std::make_shared<int>(size() - 1);
    if (*remaining == 0) {
      net_->loop().schedule(0, [parts, done = std::move(done)]() mutable {
        done(std::move(*parts));
      });
      return;
    }
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(r, tag, [parts, remaining, r, done](Buffer&& payload) mutable {
        (*parts)[static_cast<std::size_t>(r)] = std::move(payload);
        if (--*remaining == 0) done(std::move(*parts));
      });
    }
  } else {
    send(root, tag, std::move(data));
    net_->loop().schedule(0, [done = std::move(done)]() { done({}); });
  }
}

void MpiEndpoint::scatter(int root, std::vector<Buffer> parts, RecvFn done) {
  const std::uint32_t tag = k_reserved_tag_base + 0x8000 + (scatter_round_++ & 0xFFF);
  if (rank_ == root) {
    FF_CHECK(parts.size() == static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, tag, std::move(parts[static_cast<std::size_t>(r)]));
    }
    net_->loop().schedule(
        0, [done = std::move(done),
            mine = std::move(parts[static_cast<std::size_t>(root)])]() mutable {
          done(std::move(mine));
        });
  } else {
    recv(root, tag, std::move(done));
  }
}

}  // namespace freeflow::core
