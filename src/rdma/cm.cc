#include "rdma/cm.h"

#include "fabric/control.h"

namespace freeflow::rdma {

Status connect_pair(QueuePair& a, QueuePair& b) {
  FF_RETURN_IF_ERROR(a.connect(b.device().host().id(), b.num()));
  FF_RETURN_IF_ERROR(b.connect(a.device().host().id(), a.num()));
  return ok_status();
}

void connect_pair_async(std::shared_ptr<QueuePair> a, std::shared_ptr<QueuePair> b,
                        std::function<void(Status)> done) {
  constexpr std::uint32_t k_cm_wire_bytes = 128;
  fabric::Host& ah = a->device().host();
  fabric::Host& bh = b->device().host();
  fabric::install_control_rx(ah);
  fabric::install_control_rx(bh);
  auto cb = std::make_shared<std::function<void(Status)>>(std::move(done));
  // a -> b: request carrying a's QP number; b -> a: reply with b's.
  fabric::send_control(ah, bh.id(), k_cm_wire_bytes, [a, b, &ah, &bh, cb]() {
    const Status sb = b->connect(ah.id(), a->num());
    fabric::send_control(bh, ah.id(), k_cm_wire_bytes, [a, b, &bh, sb, cb]() {
      Status sa = a->connect(bh.id(), b->num());
      if (*cb) (*cb)(sb.is_ok() ? sa : sb);
    });
  });
}

}  // namespace freeflow::rdma
