// Minimal connection manager: the out-of-band QP-number exchange that
// rdma_cm (or a sockets side channel) performs in real deployments. The
// synchronous form wires two QPs immediately; the async form models the
// exchange over the fabric control plane with its real latency.
#pragma once

#include <functional>
#include <memory>

#include "common/status.h"
#include "rdma/device.h"
#include "rdma/queue_pair.h"

namespace freeflow::rdma {

/// Wires `a` and `b` to each other (both move to ready). Test convenience.
Status connect_pair(QueuePair& a, QueuePair& b);

/// Models the OOB exchange over the control plane: `a` learns `b`'s QP
/// number after a control round-trip; `done` fires when both ends are ready.
void connect_pair_async(std::shared_ptr<QueuePair> a, std::shared_ptr<QueuePair> b,
                        std::function<void(Status)> done);

}  // namespace freeflow::rdma
