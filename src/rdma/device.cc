#include "rdma/device.h"

#include "common/logging.h"
#include "rdma/queue_pair.h"

namespace freeflow::rdma {

namespace {
constexpr std::uint32_t k_roce_header_bytes = 58;
constexpr std::uint32_t k_ctrl_wire_bytes = 64;
}  // namespace

RdmaDevice::RdmaDevice(fabric::Host& host) : host_(host) {
  host_.nic().set_rx_handler(fabric::PacketKind::rdma_chunk,
                             [this](fabric::PacketPtr p) { on_chunk(std::move(p)); });
}

MrPtr RdmaDevice::reg_mr(std::size_t length) {
  const Key lkey = next_key_++;
  const Key rkey = next_key_++;
  auto mr = std::make_shared<MemoryRegion>(lkey, rkey, length);
  mrs_.emplace(rkey, mr);
  return mr;
}

CqPtr RdmaDevice::create_cq(std::size_t capacity) {
  return std::make_shared<CompletionQueue>(capacity);
}

std::shared_ptr<QueuePair> RdmaDevice::create_qp(CqPtr send_cq, CqPtr recv_cq, QpAttr attr) {
  const QpNum num = next_qp_++;
  auto qp = std::make_shared<QueuePair>(*this, num, std::move(send_cq),
                                        std::move(recv_cq), attr);
  qps_.emplace(num, qp);
  return qp;
}

MrPtr RdmaDevice::mr_by_rkey(Key rkey) {
  auto it = mrs_.find(rkey);
  return it == mrs_.end() ? nullptr : it->second;
}

std::shared_ptr<QueuePair> RdmaDevice::qp(QpNum num) {
  auto it = qps_.find(num);
  return it == qps_.end() ? nullptr : it->second;
}

std::uint32_t RdmaDevice::wire_bytes(const RdmaChunk& chunk) noexcept {
  if (chunk.kind != RdmaChunk::Kind::data) return k_ctrl_wire_bytes;
  return static_cast<std::uint32_t>(chunk.payload.size()) + k_roce_header_bytes;
}

void RdmaDevice::transmit(fabric::HostId dst_host, std::shared_ptr<RdmaChunk> chunk) {
  auto packet = fabric::acquire_packet();
  packet->dst_host = dst_host;
  packet->wire_bytes = wire_bytes(*chunk);
  packet->kind = fabric::PacketKind::rdma_chunk;
  packet->tenant = chunk->tenant;
  packet->body = std::move(chunk);
  host_.nic().send(std::move(packet));
}

void RdmaDevice::on_chunk(fabric::PacketPtr packet) {
  auto chunk = fabric::body_as<RdmaChunk>(packet);
  // A hairpinned chunk (intra-host RDMA through the NIC) was already
  // processed once on the way in; the CX3-style NIC loops it back without a
  // second full pass. Acks cost only the fixed per-packet overhead.
  const bool hairpin = packet->src_host == host_.id();
  const fabric::HostId requester = packet->src_host;

  auto process = [this, chunk, requester]() {
    switch (chunk->kind) {
      case RdmaChunk::Kind::data:
        handle_data(chunk);
        break;
      case RdmaChunk::Kind::ack:
        if (auto q = qp(chunk->dst_qp)) q->rx_ack(chunk);
        break;
      case RdmaChunk::Kind::read_request:
        handle_read_request(chunk, requester);
        break;
    }
  };

  if (hairpin) {
    process();
    return;
  }
  const auto& m = host_.cost_model();
  const double cost = chunk->kind == RdmaChunk::Kind::data
                          ? m.nic_pkt_cost(static_cast<std::uint32_t>(chunk->payload.size()))
                          : m.nic_pkt_fixed_ns;
  nic_proc().submit(cost, std::move(process));
}

void RdmaDevice::handle_data(const std::shared_ptr<RdmaChunk>& chunk) {
  auto q = qp(chunk->dst_qp);
  if (q == nullptr) {
    FF_LOG(warn, "rdma") << "chunk for unknown QP " << chunk->dst_qp << " dropped";
    return;
  }
  bytes_received_ += chunk->payload.size();
  // DMA into host memory competes for the memory bus.
  const auto& m = host_.cost_model();
  const double bus = m.nic_dma_bus_bytes_factor * static_cast<double>(chunk->payload.size());
  if (bus > 0) host_.membus().submit(bus, nullptr);
  q->rx_data_chunk(chunk);
}

void RdmaDevice::handle_read_request(const std::shared_ptr<RdmaChunk>& request,
                                     fabric::HostId requester) {
  // Served entirely by the NIC: the remote host's CPU is never involved —
  // the defining property of one-sided RDMA.
  MrPtr mr = mr_by_rkey(request->remote.rkey);
  const auto& m = host_.cost_model();

  if (mr == nullptr || request->remote.offset + request->read_len > mr->length()) {
    auto nak = acquire_chunk();
    nak->kind = RdmaChunk::Kind::ack;
    nak->opcode = Opcode::read;
    nak->dst_qp = request->src_qp;
    nak->msg_id = request->msg_id;
    nak->wr_id = request->wr_id;
    nak->status = WcStatus::remote_access_error;
    nak->tenant = request->tenant;
    transmit(requester, nak);
    return;
  }

  const std::uint32_t total = request->read_len;

  if (total == 0) {
    // Zero-length read completes immediately with an empty last chunk.
    auto chunk = acquire_chunk();
    chunk->kind = RdmaChunk::Kind::data;
    chunk->opcode = Opcode::read;
    chunk->src_qp = request->dst_qp;
    chunk->dst_qp = request->src_qp;
    chunk->msg_id = request->msg_id;
    chunk->wr_id = request->wr_id;
    chunk->total_len = 0;
    chunk->last = true;
    chunk->tenant = request->tenant;
    nic_proc().submit(m.nic_pkt_fixed_ns,
                      [this, chunk, requester]() { transmit(requester, chunk); });
    return;
  }
  stream_read_chunk(request, requester, 0);
}

// One MTU response chunk per call; the NIC-processor completion re-invokes
// for the next offset. The pending event references only the device and the
// request, never a callback that owns itself (teardown protocol). The MR is
// re-looked-up each chunk so a mid-stream deregistration just stops the
// stream instead of dangling.
void RdmaDevice::stream_read_chunk(const std::shared_ptr<RdmaChunk>& request,
                                   fabric::HostId requester, std::uint32_t offset) {
  MrPtr mr = mr_by_rkey(request->remote.rkey);
  if (mr == nullptr) return;
  const auto& m = host_.cost_model();
  const std::uint32_t total = request->read_len;
  const std::uint32_t n = std::min(m.rdma_mtu_bytes, total - offset);

  auto chunk = acquire_chunk();
  chunk->kind = RdmaChunk::Kind::data;
  chunk->opcode = Opcode::read;
  chunk->src_qp = request->dst_qp;
  chunk->dst_qp = request->src_qp;
  chunk->msg_id = request->msg_id;
  chunk->wr_id = request->wr_id;
  chunk->total_len = total;
  chunk->chunk_offset = offset;
  chunk->last = offset + n >= total;
  chunk->tenant = request->tenant;
  chunk->payload = Buffer(mr->data().data() + request->remote.offset + offset, n);

  const double bus = m.nic_dma_bus_bytes_factor * static_cast<double>(n);
  if (bus > 0) host_.membus().submit(bus, nullptr);

  nic_proc().submit(m.nic_pkt_cost(n), [this, chunk, request, requester]() {
    const bool more = !chunk->last;
    const auto next =
        chunk->chunk_offset + static_cast<std::uint32_t>(chunk->payload.size());
    transmit(requester, chunk);
    if (more) stream_read_chunk(request, requester, next);
  });
}

}  // namespace freeflow::rdma
