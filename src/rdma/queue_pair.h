// Reliable-connected queue pair. Posting a work request costs the caller a
// small amount of host CPU (the verb syscall-free doorbell path); the NIC
// processor then chunks the message at the RDMA MTU and streams it, keeping
// everything pipelined without further host involvement.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "fabric/packet.h"
#include "rdma/verbs.h"

namespace freeflow::rdma {

class RdmaDevice;
struct RdmaChunk;

enum class QpState : std::uint8_t { reset, ready, error };

class QueuePair : public std::enable_shared_from_this<QueuePair> {
 public:
  QueuePair(RdmaDevice& device, QpNum num, CqPtr send_cq, CqPtr recv_cq, QpAttr attr);

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Connects to a remote QP (out-of-band exchange done by the CM/agent).
  Status connect(fabric::HostId remote_host, QpNum remote_qp);

  [[nodiscard]] QpState state() const noexcept { return state_; }
  [[nodiscard]] QpNum num() const noexcept { return num_; }
  [[nodiscard]] fabric::HostId remote_host() const noexcept { return remote_host_; }
  [[nodiscard]] QpNum remote_qp() const noexcept { return remote_qp_; }

  /// Posts a SEND/WRITE/READ. Charged rdma_post_ns on the caller's host
  /// CPU (`account`). Fails with resource_exhausted when the SQ is full.
  Status post_send(const SendWr& wr, sim::UsageAccount* account = nullptr);

  /// Posts a receive buffer for incoming SENDs.
  Status post_recv(const RecvWr& wr, sim::UsageAccount* account = nullptr);

  [[nodiscard]] std::size_t send_queue_depth() const noexcept { return sq_.size(); }
  [[nodiscard]] std::size_t recv_queue_depth() const noexcept { return rq_.size(); }

  [[nodiscard]] CqPtr send_cq() const noexcept { return send_cq_; }
  [[nodiscard]] CqPtr recv_cq() const noexcept { return recv_cq_; }
  [[nodiscard]] RdmaDevice& device() noexcept { return device_; }

  // ---- device-internal receive path ------------------------------------
  void rx_data_chunk(const std::shared_ptr<RdmaChunk>& chunk);
  void rx_ack(const std::shared_ptr<RdmaChunk>& chunk);
  void complete_send_error(std::uint64_t wr_id, Opcode op, WcStatus status);

 private:
  void pump();
  void emit_chunks(const SendWr& wr, std::uint64_t msg_id);
  void stream_chunk(std::uint64_t msg_id, std::uint32_t offset);
  void emit_read_request(const SendWr& wr, std::uint64_t msg_id);
  void finish_wr(const SendWr& wr, std::uint32_t byte_len, WcStatus status);
  void deliver_recv(const std::shared_ptr<RdmaChunk>& chunk);
  void send_ack(const std::shared_ptr<RdmaChunk>& chunk, WcStatus status);

  RdmaDevice& device_;
  QpNum num_;
  CqPtr send_cq_;
  CqPtr recv_cq_;
  QpAttr attr_;
  QpState state_ = QpState::reset;
  fabric::HostId remote_host_ = fabric::k_invalid_host;
  QpNum remote_qp_ = 0;

  std::deque<SendWr> sq_;
  std::deque<RecvWr> rq_;
  bool tx_active_ = false;
  std::uint64_t next_msg_id_ = 1;

  /// WRs fully transmitted, awaiting the remote ack (or read response).
  std::unordered_map<std::uint64_t, SendWr> outstanding_;

  /// Receive-side reassembly state per in-flight message.
  struct RxProgress {
    bool claimed = false;
    std::unique_ptr<RecvWr> recv_wr;
    std::uint32_t received = 0;
    WcStatus error = WcStatus::success;
  };
  std::unordered_map<std::uint64_t, RxProgress> rx_progress_;

  /// Chunks that arrived before a RecvWr was posted (infinite RNR-retry
  /// semantics, a simplification of RC's NAK/retry loop).
  std::deque<std::shared_ptr<RdmaChunk>> rnr_backlog_;

  friend class RdmaDevice;
};

}  // namespace freeflow::rdma
