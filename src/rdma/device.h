// RdmaDevice: the software NIC-resident RDMA engine bound to one host's
// fabric NIC. Owns the key/QP registries and the chunk receive path. Work
// posted to QPs is executed by the NIC processor resource, so host CPU
// stays nearly idle during transfers — the property the paper's Fig. 2(b/c)
// measures (host CPU low, NIC processor busy).
#pragma once

#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/slab_pool.h"
#include "fabric/host.h"
#include "fabric/packet.h"
#include "rdma/verbs.h"

namespace freeflow::rdma {

class QueuePair;

/// The wire format of one MTU chunk (or control message) between devices.
struct RdmaChunk final : fabric::PacketBody {
  enum class Kind : std::uint8_t { data, ack, read_request };

  Kind kind = Kind::data;
  Opcode opcode = Opcode::send;
  QpNum src_qp = 0;
  QpNum dst_qp = 0;
  std::uint64_t msg_id = 0;    ///< per-QP message sequence
  std::uint64_t wr_id = 0;     ///< echoed in acks for completion matching
  std::uint32_t total_len = 0;
  std::uint32_t chunk_offset = 0;
  bool last = false;
  WcStatus status = WcStatus::success;  ///< acks/NAKs carry the outcome
  Buffer payload;              ///< data chunks
  RemoteBuffer remote;         ///< write/read target
  std::uint32_t read_len = 0;  ///< read_request only
  /// NIC scheduling class; responses and acks echo the request's.
  std::uint32_t tenant = 0;
};

/// Acquires a fresh RdmaChunk from the process-wide slab pool.
inline std::shared_ptr<RdmaChunk> acquire_chunk() {
  static common::SlabPool<RdmaChunk> pool;
  return pool.make();
}

class RdmaDevice {
 public:
  explicit RdmaDevice(fabric::Host& host);

  RdmaDevice(const RdmaDevice&) = delete;
  RdmaDevice& operator=(const RdmaDevice&) = delete;

  /// Registers a memory region of `length` bytes; real backing storage.
  MrPtr reg_mr(std::size_t length);

  /// Creates a completion queue.
  CqPtr create_cq(std::size_t capacity = 4096);

  /// Creates an RC queue pair (send/recv completions may share a CQ).
  std::shared_ptr<QueuePair> create_qp(CqPtr send_cq, CqPtr recv_cq, QpAttr attr = {});

  /// Key/QP lookups (device-internal and for the connection manager).
  [[nodiscard]] MrPtr mr_by_rkey(Key rkey);
  [[nodiscard]] std::shared_ptr<QueuePair> qp(QpNum num);

  [[nodiscard]] fabric::Host& host() noexcept { return host_; }
  [[nodiscard]] sim::Resource& nic_proc() noexcept { return host_.nic().processor(); }

  /// Total payload bytes delivered into local MRs by remote operations.
  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return bytes_received_; }

  /// Transmits a chunk toward `dst_host` (possibly this host: NIC hairpin).
  void transmit(fabric::HostId dst_host, std::shared_ptr<RdmaChunk> chunk);

 private:
  void on_chunk(fabric::PacketPtr packet);
  void handle_data(const std::shared_ptr<RdmaChunk>& chunk);
  void handle_read_request(const std::shared_ptr<RdmaChunk>& chunk,
                           fabric::HostId requester);
  void stream_read_chunk(const std::shared_ptr<RdmaChunk>& request,
                         fabric::HostId requester, std::uint32_t offset);

  static std::uint32_t wire_bytes(const RdmaChunk& chunk) noexcept;

  fabric::Host& host_;
  Key next_key_ = 1;
  QpNum next_qp_ = 1;
  std::unordered_map<Key, MrPtr> mrs_;
  std::unordered_map<QpNum, std::shared_ptr<QueuePair>> qps_;
  std::uint64_t bytes_received_ = 0;

  friend class QueuePair;
};

}  // namespace freeflow::rdma
