// Software RDMA Verbs: the API surface mirrors libibverbs (protection
// domains, registered memory regions with lkey/rkey, completion queues,
// reliable-connected queue pairs, SEND/RECV/WRITE/READ work requests) so
// that FreeFlow's vNIC can intercept the very same call shapes the paper's
// containers issue. Execution is performed by the simulated NIC processor
// over the fabric; RoCE-style lossless delivery (PFC) is assumed, as on the
// paper's CX3 testbed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/resource.h"

namespace freeflow::rdma {

class RdmaDevice;
class QueuePair;

using QpNum = std::uint32_t;
using Key = std::uint32_t;

enum class Opcode : std::uint8_t { send, recv, write, read };

enum class WcStatus : std::uint8_t {
  success,
  local_length_error,
  remote_access_error,
  qp_error,
};

struct WorkCompletion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::send;
  WcStatus status = WcStatus::success;
  std::uint32_t byte_len = 0;
  QpNum qp_num = 0;
};

/// Registered memory: a real buffer addressable by (key, offset).
class MemoryRegion {
 public:
  MemoryRegion(Key lkey, Key rkey, std::size_t length)
      : lkey_(lkey), rkey_(rkey), data_(length) {}

  [[nodiscard]] Key lkey() const noexcept { return lkey_; }
  [[nodiscard]] Key rkey() const noexcept { return rkey_; }
  [[nodiscard]] std::size_t length() const noexcept { return data_.size(); }
  [[nodiscard]] Buffer& data() noexcept { return data_; }
  [[nodiscard]] const Buffer& data() const noexcept { return data_; }

  /// Bounds-checked views.
  [[nodiscard]] Result<MutableByteSpan> slice(std::size_t offset, std::size_t len) {
    if (offset + len > data_.size()) return out_of_range("MR slice out of bounds");
    return MutableByteSpan{data_.data() + offset, len};
  }

 private:
  Key lkey_;
  Key rkey_;
  Buffer data_;
};

using MrPtr = std::shared_ptr<MemoryRegion>;

/// Completion queue. Consumers either poll (paying per-completion CPU, like
/// busy-polling verbs apps) or register a notify callback (comp-channel
/// style, paying a wakeup latency).
class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Drains up to `out.size()` completions. Does NOT charge CPU — callers
  /// that model an application loop should charge rdma_poll_ns per entry.
  std::size_t poll(std::span<WorkCompletion> out);

  [[nodiscard]] std::size_t depth() const noexcept { return entries_.size(); }
  [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

  /// Comp-channel: invoked (once per push) when a completion arrives.
  void set_notify(std::function<void()> cb) { notify_ = std::move(cb); }

  /// Device-internal.
  void push(const WorkCompletion& wc);

 private:
  std::size_t capacity_;
  std::deque<WorkCompletion> entries_;
  std::function<void()> notify_;
  bool overflowed_ = false;
};

using CqPtr = std::shared_ptr<CompletionQueue>;

struct LocalBuffer {
  MrPtr mr;
  std::size_t offset = 0;
  std::size_t length = 0;
};

struct RemoteBuffer {
  Key rkey = 0;
  std::size_t offset = 0;
};

struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::send;  ///< send, write or read
  LocalBuffer local;
  RemoteBuffer remote;  ///< write/read only
  bool signaled = true;
  /// Traffic class stamped on the emitted chunks (0 = inherit QpAttr's).
  std::uint32_t tenant = 0;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  LocalBuffer local;
};

struct QpAttr {
  std::uint32_t max_send_wr = 256;
  std::uint32_t max_recv_wr = 256;
  /// Default traffic class for every WR posted on the QP (per-stream RC QPs
  /// belong to exactly one container, so one class per QP fits them).
  std::uint32_t tenant = 0;
};

}  // namespace freeflow::rdma
