#include "rdma/verbs.h"

namespace freeflow::rdma {

std::size_t CompletionQueue::poll(std::span<WorkCompletion> out) {
  std::size_t n = 0;
  while (n < out.size() && !entries_.empty()) {
    out[n++] = entries_.front();
    entries_.pop_front();
  }
  return n;
}

void CompletionQueue::push(const WorkCompletion& wc) {
  if (entries_.size() >= capacity_) {
    overflowed_ = true;  // real CQs overrun into device error; we latch a flag
    return;
  }
  entries_.push_back(wc);
  if (notify_) {
    auto handler = notify_;  // consumers may re-arm or clear from inside
    handler();
  }
}

}  // namespace freeflow::rdma
