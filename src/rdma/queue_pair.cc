#include "rdma/queue_pair.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "rdma/device.h"

namespace freeflow::rdma {

QueuePair::QueuePair(RdmaDevice& device, QpNum num, CqPtr send_cq, CqPtr recv_cq,
                     QpAttr attr)
    : device_(device),
      num_(num),
      send_cq_(std::move(send_cq)),
      recv_cq_(std::move(recv_cq)),
      attr_(attr) {
  FF_CHECK(send_cq_ != nullptr && recv_cq_ != nullptr);
}

Status QueuePair::connect(fabric::HostId remote_host, QpNum remote_qp) {
  if (state_ == QpState::error) return failed_precondition("QP in error state");
  remote_host_ = remote_host;
  remote_qp_ = remote_qp;
  state_ = QpState::ready;
  return ok_status();
}

Status QueuePair::post_send(const SendWr& wr, sim::UsageAccount* account) {
  if (state_ != QpState::ready) return failed_precondition("QP not connected");
  if (sq_.size() + outstanding_.size() >= attr_.max_send_wr) {
    return resource_exhausted("send queue full");
  }
  if (wr.local.mr == nullptr ||
      wr.local.offset + wr.local.length > wr.local.mr->length()) {
    return invalid_argument("local buffer out of MR bounds");
  }
  device_.host().cpu().submit(device_.host().cost_model().rdma_post_ns, nullptr, account);
  sq_.push_back(wr);
  pump();
  return ok_status();
}

Status QueuePair::post_recv(const RecvWr& wr, sim::UsageAccount* account) {
  if (rq_.size() >= attr_.max_recv_wr) return resource_exhausted("recv queue full");
  if (wr.local.mr == nullptr ||
      wr.local.offset + wr.local.length > wr.local.mr->length()) {
    return invalid_argument("local buffer out of MR bounds");
  }
  device_.host().cpu().submit(device_.host().cost_model().rdma_post_ns, nullptr, account);
  rq_.push_back(wr);
  // Drain chunks that beat the receive posting (RNR retry semantics); a
  // chunk still lacking a buffer re-queues itself in order.
  if (!rnr_backlog_.empty()) {
    std::deque<std::shared_ptr<RdmaChunk>> pending;
    pending.swap(rnr_backlog_);
    for (auto& chunk : pending) rx_data_chunk(chunk);
  }
  return ok_status();
}

void QueuePair::pump() {
  if (tx_active_ || sq_.empty()) return;
  tx_active_ = true;
  const SendWr wr = sq_.front();
  sq_.pop_front();
  const std::uint64_t msg_id = next_msg_id_++;
  outstanding_.emplace(msg_id, wr);
  if (wr.opcode == Opcode::read) {
    emit_read_request(wr, msg_id);
  } else {
    emit_chunks(wr, msg_id);
  }
}

void QueuePair::emit_read_request(const SendWr& wr, std::uint64_t msg_id) {
  auto req = acquire_chunk();
  req->kind = RdmaChunk::Kind::read_request;
  req->opcode = Opcode::read;
  req->src_qp = num_;
  req->dst_qp = remote_qp_;
  req->msg_id = msg_id;
  req->wr_id = wr.wr_id;
  req->remote = wr.remote;
  req->read_len = static_cast<std::uint32_t>(wr.local.length);
  req->tenant = wr.tenant != 0 ? wr.tenant : attr_.tenant;

  const auto& m = device_.host().cost_model();
  auto self = shared_from_this();
  device_.nic_proc().submit(m.nic_pkt_fixed_ns, [self, req]() {
    self->device_.transmit(self->remote_host_, req);
    self->tx_active_ = false;
    self->pump();
  });
}

void QueuePair::emit_chunks(const SendWr& wr, std::uint64_t msg_id) {
  (void)wr;  // the WR is read back from outstanding_ so chunk events stay small
  stream_chunk(msg_id, 0);
}

// One MTU chunk per call; the NIC-processor completion re-invokes for the
// next offset. The pending event holds only a shared self — no callback ever
// owns itself, so a QP's ownership never cycles (teardown protocol).
void QueuePair::stream_chunk(std::uint64_t msg_id, std::uint32_t offset) {
  auto it = outstanding_.find(msg_id);
  if (it == outstanding_.end()) return;  // errored out mid-stream
  const SendWr& wr = it->second;
  const auto& m = device_.host().cost_model();
  const std::uint32_t mtu = m.rdma_mtu_bytes;
  const auto total = static_cast<std::uint32_t>(wr.local.length);

  const std::uint32_t n = total == 0 ? 0 : std::min(mtu, total - offset);
  auto chunk = acquire_chunk();
  chunk->kind = RdmaChunk::Kind::data;
  chunk->opcode = wr.opcode;
  chunk->src_qp = num_;
  chunk->dst_qp = remote_qp_;
  chunk->msg_id = msg_id;
  chunk->wr_id = wr.wr_id;
  chunk->total_len = total;
  chunk->chunk_offset = offset;
  chunk->last = offset + n >= total;
  chunk->tenant = wr.tenant != 0 ? wr.tenant : attr_.tenant;
  if (n > 0) {
    chunk->payload = Buffer(wr.local.mr->data().data() + wr.local.offset + offset, n);
  }
  if (wr.opcode == Opcode::write) chunk->remote = wr.remote;

  // DMA-read of the source buffer.
  const double bus = m.nic_dma_bus_bytes_factor * static_cast<double>(n);
  if (bus > 0) device_.host().membus().submit(bus, nullptr);

  auto self = shared_from_this();
  device_.nic_proc().submit(m.nic_pkt_cost(n), [self, chunk, msg_id, offset, n]() {
    const bool more = !chunk->last;
    self->device_.transmit(self->remote_host_, chunk);
    if (more) {
      self->stream_chunk(msg_id, offset + n);
    } else {
      self->tx_active_ = false;
      self->pump();
    }
  });
}

void QueuePair::rx_data_chunk(const std::shared_ptr<RdmaChunk>& chunk) {
  // A chunk can race QP setup (the CM hands out our number before connect()
  // runs, and numbers recycle across upgrade churn) and land on a QP that
  // was never connected. It cannot be acked — there is no remote to address
  // — and real RC silently discards traffic for a QP outside RTR/RTS.
  if (state_ == QpState::reset) return;
  switch (chunk->opcode) {
    case Opcode::send: {
      auto& prog = rx_progress_[chunk->msg_id];
      if (prog.recv_wr == nullptr && !prog.claimed) {
        if (rq_.empty()) {
          rnr_backlog_.push_back(chunk);
          return;
        }
        prog.claimed = true;
        prog.recv_wr = std::make_unique<RecvWr>(rq_.front());
        rq_.pop_front();
        if (chunk->total_len > prog.recv_wr->local.length) {
          prog.error = WcStatus::local_length_error;
        }
      }
      if (prog.error == WcStatus::success && !chunk->payload.empty()) {
        auto dst = prog.recv_wr->local.mr->slice(
            prog.recv_wr->local.offset + chunk->chunk_offset, chunk->payload.size());
        FF_CHECK(dst.is_ok());
        std::memcpy(dst->data(), chunk->payload.data(), chunk->payload.size());
      }
      prog.received += static_cast<std::uint32_t>(chunk->payload.size());
      if (chunk->last) {
        if (prog.error == WcStatus::success && prog.received != chunk->total_len) {
          // Earlier chunks were dropped (RDMA engine bounced mid-message).
          // Real RC tracks PSN continuity, so a receive with a hole can
          // never complete successfully — treat the message as lost in the
          // fabric: no completion, no ack, and the posted buffer goes back
          // for the next message. Recovery belongs to the layer above.
          rq_.push_front(*prog.recv_wr);
          rx_progress_.erase(chunk->msg_id);
          break;
        }
        WorkCompletion wc;
        wc.wr_id = prog.recv_wr->wr_id;
        wc.opcode = Opcode::recv;
        wc.status = prog.error;
        wc.byte_len = chunk->total_len;
        wc.qp_num = num_;
        recv_cq_->push(wc);
        send_ack(chunk, prog.error);
        rx_progress_.erase(chunk->msg_id);
      }
      break;
    }
    case Opcode::write: {
      auto& prog = rx_progress_[chunk->msg_id];
      if (prog.error == WcStatus::success) {
        MrPtr mr = device_.mr_by_rkey(chunk->remote.rkey);
        if (mr == nullptr ||
            chunk->remote.offset + chunk->chunk_offset + chunk->payload.size() >
                mr->length()) {
          prog.error = WcStatus::remote_access_error;
        } else if (!chunk->payload.empty()) {
          auto dst = mr->slice(chunk->remote.offset + chunk->chunk_offset,
                               chunk->payload.size());
          std::memcpy(dst->data(), chunk->payload.data(), chunk->payload.size());
        }
      }
      if (chunk->last) {
        send_ack(chunk, prog.error);
        rx_progress_.erase(chunk->msg_id);
      }
      break;
    }
    case Opcode::read: {
      // Read response: fill the requester-side buffer of the pending WR.
      auto it = outstanding_.find(chunk->msg_id);
      if (it == outstanding_.end()) return;
      const SendWr& wr = it->second;
      if (!chunk->payload.empty()) {
        auto dst = wr.local.mr->slice(wr.local.offset + chunk->chunk_offset,
                                      chunk->payload.size());
        FF_CHECK(dst.is_ok());
        std::memcpy(dst->data(), chunk->payload.data(), chunk->payload.size());
      }
      if (chunk->last) {
        finish_wr(wr, chunk->total_len, WcStatus::success);
        outstanding_.erase(it);
      }
      break;
    }
    case Opcode::recv:
      break;  // not a wire opcode
  }
}

void QueuePair::rx_ack(const std::shared_ptr<RdmaChunk>& chunk) {
  auto it = outstanding_.find(chunk->msg_id);
  if (it == outstanding_.end()) return;
  finish_wr(it->second, static_cast<std::uint32_t>(it->second.local.length), chunk->status);
  outstanding_.erase(it);
}

void QueuePair::finish_wr(const SendWr& wr, std::uint32_t byte_len, WcStatus status) {
  if (status != WcStatus::success) state_ = QpState::error;
  if (!wr.signaled && status == WcStatus::success) return;
  WorkCompletion wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = wr.opcode;
  wc.status = status;
  wc.byte_len = byte_len;
  wc.qp_num = num_;
  send_cq_->push(wc);
}

void QueuePair::send_ack(const std::shared_ptr<RdmaChunk>& chunk, WcStatus status) {
  auto ack = acquire_chunk();
  ack->kind = RdmaChunk::Kind::ack;
  ack->opcode = chunk->opcode;
  ack->src_qp = num_;
  ack->dst_qp = chunk->src_qp;
  ack->msg_id = chunk->msg_id;
  ack->wr_id = chunk->wr_id;
  ack->status = status;
  ack->tenant = chunk->tenant;
  device_.transmit(remote_host_, ack);
}

void QueuePair::complete_send_error(std::uint64_t wr_id, Opcode op, WcStatus status) {
  state_ = QpState::error;
  WorkCompletion wc;
  wc.wr_id = wr_id;
  wc.opcode = op;
  wc.status = status;
  wc.qp_num = num_;
  send_cq_->push(wc);
}

}  // namespace freeflow::rdma
