#include "agent/relay.h"

namespace freeflow::agent {

Buffer make_record(const RelayHeader& header, ByteSpan fragment) {
  Buffer record(RelayHeader::k_size + fragment.size());
  header.encode(record.data());
  if (!fragment.empty()) {
    std::memcpy(record.data() + RelayHeader::k_size, fragment.data(), fragment.size());
  }
  return record;
}

Result<ParsedRecord> parse_record(ByteSpan record) {
  if (record.size() < RelayHeader::k_size) {
    return invalid_argument("relay record shorter than header");
  }
  ParsedRecord out;
  out.header = RelayHeader::decode(record.data());
  out.fragment = record.subspan(RelayHeader::k_size);
  if (out.header.frag_offset + out.fragment.size() > out.header.total_len) {
    return invalid_argument("relay fragment exceeds message length");
  }
  return out;
}

}  // namespace freeflow::agent
