// The per-host FreeFlow network agent (paper §3.2): brokers shared-memory
// channels between local containers, and relays inter-host container
// traffic over agent-to-agent trunks (RDMA when the NICs allow it, DPDK or
// kernel TCP otherwise). Containers never touch the physical NIC.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "agent/channel.h"
#include "agent/relay.h"
#include "agent/trunk.h"
#include "common/rng.h"
#include "dpdk/pmd.h"
#include "sim/event_loop.h"
#include "shm/region.h"
#include "orchestrator/network_orchestrator.h"
#include "rdma/device.h"
#include "tcpstack/modes.h"
#include "tcpstack/network.h"
#include "telemetry/telemetry.h"

namespace freeflow::agent {

class AgentFabric;

class Agent {
 public:
  /// Invoked when a peer opens a channel toward a local container.
  using IncomingFn = std::function<void(orch::ContainerId src, ChannelPtr)>;
  using EstablishFn = std::function<void(Result<ChannelPtr>)>;

  Agent(AgentFabric& fabric, fabric::Host& host);
  /// Cancels the lane-health monitor and detaches the NIC drop hook.
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// The core library registers each local container here.
  void register_container(orch::ContainerId id, IncomingFn on_incoming);
  void unregister_container(orch::ContainerId id);

  /// Opens a channel from local container `src` to container `dst` using
  /// the orchestrator-chosen `transport`. Asynchronous: trunk setup and the
  /// cross-agent handshake ride the control plane.
  void establish(orch::ContainerId src, orch::ContainerId dst,
                 orch::Transport transport, EstablishFn done);

  [[nodiscard]] fabric::Host& host() noexcept { return host_; }
  [[nodiscard]] sim::UsageAccount& account() noexcept { return account_; }
  [[nodiscard]] AgentFabric& fabric() noexcept { return fabric_; }

  /// Lane-relay-internal: fragments `message` into relay records and pushes
  /// them down the trunk toward `peer_host`. Routing fields are passed by
  /// value so the relay outlives the endpoint it was wired for.
  void relay_outbound(orch::ContainerId src, orch::ContainerId dst,
                      fabric::HostId peer_host, std::uint64_t channel_id,
                      orch::Transport transport, Buffer&& message);

  /// Trunk-internal: a record arrived from a peer agent.
  void dispatch_record(Buffer&& record);

  /// Channel-teardown: forgets the endpoint and its reassembly state. The
  /// registry only ever holds weak references — the conduit owns the
  /// endpoint — so this is bookkeeping, not destruction.
  void release_channel(std::uint64_t channel_id);

  /// Live channel count (weak entries pruned); teardown-test introspection.
  [[nodiscard]] std::size_t endpoint_count();

  /// True when the trunk toward `peer` can absorb more records (the
  /// channel-level writable() signal ANDs this in).
  [[nodiscard]] bool trunk_writable(fabric::HostId peer, orch::Transport transport) const;

  /// A trunk drained: re-signal writability on every endpoint.
  void notify_space();

  [[nodiscard]] std::uint64_t records_relayed() const noexcept { return records_relayed_; }

  // ---- fault tolerance --------------------------------------------------
  /// Freezes the agent process: inbound records and outbound relays buffer
  /// instead of flowing, and no heartbeats are sent (so a long pause looks
  /// like agent death to peers). Resume replays the buffers in order.
  void set_paused(bool paused);
  [[nodiscard]] bool paused() const noexcept { return paused_; }

  /// Retires the trunk toward (`peer`, `transport`), fails every channel
  /// endpoint riding it (conduits then fail over), and reports the loss to
  /// the orchestrator. Idempotent once the trunk is gone.
  void declare_lane_failed(fabric::HostId peer, orch::Transport transport);
  [[nodiscard]] std::uint64_t lanes_failed() const noexcept { return lanes_failed_; }

  /// True once the trunk toward (`peer`, `transport`) is fully established
  /// (monitored by the heartbeat clock) — pending half-trunks mid-handshake
  /// return false. Test/bench introspection.
  [[nodiscard]] bool trunk_established(fabric::HostId peer,
                                       orch::Transport transport) const;
  /// True while a setup (any attempt of it) is in flight for the key.
  [[nodiscard]] bool setup_in_flight(fabric::HostId peer,
                                     orch::Transport transport) const;

  /// The host's RDMA engine (created on first use). Exposed so the stream
  /// adapter (src/stream) can carve per-stream RC QPs out of the same NIC
  /// the agent trunks ride — TSoR-style sockets-over-RDMA.
  rdma::RdmaDevice& rdma_device();

 private:
  friend class AgentFabric;

  struct TrunkKey {
    fabric::HostId peer;
    orch::Transport transport;
    auto operator<=>(const TrunkKey&) const = default;
  };

  /// One attempt's completion: the built trunk, or why it failed. The
  /// shared_ptr (not a raw Trunk*) lets the retry driver adopt-or-retire the
  /// result after checking the attempt is still the live generation.
  using SetupDoneFn = std::function<void(Result<std::shared_ptr<Trunk>>)>;

  void establish_shm(orch::ContainerId src, orch::ContainerId dst, EstablishFn done);
  void establish_remote(orch::ContainerId src, orch::ContainerId dst,
                        fabric::HostId dst_host, orch::Transport transport,
                        EstablishFn done);
  /// Gets or builds the trunk to `peer`; `ready` fires when usable (or with
  /// the terminal error once the retry budget is spent). Opposite-direction
  /// and repeated requests for the same key join the in-flight setup as
  /// waiters — one establishment per (host pair, transport) at a time.
  void with_trunk(fabric::HostId peer, orch::Transport transport,
                  std::function<void(Result<Trunk*>)> ready);
  /// One handshake attempt each; establishment/retry is driven by
  /// start_setup_attempt / on_setup_result.
  void setup_rdma_trunk(fabric::HostId peer, SetupDoneFn done);
  void setup_dpdk_trunk(fabric::HostId peer, SetupDoneFn done);
  void setup_tcp_trunk(fabric::HostId peer, SetupDoneFn done);

  /// Launches the next attempt for the key's in-flight setup (arming the
  /// per-attempt watchdog), and the attempt's single completion point: a
  /// stale generation is ignored, success establishes the trunk and fires
  /// the waiters, a retryable failure schedules backoff, anything else (or
  /// a spent budget) fails the waiters terminally.
  void start_setup_attempt(const TrunkKey& key);
  void on_setup_result(const TrunkKey& key, std::uint64_t gen,
                       Result<std::shared_ptr<Trunk>> result);
  /// Converts an external event (lane death mid-handshake) into a failure
  /// of the key's current attempt. No-op without an in-flight setup.
  void fail_setup_attempt(const TrunkKey& key, Status error);

  dpdk::DpdkPort& dpdk_port();

  /// Single point of trunk registration: wires keyed record/drain callbacks
  /// and, once `established`, starts the lane's rx clock and (re)arms the
  /// health monitor. Idempotent-or-merge, never clobber: if a different
  /// trunk already holds the key, the incumbent wins and the newcomer goes
  /// to the graveyard. Returns the surviving trunk.
  std::shared_ptr<Trunk> adopt_trunk(const TrunkKey& key, std::shared_ptr<Trunk> trunk,
                                     bool established);
  /// Moves the key's trunk (pending or established) to the graveyard and
  /// fails the endpoints riding it. Local bookkeeping only — no mirror to
  /// the peer, no orchestrator report (declare_lane_failed adds those).
  void retire_trunk_half(const TrunkKey& key);
  /// Retires the key's trunk only if it never established (a failed
  /// attempt's half-built half-trunk).
  void abandon_pending_trunk(const TrunkKey& key);
  /// Marks rx activity on a monitored lane (no-op for retired lanes).
  void note_lane_rx(const TrunkKey& key);
  void arm_monitor();
  void monitor_tick();
  void send_heartbeat(const TrunkKey& key);
  void fail_endpoints_on(fabric::HostId peer, orch::Transport transport);

 public:
  /// The host's /dev/shm model; lanes are backed by permissioned regions.
  [[nodiscard]] shm::RegionRegistry& shm_registry() noexcept { return shm_registry_; }

 private:

  /// Peer-agent request: create the B-side endpoint for a channel.
  void accept_channel(orch::ContainerId src, orch::ContainerId dst,
                      std::uint64_t channel_id, orch::Transport transport,
                      fabric::HostId src_host, std::function<void(Status)> reply);

  std::shared_ptr<shm::ShmLane> make_lane(sim::UsageAccount* sender,
                                          sim::UsageAccount* receiver);
  sim::UsageAccount* container_account(orch::ContainerId id);
  /// Hangs the outbound relay on the endpoint's container->agent lane.
  void wire_outbound(const std::shared_ptr<RemoteChannelEndpoint>& ep);

  AgentFabric& fabric_;
  fabric::Host& host_;
  sim::UsageAccount account_;

  std::unordered_map<orch::ContainerId, IncomingFn> containers_;
  /// Every trunk the agent knows by key — pending halves mid-handshake
  /// included (so an opposite-direction setup can find and join them).
  /// "Established" is tracked by lane_last_rx_ membership: only established
  /// lanes are heartbeat-monitored, so a slow handshake with backoff is
  /// never declared dead by its own agent.
  std::map<TrunkKey, std::shared_ptr<Trunk>> trunks_;

  /// In-flight establishment per key: the waiters to fire, the retry
  /// budget's position, and the generation stamp that invalidates late
  /// callbacks from abandoned attempts.
  struct TrunkSetup {
    std::vector<std::function<void(Result<Trunk*>)>> waiters;
    int attempt = 0;          ///< attempts started (1-based once running)
    std::uint64_t gen = 0;    ///< bumped at attempt start and on failure
    SimTime started_at = 0;   ///< first attempt's start (latency histogram)
    Status last_error;
    sim::EventHandle watchdog;
    sim::EventHandle backoff;
  };
  std::map<TrunkKey, TrunkSetup> setups_;
  /// Weak: the conduit (via its ChannelPtr) owns the endpoint; this map is
  /// only the inbound-record routing table, so agent registration can never
  /// keep a closed channel alive (ownership stays a DAG).
  std::unordered_map<std::uint64_t, std::weak_ptr<RemoteChannelEndpoint>> endpoints_;

  /// Strong co-ownership of each channel's container->agent lane. The relay
  /// hook lives on this lane, and records already queued when the conduit
  /// destroys its endpoint — the closing bye among them — must still drain
  /// to the trunk. Dropped once the channel is released AND the ring is
  /// empty (release_channel, or the relay hook after the last record).
  std::unordered_map<std::uint64_t, std::shared_ptr<shm::ShmLane>> outbound_lanes_;

  /// Erases the channel's outbound lane if it is released and drained.
  void drop_drained_lane(std::uint64_t channel_id);

  /// Reassembly of fragmented inbound messages: (channel, msg_seq) -> state.
  struct Reassembly {
    Buffer data;
    std::size_t received = 0;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Reassembly> rx_;

  std::unique_ptr<rdma::RdmaDevice> rdma_device_;
  std::unique_ptr<dpdk::DpdkPort> dpdk_port_;
  shm::RegionRegistry shm_registry_;
  std::uint64_t records_relayed_ = 0;
  std::uint64_t next_msg_seq_ = 1;

  // ---- lane health ------------------------------------------------------
  /// Last time any record (heartbeats included) arrived on each live lane.
  std::map<TrunkKey, SimTime> lane_last_rx_;
  /// Failed trunks are retired here, not freed: their pump loops (RDMA
  /// polling especially) hold raw pointers in already-scheduled events.
  std::vector<std::shared_ptr<Trunk>> retired_trunks_;
  sim::EventHandle monitor_;
  bool monitor_armed_ = false;
  std::uint64_t lanes_failed_ = 0;

  /// Deterministic per-agent jitter source for retry backoff.
  Rng retry_rng_;

  // Telemetry (wired in the ctor from the cluster hub; the registry-owned
  // metrics safely outlive this agent).
  telemetry::Counter* ctr_heartbeats_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_lanes_failed_ = telemetry::Counter::discard();
  telemetry::Gauge* gauge_graveyard_ = telemetry::Gauge::discard();
  telemetry::Counter* ctr_setup_retries_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_setup_races_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_trunks_retired_ = telemetry::Counter::discard();
  Histogram* hist_setup_latency_ = telemetry::discard_histogram();

  // ---- pause (fault injection) ------------------------------------------
  bool paused_ = false;
  std::vector<Buffer> paused_rx_;
  struct PausedRelay {
    orch::ContainerId src;
    orch::ContainerId dst;
    fabric::HostId peer_host;
    std::uint64_t channel_id;
    orch::Transport transport;
    Buffer message;
  };
  std::vector<PausedRelay> paused_tx_;

  /// Liveness token for callbacks registered on longer-lived objects (the
  /// NIC drop hook, deferred lane-failure declarations).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Deployment-wide agent wiring: one agent per host, the shared underlay
/// TCP network for TCP trunks, and channel-id allocation.
class AgentFabric {
 public:
  AgentFabric(orch::NetworkOrchestrator& orchestrator, AgentConfig config = {});

  AgentFabric(const AgentFabric&) = delete;
  AgentFabric& operator=(const AgentFabric&) = delete;

  /// Gets (or starts) the agent on `host`.
  Agent& agent_on(fabric::HostId host);

  [[nodiscard]] orch::NetworkOrchestrator& orchestrator() noexcept { return orchestrator_; }
  [[nodiscard]] const AgentConfig& config() const noexcept { return config_; }
  [[nodiscard]] AgentConfig& mutable_config() noexcept { return config_; }
  [[nodiscard]] fabric::Cluster& cluster() noexcept;
  [[nodiscard]] sim::EventLoop& loop() noexcept;
  [[nodiscard]] tcp::TcpNetwork& underlay() noexcept { return underlay_net_; }

  [[nodiscard]] std::uint64_t next_channel_id() noexcept { return next_channel_id_++; }

  /// The host-network IP an agent listens on (host mode): 192.168.0.(id+1).
  [[nodiscard]] static tcp::Ipv4Addr agent_ip(fabric::HostId host) noexcept {
    return tcp::Ipv4Addr(192, 168, 0, static_cast<std::uint8_t>(host + 1));
  }
  [[nodiscard]] static fabric::HostId host_of_agent_ip(tcp::Ipv4Addr ip) noexcept {
    return (ip.value() & 0xFF) - 1;
  }

 private:
  orch::NetworkOrchestrator& orchestrator_;
  AgentConfig config_;
  tcp::HostModeBuilder underlay_builder_;
  tcp::TcpNetwork underlay_net_;
  std::unordered_map<fabric::HostId, std::unique_ptr<Agent>> agents_;
  std::uint64_t next_channel_id_ = 1;
};

}  // namespace freeflow::agent
