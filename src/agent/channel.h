// Transport-agnostic duplex message channels between two containers. The
// core library's virtual NIC sits on top of exactly this interface, which
// is how the actual data-plane mechanism stays invisible to applications.
//
// send() never rejects for backpressure: endpoints queue internally and
// drain as ring space frees. `writable()` is the advisory signal sources
// should pace on (closed-loop workloads never build a queue).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "orchestrator/container.h"
#include "orchestrator/network_orchestrator.h"
#include "shm/channel.h"
#include "shm/region.h"

namespace freeflow::agent {

class Agent;

class Channel {
 public:
  using DeliverFn = std::function<void(Buffer&&)>;

  virtual ~Channel() = default;

  /// Sends one message; fails only if the channel is closed.
  virtual Status send(Buffer message) = 0;

  /// False while the underlying ring is full (advisory pacing signal).
  [[nodiscard]] virtual bool writable() const noexcept = 0;

  virtual void set_on_message(DeliverFn cb) = 0;
  /// Invoked when the channel transitions back to writable.
  virtual void set_on_space(std::function<void()> cb) = 0;

  [[nodiscard]] virtual orch::Transport transport() const noexcept = 0;
  [[nodiscard]] virtual orch::ContainerId peer() const noexcept = 0;

  /// After close() the endpoint drops all traffic (used on migration).
  virtual void close() noexcept = 0;
  [[nodiscard]] virtual bool closed() const noexcept = 0;

  /// Failure observer: the agent fails a channel when the lane backing it
  /// dies (NIC fault, trunk declared dead). Distinct from close(): the
  /// owner is expected to detach and splice onto a fallback transport.
  void set_on_failed(std::function<void()> cb) { on_failed_ = std::move(cb); }
  void fail() {
    // Move-out first: the observer typically detaches this channel.
    auto cb = std::move(on_failed_);
    on_failed_ = nullptr;
    if (cb) cb();
  }

 private:
  std::function<void()> on_failed_;
};

using ChannelPtr = std::shared_ptr<Channel>;

/// One endpoint's view of an shm lane with an internal overflow queue.
class LaneSender {
 public:
  explicit LaneSender(std::shared_ptr<shm::ShmLane> lane);
  ~LaneSender() { detach(); }

  LaneSender(const LaneSender&) = delete;
  LaneSender& operator=(const LaneSender&) = delete;

  /// Queues or sends; drains automatically as the ring frees.
  void send(Buffer message);
  [[nodiscard]] bool writable() const noexcept;
  void set_on_space(std::function<void()> cb) { user_on_space_ = std::move(cb); }
  /// Re-fires the user's space callback (trunk-drained notifications).
  void poke() {
    if (user_on_space_) user_on_space_();
  }
  /// Teardown: unhooks this sender from the (shared, possibly longer-lived)
  /// lane and drops queued overflow and the user callback.
  void detach() noexcept;
  [[nodiscard]] shm::ShmLane& lane() noexcept { return *lane_; }

 private:
  void drain();

  std::shared_ptr<shm::ShmLane> lane_;
  std::deque<Buffer> overflow_;
  std::function<void()> user_on_space_;
};

/// Intra-host endpoint: a pair of shm lanes directly between the two
/// containers (the agent only brokers setup — the data plane is pure
/// shared memory, paper Fig. 7).
class ShmChannelEndpoint final : public Channel {
 public:
  ShmChannelEndpoint(orch::ContainerId peer, std::shared_ptr<shm::ShmLane> tx,
                     std::shared_ptr<shm::ShmLane> rx);
  ~ShmChannelEndpoint() override;

  Status send(Buffer message) override;
  [[nodiscard]] bool writable() const noexcept override { return tx_.writable(); }
  void set_on_message(DeliverFn cb) override;
  void set_on_space(std::function<void()> cb) override { tx_.set_on_space(std::move(cb)); }
  [[nodiscard]] orch::Transport transport() const noexcept override {
    return orch::Transport::shm;
  }
  [[nodiscard]] orch::ContainerId peer() const noexcept override { return peer_; }
  void close() noexcept override;
  [[nodiscard]] bool closed() const noexcept override { return closed_; }

  /// Ties the backing shm region's lifetime to this endpoint.
  void hold_region(std::shared_ptr<shm::Region> region) { region_ = std::move(region); }

 private:
  orch::ContainerId peer_;
  LaneSender tx_;
  std::shared_ptr<shm::ShmLane> rx_;
  std::shared_ptr<shm::Region> region_;
  bool closed_ = false;
};

/// Inter-host endpoint: container <-shm-> local agent <-trunk-> remote
/// agent <-shm-> container.
class RemoteChannelEndpoint final
    : public Channel,
      public std::enable_shared_from_this<RemoteChannelEndpoint> {
 public:
  RemoteChannelEndpoint(Agent& local_agent, orch::ContainerId self,
                        orch::ContainerId peer, fabric::HostId peer_host,
                        std::uint64_t channel_id, orch::Transport transport,
                        std::shared_ptr<shm::ShmLane> to_agent,
                        std::shared_ptr<shm::ShmLane> from_agent);
  ~RemoteChannelEndpoint() override;

  Status send(Buffer message) override;
  /// Writable only while both the container->agent ring has space AND the
  /// agent's trunk toward the peer host is uncongested — this propagates
  /// NIC-rate backpressure all the way to the application.
  [[nodiscard]] bool writable() const noexcept override;
  void set_on_message(DeliverFn cb) override;
  void set_on_space(std::function<void()> cb) override { tx_.set_on_space(std::move(cb)); }
  /// Agent-internal: trunk drained, re-signal writability.
  void poke_space() { tx_.poke(); }
  [[nodiscard]] orch::Transport transport() const noexcept override { return transport_; }
  [[nodiscard]] orch::ContainerId peer() const noexcept override { return peer_; }
  void close() noexcept override;
  [[nodiscard]] bool closed() const noexcept override { return closed_; }

  [[nodiscard]] std::uint64_t channel_id() const noexcept { return channel_id_; }
  [[nodiscard]] orch::ContainerId self() const noexcept { return self_; }
  [[nodiscard]] fabric::HostId peer_host() const noexcept { return peer_host_; }

  /// Agent-side: the container->agent lane the agent hangs its relay on.
  /// The relay wiring is owned by the lane, not this endpoint, so queued
  /// outbound (e.g. the closing bye) still drains after teardown.
  [[nodiscard]] const std::shared_ptr<shm::ShmLane>& outbound_lane() const noexcept {
    return to_agent_;
  }

  /// Agent-side: delivers a fully reassembled inbound message.
  void deliver_inbound(Buffer&& message);

 private:
  Agent& agent_;
  orch::ContainerId self_;
  orch::ContainerId peer_;
  fabric::HostId peer_host_;
  std::uint64_t channel_id_;
  orch::Transport transport_;
  LaneSender tx_;                             ///< container -> agent
  std::shared_ptr<shm::ShmLane> to_agent_;    ///< keep for receiver wiring
  std::shared_ptr<shm::ShmLane> from_agent_;  ///< agent -> container
  LaneSender inbound_;                        ///< agent-side sender on from_agent
  bool closed_ = false;
};

}  // namespace freeflow::agent
