// Trunks: the agent-to-agent bulk transports. One trunk per (host pair,
// mechanism); all container channels between the two hosts share it. The
// RDMA trunk is the paper's primary inter-host data plane; DPDK and
// host-mode TCP are the fallbacks the orchestrator picks when NICs are
// less capable.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dpdk/pmd.h"
#include "fabric/host.h"
#include "rdma/cm.h"
#include "rdma/device.h"
#include "rdma/queue_pair.h"
#include "sim/resource.h"
#include "tcpstack/network.h"

namespace freeflow::agent {

class Trunk {
 public:
  using RecordFn = std::function<void(Buffer&&)>;

  virtual ~Trunk() = default;

  /// Queues one relay record toward the peer agent. Trunks buffer
  /// internally; delivery order is preserved. `tenant` classifies the
  /// record for the NIC's per-tenant scheduler on kernel-bypass paths
  /// (0 = infrastructure class; the TCP trunk's byte stream interleaves
  /// records and stays unclassified).
  virtual void send(Buffer record, std::uint32_t tenant = 0) = 0;

  /// True while the trunk's internal queue is deep: senders should pause
  /// (this is what backpressures containers to the NIC's actual rate).
  [[nodiscard]] virtual bool congested() const noexcept { return false; }

  [[nodiscard]] virtual std::uint64_t records_sent() const noexcept = 0;

 protected:
  RecordFn on_record_;     ///< set by the owning agent pair
  std::function<void()> on_drained_;

  void maybe_drained() {
    if (!congested() && on_drained_) on_drained_();
  }

 public:
  void set_on_record(RecordFn cb) { on_record_ = std::move(cb); }
  void set_on_drained(std::function<void()> cb) { on_drained_ = std::move(cb); }

  static constexpr std::size_t k_congestion_records = 32;
};

/// RDMA trunk: a connected RC QP with a ring of send slots in a registered
/// MR and pre-posted receives. In zero-copy mode the payload bytes are
/// charged no agent-CPU copy (the shm block itself is registered, as in
/// the paper's Fig. 6 flow); copy mode is the ablation baseline.
class RdmaTrunk final : public Trunk {
 public:
  RdmaTrunk(rdma::RdmaDevice& device, sim::UsageAccount& account, bool zero_copy,
            std::size_t slot_bytes, std::uint32_t slots);

  /// Call once on each side after create; exchanges QP numbers.
  [[nodiscard]] std::shared_ptr<rdma::QueuePair> qp() noexcept { return qp_; }
  void start(std::shared_ptr<rdma::QueuePair> remote_unused = nullptr);

  void send(Buffer record, std::uint32_t tenant = 0) override;
  [[nodiscard]] bool congested() const noexcept override {
    return queue_.size() > k_congestion_records;
  }
  [[nodiscard]] std::uint64_t records_sent() const noexcept override { return sent_; }

 private:
  struct QueuedRecord {
    Buffer record;
    std::uint32_t tenant = 0;
  };

  void pump();
  void schedule_poll();
  void poll_cqs();
  void repost_recv(std::uint32_t slot);

  rdma::RdmaDevice& device_;
  sim::UsageAccount& account_;
  bool zero_copy_;
  std::size_t slot_bytes_;
  std::uint32_t slots_;

  rdma::MrPtr send_mr_;
  rdma::MrPtr recv_mr_;
  rdma::CqPtr send_cq_;
  rdma::CqPtr recv_cq_;
  std::shared_ptr<rdma::QueuePair> qp_;

  std::vector<std::uint32_t> free_slots_;
  std::deque<QueuedRecord> queue_;
  bool poll_scheduled_ = false;
  std::uint64_t sent_ = 0;
};

/// DPDK trunk: records ride the shared per-host PMD port.
class DpdkTrunk final : public Trunk {
 public:
  DpdkTrunk(dpdk::DpdkPort& port, fabric::HostId peer);

  void send(Buffer record, std::uint32_t tenant = 0) override;
  [[nodiscard]] bool congested() const noexcept override {
    return port_.tx_queue_depth() > k_congestion_records;
  }
  [[nodiscard]] std::uint64_t records_sent() const noexcept override { return sent_; }

  /// The owning agent routes port messages here.
  void deliver(Buffer&& record) {
    if (on_record_) on_record_(std::move(record));
  }

 private:
  dpdk::DpdkPort& port_;
  fabric::HostId peer_;
  std::uint64_t sent_ = 0;
};

/// TCP trunk: a host-mode kernel TCP connection between the two agents,
/// with length-prefixed record framing on the byte stream.
class TcpTrunk final : public Trunk {
 public:
  explicit TcpTrunk(sim::EventLoop& loop) : loop_(loop) {}

  /// Attaches the established connection (either side).
  void attach(tcp::TcpConnection::Ptr conn);

  void send(Buffer record, std::uint32_t tenant = 0) override;
  [[nodiscard]] bool congested() const noexcept override {
    return queue_.size() > k_congestion_records;
  }
  [[nodiscard]] std::uint64_t records_sent() const noexcept override { return sent_; }
  [[nodiscard]] bool connected() const noexcept { return conn_ != nullptr; }

 private:
  void pump();
  void on_bytes(Buffer&& data);

  sim::EventLoop& loop_;
  tcp::TcpConnection::Ptr conn_;
  std::deque<Buffer> queue_;  ///< records waiting for the connection/window
  Buffer rx_accum_;
  std::uint64_t sent_ = 0;
};

}  // namespace freeflow::agent
