// Relay framing between FreeFlow agents: every container-to-container
// message crossing hosts is carried as one or more records, each a fixed
// header plus a payload fragment. Records are what the trunks (RDMA QP,
// DPDK port, agent TCP connection) actually move.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/units.h"
#include "orchestrator/container.h"

namespace freeflow::agent {

struct RelayHeader {
  orch::ContainerId src_container = 0;
  orch::ContainerId dst_container = 0;
  std::uint64_t channel = 0;   ///< fabric-wide channel id
  std::uint64_t msg_seq = 0;   ///< per-channel message counter
  std::uint32_t total_len = 0;
  std::uint32_t frag_offset = 0;

  static constexpr std::size_t k_size = 32;

  void encode(std::byte* out) const noexcept {
    std::memcpy(out + 0, &src_container, 4);
    std::memcpy(out + 4, &dst_container, 4);
    std::memcpy(out + 8, &channel, 8);
    std::memcpy(out + 16, &msg_seq, 8);
    std::memcpy(out + 24, &total_len, 4);
    std::memcpy(out + 28, &frag_offset, 4);
  }

  static RelayHeader decode(const std::byte* in) noexcept {
    RelayHeader h;
    std::memcpy(&h.src_container, in + 0, 4);
    std::memcpy(&h.dst_container, in + 4, 4);
    std::memcpy(&h.channel, in + 8, 8);
    std::memcpy(&h.msg_seq, in + 16, 8);
    std::memcpy(&h.total_len, in + 24, 4);
    std::memcpy(&h.frag_offset, in + 28, 4);
    return h;
  }

  [[nodiscard]] bool last_fragment(std::size_t frag_len) const noexcept {
    return frag_offset + frag_len >= total_len;
  }
};

/// Builds one record (header + fragment bytes).
Buffer make_record(const RelayHeader& header, ByteSpan fragment);

/// Splits a record back into header + fragment view.
struct ParsedRecord {
  RelayHeader header;
  ByteSpan fragment;
};
Result<ParsedRecord> parse_record(ByteSpan record);

/// Agent tuning knobs (ablation benchmarks sweep these).
struct AgentConfig {
  bool zero_copy = true;             ///< relay posts shm blocks as MRs directly
  std::size_t fragment_bytes = 256 * 1024;
  std::size_t lane_ring_bytes = 4 * 1024 * 1024;
  std::uint32_t rdma_slots = 32;     ///< in-flight records per RDMA trunk
  std::uint16_t tcp_port = 7777;     ///< agent-to-agent TCP service port

  /// Lane health monitoring: every interval the agent heartbeats each
  /// remote trunk and declares a lane dead after heartbeat_timeout_ns of
  /// rx silence. Default-on — the monitor runs as a maintenance event
  /// (EventLoop::schedule_maintenance), so it no longer keeps an idle loop
  /// alive. 0 disables monitoring. The timeout is sized to ride out benign
  /// multi-millisecond stalls (e.g. a paused-not-dead peer agent) while
  /// still detecting real lane death within ~10 ms of virtual time.
  SimDuration heartbeat_interval_ns = k_millisecond;
  SimDuration heartbeat_timeout_ns = 10 * k_millisecond;

  /// Trunk establishment retry budget (with_trunk / setup_*_trunk): transient
  /// setup failures — a lane dying mid-handshake, a setup race resolving
  /// against us, an attempt watchdog firing — degrade to delayed
  /// establishment with exponential backoff instead of a permanent
  /// `unavailable`. After the budget the caller sees one terminal error.
  RetryPolicy trunk_retry;
  /// Base seed for the per-agent backoff-jitter Rng (xored with the host id,
  /// so agents jitter independently yet the whole run stays reproducible).
  std::uint64_t trunk_retry_seed = 0x7EE7F10017ULL;

  /// Control-plane shard count (host-partitioned; see DESIGN.md §12).
  /// Benches sweep 1/4/16; the default keeps small deployments realistic
  /// while still exercising cross-shard forwarding.
  int control_plane_shards = 4;
  /// Per-agent decision-cache bound: beyond this many (src, dst) entries
  /// the least-recently-used entry is evicted (selector/cache_evictions).
  std::size_t selector_cache_capacity = 4096;
};

}  // namespace freeflow::agent
