#include "agent/agent.h"

#include <algorithm>

#include "common/logging.h"
#include "fabric/control.h"

namespace freeflow::agent {

namespace {
constexpr std::uint32_t k_ctrl_bytes = 160;
}

// ---------------------------------------------------------------- AgentFabric

AgentFabric::AgentFabric(orch::NetworkOrchestrator& orchestrator, AgentConfig config)
    : orchestrator_(orchestrator),
      config_(config),
      underlay_builder_(cluster().cost_model()),
      underlay_net_(cluster().loop(), cluster().cost_model(), underlay_builder_) {}

fabric::Cluster& AgentFabric::cluster() noexcept {
  return orchestrator_.cluster_orch().cluster();
}

sim::EventLoop& AgentFabric::loop() noexcept { return cluster().loop(); }

Agent& AgentFabric::agent_on(fabric::HostId host) {
  auto it = agents_.find(host);
  if (it != agents_.end()) return *it->second;
  fabric::Host& h = cluster().host(host);
  const Status bound = underlay_builder_.addresses().add(agent_ip(host), h, nullptr);
  FF_CHECK(bound.is_ok());
  auto agent = std::make_unique<Agent>(*this, h);
  Agent& ref = *agent;
  agents_.emplace(host, std::move(agent));
  return ref;
}

// ---------------------------------------------------------------------- Agent

Agent::Agent(AgentFabric& fabric, fabric::Host& host)
    : fabric_(fabric), host_(host), account_("agent@" + host.name()) {
  fabric::install_control_rx(host_);
  tcp::WireHop::install_rx(host_);

  auto& metrics = fabric_.cluster().telemetry().metrics();
  const std::string prefix = "agent/" + std::to_string(host_.id()) + "/";
  ctr_heartbeats_ = &metrics.counter(prefix + "heartbeats_sent");
  ctr_lanes_failed_ = &metrics.counter(prefix + "lanes_failed");
  gauge_graveyard_ = &metrics.gauge(prefix + "graveyard");
  ctr_setup_retries_ = &metrics.counter(prefix + "trunk/setup_retries");
  ctr_setup_races_ = &metrics.counter(prefix + "trunk/setup_races_resolved");
  ctr_trunks_retired_ = &metrics.counter(prefix + "trunk/retired");
  hist_setup_latency_ = &metrics.histogram(prefix + "trunk/setup_latency_ns");

  retry_rng_.reseed(fabric_.config().trunk_retry_seed ^
                    (0x9E3779B97F4A7C15ULL * (host_.id() + 1)));

  // TCP trunk service: peer agents connect here when NICs lack bypass.
  // Under the single-dialer rule only the lower host id dials, so an
  // inbound connection always lands on the pair's higher id — where any
  // local trunk for the key is either the conn-less pending half of our own
  // in-flight setup (attach and complete it) or a fully established trunk
  // whose dialer abandoned its old connection and re-dialed (freshest
  // connection wins).
  const tcp::Endpoint ep{AgentFabric::agent_ip(host_.id()), fabric_.config().tcp_port};
  const Status listening =
      fabric_.underlay().listen(ep, [this](tcp::TcpConnection::Ptr conn) {
        const fabric::HostId peer =
            AgentFabric::host_of_agent_ip(conn->flow().remote.ip);
        const TrunkKey key{peer, orch::Transport::tcp_host};
        if (auto sit = setups_.find(key); sit != setups_.end()) {
          auto tit = trunks_.find(key);
          if (tit != trunks_.end()) {
            auto pending = std::static_pointer_cast<TcpTrunk>(tit->second);
            if (!pending->connected()) {
              pending->attach(std::move(conn));
              on_setup_result(key, sit->second.gen,
                              std::static_pointer_cast<Trunk>(pending));
            }
            return;  // duplicate SYN against a live setup: drop it
          }
          // Setup in backoff (no pending half right now): fall through and
          // adopt passively; the next attempt finds the established trunk.
        }
        if (trunks_.contains(key)) retire_trunk_half(key);
        auto trunk = std::make_shared<TcpTrunk>(host_.loop());
        trunk->attach(std::move(conn));
        adopt_trunk(key, std::move(trunk), /*established=*/true);
        if (auto sit = setups_.find(key); sit != setups_.end()) {
          on_setup_result(key, sit->second.gen, trunks_[key]);
        }
      });
  FF_CHECK(listening.is_ok());

  // Send-error-driven lane failure: a packet the sick NIC drops indicts that
  // transport's lanes immediately, well before any heartbeat times out. The
  // declaration is deferred one event — the drop fires mid-send, deep inside
  // trunk machinery that must not be retired under its own feet. Kernel TCP
  // frames are exempt (the stack retransmits through transient loss), and a
  // full link outage is the orchestrator's call, not ours.
  std::weak_ptr<bool> alive = alive_;
  host_.nic().set_on_drop([this, alive](fabric::PacketKind kind) {
    if (alive.expired()) return;
    orch::Transport transport;
    switch (kind) {
      case fabric::PacketKind::rdma_chunk:
        transport = orch::Transport::rdma;
        break;
      case fabric::PacketKind::dpdk_frame:
        transport = orch::Transport::dpdk;
        break;
      default:
        return;
    }
    host_.loop().schedule(0, [this, alive, transport]() {
      if (alive.expired()) return;
      std::vector<fabric::HostId> peers;
      for (const auto& [key, trunk] : trunks_) {
        if (key.transport == transport) peers.push_back(key.peer);
      }
      for (const fabric::HostId peer : peers) declare_lane_failed(peer, transport);
    });
  });
}

Agent::~Agent() {
  monitor_.cancel();
  for (auto& [key, setup] : setups_) {
    setup.watchdog.cancel();
    setup.backoff.cancel();
  }
  host_.nic().set_on_drop(nullptr);
}

void Agent::register_container(orch::ContainerId id, IncomingFn on_incoming) {
  containers_[id] = std::move(on_incoming);
}

void Agent::unregister_container(orch::ContainerId id) { containers_.erase(id); }

sim::UsageAccount* Agent::container_account(orch::ContainerId id) {
  auto c = fabric_.orchestrator().cluster_orch().container(id);
  return c == nullptr ? nullptr : &c->account();
}

std::shared_ptr<shm::ShmLane> Agent::make_lane(sim::UsageAccount* sender,
                                               sim::UsageAccount* receiver) {
  auto lane = std::make_shared<shm::ShmLane>(host_, fabric_.config().lane_ring_bytes);
  lane->set_sender_account(sender);
  lane->set_receiver_account(receiver);
  return lane;
}

void Agent::establish(orch::ContainerId src, orch::ContainerId dst,
                      orch::Transport transport, EstablishFn done) {
  auto& norch = fabric_.orchestrator();
  auto s = norch.cluster_orch().container(src);
  auto d = norch.cluster_orch().container(dst);
  if (s == nullptr || d == nullptr) {
    done(not_found("unknown container in channel request"));
    return;
  }
  // Enforcement point: isolation may only be traded among trusting
  // containers, whatever the caller asked for.
  if (!norch.trusted(*s, *d)) {
    done(permission_denied("containers " + s->name() + " and " + d->name() +
                           " do not trust each other"));
    return;
  }
  if (transport == orch::Transport::tcp_overlay) {
    done(invalid_argument("overlay traffic does not go through agents"));
    return;
  }
  if (transport == orch::Transport::shm) {
    if (d->host() != host_.id() || s->host() != host_.id()) {
      done(failed_precondition("shm requires co-located containers"));
      return;
    }
    establish_shm(src, dst, std::move(done));
    return;
  }
  establish_remote(src, dst, d->host(), transport, std::move(done));
}

void Agent::establish_shm(orch::ContainerId src, orch::ContainerId dst,
                          EstablishFn done) {
  auto it = containers_.find(dst);
  if (it == containers_.end()) {
    done(unavailable("destination container not registered with agent"));
    return;
  }
  // Model the POSIX shm segment: created under the source tenant, with the
  // destination tenant explicitly allow-listed (the mechanical form of
  // "isolation is traded only among trusting containers").
  auto& norch2 = fabric_.orchestrator();
  auto src_c = norch2.cluster_orch().container(src);
  auto dst_c = norch2.cluster_orch().container(dst);
  auto region = shm_registry_.create(src_c->tenant(),
                                     2 * fabric_.config().lane_ring_bytes);
  if (!region.is_ok()) {
    done(region.status());
    return;
  }
  (*region)->allow(dst_c->tenant());
  auto attached = shm_registry_.attach((*region)->id(), dst_c->tenant());
  FF_CHECK(attached.is_ok());

  auto lane_ab = make_lane(container_account(src), container_account(dst));
  auto lane_ba = make_lane(container_account(dst), container_account(src));
  auto ep_a = std::make_shared<ShmChannelEndpoint>(dst, lane_ab, lane_ba);
  auto ep_b = std::make_shared<ShmChannelEndpoint>(src, lane_ba, lane_ab);
  ep_a->hold_region(*region);
  ep_b->hold_region(*region);

  // Local brokering costs one control round within the host.
  host_.loop().schedule(2 * k_microsecond,
                        [this, src, dst, ep_a, ep_b, done = std::move(done)]() {
                          auto cit = containers_.find(dst);
                          if (cit == containers_.end()) {
                            done(unavailable("destination vanished during setup"));
                            return;
                          }
                          cit->second(src, ep_b);
                          done(ChannelPtr(ep_a));
                        });
}

void Agent::establish_remote(orch::ContainerId src, orch::ContainerId dst,
                             fabric::HostId dst_host, orch::Transport transport,
                             EstablishFn done) {
  Agent& peer = fabric_.agent_on(dst_host);  // ensure the peer agent runs
  (void)peer;
  with_trunk(dst_host, transport,
             [this, src, dst, dst_host, transport,
              done = std::move(done)](Result<Trunk*> trunk) mutable {
    if (!trunk.is_ok()) {
      done(trunk.status());
      return;
    }
    const std::uint64_t id = fabric_.next_channel_id();
    Agent* peer_agent = &fabric_.agent_on(dst_host);
    const fabric::HostId self_host = host_.id();

    fabric::send_control(
        host_, dst_host, k_ctrl_bytes,
        [this, peer_agent, src, dst, id, transport, self_host,
         done = std::move(done)]() mutable {
          peer_agent->accept_channel(
              src, dst, id, transport, self_host,
              [this, peer_agent, src, dst, id, transport, self_host,
               done = std::move(done)](Status st) mutable {
                fabric::send_control(
                    peer_agent->host(), self_host, k_ctrl_bytes,
                    [this, st, src, dst, id, transport,
                     dst_host = peer_agent->host().id(),
                     done = std::move(done)]() mutable {
                      if (!st.is_ok()) {
                        done(st);
                        return;
                      }
                      auto to_agent = make_lane(container_account(src), &account_);
                      auto from_agent = make_lane(&account_, container_account(src));
                      auto ep = std::make_shared<RemoteChannelEndpoint>(
                          *this, src, dst, dst_host, id, transport, to_agent,
                          from_agent);
                      wire_outbound(ep);
                      endpoints_.emplace(id, ep);
                      done(ChannelPtr(ep));
                    });
              });
        });
  });
}

void Agent::accept_channel(orch::ContainerId src, orch::ContainerId dst,
                           std::uint64_t channel_id, orch::Transport transport,
                           fabric::HostId src_host,
                           std::function<void(Status)> reply) {
  auto it = containers_.find(dst);
  if (it == containers_.end()) {
    reply(unavailable("destination container not registered with agent"));
    return;
  }
  // For trunked transports the B-side trunk was created during trunk setup
  // (rdma/dpdk) or at TCP accept; relay_outbound finds it by key.
  auto to_agent = make_lane(container_account(dst), &account_);
  auto from_agent = make_lane(&account_, container_account(dst));
  auto ep = std::make_shared<RemoteChannelEndpoint>(*this, dst, src, src_host,
                                                    channel_id, transport, to_agent,
                                                    from_agent);
  wire_outbound(ep);
  endpoints_.emplace(channel_id, ep);
  it->second(src, ep);
  reply(ok_status());
}

// ------------------------------------------------------------------- trunks

void Agent::with_trunk(fabric::HostId peer, orch::Transport transport,
                       std::function<void(Result<Trunk*>)> ready) {
  const TrunkKey key{peer, transport};
  if (auto sit = setups_.find(key); sit != setups_.end()) {
    sit->second.waiters.push_back(std::move(ready));  // join the in-flight setup
    return;
  }
  if (auto it = trunks_.find(key); it != trunks_.end()) {
    ready(it->second.get());
    return;
  }
  TrunkSetup& setup = setups_[key];
  setup.waiters.push_back(std::move(ready));
  setup.started_at = host_.loop().now();
  start_setup_attempt(key);
}

void Agent::start_setup_attempt(const TrunkKey& key) {
  auto it = setups_.find(key);
  FF_CHECK(it != setups_.end());
  TrunkSetup& setup = it->second;
  ++setup.attempt;
  const std::uint64_t gen = ++setup.gen;
  // An opposite-direction handshake may have established the lane while we
  // were backing off; completing with it is this attempt's success.
  if (auto t = trunks_.find(key); t != trunks_.end() && lane_last_rx_.contains(key)) {
    on_setup_result(key, gen, t->second);
    return;
  }
  const RetryPolicy& policy = fabric_.config().trunk_retry;
  if (policy.attempt_timeout_ns > 0) {
    setup.watchdog = host_.loop().schedule_cancellable(
        policy.attempt_timeout_ns, [this, key, gen]() {
          on_setup_result(key, gen, timed_out("trunk setup attempt timed out"));
        });
  }
  auto done = [this, key, gen](Result<std::shared_ptr<Trunk>> result) {
    on_setup_result(key, gen, std::move(result));
  };
  switch (key.transport) {
    case orch::Transport::rdma:
      setup_rdma_trunk(key.peer, std::move(done));
      break;
    case orch::Transport::dpdk:
      setup_dpdk_trunk(key.peer, std::move(done));
      break;
    case orch::Transport::tcp_host:
      setup_tcp_trunk(key.peer, std::move(done));
      break;
    default:
      on_setup_result(key, gen, invalid_argument("transport has no trunk"));
  }
}

void Agent::on_setup_result(const TrunkKey& key, std::uint64_t gen,
                            Result<std::shared_ptr<Trunk>> result) {
  auto it = setups_.find(key);
  if (it == setups_.end() || it->second.gen != gen) {
    // A straggler from an abandoned attempt (watchdog fired, lane was
    // declared dead, or a fresher attempt superseded it). Its trunk — if it
    // even built one — was already retired when the attempt was abandoned;
    // adopting anything now would wire a zombie, so drop it on the floor.
    return;
  }
  TrunkSetup& setup = it->second;
  setup.watchdog.cancel();
  setup.backoff.cancel();
  if (result.is_ok()) {
    std::shared_ptr<Trunk> trunk =
        adopt_trunk(key, std::move(result.value()), /*established=*/true);
    hist_setup_latency_->record(host_.loop().now() - setup.started_at);
    auto waiters = std::move(setup.waiters);
    setups_.erase(it);
    for (auto& cb : waiters) cb(trunk.get());
    return;
  }
  setup.last_error = result.status();
  ++setup.gen;  // invalidate every other callback still in flight for this attempt
  abandon_pending_trunk(key);
  const RetryPolicy& policy = fabric_.config().trunk_retry;
  if (!RetryPolicy::retryable(setup.last_error) ||
      setup.attempt >= policy.max_attempts) {
    Status terminal(setup.last_error.code(),
                    "trunk setup failed after " + std::to_string(setup.attempt) +
                        " attempt(s): " + setup.last_error.message());
    auto waiters = std::move(setup.waiters);
    setups_.erase(it);
    for (auto& cb : waiters) cb(terminal);
    return;
  }
  ctr_setup_retries_->inc();
  const SimDuration delay = policy.backoff_for(setup.attempt, retry_rng_);
  FF_LOG(info, "agent") << host_.name() << ": trunk setup to host " << key.peer
                        << " over " << orch::transport_name(key.transport)
                        << " failed (" << setup.last_error << "), attempt "
                        << setup.attempt << "/" << policy.max_attempts
                        << ", retrying in " << delay << "ns";
  setup.backoff = host_.loop().schedule_cancellable(
      delay, [this, key]() { start_setup_attempt(key); });
}

void Agent::fail_setup_attempt(const TrunkKey& key, Status error) {
  auto it = setups_.find(key);
  if (it == setups_.end()) return;
  on_setup_result(key, it->second.gen, std::move(error));
}

bool Agent::trunk_established(fabric::HostId peer, orch::Transport transport) const {
  return lane_last_rx_.contains(TrunkKey{peer, transport});
}

bool Agent::setup_in_flight(fabric::HostId peer, orch::Transport transport) const {
  return setups_.contains(TrunkKey{peer, transport});
}

rdma::RdmaDevice& Agent::rdma_device() {
  if (rdma_device_ == nullptr) {
    rdma_device_ = std::make_unique<rdma::RdmaDevice>(host_);
  }
  return *rdma_device_;
}

dpdk::DpdkPort& Agent::dpdk_port() {
  if (dpdk_port_ == nullptr) {
    dpdk_port_ = std::make_unique<dpdk::DpdkPort>(host_);
    // The port is shared by every DPDK trunk, so rx activity is credited to
    // the lane by the frame's source host rather than per-trunk callbacks.
    dpdk_port_->set_on_message([this](fabric::HostId src, Buffer&& record) {
      note_lane_rx(TrunkKey{src, orch::Transport::dpdk});
      dispatch_record(std::move(record));
    });
    dpdk_port_->set_on_tx_space([this]() { notify_space(); });
  }
  return *dpdk_port_;
}

std::shared_ptr<Trunk> Agent::adopt_trunk(const TrunkKey& key,
                                          std::shared_ptr<Trunk> trunk,
                                          bool established) {
  auto it = trunks_.find(key);
  if (it != trunks_.end() && it->second != trunk) {
    // Never clobber: the incumbent (an opposite-direction setup's half, or
    // a fresher attempt's pending trunk) wins; the newcomer is retired. Its
    // pump events may hold raw pointers, so graveyard, not free.
    ctr_setup_races_->inc();
    retired_trunks_.push_back(std::move(trunk));
    ctr_trunks_retired_->inc();
    gauge_graveyard_->set(static_cast<std::int64_t>(retired_trunks_.size()));
    trunk = it->second;
  } else if (it == trunks_.end()) {
    trunk->set_on_record([this, key](Buffer&& r) {
      note_lane_rx(key);
      dispatch_record(std::move(r));
    });
    trunk->set_on_drained([this]() { notify_space(); });
    trunks_[key] = trunk;
  }
  if (established && !lane_last_rx_.contains(key)) {
    lane_last_rx_[key] = host_.loop().now();
    arm_monitor();
  }
  return trunk;
}

void Agent::retire_trunk_half(const TrunkKey& key) {
  auto it = trunks_.find(key);
  if (it == trunks_.end()) return;
  retired_trunks_.push_back(std::move(it->second));
  ctr_trunks_retired_->inc();
  gauge_graveyard_->set(static_cast<std::int64_t>(retired_trunks_.size()));
  trunks_.erase(it);
  lane_last_rx_.erase(key);
  fail_endpoints_on(key.peer, key.transport);
}

void Agent::abandon_pending_trunk(const TrunkKey& key) {
  if (lane_last_rx_.contains(key)) return;  // established: not an abandoned half
  retire_trunk_half(key);
}

void Agent::note_lane_rx(const TrunkKey& key) {
  auto it = lane_last_rx_.find(key);
  if (it != lane_last_rx_.end()) it->second = host_.loop().now();
}

void Agent::setup_rdma_trunk(fabric::HostId peer, SetupDoneFn done) {
  if (!host_.nic().capabilities().rdma) {
    done(failed_precondition("local NIC is not RDMA-capable"));
    return;
  }
  const auto& cfg = fabric_.config();
  const std::size_t slot = cfg.fragment_bytes + RelayHeader::k_size;
  const TrunkKey key{peer, orch::Transport::rdma};
  auto trunk = std::make_shared<RdmaTrunk>(rdma_device(), account_, cfg.zero_copy,
                                           slot, cfg.rdma_slots);
  // Pending adoption: the half-trunk goes into the map *before* the
  // handshake leaves, so an opposite-direction setup arriving mid-flight
  // finds and joins it instead of building a rival (sends queue safely —
  // the pump no-ops until the QP is ready).
  adopt_trunk(key, trunk, /*established=*/false);

  Agent* peer_agent = &fabric_.agent_on(peer);
  const fabric::HostId self_host = host_.id();
  const rdma::QpNum my_qp = trunk->qp()->num();

  fabric::send_control(host_, peer, k_ctrl_bytes,
                       [this, key, peer_agent, trunk, self_host, my_qp, peer, done]() {
    if (!peer_agent->host().nic().capabilities().rdma) {
      fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes, [done]() {
        done(failed_precondition("peer NIC is not RDMA-capable"));
      });
      return;
    }
    // Peer side: get-or-create its trunk toward us and wire its QP. Finding
    // a pending half here IS the bidirectional race — the peer's own setup
    // is in flight toward us — and both handshakes converge on the same two
    // QPs (each side connects its QP at most once, whichever control
    // message lands first).
    const TrunkKey peer_key{self_host, orch::Transport::rdma};
    std::shared_ptr<RdmaTrunk> peer_trunk;
    if (auto it = peer_agent->trunks_.find(peer_key); it != peer_agent->trunks_.end()) {
      peer_trunk = std::static_pointer_cast<RdmaTrunk>(it->second);
      if (peer_trunk->qp()->state() == rdma::QpState::ready &&
          peer_trunk->qp()->remote_qp() != my_qp) {
        // Stale half: its QP is wired to a QP we already abandoned (an
        // earlier attempt that timed out). A connected QP cannot be
        // re-pointed, so replace the half outright.
        peer_agent->retire_trunk_half(peer_key);
        peer_trunk = nullptr;
      } else if (peer_agent->setups_.contains(peer_key)) {
        peer_agent->ctr_setup_races_->inc();
      }
    }
    if (peer_trunk == nullptr) {
      const auto& pcfg = peer_agent->fabric_.config();
      peer_trunk = std::make_shared<RdmaTrunk>(
          peer_agent->rdma_device(), peer_agent->account_, pcfg.zero_copy,
          pcfg.fragment_bytes + RelayHeader::k_size, pcfg.rdma_slots);
      // Passive half: established right away — if we die before finishing,
      // the peer's heartbeat monitor reaps it.
      peer_agent->adopt_trunk(peer_key, peer_trunk, /*established=*/true);
    }
    if (peer_trunk->qp()->state() != rdma::QpState::ready) {
      FF_CHECK(peer_trunk->qp()->connect(self_host, my_qp).is_ok());
      peer_trunk->start();
    }
    const rdma::QpNum peer_qp = peer_trunk->qp()->num();
    fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes,
                         [this, key, trunk, peer_agent, peer_key, peer_trunk, peer,
                          peer_qp, done]() {
      // The lane can die while this handshake is in flight: whichever side
      // was declared dead retired its half, so an identity mismatch on
      // either end fails the attempt (the retry driver backs off and tries
      // again; wiring a zombie would be worse).
      auto pit = peer_agent->trunks_.find(peer_key);
      if (pit == peer_agent->trunks_.end() || pit->second != peer_trunk) {
        done(unavailable("rdma lane died during trunk setup"));
        return;
      }
      auto lit = trunks_.find(key);
      if (lit == trunks_.end() || lit->second != trunk) {
        done(unavailable("rdma lane died during trunk setup"));
        return;
      }
      if (trunk->qp()->state() != rdma::QpState::ready) {
        FF_CHECK(trunk->qp()->connect(peer, peer_qp).is_ok());
        trunk->start();
      }
      done(std::static_pointer_cast<Trunk>(trunk));
    });
  });
}

void Agent::setup_dpdk_trunk(fabric::HostId peer, SetupDoneFn done) {
  if (!host_.nic().capabilities().dpdk) {
    done(failed_precondition("local NIC does not support DPDK"));
    return;
  }
  dpdk_port().start();
  const TrunkKey key{peer, orch::Transport::dpdk};
  auto trunk = std::static_pointer_cast<Trunk>(std::make_shared<DpdkTrunk>(dpdk_port(), peer));
  adopt_trunk(key, trunk, /*established=*/false);  // pending adoption (see rdma)
  Agent* peer_agent = &fabric_.agent_on(peer);
  const fabric::HostId self_host = host_.id();
  fabric::send_control(host_, peer, k_ctrl_bytes,
                       [this, key, trunk, peer_agent, self_host, peer, done]() {
    if (!peer_agent->host().nic().capabilities().dpdk) {
      fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes, [done]() {
        done(failed_precondition("peer NIC does not support DPDK"));
      });
      return;
    }
    peer_agent->dpdk_port().start();
    // Peer-side trunk toward us so its containers can answer. An existing
    // pending half is the peer's own opposite-direction setup: join it.
    const TrunkKey peer_key{self_host, orch::Transport::dpdk};
    std::shared_ptr<Trunk> peer_trunk;
    if (auto it = peer_agent->trunks_.find(peer_key); it != peer_agent->trunks_.end()) {
      peer_trunk = it->second;
      if (peer_agent->setups_.contains(peer_key)) {
        peer_agent->ctr_setup_races_->inc();
      }
    } else {
      peer_trunk = std::make_shared<DpdkTrunk>(peer_agent->dpdk_port(), self_host);
      peer_agent->adopt_trunk(peer_key, peer_trunk, /*established=*/true);
    }
    fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes,
                         [this, key, trunk, peer_agent, peer_key, peer_trunk, done]() {
      // Same mid-setup death race as the RDMA trunk: if either half was
      // declared dead while the handshake was in flight, fail the attempt.
      auto pit = peer_agent->trunks_.find(peer_key);
      if (pit == peer_agent->trunks_.end() || pit->second != peer_trunk) {
        done(unavailable("dpdk lane died during trunk setup"));
        return;
      }
      auto lit = trunks_.find(key);
      if (lit == trunks_.end() || lit->second != trunk) {
        done(unavailable("dpdk lane died during trunk setup"));
        return;
      }
      done(trunk);
    });
  });
}

void Agent::setup_tcp_trunk(fabric::HostId peer, SetupDoneFn done) {
  const TrunkKey key{peer, orch::Transport::tcp_host};
  Agent* peer_agent = &fabric_.agent_on(peer);  // peer must be listening
  auto trunk = std::make_shared<TcpTrunk>(host_.loop());
  adopt_trunk(key, std::static_pointer_cast<Trunk>(trunk), /*established=*/false);
  if (host_.id() < peer) {
    // Single-dialer rule: the lower host id owns the connection. The
    // higher side never dials, so simultaneous setups can no longer cross
    // two connections (each side attaching its own dial while the rival
    // accept is dropped).
    const tcp::Endpoint local{AgentFabric::agent_ip(host_.id()), 0};
    const tcp::Endpoint remote{AgentFabric::agent_ip(peer), fabric_.config().tcp_port};
    fabric_.underlay().connect(local, remote,
                               [this, key, trunk, done](Result<tcp::TcpConnection::Ptr> conn) {
      if (!conn.is_ok()) {
        done(conn.status());
        return;
      }
      auto lit = trunks_.find(key);
      if (lit == trunks_.end() || lit->second != std::static_pointer_cast<Trunk>(trunk)) {
        done(unavailable("tcp lane died during trunk setup"));
        return;
      }
      trunk->attach(std::move(conn.value()));
      done(std::static_pointer_cast<Trunk>(trunk));
    });
    return;
  }
  // Higher host id: ask the peer (the connection owner) to dial us; our
  // listener attaches the inbound connection to the pending half above and
  // completes this setup (see the listen handler in the ctor). The peer
  // joins its own in-flight setup if one is already running — that is the
  // serialization point for the bidirectional TCP race.
  const fabric::HostId self_host = host_.id();
  fabric::send_control(host_, peer, k_ctrl_bytes, [peer_agent, self_host]() {
    peer_agent->with_trunk(self_host, orch::Transport::tcp_host,
                           [](Result<Trunk*>) {});
  });
}

// -------------------------------------------------------------------- relay

void Agent::wire_outbound(const std::shared_ptr<RemoteChannelEndpoint>& ep) {
  // Captures routing fields by value plus the agent itself — never the
  // endpoint or the lane — so records queued in the lane (the closing bye
  // included) still relay after the endpoint is destroyed. The agent
  // co-owns the lane (outbound_lanes_) to keep those queued records alive;
  // the hook hands back that ownership after the final record drains.
  const std::uint64_t id = ep->channel_id();
  outbound_lanes_[id] = ep->outbound_lane();
  ep->outbound_lane()->set_receiver(
      [this, src = ep->self(), dst = ep->peer(), peer_host = ep->peer_host(),
       id, transport = ep->transport()](Buffer&& msg) {
        relay_outbound(src, dst, peer_host, id, transport, std::move(msg));
        drop_drained_lane(id);
      });
}

void Agent::drop_drained_lane(std::uint64_t channel_id) {
  // Keep the lane while its endpoint is still registered, or while queued
  // records remain. Erasing from inside the lane's own delivery is safe:
  // the rx job pins the lane for the remainder of the running callback.
  if (endpoints_.contains(channel_id)) return;
  auto it = outbound_lanes_.find(channel_id);
  if (it != outbound_lanes_.end() && it->second->ring().empty()) {
    outbound_lanes_.erase(it);
  }
}

void Agent::relay_outbound(orch::ContainerId src, orch::ContainerId dst,
                           fabric::HostId peer_host, std::uint64_t channel_id,
                           orch::Transport transport, Buffer&& message) {
  if (paused_) {
    paused_tx_.push_back(
        {src, dst, peer_host, channel_id, transport, std::move(message)});
    return;
  }
  const TrunkKey key{peer_host, transport};
  auto it = trunks_.find(key);
  if (it == trunks_.end()) {
    FF_LOG(warn, "agent") << "no trunk for channel " << channel_id
                          << "; message dropped (peer migrated?)";
    return;
  }
  Trunk& trunk = *it->second;
  // Records inherit the source container's tenant so the shared trunk's
  // packets land in the right per-tenant NIC queue.
  const auto owner = fabric_.orchestrator().cluster_orch().container(src);
  const std::uint32_t tenant = owner != nullptr ? owner->tenant() : 0;
  const std::size_t frag = fabric_.config().fragment_bytes;
  const auto total = static_cast<std::uint32_t>(message.size());
  const std::uint64_t seq = next_msg_seq_++;
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(frag, message.size() - offset);
    RelayHeader header;
    header.src_container = src;
    header.dst_container = dst;
    header.channel = channel_id;
    header.msg_seq = seq;
    header.total_len = total;
    header.frag_offset = static_cast<std::uint32_t>(offset);
    trunk.send(make_record(header, ByteSpan{message.data() + offset, n}), tenant);
    ++records_relayed_;
    offset += n;
  } while (offset < message.size());
}

bool Agent::trunk_writable(fabric::HostId peer, orch::Transport transport) const {
  auto it = trunks_.find(TrunkKey{peer, transport});
  if (it == trunks_.end()) return true;
  return !it->second->congested();
}

void Agent::notify_space() {
  // Snapshot the live endpoints first: a poke may close a channel, which
  // re-enters release_channel and mutates the map mid-iteration otherwise.
  std::vector<std::shared_ptr<RemoteChannelEndpoint>> live;
  live.reserve(endpoints_.size());
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    if (auto ep = it->second.lock()) {
      live.push_back(std::move(ep));
      ++it;
    } else {
      it = endpoints_.erase(it);
    }
  }
  for (auto& ep : live) {
    if (!ep->closed()) ep->poke_space();
  }
}

// ------------------------------------------------------------- lane health

void Agent::arm_monitor() {
  if (monitor_armed_) return;
  const SimDuration interval = fabric_.config().heartbeat_interval_ns;
  if (interval <= 0) return;
  monitor_armed_ = true;
  // Maintenance event: periodic housekeeping must not keep an otherwise
  // idle loop alive (run() quiesces past it) — this is what lets
  // heartbeats default on.
  monitor_ = host_.loop().schedule_maintenance(interval, [this]() { monitor_tick(); });
}

void Agent::monitor_tick() {
  const SimDuration interval = fabric_.config().heartbeat_interval_ns;
  if (interval <= 0 || lane_last_rx_.empty()) {
    monitor_armed_ = false;  // disarmed; the next adopt_trunk re-arms
    return;
  }
  if (!paused_) {
    const SimTime now = host_.loop().now();
    const SimDuration timeout = fabric_.config().heartbeat_timeout_ns;
    std::vector<TrunkKey> dead;
    for (const auto& [key, last_rx] : lane_last_rx_) {
      if (now - last_rx > timeout) {
        dead.push_back(key);
      } else {
        send_heartbeat(key);
      }
    }
    for (const TrunkKey& key : dead) declare_lane_failed(key.peer, key.transport);
  }
  monitor_ = host_.loop().schedule_maintenance(interval, [this]() { monitor_tick(); });
}

void Agent::send_heartbeat(const TrunkKey& key) {
  auto it = trunks_.find(key);
  if (it == trunks_.end()) return;
  RelayHeader header;  // channel 0: dropped by the peer after clocking rx
  header.channel = 0;
  header.msg_seq = next_msg_seq_++;
  it->second->send(make_record(header, ByteSpan{}));
  ctr_heartbeats_->inc();
}

void Agent::declare_lane_failed(fabric::HostId peer, orch::Transport transport) {
  const TrunkKey key{peer, transport};
  if (!trunks_.contains(key)) return;
  ++lanes_failed_;
  ctr_lanes_failed_->inc();
  FF_LOG(info, "agent") << host_.name() << ": lane to host " << peer << " over "
                        << orch::transport_name(transport) << " declared dead";
  // Fail the endpoints first (retire_trunk_half does) so their conduits
  // detach and go stale, then report: the report's health callback is what
  // triggers re-decision, and by then every victim must already know its
  // old lane is gone.
  retire_trunk_half(key);
  // A trunk is a pair: the mirror half on the peer agent is equally dead
  // (its QP would error, its connection reset). Retiring both sides keeps
  // trunk state symmetric, so a later re-establish builds a fresh pair
  // instead of half-wiring onto a corpse. Recursion terminates because our
  // side is already erased.
  fabric_.agent_on(peer).declare_lane_failed(host_.id(), transport);
  fabric_.orchestrator().report_lane_failure(host_.id(), peer, transport);
  // A setup riding this lane (the trunk died mid-handshake) turns into one
  // failed attempt: the retry driver backs off and re-establishes instead
  // of leaving the waiters with a permanent `unavailable`.
  fail_setup_attempt(key, unavailable("lane died during trunk setup"));
}

void Agent::fail_endpoints_on(fabric::HostId peer, orch::Transport transport) {
  // Snapshot first: fail() re-enters release_channel and mutates the map.
  std::vector<std::shared_ptr<RemoteChannelEndpoint>> victims;
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    auto ep = it->second.lock();
    if (ep == nullptr) {
      it = endpoints_.erase(it);
      continue;
    }
    if (ep->peer_host() == peer && ep->transport() == transport) {
      victims.push_back(std::move(ep));
    }
    ++it;
  }
  for (auto& ep : victims) ep->fail();
}

void Agent::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  FF_LOG(info, "agent") << host_.name() << (paused ? ": paused" : ": resumed");
  if (paused_) return;
  // Nothing was lost while frozen, but every lane looks silent; reset the rx
  // clocks so the monitor doesn't declare the whole fabric dead on resume.
  const SimTime now = host_.loop().now();
  for (auto& [key, last_rx] : lane_last_rx_) last_rx = now;
  auto rx = std::move(paused_rx_);
  paused_rx_.clear();
  for (Buffer& record : rx) dispatch_record(std::move(record));
  auto tx = std::move(paused_tx_);
  paused_tx_.clear();
  for (PausedRelay& p : tx) {
    relay_outbound(p.src, p.dst, p.peer_host, p.channel_id, p.transport,
                   std::move(p.message));
  }
}

void Agent::release_channel(std::uint64_t channel_id) {
  endpoints_.erase(channel_id);
  for (auto it = rx_.begin(); it != rx_.end();) {
    it = it->first.first == channel_id ? rx_.erase(it) : std::next(it);
  }
  drop_drained_lane(channel_id);
}

std::size_t Agent::endpoint_count() {
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    it = it->second.expired() ? endpoints_.erase(it) : std::next(it);
  }
  return endpoints_.size();
}

void Agent::dispatch_record(Buffer&& record) {
  if (paused_) {
    paused_rx_.push_back(std::move(record));
    return;
  }
  auto parsed = parse_record(record.view());
  if (!parsed.is_ok()) {
    FF_LOG(warn, "agent") << "malformed relay record: " << parsed.status();
    return;
  }
  const RelayHeader& h = parsed->header;
  // Channel 0 is reserved for agent-to-agent heartbeats: the trunk callback
  // already refreshed the lane's rx clock, which was the entire message.
  if (h.channel == 0) return;
  FF_LOG(debug, "agent") << "rx record ch=" << h.channel << " seq=" << h.msg_seq
                         << " off=" << h.frag_offset << " frag=" << parsed->fragment.size()
                         << " total=" << h.total_len;
  auto it = endpoints_.find(h.channel);
  std::shared_ptr<RemoteChannelEndpoint> endpoint;
  if (it != endpoints_.end()) endpoint = it->second.lock();
  if (endpoint == nullptr) {
    if (it != endpoints_.end()) endpoints_.erase(it);
    FF_LOG(debug, "agent") << "record for unknown channel " << h.channel << " dropped";
    return;
  }

  if (h.frag_offset == 0 && parsed->fragment.size() == h.total_len) {
    endpoint->deliver_inbound(Buffer(parsed->fragment.data(), parsed->fragment.size()));
    return;
  }
  auto& slot = rx_[{h.channel, h.msg_seq}];
  if (slot.data.size() != h.total_len) slot.data.resize(h.total_len);
  if (!parsed->fragment.empty()) {
    std::memcpy(slot.data.data() + h.frag_offset, parsed->fragment.data(),
                parsed->fragment.size());
  }
  slot.received += parsed->fragment.size();
  if (slot.received >= h.total_len) {
    Buffer whole = std::move(slot.data);
    rx_.erase({h.channel, h.msg_seq});
    endpoint->deliver_inbound(std::move(whole));
  }
}

}  // namespace freeflow::agent
