#include "agent/agent.h"

#include <algorithm>

#include "common/logging.h"
#include "fabric/control.h"

namespace freeflow::agent {

namespace {
constexpr std::uint32_t k_ctrl_bytes = 160;
}

// ---------------------------------------------------------------- AgentFabric

AgentFabric::AgentFabric(orch::NetworkOrchestrator& orchestrator, AgentConfig config)
    : orchestrator_(orchestrator),
      config_(config),
      underlay_builder_(cluster().cost_model()),
      underlay_net_(cluster().loop(), cluster().cost_model(), underlay_builder_) {}

fabric::Cluster& AgentFabric::cluster() noexcept {
  return orchestrator_.cluster_orch().cluster();
}

sim::EventLoop& AgentFabric::loop() noexcept { return cluster().loop(); }

Agent& AgentFabric::agent_on(fabric::HostId host) {
  auto it = agents_.find(host);
  if (it != agents_.end()) return *it->second;
  fabric::Host& h = cluster().host(host);
  const Status bound = underlay_builder_.addresses().add(agent_ip(host), h, nullptr);
  FF_CHECK(bound.is_ok());
  auto agent = std::make_unique<Agent>(*this, h);
  Agent& ref = *agent;
  agents_.emplace(host, std::move(agent));
  return ref;
}

// ---------------------------------------------------------------------- Agent

Agent::Agent(AgentFabric& fabric, fabric::Host& host)
    : fabric_(fabric), host_(host), account_("agent@" + host.name()) {
  fabric::install_control_rx(host_);
  tcp::WireHop::install_rx(host_);

  auto& metrics = fabric_.cluster().telemetry().metrics();
  const std::string prefix = "agent/" + std::to_string(host_.id()) + "/";
  ctr_heartbeats_ = &metrics.counter(prefix + "heartbeats_sent");
  ctr_lanes_failed_ = &metrics.counter(prefix + "lanes_failed");
  gauge_graveyard_ = &metrics.gauge(prefix + "graveyard");

  // TCP trunk service: peer agents connect here when NICs lack bypass.
  const tcp::Endpoint ep{AgentFabric::agent_ip(host_.id()), fabric_.config().tcp_port};
  const Status listening =
      fabric_.underlay().listen(ep, [this](tcp::TcpConnection::Ptr conn) {
        const fabric::HostId peer =
            AgentFabric::host_of_agent_ip(conn->flow().remote.ip);
        const TrunkKey key{peer, orch::Transport::tcp_host};
        if (!trunks_.contains(key)) {
          auto trunk = std::make_shared<TcpTrunk>(host_.loop());
          trunk->attach(std::move(conn));
          adopt_trunk(key, std::move(trunk));
        }
      });
  FF_CHECK(listening.is_ok());

  // Send-error-driven lane failure: a packet the sick NIC drops indicts that
  // transport's lanes immediately, well before any heartbeat times out. The
  // declaration is deferred one event — the drop fires mid-send, deep inside
  // trunk machinery that must not be retired under its own feet. Kernel TCP
  // frames are exempt (the stack retransmits through transient loss), and a
  // full link outage is the orchestrator's call, not ours.
  std::weak_ptr<bool> alive = alive_;
  host_.nic().set_on_drop([this, alive](fabric::PacketKind kind) {
    if (alive.expired()) return;
    orch::Transport transport;
    switch (kind) {
      case fabric::PacketKind::rdma_chunk:
        transport = orch::Transport::rdma;
        break;
      case fabric::PacketKind::dpdk_frame:
        transport = orch::Transport::dpdk;
        break;
      default:
        return;
    }
    host_.loop().schedule(0, [this, alive, transport]() {
      if (alive.expired()) return;
      std::vector<fabric::HostId> peers;
      for (const auto& [key, trunk] : trunks_) {
        if (key.transport == transport) peers.push_back(key.peer);
      }
      for (const fabric::HostId peer : peers) declare_lane_failed(peer, transport);
    });
  });
}

Agent::~Agent() {
  monitor_.cancel();
  host_.nic().set_on_drop(nullptr);
}

void Agent::register_container(orch::ContainerId id, IncomingFn on_incoming) {
  containers_[id] = std::move(on_incoming);
}

void Agent::unregister_container(orch::ContainerId id) { containers_.erase(id); }

sim::UsageAccount* Agent::container_account(orch::ContainerId id) {
  auto c = fabric_.orchestrator().cluster_orch().container(id);
  return c == nullptr ? nullptr : &c->account();
}

std::shared_ptr<shm::ShmLane> Agent::make_lane(sim::UsageAccount* sender,
                                               sim::UsageAccount* receiver) {
  auto lane = std::make_shared<shm::ShmLane>(host_, fabric_.config().lane_ring_bytes);
  lane->set_sender_account(sender);
  lane->set_receiver_account(receiver);
  return lane;
}

void Agent::establish(orch::ContainerId src, orch::ContainerId dst,
                      orch::Transport transport, EstablishFn done) {
  auto& norch = fabric_.orchestrator();
  auto s = norch.cluster_orch().container(src);
  auto d = norch.cluster_orch().container(dst);
  if (s == nullptr || d == nullptr) {
    done(not_found("unknown container in channel request"));
    return;
  }
  // Enforcement point: isolation may only be traded among trusting
  // containers, whatever the caller asked for.
  if (!norch.trusted(*s, *d)) {
    done(permission_denied("containers " + s->name() + " and " + d->name() +
                           " do not trust each other"));
    return;
  }
  if (transport == orch::Transport::tcp_overlay) {
    done(invalid_argument("overlay traffic does not go through agents"));
    return;
  }
  if (transport == orch::Transport::shm) {
    if (d->host() != host_.id() || s->host() != host_.id()) {
      done(failed_precondition("shm requires co-located containers"));
      return;
    }
    establish_shm(src, dst, std::move(done));
    return;
  }
  establish_remote(src, dst, d->host(), transport, std::move(done));
}

void Agent::establish_shm(orch::ContainerId src, orch::ContainerId dst,
                          EstablishFn done) {
  auto it = containers_.find(dst);
  if (it == containers_.end()) {
    done(unavailable("destination container not registered with agent"));
    return;
  }
  // Model the POSIX shm segment: created under the source tenant, with the
  // destination tenant explicitly allow-listed (the mechanical form of
  // "isolation is traded only among trusting containers").
  auto& norch2 = fabric_.orchestrator();
  auto src_c = norch2.cluster_orch().container(src);
  auto dst_c = norch2.cluster_orch().container(dst);
  auto region = shm_registry_.create(src_c->tenant(),
                                     2 * fabric_.config().lane_ring_bytes);
  if (!region.is_ok()) {
    done(region.status());
    return;
  }
  (*region)->allow(dst_c->tenant());
  auto attached = shm_registry_.attach((*region)->id(), dst_c->tenant());
  FF_CHECK(attached.is_ok());

  auto lane_ab = make_lane(container_account(src), container_account(dst));
  auto lane_ba = make_lane(container_account(dst), container_account(src));
  auto ep_a = std::make_shared<ShmChannelEndpoint>(dst, lane_ab, lane_ba);
  auto ep_b = std::make_shared<ShmChannelEndpoint>(src, lane_ba, lane_ab);
  ep_a->hold_region(*region);
  ep_b->hold_region(*region);

  // Local brokering costs one control round within the host.
  host_.loop().schedule(2 * k_microsecond,
                        [this, src, dst, ep_a, ep_b, done = std::move(done)]() {
                          auto cit = containers_.find(dst);
                          if (cit == containers_.end()) {
                            done(unavailable("destination vanished during setup"));
                            return;
                          }
                          cit->second(src, ep_b);
                          done(ChannelPtr(ep_a));
                        });
}

void Agent::establish_remote(orch::ContainerId src, orch::ContainerId dst,
                             fabric::HostId dst_host, orch::Transport transport,
                             EstablishFn done) {
  Agent& peer = fabric_.agent_on(dst_host);  // ensure the peer agent runs
  (void)peer;
  with_trunk(dst_host, transport,
             [this, src, dst, dst_host, transport,
              done = std::move(done)](Result<Trunk*> trunk) mutable {
    if (!trunk.is_ok()) {
      done(trunk.status());
      return;
    }
    const std::uint64_t id = fabric_.next_channel_id();
    Agent* peer_agent = &fabric_.agent_on(dst_host);
    const fabric::HostId self_host = host_.id();

    fabric::send_control(
        host_, dst_host, k_ctrl_bytes,
        [this, peer_agent, src, dst, id, transport, self_host,
         done = std::move(done)]() mutable {
          peer_agent->accept_channel(
              src, dst, id, transport, self_host,
              [this, peer_agent, src, dst, id, transport, self_host,
               done = std::move(done)](Status st) mutable {
                fabric::send_control(
                    peer_agent->host(), self_host, k_ctrl_bytes,
                    [this, st, src, dst, id, transport,
                     dst_host = peer_agent->host().id(),
                     done = std::move(done)]() mutable {
                      if (!st.is_ok()) {
                        done(st);
                        return;
                      }
                      auto to_agent = make_lane(container_account(src), &account_);
                      auto from_agent = make_lane(&account_, container_account(src));
                      auto ep = std::make_shared<RemoteChannelEndpoint>(
                          *this, src, dst, dst_host, id, transport, to_agent,
                          from_agent);
                      wire_outbound(ep);
                      endpoints_.emplace(id, ep);
                      done(ChannelPtr(ep));
                    });
              });
        });
  });
}

void Agent::accept_channel(orch::ContainerId src, orch::ContainerId dst,
                           std::uint64_t channel_id, orch::Transport transport,
                           fabric::HostId src_host,
                           std::function<void(Status)> reply) {
  auto it = containers_.find(dst);
  if (it == containers_.end()) {
    reply(unavailable("destination container not registered with agent"));
    return;
  }
  // For trunked transports the B-side trunk was created during trunk setup
  // (rdma/dpdk) or at TCP accept; relay_outbound finds it by key.
  auto to_agent = make_lane(container_account(dst), &account_);
  auto from_agent = make_lane(&account_, container_account(dst));
  auto ep = std::make_shared<RemoteChannelEndpoint>(*this, dst, src, src_host,
                                                    channel_id, transport, to_agent,
                                                    from_agent);
  wire_outbound(ep);
  endpoints_.emplace(channel_id, ep);
  it->second(src, ep);
  reply(ok_status());
}

// ------------------------------------------------------------------- trunks

void Agent::with_trunk(fabric::HostId peer, orch::Transport transport,
                       std::function<void(Result<Trunk*>)> ready) {
  const TrunkKey key{peer, transport};
  if (auto it = trunks_.find(key); it != trunks_.end()) {
    ready(it->second.get());
    return;
  }
  auto& waiters = trunk_waiters_[key];
  waiters.push_back(std::move(ready));
  if (waiters.size() > 1) return;  // setup already in flight

  auto finish = [this, key](Result<Trunk*> result) {
    auto pending = std::move(trunk_waiters_[key]);
    trunk_waiters_.erase(key);
    for (auto& cb : pending) cb(result);
  };
  switch (transport) {
    case orch::Transport::rdma:
      setup_rdma_trunk(peer, finish);
      break;
    case orch::Transport::dpdk:
      setup_dpdk_trunk(peer, finish);
      break;
    case orch::Transport::tcp_host:
      setup_tcp_trunk(peer, finish);
      break;
    default:
      finish(invalid_argument("transport has no trunk"));
  }
}

rdma::RdmaDevice& Agent::rdma_device() {
  if (rdma_device_ == nullptr) {
    rdma_device_ = std::make_unique<rdma::RdmaDevice>(host_);
  }
  return *rdma_device_;
}

dpdk::DpdkPort& Agent::dpdk_port() {
  if (dpdk_port_ == nullptr) {
    dpdk_port_ = std::make_unique<dpdk::DpdkPort>(host_);
    // The port is shared by every DPDK trunk, so rx activity is credited to
    // the lane by the frame's source host rather than per-trunk callbacks.
    dpdk_port_->set_on_message([this](fabric::HostId src, Buffer&& record) {
      note_lane_rx(TrunkKey{src, orch::Transport::dpdk});
      dispatch_record(std::move(record));
    });
    dpdk_port_->set_on_tx_space([this]() { notify_space(); });
  }
  return *dpdk_port_;
}

void Agent::adopt_trunk(const TrunkKey& key, std::shared_ptr<Trunk> trunk) {
  trunk->set_on_record([this, key](Buffer&& r) {
    note_lane_rx(key);
    dispatch_record(std::move(r));
  });
  trunk->set_on_drained([this]() { notify_space(); });
  lane_last_rx_[key] = host_.loop().now();
  trunks_[key] = std::move(trunk);
  arm_monitor();
}

void Agent::note_lane_rx(const TrunkKey& key) {
  auto it = lane_last_rx_.find(key);
  if (it != lane_last_rx_.end()) it->second = host_.loop().now();
}

void Agent::setup_rdma_trunk(fabric::HostId peer,
                             std::function<void(Result<Trunk*>)> ready) {
  if (!host_.nic().capabilities().rdma) {
    ready(failed_precondition("local NIC is not RDMA-capable"));
    return;
  }
  const auto& cfg = fabric_.config();
  const std::size_t slot = cfg.fragment_bytes + RelayHeader::k_size;
  auto trunk = std::make_shared<RdmaTrunk>(rdma_device(), account_, cfg.zero_copy,
                                           slot, cfg.rdma_slots);
  trunk->set_on_record([this](Buffer&& r) { dispatch_record(std::move(r)); });
  trunk->set_on_drained([this]() { notify_space(); });

  Agent* peer_agent = &fabric_.agent_on(peer);
  const fabric::HostId self_host = host_.id();
  const rdma::QpNum my_qp = trunk->qp()->num();

  fabric::send_control(host_, peer, k_ctrl_bytes,
                       [this, peer_agent, trunk, self_host, my_qp, peer, ready]() {
    if (!peer_agent->host().nic().capabilities().rdma) {
      fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes, [ready]() {
        ready(failed_precondition("peer NIC is not RDMA-capable"));
      });
      return;
    }
    // Peer side: get-or-create its trunk toward us and wire its QP.
    const TrunkKey peer_key{self_host, orch::Transport::rdma};
    std::shared_ptr<RdmaTrunk> peer_trunk;
    if (auto it = peer_agent->trunks_.find(peer_key); it != peer_agent->trunks_.end()) {
      peer_trunk = std::static_pointer_cast<RdmaTrunk>(it->second);
    } else {
      const auto& pcfg = peer_agent->fabric_.config();
      peer_trunk = std::make_shared<RdmaTrunk>(
          peer_agent->rdma_device(), peer_agent->account_, pcfg.zero_copy,
          pcfg.fragment_bytes + RelayHeader::k_size, pcfg.rdma_slots);
      peer_agent->adopt_trunk(peer_key, peer_trunk);
    }
    if (peer_trunk->qp()->state() != rdma::QpState::ready) {
      FF_CHECK(peer_trunk->qp()->connect(self_host, my_qp).is_ok());
      peer_trunk->start();
    }
    const rdma::QpNum peer_qp = peer_trunk->qp()->num();
    fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes,
                         [this, trunk, peer_agent, peer_key, peer_trunk, peer,
                          peer_qp, ready]() {
      // The lane can die while this handshake is in flight: the peer then
      // retires its half and mirrors the declare here — before our half is
      // adopted, so the mirror finds nothing. Adopting now would wire a
      // zombie trunk into the map; fail the establish instead (the caller's
      // re-decision loop retries once health settles).
      auto it = peer_agent->trunks_.find(peer_key);
      if (it == peer_agent->trunks_.end() || it->second != peer_trunk) {
        ready(unavailable("rdma lane died during trunk setup"));
        return;
      }
      FF_CHECK(trunk->qp()->connect(peer, peer_qp).is_ok());
      trunk->start();
      adopt_trunk(TrunkKey{peer, orch::Transport::rdma}, trunk);
      ready(trunk.get());
    });
  });
}

void Agent::setup_dpdk_trunk(fabric::HostId peer,
                             std::function<void(Result<Trunk*>)> ready) {
  if (!host_.nic().capabilities().dpdk) {
    ready(failed_precondition("local NIC does not support DPDK"));
    return;
  }
  dpdk_port().start();
  Agent* peer_agent = &fabric_.agent_on(peer);
  const fabric::HostId self_host = host_.id();
  fabric::send_control(host_, peer, k_ctrl_bytes,
                       [this, peer_agent, self_host, peer, ready]() {
    if (!peer_agent->host().nic().capabilities().dpdk) {
      fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes, [ready]() {
        ready(failed_precondition("peer NIC does not support DPDK"));
      });
      return;
    }
    peer_agent->dpdk_port().start();
    // Peer-side trunk toward us so its containers can answer.
    const TrunkKey peer_key{self_host, orch::Transport::dpdk};
    if (!peer_agent->trunks_.contains(peer_key)) {
      peer_agent->adopt_trunk(
          peer_key, std::make_shared<DpdkTrunk>(peer_agent->dpdk_port(), self_host));
    }
    fabric::send_control(peer_agent->host(), self_host, k_ctrl_bytes,
                         [this, peer_agent, peer_key, peer, ready]() {
      // Same mid-setup death race as the RDMA trunk: if the peer's half was
      // declared dead while the handshake was in flight, don't adopt ours.
      if (!peer_agent->trunks_.contains(peer_key)) {
        ready(unavailable("dpdk lane died during trunk setup"));
        return;
      }
      auto trunk = std::make_shared<DpdkTrunk>(dpdk_port(), peer);
      Trunk* raw = trunk.get();
      adopt_trunk(TrunkKey{peer, orch::Transport::dpdk}, std::move(trunk));
      ready(raw);
    });
  });
}

void Agent::setup_tcp_trunk(fabric::HostId peer,
                            std::function<void(Result<Trunk*>)> ready) {
  fabric_.agent_on(peer);  // peer must be listening
  const tcp::Endpoint local{AgentFabric::agent_ip(host_.id()), 0};
  const tcp::Endpoint remote{AgentFabric::agent_ip(peer), fabric_.config().tcp_port};
  fabric_.underlay().connect(local, remote,
                             [this, peer, ready](Result<tcp::TcpConnection::Ptr> conn) {
    if (!conn.is_ok()) {
      ready(conn.status());
      return;
    }
    auto trunk = std::make_shared<TcpTrunk>(host_.loop());
    trunk->attach(std::move(conn.value()));
    Trunk* raw = trunk.get();
    adopt_trunk(TrunkKey{peer, orch::Transport::tcp_host}, std::move(trunk));
    ready(raw);
  });
}

// -------------------------------------------------------------------- relay

void Agent::wire_outbound(const std::shared_ptr<RemoteChannelEndpoint>& ep) {
  // Captures routing fields by value plus the agent itself — never the
  // endpoint or the lane — so records queued in the lane (the closing bye
  // included) still relay after the endpoint is destroyed. The agent
  // co-owns the lane (outbound_lanes_) to keep those queued records alive;
  // the hook hands back that ownership after the final record drains.
  const std::uint64_t id = ep->channel_id();
  outbound_lanes_[id] = ep->outbound_lane();
  ep->outbound_lane()->set_receiver(
      [this, src = ep->self(), dst = ep->peer(), peer_host = ep->peer_host(),
       id, transport = ep->transport()](Buffer&& msg) {
        relay_outbound(src, dst, peer_host, id, transport, std::move(msg));
        drop_drained_lane(id);
      });
}

void Agent::drop_drained_lane(std::uint64_t channel_id) {
  // Keep the lane while its endpoint is still registered, or while queued
  // records remain. Erasing from inside the lane's own delivery is safe:
  // the rx job pins the lane for the remainder of the running callback.
  if (endpoints_.contains(channel_id)) return;
  auto it = outbound_lanes_.find(channel_id);
  if (it != outbound_lanes_.end() && it->second->ring().empty()) {
    outbound_lanes_.erase(it);
  }
}

void Agent::relay_outbound(orch::ContainerId src, orch::ContainerId dst,
                           fabric::HostId peer_host, std::uint64_t channel_id,
                           orch::Transport transport, Buffer&& message) {
  if (paused_) {
    paused_tx_.push_back(
        {src, dst, peer_host, channel_id, transport, std::move(message)});
    return;
  }
  const TrunkKey key{peer_host, transport};
  auto it = trunks_.find(key);
  if (it == trunks_.end()) {
    FF_LOG(warn, "agent") << "no trunk for channel " << channel_id
                          << "; message dropped (peer migrated?)";
    return;
  }
  Trunk& trunk = *it->second;
  const std::size_t frag = fabric_.config().fragment_bytes;
  const auto total = static_cast<std::uint32_t>(message.size());
  const std::uint64_t seq = next_msg_seq_++;
  std::size_t offset = 0;
  do {
    const std::size_t n = std::min(frag, message.size() - offset);
    RelayHeader header;
    header.src_container = src;
    header.dst_container = dst;
    header.channel = channel_id;
    header.msg_seq = seq;
    header.total_len = total;
    header.frag_offset = static_cast<std::uint32_t>(offset);
    trunk.send(make_record(header, ByteSpan{message.data() + offset, n}));
    ++records_relayed_;
    offset += n;
  } while (offset < message.size());
}

bool Agent::trunk_writable(fabric::HostId peer, orch::Transport transport) const {
  auto it = trunks_.find(TrunkKey{peer, transport});
  if (it == trunks_.end()) return true;
  return !it->second->congested();
}

void Agent::notify_space() {
  // Snapshot the live endpoints first: a poke may close a channel, which
  // re-enters release_channel and mutates the map mid-iteration otherwise.
  std::vector<std::shared_ptr<RemoteChannelEndpoint>> live;
  live.reserve(endpoints_.size());
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    if (auto ep = it->second.lock()) {
      live.push_back(std::move(ep));
      ++it;
    } else {
      it = endpoints_.erase(it);
    }
  }
  for (auto& ep : live) {
    if (!ep->closed()) ep->poke_space();
  }
}

// ------------------------------------------------------------- lane health

void Agent::arm_monitor() {
  if (monitor_armed_) return;
  const SimDuration interval = fabric_.config().heartbeat_interval_ns;
  if (interval <= 0) return;
  monitor_armed_ = true;
  // Maintenance event: periodic housekeeping must not keep an otherwise
  // idle loop alive (run() quiesces past it) — this is what lets
  // heartbeats default on.
  monitor_ = host_.loop().schedule_maintenance(interval, [this]() { monitor_tick(); });
}

void Agent::monitor_tick() {
  const SimDuration interval = fabric_.config().heartbeat_interval_ns;
  if (interval <= 0 || lane_last_rx_.empty()) {
    monitor_armed_ = false;  // disarmed; the next adopt_trunk re-arms
    return;
  }
  if (!paused_) {
    const SimTime now = host_.loop().now();
    const SimDuration timeout = fabric_.config().heartbeat_timeout_ns;
    std::vector<TrunkKey> dead;
    for (const auto& [key, last_rx] : lane_last_rx_) {
      if (now - last_rx > timeout) {
        dead.push_back(key);
      } else {
        send_heartbeat(key);
      }
    }
    for (const TrunkKey& key : dead) declare_lane_failed(key.peer, key.transport);
  }
  monitor_ = host_.loop().schedule_maintenance(interval, [this]() { monitor_tick(); });
}

void Agent::send_heartbeat(const TrunkKey& key) {
  auto it = trunks_.find(key);
  if (it == trunks_.end()) return;
  RelayHeader header;  // channel 0: dropped by the peer after clocking rx
  header.channel = 0;
  header.msg_seq = next_msg_seq_++;
  it->second->send(make_record(header, ByteSpan{}));
  ctr_heartbeats_->inc();
}

void Agent::declare_lane_failed(fabric::HostId peer, orch::Transport transport) {
  const TrunkKey key{peer, transport};
  auto it = trunks_.find(key);
  if (it == trunks_.end()) return;
  ++lanes_failed_;
  ctr_lanes_failed_->inc();
  FF_LOG(info, "agent") << host_.name() << ": lane to host " << peer << " over "
                        << orch::transport_name(transport) << " declared dead";
  retired_trunks_.push_back(std::move(it->second));
  gauge_graveyard_->set(static_cast<std::int64_t>(retired_trunks_.size()));
  trunks_.erase(it);
  lane_last_rx_.erase(key);
  // Fail the endpoints first so their conduits detach and go stale, then
  // report: the report's health callback is what triggers re-decision, and
  // by then every victim must already know its old lane is gone.
  fail_endpoints_on(peer, transport);
  // A trunk is a pair: the mirror half on the peer agent is equally dead
  // (its QP would error, its connection reset). Retiring both sides keeps
  // trunk state symmetric, so a later re-establish builds a fresh pair
  // instead of half-wiring onto a corpse. Recursion terminates because our
  // side is already erased.
  fabric_.agent_on(peer).declare_lane_failed(host_.id(), transport);
  fabric_.orchestrator().report_lane_failure(host_.id(), peer, transport);
}

void Agent::fail_endpoints_on(fabric::HostId peer, orch::Transport transport) {
  // Snapshot first: fail() re-enters release_channel and mutates the map.
  std::vector<std::shared_ptr<RemoteChannelEndpoint>> victims;
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    auto ep = it->second.lock();
    if (ep == nullptr) {
      it = endpoints_.erase(it);
      continue;
    }
    if (ep->peer_host() == peer && ep->transport() == transport) {
      victims.push_back(std::move(ep));
    }
    ++it;
  }
  for (auto& ep : victims) ep->fail();
}

void Agent::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  FF_LOG(info, "agent") << host_.name() << (paused ? ": paused" : ": resumed");
  if (paused_) return;
  // Nothing was lost while frozen, but every lane looks silent; reset the rx
  // clocks so the monitor doesn't declare the whole fabric dead on resume.
  const SimTime now = host_.loop().now();
  for (auto& [key, last_rx] : lane_last_rx_) last_rx = now;
  auto rx = std::move(paused_rx_);
  paused_rx_.clear();
  for (Buffer& record : rx) dispatch_record(std::move(record));
  auto tx = std::move(paused_tx_);
  paused_tx_.clear();
  for (PausedRelay& p : tx) {
    relay_outbound(p.src, p.dst, p.peer_host, p.channel_id, p.transport,
                   std::move(p.message));
  }
}

void Agent::release_channel(std::uint64_t channel_id) {
  endpoints_.erase(channel_id);
  for (auto it = rx_.begin(); it != rx_.end();) {
    it = it->first.first == channel_id ? rx_.erase(it) : std::next(it);
  }
  drop_drained_lane(channel_id);
}

std::size_t Agent::endpoint_count() {
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    it = it->second.expired() ? endpoints_.erase(it) : std::next(it);
  }
  return endpoints_.size();
}

void Agent::dispatch_record(Buffer&& record) {
  if (paused_) {
    paused_rx_.push_back(std::move(record));
    return;
  }
  auto parsed = parse_record(record.view());
  if (!parsed.is_ok()) {
    FF_LOG(warn, "agent") << "malformed relay record: " << parsed.status();
    return;
  }
  const RelayHeader& h = parsed->header;
  // Channel 0 is reserved for agent-to-agent heartbeats: the trunk callback
  // already refreshed the lane's rx clock, which was the entire message.
  if (h.channel == 0) return;
  FF_LOG(debug, "agent") << "rx record ch=" << h.channel << " seq=" << h.msg_seq
                         << " off=" << h.frag_offset << " frag=" << parsed->fragment.size()
                         << " total=" << h.total_len;
  auto it = endpoints_.find(h.channel);
  std::shared_ptr<RemoteChannelEndpoint> endpoint;
  if (it != endpoints_.end()) endpoint = it->second.lock();
  if (endpoint == nullptr) {
    if (it != endpoints_.end()) endpoints_.erase(it);
    FF_LOG(debug, "agent") << "record for unknown channel " << h.channel << " dropped";
    return;
  }

  if (h.frag_offset == 0 && parsed->fragment.size() == h.total_len) {
    endpoint->deliver_inbound(Buffer(parsed->fragment.data(), parsed->fragment.size()));
    return;
  }
  auto& slot = rx_[{h.channel, h.msg_seq}];
  if (slot.data.size() != h.total_len) slot.data.resize(h.total_len);
  if (!parsed->fragment.empty()) {
    std::memcpy(slot.data.data() + h.frag_offset, parsed->fragment.data(),
                parsed->fragment.size());
  }
  slot.received += parsed->fragment.size();
  if (slot.received >= h.total_len) {
    Buffer whole = std::move(slot.data);
    rx_.erase({h.channel, h.msg_seq});
    endpoint->deliver_inbound(std::move(whole));
  }
}

}  // namespace freeflow::agent
