#include "agent/channel.h"

#include "agent/agent.h"

#include "common/logging.h"

namespace freeflow::agent {

// ------------------------------------------------------------- LaneSender

LaneSender::LaneSender(std::shared_ptr<shm::ShmLane> lane) : lane_(std::move(lane)) {
  lane_->set_on_space([this]() { drain(); });
}

void LaneSender::send(Buffer message) {
  if (overflow_.empty() && lane_->send(message.view()).is_ok()) return;
  overflow_.push_back(std::move(message));
}

bool LaneSender::writable() const noexcept {
  return overflow_.empty() && lane_->can_send(1);
}

void LaneSender::drain() {
  while (!overflow_.empty()) {
    if (!lane_->send(overflow_.front().view()).is_ok()) return;
    overflow_.pop_front();
  }
  if (user_on_space_) user_on_space_();
}

void LaneSender::detach() noexcept {
  lane_->set_on_space(nullptr);
  user_on_space_ = nullptr;
  overflow_.clear();
}

// ------------------------------------------------------- ShmChannelEndpoint

ShmChannelEndpoint::ShmChannelEndpoint(orch::ContainerId peer,
                                       std::shared_ptr<shm::ShmLane> tx,
                                       std::shared_ptr<shm::ShmLane> rx)
    : peer_(peer), tx_(std::move(tx)), rx_(std::move(rx)) {}

ShmChannelEndpoint::~ShmChannelEndpoint() { close(); }

Status ShmChannelEndpoint::send(Buffer message) {
  if (closed_) return failed_precondition("channel closed");
  tx_.send(std::move(message));
  return ok_status();
}

void ShmChannelEndpoint::set_on_message(DeliverFn cb) {
  rx_->set_receiver([this, cb = std::move(cb)](Buffer&& msg) {
    if (!closed_ && cb) cb(std::move(msg));
  });
}

void ShmChannelEndpoint::close() noexcept {
  if (closed_) return;
  closed_ = true;
  // Unhook our slots on the shared lanes: the receive hook (so in-flight
  // traffic is dropped, not delivered to a dead handler) and the tx space
  // re-arm. Messages already in the tx ring still drain to the peer — its
  // receive hook lives on the other lane end.
  rx_->set_receiver(nullptr);
  tx_.detach();
}

// ---------------------------------------------------- RemoteChannelEndpoint

RemoteChannelEndpoint::RemoteChannelEndpoint(Agent& local_agent, orch::ContainerId self,
                                             orch::ContainerId peer,
                                             fabric::HostId peer_host,
                                             std::uint64_t channel_id,
                                             orch::Transport transport,
                                             std::shared_ptr<shm::ShmLane> to_agent,
                                             std::shared_ptr<shm::ShmLane> from_agent)
    : agent_(local_agent),
      self_(self),
      peer_(peer),
      peer_host_(peer_host),
      channel_id_(channel_id),
      transport_(transport),
      tx_(to_agent),
      to_agent_(to_agent),
      from_agent_(from_agent),
      inbound_(from_agent) {
  // The container->agent relay hook is installed by the Agent (see
  // Agent::wire_outbound): it captures routing fields by value, not this
  // endpoint, so the lane keeps draining after the endpoint is torn down.
}

RemoteChannelEndpoint::~RemoteChannelEndpoint() { close(); }

bool RemoteChannelEndpoint::writable() const noexcept {
  return tx_.writable() && agent_.trunk_writable(peer_host_, transport_);
}

Status RemoteChannelEndpoint::send(Buffer message) {
  if (closed_) return failed_precondition("channel closed");
  tx_.send(std::move(message));
  return ok_status();
}

void RemoteChannelEndpoint::set_on_message(DeliverFn cb) {
  from_agent_->set_receiver([this, cb = std::move(cb)](Buffer&& msg) {
    if (!closed_ && cb) cb(std::move(msg));
  });
}

void RemoteChannelEndpoint::deliver_inbound(Buffer&& message) {
  if (closed_) return;
  inbound_.send(std::move(message));
}

void RemoteChannelEndpoint::close() noexcept {
  if (closed_) return;
  closed_ = true;
  // Unhook the container-facing receive hook and both sender re-arms; the
  // agent-owned outbound relay on to_agent_ stays so queued records (the
  // closing bye among them) still reach the trunk. Deregistering with the
  // agent stops inbound records from resolving to this channel id.
  from_agent_->set_receiver(nullptr);
  tx_.detach();
  inbound_.detach();
  agent_.release_channel(channel_id_);
}

}  // namespace freeflow::agent
