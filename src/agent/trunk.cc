#include "agent/trunk.h"

#include <cstring>

#include "common/logging.h"

namespace freeflow::agent {

// ---------------------------------------------------------------- RdmaTrunk

RdmaTrunk::RdmaTrunk(rdma::RdmaDevice& device, sim::UsageAccount& account,
                     bool zero_copy, std::size_t slot_bytes, std::uint32_t slots)
    : device_(device),
      account_(account),
      zero_copy_(zero_copy),
      slot_bytes_(slot_bytes),
      slots_(slots) {
  send_mr_ = device_.reg_mr(slot_bytes_ * slots_);
  recv_mr_ = device_.reg_mr(slot_bytes_ * slots_);
  send_cq_ = device_.create_cq(slots_ * 4);
  recv_cq_ = device_.create_cq(slots_ * 4);
  rdma::QpAttr attr;
  attr.max_send_wr = slots_ * 2;
  attr.max_recv_wr = slots_ * 2;
  qp_ = device_.create_qp(send_cq_, recv_cq_, attr);
  free_slots_.reserve(slots_);
  for (std::uint32_t s = 0; s < slots_; ++s) free_slots_.push_back(s);
}

void RdmaTrunk::start(std::shared_ptr<rdma::QueuePair>) {
  for (std::uint32_t s = 0; s < slots_; ++s) repost_recv(s);
  send_cq_->set_notify([this]() { schedule_poll(); });
  recv_cq_->set_notify([this]() { schedule_poll(); });
  pump();
}

void RdmaTrunk::repost_recv(std::uint32_t slot) {
  rdma::RecvWr wr;
  wr.wr_id = slot;
  wr.local = {recv_mr_, slot * slot_bytes_, slot_bytes_};
  const Status posted = qp_->post_recv(wr, &account_);
  FF_CHECK(posted.is_ok());
}

void RdmaTrunk::send(Buffer record, std::uint32_t tenant) {
  FF_CHECK(record.size() <= slot_bytes_);
  queue_.push_back(QueuedRecord{std::move(record), tenant});
  pump();
}

void RdmaTrunk::pump() {
  if (qp_->state() != rdma::QpState::ready) return;
  auto& host = device_.host();
  const auto& m = host.cost_model();
  while (!queue_.empty() && !free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    Buffer record = std::move(queue_.front().record);
    const std::uint32_t tenant = queue_.front().tenant;
    queue_.pop_front();

    auto dst = send_mr_->slice(slot * slot_bytes_, record.size());
    FF_CHECK(dst.is_ok());
    std::memcpy(dst->data(), record.data(), record.size());

    // Zero-copy relay: the shm block doubles as the registered buffer, so
    // the agent pays only fixed per-record CPU. Copy mode is the ablation.
    double cpu = m.agent_record_ns;
    if (!zero_copy_) cpu += m.agent_copy_ns_per_byte * static_cast<double>(record.size());
    host.cpu().submit(cpu, nullptr, &account_);

    rdma::SendWr wr;
    wr.wr_id = slot;
    wr.opcode = rdma::Opcode::send;
    wr.local = {send_mr_, slot * slot_bytes_, record.size()};
    wr.signaled = true;
    wr.tenant = tenant;
    const Status posted = qp_->post_send(wr, &account_);
    FF_CHECK(posted.is_ok());
    ++sent_;
  }
}

void RdmaTrunk::schedule_poll() {
  if (poll_scheduled_) return;
  poll_scheduled_ = true;
  device_.host().loop().schedule(device_.host().cost_model().agent_wakeup_ns, [this]() {
    poll_scheduled_ = false;
    poll_cqs();
  });
}

void RdmaTrunk::poll_cqs() {
  auto& host = device_.host();
  const auto& m = host.cost_model();
  rdma::WorkCompletion wcs[16];

  for (;;) {
    const std::size_t n = send_cq_->poll(wcs);
    if (n == 0) break;
    host.cpu().submit(m.rdma_poll_ns * static_cast<double>(n), nullptr, &account_);
    for (std::size_t i = 0; i < n; ++i) {
      if (wcs[i].status != rdma::WcStatus::success) {
        FF_LOG(warn, "agent") << "trunk send completion error";
        continue;
      }
      free_slots_.push_back(static_cast<std::uint32_t>(wcs[i].wr_id));
    }
  }
  for (;;) {
    const std::size_t n = recv_cq_->poll(wcs);
    if (n == 0) break;
    host.cpu().submit(m.rdma_poll_ns * static_cast<double>(n), nullptr, &account_);
    for (std::size_t i = 0; i < n; ++i) {
      const auto slot = static_cast<std::uint32_t>(wcs[i].wr_id);
      Buffer record(recv_mr_->data().data() + slot * slot_bytes_, wcs[i].byte_len);
      repost_recv(slot);
      host.cpu().submit(m.agent_record_ns, nullptr, &account_);
      if (on_record_) on_record_(std::move(record));
    }
  }
  pump();
  maybe_drained();
}

// ---------------------------------------------------------------- DpdkTrunk

DpdkTrunk::DpdkTrunk(dpdk::DpdkPort& port, fabric::HostId peer)
    : port_(port), peer_(peer) {}

void DpdkTrunk::send(Buffer record, std::uint32_t tenant) {
  ++sent_;
  const Status sent = port_.send(peer_, std::move(record), tenant);
  if (!sent.is_ok()) {
    FF_LOG(warn, "agent") << "dpdk trunk send failed: " << sent;
  }
}

// ----------------------------------------------------------------- TcpTrunk

void TcpTrunk::attach(tcp::TcpConnection::Ptr conn) {
  conn_ = std::move(conn);
  conn_->set_on_data([this](Buffer&& data) { on_bytes(std::move(data)); });
  conn_->set_on_writable([this]() { pump(); });
  pump();
}

void TcpTrunk::send(Buffer record, std::uint32_t tenant) {
  // A kernel TCP byte stream interleaves every container's records into one
  // connection: frames are not attributable to a tenant at the NIC, so the
  // class stays 0 (documented limitation; the kernel-bypass paths classify
  // precisely).
  (void)tenant;
  queue_.push_back(std::move(record));
  pump();
}

void TcpTrunk::pump() {
  if (conn_ == nullptr) return;
  while (!queue_.empty()) {
    const Buffer& record = queue_.front();
    Buffer framed(4 + record.size());
    const auto len = static_cast<std::uint32_t>(record.size());
    std::memcpy(framed.data(), &len, 4);
    std::memcpy(framed.data() + 4, record.data(), record.size());
    const Status s = conn_->send(std::move(framed));
    if (!s.is_ok()) return;  // would_block: resume from on_writable
    ++sent_;
    queue_.pop_front();
  }
  maybe_drained();
}

void TcpTrunk::on_bytes(Buffer&& data) {
  rx_accum_.append(data.view());
  std::size_t cursor = 0;
  while (rx_accum_.size() - cursor >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, rx_accum_.data() + cursor, 4);
    if (rx_accum_.size() - cursor - 4 < len) break;
    Buffer record(rx_accum_.data() + cursor + 4, len);
    cursor += 4 + len;
    if (on_record_) on_record_(std::move(record));
  }
  if (cursor > 0) {
    Buffer rest(rx_accum_.data() + cursor, rx_accum_.size() - cursor);
    rx_accum_ = std::move(rest);
  }
}

}  // namespace freeflow::agent
