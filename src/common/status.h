// Status / Result: lightweight recoverable-error handling for the FreeFlow
// libraries. Programming errors (broken invariants) use FF_CHECK/assert and
// terminate; expected runtime failures (connection refused, no such
// container, permission denied, queue full) travel as Status.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace freeflow {

/// Canonical error space, modeled after the POSIX/absl intersection that
/// networking code actually needs.
enum class Errc : std::uint8_t {
  ok = 0,
  invalid_argument,
  not_found,
  already_exists,
  permission_denied,
  resource_exhausted,
  failed_precondition,
  unavailable,
  connection_reset,
  connection_refused,
  timed_out,
  out_of_range,
  would_block,
  aborted,
  unimplemented,
  internal,
};

/// Human-readable name of an error code ("permission_denied").
std::string_view errc_name(Errc code) noexcept;

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Errc::ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Errc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "permission_denied: container c3 not in trust group" or "ok".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

// Convenience factories, mirroring absl.
inline Status ok_status() { return {}; }
inline Status invalid_argument(std::string m) { return {Errc::invalid_argument, std::move(m)}; }
inline Status not_found(std::string m) { return {Errc::not_found, std::move(m)}; }
inline Status already_exists(std::string m) { return {Errc::already_exists, std::move(m)}; }
inline Status permission_denied(std::string m) { return {Errc::permission_denied, std::move(m)}; }
inline Status resource_exhausted(std::string m) { return {Errc::resource_exhausted, std::move(m)}; }
inline Status failed_precondition(std::string m) { return {Errc::failed_precondition, std::move(m)}; }
inline Status unavailable(std::string m) { return {Errc::unavailable, std::move(m)}; }
inline Status connection_reset(std::string m) { return {Errc::connection_reset, std::move(m)}; }
inline Status connection_refused(std::string m) { return {Errc::connection_refused, std::move(m)}; }
inline Status timed_out(std::string m) { return {Errc::timed_out, std::move(m)}; }
inline Status out_of_range(std::string m) { return {Errc::out_of_range, std::move(m)}; }
inline Status would_block(std::string m) { return {Errc::would_block, std::move(m)}; }
inline Status aborted(std::string m) { return {Errc::aborted, std::move(m)}; }
inline Status unimplemented(std::string m) { return {Errc::unimplemented, std::move(m)}; }
inline Status internal_error(std::string m) { return {Errc::internal, std::move(m)}; }

/// A value-or-Status. `Result<T>` either holds a T (status OK) or an error
/// Status. Accessing value() on an error aborts — callers must check.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    if (status_.is_ok()) {
      status_ = internal_error("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    check_has_value();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    check_has_value();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    check_has_value();
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  void check_has_value() const;

  std::optional<T> value_;
  Status status_;
};

[[noreturn]] void abort_with(const char* what, const Status& status);

template <typename T>
void Result<T>::check_has_value() const {
  if (!value_.has_value()) {
    abort_with("Result::value() called on error result", status_);
  }
}

/// CHECK-style invariant enforcement for programming errors.
#define FF_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::freeflow::abort_with("FF_CHECK failed: " #cond " at " __FILE__,     \
                             ::freeflow::internal_error(#cond));            \
    }                                                                       \
  } while (0)

/// Early-return on error Status.
#define FF_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::freeflow::Status ff_status_ = (expr);   \
    if (!ff_status_.is_ok()) return ff_status_; \
  } while (0)

}  // namespace freeflow
