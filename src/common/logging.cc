#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace freeflow {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::warn)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_emit(LogLevel level, std::string_view component, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %.*s] %s\n", level_tag(level),
               static_cast<int>(component.size()), component.data(), message.c_str());
}
}  // namespace detail

}  // namespace freeflow
