// Slab recycler for shared_ptr-managed simulation objects. allocate_shared
// through a freelist-backed allocator puts the object and its control block
// in one recycled slab block, so steady-state packet traffic performs zero
// heap allocations: blocks are carved from chunks once and then cycle
// between the freelist and live objects.
//
// The freelist state is owned by a shared_ptr that every live allocation's
// control block also references, so pool-before-object destruction order is
// safe (blocks returned after the pool dies are freed with the state).
//
// NOT thread-safe: the simulation core is single-threaded by design.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "common/status.h"

namespace freeflow::common {

template <typename T>
class SlabPool {
 public:
  SlabPool() : state_(std::make_shared<State>()) {}

  /// Constructs a T in a recycled slab block. Destruction returns the block
  /// (object + control block) to the freelist instead of the heap.
  template <typename... Args>
  std::shared_ptr<T> make(Args&&... args) {
    return std::allocate_shared<T>(Alloc<T>(state_), std::forward<Args>(args)...);
  }

  /// Blocks currently sitting in the freelist (observability for tests).
  [[nodiscard]] std::size_t free_blocks() const noexcept {
    return state_->free_blocks.size();
  }
  /// Total blocks ever carved (live + free).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return state_->chunks.size() * k_blocks_per_chunk;
  }

 private:
  static constexpr std::size_t k_blocks_per_chunk = 64;

  struct State {
    std::size_t block_size = 0;   // fixed by the first allocation
    std::size_t block_align = 0;
    std::vector<void*> chunks;
    std::vector<void*> free_blocks;

    ~State() {
      for (void* c : chunks) {
        ::operator delete(c, std::align_val_t(block_align));
      }
    }
  };

  template <typename U>
  struct Alloc {
    using value_type = U;

    explicit Alloc(std::shared_ptr<State> s) noexcept : state(std::move(s)) {}
    template <typename V>
    // NOLINTNEXTLINE(google-explicit-constructor): allocator rebind.
    Alloc(const Alloc<V>& other) noexcept : state(other.state) {}

    U* allocate(std::size_t n) {
      FF_CHECK(n == 1);
      State& s = *state;
      if (s.block_size == 0) {
        s.block_size = sizeof(U);
        s.block_align = alignof(U);
      }
      // One pool serves exactly one allocate_shared node type.
      FF_CHECK(sizeof(U) == s.block_size && alignof(U) <= s.block_align);
      if (s.free_blocks.empty()) refill(s);
      void* p = s.free_blocks.back();
      s.free_blocks.pop_back();
      return static_cast<U*>(p);
    }

    void deallocate(U* p, std::size_t) noexcept {
      state->free_blocks.push_back(p);
    }

    friend bool operator==(const Alloc& a, const Alloc& b) noexcept {
      return a.state == b.state;
    }

    std::shared_ptr<State> state;
  };

  static void refill(State& s) {
    auto* chunk = static_cast<unsigned char*>(
        ::operator new(s.block_size * k_blocks_per_chunk, std::align_val_t(s.block_align)));
    s.chunks.push_back(chunk);
    s.free_blocks.reserve(s.free_blocks.size() + k_blocks_per_chunk);
    for (std::size_t i = 0; i < k_blocks_per_chunk; ++i) {
      s.free_blocks.push_back(chunk + i * s.block_size);
    }
  }

  std::shared_ptr<State> state_;
};

}  // namespace freeflow::common
