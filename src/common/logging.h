// Minimal leveled logger. Logging is off by default above `warn` so that
// benchmarks and simulations stay quiet; tests can raise verbosity.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace freeflow {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, std::string_view component, const std::string& message);

/// RAII stream that emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace freeflow

/// Usage: FF_LOG(info, "agent") << "channel up host=" << h;
#define FF_LOG(level, component)                                          \
  if (::freeflow::LogLevel::level < ::freeflow::log_level()) {            \
  } else                                                                  \
    ::freeflow::detail::LogLine(::freeflow::LogLevel::level, (component))
