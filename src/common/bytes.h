// Byte buffers and data-integrity helpers. Payloads in the simulation are
// real bytes so that end-to-end tests can checksum what arrives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace freeflow {

using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

/// Owning, resizable byte buffer.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t size) : bytes_(size) {}
  Buffer(const void* data, std::size_t size)
      : bytes_(static_cast<const std::byte*>(data), static_cast<const std::byte*>(data) + size) {}
  static Buffer from_string(std::string_view s) { return Buffer(s.data(), s.size()); }

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bytes_.empty(); }
  [[nodiscard]] std::byte* data() noexcept { return bytes_.data(); }
  [[nodiscard]] const std::byte* data() const noexcept { return bytes_.data(); }

  [[nodiscard]] ByteSpan view() const noexcept { return {bytes_.data(), bytes_.size()}; }
  [[nodiscard]] MutableByteSpan mutable_view() noexcept { return {bytes_.data(), bytes_.size()}; }

  void resize(std::size_t size) { bytes_.resize(size); }
  void append(ByteSpan chunk) { bytes_.insert(bytes_.end(), chunk.begin(), chunk.end()); }
  void append(const void* data, std::size_t size) {
    append(ByteSpan{static_cast<const std::byte*>(data), size});
  }
  void clear() noexcept { bytes_.clear(); }

  [[nodiscard]] std::string to_string() const {
    return {reinterpret_cast<const char*>(bytes_.data()), bytes_.size()};
  }

  friend bool operator==(const Buffer& a, const Buffer& b) { return a.bytes_ == b.bytes_; }

 private:
  std::vector<std::byte> bytes_;
};

/// CRC32 (IEEE polynomial, reflected) over a byte span. Used by tests and
/// workloads to verify payload integrity across every transport.
std::uint32_t crc32(ByteSpan data) noexcept;
inline std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  return crc32(ByteSpan{static_cast<const std::byte*>(data), size});
}

/// Fills `out` with a deterministic pattern derived from `seed` so receivers
/// can regenerate and compare.
void fill_pattern(MutableByteSpan out, std::uint64_t seed) noexcept;

/// True if `data` matches the pattern `fill_pattern` would produce for seed.
bool check_pattern(ByteSpan data, std::uint64_t seed) noexcept;

}  // namespace freeflow
