// Deterministic PRNG (xoshiro256**). The whole simulation is reproducible
// from a single seed; std::mt19937 is avoided in hot paths for speed.
#pragma once

#include <cmath>
#include <cstdint>

namespace freeflow {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDF00DULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) noexcept {
    double u = next_double();
    if (u <= 0.0) u = 1e-18;  // avoid log(0)
    return -mean * log_approx(u);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) noexcept { return next_double() < p; }

 private:
  static double log_approx(double v) noexcept { return std::log(v); }
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace freeflow
