#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace freeflow {

std::string_view errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::permission_denied: return "permission_denied";
    case Errc::resource_exhausted: return "resource_exhausted";
    case Errc::failed_precondition: return "failed_precondition";
    case Errc::unavailable: return "unavailable";
    case Errc::connection_reset: return "connection_reset";
    case Errc::connection_refused: return "connection_refused";
    case Errc::timed_out: return "timed_out";
    case Errc::out_of_range: return "out_of_range";
    case Errc::would_block: return "would_block";
    case Errc::aborted: return "aborted";
    case Errc::unimplemented: return "unimplemented";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out{errc_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void abort_with(const char* what, const Status& status) {
  std::fprintf(stderr, "[freeflow fatal] %s (%s)\n", what, status.to_string().c_str());
  std::abort();
}

}  // namespace freeflow
