// Bounded-retry policy: exponential backoff with deterministic seeded
// jitter, expressed entirely on the simulation clock. Users (the agent's
// trunk establishment foremost) drive the schedule themselves — the policy
// only answers "is this error worth retrying?" and "how long until the
// next attempt?", so the same policy value reproduces the same schedule
// from the same Rng seed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace freeflow {

struct RetryPolicy {
  int max_attempts = 6;                 ///< total tries, first attempt included
  SimDuration initial_backoff_ns = 50 * k_microsecond;
  double backoff_multiplier = 2.0;
  SimDuration max_backoff_ns = 5 * k_millisecond;
  /// Each backoff is scaled by a factor uniform in [1-j, 1+j]; jitter keeps
  /// a storm of same-tick failures from retrying in lockstep.
  double jitter_fraction = 0.2;
  /// Watchdog per attempt: a handshake that neither completes nor fails
  /// within this window is abandoned and counted as one failed attempt.
  /// 0 disables the watchdog.
  SimDuration attempt_timeout_ns = 10 * k_millisecond;

  /// Backoff before attempt `completed_attempts + 1` (so pass 1 after the
  /// first failure). Deterministic given the Rng state.
  [[nodiscard]] SimDuration backoff_for(int completed_attempts, Rng& rng) const noexcept {
    double nominal = static_cast<double>(initial_backoff_ns);
    for (int i = 1; i < completed_attempts; ++i) {
      nominal *= backoff_multiplier;
      if (nominal >= static_cast<double>(max_backoff_ns)) break;
    }
    nominal = std::min(nominal, static_cast<double>(max_backoff_ns));
    const double jitter = 1.0 + jitter_fraction * (2.0 * rng.next_double() - 1.0);
    const auto delay = static_cast<SimDuration>(nominal * jitter);
    return std::max<SimDuration>(delay, 1);
  }

  /// Transient errors worth another attempt. Structural errors (bad
  /// argument, missing capability, permission) fail immediately: retrying
  /// cannot change them.
  [[nodiscard]] static bool retryable(const Status& s) noexcept {
    switch (s.code()) {
      case Errc::unavailable:
      case Errc::timed_out:
      case Errc::aborted:
      case Errc::connection_reset:
      case Errc::connection_refused:
      case Errc::resource_exhausted:
        return true;
      default:
        return false;
    }
  }
};

}  // namespace freeflow
