#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace freeflow {

Histogram::Histogram(int sub_buckets_log2) : sub_log2_(sub_buckets_log2) {
  // 64 exponent ranges × 2^sub_log2_ sub-buckets covers the full int64 range.
  buckets_.assign(static_cast<std::size_t>(64) << sub_log2_, 0);
}

std::size_t Histogram::bucket_index(std::int64_t value) const noexcept {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < (1ULL << sub_log2_)) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - sub_log2_;
  const auto sub = static_cast<std::size_t>((v >> shift) & ((1ULL << sub_log2_) - 1));
  const auto range = static_cast<std::size_t>(msb - sub_log2_ + 1);
  return (range << sub_log2_) + sub;
}

std::int64_t Histogram::bucket_midpoint(std::size_t index) const noexcept {
  const std::size_t range = index >> sub_log2_;
  const std::size_t sub = index & ((1ULL << sub_log2_) - 1);
  if (range == 0) return static_cast<std::int64_t>(sub);
  const int shift = static_cast<int>(range) - 1;
  const std::uint64_t base = (1ULL << (shift + sub_log2_)) + (static_cast<std::uint64_t>(sub) << shift);
  const std::uint64_t width = 1ULL << shift;
  return static_cast<std::int64_t>(base + width / 2);
}

void Histogram::record(std::int64_t value) noexcept { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) noexcept {
  if (n == 0) return;
  const std::size_t idx = bucket_index(value);
  buckets_[std::min(idx, buckets_.size() - 1)] += n;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<std::int64_t>(n);
}

std::int64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (other.buckets_.size() == buckets_.size()) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  } else {
    // Different resolution: re-record midpoints (approximate).
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      if (other.buckets_[i] != 0) {
        buckets_[std::min(bucket_index(other.bucket_midpoint(i)), buckets_.size() - 1)] +=
            other.buckets_[i];
      }
    }
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}

std::string Histogram::summary_ns() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%llu mean=%s p50=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_), format_ns(mean()).c_str(),
                format_ns(static_cast<double>(p50())).c_str(),
                format_ns(static_cast<double>(p99())).c_str(),
                format_ns(static_cast<double>(max())).c_str());
  return buf;
}

}  // namespace freeflow
