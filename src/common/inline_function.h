// A fixed-capacity, move-only callable with small-buffer-only storage: the
// capture is placed inline (never on the heap) and captures larger than the
// capacity are rejected at compile time. This is what makes the event-loop
// hot path allocation-free: an InlineFunction costs one placement-new and a
// vtable-style ops pointer, versus std::function's heap allocation for any
// capture above ~16 bytes.
//
// Contract differences from std::function, chosen for the simulator:
//   - move-only (events are scheduled once and fired once);
//   - capture must be nothrow-move-constructible and at most pointer/double
//     aligned (the storage is 8-byte aligned, not max_align_t, so the object
//     stays tightly packed inside Event structs);
//   - invoking an empty InlineFunction aborts (FF_CHECK) instead of throwing.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace freeflow::common {

template <typename Sig, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t k_capacity = Capacity;
  static constexpr std::size_t k_align = alignof(double);

  InlineFunction() noexcept = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  InlineFunction(std::nullptr_t) noexcept {}

  /// Wraps any callable whose decayed type fits the inline storage. A capture
  /// that is too large is a compile error by design: shrink it or box part of
  /// it behind a pointer at the call site (cold paths may heap-box; hot paths
  /// should shrink).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): callables convert implicitly.
  InlineFunction(F&& f) {
    static_assert(sizeof(D) <= Capacity,
                  "capture too large for InlineFunction: shrink the capture "
                  "or box it behind a pointer");
    static_assert(alignof(D) <= k_align,
                  "capture over-aligned for InlineFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "InlineFunction captures must be nothrow-movable");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    ops_ = &k_ops<D>;
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    FF_CHECK(ops_ != nullptr);
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }

  /// Destroys the held callable, leaving the function empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Null entries mark trivially relocatable/destructible captures: moves
    // become an inline fixed-size memcpy and destruction a no-op — no
    // indirect call on the event-loop hot path for pointer/POD captures.
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool k_trivial =
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;

  template <typename D>
  static constexpr Ops k_ops = {
      [](void* s, Args&&... args) -> R {
        return (*static_cast<D*>(s))(std::forward<Args>(args)...);
      },
      k_trivial<D> ? nullptr
                   : +[](void* dst, void* src) noexcept {
                       D* d = static_cast<D*>(src);
                       ::new (dst) D(std::move(*d));
                       d->~D();
                     },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* s) noexcept { static_cast<D*>(s)->~D(); },
  };

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, Capacity);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(k_align) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace freeflow::common
