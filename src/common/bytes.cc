#include "common/bytes.h"

#include <array>

namespace freeflow {

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}
}  // namespace

std::uint32_t crc32(ByteSpan data) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

void fill_pattern(MutableByteSpan out, std::uint64_t seed) noexcept {
  // splitmix64 stream keyed by seed; byte i depends on (seed, i) only.
  std::uint64_t state = seed ^ 0x9E3779B97F4A7C15ULL;
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i % 8 == 0) {
      state += 0x9E3779B97F4A7C15ULL;
      word = state;
      word = (word ^ (word >> 30)) * 0xBF58476D1CE4E5B9ULL;
      word = (word ^ (word >> 27)) * 0x94D049BB133111EBULL;
      word ^= word >> 31;
    }
    out[i] = static_cast<std::byte>((word >> ((i % 8) * 8)) & 0xFFU);
  }
}

bool check_pattern(ByteSpan data, std::uint64_t seed) noexcept {
  if (data.empty()) return true;  // empty spans may carry a null data()
  Buffer expected(data.size());
  fill_pattern(expected.mutable_view(), seed);
  return std::memcmp(expected.data(), data.data(), data.size()) == 0;
}

}  // namespace freeflow
