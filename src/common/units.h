// Strong-ish unit helpers for the simulation: virtual time in nanoseconds,
// sizes in bytes, rates in bits per second. Kept as thin wrappers over
// integral types for zero-cost arithmetic in the event loop hot path.
#pragma once

#include <cstdint>

namespace freeflow {

/// Virtual simulation time in nanoseconds since simulation start.
using SimTime = std::int64_t;
/// A duration in virtual nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration k_nanosecond = 1;
constexpr SimDuration k_microsecond = 1'000;
constexpr SimDuration k_millisecond = 1'000'000;
constexpr SimDuration k_second = 1'000'000'000;

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * 1024ULL; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * 1024ULL * 1024ULL; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * 1024ULL * 1024ULL * 1024ULL; }

/// Rates are expressed in bits per second.
using BitsPerSecond = double;

constexpr BitsPerSecond k_gbps = 1e9;
constexpr BitsPerSecond k_mbps = 1e6;

/// Time to serialize `bytes` at `rate` bits/sec, in virtual nanoseconds.
constexpr SimDuration transmission_time(std::uint64_t bytes, BitsPerSecond rate) {
  if (rate <= 0) return 0;
  const double seconds = static_cast<double>(bytes) * 8.0 / rate;
  return static_cast<SimDuration>(seconds * 1e9);
}

/// Gb/s delivered when `bytes` move in `elapsed` virtual nanoseconds.
constexpr double throughput_gbps(std::uint64_t bytes, SimDuration elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / static_cast<double>(elapsed);
}

}  // namespace freeflow
