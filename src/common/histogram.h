// Log-linear latency histogram (HdrHistogram-style): constant relative error
// across many orders of magnitude, O(1) record, quantile queries by scan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace freeflow {

class Histogram {
 public:
  /// `sub_buckets_log2` controls relative precision (default 1/32 ≈ 3 %).
  explicit Histogram(int sub_buckets_log2 = 5);

  void record(std::int64_t value) noexcept;
  void record_n(std::int64_t value, std::uint64_t count) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const noexcept { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0,1]; approximate to bucket resolution.
  [[nodiscard]] std::int64_t quantile(double q) const noexcept;
  [[nodiscard]] std::int64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::int64_t p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] std::int64_t p999() const noexcept { return quantile(0.999); }

  void merge(const Histogram& other) noexcept;
  void reset() noexcept;

  /// "n=1000 mean=12.3us p50=11us p99=40us max=80us" with ns values.
  [[nodiscard]] std::string summary_ns() const;

 private:
  [[nodiscard]] std::size_t bucket_index(std::int64_t value) const noexcept;
  [[nodiscard]] std::int64_t bucket_midpoint(std::size_t index) const noexcept;

  int sub_log2_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Pretty-prints a nanosecond quantity ("1.25ms", "830ns").
std::string format_ns(double ns);

}  // namespace freeflow
