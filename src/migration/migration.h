// Connection-preserving live container migration (paper §6 "container
// migration": the orchestrator knows where containers are going, so the
// network layer can move *with* them instead of reacting after the fact).
//
// The MigrationCoordinator turns a container move into a planned protocol:
//
//   1. quiesce  — every conduit touching the container pauses at a message
//                 boundary on BOTH ends (sends queue, credits stop, receive
//                 and ack paths stay live) and the migrating side drains its
//                 retained window under a sim-clock deadline. Deadline
//                 expiry is not fatal: the undrained tail simply travels in
//                 the image and replays at the destination (peers dedup),
//                 the same lossless path reactive failover takes.
//   2. capture  — the migrating side serializes each conduit's portable
//                 state (sequence counters, ack bookkeeping, retained
//                 window, queued sends, RC-QP transport identity) into a
//                 MigrationImage; peer endpoints detach (generation-guarded
//                 blackout spans open) and the stream adapter cancels any
//                 half-built upgrade QP.
//   3. transfer — the cluster orchestrator moves the container with a
//                 downtime proportional to the image size (the planned
//                 stop-and-copy is tiny compared to the reactive default).
//   4. resume   — at the destination the records restore, both ends
//                 unpause, and the initiator side rebinds through the
//                 ordinary generation-guarded path: retained windows
//                 replay, receivers dedup — zero loss, in order,
//                 byte-exact, bounded blackout.
//
// The coordinator also *initiates* migrations proactively: off NICs whose
// rate_fraction degrades below a threshold, and off severed fabric paths
// (path_partition faults) — where no transport shift can help, but
// co-locating the endpoints (shm) can.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/freeflow.h"

namespace freeflow::migration {

/// The portable network state of one container: one flat record per conduit
/// (see Conduit::capture_for_migration) under a magic/version header. The
/// encoded form is what the orchestrator "ships with the container"; its
/// byte size sets the transfer downtime.
struct MigrationImage {
  static constexpr std::uint32_t k_magic = 0x46464D47;  // "FFMG"
  static constexpr std::uint16_t k_version = 1;

  orch::ContainerId container = 0;
  fabric::HostId src_host = 0;
  fabric::HostId dst_host = 0;
  std::vector<Buffer> conduit_records;

  [[nodiscard]] Buffer encode() const;
  [[nodiscard]] static Result<MigrationImage> decode(ByteSpan bytes);
  /// Encoded size without materializing the encoding.
  [[nodiscard]] std::size_t byte_size() const noexcept;
};

struct MigrationConfig {
  /// 0 = use the cost model's migration_quiesce_deadline_ns.
  SimDuration quiesce_deadline_ns = 0;
  /// Proactive trigger: migrate containers off hosts whose NIC rate_fraction
  /// falls below this (link still up — a dead link is failover's business).
  double degrade_threshold = 0.5;
  bool auto_migrate_on_degrade = true;
  /// Proactive trigger: on a path partition, co-locate affected pairs.
  bool auto_migrate_on_partition = true;
};

struct MigrationReport {
  orch::ContainerId container = 0;
  fabric::HostId src_host = 0;
  fabric::HostId dst_host = 0;
  std::size_t conduits_moved = 0;
  std::size_t image_bytes = 0;
  /// False when any conduit hit the quiesce deadline with retained messages
  /// (still lossless — the tail replayed at the destination).
  bool drained = true;
  /// Pause of the first conduit -> every conduit live again (app-visible).
  SimDuration blackout_ns = 0;
  core::MigrationReason reason = core::MigrationReason::planned;
};

class MigrationCoordinator {
 public:
  using DoneFn = std::function<void(Result<MigrationReport>)>;

  /// Construct AFTER FreeFlow: the coordinator's moved-subscription must run
  /// behind FreeFlow's (which skips containers under planned migration).
  /// Proactive triggers subscribe immediately and stay armed for the
  /// coordinator's lifetime.
  explicit MigrationCoordinator(core::FreeFlow& ff, MigrationConfig config = {});
  ~MigrationCoordinator();

  MigrationCoordinator(const MigrationCoordinator&) = delete;
  MigrationCoordinator& operator=(const MigrationCoordinator&) = delete;

  /// Starts a planned migration of `id` to `dst`. `done` fires once, after
  /// every affected conduit is live again (or rejected up front: unknown /
  /// not-running container, bad destination, move already in flight, or a
  /// touching conduit already owned by another migration).
  void migrate(orch::ContainerId id, fabric::HostId dst, DoneFn done,
               core::MigrationReason reason = core::MigrationReason::planned);

  [[nodiscard]] bool in_flight(orch::ContainerId id) const {
    return moves_.contains(id);
  }
  [[nodiscard]] std::uint64_t migrations_completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t quiesce_timeouts() const noexcept {
    return quiesce_timeouts_;
  }
  [[nodiscard]] const MigrationConfig& config() const noexcept { return config_; }

 private:
  /// One affected connection: the migrating-side endpoint, its captured
  /// record, and (when the peer is library-attached) the remote endpoint.
  struct Endpoint {
    core::ConduitPtr local;            // endpoint owned by the moving container
    core::ConduitPtr peer;             // remote endpoint (may be null)
    core::ContainerNetPtr peer_net;    // keeps the peer's library alive
    Buffer record;                     // capture_for_migration() output
    SimDuration blackout_before = 0;   // local->blackout_ns() at capture
  };
  struct Move {
    fabric::HostId src = 0;
    fabric::HostId dst = 0;
    core::MigrationReason reason = core::MigrationReason::planned;
    core::ContainerNetPtr net;         // null: container has no library attached
    std::vector<Endpoint> endpoints;
    std::size_t image_bytes = 0;
    bool drained = true;
    SimTime paused_at = 0;
    DoneFn done;
    int resume_polls = 0;
    sim::EventHandle resume_timer;
  };

  void start_capture(orch::ContainerId id);
  void resume(orch::ContainerId id);
  void poll_resumed(orch::ContainerId id);
  void finish(orch::ContainerId id);

  void handle_health(fabric::HostId host);
  void handle_path(fabric::HostId a, fabric::HostId b, bool up);
  /// Healthiest candidate host (link up, rate above threshold), fewest
  /// running containers, excluding `avoid`; nullopt when none qualifies.
  [[nodiscard]] std::optional<fabric::HostId> pick_destination(fabric::HostId avoid) const;

  [[nodiscard]] sim::EventLoop& loop() { return ff_.loop(); }
  [[nodiscard]] telemetry::Telemetry& telemetry();
  [[nodiscard]] const sim::CostModel& model();

  core::FreeFlow& ff_;
  MigrationConfig config_;
  std::unordered_map<orch::ContainerId, Move> moves_;
  std::uint64_t completed_ = 0;
  std::uint64_t quiesce_timeouts_ = 0;

  telemetry::Counter* ctr_planned_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_degrade_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_partition_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_image_bytes_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_quiesce_timeouts_ = telemetry::Counter::discard();
  Histogram* hist_blackout_ = telemetry::discard_histogram();

  /// Orchestrator subscriptions can outlive this coordinator.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace freeflow::migration
