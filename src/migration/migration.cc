#include "migration/migration.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace freeflow::migration {

namespace {

/// Grace between "every quiesce completed" and capture: lets in-flight
/// deliveries on lossless channels (shm rings have no retained window to
/// vouch for them) land before the channels close.
constexpr SimDuration k_capture_settle_ns = 10 * k_microsecond;
/// Resume-completion poll cadence and cap (cap = 50 ms of sim time; a
/// conduit that cannot re-attach by then finishes with its sends queued and
/// the ordinary health/refit machinery keeps retrying).
constexpr SimDuration k_resume_poll_ns = 20 * k_microsecond;
constexpr int k_max_resume_polls = 5000;
/// A rebind dial can exhaust its own retry budget while overlay routes are
/// still converging on the new host — and "retry on next health event" never
/// fires after a clean planned move. The poll re-drives the rebind for any
/// still-detached conduit at this cadence.
constexpr int k_resume_rekick_polls = 250;

template <typename T>
void put_scalar(Buffer& out, T v) {
  out.append(&v, sizeof(v));
}

template <typename T>
bool get_scalar(ByteSpan in, std::size_t& off, T& v) {
  if (off + sizeof(v) > in.size()) return false;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return true;
}

}  // namespace

// ---------------------------------------------------------- MigrationImage

std::size_t MigrationImage::byte_size() const noexcept {
  // magic + version + count + container + src + dst, then (len, bytes) each.
  std::size_t n = 4 + 2 + 2 + 8 + 4 + 4;
  for (const auto& r : conduit_records) n += 4 + r.size();
  return n;
}

Buffer MigrationImage::encode() const {
  Buffer out;
  put_scalar(out, k_magic);
  put_scalar(out, k_version);
  put_scalar(out, static_cast<std::uint16_t>(conduit_records.size()));
  put_scalar(out, static_cast<std::uint64_t>(container));
  put_scalar(out, static_cast<std::uint32_t>(src_host));
  put_scalar(out, static_cast<std::uint32_t>(dst_host));
  for (const auto& r : conduit_records) {
    put_scalar(out, static_cast<std::uint32_t>(r.size()));
    out.append(r.view());
  }
  return out;
}

Result<MigrationImage> MigrationImage::decode(ByteSpan bytes) {
  MigrationImage image;
  std::size_t off = 0;
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t count = 0;
  std::uint64_t container = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  if (!get_scalar(bytes, off, magic) || magic != k_magic) {
    return invalid_argument("migration image: bad magic");
  }
  if (!get_scalar(bytes, off, version) || version != k_version) {
    return invalid_argument("migration image: unsupported version");
  }
  if (!get_scalar(bytes, off, count) || !get_scalar(bytes, off, container) ||
      !get_scalar(bytes, off, src) || !get_scalar(bytes, off, dst)) {
    return invalid_argument("migration image: truncated header");
  }
  image.container = container;
  image.src_host = src;
  image.dst_host = dst;
  image.conduit_records.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    if (!get_scalar(bytes, off, len) || off + len > bytes.size()) {
      return invalid_argument("migration image: truncated record");
    }
    image.conduit_records.emplace_back(bytes.data() + off, len);
    off += len;
  }
  if (off != bytes.size()) {
    return invalid_argument("migration image: trailing bytes");
  }
  return image;
}

// ---------------------------------------------------- MigrationCoordinator

MigrationCoordinator::MigrationCoordinator(core::FreeFlow& ff, MigrationConfig config)
    : ff_(ff), config_(config) {
  auto& metrics = telemetry().metrics();
  ctr_planned_ = &metrics.counter("migration/planned");
  ctr_degrade_ = &metrics.counter("migration/proactive_degrade");
  ctr_partition_ = &metrics.counter("migration/proactive_partition");
  ctr_image_bytes_ = &metrics.counter("migration/image_bytes");
  ctr_quiesce_timeouts_ = &metrics.counter("migration/quiesce_timeouts");
  hist_blackout_ = &metrics.histogram("migration/blackout_ns");

  std::weak_ptr<bool> alive = alive_;
  // Resume hook. FreeFlow subscribed to the same feed first and its handler
  // skips planned containers, so by the time this fires the move is ours to
  // finish — registration order IS the ordering guarantee.
  ff_.orchestrator().subscribe_moves([this, alive](const orch::Container& moved) {
    if (alive.expired()) return;
    if (moves_.contains(moved.id())) resume(moved.id());
  });
  // Proactive trigger: degraded NIC (link up, serialization rate collapsed).
  ff_.orchestrator().subscribe_health([this, alive](fabric::HostId host) {
    if (alive.expired()) return;
    handle_health(host);
  });
  // Proactive trigger: severed inter-host path (both NICs healthy).
  ff_.orchestrator().subscribe_path_partitions(
      [this, alive](fabric::HostId a, fabric::HostId b, bool up) {
        if (alive.expired()) return;
        handle_path(a, b, up);
      });
}

MigrationCoordinator::~MigrationCoordinator() {
  *alive_ = false;
  for (auto& [id, mv] : moves_) mv.resume_timer.cancel();
}

telemetry::Telemetry& MigrationCoordinator::telemetry() {
  return ff_.orchestrator().cluster_orch().cluster().telemetry();
}

const sim::CostModel& MigrationCoordinator::model() {
  return ff_.orchestrator().cluster_orch().cluster().cost_model();
}

void MigrationCoordinator::migrate(orch::ContainerId id, fabric::HostId dst,
                                   DoneFn done, core::MigrationReason reason) {
  auto& corch = ff_.orchestrator().cluster_orch();
  auto fail = [&done](Status why) {
    if (done) done(std::move(why));
  };
  auto container = corch.container(id);
  if (container == nullptr) {
    return fail(not_found("migrate: no container " + std::to_string(id)));
  }
  if (container->state() != orch::ContainerState::running) {
    return fail(failed_precondition("migrate: container not running"));
  }
  if (dst >= corch.cluster().host_count()) {
    return fail(invalid_argument("migrate: destination host out of range"));
  }
  if (moves_.contains(id)) {
    return fail(failed_precondition("migrate: move already in flight"));
  }
  if (dst == container->host()) {
    MigrationReport report;
    report.container = id;
    report.src_host = container->host();
    report.dst_host = dst;
    report.reason = reason;
    if (done) done(report);
    return;
  }

  Move mv;
  mv.src = container->host();
  mv.dst = dst;
  mv.reason = reason;
  mv.net = ff_.net(id);
  mv.done = std::move(done);

  // Collect every affected connection up front; refuse overlap with a move
  // already quiescing these conduits (a paused/migrating endpoint belongs to
  // another coordinator pass — or to a peer's move — either way, not ours).
  if (mv.net != nullptr) {
    for (const auto& info : mv.net->connections()) {
      auto local = mv.net->find_conduit(info.token);
      if (local == nullptr || local->closed() || local->closing()) continue;
      auto peer_net = ff_.net(info.peer);
      core::ConduitPtr peer =
          peer_net != nullptr ? peer_net->find_conduit(info.token) : nullptr;
      if (local->paused() || local->migrating() ||
          (peer != nullptr && (peer->paused() || peer->migrating()))) {
        if (mv.done) {
          mv.done(failed_precondition(
              "migrate: connection already owned by another migration"));
        }
        return;
      }
      mv.endpoints.push_back({local, peer, peer_net, Buffer{}, 0});
    }
  }

  // Decision epochs bump (and sharded caches flush, full mask) BEFORE the
  // first conduit pauses: no selector may serve a pre-move answer into the
  // resume path.
  ff_.control_plane().note_migration_started(id);
  ff_.note_planned_migration(id, true);

  auto& tracer = telemetry().tracer();
  const auto tid = static_cast<std::uint32_t>(id);
  tracer.begin("migration", "migration", 0, tid,
               telemetry::Tracer::arg("dst", std::to_string(dst)));
  tracer.instant("migration", "quiesce", 0, tid);

  mv.paused_at = loop().now();
  const std::size_t count = mv.endpoints.size();
  auto [it, inserted] = moves_.emplace(id, std::move(mv));
  FF_CHECK(inserted);
  Move& move = it->second;

  // Freeze the remote ends first: nothing new flows toward the capture.
  // Their receive/ack paths stay live, which is exactly what lets the
  // migrating side's retained window drain below.
  for (auto& ep : move.endpoints) {
    if (ep.peer != nullptr) ep.peer->pause();
  }

  SimDuration deadline = config_.quiesce_deadline_ns != 0
                             ? config_.quiesce_deadline_ns
                             : model().migration_quiesce_deadline_ns;
  // Countdown latch over every quiesce; starts at n+1 so synchronous
  // completions (already-drained conduits) cannot fire capture before the
  // loop finishes arming.
  auto pending = std::make_shared<std::size_t>(count + 1);
  std::weak_ptr<bool> alive = alive_;
  auto arm_capture = [this, alive, id, pending]() {
    if (--*pending != 0) return;
    loop().schedule(k_capture_settle_ns, [this, alive, id]() {
      if (alive.expired()) return;
      start_capture(id);
    });
  };
  for (auto& ep : move.endpoints) {
    ep.local->quiesce(deadline, [this, alive, id, arm_capture](bool drained) {
      if (alive.expired()) return;
      auto mit = moves_.find(id);
      if (mit == moves_.end()) return;
      if (!drained) {
        mit->second.drained = false;
        ++quiesce_timeouts_;
        ctr_quiesce_timeouts_->inc();
        FF_LOG(warn, "migration")
            << "quiesce deadline expired for container " << id
            << " (undrained tail travels in the image and replays)";
      }
      arm_capture();
    });
  }
  arm_capture();
}

void MigrationCoordinator::start_capture(orch::ContainerId id) {
  auto it = moves_.find(id);
  if (it == moves_.end()) return;
  Move& mv = it->second;
  const auto tid = static_cast<std::uint32_t>(id);
  telemetry().tracer().instant("migration", "capture", 0, tid);

  MigrationImage image;
  image.container = id;
  image.src_host = mv.src;
  image.dst_host = mv.dst;
  for (auto& ep : mv.endpoints) {
    ep.blackout_before = ep.local->blackout_ns();
    // Capture detaches the local endpoint (blackout span opens) and wipes
    // its connection state into the record.
    ep.record = ep.local->capture_for_migration();
    image.conduit_records.push_back(std::move(ep.record));
    const std::uint64_t token = ep.local->token();
    // The peer endpoint detaches too: its half of the channel is dead-ended
    // now, and the stale state opens its own blackout span.
    if (ep.peer != nullptr && !ep.peer->closed() && !ep.peer->closing()) {
      ep.peer->mark_stale();
    }
    // Cancel half-built stream-upgrade state on both sides; the adapter's
    // credit/handshake position already rides the sequenced history.
    mv.net->quiesce_stream_state(token);
    if (ep.peer_net != nullptr) ep.peer_net->quiesce_stream_state(token);
  }
  mv.image_bytes = image.byte_size();
  ctr_image_bytes_->inc(mv.image_bytes);

  // The image must round-trip: the decoded records are what the destination
  // restores from (the coordinator "ships" them with the container).
  auto decoded = MigrationImage::decode(image.encode().view());
  FF_CHECK(decoded.is_ok());
  FF_CHECK(decoded->conduit_records.size() == mv.endpoints.size());
  for (std::size_t i = 0; i < mv.endpoints.size(); ++i) {
    mv.endpoints[i].record = std::move(decoded->conduit_records[i]);
  }

  // The container leaves this host: deregister from the source agent (the
  // resume path registers with the destination's agent). All its conduits
  // are detached, so nothing can route to it meanwhile.
  if (mv.net != nullptr) {
    ff_.agents().agent_on(mv.src).unregister_container(id);
  }

  const auto transfer_ns =
      model().migration_resume_fixed_ns +
      static_cast<SimDuration>(static_cast<double>(mv.image_bytes) *
                               model().migration_image_byte_ns);
  telemetry().tracer().instant(
      "migration", "transfer", 0, tid,
      telemetry::Tracer::arg("bytes", std::to_string(mv.image_bytes)));
  const Status moved =
      ff_.orchestrator().cluster_orch().migrate(id, mv.dst, transfer_ns);
  FF_CHECK(moved.is_ok());  // preconditions validated in migrate()
}

void MigrationCoordinator::resume(orch::ContainerId id) {
  auto it = moves_.find(id);
  if (it == moves_.end()) return;
  Move& mv = it->second;
  telemetry().tracer().instant("migration", "resume", 0,
                               static_cast<std::uint32_t>(id));
  if (mv.net != nullptr) mv.net->register_with_agent();
  for (auto& ep : mv.endpoints) {
    const Status restored = ep.local->restore_from_migration(ep.record.view());
    FF_CHECK(restored.is_ok());
    ep.record = Buffer{};
  }
  // Unpause both ends before rebinding: the attach below replays the
  // retained window and then drains whatever queued during the move.
  for (auto& ep : mv.endpoints) {
    ep.local->unpause();
    if (ep.peer != nullptr) ep.peer->unpause();
  }
  // Rebind through the ordinary generation-guarded path, driven from the
  // initiator side (rebind-first framing expects the dialing end).
  for (auto& ep : mv.endpoints) {
    if (ep.local->closed() || ep.local->closing()) continue;
    if (!ep.local->initiator() && ep.peer != nullptr && ep.peer_net != nullptr) {
      ep.peer_net->resume_migrated_conduit(ep.peer);
    } else {
      mv.net->resume_migrated_conduit(ep.local);
    }
  }
  poll_resumed(id);
}

void MigrationCoordinator::poll_resumed(orch::ContainerId id) {
  auto it = moves_.find(id);
  if (it == moves_.end()) return;
  Move& mv = it->second;
  bool all_live = true;
  for (auto& ep : mv.endpoints) {
    const bool local_ok =
        ep.local->live() || ep.local->closed() || ep.local->closing();
    const bool peer_ok = ep.peer == nullptr || ep.peer->live() ||
                         ep.peer->closed() || ep.peer->closing();
    if (!local_ok || !peer_ok) {
      all_live = false;
      break;
    }
  }
  if (all_live) {
    finish(id);
    return;
  }
  if (++mv.resume_polls > k_max_resume_polls) {
    FF_LOG(warn, "migration")
        << "container " << id << " resumed with conduits still detached; "
        << "the health/refit machinery keeps retrying";
    finish(id);
    return;
  }
  if (mv.resume_polls % k_resume_rekick_polls == 0) {
    for (auto& ep : mv.endpoints) {
      if (ep.local->closed() || ep.local->closing()) continue;
      const bool detached = !ep.local->live() ||
                            (ep.peer != nullptr && !ep.peer->live());
      if (!detached) continue;
      if (!ep.local->initiator() && ep.peer != nullptr && ep.peer_net != nullptr) {
        ep.peer_net->resume_migrated_conduit(ep.peer);
      } else {
        mv.net->resume_migrated_conduit(ep.local);
      }
    }
  }
  std::weak_ptr<bool> alive = alive_;
  mv.resume_timer = loop().schedule_cancellable(k_resume_poll_ns, [this, alive, id]() {
    if (alive.expired()) return;
    poll_resumed(id);
  });
}

void MigrationCoordinator::finish(orch::ContainerId id) {
  auto it = moves_.find(id);
  FF_CHECK(it != moves_.end());
  Move mv = std::move(it->second);
  moves_.erase(it);

  const SimDuration blackout = loop().now() - mv.paused_at;
  hist_blackout_->record(blackout);
  for (auto& ep : mv.endpoints) {
    ep.local->note_migration_complete(blackout, mv.reason);
    if (ep.peer != nullptr) ep.peer->note_migration_complete(blackout, mv.reason);
  }
  switch (mv.reason) {
    case core::MigrationReason::degraded_nic: ctr_degrade_->inc(); break;
    case core::MigrationReason::path_partition: ctr_partition_->inc(); break;
    default: ctr_planned_->inc(); break;
  }
  ++completed_;
  telemetry().tracer().end("migration", "migration", 0,
                           static_cast<std::uint32_t>(id));
  ff_.note_planned_migration(id, false);

  MigrationReport report;
  report.container = id;
  report.src_host = mv.src;
  report.dst_host = mv.dst;
  report.conduits_moved = mv.endpoints.size();
  report.image_bytes = mv.image_bytes;
  report.drained = mv.drained;
  report.blackout_ns = blackout;
  report.reason = mv.reason;
  FF_LOG(info, "migration") << "container " << id << " moved " << mv.src
                            << " -> " << mv.dst << ": " << report.conduits_moved
                            << " connections, blackout " << blackout << " ns"
                            << (mv.drained ? "" : " (quiesce deadline hit)");
  if (mv.done) mv.done(report);
}

// ------------------------------------------------------- proactive triggers

void MigrationCoordinator::handle_health(fabric::HostId host) {
  if (!config_.auto_migrate_on_degrade) return;
  const auto& health = ff_.orchestrator().nic_health(host);
  // A downed link is failover's business (transport shift / crash handling);
  // the coordinator's case is the *degraded-but-alive* NIC, where every
  // transport limps and only moving off the host restores full rate.
  if (!health.link_up) return;
  if (health.rate_fraction >= config_.degrade_threshold) return;
  auto dst = pick_destination(host);
  if (!dst.has_value()) return;
  auto victims = ff_.orchestrator().cluster_orch().containers_on(host);
  std::sort(victims.begin(), victims.end(),
            [](const orch::ContainerPtr& a, const orch::ContainerPtr& b) {
              return a->id() < b->id();
            });
  for (const auto& c : victims) {
    if (c->state() != orch::ContainerState::running) continue;
    if (moves_.contains(c->id())) continue;
    FF_LOG(info, "migration")
        << "NIC on host " << host << " degraded to rate_fraction "
        << health.rate_fraction << ": migrating container " << c->id()
        << " to host " << *dst;
    migrate(c->id(), *dst, DoneFn{}, core::MigrationReason::degraded_nic);
  }
}

void MigrationCoordinator::handle_path(fabric::HostId a, fabric::HostId b, bool up) {
  if (up || !config_.auto_migrate_on_partition) return;
  // Deterministic direction: evacuate the higher-numbered side toward the
  // lower. Co-locating the pair puts it on shm — the one transport a fabric
  // partition cannot touch.
  const fabric::HostId from = std::max(a, b);
  const fabric::HostId to = std::min(a, b);
  auto& corch = ff_.orchestrator().cluster_orch();
  auto victims = corch.containers_on(from);
  std::sort(victims.begin(), victims.end(),
            [](const orch::ContainerPtr& x, const orch::ContainerPtr& y) {
              return x->id() < y->id();
            });
  for (const auto& c : victims) {
    if (c->state() != orch::ContainerState::running) continue;
    if (moves_.contains(c->id())) continue;
    auto net = ff_.net(c->id());
    if (net == nullptr) continue;
    bool affected = false;
    for (const auto& info : net->connections()) {
      auto peer = corch.container(info.peer);
      if (peer != nullptr && peer->host() == to) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    FF_LOG(info, "migration")
        << "path " << a << "<->" << b << " severed: co-locating container "
        << c->id() << " with its peers on host " << to;
    migrate(c->id(), to, DoneFn{}, core::MigrationReason::path_partition);
  }
}

std::optional<fabric::HostId> MigrationCoordinator::pick_destination(
    fabric::HostId avoid) const {
  auto& corch = ff_.orchestrator().cluster_orch();
  std::optional<fabric::HostId> best;
  std::size_t best_load = 0;
  const auto hosts = corch.cluster().host_count();
  for (fabric::HostId h = 0; h < hosts; ++h) {
    if (h == avoid) continue;
    const auto& health = ff_.orchestrator().nic_health(h);
    if (!health.link_up || health.rate_fraction < config_.degrade_threshold) continue;
    const std::size_t load = corch.containers_on(h).size();
    if (!best.has_value() || load < best_load) {
      best = h;
      best_load = load;
    }
  }
  return best;
}

}  // namespace freeflow::migration
