// Stream adapters: one byte-stream interface over either a FreeFlow socket
// or a kernel-TCP connection, so application workloads (KV store, shuffle)
// run identically on FreeFlow and on the overlay baseline — which is the
// whole point of the paper's transparency claim.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "core/socket.h"
#include "tcpstack/connection.h"

namespace freeflow::workloads {

class StreamAdapter {
 public:
  using DataFn = std::function<void(Buffer&&)>;

  virtual ~StreamAdapter() = default;
  virtual Status send(Buffer data) = 0;
  virtual void set_on_data(DataFn cb) = 0;
  /// Fires when a previously backpressured stream can accept more data.
  virtual void set_on_writable(std::function<void()> cb) { (void)cb; }
  [[nodiscard]] virtual std::uint64_t bytes_sent() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t bytes_received() const noexcept = 0;
};

using StreamPtr = std::shared_ptr<StreamAdapter>;

class FlowSocketStream final : public StreamAdapter {
 public:
  explicit FlowSocketStream(core::FlowSocketPtr sock) : sock_(std::move(sock)) {}

  Status send(Buffer data) override { return sock_->send(std::move(data)); }
  void set_on_data(DataFn cb) override { sock_->set_on_data(std::move(cb)); }
  void set_on_writable(std::function<void()> cb) override {
    sock_->set_on_space(std::move(cb));
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept override {
    return sock_->bytes_sent();
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept override {
    return sock_->bytes_received();
  }
  [[nodiscard]] core::FlowSocketPtr socket() const noexcept { return sock_; }

 private:
  core::FlowSocketPtr sock_;
};

class TcpStream final : public StreamAdapter {
 public:
  explicit TcpStream(tcp::TcpConnection::Ptr conn) : conn_(std::move(conn)) {}

  Status send(Buffer data) override {
    const Status s = conn_->send(std::move(data));
    // The kernel path exerts backpressure via would_block; workloads pace
    // themselves, so surface it unchanged.
    return s;
  }
  void set_on_data(DataFn cb) override { conn_->set_on_data(std::move(cb)); }
  void set_on_writable(std::function<void()> cb) override {
    conn_->set_on_writable(std::move(cb));
  }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept override {
    return conn_->bytes_sent();
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept override {
    return conn_->bytes_received();
  }
  [[nodiscard]] tcp::TcpConnection::Ptr connection() const noexcept { return conn_; }

 private:
  tcp::TcpConnection::Ptr conn_;
};

}  // namespace freeflow::workloads
