// In-memory key-value store — the paper's motivating class of
// latency-sensitive distributed systems (memcached/FaRM-style). Runs over
// any StreamAdapter, so the same code serves the FreeFlow and overlay
// benchmarks. Protocol: length-prefixed records.
//   request:  [u8 op] [u64 req_id] [u16 klen] [u32 vlen] key value?
//   response: [u8 status] [u64 req_id] [u32 vlen] value?
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/histogram.h"
#include "workloads/stream_adapter.h"

namespace freeflow::workloads {

enum class KvOp : std::uint8_t { get = 1, put = 2 };
enum class KvStatus : std::uint8_t { ok = 0, not_found = 1 };

/// Server side: attach one per accepted stream; state shared via the map.
class KvServer {
 public:
  using Store = std::unordered_map<std::string, Buffer>;

  explicit KvServer(std::shared_ptr<Store> store = nullptr)
      : store_(store ? std::move(store) : std::make_shared<Store>()) {}

  /// Serves requests arriving on `stream` until it goes away.
  void serve(StreamPtr stream);

  [[nodiscard]] std::shared_ptr<Store> store() const noexcept { return store_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept { return served_; }

 private:
  void handle_record(const StreamPtr& stream, ByteSpan record);

  std::shared_ptr<Store> store_;
  std::uint64_t served_ = 0;
};

/// Client side: pipelined async GET/PUT over one stream.
class KvClient {
 public:
  using GetFn = std::function<void(KvStatus, Buffer&&)>;
  using PutFn = std::function<void(KvStatus)>;

  explicit KvClient(StreamPtr stream);

  void get(std::string key, GetFn cb);
  void put(std::string key, Buffer value, PutFn cb);

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  /// Per-operation latency in virtual ns (recorded internally).
  [[nodiscard]] Histogram& latency() noexcept { return latency_; }
  void set_clock(std::function<SimTime()> now) { now_ = std::move(now); }

 private:
  struct Pending {
    GetFn on_get;
    PutFn on_put;
    SimTime started = 0;
  };

  void handle_record(ByteSpan record);

  StreamPtr stream_;
  std::uint64_t next_req_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t completed_ = 0;
  Histogram latency_;
  std::function<SimTime()> now_;
};

/// Shared record framing over a byte stream (also used by shuffle).
class RecordStream {
 public:
  using RecordFn = std::function<void(ByteSpan)>;

  explicit RecordStream(StreamPtr stream, RecordFn on_record);

  Status send_record(ByteSpan record);
  [[nodiscard]] StreamPtr stream() const noexcept { return stream_; }

 private:
  StreamPtr stream_;
  std::shared_ptr<Buffer> accum_;
};

}  // namespace freeflow::workloads
