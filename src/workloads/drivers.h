// Measurement drivers shared by the calibration tests and the benchmark
// harness: closed-loop streaming (throughput + CPU) and ping-pong (latency)
// over each data plane — kernel TCP (any mode via its path builder), raw
// shm lanes, raw RDMA verbs, and FreeFlow sockets.
#pragma once

#include <vector>

#include "core/container_net.h"
#include "fabric/cluster.h"
#include "rdma/device.h"
#include "rdma/queue_pair.h"
#include "shm/channel.h"
#include "tcpstack/network.h"

namespace freeflow::workloads {

struct ThroughputReport {
  double goodput_gbps = 0;
  double host_cpu_cores = 0;   ///< cores busy across all hosts (like `top`)
  double nic_proc_util = 0;    ///< max NIC-processor utilization observed
  double membus_util = 0;      ///< max memory-bus utilization observed
  std::uint64_t bytes = 0;
  SimDuration window = 0;
};

/// Streams `msg_bytes` messages closed-loop over `pairs` TCP connections
/// for `window`, after the connections are up. Mode is encoded in the
/// TcpNetwork's path builder.
ThroughputReport drive_tcp_stream(fabric::Cluster& cluster, tcp::TcpNetwork& net,
                                  const std::vector<std::pair<tcp::Endpoint, tcp::Endpoint>>& pairs,
                                  std::size_t msg_bytes, SimDuration window);

/// Request/response RTT over one TCP connection (median of `iters`).
SimDuration tcp_rtt(fabric::Cluster& cluster, tcp::TcpNetwork& net, tcp::Endpoint src,
                    tcp::Endpoint dst, std::size_t msg_bytes, int iters);

/// Raw shm lanes between container pairs on one host.
ThroughputReport drive_shm_stream(fabric::Cluster& cluster, fabric::HostId host,
                                  int pairs, std::size_t msg_bytes, SimDuration window);

SimDuration shm_rtt(fabric::Cluster& cluster, fabric::HostId host, std::size_t msg_bytes,
                    int iters);

/// Raw RDMA WRITE streaming over `pairs` QPs between two devices (which may
/// live on the same host: the hairpin case).
ThroughputReport drive_rdma_stream(fabric::Cluster& cluster, rdma::RdmaDevice& src_dev,
                                   rdma::RdmaDevice& dst_dev, int pairs,
                                   std::size_t msg_bytes, SimDuration window);

SimDuration rdma_rtt(fabric::Cluster& cluster, rdma::RdmaDevice& a, rdma::RdmaDevice& b,
                     std::size_t msg_bytes, int iters);

/// FreeFlow socket streaming between two attached containers.
ThroughputReport drive_freeflow_stream(fabric::Cluster& cluster,
                                       core::ContainerNetPtr from,
                                       core::ContainerNetPtr to, tcp::Ipv4Addr to_ip,
                                       std::uint16_t port, std::size_t msg_bytes,
                                       SimDuration window);

SimDuration freeflow_rtt(fabric::Cluster& cluster, core::ContainerNetPtr from,
                         core::ContainerNetPtr to, tcp::Ipv4Addr to_ip,
                         std::uint16_t port, std::size_t msg_bytes, int iters);

}  // namespace freeflow::workloads
