// MapReduce-style shuffle: every mapper streams a partition to every
// reducer; completion time is dominated by the slowest flow — exactly the
// "big data analytics" traffic the paper's introduction motivates.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/units.h"
#include "workloads/stream_adapter.h"

namespace freeflow::workloads {

/// Abstracts "open a stream from mapper m to reducer r" so the same shuffle
/// runs over FreeFlow or the overlay baseline.
using ShuffleConnectFn =
    std::function<void(int mapper, int reducer, std::function<void(Result<StreamPtr>)>)>;

class Shuffle {
 public:
  struct Config {
    int mappers = 4;
    int reducers = 4;
    std::uint64_t bytes_per_flow = 8 * 1024 * 1024;
    std::size_t chunk_bytes = 256 * 1024;
    std::uint64_t max_inflight_chunks = 4;  ///< per flow, paced on acks
  };

  Shuffle(Config config, ShuffleConnectFn connect)
      : config_(config), connect_(std::move(connect)) {}

  /// Runs the shuffle; `done(elapsed_ns)` fires when every reducer received
  /// every mapper's partition, or with the error as soon as any flow's
  /// setup terminally fails (a shuffle missing a flow can never finish —
  /// failing loudly beats hanging until the caller's deadline). `now`
  /// supplies virtual time.
  void run(std::function<SimTime()> now,
           std::function<void(Result<SimDuration>)> done);

  /// Reducer side: wires one accepted stream into the byte counter. Returns
  /// a callback the acceptor hands each inbound stream to.
  std::function<void(StreamPtr)> reducer_sink();

  [[nodiscard]] std::uint64_t bytes_expected_total() const noexcept {
    return static_cast<std::uint64_t>(config_.mappers) *
           static_cast<std::uint64_t>(config_.reducers) * config_.bytes_per_flow;
  }
  [[nodiscard]] std::uint64_t bytes_received_total() const noexcept { return received_; }

 private:
  void pump_flow(const StreamPtr& stream, std::shared_ptr<std::uint64_t> sent);
  void account(std::uint64_t bytes);

  Config config_;
  ShuffleConnectFn connect_;
  std::function<SimTime()> now_;
  std::function<void(Result<SimDuration>)> done_;
  SimTime started_ = 0;
  std::uint64_t received_ = 0;
  bool finished_ = false;
};

}  // namespace freeflow::workloads
