#include "workloads/param_server.h"

#include "common/logging.h"

namespace freeflow::workloads {

ParamServer::ParamServer(core::ContainerNetPtr server_net, Config config)
    : net_(std::move(server_net)), config_(config) {
  model_mr_ = net_->reg_mr(config_.model_floats * sizeof(float));
}

Status ParamServer::start() {
  return net_->listen_qp(config_.qp_port, [this](core::VirtualQpPtr qp) {
    // One-sided traffic: the server CPU does nothing per iteration; it just
    // keeps the QP (and thus the conduit) alive.
    qps_.push_back(std::move(qp));
  });
}

PsWorker::PsWorker(core::ContainerNetPtr worker_net, tcp::Ipv4Addr server_ip,
                   ParamServer::Config config)
    : net_(std::move(worker_net)), server_ip_(server_ip), config_(config) {
  local_mr_ = net_->reg_mr(config_.model_floats * sizeof(float));
}

void PsWorker::run(std::uint32_t server_mr_id, DoneFn done) {
  server_mr_ = server_mr_id;
  auto scq = net_->create_cq();
  auto rcq = net_->create_cq();
  net_->connect_qp(server_ip_, config_.qp_port, scq, rcq,
                   [this, done = std::move(done)](Result<core::VirtualQpPtr> qp) mutable {
    if (!qp.is_ok()) {
      FF_LOG(warn, "ps") << "worker QP setup failed: " << qp.status();
      done(qp.status());
      return;
    }
    qp_ = std::move(qp.value());
    iterate(config_.iterations, net_->loop().now(), std::move(done));
  });
}

void PsWorker::iterate(int remaining, SimTime started, DoneFn done) {
  if (remaining == 0) {
    done(net_->loop().now() - started);
    return;
  }
  // Push: WRITE the gradient into the server's model MR.
  rdma::SendWr push;
  push.wr_id = static_cast<std::uint64_t>(remaining) * 2;
  push.opcode = rdma::Opcode::write;
  push.local = {local_mr_, 0, local_mr_->length()};
  push.remote = {server_mr_, 0};
  FF_CHECK(qp_->post_send(push).is_ok());

  // Pull: READ the updated model back, then recurse on the completion.
  rdma::SendWr pull;
  pull.wr_id = push.wr_id + 1;
  pull.opcode = rdma::Opcode::read;
  pull.local = {local_mr_, 0, local_mr_->length()};
  pull.remote = {server_mr_, 0};
  FF_CHECK(qp_->post_send(pull).is_ok());

  // The hook is stored on the CQ itself, so it holds the CQ weakly — a
  // strong capture would be a self-cycle for any run that ends mid-iterate.
  auto scq = qp_->send_cq();
  scq->set_notify([this, wcq = std::weak_ptr<rdma::CompletionQueue>(scq), remaining,
                   started, done]() {
    auto cq = wcq.lock();
    if (!cq) return;
    rdma::WorkCompletion wc;
    while (cq->poll({&wc, 1}) == 1) {
      if (wc.opcode == rdma::Opcode::read && wc.status == rdma::WcStatus::success) {
        cq->set_notify(nullptr);
        net_->loop().schedule(0, [this, remaining, started, done]() {
          iterate(remaining - 1, started, done);
        });
        return;
      }
    }
  });
}

}  // namespace freeflow::workloads
