// Multi-tenant API-gateway workload: one gateway container fronts an
// autoscaled pool of backend containers. Clients open FreeFlow socket
// streams to the gateway; the gateway routes each new flow to the
// least-loaded backend (fresh containers start empty, so scale-ups absorb
// new flows immediately) and relays length-prefixed request/response
// records both ways. A telemetry-driven scaler grows and shrinks the pool
// on per-backend queue depth. Backends are deployed through the cluster
// orchestrator, so gateway->backend channels ride the normal decide path —
// co-located backends get tenant-scoped shm regions from the host agent's
// RegionRegistry, remote ones the fabric transports.
//
// Protocol (RecordStream framing, u32 length prefix):
//   request : [u64 req_id][u32 resp_bytes] payload...
//   response: [u64 req_id] + resp_bytes of payload
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "core/container_net.h"
#include "telemetry/metrics.h"
#include "workloads/kv_store.h"
#include "workloads/stream_adapter.h"

namespace freeflow::workloads {

/// Backend service: answers each request with `resp_bytes` of payload.
/// One instance per backend container; serves every accepted stream.
/// `service_ns` models one serial worker per backend — requests queue
/// behind each other, so backend queue depth (what the gateway's scaler
/// watches) grows exactly when the pool is undersized for the offered load.
class GatewayBackend {
 public:
  explicit GatewayBackend(core::ContainerNetPtr net, SimDuration service_ns = 0)
      : net_(std::move(net)), service_ns_(service_ns) {}
  ~GatewayBackend() { *alive_ = false; }

  GatewayBackend(const GatewayBackend&) = delete;
  GatewayBackend& operator=(const GatewayBackend&) = delete;

  Status start(std::uint16_t port);

  [[nodiscard]] core::ContainerNetPtr net() const noexcept { return net_; }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }

 private:
  void serve(core::FlowSocketPtr sock);

  core::ContainerNetPtr net_;
  SimDuration service_ns_;
  SimTime busy_until_ = 0;
  std::uint64_t served_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

struct GatewayConfig {
  std::uint16_t listen_port = 8080;
  std::uint16_t backend_port = 9090;
  std::size_t min_backends = 1;
  std::size_t max_backends = 8;
  /// Scale up when mean in-flight requests per active backend exceeds this.
  double grow_queue_depth = 8.0;
  /// Drain one backend when the mean drops below this.
  double shrink_queue_depth = 1.0;
  SimDuration scale_period = 2 * k_millisecond;
};

/// The gateway proper: listener, flow router, relay, and pool scaler.
class Gateway {
 public:
  /// Deploys, attaches and starts serving one fresh backend container,
  /// returning its library handle (null on failure). Provided by the
  /// harness so the gateway itself stays orchestrator-agnostic.
  using SpawnFn = std::function<core::ContainerNetPtr()>;
  /// Stops a fully-drained backend container.
  using RetireFn = std::function<void(orch::ContainerId)>;

  Gateway(core::ContainerNetPtr net, GatewayConfig cfg);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  void set_pool_hooks(SpawnFn spawn, RetireFn retire);
  /// Registers an already-running backend (initial pool).
  void add_backend(core::ContainerNetPtr backend);
  /// Starts listening and arms the scaler timer.
  Status start();

  [[nodiscard]] std::size_t pool_size() const noexcept;       ///< non-draining
  [[nodiscard]] std::size_t total_queue_depth() const noexcept;
  [[nodiscard]] std::uint64_t flows_routed() const noexcept { return flows_routed_; }
  [[nodiscard]] std::uint64_t requests_routed() const noexcept { return requests_routed_; }
  [[nodiscard]] std::uint64_t responses_relayed() const noexcept {
    return responses_relayed_;
  }
  [[nodiscard]] std::uint64_t scale_ups() const noexcept { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_downs() const noexcept { return scale_downs_; }

 private:
  /// One pooled backend as the gateway sees it.
  struct BackendSlot {
    core::ContainerNetPtr net;
    std::size_t flows = 0;
    std::size_t queue_depth = 0;  ///< requests forwarded, not yet answered
    bool draining = false;
  };
  using SlotPtr = std::shared_ptr<BackendSlot>;

  /// One client flow riding one backend stream.
  struct Session {
    SlotPtr backend;
    core::FlowSocketPtr client_sock;
    core::FlowSocketPtr backend_sock;
    std::unique_ptr<RecordStream> client_rs;
    std::unique_ptr<RecordStream> backend_rs;
    std::deque<Buffer> pending;  ///< client records before the backend dial lands
    std::size_t in_flight = 0;   ///< this session's share of queue_depth
    bool closed = false;
  };
  using SessionPtr = std::shared_ptr<Session>;

  void accept_client(core::FlowSocketPtr sock);
  void on_client_record(const SessionPtr& s, ByteSpan record);
  void on_backend_record(const SessionPtr& s, ByteSpan record);
  void close_session(const SessionPtr& s);
  [[nodiscard]] SlotPtr route_new_flow();
  void scale_tick();
  void arm_scaler();
  void maybe_retire(const SlotPtr& slot);
  void update_gauges();

  core::ContainerNetPtr net_;
  GatewayConfig cfg_;
  SpawnFn spawn_;
  RetireFn retire_;
  std::vector<SlotPtr> backends_;
  std::unordered_map<Session*, SessionPtr> sessions_;
  std::uint64_t flows_routed_ = 0;
  std::uint64_t requests_routed_ = 0;
  std::uint64_t responses_relayed_ = 0;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  telemetry::Gauge* g_pool_ = telemetry::Gauge::discard();
  telemetry::Gauge* g_queue_depth_ = telemetry::Gauge::discard();
  telemetry::Counter* ctr_scale_ups_ = telemetry::Counter::discard();
  telemetry::Counter* ctr_scale_downs_ = telemetry::Counter::discard();
  /// Callbacks registered on sockets/the loop guard on this token; the
  /// sessions they capture stay valid, the gateway itself may not.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Closed-loop client: keeps `pipeline` requests in flight on one flow to
/// the gateway, recording per-request latency.
class GatewayClient {
 public:
  GatewayClient(core::ContainerNetPtr net, tcp::Ipv4Addr gateway_ip,
                std::uint16_t port, std::size_t req_bytes, std::size_t resp_bytes,
                int pipeline = 1);
  ~GatewayClient();

  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  void start();
  /// Stops issuing new requests; in-flight responses still complete.
  void stop() noexcept { running_ = false; }

  [[nodiscard]] bool connected() const noexcept { return rs_ != nullptr; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t response_bytes() const noexcept { return response_bytes_; }
  [[nodiscard]] Histogram& latency() noexcept { return latency_; }

 private:
  void issue();
  void on_record(ByteSpan record);

  core::ContainerNetPtr net_;
  tcp::Ipv4Addr gateway_ip_;
  std::uint16_t port_;
  std::size_t req_bytes_;
  std::size_t resp_bytes_;
  int pipeline_;
  bool running_ = false;
  bool failed_ = false;
  core::FlowSocketPtr sock_;
  std::unique_ptr<RecordStream> rs_;
  std::uint64_t next_req_ = 1;
  std::unordered_map<std::uint64_t, SimTime> started_;
  std::uint64_t completed_ = 0;
  std::uint64_t response_bytes_ = 0;
  Histogram latency_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace freeflow::workloads
