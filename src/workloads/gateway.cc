#include "workloads/gateway.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "core/freeflow.h"

namespace freeflow::workloads {

namespace {
constexpr std::size_t k_req_header = 8 + 4;   // req_id + resp_bytes
constexpr std::size_t k_resp_header = 8;      // req_id
}  // namespace

// ------------------------------------------------------------ GatewayBackend

Status GatewayBackend::start(std::uint16_t port) {
  return net_->sock_listen(port,
                           [this](core::FlowSocketPtr sock) { serve(std::move(sock)); });
}

void GatewayBackend::serve(core::FlowSocketPtr sock) {
  auto stream = std::make_shared<FlowSocketStream>(std::move(sock));
  // The parser is owned by the on_data closure chain (KvServer idiom).
  auto rs = std::make_shared<std::unique_ptr<RecordStream>>();
  *rs = std::make_unique<RecordStream>(stream, [this, stream, rs](ByteSpan record) {
    if (record.size() < k_req_header) return;
    std::uint64_t req_id = 0;
    std::uint32_t resp_bytes = 0;
    std::memcpy(&req_id, record.data(), 8);
    std::memcpy(&resp_bytes, record.data() + 8, 4);

    auto respond = [this, rs, req_id, resp_bytes]() {
      ++served_;
      Buffer resp(k_resp_header + resp_bytes);
      std::memcpy(resp.data(), &req_id, 8);
      fill_pattern(MutableByteSpan{resp.data() + k_resp_header, resp_bytes}, req_id);
      auto parser = (*rs).get();
      if (parser != nullptr) (void)parser->send_record(resp.view());
    };
    if (service_ns_ <= 0) {
      respond();
      return;
    }
    // One serial worker: each request queues behind the one in service.
    const SimTime now = net_->loop().now();
    const SimTime done = std::max(now, busy_until_) + service_ns_;
    busy_until_ = done;
    std::weak_ptr<bool> alive = alive_;
    net_->loop().schedule(done - now, [alive, respond = std::move(respond)]() {
      if (alive.expired()) return;
      respond();
    });
  });
}

// ------------------------------------------------------------------- Gateway

Gateway::Gateway(core::ContainerNetPtr net, GatewayConfig cfg)
    : net_(std::move(net)), cfg_(cfg) {
  auto& metrics = net_->freeflow().orchestrator().cluster_orch().cluster()
                      .telemetry().metrics();
  const std::string prefix = "gateway/" + net_->name() + "/";
  g_pool_ = &metrics.gauge(prefix + "pool_size");
  g_queue_depth_ = &metrics.gauge(prefix + "queue_depth");
  ctr_scale_ups_ = &metrics.counter(prefix + "scale_ups");
  ctr_scale_downs_ = &metrics.counter(prefix + "scale_downs");
}

Gateway::~Gateway() {
  *alive_ = false;
  // Snapshot: closing a socket fires close paths that mutate sessions_.
  std::vector<SessionPtr> open;
  open.reserve(sessions_.size());
  for (auto& [ptr, s] : sessions_) open.push_back(s);
  for (auto& s : open) {
    if (s->client_sock && s->client_sock->is_open()) s->client_sock->close();
    if (s->backend_sock && s->backend_sock->is_open()) s->backend_sock->close();
  }
}

void Gateway::set_pool_hooks(SpawnFn spawn, RetireFn retire) {
  spawn_ = std::move(spawn);
  retire_ = std::move(retire);
}

void Gateway::add_backend(core::ContainerNetPtr backend) {
  auto slot = std::make_shared<BackendSlot>();
  slot->net = std::move(backend);
  backends_.push_back(std::move(slot));
  update_gauges();
}

Status Gateway::start() {
  const Status s = net_->sock_listen(
      cfg_.listen_port,
      [this](core::FlowSocketPtr sock) { accept_client(std::move(sock)); });
  if (!s.is_ok()) return s;
  arm_scaler();
  return ok_status();
}

std::size_t Gateway::pool_size() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : backends_) {
    if (!slot->draining) ++n;
  }
  return n;
}

std::size_t Gateway::total_queue_depth() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : backends_) n += slot->queue_depth;
  return n;
}

Gateway::SlotPtr Gateway::route_new_flow() {
  // Fewest flows wins; reverse scan so the freshest backend takes ties —
  // a scale-up starts absorbing new flows the moment it lands.
  SlotPtr best;
  for (auto it = backends_.rbegin(); it != backends_.rend(); ++it) {
    if ((*it)->draining) continue;
    if (best == nullptr || (*it)->flows < best->flows) best = *it;
  }
  return best;
}

void Gateway::accept_client(core::FlowSocketPtr sock) {
  SlotPtr slot = route_new_flow();
  if (slot == nullptr) {
    sock->close();  // no capacity: refuse the flow
    return;
  }
  ++slot->flows;
  ++flows_routed_;

  auto session = std::make_shared<Session>();
  session->backend = slot;
  session->client_sock = sock;
  sessions_.emplace(session.get(), session);

  std::weak_ptr<bool> alive = alive_;
  auto client_stream = std::make_shared<FlowSocketStream>(sock);
  session->client_rs = std::make_unique<RecordStream>(
      client_stream, [this, alive, session](ByteSpan record) {
        if (alive.expired()) return;
        on_client_record(session, record);
      });
  sock->set_on_close([this, alive, session](core::CloseReason) {
    if (alive.expired()) return;
    close_session(session);
  });

  net_->sock_connect(
      slot->net->ip(), cfg_.backend_port,
      [this, alive, session](Result<core::FlowSocketPtr> dialed) {
        if (alive.expired()) return;
        if (session->closed) {
          if (dialed.is_ok()) (*dialed)->close();
          return;
        }
        if (!dialed.is_ok()) {
          close_session(session);
          return;
        }
        session->backend_sock = *dialed;
        auto backend_stream = std::make_shared<FlowSocketStream>(*dialed);
        session->backend_rs = std::make_unique<RecordStream>(
            backend_stream, [this, alive, session](ByteSpan record) {
              if (alive.expired()) return;
              on_backend_record(session, record);
            });
        session->backend_sock->set_on_close([this, alive, session](core::CloseReason) {
          if (alive.expired()) return;
          close_session(session);
        });
        while (!session->pending.empty()) {
          (void)session->backend_rs->send_record(session->pending.front().view());
          session->pending.pop_front();
        }
      });
}

void Gateway::on_client_record(const SessionPtr& s, ByteSpan record) {
  if (s->closed) return;
  ++s->backend->queue_depth;
  ++s->in_flight;
  ++requests_routed_;
  if (s->backend_rs != nullptr) {
    (void)s->backend_rs->send_record(record);
  } else {
    s->pending.emplace_back(record.data(), record.size());
  }
  update_gauges();
}

void Gateway::on_backend_record(const SessionPtr& s, ByteSpan record) {
  if (s->closed) return;
  if (s->in_flight > 0) {
    --s->in_flight;
    if (s->backend->queue_depth > 0) --s->backend->queue_depth;
  }
  ++responses_relayed_;
  (void)s->client_rs->send_record(record);
  update_gauges();
}

void Gateway::close_session(const SessionPtr& s) {
  if (s->closed) return;
  s->closed = true;
  SlotPtr slot = s->backend;
  if (slot->flows > 0) --slot->flows;
  // A flow that dies with requests in flight takes its queue share with it.
  slot->queue_depth -= std::min(slot->queue_depth, s->in_flight);
  s->in_flight = 0;
  s->pending.clear();
  if (s->client_sock && s->client_sock->is_open()) s->client_sock->close();
  if (s->backend_sock && s->backend_sock->is_open()) s->backend_sock->close();
  sessions_.erase(s.get());
  maybe_retire(slot);
  update_gauges();
}

void Gateway::arm_scaler() {
  std::weak_ptr<bool> alive = alive_;
  net_->loop().schedule(cfg_.scale_period, [this, alive]() {
    if (alive.expired()) return;
    scale_tick();
    arm_scaler();
  });
}

void Gateway::scale_tick() {
  std::size_t active = 0;
  std::size_t depth = 0;
  for (const auto& slot : backends_) {
    if (slot->draining) continue;
    ++active;
    depth += slot->queue_depth;
  }
  const double avg = active == 0 ? 0.0 : static_cast<double>(depth) /
                                             static_cast<double>(active);
  if ((active < cfg_.min_backends || avg > cfg_.grow_queue_depth) &&
      active < cfg_.max_backends && spawn_ != nullptr) {
    core::ContainerNetPtr fresh = spawn_();
    if (fresh != nullptr) {
      add_backend(std::move(fresh));
      ++scale_ups_;
      ctr_scale_ups_->inc();
      FF_LOG(info, "gateway") << net_->name() << " scaled up to "
                              << pool_size() << " backends";
    }
  } else if (avg < cfg_.shrink_queue_depth && active > cfg_.min_backends) {
    // Drain the least-loaded backend: no new flows, retire when empty.
    SlotPtr victim;
    for (const auto& slot : backends_) {
      if (slot->draining) continue;
      if (victim == nullptr || slot->flows < victim->flows) victim = slot;
    }
    if (victim != nullptr) {
      victim->draining = true;
      ++scale_downs_;
      ctr_scale_downs_->inc();
      FF_LOG(info, "gateway") << net_->name() << " draining backend "
                              << victim->net->name();
      maybe_retire(victim);
    }
  }
  update_gauges();
}

void Gateway::maybe_retire(const SlotPtr& slot) {
  if (!slot->draining || slot->flows != 0 || slot->queue_depth != 0) return;
  std::erase(backends_, slot);
  if (retire_ != nullptr) retire_(slot->net->id());
}

void Gateway::update_gauges() {
  g_pool_->set(static_cast<std::int64_t>(pool_size()));
  g_queue_depth_->set(static_cast<std::int64_t>(total_queue_depth()));
}

// ------------------------------------------------------------- GatewayClient

GatewayClient::GatewayClient(core::ContainerNetPtr net, tcp::Ipv4Addr gateway_ip,
                             std::uint16_t port, std::size_t req_bytes,
                             std::size_t resp_bytes, int pipeline)
    : net_(std::move(net)),
      gateway_ip_(gateway_ip),
      port_(port),
      req_bytes_(req_bytes),
      resp_bytes_(resp_bytes),
      pipeline_(pipeline) {}

GatewayClient::~GatewayClient() {
  *alive_ = false;
  if (sock_ && sock_->is_open()) sock_->close();
}

void GatewayClient::start() {
  running_ = true;
  std::weak_ptr<bool> alive = alive_;
  net_->sock_connect(gateway_ip_, port_,
                     [this, alive](Result<core::FlowSocketPtr> dialed) {
                       if (alive.expired()) return;
                       if (!dialed.is_ok()) {
                         failed_ = true;
                         running_ = false;
                         return;
                       }
                       sock_ = *dialed;
                       auto stream = std::make_shared<FlowSocketStream>(sock_);
                       rs_ = std::make_unique<RecordStream>(
                           stream, [this, alive](ByteSpan record) {
                             if (alive.expired()) return;
                             on_record(record);
                           });
                       sock_->set_on_close([this, alive](core::CloseReason) {
                         if (alive.expired()) return;
                         running_ = false;
                       });
                       for (int i = 0; i < pipeline_; ++i) issue();
                     });
}

void GatewayClient::issue() {
  if (!running_ || rs_ == nullptr) return;
  const std::uint64_t id = next_req_++;
  const std::size_t payload = req_bytes_ > k_req_header ? req_bytes_ - k_req_header : 0;
  Buffer record(k_req_header + payload);
  const auto resp = static_cast<std::uint32_t>(resp_bytes_);
  std::memcpy(record.data(), &id, 8);
  std::memcpy(record.data() + 8, &resp, 4);
  fill_pattern(MutableByteSpan{record.data() + k_req_header, payload}, id);
  started_[id] = net_->loop().now();
  (void)rs_->send_record(record.view());
}

void GatewayClient::on_record(ByteSpan record) {
  if (record.size() < k_resp_header) return;
  std::uint64_t id = 0;
  std::memcpy(&id, record.data(), 8);
  auto it = started_.find(id);
  if (it == started_.end()) return;
  latency_.record(net_->loop().now() - it->second);
  started_.erase(it);
  ++completed_;
  response_bytes_ += record.size();
  if (running_) issue();
}

}  // namespace freeflow::workloads
