#include "workloads/drivers.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "core/socket.h"
#include "rdma/cm.h"

namespace freeflow::workloads {

namespace {

void run_to(fabric::Cluster& cluster, SimTime deadline) {
  cluster.loop().run_until(deadline);
}

bool spin_until(fabric::Cluster& cluster, const std::function<bool()>& pred,
                SimDuration budget) {
  const SimTime deadline = cluster.loop().now() + budget;
  for (;;) {
    if (pred()) return true;
    if (cluster.loop().now() >= deadline || !cluster.loop().step()) return false;
  }
}

/// Snapshot + finalize resource utilization over a measurement window.
struct UtilProbe {
  explicit UtilProbe(fabric::Cluster& cluster) : cluster_(cluster) {}

  void mark() {
    for (std::size_t h = 0; h < cluster_.host_count(); ++h) {
      auto& host = cluster_.host(static_cast<fabric::HostId>(h));
      host.cpu().mark();
      host.nic().processor().mark();
      host.membus().mark();
    }
  }

  void fill(ThroughputReport& report) const {
    for (std::size_t h = 0; h < cluster_.host_count(); ++h) {
      auto& host = cluster_.host(static_cast<fabric::HostId>(h));
      report.host_cpu_cores += host.cpu().cores_busy_since_mark();
      report.nic_proc_util =
          std::max(report.nic_proc_util, host.nic().processor().utilization_since_mark());
      report.membus_util =
          std::max(report.membus_util, host.membus().utilization_since_mark());
    }
  }

  fabric::Cluster& cluster_;
};

SimDuration median(std::vector<SimDuration> samples) {
  FF_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

constexpr SimDuration k_warmup = 5 * k_millisecond;

}  // namespace

// ------------------------------------------------------------- TCP stream

ThroughputReport drive_tcp_stream(
    fabric::Cluster& cluster, tcp::TcpNetwork& net,
    const std::vector<std::pair<tcp::Endpoint, tcp::Endpoint>>& pairs,
    std::size_t msg_bytes, SimDuration window) {
  auto rx_bytes = std::make_shared<std::uint64_t>(0);
  std::vector<tcp::TcpConnection::Ptr> senders;

  std::uint16_t port_salt = 0;
  for (const auto& [src, dst] : pairs) {
    tcp::Endpoint listen_at = dst;
    listen_at.port = static_cast<std::uint16_t>(dst.port + port_salt++);
    const Status listening = net.listen(listen_at, [rx_bytes](tcp::TcpConnection::Ptr c) {
      c->set_on_data([rx_bytes](Buffer&& b) { *rx_bytes += b.size(); });
    });
    FF_CHECK(listening.is_ok());
    net.connect(src, listen_at, [&senders](Result<tcp::TcpConnection::Ptr> c) {
      FF_CHECK(c.is_ok());
      senders.push_back(*c);
    });
  }
  FF_CHECK(spin_until(cluster, [&]() { return senders.size() == pairs.size(); },
                      10 * k_second));

  // Closed-loop: keep each send buffer full.
  for (auto& conn : senders) {
    // The connection's on_writable owns the pump; the pump must not own
    // itself (or the connection) or the trio never frees.
    auto pump = std::make_shared<std::function<void()>>();
    tcp::TcpConnection* raw = conn.get();
    *pump = [raw, msg_bytes]() {
      while (raw->send(Buffer(msg_bytes)).is_ok()) {
      }
    };
    conn->set_on_writable([pump]() { (*pump)(); });
    (*pump)();
  }

  run_to(cluster, cluster.loop().now() + k_warmup);
  UtilProbe probe(cluster);
  probe.mark();
  const std::uint64_t start_bytes = *rx_bytes;
  const SimTime start = cluster.loop().now();
  run_to(cluster, start + window);

  ThroughputReport report;
  report.bytes = *rx_bytes - start_bytes;
  report.window = cluster.loop().now() - start;
  report.goodput_gbps = throughput_gbps(report.bytes, report.window);
  probe.fill(report);
  return report;
}

SimDuration tcp_rtt(fabric::Cluster& cluster, tcp::TcpNetwork& net, tcp::Endpoint src,
                    tcp::Endpoint dst, std::size_t msg_bytes, int iters) {
  tcp::TcpConnection::Ptr client;
  const Status listening = net.listen(dst, [msg_bytes](tcp::TcpConnection::Ptr c) {
    auto pending = std::make_shared<std::size_t>(0);
    tcp::TcpConnection* raw = c.get();
    c->set_on_data([raw, pending, msg_bytes](Buffer&& b) {
      *pending += b.size();
      while (*pending >= msg_bytes) {
        *pending -= msg_bytes;
        FF_CHECK(raw->send(Buffer(msg_bytes)).is_ok());
      }
    });
  });
  FF_CHECK(listening.is_ok());
  net.connect(src, dst, [&client](Result<tcp::TcpConnection::Ptr> c) {
    FF_CHECK(c.is_ok());
    client = *c;
  });
  FF_CHECK(spin_until(cluster, [&]() { return client != nullptr; }, 10 * k_second));

  std::vector<SimDuration> samples;
  auto got = std::make_shared<std::size_t>(0);
  client->set_on_data([got](Buffer&& b) { *got += b.size(); });
  for (int i = 0; i < iters; ++i) {
    *got = 0;
    const SimTime t0 = cluster.loop().now();
    FF_CHECK(client->send(Buffer(msg_bytes)).is_ok());
    FF_CHECK(spin_until(cluster, [&]() { return *got >= msg_bytes; }, 10 * k_second));
    samples.push_back(cluster.loop().now() - t0);
  }
  return median(std::move(samples));
}

// ------------------------------------------------------------- shm stream

ThroughputReport drive_shm_stream(fabric::Cluster& cluster, fabric::HostId host_id,
                                  int pairs, std::size_t msg_bytes, SimDuration window) {
  auto& host = cluster.host(host_id);
  auto rx_bytes = std::make_shared<std::uint64_t>(0);
  std::vector<std::unique_ptr<shm::ShmLane>> lanes;
  for (int p = 0; p < pairs; ++p) {
    auto lane = std::make_unique<shm::ShmLane>(host, 8 * msg_bytes + 4096);
    shm::ShmLane* raw = lane.get();
    lane->set_receiver([rx_bytes](Buffer&& b) { *rx_bytes += b.size(); });
    auto refill = [raw, msg_bytes]() {
      while (raw->can_send(msg_bytes)) {
        FF_CHECK(raw->send(Buffer(msg_bytes).view()).is_ok());
      }
    };
    lane->set_on_space(refill);
    refill();
    lanes.push_back(std::move(lane));
  }

  run_to(cluster, cluster.loop().now() + k_warmup);
  UtilProbe probe(cluster);
  probe.mark();
  const std::uint64_t start_bytes = *rx_bytes;
  const SimTime start = cluster.loop().now();
  run_to(cluster, start + window);

  ThroughputReport report;
  report.bytes = *rx_bytes - start_bytes;
  report.window = cluster.loop().now() - start;
  report.goodput_gbps = throughput_gbps(report.bytes, report.window);
  probe.fill(report);

  // Quiesce before the lanes die: stop refilling and drain in-flight
  // deliveries so no event still references a destroyed lane.
  for (auto& lane : lanes) lane->set_on_space(nullptr);
  run_to(cluster, cluster.loop().now() + 20 * k_millisecond);
  for (auto& lane : lanes) FF_CHECK(lane->ring().empty());
  return report;
}

SimDuration shm_rtt(fabric::Cluster& cluster, fabric::HostId host_id,
                    std::size_t msg_bytes, int iters) {
  auto& host = cluster.host(host_id);
  shm::ShmLane forth(host, 16 * (msg_bytes + 64));
  shm::ShmLane back(host, 16 * (msg_bytes + 64));
  back.set_receiver([](Buffer&&) {});
  forth.set_receiver([&back](Buffer&& b) { FF_CHECK(back.send(b.view()).is_ok()); });

  std::vector<SimDuration> samples;
  for (int i = 0; i < iters; ++i) {
    bool done = false;
    back.set_receiver([&done](Buffer&&) { done = true; });
    const SimTime t0 = cluster.loop().now();
    FF_CHECK(forth.send(Buffer(msg_bytes).view()).is_ok());
    FF_CHECK(spin_until(cluster, [&]() { return done; }, k_second));
    samples.push_back(cluster.loop().now() - t0);
  }
  return median(std::move(samples));
}

// ------------------------------------------------------------ RDMA stream

ThroughputReport drive_rdma_stream(fabric::Cluster& cluster, rdma::RdmaDevice& src_dev,
                                   rdma::RdmaDevice& dst_dev, int pairs,
                                   std::size_t msg_bytes, SimDuration window) {
  auto rx_bytes = std::make_shared<std::uint64_t>(0);

  struct Flow {
    std::shared_ptr<rdma::QueuePair> qa, qb;
    rdma::MrPtr src, dst;
    int inflight = 0;
  };
  std::vector<std::shared_ptr<Flow>> flows;

  for (int p = 0; p < pairs; ++p) {
    auto flow = std::make_shared<Flow>();
    flow->qa = src_dev.create_qp(src_dev.create_cq(), src_dev.create_cq());
    flow->qb = dst_dev.create_qp(dst_dev.create_cq(), dst_dev.create_cq());
    FF_CHECK(rdma::connect_pair(*flow->qa, *flow->qb).is_ok());
    flow->src = src_dev.reg_mr(msg_bytes);
    flow->dst = dst_dev.reg_mr(msg_bytes);

    // The notify hook is stored on qa's send CQ, which qa owns: capturing
    // the flow (which owns qa) strongly there would cycle. Weak captures
    // make the hook a no-op once the flow itself is gone.
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [wflow = std::weak_ptr<Flow>(flow), msg_bytes]() {
      auto f = wflow.lock();
      if (!f) return;
      while (f->inflight < 8) {
        rdma::SendWr wr;
        wr.opcode = rdma::Opcode::write;
        wr.local = {f->src, 0, msg_bytes};
        wr.remote = {f->dst->rkey(), 0};
        FF_CHECK(f->qa->post_send(wr).is_ok());
        ++f->inflight;
      }
    };
    flow->qa->send_cq()->set_notify(
        [wflow = std::weak_ptr<Flow>(flow), pump, rx_bytes, msg_bytes]() {
          auto f = wflow.lock();
          if (!f) return;
          rdma::WorkCompletion wc;
          while (f->qa->send_cq()->poll({&wc, 1}) == 1) {
            --f->inflight;
            *rx_bytes += msg_bytes;
          }
          (*pump)();
        });
    (*pump)();
    flows.push_back(flow);
  }

  run_to(cluster, cluster.loop().now() + k_warmup);
  UtilProbe probe(cluster);
  probe.mark();
  const std::uint64_t start_bytes = *rx_bytes;
  const SimTime start = cluster.loop().now();
  run_to(cluster, start + window);

  ThroughputReport report;
  report.bytes = *rx_bytes - start_bytes;
  report.window = cluster.loop().now() - start;
  report.goodput_gbps = throughput_gbps(report.bytes, report.window);
  probe.fill(report);
  return report;
}

SimDuration rdma_rtt(fabric::Cluster& cluster, rdma::RdmaDevice& a, rdma::RdmaDevice& b,
                     std::size_t msg_bytes, int iters) {
  auto qa = a.create_qp(a.create_cq(), a.create_cq());
  auto qb = b.create_qp(b.create_cq(), b.create_cq());
  FF_CHECK(rdma::connect_pair(*qa, *qb).is_ok());
  auto mra = a.reg_mr(msg_bytes);
  auto mrb = b.reg_mr(msg_bytes);

  // Echo server: on recv completion, send back. The hook lives on qb's own
  // recv CQ, so it must observe qb weakly or the QP never frees.
  auto repost_b = [mrb, msg_bytes](rdma::QueuePair& qp) {
    rdma::RecvWr r;
    r.local = {mrb, 0, msg_bytes};
    FF_CHECK(qp.post_recv(r).is_ok());
  };
  repost_b(*qb);
  qb->recv_cq()->set_notify(
      [wqb = std::weak_ptr<rdma::QueuePair>(qb), mrb, msg_bytes, repost_b]() {
        auto q = wqb.lock();
        if (!q) return;
        rdma::WorkCompletion wc;
        while (q->recv_cq()->poll({&wc, 1}) == 1) {
          repost_b(*q);
          rdma::SendWr s;
          s.local = {mrb, 0, msg_bytes};
          FF_CHECK(q->post_send(s).is_ok());
        }
      });

  std::vector<SimDuration> samples;
  for (int i = 0; i < iters; ++i) {
    bool done = false;
    rdma::RecvWr r;
    r.local = {mra, 0, msg_bytes};
    FF_CHECK(qa->post_recv(r).is_ok());
    qa->recv_cq()->set_notify([&]() {
      rdma::WorkCompletion wc;
      while (qa->recv_cq()->poll({&wc, 1}) == 1) done = true;
    });
    const SimTime t0 = cluster.loop().now();
    rdma::SendWr s;
    s.local = {mra, 0, msg_bytes};
    FF_CHECK(qa->post_send(s).is_ok());
    FF_CHECK(spin_until(cluster, [&]() { return done; }, 10 * k_second));
    samples.push_back(cluster.loop().now() - t0);
  }
  return median(std::move(samples));
}

// -------------------------------------------------------- FreeFlow stream

namespace {
core::FlowSocketPtr open_ff_socket(fabric::Cluster& cluster, core::ContainerNetPtr from,
                                   core::ContainerNetPtr to, tcp::Ipv4Addr to_ip,
                                   std::uint16_t port,
                                   std::function<void(core::FlowSocketPtr)> on_server) {
  core::FlowSocketPtr client;
  FF_CHECK(to->sock_listen(port, std::move(on_server)).is_ok());
  from->sock_connect(to_ip, port, [&client](Result<core::FlowSocketPtr> s) {
    FF_CHECK(s.is_ok());
    client = *s;
  });
  FF_CHECK(spin_until(cluster, [&]() { return client != nullptr; }, 10 * k_second));
  return client;
}
}  // namespace

ThroughputReport drive_freeflow_stream(fabric::Cluster& cluster,
                                       core::ContainerNetPtr from,
                                       core::ContainerNetPtr to, tcp::Ipv4Addr to_ip,
                                       std::uint16_t port, std::size_t msg_bytes,
                                       SimDuration window) {
  auto rx_bytes = std::make_shared<std::uint64_t>(0);
  core::FlowSocketPtr client =
      open_ff_socket(cluster, from, to, to_ip, port, [rx_bytes](core::FlowSocketPtr s) {
        auto held = std::make_shared<core::FlowSocketPtr>(s);
        s->set_on_data([rx_bytes, held](Buffer&& b) { *rx_bytes += b.size(); });
      });

  // Pace on the conduit's writability so memory stays bounded. The pump
  // owns the socket (shared_ptr capture) so later loop activity is safe.
  auto stopped = std::make_shared<bool>(false);
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [client, msg_bytes, stopped]() {
    if (*stopped) return;
    while (client->writable()) {
      FF_CHECK(client->send(Buffer(msg_bytes)).is_ok());
    }
  };
  client->set_on_space([pump]() { (*pump)(); });
  (*pump)();
  // Writability can also return via delivered messages; re-pump on a timer.
  // Each queued timer job owns the tick; the closure observes itself weakly,
  // so once `stopped` stops the rescheduling the chain frees itself — a
  // strong self-capture would pin pump -> socket -> conduit forever.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&cluster, pump, wtick = std::weak_ptr<std::function<void()>>(tick), stopped]() {
    if (*stopped) return;
    (*pump)();
    auto t = wtick.lock();
    if (!t) return;
    cluster.loop().schedule(20 * k_microsecond, [t]() { (*t)(); });
  };
  (*tick)();

  run_to(cluster, cluster.loop().now() + k_warmup);
  UtilProbe probe(cluster);
  probe.mark();
  const std::uint64_t start_bytes = *rx_bytes;
  const SimTime start = cluster.loop().now();
  run_to(cluster, start + window);

  ThroughputReport report;
  report.bytes = *rx_bytes - start_bytes;
  report.window = cluster.loop().now() - start;
  report.goodput_gbps = throughput_gbps(report.bytes, report.window);
  probe.fill(report);
  *stopped = true;  // quiesce the pump/tick; the socket stays alive in them
  return report;
}

SimDuration freeflow_rtt(fabric::Cluster& cluster, core::ContainerNetPtr from,
                         core::ContainerNetPtr to, tcp::Ipv4Addr to_ip,
                         std::uint16_t port, std::size_t msg_bytes, int iters) {
  core::FlowSocketPtr client =
      open_ff_socket(cluster, from, to, to_ip, port, [msg_bytes](core::FlowSocketPtr s) {
        auto held = std::make_shared<core::FlowSocketPtr>(s);
        auto pending = std::make_shared<std::size_t>(0);
        s->set_on_data([held, pending, msg_bytes](Buffer&& b) {
          *pending += b.size();
          while (*pending >= msg_bytes) {
            *pending -= msg_bytes;
            FF_CHECK((*held)->send(Buffer(msg_bytes)).is_ok());
          }
        });
      });

  std::vector<SimDuration> samples;
  auto got = std::make_shared<std::size_t>(0);
  client->set_on_data([got](Buffer&& b) { *got += b.size(); });
  for (int i = 0; i < iters; ++i) {
    *got = 0;
    const SimTime t0 = cluster.loop().now();
    FF_CHECK(client->send(Buffer(msg_bytes)).is_ok());
    FF_CHECK(spin_until(cluster, [&]() { return *got >= msg_bytes; }, 10 * k_second));
    samples.push_back(cluster.loop().now() - t0);
  }
  return median(std::move(samples));
}

}  // namespace freeflow::workloads
