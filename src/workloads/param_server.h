// Parameter-server ML training loop over the FreeFlow verbs API: workers
// WRITE gradients into the server's registered memory and READ back the
// updated model — the one-sided pattern FaRM-style systems use, and the
// machine-learning workload the paper's introduction cites.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/container_net.h"

namespace freeflow::workloads {

class ParamServer {
 public:
  struct Config {
    std::size_t model_floats = 256 * 1024;  ///< model size (1 MiB of floats)
    int iterations = 10;
    std::uint16_t qp_port = 18515;
  };

  /// Server rank: owns the model MR and accepts worker QPs.
  ParamServer(core::ContainerNetPtr server_net, Config config);

  /// Exposes the model MR id workers target with WRITE/READ.
  [[nodiscard]] std::uint32_t model_mr_id() const noexcept { return model_mr_->rkey(); }
  [[nodiscard]] rdma::MrPtr model_mr() const noexcept { return model_mr_; }

  Status start();

  [[nodiscard]] std::size_t workers_connected() const noexcept { return qps_.size(); }

 private:
  core::ContainerNetPtr net_;
  Config config_;
  rdma::MrPtr model_mr_;
  std::vector<core::VirtualQpPtr> qps_;
};

class PsWorker {
 public:
  using DoneFn = std::function<void(Result<SimDuration>)>;

  PsWorker(core::ContainerNetPtr worker_net, tcp::Ipv4Addr server_ip,
           ParamServer::Config config);

  /// Runs `iterations` of push(WRITE)+pull(READ); done(elapsed) at the end,
  /// or done(error) if the worker's QP setup terminally fails (the loop
  /// would otherwise never start and the caller would hang).
  void run(std::uint32_t server_mr_id, DoneFn done);

  [[nodiscard]] orch::Transport transport() const noexcept {
    return qp_ ? qp_->transport() : orch::Transport::tcp_overlay;
  }

 private:
  void iterate(int remaining, SimTime started, DoneFn done);

  core::ContainerNetPtr net_;
  tcp::Ipv4Addr server_ip_;
  ParamServer::Config config_;
  std::uint32_t server_mr_ = 0;
  rdma::MrPtr local_mr_;
  core::VirtualQpPtr qp_;
};

}  // namespace freeflow::workloads
